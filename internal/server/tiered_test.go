package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/tim"
)

// newTieredTestServer builds a server with an explicit in-flight bound
// for the admission tests; everything else matches newTestServer.
func newTieredTestServer(t testing.TB, maxInFlight int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Datasets: []DatasetSpec{
			{Name: "ba", Source: "ba:300:3", Seed: 7},
		},
		CacheSize:      32,
		RequestTimeout: time.Minute,
		Workers:        2,
		Seed:           1,
		MaxInFlight:    maxInFlight,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestSLOUnbudgetedReportsTier: queries without a budget run RIS at the
// requested ε and say so.
func TestSLOUnbudgetedReportsTier(t *testing.T) {
	_, ts := newTieredTestServer(t, 0)
	var resp MaximizeResponse
	status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if resp.Tier != "ris" {
		t.Fatalf("tier = %q, want ris", resp.Tier)
	}
	if resp.Epsilon != 0.3 {
		t.Fatalf("epsilon = %g, want the requested 0.3", resp.Epsilon)
	}
	if want := tim.ApproxFactor(0.3); resp.Confidence != want {
		t.Fatalf("confidence = %g, want %g", resp.Confidence, want)
	}
}

// TestSLOColdBudgetServedFast: with no RIS observation to calibrate the
// planner, a budgeted query must not gamble on RIS — it is served by the
// fast tier, within (a very generous reading of) its budget.
func TestSLOColdBudgetServedFast(t *testing.T) {
	srv, ts := newTieredTestServer(t, 0)
	var resp MaximizeResponse
	status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 5, BudgetMs: 5}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if resp.Tier != "fast" {
		t.Fatalf("tier = %q, want fast (cold planner)", resp.Tier)
	}
	if resp.Epsilon != 0 || resp.Confidence != 0 {
		t.Fatalf("heuristic answer claims a guarantee: eps=%g conf=%g", resp.Epsilon, resp.Confidence)
	}
	if len(resp.Seeds) != 5 {
		t.Fatalf("got %d seeds", len(resp.Seeds))
	}
	// The response's own clock: the 5ms budget plus CI-grade grace.
	if resp.ElapsedMs > 100 {
		t.Fatalf("fast tier took %.1fms against a 5ms budget", resp.ElapsedMs)
	}
	st := srv.tiered.stats()
	if st.Fast.Count != 1 {
		t.Fatalf("fast served = %d, want 1", st.Fast.Count)
	}
}

// TestSLOEscalationBitIdentity is the soundness contract: a budgeted
// query escalated to ladder rung ε returns bit-identical seeds to an
// unbudgeted query at that same ε on an identically configured server.
func TestSLOEscalationBitIdentity(t *testing.T) {
	srv, ts := newTieredTestServer(t, 0)

	// Warm the cost model at ε=0.1, then overwrite it with a synthetic
	// observation that prices ε=0.1 out of any reasonable budget while
	// leaving a coarse rung affordable — pinning the rung the planner must
	// pick regardless of machine speed.
	var warm MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 5}, &warm); status != http.StatusOK {
		t.Fatalf("warm-up: %d %s", status, body)
	}
	n := 300
	const fakeEps01Ms = 100_000 // pretend ε=0.1 costs 100s on this dataset
	for i := 0; i < 20; i++ {   // EWMA-converge the synthetic cost
		srv.tiered.planner.ObserveRIS("ba|ic", n, 5, 0.1, 1, fakeEps01Ms)
	}
	cost := func(eps float64) float64 {
		return fakeEps01Ms * stats.Lambda(n, 5, eps, 1) / stats.Lambda(n, 5, 0.1, 1)
	}
	// A budget fitting ε=0.5 but not ε=0.3 (both with the planner's 0.9
	// safety factor). The real query takes milliseconds, far inside it.
	budget := (cost(0.5)/0.9 + cost(0.3)*0.9) / 2

	var budgeted MaximizeResponse
	status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.1, BudgetMs: budget}, &budgeted)
	if status != http.StatusOK {
		t.Fatalf("budgeted: %d %s", status, body)
	}
	if budgeted.Tier != "ris" {
		t.Fatalf("tier = %q, want ris (budget %.1fms, cost(0.5)=%.1f cost(0.3)=%.1f)",
			budgeted.Tier, budget, cost(0.5), cost(0.3))
	}
	if budgeted.Epsilon != 0.5 {
		t.Fatalf("achieved epsilon = %g, want ladder rung 0.5", budgeted.Epsilon)
	}
	if want := tim.ApproxFactor(0.5); budgeted.Confidence != want {
		t.Fatalf("confidence = %g, want %g", budgeted.Confidence, want)
	}

	// Fresh identically-seeded server, unbudgeted query at the achieved ε:
	// the seeds must match bit for bit.
	_, ts2 := newTieredTestServer(t, 0)
	var unbudgeted MaximizeResponse
	if status, body := postJSON(t, ts2.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.5}, &unbudgeted); status != http.StatusOK {
		t.Fatalf("unbudgeted: %d %s", status, body)
	}
	if len(budgeted.Seeds) != len(unbudgeted.Seeds) {
		t.Fatalf("seed counts differ: %v vs %v", budgeted.Seeds, unbudgeted.Seeds)
	}
	for i := range budgeted.Seeds {
		if budgeted.Seeds[i] != unbudgeted.Seeds[i] {
			t.Fatalf("escalated answer diverged: %v vs %v", budgeted.Seeds, unbudgeted.Seeds)
		}
	}
	if budgeted.Theta != unbudgeted.Theta {
		t.Fatalf("theta differs: %d vs %d", budgeted.Theta, unbudgeted.Theta)
	}
}

// TestSLOMinConfidence covers the confidence floor: unattainable floors
// are 400s, and a floor the budget cannot afford is a 503 shed with
// Retry-After — never a silent heuristic answer.
func TestSLOMinConfidence(t *testing.T) {
	_, ts := newTieredTestServer(t, 0)

	status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 5, MinConfidence: 0.99}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unattainable min_confidence: %d %s", status, body)
	}

	// Cold planner + budget + confidence floor: RIS is unpredicted, the
	// fast tier is forbidden — the query sheds.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/maximize",
		jsonBody(t, MaximizeRequest{Dataset: "ba", K: 5, BudgetMs: 50, MinConfidence: 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infeasible SLO: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// An unbudgeted query with a floor tightens ε instead: requested 0.5
	// but floor demands ε ≤ EpsilonForConfidence(0.4).
	var ans MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.5, MinConfidence: 0.4}, &ans); status != http.StatusOK {
		t.Fatalf("floored unbudgeted: %d %s", status, body)
	}
	if maxEps := tim.EpsilonForConfidence(0.4); ans.Epsilon > maxEps+1e-12 {
		t.Fatalf("achieved ε=%g exceeds the floor's cap %g", ans.Epsilon, maxEps)
	}
	if ans.Confidence < 0.4 {
		t.Fatalf("confidence %g below the requested floor", ans.Confidence)
	}
}

// TestSLOBatchThreading: budget fields thread through batch items, and
// each item reports its own achieved tier.
func TestSLOBatchThreading(t *testing.T) {
	_, ts := newTieredTestServer(t, 0)
	var resp BatchResponse
	status, body := postJSON(t, ts.URL+"/v1/query/batch", BatchRequest{Queries: []MaximizeRequest{
		{Dataset: "ba", K: 3}, // unbudgeted → ris
		// A sub-microsecond budget no RIS rung can fit, cold or warm
		// (batch items race, so item 0 may calibrate the planner first).
		{Dataset: "ba", K: 3, BudgetMs: 0.0001},
		{Dataset: "ba", K: 3, BudgetMs: -1}, // invalid
	}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	if resp.Results[0].Result == nil || resp.Results[0].Result.Tier != "ris" {
		t.Fatalf("item 0 = %+v", resp.Results[0])
	}
	if resp.Results[1].Result == nil || resp.Results[1].Result.Tier != "fast" {
		t.Fatalf("item 1 = %+v", resp.Results[1])
	}
	if resp.Results[2].Error == "" {
		t.Fatalf("item 2 accepted a negative budget: %+v", resp.Results[2])
	}
}

// TestAdmissionSheddingExact: with a 1-slot gate held open, every
// budgeted request is shed with 503 + Retry-After and counted exactly
// once; no request both sheds and answers. Run with -race.
func TestAdmissionSheddingExact(t *testing.T) {
	srv, ts := newTieredTestServer(t, 1)

	// Occupy the only slot.
	if !srv.tiered.gate.TryAcquire() {
		t.Fatal("fresh gate full")
	}

	const parallel = 12
	codes := make([]int, parallel)
	retryAfter := make([]string, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/maximize", "application/json",
				jsonBody(t, MaximizeRequest{Dataset: "ba", K: 3, BudgetMs: 5}))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d with the gate held", i, c)
		}
		if retryAfter[i] == "" {
			t.Fatalf("request %d: shed without Retry-After", i)
		}
	}
	if st := srv.tiered.gate.Stats(); st.Shed != parallel {
		t.Fatalf("gate shed = %d, want exactly %d", st.Shed, parallel)
	}

	// Release the slot: budgeted traffic flows again, and the shed count
	// does not move.
	srv.tiered.gate.Release()
	var ok MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 3, BudgetMs: 5}, &ok); status != http.StatusOK {
		t.Fatalf("after release: %d %s", status, body)
	}
	if ok.Tier == "" {
		t.Fatal("served answer missing tier")
	}
	st := srv.tiered.gate.Stats()
	if st.Shed != parallel {
		t.Fatalf("shed moved to %d after successful serve", st.Shed)
	}
	if st.InFlight != 0 {
		t.Fatalf("in_flight = %d at rest", st.InFlight)
	}
}

// TestAdmissionConcurrentMix: many concurrent budgeted requests against a
// 1-slot gate; every response is either a served 200 (with a tier) or a
// shed 503 (with Retry-After), and the gate's counters account for each
// request exactly once. Run with -race.
func TestAdmissionConcurrentMix(t *testing.T) {
	srv, ts := newTieredTestServer(t, 1)

	const parallel = 24
	var served, shed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/maximize", "application/json",
				jsonBody(t, MaximizeRequest{Dataset: "ba", K: 3, BudgetMs: 50}))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				served++
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("shed without Retry-After")
				}
				shed++
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	if served+shed != parallel {
		t.Fatalf("responses lost: served=%d shed=%d", served, shed)
	}
	if served == 0 {
		t.Fatal("nothing served")
	}
	st := srv.tiered.gate.Stats()
	if st.Shed != shed {
		t.Fatalf("gate shed = %d, clients saw %d", st.Shed, shed)
	}
	if st.Admitted != served {
		t.Fatalf("gate admitted = %d, clients served %d", st.Admitted, served)
	}
	if st.InFlight != 0 {
		t.Fatalf("in_flight = %d at rest", st.InFlight)
	}
}

// TestScorerRefreshOnUpdate: /v1/update eagerly refreshes warm fast-tier
// scorers, and post-update fast answers reflect the mutated graph (they
// equal a cold server's fast answer on the same topology).
func TestScorerRefreshOnUpdate(t *testing.T) {
	srv, ts := newTieredTestServer(t, 0)

	// Build the scorer with a cold fast-tier query.
	var before MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 4, BudgetMs: 5}, &before); status != http.StatusOK {
		t.Fatalf("cold fast: %d %s", status, body)
	}
	if got := srv.tiered.stats().ScorerBuilds; got < 1 {
		t.Fatalf("scorer builds = %d", got)
	}

	var upd UpdateResponse
	if status, body := postJSON(t, ts.URL+"/v1/update", UpdateRequest{
		Dataset: "ba",
		Insert:  []UpdateEdge{{From: 0, To: 250}, {From: 250, To: 0}, {From: 1, To: 200}},
	}, &upd); status != http.StatusOK {
		t.Fatalf("update: %d %s", status, body)
	}
	if upd.ScorerNodesRescored == 0 {
		t.Fatal("update refreshed no scorer nodes despite a warm scorer")
	}
	st := srv.tiered.stats()
	if st.ScorerRefreshes < 1 || st.ScorerNodesRescored == 0 {
		t.Fatalf("refresh counters = %+v", st)
	}

	var after MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 4, BudgetMs: 5}, &after); status != http.StatusOK {
		t.Fatalf("warm fast: %d %s", status, body)
	}
	if after.GraphVersion != upd.Version {
		t.Fatalf("fast answer at version %d, update landed %d", after.GraphVersion, upd.Version)
	}
	if st := srv.tiered.stats(); st.ScorerBuilds != 1 {
		t.Fatalf("post-update fast query rebuilt the scorer (builds=%d)", st.ScorerBuilds)
	}
}

// TestStatsTieredSection: /v1/stats exposes the tiered subsystem with
// per-tier latency and the ε ladder.
func TestStatsTieredSection(t *testing.T) {
	_, ts := newTieredTestServer(t, 0)
	if status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 3}, nil); status != http.StatusOK {
		t.Fatalf("warm-up: %d %s", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 3, BudgetMs: 0.0001}, nil); status != http.StatusOK {
		t.Fatalf("budgeted: %d %s", status, body)
	}
	var st struct {
		Tiered struct {
			Gate struct {
				Capacity int   `json:"capacity"`
				Admitted int64 `json:"admitted"`
			} `json:"gate"`
			EpsLadder []float64 `json:"eps_ladder"`
			RIS       struct {
				Served int64   `json:"served"`
				P50Ms  float64 `json:"p50_ms"`
			} `json:"ris"`
			Fast struct {
				Served int64 `json:"served"`
			} `json:"fast"`
		} `json:"tiered"`
	}
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if st.Tiered.Gate.Capacity < 1 || st.Tiered.Gate.Admitted < 2 {
		t.Fatalf("gate stats = %+v", st.Tiered.Gate)
	}
	if len(st.Tiered.EpsLadder) == 0 {
		t.Fatal("eps ladder missing")
	}
	if st.Tiered.RIS.Served < 1 {
		t.Fatalf("ris served = %d", st.Tiered.RIS.Served)
	}
	if st.Tiered.Fast.Served < 1 {
		t.Fatalf("fast served = %d (tiny budget should go fast on a barely-calibrated planner)", st.Tiered.Fast.Served)
	}
}

// jsonBody marshals v for an http.Post body.
func jsonBody(t testing.TB, v any) *strings.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(buf))
}
