package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diffusion"
	"repro/internal/maxcover"
	"repro/internal/obs"
	"repro/internal/rng"
)

// obsState is the server's observability substrate: the metrics registry
// behind /metrics and the registry-backed sections of /v1/stats, the
// bounded trace ring behind /v1/trace/*, the request-id generator, and
// the structured access log. Everything here is wired once in New; the
// request path only increments pre-resolved instruments.
type obsState struct {
	reg  *obs.Registry
	ring *obs.TraceRing // nil = tracing disabled

	accessLog *slog.Logger // nil = no request logging

	// idMu guards idRng: request-id generation is the only serve-path use
	// of randomness, and it must not come from math/rand (the serve path
	// is otherwise fully keyed). One short critical section per request.
	idMu  sync.Mutex
	idRng *rng.Rand

	// endpoints maps endpoint name → pre-resolved instruments; read-only
	// after New (the endpoint set is fixed).
	endpoints map[string]*endpointInstruments

	// phaseHist aggregates span durations of finished traces into
	// fixed-bucket histograms (one series per span name); tierHist does
	// the same for whole answers by serving tier. tierHist is fed on every
	// answer; phaseHist only when the request was traced.
	phaseHist *obs.HistogramVec
	tierHist  *obs.HistogramVec

	// Batch-concurrency counters (moved here from raw atomics so /metrics
	// and /v1/stats read one source of truth).
	batchGroups        *obs.Counter
	batchWarmupItems   *obs.Counter
	batchParallelItems *obs.Counter

	// panics counts handler panics contained by the recovery middleware.
	panics *obs.Counter

	// queryMu guards queryStats: per-dataset constrained-query instrument
	// bundles, created on first touch of each dataset name.
	queryMu    sync.Mutex
	queryStats map[string]*datasetQueryInstruments
	queryVecs  struct {
		constrained, weighted, batch, rejections *obs.CounterVec
	}

	// slo holds the rolling error budgets, one per tier class: budgeted
	// queries burn on sheds, 5xx, and blown latency budgets; unbudgeted
	// ones on 5xx only. /metrics, /v1/stats, and /v1/health/slo read the
	// same budgets.
	slo map[string]*obs.ErrorBudget
}

// SLO tier classes: requests that carried a latency budget and those
// that did not burn separate error budgets — one noisy budgeted tenant
// must not mask (or be masked by) the unbudgeted baseline.
const (
	sloClassBudgeted   = "budgeted"
	sloClassUnbudgeted = "unbudgeted"
)

// endpointInstruments are the registry instruments behind one endpoint's
// /v1/stats section. The counters are the storage — endpointStats is
// built from them at snapshot time.
type endpointInstruments struct {
	requests    *obs.Counter
	errors      *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	latencySum  *obs.Counter // total latency ms, monotone
	latencyMax  *obs.Gauge
	latency     *obs.Histogram
}

// datasetQueryInstruments are the registry counters behind one dataset's
// query-subsystem section.
type datasetQueryInstruments struct {
	constrained *obs.Counter
	weighted    *obs.Counter
	batch       *obs.Counter
	rejections  *obs.Counter
}

// servedEndpoints is the fixed endpoint label set of the per-endpoint
// instruments (and the pre-seeded keys of the /v1/stats endpoints map).
var servedEndpoints = []string{"maximize", "spread", "update", "batch"}

// newObsState builds the registry, resolves every instrument the request
// path touches, and registers the scrape-time mirrors of subsystems that
// keep their own counters (admission gate, sampler/scratch pools, result
// cache, rr-store gauges).
func newObsState(ringCap int, accessLog *slog.Logger, idSeed uint64, sloObjective float64) *obsState {
	reg := obs.NewRegistry()
	o := &obsState{
		reg:        reg,
		ring:       obs.NewTraceRing(ringCap),
		accessLog:  accessLog,
		idRng:      rng.New(idSeed),
		endpoints:  make(map[string]*endpointInstruments, len(servedEndpoints)),
		queryStats: make(map[string]*datasetQueryInstruments),
		slo: map[string]*obs.ErrorBudget{
			sloClassBudgeted:   obs.NewErrorBudget(sloObjective),
			sloClassUnbudgeted: obs.NewErrorBudget(sloObjective),
		},
	}

	requests := reg.CounterVec("timserver_requests_total", "Requests received, by endpoint.", "endpoint")
	errs := reg.CounterVec("timserver_request_errors_total", "Requests answered with an error, by endpoint.", "endpoint")
	hits := reg.CounterVec("timserver_result_cache_endpoint_hits_total", "Requests answered from the result cache, by endpoint.", "endpoint")
	misses := reg.CounterVec("timserver_result_cache_endpoint_misses_total", "Requests computed (result-cache miss), by endpoint.", "endpoint")
	latSum := reg.CounterVec("timserver_request_latency_ms_sum_total", "Total request latency in milliseconds, by endpoint.", "endpoint")
	latMax := reg.GaugeVec("timserver_request_latency_ms_max", "Max request latency in milliseconds, by endpoint.", "endpoint")
	latHist := reg.HistogramVec("timserver_request_duration_ms", "Request latency in milliseconds, by endpoint.", nil, "endpoint")
	for _, name := range servedEndpoints {
		o.endpoints[name] = &endpointInstruments{
			requests:    requests.With(name),
			errors:      errs.With(name),
			cacheHits:   hits.With(name),
			cacheMisses: misses.With(name),
			latencySum:  latSum.With(name),
			latencyMax:  latMax.With(name),
			latency:     latHist.With(name),
		}
	}

	o.phaseHist = reg.HistogramVec("timserver_phase_duration_ms", "Traced span duration in milliseconds, by phase (span name). Only traced requests feed this.", nil, "phase")
	o.tierHist = reg.HistogramVec("timserver_tier_latency_ms", "Answer latency in milliseconds, by serving tier.", nil, "tier")

	o.panics = reg.Counter("timserver_panics_total", "Handler panics contained by the recovery middleware (each answered with a 500 instead of killing the process).")

	o.batchGroups = reg.Counter("timserver_batch_groups_total", "RR-collection sharing groups across batch requests.")
	o.batchWarmupItems = reg.Counter("timserver_batch_warmup_items_total", "Batch items run sequentially to warm a shared collection.")
	o.batchParallelItems = reg.Counter("timserver_batch_parallel_items_total", "Batch items run concurrently.")

	o.queryVecs.constrained = reg.CounterVec("timserver_constrained_queries_total", "Maximize queries carrying any constraint field, by dataset.", "dataset")
	o.queryVecs.weighted = reg.CounterVec("timserver_weighted_collections_total", "Weighted (audience-profile) RR collections created, by dataset.", "dataset")
	o.queryVecs.batch = reg.CounterVec("timserver_batch_queries_total", "Queries arriving via /v1/query/batch, by dataset.", "dataset")
	o.queryVecs.rejections = reg.CounterVec("timserver_constraint_rejections_total", "Queries rejected for invalid constraints, by dataset.", "dataset")

	return o
}

// registerMirrors adds the scrape-time views of subsystems that own their
// counters elsewhere: the process-wide pools, the admission gate, the
// result cache, the rr-store entry count, and uptime. These are func-
// backed — /metrics and /v1/stats read the same single source of truth.
func (o *obsState) registerMirrors(s *Server) {
	o.reg.GaugeFunc("timserver_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	o.reg.CounterFunc("timserver_gate_admitted_total", "Queries admitted by the in-flight gate.",
		func() float64 { return float64(s.tiered.gate.Stats().Admitted) })
	o.reg.CounterFunc("timserver_gate_shed_total", "Budgeted queries shed at the gate (server at capacity).",
		func() float64 { return float64(s.tiered.gate.Stats().Shed) })
	o.reg.GaugeFunc("timserver_gate_in_flight", "Queries currently holding a gate slot.",
		func() float64 { return float64(s.tiered.gate.Stats().InFlight) })
	o.reg.GaugeFunc("timserver_gate_capacity", "Gate capacity (max in-flight queries).",
		func() float64 { return float64(s.tiered.gate.Stats().Capacity) })

	o.reg.CounterFunc("timserver_result_cache_hits_total", "Result-cache hits.",
		func() float64 { return float64(s.results.stats().Hits) })
	o.reg.CounterFunc("timserver_result_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(s.results.stats().Misses) })
	o.reg.CounterFunc("timserver_result_cache_evictions_total", "Result-cache evictions.",
		func() float64 { return float64(s.results.stats().Evictions) })
	o.reg.GaugeFunc("timserver_result_cache_entries", "Result-cache live entries.",
		func() float64 { return float64(s.results.stats().Size) })

	o.reg.GaugeFunc("timserver_rr_collections", "Live RR collections in the reuse layer.",
		func() float64 { return float64(s.rr.stats().Collections) })

	o.reg.CounterFunc("timserver_sampler_pool_hits_total", "RR-sampler acquisitions served from the recycling pool (process-wide).",
		func() float64 { h, _ := diffusion.SamplerPoolStats(); return float64(h) })
	o.reg.CounterFunc("timserver_sampler_pool_misses_total", "RR-sampler acquisitions that built a fresh sampler (process-wide).",
		func() float64 { _, m := diffusion.SamplerPoolStats(); return float64(m) })
	o.reg.CounterFunc("timserver_select_scratch_hits_total", "Selection-scratch pool hits (process-wide).",
		func() float64 { h, _ := maxcover.ScratchPoolStats(); return float64(h) })
	o.reg.CounterFunc("timserver_select_scratch_misses_total", "Selection-scratch pool misses (process-wide).",
		func() float64 { _, m := maxcover.ScratchPoolStats(); return float64(m) })

	// Capacity: one labeled gauge per ledger leaf, plus the roll-up and
	// (when configured) the budget and headroom. The leaf set is fixed at
	// startup (registerLedger), so the label space is bounded.
	capVec := o.reg.GaugeVec("timserver_capacity_bytes", "Ledger-accounted resident bytes, by dataset and component.", "dataset", "component")
	s.ledger.Each(func(path []string, _ int64) {
		if len(path) != 2 {
			return
		}
		dataset, component := path[0], path[1]
		capVec.Func(func() float64 { return float64(s.ledger.Sum(dataset, component)) }, dataset, component)
	})
	o.reg.GaugeFunc("timserver_capacity_total_bytes", "Total ledger-accounted resident bytes.",
		func() float64 { return float64(s.ledger.Total()) })
	if s.cfg.MemoryBudgetBytes > 0 {
		o.reg.GaugeFunc("timserver_capacity_budget_bytes", "Configured memory budget for ledger-accounted state.",
			func() float64 { return float64(s.cfg.MemoryBudgetBytes) })
		o.reg.GaugeFunc("timserver_capacity_headroom_bytes", "Budget minus ledger total (negative = over budget).",
			func() float64 { return float64(s.cfg.MemoryBudgetBytes - s.ledger.Total()) })
	}

	// SLO error budgets: burn rates per class and window, plus the coarse
	// state (0 ok, 1 warn, 2 critical) alerting rules can threshold on.
	burnVec := o.reg.GaugeVec("timserver_slo_burn_rate", "Error-budget burn rate by tier class and window (1.0 = consuming exactly the objective).", "class", "window")
	stateVec := o.reg.GaugeVec("timserver_slo_state", "Error-budget state by tier class: 0 ok, 1 warn, 2 critical.", "class")
	for class, b := range o.slo {
		b := b
		burnVec.Func(func() float64 { return b.Burn(obs.BurnFastWindow) }, class, "5m")
		burnVec.Func(func() float64 { return b.Burn(obs.BurnSlowWindow) }, class, "1h")
		stateVec.Func(func() float64 { return sloStateValue(b.State()) }, class)
	}

	// Go runtime self-metrics (goroutines, heap in-use, GC pauses,
	// process uptime) ride the same registry and cardinality lint.
	obs.RegisterRuntimeMetrics(o.reg)
}

// sloStateValue maps a budget state onto the metric encoding.
func sloStateValue(st obs.BudgetState) float64 {
	switch st {
	case obs.BudgetWarn:
		return 1
	case obs.BudgetCritical:
		return 2
	}
	return 0
}

// sloObserve records one maximize-shaped outcome against its tier
// class's error budget.
func (o *obsState) sloObserve(budgeted, bad bool) {
	class := sloClassUnbudgeted
	if budgeted {
		class = sloClassBudgeted
	}
	o.slo[class].Observe(bad)
}

// newRequestID draws a fresh request id from the keyed generator:
// 16 hex characters, unique per server process for any practical count.
func (o *obsState) newRequestID() string {
	o.idMu.Lock()
	v := o.idRng.Uint64()
	o.idMu.Unlock()
	return fmt.Sprintf("%016x", v)
}

// queryInstr resolves (creating on first touch) the per-dataset query
// counters for one dataset name.
func (o *obsState) queryInstr(dataset string) *datasetQueryInstruments {
	if dataset == "" {
		dataset = "(none)"
	}
	o.queryMu.Lock()
	defer o.queryMu.Unlock()
	q := o.queryStats[dataset]
	if q == nil {
		q = &datasetQueryInstruments{
			constrained: o.queryVecs.constrained.With(dataset),
			weighted:    o.queryVecs.weighted.With(dataset),
			batch:       o.queryVecs.batch.With(dataset),
			rejections:  o.queryVecs.rejections.With(dataset),
		}
		o.queryStats[dataset] = q
	}
	return q
}

// querySnapshot renders the per-dataset counters as the /v1/stats
// query_subsystem section (same JSON shape as before the registry).
func (o *obsState) querySnapshot() map[string]datasetQueryStats {
	o.queryMu.Lock()
	defer o.queryMu.Unlock()
	out := make(map[string]datasetQueryStats, len(o.queryStats))
	for name, q := range o.queryStats {
		out[name] = datasetQueryStats{
			ConstrainedQueries:   q.constrained.Int(),
			WeightedCollections:  q.weighted.Int(),
			BatchQueries:         q.batch.Int(),
			ConstraintRejections: q.rejections.Int(),
		}
	}
	return out
}

// endpointSnapshot renders the per-endpoint instruments as the /v1/stats
// endpoints section.
func (o *obsState) endpointSnapshot() map[string]endpointStats {
	out := make(map[string]endpointStats, len(o.endpoints))
	for name, e := range o.endpoints {
		out[name] = endpointStats{
			Requests:       e.requests.Int(),
			Errors:         e.errors.Int(),
			CacheHits:      e.cacheHits.Int(),
			CacheMisses:    e.cacheMisses.Int(),
			TotalLatencyMs: e.latencySum.Value(),
			MaxLatencyMs:   e.latencyMax.Value(),
		}
	}
	return out
}

// reqMeta rides the request context: the request id every /v1/* response
// echoes (and reports as trace_id), plus the fields the access log reads
// after the handler returns. The scalar fields are written only by the
// request's own goroutine; escalated/fellBack are atomic because answer()
// may run on batch-item goroutines.
type reqMeta struct {
	id       string
	endpoint string
	dataset  string
	tier     string
	epsilon  float64
	cacheHit bool

	escalated atomic.Bool
	fellBack  atomic.Bool
}

type reqMetaKey struct{}

// requestMeta returns the request metadata carried by ctx (nil outside
// the middleware, e.g. in direct doMaximize tests — every reader is
// nil-tolerant).
func requestMeta(ctx context.Context) *reqMeta {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(reqMetaKey{}).(*reqMeta)
	return m
}

// statusWriter captures the response status for the access log, and
// whether anything was committed to the wire — the panic middleware can
// only substitute a 500 body while nothing has been written.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// tracedPaths are the compute endpoints that get a per-request Trace;
// introspection endpoints (/v1/stats, /v1/trace/*, /v1/datasets) echo
// request ids but are never traced — tracing them would churn the ring
// with no-op traces.
func tracedPath(method, path string) bool {
	if method != http.MethodPost {
		return false
	}
	switch path {
	case "/v1/maximize", "/v1/query/batch", "/v1/spread", "/v1/update":
		return true
	}
	return false
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

// handleTrace serves GET /v1/trace/{id}: the span chain of one retained
// request.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.obs.ring == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "server: tracing disabled"})
		return
	}
	id := r.PathValue("id")
	snap, ok := s.obs.ring.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("server: no retained trace %q (ring keeps the last %d)", id, s.cfg.TraceRing)})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTraceSlow serves GET /v1/trace/slow?n=N: the top-N retained
// traces by elapsed time, slowest first (default 10).
func (s *Server) handleTraceSlow(w http.ResponseWriter, r *http.Request) {
	if s.obs.ring == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "server: tracing disabled"})
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "server: n must be a positive integer"})
			return
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}{Traces: s.obs.ring.Slowest(n)})
}

// logRequest emits one structured access-log line for a finished /v1/*
// request.
func (o *obsState) logRequest(m *reqMeta, status int, elapsedMs float64) {
	if o.accessLog == nil {
		return
	}
	attrs := []any{
		slog.String("trace_id", m.id),
		slog.String("endpoint", m.endpoint),
		slog.Int("status", status),
		slog.Float64("elapsed_ms", elapsedMs),
	}
	if m.dataset != "" {
		attrs = append(attrs, slog.String("dataset", m.dataset))
	}
	if m.tier != "" {
		attrs = append(attrs, slog.String("tier", m.tier))
	}
	if m.epsilon > 0 {
		attrs = append(attrs, slog.Float64("epsilon", m.epsilon))
	}
	if m.cacheHit {
		attrs = append(attrs, slog.Bool("cached", true))
	}
	if m.escalated.Load() {
		attrs = append(attrs, slog.Bool("escalated", true))
	}
	if m.fellBack.Load() {
		attrs = append(attrs, slog.Bool("deadline_fallback", true))
	}
	if status == http.StatusServiceUnavailable {
		attrs = append(attrs, slog.Bool("shed", true))
	}
	// Compute requests log at info, introspection scrapes (stats, trace,
	// datasets — endpoint "") at debug so a watched server stays quiet,
	// and server errors at warn.
	level := slog.LevelInfo
	if m.endpoint == "" {
		level = slog.LevelDebug
	}
	if status >= 500 {
		level = slog.LevelWarn
	}
	o.accessLog.LogAttrs(context.Background(), level, "request", slog.Group("req", attrs...))
}

// endpointOf maps a /v1/* path to its stats endpoint name ("" for
// introspection paths, which keep no per-endpoint counters).
func endpointOf(path string) string {
	switch path {
	case "/v1/maximize":
		return "maximize"
	case "/v1/query/batch":
		return "batch"
	case "/v1/spread":
		return "spread"
	case "/v1/update":
		return "update"
	}
	return ""
}
