package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestServer builds a Server over one small synthetic dataset plus one
// file-backed dataset.
func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.txt")
	content := "# tiny ring\n0 1\n1 2\n2 3\n3 4\n4 0\n0 2\n1 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Datasets: []DatasetSpec{
			{Name: "ba", Source: "ba:300:3", Seed: 7},
			{Name: "ring", Source: "file:" + path, Seed: 7},
		},
		CacheSize:      8,
		RequestTimeout: time.Minute,
		Workers:        2,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t testing.TB, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// statsSnapshot mirrors the /v1/stats body.
type statsSnapshot struct {
	UptimeSeconds  float64                       `json:"uptime_seconds"`
	StartedAt      string                        `json:"started_at"`
	Endpoints      map[string]endpointStats      `json:"endpoints"`
	ResultCache    cacheStats                    `json:"result_cache"`
	RRCache        rrStoreStats                  `json:"rr_cache"`
	Datasets       []datasetInfo                 `json:"datasets"`
	QuerySubsystem map[string]datasetQueryStats  `json:"query_subsystem"`
	Parallel       parallelStats                 `json:"parallel"`
	Capacity       capacityStats                 `json:"capacity"`
	SLO            map[string]obs.BudgetSnapshot `json:"slo"`
	QLog           qlogStats                     `json:"qlog"`
}

// TestMaximizeSpreadStatsRoundTrip is the acceptance-criteria test: the
// server answers /v1/maximize and /v1/spread on a registry dataset, and a
// repeated query shows up as a result-cache hit in /v1/stats.
func TestMaximizeSpreadStatsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)

	var m1 MaximizeResponse
	status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3}, &m1)
	if status != http.StatusOK {
		t.Fatalf("maximize: status %d body %s", status, body)
	}
	if len(m1.Seeds) != 5 || m1.Theta < 1 || m1.Cached {
		t.Fatalf("implausible first maximize: %+v", m1)
	}
	if m1.RRSetsSampled != m1.Theta || m1.RRSetsReused != 0 {
		t.Fatalf("cold query must sample all θ sets: %+v", m1)
	}

	// The exact same query again: served from the LRU result cache.
	var m2 MaximizeResponse
	status, body = postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3}, &m2)
	if status != http.StatusOK {
		t.Fatalf("repeat maximize: status %d body %s", status, body)
	}
	if !m2.Cached {
		t.Fatalf("repeat query not served from cache: %+v", m2)
	}
	if fmt.Sprint(m2.Seeds) != fmt.Sprint(m1.Seeds) {
		t.Fatalf("cached seeds differ: %v vs %v", m2.Seeds, m1.Seeds)
	}

	var sp SpreadResponse
	status, body = postJSON(t, ts.URL+"/v1/spread",
		SpreadRequest{Dataset: "ba", Seeds: m1.Seeds, Samples: 2000}, &sp)
	if status != http.StatusOK {
		t.Fatalf("spread: status %d body %s", status, body)
	}
	if sp.Spread < float64(len(m1.Seeds)) {
		t.Fatalf("spread %v below seed count — seeds always activate themselves", sp.Spread)
	}

	var st statsSnapshot
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	if st.Endpoints["maximize"].Requests != 2 || st.Endpoints["maximize"].CacheHits != 1 {
		t.Fatalf("maximize counters: %+v", st.Endpoints["maximize"])
	}
	if st.Endpoints["spread"].Requests != 1 {
		t.Fatalf("spread counters: %+v", st.Endpoints["spread"])
	}
	if st.ResultCache.Hits != 1 || st.ResultCache.Size != 2 {
		t.Fatalf("result cache: %+v", st.ResultCache)
	}
}

// TestRRCollectionReuse is the reuse-layer acceptance test: a second
// maximize with larger k on the same (dataset, model, ε) extends the
// cached RR collection instead of resampling — visible in the /v1/stats
// counters — and returns exactly the seeds a cold server returns for the
// same query.
func TestRRCollectionReuse(t *testing.T) {
	_, warm := newTestServer(t)

	var small MaximizeResponse
	status, body := postJSON(t, warm.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3}, &small)
	if status != http.StatusOK {
		t.Fatalf("k=2: status %d body %s", status, body)
	}

	var large MaximizeResponse
	status, body = postJSON(t, warm.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 8, Epsilon: 0.3}, &large)
	if status != http.StatusOK {
		t.Fatalf("k=8: status %d body %s", status, body)
	}
	if large.Cached {
		t.Fatal("different k must not hit the result cache")
	}
	if large.RRSetsReused == 0 {
		t.Fatalf("k=8 after k=2 reused no RR sets: %+v", large)
	}
	if large.RRSetsReused+large.RRSetsSampled != large.Theta {
		t.Fatalf("reuse split %d+%d != θ=%d", large.RRSetsReused, large.RRSetsSampled, large.Theta)
	}

	var st statsSnapshot
	getJSON(t, warm.URL+"/v1/stats", &st)
	if st.RRCache.SetsReused < large.RRSetsReused || st.RRCache.Collections != 1 {
		t.Fatalf("rr cache counters don't show the reuse: %+v", st.RRCache)
	}
	// θ is not monotone in k (λ and KPT⁺ both grow), so the second query
	// may extend the collection or reuse it outright — but never both
	// zero extensions and zero full-reuse.
	if st.RRCache.Extensions < 1 || st.RRCache.SetsSampled == 0 {
		t.Fatalf("rr cache never sampled: %+v", st.RRCache)
	}

	// A cold server given the k=8 query directly must return identical
	// seeds: prefix-deterministic extension means a warm cache can only
	// skip sampling, never change the answer.
	_, cold := newTestServer(t)
	var coldLarge MaximizeResponse
	status, body = postJSON(t, cold.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 8, Epsilon: 0.3}, &coldLarge)
	if status != http.StatusOK {
		t.Fatalf("cold k=8: status %d body %s", status, body)
	}
	if fmt.Sprint(coldLarge.Seeds) != fmt.Sprint(large.Seeds) {
		t.Fatalf("warm-cache answer differs from cold run: %v vs %v", large.Seeds, coldLarge.Seeds)
	}
	if coldLarge.Theta != large.Theta {
		t.Fatalf("θ differs warm vs cold: %d vs %d", large.Theta, coldLarge.Theta)
	}
	if coldLarge.RRSetsReused != 0 || coldLarge.RRSetsSampled != coldLarge.Theta {
		t.Fatalf("cold run claims reuse: %+v", coldLarge)
	}
}

// TestNoReuseOptOut: no_reuse queries bypass the reuse layer entirely.
func TestNoReuseOptOut(t *testing.T) {
	_, ts := newTestServer(t)
	var m MaximizeResponse
	status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 3, Epsilon: 0.3, NoReuse: true}, &m)
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	var st statsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.RRCache.Collections != 0 {
		t.Fatalf("no_reuse query populated the rr cache: %+v", st.RRCache)
	}
}

// TestFileDatasetAndModels: the file-backed dataset works under both
// models, and LT gets its own weighted instance.
func TestFileDatasetAndModels(t *testing.T) {
	_, ts := newTestServer(t)
	for _, model := range []string{"ic", "lt"} {
		var m MaximizeResponse
		status, body := postJSON(t, ts.URL+"/v1/maximize",
			MaximizeRequest{Dataset: "ring", Model: model, K: 2, Epsilon: 0.5}, &m)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d body %s", model, status, body)
		}
		if len(m.Seeds) != 2 {
			t.Fatalf("%s: seeds %v", model, m.Seeds)
		}
	}
	var ds struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	getJSON(t, ts.URL+"/v1/datasets", &ds)
	if len(ds.Datasets) != 2 {
		t.Fatalf("want 2 datasets, got %+v", ds.Datasets)
	}
	for _, d := range ds.Datasets {
		if d.Name == "ring" {
			if d.Nodes != 5 || len(d.LoadedModels) != 2 {
				t.Fatalf("ring after ic+lt queries: %+v", d)
			}
		}
	}
}

// TestErrorMapping: unknown datasets are 404, bad input 400, bad method
// 405.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"unknown dataset", MaximizeRequest{Dataset: "nope", K: 2}, http.StatusNotFound},
		{"zero k", MaximizeRequest{Dataset: "ba", K: 0}, http.StatusBadRequest},
		{"k too large", MaximizeRequest{Dataset: "ba", K: 10_000}, http.StatusBadRequest},
		{"bad epsilon", MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 3}, http.StatusBadRequest},
		{"bad model", MaximizeRequest{Dataset: "ba", K: 2, Model: "sir"}, http.StatusBadRequest},
		{"bad algorithm", MaximizeRequest{Dataset: "ba", K: 2, Algorithm: "greedy"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, body := postJSON(t, ts.URL+"/v1/maximize", c.req, nil); status != c.want {
			t.Errorf("%s: status %d (want %d) body %s", c.name, status, c.want, body)
		}
	}
	if status, body := postJSON(t, ts.URL+"/v1/spread",
		SpreadRequest{Dataset: "ba", Seeds: nil}, nil); status != http.StatusBadRequest {
		t.Errorf("empty seeds: status %d body %s", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/spread",
		SpreadRequest{Dataset: "ba", Seeds: []uint32{999_999}}, nil); status != http.StatusBadRequest {
		t.Errorf("out-of-range seed: status %d body %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/v1/maximize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on maximize: status %d", resp.StatusCode)
	}
	if status, body := postJSON(t, ts.URL+"/v1/maximize", "not json", nil); status != http.StatusBadRequest {
		t.Errorf("malformed body: status %d body %s", status, body)
	}
}

// TestRequestTimeout: a tiny RequestTimeout aborts heavy queries with
// 504 instead of wedging the worker.
func TestRequestTimeout(t *testing.T) {
	srv, err := New(Config{
		Datasets:       []DatasetSpec{{Name: "big", Source: "ba:20000:5", Seed: 3}},
		RequestTimeout: time.Millisecond,
		Workers:        2,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "big", K: 50, Epsilon: 0.1}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d body %s", status, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Fatalf("timeout body should mention the deadline: %s", body)
	}
}

// TestSpreadCache: identical spread queries hit the result cache.
func TestSpreadCache(t *testing.T) {
	_, ts := newTestServer(t)
	req := SpreadRequest{Dataset: "ba", Seeds: []uint32{0, 1}, Samples: 1000}
	var s1, s2 SpreadResponse
	if status, body := postJSON(t, ts.URL+"/v1/spread", req, &s1); status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/spread", req, &s2); status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	if !s2.Cached || s2.Spread != s1.Spread {
		t.Fatalf("second spread not cached: %+v vs %+v", s1, s2)
	}
}

// TestLRUEviction: the cache respects its capacity and evicts the least
// recently used entry.
func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2, obs.NewLedger())
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("cache stats: %+v", st)
	}
}

// TestRRStoreEviction: the reuse layer is bounded — distinct ε values
// cannot grow it past its capacity, and a re-query of an evicted key
// still answers identically (entry seeds depend only on the key).
func TestRRStoreEviction(t *testing.T) {
	srv, err := New(Config{
		Datasets:      []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
		RRCollections: 2,
		Workers:       2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 3, Epsilon: 0.3}, nil)
	for _, eps := range []float64{0.4, 0.5, 0.6} {
		if status, body := postJSON(t, ts.URL+"/v1/maximize",
			MaximizeRequest{Dataset: "ba", K: 3, Epsilon: eps}, nil); status != http.StatusOK {
			t.Fatalf("eps=%g: status %d body %s", eps, status, body)
		}
	}
	var st statsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.RRCache.Collections != 2 || st.RRCache.Evictions != 2 {
		t.Fatalf("store not bounded: %+v", st.RRCache)
	}
	if st.RRCache.MemoryBytes <= 0 {
		t.Fatalf("memory accounting went non-positive after evictions: %+v", st.RRCache)
	}

	// The ε=0.3 entry was evicted. A fresh query tuple on that key
	// resamples from scratch — and because entry seeds depend only on
	// (server seed, key), it must match what a cold server answers.
	var warm MaximizeResponse
	postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 4, Epsilon: 0.3}, &warm)

	cold, err := New(Config{
		Datasets:      []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
		RRCollections: 2,
		Workers:       2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsCold := httptest.NewServer(cold)
	defer tsCold.Close()
	var coldResp MaximizeResponse
	postJSON(t, tsCold.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 4, Epsilon: 0.3}, &coldResp)
	if fmt.Sprint(warm.Seeds) != fmt.Sprint(coldResp.Seeds) {
		t.Fatalf("post-eviction answer differs from cold server: %v vs %v", warm.Seeds, coldResp.Seeds)
	}
}

// TestMaxThetaCap: a tiny-ε query cannot balloon θ past the configured
// cap — the OOM guard for a long-lived server — and the response admits
// the guarantee is void via theta_capped.
func TestMaxThetaCap(t *testing.T) {
	srv, err := New(Config{
		Datasets: []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
		MaxTheta: 500,
		Workers:  2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var m MaximizeResponse
	status, body := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 3, Epsilon: 0.01}, &m)
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	if m.Theta > 500 || !m.ThetaCapped {
		t.Fatalf("cap not enforced: θ=%d capped=%v", m.Theta, m.ThetaCapped)
	}
	if len(m.Seeds) != 3 {
		t.Fatalf("capped query still returns k seeds, got %v", m.Seeds)
	}
}

// TestHealthz: liveness endpoint answers.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var h struct {
		Status string `json:"status"`
	}
	if status := getJSON(t, ts.URL+"/healthz", &h); status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", status, h)
	}
}

// TestParseDatasetSpec covers the flag-parsing helper.
func TestParseDatasetSpec(t *testing.T) {
	if _, err := ParseDatasetSpec("no-equals", 1); err == nil {
		t.Error("want error for missing =")
	}
	if _, err := ParseDatasetSpec("=x", 1); err == nil {
		t.Error("want error for empty name")
	}
	spec, err := ParseDatasetSpec("g=profile:nethept:tiny", 9)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "g" || spec.Source != "profile:nethept:tiny" || spec.Seed != 9 {
		t.Fatalf("spec %+v", spec)
	}
	for _, bad := range []string{"g=unknownkind:1:2", "g=ba:0:3", "g=ba:xx:3", "g=er:5", "g=profile:nosuch:tiny", "g=profile:nethept:huge", "g=file:/does/not/exist"} {
		spec, err := ParseDatasetSpec(bad, 1)
		if err != nil {
			t.Fatalf("%s: parse should succeed, build should fail", bad)
		}
		if _, err := spec.build(); err == nil {
			t.Errorf("%s: build should fail", bad)
		}
	}
}

// TestDuplicateDataset: duplicate names are a configuration error.
func TestDuplicateDataset(t *testing.T) {
	_, err := New(Config{Datasets: []DatasetSpec{
		{Name: "a", Source: "ba:10:2"},
		{Name: "a", Source: "ba:20:2"},
	}})
	if err == nil {
		t.Fatal("want duplicate-name error")
	}
}

// BenchmarkServerMaximize measures the served query path: cold (reuse
// layer populated once, results cache disabled by distinct seeds), warm
// reuse (same ε, growing k), and result-cache hits.
func BenchmarkServerMaximize(b *testing.B) {
	_, ts := newTestServer(b)
	b.Run("result-cache-hit", func(b *testing.B) {
		req := MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3}
		postJSON(b, ts.URL+"/v1/maximize", req, nil) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if status, body := postJSON(b, ts.URL+"/v1/maximize", req, nil); status != http.StatusOK {
				b.Fatalf("status %d body %s", status, body)
			}
		}
	})
	b.Run("rr-reuse", func(b *testing.B) {
		// Distinct seeds defeat the result cache; the shared (dataset,
		// model, ε) key keeps the RR collection warm.
		postJSON(b, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3}, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seed := uint64(i + 2)
			req := MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3, Seed: &seed}
			if status, body := postJSON(b, ts.URL+"/v1/maximize", req, nil); status != http.StatusOK {
				b.Fatalf("status %d body %s", status, body)
			}
		}
	})
	b.Run("no-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed := uint64(i + 2)
			req := MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3, Seed: &seed, NoReuse: true}
			if status, body := postJSON(b, ts.URL+"/v1/maximize", req, nil); status != http.StatusOK {
				b.Fatalf("status %d body %s", status, body)
			}
		}
	})
}
