package server

import (
	"fmt"
	"path/filepath"

	"repro/internal/wal"
)

// DatasetRecovery summarizes what WAL recovery restored for one dataset
// at startup: the checkpoint it resumed from, the log tail replayed on
// top, and any damage that was clipped along the way. cmd/timserver
// logs one line per dataset from these; /v1/stats keeps them in the wal
// section for the life of the process.
type DatasetRecovery struct {
	Dataset string `json:"dataset"`
	// Version is the dataset version recovery landed on — the version a
	// never-crashed server that applied the same acked batches would be
	// at (modulo the sync policy's durability window).
	Version           uint64 `json:"version"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	ReplayedRecords   int    `json:"replayed_records"`
	// SkippedRecords counts log records already covered by the
	// checkpoint (a crash hit between checkpoint rename and truncation).
	SkippedRecords int `json:"skipped_records,omitempty"`
	// TornBytes counts bytes clipped from a torn final frame.
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// attachWAL opens (recovering) one WAL per dataset and arms the
// registry's log-before-apply path. It must run before any variant is
// built; recovered state is installed for variant() to consume lazily,
// with d.version advanced immediately so /v1/datasets reports the
// recovered version even before a query forces a build.
func (r *registry) attachWAL(dir string, opts wal.Options, checkpointEvery int, logf func(string, ...any)) ([]DatasetRecovery, error) {
	r.checkpointEvery = checkpointEvery
	r.logf = logf
	specs := r.specs()
	out := make([]DatasetRecovery, 0, len(specs))
	for _, spec := range specs {
		r.mu.Lock()
		d := r.datasets[spec.Name]
		r.mu.Unlock()
		dsOpts := opts
		dsOpts.Dataset = spec.Name
		l, recovered, err := wal.Open(filepath.Join(dir, spec.Name), dsOpts)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", spec.Name, err)
		}
		info := DatasetRecovery{
			Dataset:         spec.Name,
			ReplayedRecords: len(recovered.Records),
			SkippedRecords:  recovered.SkippedRecords,
			TornBytes:       recovered.TornBytes,
		}
		if recovered.Checkpoint != nil {
			info.CheckpointVersion = recovered.Checkpoint.Version
			info.Version = recovered.Checkpoint.Version
		}
		if n := len(recovered.Records); n > 0 {
			info.Version = recovered.Records[n-1].Version
		}
		d.mu.Lock()
		d.log = l
		d.ckpt = recovered.Checkpoint
		d.tail = recovered.Records
		d.version = info.Version
		d.recovery = info
		d.mu.Unlock()
		out = append(out, info)
	}
	return out, nil
}

// closeWAL syncs and closes every dataset's log.
func (r *registry) closeWAL() error {
	r.mu.Lock()
	datasets := make([]*dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		datasets = append(datasets, d)
	}
	r.mu.Unlock()
	var first error
	for _, d := range datasets {
		d.mu.Lock()
		l := d.log
		d.mu.Unlock()
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// walBytes reports the named dataset's durable footprint (log +
// checkpoint file) for the capacity ledger's wal leaf. These are disk
// bytes, not resident memory — the ledger carries them so the same
// budget view covers everything the server's state costs.
func (r *registry) walBytes(name string) int64 {
	r.mu.Lock()
	d, ok := r.datasets[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	d.mu.Lock()
	l := d.log
	d.mu.Unlock()
	if l == nil {
		return 0
	}
	st := l.Stats()
	return st.SizeBytes + st.CheckpointBytes
}

// walDatasetStats is one dataset's entry in the /v1/stats wal section:
// the live log counters plus what recovery did at startup.
type walDatasetStats struct {
	wal.Stats
	Recovery DatasetRecovery `json:"recovery"`
}

// walStats is the /v1/stats wal section.
type walStats struct {
	Enabled bool `json:"enabled"`
	// SyncPolicy is the configured fsync policy (always/interval/none).
	SyncPolicy string `json:"sync_policy,omitempty"`
	// CheckpointEvery is the automatic checkpoint cadence in batches
	// (0 = automatic checkpoints disabled).
	CheckpointEvery int                        `json:"checkpoint_every,omitempty"`
	Datasets        map[string]walDatasetStats `json:"datasets,omitempty"`
}

func (s *Server) walStatsSnapshot() walStats {
	out := walStats{Enabled: s.walEnabled}
	if !s.walEnabled {
		return out
	}
	out.SyncPolicy = s.walSync.String()
	out.CheckpointEvery = s.registry.checkpointEvery
	out.Datasets = make(map[string]walDatasetStats)
	s.registry.mu.Lock()
	datasets := make([]*dataset, 0, len(s.registry.datasets))
	for _, d := range s.registry.datasets {
		datasets = append(datasets, d)
	}
	s.registry.mu.Unlock()
	for _, d := range datasets {
		d.mu.Lock()
		l, recovery := d.log, d.recovery
		d.mu.Unlock()
		if l == nil {
			continue
		}
		out.Datasets[d.spec.Name] = walDatasetStats{Stats: l.Stats(), Recovery: recovery}
	}
	return out
}
