package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/diffusion"
	"repro/internal/evolve"
	"repro/internal/graph"
)

// newEvolveTestServer builds a server over one file-backed dataset with a
// fully known edge list, so tests can name real edges in update batches.
func newEvolveTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(evolveTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func evolveTestConfig(t testing.TB) Config {
	t.Helper()
	const n = 60
	path := filepath.Join(t.TempDir(), "known.txt")
	content := fmt.Sprintf("# nodes=%d edges=%d\n", n, 3*n)
	for i := 0; i < n; i++ {
		content += fmt.Sprintf("%d %d\n%d %d\n%d %d\n",
			i, (i+1)%n, i, (i+7)%n, (i+3)%n, i)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return Config{
		Datasets:       []DatasetSpec{{Name: "known", Source: "file:" + path, Seed: 11}},
		RequestTimeout: time.Minute,
		Workers:        2,
		Seed:           5,
	}
}

// evolveTestUpdates is the mutation sequence both servers replay: it
// touches many heads (deletes, inserts, node growth with edges into the
// new nodes) so warm collections really need repair.
func evolveTestUpdates() []UpdateRequest {
	u1 := UpdateRequest{Dataset: "known", AddNodes: 2}
	for i := 0; i < 8; i++ {
		u1.Delete = append(u1.Delete, UpdateEdge{From: uint32(i), To: uint32(i+1) % 60})
		u1.Insert = append(u1.Insert, UpdateEdge{From: uint32(i * 3), To: 60})
	}
	u2 := UpdateRequest{Dataset: "known"}
	for i := 0; i < 6; i++ {
		u2.Insert = append(u2.Insert, UpdateEdge{From: 61, To: uint32(i * 5)})
		u2.Delete = append(u2.Delete, UpdateEdge{From: uint32(i), To: uint32(i+7) % 60})
	}
	return []UpdateRequest{u1, u2}
}

func applyUpdates(t *testing.T, url string, updates []UpdateRequest) UpdateResponse {
	t.Helper()
	var last UpdateResponse
	for i, u := range updates {
		status, body := postJSON(t, url+"/v1/update", u, &last)
		if status != http.StatusOK {
			t.Fatalf("update %d: status %d body %s", i, status, body)
		}
	}
	return last
}

// maximizeEssence strips the volatile fields (timing, cache/reuse
// accounting) so warm and cold answers can be compared exactly.
func maximizeEssence(m MaximizeResponse) MaximizeResponse {
	m.ElapsedMs = 0
	m.Cached = false
	m.RRSetsReused = 0
	m.RRSetsSampled = 0
	m.RRSetsRepaired = 0
	m.TraceID = ""
	return m
}

// TestUpdateWarmMatchesCold is the subsystem acceptance test: after a
// sequence of update batches, a server whose RR collections were warmed
// before the updates (and repaired incrementally) answers /v1/maximize
// bit-identically to a cold server that saw the updates before any query
// — for IC, and for LT (whose variant the cold server materializes at
// update time, before any LT query names it).
func TestUpdateWarmMatchesCold(t *testing.T) {
	_, warm := newEvolveTestServer(t)
	_, cold := newEvolveTestServer(t)

	icReq := MaximizeRequest{Dataset: "known", K: 4, Epsilon: 0.3}
	ltReq := MaximizeRequest{Dataset: "known", Model: "lt", K: 3, Epsilon: 0.3}

	// Warm both models' collections pre-update.
	var pre MaximizeResponse
	if status, body := postJSON(t, warm.URL+"/v1/maximize", icReq, &pre); status != http.StatusOK {
		t.Fatalf("warm-up maximize: %d %s", status, body)
	}
	if pre.GraphVersion != 0 {
		t.Fatalf("pre-update graph version = %d", pre.GraphVersion)
	}
	if status, body := postJSON(t, warm.URL+"/v1/maximize", ltReq, nil); status != http.StatusOK {
		t.Fatalf("warm-up lt maximize: %d %s", status, body)
	}

	updates := evolveTestUpdates()
	applyUpdates(t, warm.URL, updates)
	applyUpdates(t, cold.URL, updates)

	var warmIC, coldIC, warmLT, coldLT MaximizeResponse
	if status, body := postJSON(t, warm.URL+"/v1/maximize", icReq, &warmIC); status != http.StatusOK {
		t.Fatalf("warm ic: %d %s", status, body)
	}
	if status, body := postJSON(t, cold.URL+"/v1/maximize", icReq, &coldIC); status != http.StatusOK {
		t.Fatalf("cold ic: %d %s", status, body)
	}
	if status, body := postJSON(t, warm.URL+"/v1/maximize", ltReq, &warmLT); status != http.StatusOK {
		t.Fatalf("warm lt: %d %s", status, body)
	}
	if status, body := postJSON(t, cold.URL+"/v1/maximize", ltReq, &coldLT); status != http.StatusOK {
		t.Fatalf("cold lt: %d %s", status, body)
	}

	if got, want := maximizeEssence(warmIC), maximizeEssence(coldIC); !reflect.DeepEqual(got, want) {
		t.Fatalf("IC warm/cold diverged:\nwarm %+v\ncold %+v", got, want)
	}
	if got, want := maximizeEssence(warmLT), maximizeEssence(coldLT); !reflect.DeepEqual(got, want) {
		t.Fatalf("LT warm/cold diverged:\nwarm %+v\ncold %+v", got, want)
	}
	if warmIC.GraphVersion != 2 {
		t.Fatalf("post-update graph version = %d", warmIC.GraphVersion)
	}
	if warmIC.RRSetsRepaired == 0 {
		t.Fatalf("warm IC query did not repair any sets: %+v", warmIC)
	}
	if warmIC.RRSetsRepaired+warmIC.RRSetsReused+warmIC.RRSetsSampled < warmIC.Theta {
		t.Fatalf("repair accounting does not cover θ: %+v", warmIC)
	}

	// Spread on the mutated graph must agree too.
	spReq := SpreadRequest{Dataset: "known", Seeds: coldIC.Seeds, Samples: 1500}
	var warmSp, coldSp SpreadResponse
	if status, body := postJSON(t, warm.URL+"/v1/spread", spReq, &warmSp); status != http.StatusOK {
		t.Fatalf("warm spread: %d %s", status, body)
	}
	if status, body := postJSON(t, cold.URL+"/v1/spread", spReq, &coldSp); status != http.StatusOK {
		t.Fatalf("cold spread: %d %s", status, body)
	}
	if warmSp.Spread != coldSp.Spread || warmSp.Stderr != coldSp.Stderr || warmSp.GraphVersion != 2 {
		t.Fatalf("spread diverged: warm %+v cold %+v", warmSp, coldSp)
	}

	// The warm server's stats must show the repairs and the new dataset
	// version/size.
	var st statsSnapshot
	if status := getJSON(t, warm.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if st.RRCache.Repairs < 2 { // one per (model, ε) entry used post-update
		t.Fatalf("repairs = %d, want >= 2: %+v", st.RRCache.Repairs, st.RRCache)
	}
	if st.RRCache.SetsRepaired == 0 || st.RRCache.SetsRepairReused == 0 {
		t.Fatalf("repair set split missing: %+v", st.RRCache)
	}
	if st.RRCache.RepairColdResets != 0 {
		t.Fatalf("unexpected cold resets: %+v", st.RRCache)
	}
	if st.Endpoints["update"].Requests != int64(len(updates)) {
		t.Fatalf("update endpoint counters: %+v", st.Endpoints["update"])
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Version != 2 {
		t.Fatalf("stats datasets: %+v", st.Datasets)
	}
	if st.Datasets[0].Nodes != 62 {
		t.Fatalf("stats dataset nodes = %d, want 62", st.Datasets[0].Nodes)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime missing: %v", st.UptimeSeconds)
	}
}

// TestUpdateValidation: malformed update batches are rejected atomically
// with 4xx statuses and leave the dataset version untouched.
func TestUpdateValidation(t *testing.T) {
	_, ts := newEvolveTestServer(t)

	cases := []struct {
		name string
		req  UpdateRequest
		want int
	}{
		{"unknown dataset", UpdateRequest{Dataset: "nope", Insert: []UpdateEdge{{From: 0, To: 1}}}, http.StatusNotFound},
		{"empty batch", UpdateRequest{Dataset: "known"}, http.StatusBadRequest},
		{"delete missing edge", UpdateRequest{Dataset: "known", Delete: []UpdateEdge{{From: 0, To: 2}}}, http.StatusBadRequest},
		{"insert out of range", UpdateRequest{Dataset: "known", Insert: []UpdateEdge{{From: 0, To: 999}}}, http.StatusBadRequest},
		{"mixed valid+invalid", UpdateRequest{
			Dataset: "known",
			Insert:  []UpdateEdge{{From: 0, To: 5}},
			Delete:  []UpdateEdge{{From: 0, To: 2}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if status, body := postJSON(t, ts.URL+"/v1/update", tc.req, nil); status != tc.want {
			t.Errorf("%s: status %d (want %d) body %s", tc.name, status, tc.want, body)
		}
	}

	var ds struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if status := getJSON(t, ts.URL+"/v1/datasets", &ds); status != http.StatusOK {
		t.Fatalf("datasets: %d", status)
	}
	if ds.Datasets[0].Version != 0 {
		t.Fatalf("rejected updates bumped the version: %+v", ds.Datasets[0])
	}

	// A valid update then lands with version 1 and the right arithmetic.
	var ok UpdateResponse
	status, body := postJSON(t, ts.URL+"/v1/update", UpdateRequest{
		Dataset:  "known",
		AddNodes: 1,
		Insert:   []UpdateEdge{{From: 60, To: 0}},
		Delete:   []UpdateEdge{{From: 0, To: 1}},
	}, &ok)
	if status != http.StatusOK {
		t.Fatalf("valid update: %d %s", status, body)
	}
	if ok.Version != 1 || ok.Nodes != 61 || ok.Edges != 180 || ok.Inserted != 1 || ok.Deleted != 1 || ok.AddedNodes != 1 {
		t.Fatalf("update response: %+v", ok)
	}
}

// TestStaleSnapshotBypass: a query whose snapshot raced behind the
// shared RR collection (another query already advanced the entry past
// it) is served from a private cold sample at its own version — the
// entry is neither downgraded nor consulted — and the repaired entry
// keeps serving the current version bit-identically.
func TestStaleSnapshotBypass(t *testing.T) {
	srv, err := New(evolveTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	evg, err := srv.registry.get("known", diffusion.NewIC().Kind())
	if err != nil {
		t.Fatal(err)
	}
	g0, v0 := evg.Snapshot()
	const key = "known|ic|eps=0.3"
	const theta = 200
	ctx := context.Background()

	// Warm the entry at v0.
	src0 := srv.rr.source(key, evg, v0, diffusion.SampleConfig{})
	want0, err := src0.NodeSelectionSets(ctx, g0, diffusion.NewIC(), theta, 2)
	if err != nil {
		t.Fatal(err)
	}
	want0Flat := append([]uint32(nil), want0.Flat...)

	// An update lands; a fresh query advances the entry to v1.
	if _, err := srv.registry.update("known", evolve.Batch{
		Inserts: []graph.Edge{{From: 9, To: 30}}, Deletes: []evolve.EdgeKey{{From: 1, To: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	g1, v1 := evg.Snapshot()
	src1 := srv.rr.source(key, evg, v1, diffusion.SampleConfig{})
	if _, err := src1.NodeSelectionSets(ctx, g1, diffusion.NewIC(), theta, 2); err != nil {
		t.Fatal(err)
	}
	if src1.repaired == 0 {
		t.Fatalf("advancing query should have repaired: %+v", src1)
	}

	// A straggler still holding the v0 snapshot queries now: it must get
	// exactly the v0 bytes it would have gotten before the update, and
	// the entry must stay at v1.
	stale := srv.rr.source(key, evg, v0, diffusion.SampleConfig{})
	got, err := stale.NodeSelectionSets(ctx, g0, diffusion.NewIC(), theta, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flat) != len(want0Flat) {
		t.Fatalf("stale query shape: %d vs %d members", len(got.Flat), len(want0Flat))
	}
	for i := range want0Flat {
		if got.Flat[i] != want0Flat[i] {
			t.Fatalf("stale query member %d: %d vs %d", i, got.Flat[i], want0Flat[i])
		}
	}
	if st := srv.rr.stats(); st.StaleBypasses != 1 {
		t.Fatalf("stale bypass counter: %+v", st)
	}

	// And the entry still answers the current version untouched.
	src1b := srv.rr.source(key, evg, v1, diffusion.SampleConfig{})
	cur, err := src1b.NodeSelectionSets(ctx, g1, diffusion.NewIC(), theta, 2)
	if err != nil {
		t.Fatal(err)
	}
	cold := &diffusion.RRCollection{Off: []int64{0}}
	if _, err := diffusion.ExtendCollection(ctx, g1, diffusion.NewIC(), cold, theta, srv.cfg.Seed^fnv64(key), 2, nil); err != nil {
		t.Fatal(err)
	}
	for i := range cold.Flat {
		if cur.Flat[i] != cold.Flat[i] {
			t.Fatalf("entry corrupted by stale query: member %d: %d vs %d", i, cur.Flat[i], cold.Flat[i])
		}
	}
}

// TestUpdateRepeatedQueriesCacheAcrossVersions: the result cache keys on
// the graph version, so a post-update repeat of a pre-update query
// recomputes, and repeating it again hits the cache at the new version.
func TestUpdateRepeatedQueriesCacheAcrossVersions(t *testing.T) {
	_, ts := newEvolveTestServer(t)
	req := MaximizeRequest{Dataset: "known", K: 3, Epsilon: 0.3}

	var m1, m2, m3 MaximizeResponse
	postJSON(t, ts.URL+"/v1/maximize", req, &m1)
	applyUpdates(t, ts.URL, evolveTestUpdates()[:1])
	if status, body := postJSON(t, ts.URL+"/v1/maximize", req, &m2); status != http.StatusOK {
		t.Fatalf("post-update maximize: %d %s", status, body)
	}
	if m2.Cached {
		t.Fatal("post-update query served a stale cached answer")
	}
	if m2.GraphVersion != 1 {
		t.Fatalf("graph version = %d", m2.GraphVersion)
	}
	postJSON(t, ts.URL+"/v1/maximize", req, &m3)
	if !m3.Cached || m3.GraphVersion != 1 {
		t.Fatalf("repeat at same version not cached: %+v", m3)
	}
}
