package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// newCapacityTestServer builds a server with a tiny RR-store capacity
// (so churn forces evictions), a memory budget, and optionally a query
// flight log.
func newCapacityTestServer(t testing.TB, qlogPath string) (*Server, string) {
	t.Helper()
	srv, err := New(Config{
		Datasets: []DatasetSpec{
			{Name: "ba", Source: "ba:300:3", Seed: 7},
			{Name: "er", Source: "er:200:600", Seed: 7},
		},
		CacheSize:         4,
		RRCollections:     2,
		RequestTimeout:    time.Minute,
		Workers:           2,
		Seed:              1,
		MemoryBudgetBytes: 1 << 30,
		QLogPath:          qlogPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

// recomputeCacheBytes walks the live result-cache entries and re-sums
// their estimated footprints — the ground truth the result_cache ledger
// component must equal whenever no put is in flight.
func recomputeCacheBytes(c *lruCache) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		total += el.Value.(*lruEntry).bytes
	}
	return total
}

// TestLedgerExactUnderChurn: after queries, updates (incremental
// repair), and forced RR evictions, the ledger's rr_collections
// component equals the bytes recomputed over the live entries, and the
// figures /v1/stats reports for the rr store, the result cache, and
// the capacity section are bit-for-bit the same numbers. Run under
// -race this also proves the accounting is data-race-free.
func TestLedgerExactUnderChurn(t *testing.T) {
	srv, url := newCapacityTestServer(t, "")

	// Churn phase 1: queries across datasets and rungs. RRCollections=2
	// forces LRU eviction as the third key arrives.
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.3},
		{Dataset: "ba", K: 5, Epsilon: 0.3}, // warm extension of the same entry
		{Dataset: "er", K: 2, Epsilon: 0.3},
		{Dataset: "ba", K: 2, Epsilon: 0.25}, // third key: evicts the LRU entry
	} {
		if status, body := postJSON(t, url+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("maximize: %d %s", status, body)
		}
	}
	// Churn phase 2: a mutation triggers incremental repair on the next
	// warm query, which reallocates collection storage.
	update := UpdateRequest{Dataset: "ba", Insert: []UpdateEdge{{From: 3, To: 9}, {From: 5, To: 11}}}
	if status, body := postJSON(t, url+"/v1/update", update, nil); status != http.StatusOK {
		t.Fatalf("update: %d %s", status, body)
	}
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.25},
		{Dataset: "er", K: 3, Epsilon: 0.3},
	} {
		if status, body := postJSON(t, url+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("post-update maximize: %d %s", status, body)
		}
	}
	// Churn phase 3: shrink-refresh the same result-cache key — a large
	// answer replaced by a small one, then grown again. The refresh path
	// releases the old charge before adding the new; a single signed
	// delta here once let the component dip through readers' snapshots
	// and drift from the recomputed truth.
	big := MaximizeResponse{Seeds: make([]uint32, 64), Tier: "exact"}
	small := MaximizeResponse{Seeds: []uint32{1}}
	for _, v := range []MaximizeResponse{big, small, big, small} {
		srv.results.put("maximize|ba|churn-refresh", v)
	}
	if got, want := srv.results.memoryTotal(), recomputeCacheBytes(srv.results); got != want {
		t.Fatalf("result_cache ledger %d != recomputed %d after shrink-refresh churn", got, want)
	}

	// Recompute the rr footprint from the live entries and compare with
	// the ledger; evicted entries must have released their bytes.
	srv.rr.mu.Lock()
	var recomputed int64
	live := 0
	for _, e := range srv.rr.entries {
		recomputed += e.col.MemoryBytes() + int64(cap(e.cumWidth))*8
		live++
	}
	reported := srv.rr.memoryTotal()
	srv.rr.mu.Unlock()
	if live > 2 {
		t.Fatalf("rr store holds %d entries, capacity is 2", live)
	}
	if reported != recomputed {
		t.Fatalf("ledger rr bytes %d != recomputed %d", reported, recomputed)
	}
	if reported <= 0 {
		t.Fatal("no rr bytes accounted after churn")
	}

	var st statsSnapshot
	if status := getJSON(t, url+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	// /v1/stats may race against nothing here (no traffic in flight), so
	// every figure must agree exactly with the ledger.
	if st.RRCache.MemoryBytes != srv.ledger.SumComponent("rr_collections") {
		t.Fatalf("stats rr memory %d != ledger %d", st.RRCache.MemoryBytes, srv.ledger.SumComponent("rr_collections"))
	}
	if st.ResultCache.MemoryBytes != srv.ledger.SumComponent("result_cache") {
		t.Fatalf("stats cache memory %d != ledger %d", st.ResultCache.MemoryBytes, srv.ledger.SumComponent("result_cache"))
	}
	if st.ResultCache.MemoryBytes <= 0 {
		t.Fatal("result cache bytes not accounted")
	}
	if st.Capacity.Components["rr_collections"] != st.RRCache.MemoryBytes {
		t.Fatalf("capacity section rr %d != rr_cache %d", st.Capacity.Components["rr_collections"], st.RRCache.MemoryBytes)
	}
	if st.Capacity.Components["result_cache"] != st.ResultCache.MemoryBytes {
		t.Fatalf("capacity section cache %d != result_cache %d", st.Capacity.Components["result_cache"], st.ResultCache.MemoryBytes)
	}
	// CSR snapshots are func-backed: every loaded dataset pins at least
	// its adjacency arrays.
	if st.Capacity.Components["csr_snapshots"] <= 0 {
		t.Fatalf("csr snapshot bytes missing: %+v", st.Capacity.Components)
	}
	var sum int64
	for _, b := range st.Capacity.Components {
		sum += b
	}
	if st.Capacity.TotalBytes != sum {
		t.Fatalf("capacity total %d != component sum %d (%+v)", st.Capacity.TotalBytes, sum, st.Capacity.Components)
	}
}

// TestCapacityEndpoint: GET /v1/capacity reports a ledger tree whose
// root equals the sum of its leaves, headroom against the configured
// budget, and — once the planner has observed real collections —
// per-rung RR byte predictions.
func TestCapacityEndpoint(t *testing.T) {
	_, url := newCapacityTestServer(t, "")
	// Calibrate the planner's byte model: one real query per dataset.
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 5, Epsilon: 0.3},
		{Dataset: "er", K: 5, Epsilon: 0.3},
	} {
		if status, body := postJSON(t, url+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("maximize: %d %s", status, body)
		}
	}

	var capResp struct {
		TotalBytes    int64           `json:"total_bytes"`
		BudgetBytes   int64           `json:"budget_bytes"`
		HeadroomBytes *int64          `json:"headroom_bytes"`
		Ledger        obs.LedgerEntry `json:"ledger"`
		Predictions   []struct {
			Dataset string `json:"dataset"`
			Model   string `json:"model"`
			K       int    `json:"k"`
			Rungs   []struct {
				Epsilon        float64 `json:"epsilon"`
				PredictedBytes int64   `json:"predicted_bytes"`
			} `json:"rungs"`
		} `json:"predicted_rr_bytes"`
	}
	if status := getJSON(t, url+"/v1/capacity?k=10", &capResp); status != http.StatusOK {
		t.Fatal("capacity")
	}
	if capResp.TotalBytes <= 0 || capResp.TotalBytes != capResp.Ledger.Bytes {
		t.Fatalf("total %d vs ledger root %d", capResp.TotalBytes, capResp.Ledger.Bytes)
	}
	var leafSum int64
	for _, d := range capResp.Ledger.Children {
		var dsum int64
		for _, c := range d.Children {
			dsum += c.Bytes
		}
		if d.Bytes != dsum {
			t.Fatalf("dataset %s interior %d != child sum %d", d.Name, d.Bytes, dsum)
		}
		leafSum += d.Bytes
	}
	if capResp.Ledger.Bytes != leafSum {
		t.Fatalf("root %d != leaf sum %d", capResp.Ledger.Bytes, leafSum)
	}
	if capResp.BudgetBytes != 1<<30 {
		t.Fatalf("budget %d", capResp.BudgetBytes)
	}
	if capResp.HeadroomBytes == nil || *capResp.HeadroomBytes != capResp.BudgetBytes-capResp.TotalBytes {
		t.Fatalf("headroom %v, want budget-total", capResp.HeadroomBytes)
	}
	if len(capResp.Predictions) == 0 {
		t.Fatal("no byte predictions after calibration queries")
	}
	for _, p := range capResp.Predictions {
		if p.K != 10 || len(p.Rungs) == 0 {
			t.Fatalf("prediction %+v", p)
		}
		// θ grows as ε shrinks, so predicted bytes must be monotone
		// non-increasing along the ascending ladder.
		for i := 1; i < len(p.Rungs); i++ {
			if p.Rungs[i].Epsilon <= p.Rungs[i-1].Epsilon {
				t.Fatalf("ladder not ascending: %+v", p.Rungs)
			}
			if p.Rungs[i].PredictedBytes > p.Rungs[i-1].PredictedBytes {
				t.Fatalf("prediction not monotone in ε: %+v", p.Rungs)
			}
		}
		if p.Rungs[0].PredictedBytes <= 0 {
			t.Fatalf("non-positive prediction: %+v", p.Rungs)
		}
	}

	if status := getJSON(t, url+"/v1/capacity?k=zero", nil); status != http.StatusBadRequest {
		t.Fatalf("bad k: status %d, want 400", status)
	}
}

// TestHealthSLO: the endpoint reports both tier classes, stays 200
// while budgets are healthy, and flips to 503 once a class burns
// critically (fast window ≥10× the objective and slow window over 1×).
func TestHealthSLO(t *testing.T) {
	srv, url := newCapacityTestServer(t, "")

	var health struct {
		Status  obs.BudgetState               `json:"status"`
		Classes map[string]obs.BudgetSnapshot `json:"classes"`
	}
	if status := getJSON(t, url+"/v1/health/slo", &health); status != http.StatusOK {
		t.Fatalf("healthy server: status %d", status)
	}
	if health.Status != obs.BudgetOK {
		t.Fatalf("fresh server status %q", health.Status)
	}
	for _, class := range []string{"budgeted", "unbudgeted"} {
		if _, ok := health.Classes[class]; !ok {
			t.Fatalf("class %s missing: %+v", class, health.Classes)
		}
	}

	// Burn the budgeted class: all-bad traffic puts the 5-minute window
	// at 100× the 1% objective and the 1-hour window along with it.
	for i := 0; i < 20; i++ {
		srv.obs.sloObserve(true, true)
	}
	if status := getJSON(t, url+"/v1/health/slo", &health); status != http.StatusServiceUnavailable {
		t.Fatalf("burning server: status %d, want 503", status)
	}
	if health.Status != obs.BudgetCritical || health.Classes["budgeted"].State != obs.BudgetCritical {
		t.Fatalf("burning server state: %+v", health)
	}
	if health.Classes["unbudgeted"].State != obs.BudgetOK {
		t.Fatalf("unbudgeted class burned by budgeted traffic: %+v", health.Classes["unbudgeted"])
	}

	var st statsSnapshot
	if status := getJSON(t, url+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	if st.SLO["budgeted"].State != obs.BudgetCritical {
		t.Fatalf("stats slo section disagrees with /v1/health/slo: %+v", st.SLO)
	}
}

// TestQLogRecordsServerTraffic: a server with -qlog writes a readable
// flight log — header pinning seeds and datasets, one record per
// maximize-shaped query (plain, constrained, budgeted, failed), with
// profile hashes on constrained shapes and statuses matching the wire.
func TestQLogRecordsServerTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "QLOG.jsonl")
	srv, url := newCapacityTestServer(t, path)

	type sent struct {
		req        MaximizeRequest
		wantStatus int
	}
	traffic := []sent{
		{MaximizeRequest{Dataset: "ba", K: 3, Epsilon: 0.3}, http.StatusOK},
		{MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3, Exclude: []uint32{0}}, http.StatusOK},
		{MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3, BudgetMs: 5000}, http.StatusOK},
		{MaximizeRequest{Dataset: "nope", K: 1}, http.StatusNotFound},
	}
	for i, s := range traffic {
		if status, body := postJSON(t, url+"/v1/maximize", s.req, nil); status != s.wantStatus {
			t.Fatalf("request %d: status %d (%s), want %d", i, status, body, s.wantStatus)
		}
	}

	var st statsSnapshot
	if status := getJSON(t, url+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	if !st.QLog.Enabled || st.QLog.Seen != int64(len(traffic)) || st.QLog.Written != int64(len(traffic)) {
		t.Fatalf("qlog stats: %+v", st.QLog)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	header, records, err := obs.ReadQLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if header.Seed != 1 || len(header.Datasets) != 2 || len(header.EpsLadder) == 0 {
		t.Fatalf("header does not pin the serving environment: %+v", header)
	}
	if len(records) != len(traffic) {
		t.Fatalf("%d records, want %d", len(records), len(traffic))
	}
	for i, rec := range records {
		want := traffic[i]
		if rec.Dataset != want.req.Dataset || rec.K != want.req.K || rec.Status != want.wantStatus {
			t.Fatalf("record %d: %+v, want shape of %+v", i, rec, want)
		}
		if rec.Endpoint != "maximize" || rec.TraceID == "" {
			t.Fatalf("record %d missing endpoint/trace: %+v", i, rec)
		}
		constrained := len(want.req.Exclude) > 0
		if (rec.Profile != "") != constrained {
			t.Fatalf("record %d profile %q, constrained=%v", i, rec.Profile, constrained)
		}
		if want.wantStatus == http.StatusOK && (rec.Tier == "" || rec.Theta <= 0) {
			t.Fatalf("OK record %d lacks outcome fields: %+v", i, rec)
		}
		if i > 0 && rec.OffsetMs < records[i-1].OffsetMs {
			t.Fatalf("offsets not monotone: %v then %v", records[i-1].OffsetMs, rec.OffsetMs)
		}
	}
}
