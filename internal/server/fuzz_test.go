package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fuzzServer is shared across fuzz iterations: building a server (graph
// generation, registry setup) per input would drown the fuzzer in setup
// cost. The tiny graph and capped θ keep even well-formed requests cheap.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

func fuzzServerInstance(t testing.TB) *Server {
	fuzzSrvOnce.Do(func() {
		srv, err := New(Config{
			Datasets:       []DatasetSpec{{Name: "tiny", Source: "ba:60:2", Seed: 3}},
			CacheSize:      8,
			RequestTimeout: 2 * time.Second,
			Workers:        1,
			MaxTheta:       2000,
			Seed:           1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv = srv
	})
	return fuzzSrv
}

// FuzzMaximizeDecoder drives the /v1/maximize decoder and validator with
// arbitrary bodies. The contract: never panic, malformed or invalid
// input is a 400 with a typed error body, and every response is one of
// the statuses the API documents. ServeHTTP is called directly on a
// Recorder so a handler panic fails the fuzz run instead of being
// swallowed by net/http's connection-level recovery.
func FuzzMaximizeDecoder(f *testing.F) {
	// Seed corpus: every MaximizeRequest field, the tiered additions, and
	// assorted malformations.
	seeds := []string{
		`{"dataset":"tiny","k":3}`,
		`{"dataset":"tiny","k":3,"model":"lt","epsilon":0.2,"ell":1.5}`,
		`{"dataset":"tiny","k":3,"budget_ms":5}`,
		`{"dataset":"tiny","k":3,"budget_ms":0.001,"min_confidence":0.1}`,
		`{"dataset":"tiny","k":3,"min_confidence":0.99}`,
		`{"dataset":"tiny","k":3,"budget_ms":-7}`,
		`{"dataset":"tiny","k":3,"budget_ms":1e308}`,
		`{"dataset":"tiny","k":3,"min_confidence":"nan"}`,
		`{"dataset":"nope","k":3}`,
		`{"dataset":"tiny","k":0}`,
		`{"dataset":"tiny","k":-5}`,
		`{"dataset":"tiny","k":1000000}`,
		`{"dataset":"tiny","k":3,"epsilon":-1}`,
		`{"dataset":"tiny","k":3,"epsilon":2}`,
		`{"dataset":"tiny","k":3,"ell":-2}`,
		`{"dataset":"tiny","k":3,"seeds":[1,2,3]}`,
		`{"dataset":"tiny","k":3,"exclude":[0,59,60,4294967295]}`,
		`{"dataset":"tiny","k":2,"weights":{"0":2.5,"7":0.5}}`,
		`{"dataset":"tiny","k":2,"costs":{"1":3},"budget":4.5}`,
		`{"dataset":"tiny","k":2,"max_hops":2}`,
		`{"dataset":"tiny","k":2,"targets":[1,2,3]}`,
		`{"dataset":"tiny"`,
		`{"dataset":"tiny","k":"three"}`,
		`{"k":3}`,
		`[]`,
		`null`,
		``,
		`{"dataset":"tiny","k":3,"unknown_field":true}`,
		`{"dataset":"tiny","k":3,"budget_ms":{"nested":1}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		srv := fuzzServerInstance(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/maximize", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("status %d for body %q: %s", rec.Code, body, rec.Body.String())
		}
		if rec.Code == http.StatusBadRequest {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("400 body is not the typed error envelope: %q", rec.Body.String())
			}
			if e.Error == "" {
				t.Fatalf("400 with empty error for body %q", body)
			}
		}
	})
}
