package server

import (
	"net/http"
	"reflect"
	"strconv"
	"testing"
)

// TestConstrainedMaximize exercises every constraint field end to end on
// one server: audiences, budgets, forced/excluded seeds, horizons.
func TestConstrainedMaximize(t *testing.T) {
	_, ts := newTestServer(t)

	base := MaximizeRequest{Dataset: "ba", K: 4, Epsilon: 0.3}
	var plain MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize", base, &plain); status != http.StatusOK {
		t.Fatalf("plain: %d %s", status, body)
	}

	t.Run("weighted audience", func(t *testing.T) {
		req := base
		req.Weights = map[string]float64{"0": 10, "1": 10, "2": 10}
		req.WeightDefault = 0.1
		var resp MaximizeResponse
		if status, body := postJSON(t, ts.URL+"/v1/maximize", req, &resp); status != http.StatusOK {
			t.Fatalf("weighted: %d %s", status, body)
		}
		if resp.AudienceMass == 0 {
			t.Fatalf("audience_mass missing: %+v", resp)
		}
		wantMass := 3*10 + 297*0.1
		if diff := resp.AudienceMass - wantMass; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("audience_mass %.3f, want %.3f", resp.AudienceMass, wantMass)
		}
		if resp.SpreadEstimate > resp.AudienceMass {
			t.Fatalf("estimate %.2f above total mass %.2f", resp.SpreadEstimate, resp.AudienceMass)
		}
	})

	t.Run("force and exclude", func(t *testing.T) {
		req := base
		req.Force = []uint32{42}
		req.Exclude = plain.Seeds
		var resp MaximizeResponse
		if status, body := postJSON(t, ts.URL+"/v1/maximize", req, &resp); status != http.StatusOK {
			t.Fatalf("constrained: %d %s", status, body)
		}
		if resp.ForcedSeeds != 1 || resp.Seeds[0] != 42 {
			t.Fatalf("forced prefix: %+v", resp)
		}
		banned := map[uint32]bool{}
		for _, v := range plain.Seeds {
			banned[v] = true
		}
		for _, v := range resp.Seeds[1:] {
			if banned[v] {
				t.Fatalf("excluded node %d picked: %v", v, resp.Seeds)
			}
		}
		if len(resp.Seeds) != 5 { // 1 forced + k=4 picks
			t.Fatalf("seed count: %v", resp.Seeds)
		}
	})

	t.Run("budget", func(t *testing.T) {
		req := base
		req.K = 10
		req.Budget = 3
		req.Costs = map[string]float64{strconv.Itoa(int(plain.Seeds[0])): 2.5}
		var resp MaximizeResponse
		if status, body := postJSON(t, ts.URL+"/v1/maximize", req, &resp); status != http.StatusOK {
			t.Fatalf("budget: %d %s", status, body)
		}
		if resp.SeedCost > 3+1e-9 || len(resp.Seeds) > 3 {
			t.Fatalf("budget violated: cost %.2f seeds %v", resp.SeedCost, resp.Seeds)
		}
	})

	t.Run("max hops", func(t *testing.T) {
		req := base
		req.MaxHops = 1
		var resp MaximizeResponse
		if status, body := postJSON(t, ts.URL+"/v1/maximize", req, &resp); status != http.StatusOK {
			t.Fatalf("hops: %d %s", status, body)
		}
		if resp.SpreadEstimate >= plain.SpreadEstimate {
			t.Fatalf("1-hop estimate %.2f not below unbounded %.2f", resp.SpreadEstimate, plain.SpreadEstimate)
		}
	})

	t.Run("selection-only constraints share the unconstrained collection", func(t *testing.T) {
		var st statsSnapshot
		if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
			t.Fatalf("stats: %d", status)
		}
		// Collections: ba unconstrained (shared by plain + force/exclude +
		// budget), ba weighted, ba 1-hop.
		if st.RRCache.Collections != 3 {
			t.Fatalf("collections = %d, want 3: %+v", st.RRCache.Collections, st.RRCache)
		}
	})
}

// TestConstrainedDeterminism: identical constrained queries return
// identical answers, cached or not, and a warm collection never changes
// an answer (cold server comparison).
func TestConstrainedDeterminism(t *testing.T) {
	_, a := newTestServer(t)
	_, b := newTestServer(t)

	req := MaximizeRequest{
		Dataset: "ba", K: 3, Epsilon: 0.3,
		Weights:       map[string]float64{"5": 4, "9": 2},
		WeightDefault: 0.5,
		MaxHops:       2,
		Exclude:       []uint32{5},
	}
	// Server a answers twice (second hit comes from the result cache);
	// server b is warmed by a *different* ε-profile first, then answers.
	var a1, a2, b1 MaximizeResponse
	if status, body := postJSON(t, a.URL+"/v1/maximize", req, &a1); status != http.StatusOK {
		t.Fatalf("a1: %d %s", status, body)
	}
	if status, _ := postJSON(t, a.URL+"/v1/maximize", req, &a2); status != http.StatusOK {
		t.Fatal("a2")
	}
	warmup := MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3,
		Weights: req.Weights, WeightDefault: req.WeightDefault, MaxHops: 2}
	if status, _ := postJSON(t, b.URL+"/v1/maximize", warmup, nil); status != http.StatusOK {
		t.Fatal("warmup")
	}
	if status, _ := postJSON(t, b.URL+"/v1/maximize", req, &b1); status != http.StatusOK {
		t.Fatal("b1")
	}
	if !a2.Cached {
		t.Fatalf("repeat not cached: %+v", a2)
	}
	if !reflect.DeepEqual(a1.Seeds, b1.Seeds) || a1.SpreadEstimate != b1.SpreadEstimate || a1.Theta != b1.Theta {
		t.Fatalf("warm/cold constrained answers diverged:\na %+v\nb %+v", a1, b1)
	}
	if !reflect.DeepEqual(maximizeEssence(a1), maximizeEssence(a2)) {
		t.Fatalf("cache changed the answer:\n%+v\n%+v", a1, a2)
	}
	if b1.RRSetsReused == 0 {
		t.Fatalf("warmed profile collection not reused: %+v", b1)
	}
}

// TestConstraintRejections: invalid constraint specs map to 400 with the
// per-dataset rejection counter advancing; valid constrained queries
// advance the constrained counter.
func TestConstraintRejections(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []MaximizeRequest{
		{Dataset: "ba", K: 2, Weights: map[string]float64{"nope": 1}},
		{Dataset: "ba", K: 2, Weights: map[string]float64{"999999": 1}},
		{Dataset: "ba", K: 2, WeightDefault: 2},
		{Dataset: "ba", K: 2, Weights: map[string]float64{"0": -1}},
		{Dataset: "ba", K: 2, Costs: map[string]float64{"0": 1}},
		{Dataset: "ba", K: 2, Budget: 1, Costs: map[string]float64{"0": -2}},
		{Dataset: "ba", K: 2, Force: []uint32{1}, Exclude: []uint32{1}},
		{Dataset: "ba", K: 2, MaxHops: -1},
	}
	for i, req := range bad {
		if status, body := postJSON(t, ts.URL+"/v1/maximize", req, nil); status != http.StatusBadRequest {
			t.Fatalf("bad[%d]: status %d body %s", i, status, body)
		}
	}
	if status, _ := postJSON(t, ts.URL+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3, Exclude: []uint32{0}}, nil); status != http.StatusOK {
		t.Fatal("valid constrained query failed")
	}
	var st statsSnapshot
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	q := st.QuerySubsystem["ba"]
	if q.ConstraintRejections != int64(len(bad)) {
		t.Fatalf("constraint_rejections = %d, want %d (%+v)", q.ConstraintRejections, len(bad), q)
	}
	if q.ConstrainedQueries != 1 {
		t.Fatalf("constrained_queries = %d, want 1 (%+v)", q.ConstrainedQueries, q)
	}
}

// TestQueryBatch: the batch endpoint answers in order, isolates per-item
// failures, shares warm collections across items, and feeds the
// batch_queries counter.
func TestQueryBatch(t *testing.T) {
	_, ts := newTestServer(t)
	req := BatchRequest{Queries: []MaximizeRequest{
		{Dataset: "ba", K: 3, Epsilon: 0.3},
		{Dataset: "ba", K: 3, Epsilon: 0.3, Exclude: []uint32{1}},
		{Dataset: "missing", K: 3},
		{Dataset: "ba", K: 5, Epsilon: 0.3},
	}}
	var resp BatchResponse
	if status, body := postJSON(t, ts.URL+"/v1/query/batch", req, &resp); status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results: %+v", resp)
	}
	if resp.Results[0].Result == nil || resp.Results[1].Result == nil || resp.Results[3].Result == nil {
		t.Fatalf("batch items failed: %+v", resp.Results)
	}
	if resp.Results[2].Error == "" || resp.Results[2].Result != nil {
		t.Fatalf("missing dataset item should fail alone: %+v", resp.Results[2])
	}
	// Items 0, 1, and 3 share one RR-sharing group; the scheduler runs
	// the largest-predicted-θ item (item 3, K=5) first as the group's
	// warm-up, so items 0 and 1 must then serve the bulk of their θ from
	// the warm collection it extended. (The θ prediction is a heuristic —
	// KPT shifts with k — so a small top-up extension is legitimate;
	// starting cold is not.)
	if resp.Results[3].Result.RRSetsSampled == 0 {
		t.Fatalf("warm-up item sampled nothing: %+v", resp.Results[3].Result)
	}
	for _, i := range []int{0, 1} {
		r := resp.Results[i].Result
		if r.RRSetsReused == 0 || r.RRSetsSampled > r.RRSetsReused {
			t.Fatalf("batch item %d did not serve from the warm-up's sets: %+v", i, r)
		}
	}
	// A standalone maximize must agree exactly with the batch item.
	var solo MaximizeResponse
	if status, _ := postJSON(t, ts.URL+"/v1/maximize", req.Queries[0], &solo); status != http.StatusOK {
		t.Fatal("solo")
	}
	if !reflect.DeepEqual(solo.Seeds, resp.Results[0].Result.Seeds) {
		t.Fatalf("batch vs solo seeds: %v vs %v", resp.Results[0].Result.Seeds, solo.Seeds)
	}

	var st statsSnapshot
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	if st.QuerySubsystem["ba"].BatchQueries != 3 {
		t.Fatalf("batch_queries = %d, want 3", st.QuerySubsystem["ba"].BatchQueries)
	}
	if st.QuerySubsystem["missing"].BatchQueries != 1 {
		t.Fatalf("missing-dataset batch_queries = %d, want 1", st.QuerySubsystem["missing"].BatchQueries)
	}
	if st.Endpoints["batch"].Requests != 1 {
		t.Fatalf("batch endpoint stats: %+v", st.Endpoints["batch"])
	}

	// Oversized and empty batches are rejected whole.
	big := BatchRequest{Queries: make([]MaximizeRequest, MaxBatchQueries+1)}
	if status, _ := postJSON(t, ts.URL+"/v1/query/batch", big, nil); status != http.StatusBadRequest {
		t.Fatalf("oversized batch accepted: %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/query/batch", BatchRequest{}, nil); status != http.StatusBadRequest {
		t.Fatalf("empty batch accepted: %d", status)
	}
}

// TestWeightedCollectionCounter: creating a weighted profile entry bumps
// the per-dataset weighted_collections counter exactly once.
func TestWeightedCollectionCounter(t *testing.T) {
	_, ts := newTestServer(t)
	req := MaximizeRequest{
		Dataset: "ba", K: 2, Epsilon: 0.3,
		Weights: map[string]float64{"3": 5}, WeightDefault: 1,
	}
	for i := 0; i < 3; i++ {
		r := req
		r.K = 2 + i // dodge the result cache; same profile collection
		if status, body := postJSON(t, ts.URL+"/v1/maximize", r, nil); status != http.StatusOK {
			t.Fatalf("weighted %d: %d %s", i, status, body)
		}
	}
	var st statsSnapshot
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	if got := st.QuerySubsystem["ba"].WeightedCollections; got != 1 {
		t.Fatalf("weighted_collections = %d, want 1", got)
	}
}
