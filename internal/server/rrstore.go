package server

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"repro/internal/diffusion"
	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/obs"
)

// rrStore is the RR-collection reuse layer. It holds one growing RR
// collection per (dataset, model, ε, sampling profile) key and hands
// exact-θ prefix views to queries through the tim.CollectionSource hook.
// The sampling profile is the compiled constraint hash (query.Compiled
// .Hash): audience-weight vectors and diffusion horizons key separate
// collections, while selection-only constraints — budgets, costs, forced
// or excluded seeds — deliberately share the unconstrained profile, so
// those queries keep hitting the same warm sketches. Because extensions
// are prefix-deterministic (diffusion.ExtendCollection keys set i by
// (entry seed, i)), a query sees bit-identical RR sets whether the store
// was cold, partially warm from a smaller-k query, or fully warm — reuse
// can only skip sampling, never change an answer.
//
// Collections are also version-aware: each entry remembers the graph
// version it was sampled at, and when a query arrives on a newer
// snapshot the entry is repaired in place (evolve.Repair re-derives only
// the sets the delta could have touched, bit-identical to a cold sample
// on the new snapshot) instead of being dropped. Only when the delta log
// no longer reaches back to the entry's version — or the model is not
// incrementally maintainable — does the entry reset cold.
//
// ε is part of the key not for statistical validity (any i.i.d. RR sets
// serve any ε) but to keep the per-key growth pattern matched to one θ
// schedule, so collections do not balloon past what their query mix
// needs. Because ε is client-supplied, the key space is unbounded; the
// store therefore caps the number of live collections and evicts the
// least recently used one — a query on an evicted key simply resamples,
// and determinism is unaffected (the entry seed depends only on the
// key).
type rrStore struct {
	mu       sync.Mutex
	entries  map[string]*rrEntry
	order    *list.List // front = most recently used key
	capacity int
	seed     uint64

	// ledger is the capacity ledger the store's resident bytes live in:
	// one account per dataset under the "rr_collections" component. The
	// old timserver_rr_memory_bytes gauge is now a func-backed view of
	// the ledger, so /metrics, /v1/stats, and /v1/capacity all read one
	// source of truth.
	ledger *obs.Ledger

	// Registry instruments: /v1/stats and /metrics read the same cells.
	// The instruments are atomic, so updating them never blocks behind an
	// entry mutex; only ledger deltas (and e.memory) stay under mu,
	// because eviction reads them there.
	setsSampled       *obs.Counter
	setsReused        *obs.Counter
	extensions        *obs.Counter
	partialExtensions *obs.Counter
	evictions         *obs.Counter
	repairs           *obs.Counter
	setsRepaired      *obs.Counter
	setsRepairReused  *obs.Counter
	repairColdResets  *obs.Counter
	repairTotalMs     *obs.Counter
	repairMaxMs       *obs.Gauge
	staleBypasses     *obs.Counter
}

// rrEntry is one cached collection. cumWidth[i] is Σ widths of the first
// i sets, so a θ-prefix view knows its TotalWidth in O(1). version is the
// graph version the collection's sets were (re)derived on; versioned
// records whether version has been initialized by a first query.
type rrEntry struct {
	mu        sync.Mutex
	col       *diffusion.RRCollection
	cumWidth  []int64
	seed      uint64
	version   uint64
	versioned bool
	// memory, elem, and evicted are guarded by the *store* mutex (memory
	// is read by eviction, which holds only the store mutex). An evicted
	// entry may still be held by an in-flight query; it finishes
	// normally but no longer contributes to the store's memory
	// accounting.
	memory  int64
	elem    *list.Element
	evicted bool
	// mem is the entry's ledger account — the (dataset, "rr_collections")
	// leaf; entries of one dataset share it, so deltas accumulate.
	mem *obs.Account
}

func newRRStore(seed uint64, capacity int, reg *obs.Registry, ledger *obs.Ledger) *rrStore {
	if capacity < 1 {
		capacity = 1
	}
	reg.GaugeFunc("timserver_rr_memory_bytes", "Resident bytes across live RR collections.",
		func() float64 { return float64(ledger.SumComponent("rr_collections")) })
	return &rrStore{
		entries:  make(map[string]*rrEntry),
		order:    list.New(),
		capacity: capacity,
		seed:     seed,
		ledger:   ledger,

		setsSampled:       reg.Counter("timserver_rr_sets_sampled_total", "RR sets sampled fresh (cache misses and extensions)."),
		setsReused:        reg.Counter("timserver_rr_sets_reused_total", "RR sets served from warm collections without resampling."),
		extensions:        reg.Counter("timserver_rr_extensions_total", "Collection extensions (queries that sampled past the warm prefix)."),
		partialExtensions: reg.Counter("timserver_rr_partial_extensions_total", "Extensions cut short by a deadline that still kept their prefix."),
		evictions:         reg.Counter("timserver_rr_evictions_total", "RR collections evicted by the LRU cap."),
		repairs:           reg.Counter("timserver_rr_repairs_total", "Update-triggered incremental repairs of warm collections."),
		setsRepaired:      reg.Counter("timserver_rr_sets_repaired_total", "RR sets re-derived by incremental repairs."),
		setsRepairReused:  reg.Counter("timserver_rr_sets_repair_reused_total", "RR sets kept as-is by incremental repairs."),
		repairColdResets:  reg.Counter("timserver_rr_repair_cold_resets_total", "Collections restarted cold (delta log exhausted or unsupported model)."),
		repairTotalMs:     reg.Counter("timserver_rr_repair_ms_total", "Total milliseconds spent in incremental repairs."),
		repairMaxMs:       reg.Gauge("timserver_rr_repair_max_ms", "Slowest single incremental repair in milliseconds."),
		staleBypasses:     reg.Counter("timserver_rr_stale_bypasses_total", "Queries served from a private cold sample after racing behind the shared collection."),
	}
}

// entry returns (creating if needed) the collection for key, evicting
// the least recently used entry when the cap is exceeded. The entry's
// sampling seed depends only on (store seed, key), so two servers with
// the same base seed answer identically — as does one server before and
// after an eviction. created reports whether this call built the entry.
func (s *rrStore) entry(key string) (_ *rrEntry, created bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.order.MoveToFront(e.elem)
		return e, false
	}
	for len(s.entries) >= s.capacity {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		victimKey := oldest.Value.(string)
		victim := s.entries[victimKey]
		s.order.Remove(oldest)
		delete(s.entries, victimKey)
		victim.evicted = true
		victim.mem.Add(-victim.memory)
		s.evictions.Inc()
	}
	e := &rrEntry{
		col:      &diffusion.RRCollection{Off: []int64{0}},
		cumWidth: []int64{0},
		seed:     s.seed ^ fnv64(key),
		mem:      s.ledger.Account(rrKeyDataset(key), "rr_collections"),
	}
	e.elem = s.order.PushFront(key)
	s.entries[key] = e
	return e, true
}

// rrKeyDataset extracts the dataset name from a reuse-layer key
// ("dataset|model|eps=..." — see doMaximize), the ledger dimension rr
// bytes are attributed along.
func rrKeyDataset(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

// fnv64 is the FNV-1a hash, used to derive per-key sampling seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// source binds the store to one key as a tim.CollectionSource for one
// query against one graph snapshot. It also records the per-query
// reuse/repair split so handlers can report it.
type rrSource struct {
	store *rrStore
	key   string
	evg   *evolve.Graph
	// snapVersion is the version of the snapshot the handler passes into
	// tim.MaximizeContext — the graph NodeSelectionSets will receive.
	snapVersion uint64
	// cfg is the sampling scenario of the query. The key embeds the
	// compiled profile hash, so every query landing on this entry samples
	// (and repairs) under an equivalent config — that is what keeps the
	// entry's sets interchangeable and the CollectionSource contract met
	// for constrained queries.
	cfg diffusion.SampleConfig

	// Filled by NodeSelectionSets for the handler to read back. A source
	// is used for a single Maximize call, so no locking is needed.
	reused   int64
	sampled  int64
	repaired int64
	// memory is the entry's footprint after this query, for the
	// planner's byte model (0 on the bypass path, which retains
	// nothing).
	memory int64
	// created reports that this query built the entry (first query on a
	// fresh profile key); handlers use it to count weighted collections.
	created bool
}

func (s *rrStore) source(key string, evg *evolve.Graph, snapVersion uint64, cfg diffusion.SampleConfig) *rrSource {
	return &rrSource{store: s, key: key, evg: evg, snapVersion: snapVersion, cfg: cfg}
}

// NodeSelectionSets implements tim.CollectionSource: bring the cached
// collection to exactly the query's snapshot version (repairing
// incrementally when the delta log allows, resetting cold otherwise),
// extend it to θ sets if needed, and return the θ-prefix view.
func (r *rrSource) NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	span := obs.StartSpan(ctx, "rr.store").Attr("theta", theta).Attr("workers", int64(workers))
	defer func() {
		span.Attr("reused", r.reused).Attr("sampled", r.sampled).Attr("repaired", r.repaired).End()
	}()
	e, created := r.store.entry(r.key)
	r.created = created
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.versioned && e.version > r.snapVersion {
		// This query resolved its snapshot before a concurrent update
		// landed, and another query has since moved the shared entry
		// past it. Serve the stale snapshot from a private cold sample
		// — the same bytes a cold server at that version would draw —
		// and leave the newer entry alone.
		span.Attr("stale_bypass", true)
		return r.sampleBypass(ctx, g, model, theta, workers)
	}

	var repairStats evolve.RepairStats
	var repairMs float64
	didRepair, coldReset := false, false
	switch {
	case !e.versioned:
		e.version, e.versioned = r.snapVersion, true
	case e.version != r.snapVersion:
		start := time.Now()
		delta, ok := r.evg.DeltaBetween(e.version, r.snapVersion)
		if ok && e.col.Count() > 0 {
			widths := make([]int64, e.col.Count())
			for i := range widths {
				widths[i] = e.cumWidth[i+1] - e.cumWidth[i]
			}
			newCol, newWidths, st, err := evolve.RepairConfig(ctx, g, model, r.cfg, e.col, widths, delta, e.seed, workers)
			switch {
			case err == nil:
				e.col = newCol
				e.cumWidth = e.cumWidth[:1]
				for _, w := range newWidths {
					e.cumWidth = append(e.cumWidth, e.cumWidth[len(e.cumWidth)-1]+w)
				}
				repairStats = st
				didRepair = true
			case errors.Is(err, evolve.ErrUnsupportedModel):
				coldReset = true
			default:
				return nil, err // context cancellation and the like
			}
		} else if !ok {
			// The delta log no longer reaches back to the entry's
			// version: repair-instead-of-drop is off the table.
			coldReset = e.col.Count() > 0
		}
		if coldReset {
			e.col = &diffusion.RRCollection{Off: []int64{0}}
			e.cumWidth = []int64{0}
		}
		e.version = r.snapVersion
		repairMs = float64(time.Since(start).Microseconds()) / 1000
		r.repaired = repairStats.Repaired
	}

	have := int64(e.col.Count())
	var extErr error
	if have < theta {
		// Partial-keep extension: if the query's deadline fires
		// mid-extension, the flushed prefix stays in the shared entry
		// (prefix determinism makes it exactly what the next query would
		// re-derive), so deadline-bounded budgeted traffic ratchets the
		// collection toward θ instead of sampling in vain.
		var tail []int64
		tail, extErr = diffusion.ExtendCollectionConfigPartial(ctx, g, model, r.cfg, e.col, theta, e.seed, workers, nil)
		for _, w := range tail {
			e.cumWidth = append(e.cumWidth, e.cumWidth[len(e.cumWidth)-1]+w)
		}
		r.reused = have
		r.sampled = int64(len(tail))
	} else {
		r.reused = theta
	}
	memory := e.col.MemoryBytes() + int64(cap(e.cumWidth))*8
	r.memory = memory

	r.store.setsReused.Add(float64(r.reused))
	r.store.setsSampled.Add(float64(r.sampled))
	if r.sampled > 0 {
		r.store.extensions.Inc()
	}
	if extErr != nil && r.sampled > 0 {
		r.store.partialExtensions.Inc()
	}
	if didRepair {
		r.store.repairs.Inc()
		r.store.setsRepaired.Add(float64(repairStats.Repaired))
		r.store.setsRepairReused.Add(float64(repairStats.Reused))
		r.store.repairTotalMs.Add(repairMs)
		r.store.repairMaxMs.SetMax(repairMs)
	}
	if coldReset {
		span.Attr("cold_reset", true)
		r.store.repairColdResets.Inc()
	}
	r.store.mu.Lock()
	if !e.evicted {
		e.mem.Add(memory - e.memory)
	}
	e.memory = memory // under store.mu: eviction reads it there
	r.store.mu.Unlock()

	if extErr != nil {
		return nil, extErr
	}
	return e.col.Prefix(int(theta), e.cumWidth[theta]), nil
}

// sampleBypass serves one query from a private collection sampled cold
// with the entry's keyed seed, without touching the shared entry. Used
// only on the rare race where the shared collection has already advanced
// past the query's snapshot; determinism holds because cold sampling at
// the snapshot version with the entry seed is exactly what a cold server
// at that version would do.
func (r *rrSource) sampleBypass(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	seed := r.store.seed ^ fnv64(r.key)
	col := &diffusion.RRCollection{Off: []int64{0}}
	if _, err := diffusion.ExtendCollectionConfig(ctx, g, model, r.cfg, col, theta, seed, workers, nil); err != nil {
		return nil, err
	}
	r.sampled = theta
	r.store.setsSampled.Add(float64(theta))
	r.store.staleBypasses.Inc()
	return col, nil
}

// rrStoreStats is the /v1/stats snapshot of the reuse layer.
type rrStoreStats struct {
	Collections int64 `json:"collections"`
	Capacity    int   `json:"capacity"`
	SetsSampled int64 `json:"sets_sampled"`
	SetsReused  int64 `json:"sets_reused"`
	Extensions  int64 `json:"extensions"`
	// PartialExtensions counts extensions cut short by a deadline that
	// still flushed a kept prefix into the shared collection (the budget
	// ratchet: the next query on the key resumes from that prefix).
	PartialExtensions int64 `json:"partial_extensions"`
	Evictions         int64 `json:"evictions"`
	MemoryBytes       int64 `json:"memory_bytes"`
	// Repairs counts update-triggered incremental repairs of warm
	// collections; SetsRepaired / SetsRepairReused split their sets into
	// re-derived and kept. RepairColdResets counts collections that had
	// to restart cold (delta log exhausted or unsupported model).
	Repairs          int64   `json:"repairs"`
	SetsRepaired     int64   `json:"sets_repaired"`
	SetsRepairReused int64   `json:"sets_repair_reused"`
	RepairColdResets int64   `json:"repair_cold_resets"`
	RepairTotalMs    float64 `json:"repair_total_ms"`
	RepairMaxMs      float64 `json:"repair_max_ms"`
	// StaleBypasses counts queries served from a private cold sample
	// because their snapshot raced behind the shared collection.
	StaleBypasses int64 `json:"stale_bypasses"`
}

// memoryTotal reports the store's resident bytes from the ledger (the
// sum of every dataset's rr_collections account).
func (s *rrStore) memoryTotal() int64 {
	return s.ledger.SumComponent("rr_collections")
}

func (s *rrStore) stats() rrStoreStats {
	s.mu.Lock()
	collections := int64(len(s.entries))
	s.mu.Unlock()
	return rrStoreStats{
		Collections:       collections,
		Capacity:          s.capacity,
		SetsSampled:       s.setsSampled.Int(),
		SetsReused:        s.setsReused.Int(),
		Extensions:        s.extensions.Int(),
		PartialExtensions: s.partialExtensions.Int(),
		Evictions:         s.evictions.Int(),
		MemoryBytes:       s.memoryTotal(),
		Repairs:           s.repairs.Int(),
		SetsRepaired:      s.setsRepaired.Int(),
		SetsRepairReused:  s.setsRepairReused.Int(),
		RepairColdResets:  s.repairColdResets.Int(),
		RepairTotalMs:     s.repairTotalMs.Value(),
		RepairMaxMs:       s.repairMaxMs.Value(),
		StaleBypasses:     s.staleBypasses.Int(),
	}
}
