package server

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
)

// rrStore is the RR-collection reuse layer. It holds one growing RR
// collection per (dataset, model, ε) key and hands exact-θ prefix views
// to queries through the tim.CollectionSource hook. Because extensions
// are prefix-deterministic (diffusion.ExtendCollection keys set i by
// (entry seed, i)), a query sees bit-identical RR sets whether the store
// was cold, partially warm from a smaller-k query, or fully warm — reuse
// can only skip sampling, never change an answer.
//
// ε is part of the key not for statistical validity (any i.i.d. RR sets
// serve any ε) but to keep the per-key growth pattern matched to one θ
// schedule, so collections do not balloon past what their query mix
// needs. Because ε is client-supplied, the key space is unbounded; the
// store therefore caps the number of live collections and evicts the
// least recently used one — a query on an evicted key simply resamples,
// and determinism is unaffected (the entry seed depends only on the
// key).
type rrStore struct {
	mu       sync.Mutex
	entries  map[string]*rrEntry
	order    *list.List // front = most recently used key
	capacity int
	seed     uint64

	// Counters for /v1/stats (guarded by mu, never by entry mutexes, so
	// reading stats cannot block behind an in-flight extension).
	setsSampled int64
	setsReused  int64
	extensions  int64
	evictions   int64
	memoryBytes int64
}

// rrEntry is one cached collection. cumWidth[i] is Σ widths of the first
// i sets, so a θ-prefix view knows its TotalWidth in O(1).
type rrEntry struct {
	mu       sync.Mutex
	col      *diffusion.RRCollection
	cumWidth []int64
	seed     uint64
	// memory, elem, and evicted are guarded by the *store* mutex (memory
	// is read by eviction, which holds only the store mutex). An evicted
	// entry may still be held by an in-flight query; it finishes
	// normally but no longer contributes to the store's memory
	// accounting.
	memory  int64
	elem    *list.Element
	evicted bool
}

func newRRStore(seed uint64, capacity int) *rrStore {
	if capacity < 1 {
		capacity = 1
	}
	return &rrStore{
		entries:  make(map[string]*rrEntry),
		order:    list.New(),
		capacity: capacity,
		seed:     seed,
	}
}

// entry returns (creating if needed) the collection for key, evicting
// the least recently used entry when the cap is exceeded. The entry's
// sampling seed depends only on (store seed, key), so two servers with
// the same base seed answer identically — as does one server before and
// after an eviction.
func (s *rrStore) entry(key string) *rrEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.order.MoveToFront(e.elem)
		return e
	}
	for len(s.entries) >= s.capacity {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		victimKey := oldest.Value.(string)
		victim := s.entries[victimKey]
		s.order.Remove(oldest)
		delete(s.entries, victimKey)
		victim.evicted = true
		s.memoryBytes -= victim.memory
		s.evictions++
	}
	e := &rrEntry{
		col:      &diffusion.RRCollection{Off: []int64{0}},
		cumWidth: []int64{0},
		seed:     s.seed ^ fnv64(key),
	}
	e.elem = s.order.PushFront(key)
	s.entries[key] = e
	return e
}

// fnv64 is the FNV-1a hash, used to derive per-key sampling seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// source binds the store to one key as a tim.CollectionSource. It also
// records the per-query reuse split so handlers can report it.
type rrSource struct {
	store *rrStore
	key   string

	// Filled by NodeSelectionSets for the handler to read back. A source
	// is used for a single Maximize call, so no locking is needed.
	reused  int64
	sampled int64
}

func (s *rrStore) source(key string) *rrSource {
	return &rrSource{store: s, key: key}
}

// NodeSelectionSets implements tim.CollectionSource: extend the cached
// collection to θ sets if needed and return the θ-prefix view.
func (r *rrSource) NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	e := r.store.entry(r.key)
	e.mu.Lock()
	defer e.mu.Unlock()

	have := int64(e.col.Count())
	if have < theta {
		tail, err := diffusion.ExtendCollection(ctx, g, model, e.col, theta, e.seed, workers, nil)
		if err != nil {
			return nil, err
		}
		for _, w := range tail {
			e.cumWidth = append(e.cumWidth, e.cumWidth[len(e.cumWidth)-1]+w)
		}
		r.reused = have
		r.sampled = theta - have
	} else {
		r.reused = theta
	}
	memory := e.col.MemoryBytes() + int64(cap(e.cumWidth))*8

	r.store.mu.Lock()
	r.store.setsReused += r.reused
	r.store.setsSampled += r.sampled
	if r.sampled > 0 {
		r.store.extensions++
	}
	if !e.evicted {
		r.store.memoryBytes += memory - e.memory
	}
	e.memory = memory // under store.mu: eviction reads it there
	r.store.mu.Unlock()

	return e.col.Prefix(int(theta), e.cumWidth[theta]), nil
}

// rrStoreStats is the /v1/stats snapshot of the reuse layer.
type rrStoreStats struct {
	Collections int64 `json:"collections"`
	Capacity    int   `json:"capacity"`
	SetsSampled int64 `json:"sets_sampled"`
	SetsReused  int64 `json:"sets_reused"`
	Extensions  int64 `json:"extensions"`
	Evictions   int64 `json:"evictions"`
	MemoryBytes int64 `json:"memory_bytes"`
}

func (s *rrStore) stats() rrStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rrStoreStats{
		Collections: int64(len(s.entries)),
		Capacity:    s.capacity,
		SetsSampled: s.setsSampled,
		SetsReused:  s.setsReused,
		Extensions:  s.extensions,
		Evictions:   s.evictions,
		MemoryBytes: s.memoryBytes,
	}
}
