package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/diffusion"
	"repro/internal/diskrr"
	"repro/internal/evolve"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
)

// rrStore is the RR-collection reuse layer. It holds one growing RR
// collection per (dataset, model, ε, sampling profile) key and hands
// exact-θ prefix views to queries through the tim.CollectionSource hook.
// The sampling profile is the compiled constraint hash (query.Compiled
// .Hash): audience-weight vectors and diffusion horizons key separate
// collections, while selection-only constraints — budgets, costs, forced
// or excluded seeds — deliberately share the unconstrained profile, so
// those queries keep hitting the same warm sketches. Because extensions
// are prefix-deterministic (diffusion.ExtendCollection keys set i by
// (entry seed, i)), a query sees bit-identical RR sets whether the store
// was cold, partially warm from a smaller-k query, or fully warm — reuse
// can only skip sampling, never change an answer.
//
// Collections are also version-aware: each entry remembers the graph
// version it was sampled at, and when a query arrives on a newer
// snapshot the entry is repaired in place (evolve.Repair re-derives only
// the sets the delta could have touched, bit-identical to a cold sample
// on the new snapshot) instead of being dropped. Only when the delta log
// no longer reaches back to the entry's version — or the model is not
// incrementally maintainable — does the entry reset cold.
//
// ε is part of the key not for statistical validity (any i.i.d. RR sets
// serve any ε) but to keep the per-key growth pattern matched to one θ
// schedule, so collections do not balloon past what their query mix
// needs. Because ε is client-supplied, the key space is unbounded; the
// store therefore caps the number of live collections and evicts the
// least recently used one — a query on an evicted key simply resamples,
// and determinism is unaffected (the entry seed depends only on the
// key).
//
// With a spill directory configured the store is two-tiered: eviction
// (by the LRU cap or the operator's memory budget) demotes the victim's
// sets to a spill file (diskrr.WriteSpill) instead of discarding them,
// and the next query on that key promotes the cold collection back into
// a fresh arena and prefix-extends it — bit-identical to never having
// been evicted. The resident→spilled→promoted state machine per key:
//
//   - resident: entry in entries; bytes in the (dataset, rr_collections)
//     RAM account.
//   - spilled: record in spilled; bytes in the (dataset, rr_spill) disk
//     account; the file header pins (version, profile hash, seed).
//   - promoted: a new entry claims the record at creation (pendingSpill)
//     and the first query reads it back under the entry lock; a header
//     mismatch or read failure drops the file and the entry stays cold —
//     a stale or foreign spill is never silently served. A promoted
//     collection behind the query's snapshot version then goes through
//     the ordinary repair path (or cold reset), exactly like a warm one.
//
// Spilled records have their own LRU order bounded by the disk budget;
// the spill tier is a volatile cache (this index dies with the process),
// so startup purges the directory and recovery serves from a cold
// resample.
type rrStore struct {
	mu       sync.Mutex
	entries  map[string]*rrEntry
	order    *list.List // front = most recently used key
	capacity int
	seed     uint64

	// Spill tier configuration (spillDir == "" disables the tier:
	// eviction then discards, the pre-spill behavior). ramBytes reports
	// the ledger's RAM-tier total for the memory-budget eviction trigger;
	// onPromote feeds each promotion's (bytes, ms) into the planner's
	// promotion-latency model.
	spillDir   string
	diskBudget int64
	memBudget  int64
	ramBytes   func() int64
	onPromote  func(key string, bytes int64, ms float64)

	// spilled maps keys to their cold on-disk records; spillOrder is the
	// demotion LRU (front = most recently demoted) the disk budget
	// drops from. Both guarded by mu. spillSeq makes spill file names
	// unique across a process lifetime.
	spilled    map[string]*spillRecord
	spillOrder *list.List
	spillSeq   uint64

	// ledger is the capacity ledger the store's resident bytes live in:
	// one account per dataset under the "rr_collections" component. The
	// old timserver_rr_memory_bytes gauge is now a func-backed view of
	// the ledger, so /metrics, /v1/stats, and /v1/capacity all read one
	// source of truth.
	ledger *obs.Ledger

	// Registry instruments: /v1/stats and /metrics read the same cells.
	// The instruments are atomic, so updating them never blocks behind an
	// entry mutex; only ledger deltas (and e.memory) stay under mu,
	// because eviction reads them there.
	setsSampled       *obs.Counter
	setsReused        *obs.Counter
	extensions        *obs.Counter
	partialExtensions *obs.Counter
	evictions         *obs.Counter
	repairs           *obs.Counter
	setsRepaired      *obs.Counter
	setsRepairReused  *obs.Counter
	repairColdResets  *obs.Counter
	repairTotalMs     *obs.Counter
	repairMaxMs       *obs.Gauge
	staleBypasses     *obs.Counter
	demotions         *obs.Counter
	promotions        *obs.Counter
	spillDrops        *obs.Counter
	spillFailures     *obs.Counter
}

// spillRecord is one cold collection in the spill tier: the file
// WriteSpill produced, its exact byte size, and the (dataset, "rr_spill")
// ledger account holding those bytes. elem is the record's slot in
// spillOrder while it sits in the spilled map; nil once an entry has
// claimed it for promotion.
type spillRecord struct {
	path  string
	bytes int64
	sets  int64
	elem  *list.Element
	disk  *obs.Account
}

// rrEntry is one cached collection. cumWidth[i] is Σ widths of the first
// i sets, so a θ-prefix view knows its TotalWidth in O(1). version is the
// graph version the collection's sets were (re)derived on; versioned
// records whether version has been initialized by a first query.
type rrEntry struct {
	mu        sync.Mutex
	col       *diffusion.RRCollection
	cumWidth  []int64
	seed      uint64
	version   uint64
	versioned bool
	// memory, elem, and evicted are guarded by the *store* mutex (memory
	// is read by eviction, which holds only the store mutex). An evicted
	// entry may still be held by an in-flight query; it finishes
	// normally but no longer contributes to the store's memory
	// accounting.
	memory  int64
	elem    *list.Element
	evicted bool
	// pendingSpill (also guarded by the store mutex) is the cold spill
	// record this entry claimed at creation; the first query promotes it
	// under the entry lock and clears it.
	pendingSpill *spillRecord
	// mem is the entry's ledger account — the (dataset, "rr_collections")
	// leaf; entries of one dataset share it, so deltas accumulate.
	mem *obs.Account
}

// rrStoreConfig configures newRRStore; the zero value of every field
// except Seed/Capacity disables the spill tier.
type rrStoreConfig struct {
	Seed     uint64
	Capacity int
	// SpillDir enables the spill tier: evicted collections demote to
	// files here instead of being discarded.
	SpillDir string
	// DiskBudget bounds the spill tier's on-disk bytes (0 = unbudgeted);
	// the oldest spilled record is dropped beyond it.
	DiskBudget int64
	// MemBudget, with RAMBytes, adds a second eviction trigger: while
	// the RAM-tier ledger total exceeds MemBudget, the LRU collection is
	// evicted (and demoted) even below the Capacity cap.
	MemBudget int64
	RAMBytes  func() int64
	// OnPromote observes each completed promotion (key, file bytes,
	// elapsed ms) — the planner's promotion-latency model.
	OnPromote func(key string, bytes int64, ms float64)
}

func newRRStore(cfg rrStoreConfig, reg *obs.Registry, ledger *obs.Ledger) *rrStore {
	capacity := cfg.Capacity
	if capacity < 1 {
		capacity = 1
	}
	reg.GaugeFunc("timserver_rr_memory_bytes", "Resident bytes across live RR collections.",
		func() float64 { return float64(ledger.SumComponent("rr_collections")) })
	reg.GaugeFunc("timserver_rr_spill_bytes", "On-disk bytes across spilled RR collections.",
		func() float64 { return float64(ledger.SumComponent("rr_spill")) })
	s := &rrStore{
		entries:  make(map[string]*rrEntry),
		order:    list.New(),
		capacity: capacity,
		seed:     cfg.Seed,
		ledger:   ledger,

		spillDir:   cfg.SpillDir,
		diskBudget: cfg.DiskBudget,
		memBudget:  cfg.MemBudget,
		ramBytes:   cfg.RAMBytes,
		onPromote:  cfg.OnPromote,
		spilled:    make(map[string]*spillRecord),
		spillOrder: list.New(),

		setsSampled:       reg.Counter("timserver_rr_sets_sampled_total", "RR sets sampled fresh (cache misses and extensions)."),
		setsReused:        reg.Counter("timserver_rr_sets_reused_total", "RR sets served from warm collections without resampling."),
		extensions:        reg.Counter("timserver_rr_extensions_total", "Collection extensions (queries that sampled past the warm prefix)."),
		partialExtensions: reg.Counter("timserver_rr_partial_extensions_total", "Extensions cut short by a deadline that still kept their prefix."),
		evictions:         reg.Counter("timserver_rr_evictions_total", "RR collections evicted by the LRU cap."),
		repairs:           reg.Counter("timserver_rr_repairs_total", "Update-triggered incremental repairs of warm collections."),
		setsRepaired:      reg.Counter("timserver_rr_sets_repaired_total", "RR sets re-derived by incremental repairs."),
		setsRepairReused:  reg.Counter("timserver_rr_sets_repair_reused_total", "RR sets kept as-is by incremental repairs."),
		repairColdResets:  reg.Counter("timserver_rr_repair_cold_resets_total", "Collections restarted cold (delta log exhausted or unsupported model)."),
		repairTotalMs:     reg.Counter("timserver_rr_repair_ms_total", "Total milliseconds spent in incremental repairs."),
		repairMaxMs:       reg.Gauge("timserver_rr_repair_max_ms", "Slowest single incremental repair in milliseconds."),
		staleBypasses:     reg.Counter("timserver_rr_stale_bypasses_total", "Queries served from a private cold sample after racing behind the shared collection."),
		demotions:         reg.Counter("timserver_rr_demotions_total", "Evicted RR collections demoted to the spill tier."),
		promotions:        reg.Counter("timserver_rr_promotions_total", "Spilled RR collections promoted back into memory."),
		spillDrops:        reg.Counter("timserver_rr_spill_drops_total", "Spilled collections dropped (disk budget, staleness mismatch, or corrupt file)."),
		spillFailures:     reg.Counter("timserver_rr_spill_failures_total", "Demotions that failed to write their spill file (the eviction became a plain drop)."),
	}
	reg.GaugeFunc("timserver_rr_spilled_collections", "Cold RR collections currently held by the spill tier.",
		func() float64 { return float64(s.spilledCount()) })
	return s
}

// spilledCount reports the cold collections the tier holds: spilled
// records plus records claimed by a resident entry but not yet promoted.
func (s *rrStore) spilledCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.spilled))
	for _, e := range s.entries {
		if e.pendingSpill != nil {
			n++
		}
	}
	return n
}

// entry returns (creating if needed) the collection for key, evicting
// the least recently used entries when the cap — or the operator's
// memory budget — is exceeded. The entry's sampling seed depends only
// on (store seed, key), so two servers with the same base seed answer
// identically — as does one server before and after an eviction.
// created reports whether this call built the entry.
//
// Demotion runs here, and only here, after the store mutex is
// released: it must take each victim's entry mutex (an in-flight query
// may still be extending the victim), and entry() is the one store
// path that holds no entry mutex of its own — running demotion from
// NodeSelectionSets' accounting block would deadlock two queries
// demoting each other's entries.
func (s *rrStore) entry(ctx context.Context, key string) (_ *rrEntry, created bool) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		return e, false
	}
	victims := s.evictLocked()
	e := &rrEntry{
		col:      &diffusion.RRCollection{Off: []int64{0}},
		cumWidth: []int64{0},
		seed:     s.seed ^ fnv64(key),
		mem:      s.ledger.Account(rrKeyDataset(key), "rr_collections"),
	}
	if rec, ok := s.spilled[key]; ok {
		// Claim the cold record under the store mutex: this entry is now
		// its only owner, so exactly one query will promote it.
		delete(s.spilled, key)
		s.spillOrder.Remove(rec.elem)
		rec.elem = nil
		e.pendingSpill = rec
	}
	e.elem = s.order.PushFront(key)
	s.entries[key] = e
	s.mu.Unlock()
	for _, v := range victims {
		s.demote(ctx, v.key, v.entry)
	}
	return e, true
}

// rrVictim is one evicted entry awaiting demotion.
type rrVictim struct {
	key   string
	entry *rrEntry
}

// evictLocked pops LRU entries while the capacity cap — or, with a
// memory budget configured, the RAM-tier ledger total — is exceeded.
// Victims are marked evicted and their RAM bytes released immediately
// (an in-flight query on a victim finishes normally but no longer
// contributes to the accounting); the caller demotes them after
// releasing the store mutex. Caller holds s.mu.
func (s *rrStore) evictLocked() []rrVictim {
	var victims []rrVictim
	pop := func() bool {
		oldest := s.order.Back()
		if oldest == nil {
			return false
		}
		victimKey := oldest.Value.(string)
		victim := s.entries[victimKey]
		s.order.Remove(oldest)
		delete(s.entries, victimKey)
		victim.evicted = true
		victim.mem.Add(-victim.memory)
		s.evictions.Inc()
		victims = append(victims, rrVictim{key: victimKey, entry: victim})
		return true
	}
	for len(s.entries) >= s.capacity {
		if !pop() {
			break
		}
	}
	if s.memBudget > 0 && s.ramBytes != nil {
		// The RAM-tier total (not ledger.Total(), which includes the
		// spill tier's own disk bytes — demoting could never shrink
		// that below budget).
		for len(s.entries) > 0 && s.ramBytes() > s.memBudget {
			if !pop() {
				break
			}
		}
	}
	return victims
}

// demote moves one evicted entry's collection into the spill tier (or
// discards it when the tier is off, the collection is empty, or the
// spill write fails — exactly the pre-spill eviction behavior). It
// waits on the victim's entry mutex, so a query still extending the
// victim finishes first and the spill captures the flushed prefix.
func (s *rrStore) demote(ctx context.Context, key string, v *rrEntry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	s.mu.Lock()
	rec := v.pendingSpill
	v.pendingSpill = nil
	s.mu.Unlock()
	if rec != nil {
		// Evicted again before any query promoted it: the on-disk file
		// is still exactly this collection — relink the record instead
		// of rewriting the file (its disk bytes never left the ledger).
		s.admitSpill(key, rec)
		return
	}
	if s.spillDir == "" || v.col.Count() == 0 || !v.versioned {
		return
	}
	span := obs.StartSpan(ctx, "rr.demote").Attr("sets", int64(v.col.Count()))
	widths := make([]int64, v.col.Count())
	for i := range widths {
		widths[i] = v.cumWidth[i+1] - v.cumWidth[i]
	}
	hdr := diskrr.SpillHeader{Version: v.version, ProfileHash: rrKeyProfile(key), Seed: v.seed}
	s.mu.Lock()
	s.spillSeq++
	path := filepath.Join(s.spillDir, fmt.Sprintf("rrspill-%016x-%d.bin", fnv64(key), s.spillSeq))
	s.mu.Unlock()
	bytes, err := diskrr.WriteSpill(path, hdr, v.col, widths)
	if err != nil {
		// WriteSpill left no debris (its contract); the eviction becomes
		// a plain drop and the next query on the key resamples cold.
		s.spillFailures.Inc()
		span.Attr("failed", true).End()
		return
	}
	rec = &spillRecord{
		path:  path,
		bytes: bytes,
		sets:  int64(v.col.Count()),
		disk:  s.ledger.Account(rrKeyDataset(key), "rr_spill"),
	}
	rec.disk.Add(bytes)
	s.demotions.Inc()
	s.admitSpill(key, rec)
	span.Attr("bytes", bytes).End()
}

// admitSpill links a (already charged) record into the spilled map and
// enforces the disk budget by dropping the oldest records — possibly
// the new one itself, when it alone exceeds the budget.
func (s *rrStore) admitSpill(key string, rec *spillRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.spilled[key]; ok {
		// Unreachable by construction (an entry claims the record at
		// creation), but never leak a file: the newer demotion wins.
		s.dropSpillLocked(key, old)
	}
	rec.elem = s.spillOrder.PushFront(key)
	s.spilled[key] = rec
	if s.diskBudget > 0 {
		for s.spillOrder.Len() > 0 && s.ledger.SumComponent("rr_spill") > s.diskBudget {
			oldest := s.spillOrder.Back()
			oldKey := oldest.Value.(string)
			s.dropSpillLocked(oldKey, s.spilled[oldKey])
		}
	}
}

// dropSpillLocked removes one spilled record: file deleted, disk bytes
// released, drop counted. Caller holds s.mu.
func (s *rrStore) dropSpillLocked(key string, rec *spillRecord) {
	delete(s.spilled, key)
	if rec.elem != nil {
		s.spillOrder.Remove(rec.elem)
		rec.elem = nil
	}
	rec.disk.Add(-rec.bytes)
	os.Remove(rec.path)
	s.spillDrops.Inc()
}

// promote reads the entry's claimed spill record back into memory — a
// no-op when none is pending. Called with e.mu held, before the
// version checks: promotion restores (col, widths, version) exactly as
// they were demoted, and the ordinary repair path then brings a
// behind-version collection to the query's snapshot (or cold-resets),
// just as if the entry had stayed warm. The spill is dropped unserved
// on a read failure or a header mismatch with the entry's identity —
// the query then resamples cold, bit-identical by the keyed seed.
func (s *rrStore) promote(ctx context.Context, key string, e *rrEntry) {
	s.mu.Lock()
	rec := e.pendingSpill
	e.pendingSpill = nil
	s.mu.Unlock()
	if rec == nil {
		return
	}
	span := obs.StartSpan(ctx, "rr.promote").Attr("bytes", rec.bytes).Attr("sets", rec.sets)
	start := time.Now()
	hdr, col, widths, err := diskrr.ReadSpill(rec.path)
	os.Remove(rec.path)
	rec.disk.Add(-rec.bytes)
	if err != nil || hdr.Seed != e.seed || hdr.ProfileHash != rrKeyProfile(key) {
		s.spillDrops.Inc()
		span.Attr("dropped", true).End()
		return
	}
	e.col = col
	e.cumWidth = e.cumWidth[:1]
	for _, w := range widths {
		e.cumWidth = append(e.cumWidth, e.cumWidth[len(e.cumWidth)-1]+w)
	}
	e.version, e.versioned = hdr.Version, true
	s.promotions.Inc()
	span.End()
	if s.onPromote != nil {
		s.onPromote(key, rec.bytes, msSince(start))
	}
}

// spilledBytes reports the on-disk size of the cold collection a query
// on key would have to promote first (0 when the key is resident-warm
// or absent) — the planner's promotion-latency penalty input.
func (s *rrStore) spilledBytes(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.spilled[key]; ok {
		return rec.bytes
	}
	if e, ok := s.entries[key]; ok && e.pendingSpill != nil {
		return e.pendingSpill.bytes
	}
	return 0
}

// rrKeyFor builds the reuse-layer key for (dataset, model, ε, compiled
// sampling-profile hash). The key deliberately excludes k, seed, and
// algorithm — any i.i.d. RR sets serve any of them — and the graph
// version: one collection follows the dataset across versions. The
// unconstrained profile (hash 0) omits its suffix, so pre-profile keys
// are unchanged. doMaximize and the tier planner's promotion penalty
// must agree on this shape, which is why it is one function.
func rrKeyFor(dataset, modelName string, eps float64, profileHash uint64) string {
	key := fmt.Sprintf("%s|%s|eps=%g", dataset, modelName, eps)
	if profileHash != 0 {
		key += fmt.Sprintf("|profile=%x", profileHash)
	}
	return key
}

// rrKeyDataset extracts the dataset name from a reuse-layer key
// ("dataset|model|eps=..." — see rrKeyFor), the ledger dimension rr
// bytes are attributed along.
func rrKeyDataset(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

// rrKeyCost extracts the "dataset|model" prefix of a reuse-layer key —
// the granularity the tiered planner's cost models are keyed on.
func rrKeyCost(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		if j := strings.IndexByte(key[i+1:], '|'); j >= 0 {
			return key[:i+1+j]
		}
	}
	return key
}

// rrKeyProfile extracts the compiled sampling-profile hash from a
// reuse-layer key ("...|profile=<hex>" — see rrKeyFor); 0 for the
// unconstrained profile, which omits the suffix.
func rrKeyProfile(key string) uint64 {
	const marker = "|profile="
	i := strings.LastIndex(key, marker)
	if i < 0 {
		return 0
	}
	h, err := strconv.ParseUint(key[i+len(marker):], 16, 64)
	if err != nil {
		return 0
	}
	return h
}

// faultRREvictMidExtend is consulted after a query's extension flushes
// but before its ledger accounting runs. Tests use it as a
// synchronization hook to force an eviction into exactly that window —
// the race the `!e.evicted` guard below exists for.
const faultRREvictMidExtend = "server/rr-evict-mid-extend"

// fnv64 is the FNV-1a hash, used to derive per-key sampling seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// source binds the store to one key as a tim.CollectionSource for one
// query against one graph snapshot. It also records the per-query
// reuse/repair split so handlers can report it.
type rrSource struct {
	store *rrStore
	key   string
	evg   *evolve.Graph
	// snapVersion is the version of the snapshot the handler passes into
	// tim.MaximizeContext — the graph NodeSelectionSets will receive.
	snapVersion uint64
	// cfg is the sampling scenario of the query. The key embeds the
	// compiled profile hash, so every query landing on this entry samples
	// (and repairs) under an equivalent config — that is what keeps the
	// entry's sets interchangeable and the CollectionSource contract met
	// for constrained queries.
	cfg diffusion.SampleConfig

	// Filled by NodeSelectionSets for the handler to read back. A source
	// is used for a single Maximize call, so no locking is needed.
	reused   int64
	sampled  int64
	repaired int64
	// memory is the entry's footprint after this query, for the
	// planner's byte model (0 on the bypass path, which retains
	// nothing).
	memory int64
	// created reports that this query built the entry (first query on a
	// fresh profile key); handlers use it to count weighted collections.
	created bool
}

func (s *rrStore) source(key string, evg *evolve.Graph, snapVersion uint64, cfg diffusion.SampleConfig) *rrSource {
	return &rrSource{store: s, key: key, evg: evg, snapVersion: snapVersion, cfg: cfg}
}

// NodeSelectionSets implements tim.CollectionSource: bring the cached
// collection to exactly the query's snapshot version (repairing
// incrementally when the delta log allows, resetting cold otherwise),
// extend it to θ sets if needed, and return the θ-prefix view.
func (r *rrSource) NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	span := obs.StartSpan(ctx, "rr.store").Attr("theta", theta).Attr("workers", int64(workers))
	defer func() {
		span.Attr("reused", r.reused).Attr("sampled", r.sampled).Attr("repaired", r.repaired).End()
	}()
	e, created := r.store.entry(ctx, r.key)
	r.created = created
	e.mu.Lock()
	defer e.mu.Unlock()
	// Promote the entry's claimed spill record (if any) before the
	// version checks: a promoted collection behind the snapshot then
	// repairs or cold-resets through the ordinary paths below, exactly
	// like a warm entry would.
	r.store.promote(ctx, r.key, e)

	if e.versioned && e.version > r.snapVersion {
		// This query resolved its snapshot before a concurrent update
		// landed, and another query has since moved the shared entry
		// past it. Serve the stale snapshot from a private cold sample
		// — the same bytes a cold server at that version would draw —
		// and leave the newer entry alone.
		span.Attr("stale_bypass", true)
		return r.sampleBypass(ctx, g, model, theta, workers)
	}

	var repairStats evolve.RepairStats
	var repairMs float64
	didRepair, coldReset := false, false
	switch {
	case !e.versioned:
		e.version, e.versioned = r.snapVersion, true
	case e.version != r.snapVersion:
		start := time.Now()
		delta, ok := r.evg.DeltaBetween(e.version, r.snapVersion)
		if ok && e.col.Count() > 0 {
			widths := make([]int64, e.col.Count())
			for i := range widths {
				widths[i] = e.cumWidth[i+1] - e.cumWidth[i]
			}
			newCol, newWidths, st, err := evolve.RepairConfig(ctx, g, model, r.cfg, e.col, widths, delta, e.seed, workers)
			switch {
			case err == nil:
				e.col = newCol
				e.cumWidth = e.cumWidth[:1]
				for _, w := range newWidths {
					e.cumWidth = append(e.cumWidth, e.cumWidth[len(e.cumWidth)-1]+w)
				}
				repairStats = st
				didRepair = true
			case errors.Is(err, evolve.ErrUnsupportedModel):
				coldReset = true
			default:
				return nil, err // context cancellation and the like
			}
		} else if !ok {
			// The delta log no longer reaches back to the entry's
			// version: repair-instead-of-drop is off the table.
			coldReset = e.col.Count() > 0
		}
		if coldReset {
			e.col = &diffusion.RRCollection{Off: []int64{0}}
			e.cumWidth = []int64{0}
		}
		e.version = r.snapVersion
		repairMs = float64(time.Since(start).Microseconds()) / 1000
		r.repaired = repairStats.Repaired
	}

	have := int64(e.col.Count())
	var extErr error
	if have < theta {
		// Partial-keep extension: if the query's deadline fires
		// mid-extension, the flushed prefix stays in the shared entry
		// (prefix determinism makes it exactly what the next query would
		// re-derive), so deadline-bounded budgeted traffic ratchets the
		// collection toward θ instead of sampling in vain.
		var tail []int64
		tail, extErr = diffusion.ExtendCollectionConfigPartial(ctx, g, model, r.cfg, e.col, theta, e.seed, workers, nil)
		for _, w := range tail {
			e.cumWidth = append(e.cumWidth, e.cumWidth[len(e.cumWidth)-1]+w)
		}
		r.reused = have
		r.sampled = int64(len(tail))
	} else {
		r.reused = theta
	}
	memory := e.col.MemoryBytes() + int64(cap(e.cumWidth))*8
	r.memory = memory
	if err := fault.Hit(faultRREvictMidExtend); err != nil {
		return nil, err
	}

	r.store.setsReused.Add(float64(r.reused))
	r.store.setsSampled.Add(float64(r.sampled))
	if r.sampled > 0 {
		r.store.extensions.Inc()
	}
	if extErr != nil && r.sampled > 0 {
		r.store.partialExtensions.Inc()
	}
	if didRepair {
		r.store.repairs.Inc()
		r.store.setsRepaired.Add(float64(repairStats.Repaired))
		r.store.setsRepairReused.Add(float64(repairStats.Reused))
		r.store.repairTotalMs.Add(repairMs)
		r.store.repairMaxMs.SetMax(repairMs)
	}
	if coldReset {
		span.Attr("cold_reset", true)
		r.store.repairColdResets.Inc()
	}
	r.store.mu.Lock()
	if !e.evicted {
		e.mem.Add(memory - e.memory)
	}
	e.memory = memory // under store.mu: eviction reads it there
	r.store.mu.Unlock()

	if extErr != nil {
		return nil, extErr
	}
	return e.col.Prefix(int(theta), e.cumWidth[theta]), nil
}

// sampleBypass serves one query from a private collection sampled cold
// with the entry's keyed seed, without touching the shared entry. Used
// only on the rare race where the shared collection has already advanced
// past the query's snapshot; determinism holds because cold sampling at
// the snapshot version with the entry seed is exactly what a cold server
// at that version would do.
func (r *rrSource) sampleBypass(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	seed := r.store.seed ^ fnv64(r.key)
	col := &diffusion.RRCollection{Off: []int64{0}}
	if _, err := diffusion.ExtendCollectionConfig(ctx, g, model, r.cfg, col, theta, seed, workers, nil); err != nil {
		return nil, err
	}
	r.sampled = theta
	r.store.setsSampled.Add(float64(theta))
	r.store.staleBypasses.Inc()
	return col, nil
}

// rrStoreStats is the /v1/stats snapshot of the reuse layer.
type rrStoreStats struct {
	Collections int64 `json:"collections"`
	Capacity    int   `json:"capacity"`
	SetsSampled int64 `json:"sets_sampled"`
	SetsReused  int64 `json:"sets_reused"`
	Extensions  int64 `json:"extensions"`
	// PartialExtensions counts extensions cut short by a deadline that
	// still flushed a kept prefix into the shared collection (the budget
	// ratchet: the next query on the key resumes from that prefix).
	PartialExtensions int64 `json:"partial_extensions"`
	Evictions         int64 `json:"evictions"`
	MemoryBytes       int64 `json:"memory_bytes"`
	// Repairs counts update-triggered incremental repairs of warm
	// collections; SetsRepaired / SetsRepairReused split their sets into
	// re-derived and kept. RepairColdResets counts collections that had
	// to restart cold (delta log exhausted or unsupported model).
	Repairs          int64   `json:"repairs"`
	SetsRepaired     int64   `json:"sets_repaired"`
	SetsRepairReused int64   `json:"sets_repair_reused"`
	RepairColdResets int64   `json:"repair_cold_resets"`
	RepairTotalMs    float64 `json:"repair_total_ms"`
	RepairMaxMs      float64 `json:"repair_max_ms"`
	// StaleBypasses counts queries served from a private cold sample
	// because their snapshot raced behind the shared collection.
	StaleBypasses int64 `json:"stale_bypasses"`
	// Spill tier: Demotions/Promotions count collections moved between
	// the RAM and disk tiers; SpillDrops counts spilled collections
	// discarded (disk budget, staleness mismatch, corrupt file);
	// SpillFailures counts demotions whose spill write failed (the
	// eviction became a plain drop). SpilledCollections/SpillBytes are
	// the tier's current holdings.
	Demotions          int64 `json:"demotions"`
	Promotions         int64 `json:"promotions"`
	SpillDrops         int64 `json:"spill_drops"`
	SpillFailures      int64 `json:"spill_failures"`
	SpilledCollections int64 `json:"spilled_collections"`
	SpillBytes         int64 `json:"spill_bytes"`
}

// memoryTotal reports the store's resident bytes from the ledger (the
// sum of every dataset's rr_collections account).
func (s *rrStore) memoryTotal() int64 {
	return s.ledger.SumComponent("rr_collections")
}

func (s *rrStore) stats() rrStoreStats {
	s.mu.Lock()
	collections := int64(len(s.entries))
	s.mu.Unlock()
	return rrStoreStats{
		Collections:        collections,
		Capacity:           s.capacity,
		SetsSampled:        s.setsSampled.Int(),
		SetsReused:         s.setsReused.Int(),
		Extensions:         s.extensions.Int(),
		PartialExtensions:  s.partialExtensions.Int(),
		Evictions:          s.evictions.Int(),
		MemoryBytes:        s.memoryTotal(),
		Repairs:            s.repairs.Int(),
		SetsRepaired:       s.setsRepaired.Int(),
		SetsRepairReused:   s.setsRepairReused.Int(),
		RepairColdResets:   s.repairColdResets.Int(),
		RepairTotalMs:      s.repairTotalMs.Value(),
		RepairMaxMs:        s.repairMaxMs.Value(),
		StaleBypasses:      s.staleBypasses.Int(),
		Demotions:          s.demotions.Int(),
		Promotions:         s.promotions.Int(),
		SpillDrops:         s.spillDrops.Int(),
		SpillFailures:      s.spillFailures.Int(),
		SpilledCollections: s.spilledCount(),
		SpillBytes:         s.ledger.SumComponent("rr_spill"),
	}
}
