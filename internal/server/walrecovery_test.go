package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

// walTestConfig is evolveTestConfig with durability enabled: WAL at dir,
// automatic checkpoints at the given cadence (negative disables), and
// recovery warnings routed to a discarded slog so the crash sweep below
// does not spam test output with hundreds of expected torn-tail lines.
func walTestConfig(t testing.TB, dir string, checkpointEvery int) Config {
	cfg := evolveTestConfig(t)
	cfg.WALDir = dir
	cfg.CheckpointEvery = checkpointEvery
	cfg.AccessLog = slog.New(slog.NewTextHandler(io.Discard, nil))
	return cfg
}

// walTestUpdates is a deliberately small mutation sequence (the
// crash-at-every-byte sweep recovers a server per WAL byte, so frame size
// is wall-clock) that still exercises node growth, inserts, and deletes.
func walTestUpdates() []UpdateRequest {
	return []UpdateRequest{
		{Dataset: "known", AddNodes: 1,
			Insert: []UpdateEdge{{From: 0, To: 60}, {From: 60, To: 5}},
			Delete: []UpdateEdge{{From: 0, To: 1}}},
		{Dataset: "known",
			Insert: []UpdateEdge{{From: 60, To: 9}},
			Delete: []UpdateEdge{{From: 1, To: 2}, {From: 2, To: 3}}},
		{Dataset: "known", AddNodes: 1,
			Insert: []UpdateEdge{{From: 61, To: 60}, {From: 3, To: 61}},
			Delete: []UpdateEdge{{From: 4, To: 5}}},
	}
}

// doJSON drives a request through srv.ServeHTTP without a listener, so
// the per-cut recovery sweep does not open hundreds of TCP sockets.
func doJSON(t testing.TB, srv *Server, method, path string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, path, rd)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	raw := rw.Body.String()
	if out != nil && rw.Code == http.StatusOK {
		if err := json.Unmarshal([]byte(raw), out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return rw.Code, raw
}

func mustUpdate(t *testing.T, srv *Server, updates []UpdateRequest) {
	t.Helper()
	for i, u := range updates {
		if status, body := doJSON(t, srv, "POST", "/v1/update", u, nil); status != http.StatusOK {
			t.Fatalf("update %d: status %d body %s", i, status, body)
		}
	}
}

func mustMaximize(t *testing.T, srv *Server, req MaximizeRequest) MaximizeResponse {
	t.Helper()
	var ans MaximizeResponse
	if status, body := doJSON(t, srv, "POST", "/v1/maximize", req, &ans); status != http.StatusOK {
		t.Fatalf("maximize: status %d body %s", status, body)
	}
	return ans
}

// TestWALRecoveryCrashAtEveryByte is the subsystem acceptance test: a
// durable server applies a batch sequence, and for EVERY prefix of the
// resulting WAL file — simulating a crash after any byte reached disk —
// a fresh server must recover without error to the longest fully-framed
// version and answer /v1/maximize bit-identically to a never-crashed
// server that applied the same prefix of batches.
func TestWALRecoveryCrashAtEveryByte(t *testing.T) {
	updates := walTestUpdates()
	icReq := MaximizeRequest{Dataset: "known", K: 3, Epsilon: 0.4}

	// Reference answers: one no-WAL server per version.
	refs := make([]MaximizeResponse, len(updates)+1)
	for v := 0; v <= len(updates); v++ {
		ref, err := New(evolveTestConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		mustUpdate(t, ref, updates[:v])
		ans := mustMaximize(t, ref, icReq)
		if ans.GraphVersion != uint64(v) {
			t.Fatalf("reference v%d answered at graph_version %d", v, ans.GraphVersion)
		}
		refs[v] = maximizeEssence(ans)
	}

	// Produce the WAL: a durable server (sync=always, no checkpoints so
	// every batch stays in the log) acks all batches and shuts down.
	tmpl := walTestConfig(t, "", -1)
	srcDir := t.TempDir()
	src := tmpl
	src.WALDir = srcDir
	srv, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, srv, updates)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(srcDir, "known", "wal.log"))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, scanned independently of the wal package: cuts at
	// a boundary lose nothing; any other cut tears the final frame.
	boundary := map[int]bool{0: true, 8: true}
	var ends []int // ends[i] = offset at which i+1 records are complete
	off := 8
	for off+8 <= len(data) {
		off += 8 + int(binary.LittleEndian.Uint32(data[off:]))
		ends = append(ends, off)
		boundary[off] = true
	}
	if off != len(data) || len(ends) != len(updates) {
		t.Fatalf("frame scan: %d records ending at %d of %d bytes", len(ends), off, len(data))
	}

	scratch := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		dir := filepath.Join(scratch, fmt.Sprintf("cut%04d", cut))
		if err := os.MkdirAll(filepath.Join(dir, "known"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "known", "wal.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := tmpl
		cfg.WALDir = dir
		rsrv, err := New(cfg)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		wantVer := 0
		for _, e := range ends {
			if e <= cut {
				wantVer++
			}
		}
		rec := rsrv.Recovery()
		if len(rec) != 1 || rec[0].Dataset != "known" {
			t.Fatalf("cut=%d: recovery report %+v", cut, rec)
		}
		if rec[0].Version != uint64(wantVer) {
			t.Fatalf("cut=%d: recovered v%d, want v%d", cut, rec[0].Version, wantVer)
		}
		if torn := rec[0].TornBytes > 0; torn == boundary[cut] {
			t.Fatalf("cut=%d: torn=%v but boundary=%v", cut, torn, boundary[cut])
		}
		ans := mustMaximize(t, rsrv, icReq)
		if ans.GraphVersion != uint64(wantVer) {
			t.Fatalf("cut=%d: answered at graph_version %d, want %d", cut, ans.GraphVersion, wantVer)
		}
		if !reflect.DeepEqual(maximizeEssence(ans), refs[wantVer]) {
			t.Fatalf("cut=%d: recovered answer at v%d diverges from reference:\n got %+v\nwant %+v",
				cut, wantVer, maximizeEssence(ans), refs[wantVer])
		}
		if err := rsrv.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestWALCheckpointRestart covers the checkpoint-restore path end to end:
// with checkpoints every 2 batches, three batches leave a checkpoint at
// v2 plus one tail record. A restarted server must resume at v3, answer
// both models (IC and LT re-derive their weights from the topology-only
// checkpoint) bit-identically to a never-crashed server, report the
// recovery in /v1/stats, and keep accepting updates.
func TestWALCheckpointRestart(t *testing.T) {
	updates := walTestUpdates()
	icReq := MaximizeRequest{Dataset: "known", K: 3, Epsilon: 0.4}
	ltReq := MaximizeRequest{Dataset: "known", Model: "lt", K: 3, Epsilon: 0.4}
	next := UpdateRequest{Dataset: "known",
		Insert: []UpdateEdge{{From: 5, To: 60}},
		Delete: []UpdateEdge{{From: 5, To: 6}}}

	ref, err := New(evolveTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, ref, updates)

	dir := t.TempDir()
	cfg := walTestConfig(t, dir, 2)
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, srv1, updates)
	if err := srv1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	rec := srv2.Recovery()
	if len(rec) != 1 {
		t.Fatalf("recovery report %+v", rec)
	}
	if rec[0].Version != 3 || rec[0].CheckpointVersion != 2 || rec[0].ReplayedRecords != 1 {
		t.Fatalf("recovery %+v, want v3 from checkpoint v2 + 1 record", rec[0])
	}

	for _, tc := range []struct {
		name string
		req  MaximizeRequest
	}{{"ic", icReq}, {"lt", ltReq}} {
		want := mustMaximize(t, ref, tc.req)
		got := mustMaximize(t, srv2, tc.req)
		if got.GraphVersion != 3 {
			t.Fatalf("%s: recovered answer at graph_version %d, want 3", tc.name, got.GraphVersion)
		}
		if !reflect.DeepEqual(maximizeEssence(got), maximizeEssence(want)) {
			t.Fatalf("%s: recovered answer diverges:\n got %+v\nwant %+v",
				tc.name, maximizeEssence(got), maximizeEssence(want))
		}
	}

	var stats struct {
		WAL walStats `json:"wal"`
	}
	if status, body := doJSON(t, srv2, "GET", "/v1/stats", nil, &stats); status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	if !stats.WAL.Enabled || stats.WAL.SyncPolicy != "always" || stats.WAL.CheckpointEvery != 2 {
		t.Fatalf("wal stats %+v", stats.WAL)
	}
	ds, ok := stats.WAL.Datasets["known"]
	if !ok || ds.Recovery.CheckpointVersion != 2 || ds.Recovery.ReplayedRecords != 1 {
		t.Fatalf("wal dataset stats %+v", ds)
	}

	// The recovered server keeps going: one more acked batch, answers
	// still match a never-crashed server that saw the same history.
	mustUpdate(t, ref, []UpdateRequest{next})
	mustUpdate(t, srv2, []UpdateRequest{next})
	want := mustMaximize(t, ref, icReq)
	got := mustMaximize(t, srv2, icReq)
	if got.GraphVersion != 4 || !reflect.DeepEqual(maximizeEssence(got), maximizeEssence(want)) {
		t.Fatalf("post-recovery update diverges:\n got %+v\nwant %+v",
			maximizeEssence(got), maximizeEssence(want))
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPanicRecoveryMiddleware arms the maximize fault point so the
// handler panics mid-request, and asserts the middleware converts it to
// a 500 carrying the request's trace id, counts it in
// timserver_panics_total, and leaves the server serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	_, ts := newTestServer(t)
	t.Cleanup(fault.Reset)
	fault.Set(faultMaximizePanic, fault.PanicOn(0, "maximize exploded"))

	buf, err := json.Marshal(MaximizeRequest{Dataset: "ring", K: 2, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/maximize", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "panic-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.TraceID != "panic-test-1" {
		t.Fatalf("500 body trace_id %q, want the request id", er.TraceID)
	}
	if !strings.Contains(er.Error, "panic") {
		t.Fatalf("500 body error %q does not mention the panic", er.Error)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mbody), "timserver_panics_total 1") {
		t.Fatalf("metrics missing timserver_panics_total 1:\n%s", mbody)
	}

	fault.Clear(faultMaximizePanic)
	var ans MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ring", K: 2, Epsilon: 0.5}, &ans); status != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", status, body)
	}
	if len(ans.Seeds) != 2 {
		t.Fatalf("post-panic answer %+v", ans)
	}
}
