package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// sloLatencyGraceMs is the slack added to a request's own budget before
// a completed answer counts against the budgeted error budget: EWMA
// planning noise a few milliseconds past the deadline is not an SLO
// breach worth burning budget on, sustained overshoot is.
const sloLatencyGraceMs = 25

// answerObserved wraps answer with the outcome recorders: the SLO error
// budget of the request's tier class and the query flight recorder.
// Both call sites of answer — POST /v1/maximize and each batch item —
// route through here, so the budgets and the qlog see every
// maximize-shaped query exactly once.
func (s *Server) answerObserved(ctx context.Context, endpoint string, req MaximizeRequest) (MaximizeResponse, bool, error) {
	start := time.Now()
	resp, hit, err := s.answer(ctx, req)
	s.recordOutcome(ctx, endpoint, req, resp, err, msSince(start))
	return resp, hit, err
}

// recordOutcome classifies one answer for the SLO budgets and offers
// its shape to the flight recorder.
//
// Bad, per class: a budgeted query burns budget on sheds and server
// errors (5xx) and on completing past its own budget (plus grace); an
// unbudgeted query burns only on 5xx. Client errors (4xx) and client
// hang-ups (499) never burn server budget.
func (s *Server) recordOutcome(ctx context.Context, endpoint string, req MaximizeRequest, resp MaximizeResponse, err error, ms float64) {
	status := statusOf(err)
	budgeted := req.BudgetMs > 0
	bad := status >= 500
	if budgeted && err == nil && ms > req.BudgetMs+sloLatencyGraceMs {
		bad = true
	}
	s.obs.sloObserve(budgeted, bad)

	if s.qlog == nil {
		return
	}
	rec := obs.QLogRecord{
		Endpoint:      endpoint,
		Dataset:       req.Dataset,
		Model:         strings.ToLower(req.Model),
		K:             req.K,
		Epsilon:       req.Epsilon,
		Ell:           req.Ell,
		BudgetMs:      req.BudgetMs,
		MinConfidence: req.MinConfidence,
		Status:        status,
		Tier:          resp.Tier,
		AchievedEps:   resp.Epsilon,
		Theta:         resp.Theta,
		RRReused:      resp.RRSetsReused,
		RRSampled:     resp.RRSetsSampled,
		RRRepaired:    resp.RRSetsRepaired,
		ServerMs:      ms,
	}
	if h := reqProfileHash(&req); h != 0 {
		rec.Profile = fmt.Sprintf("%x", h)
	}
	if m := requestMeta(ctx); m != nil {
		rec.TraceID = m.id
	}
	s.qlog.Record(rec)
}

// reqProfileHash digests the constraint fields of a request into the
// qlog profile hash (0 for unconstrained queries). It hashes the raw
// request rather than the compiled spec so recording works on rejected
// requests too; fmt renders maps key-sorted, so the digest is stable.
func reqProfileHash(req *MaximizeRequest) uint64 {
	if req.Weights == nil && req.Costs == nil && req.Budget == 0 &&
		len(req.Force) == 0 && len(req.Exclude) == 0 && req.MaxHops == 0 {
		return 0
	}
	costDefault := ""
	if req.CostDefault != nil {
		costDefault = fmt.Sprintf("%g", *req.CostDefault)
	}
	return fnv64(fmt.Sprintf("%v|%g|%v|%s|%g|%v|%v|%d",
		req.Weights, req.WeightDefault, req.Costs, costDefault,
		req.Budget, req.Force, req.Exclude, req.MaxHops))
}

// diskComponents are the ledger components whose bytes live on disk
// rather than in RAM: spill-tier files and the durable WAL. Everything
// else in the ledger is the RAM tier — the split behind the two-tier
// capacity view and the rr-store's memory-budget eviction trigger.
var diskComponents = []string{"rr_spill", "wal"}

// capacityTier is one storage tier's roll-up in /v1/capacity and
// /v1/stats: its ledger total, the operator budget bounding it (0 =
// unbudgeted, omitted), and headroom against that budget.
type capacityTier struct {
	TotalBytes    int64  `json:"total_bytes"`
	BudgetBytes   int64  `json:"budget_bytes,omitempty"`
	HeadroomBytes *int64 `json:"headroom_bytes,omitempty"`
}

// capacityTiers splits the ledger total into the RAM and disk tiers.
// The two totals sum to the ledger total by construction, so the tier
// view can never disagree with the tree it summarizes.
func (s *Server) capacityTiers(total int64) map[string]capacityTier {
	disk := s.ledger.SumComponents(diskComponents...)
	ram := capacityTier{TotalBytes: total - disk, BudgetBytes: s.cfg.MemoryBudgetBytes}
	if ram.BudgetBytes > 0 {
		h := ram.BudgetBytes - ram.TotalBytes
		ram.HeadroomBytes = &h
	}
	diskTier := capacityTier{TotalBytes: disk, BudgetBytes: s.cfg.DiskBudgetBytes}
	if diskTier.BudgetBytes > 0 {
		h := diskTier.BudgetBytes - diskTier.TotalBytes
		diskTier.HeadroomBytes = &h
	}
	return map[string]capacityTier{"ram": ram, "disk": diskTier}
}

// capacityRung is one ε-ladder rung's predicted RR-collection bytes.
type capacityRung struct {
	Epsilon        float64 `json:"epsilon"`
	PredictedBytes int64   `json:"predicted_bytes"`
}

// capacityPrediction is the byte forecast for one (dataset, model):
// what a warm RR collection at each ladder rung would retain, scaled
// from observed bytes/λ (planner byte model). Uncalibrated models are
// omitted rather than reported as zero.
type capacityPrediction struct {
	Dataset string         `json:"dataset"`
	Model   string         `json:"model"`
	K       int            `json:"k"`
	Rungs   []capacityRung `json:"rungs"`
}

// handleCapacity serves GET /v1/capacity: the ledger tree, the
// configured budget and headroom against it, and the per-rung RR byte
// predictions (?k=N sets the seed-set size the forecast assumes,
// default 50).
func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	k := 50
	if q := r.URL.Query().Get("k"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &k); err != nil || k < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "server: k must be a positive integer"})
			return
		}
	}
	snap := s.ledger.Snapshot()
	out := struct {
		TotalBytes    int64                   `json:"total_bytes"`
		BudgetBytes   int64                   `json:"budget_bytes,omitempty"`
		HeadroomBytes *int64                  `json:"headroom_bytes,omitempty"`
		Tiers         map[string]capacityTier `json:"tiers"`
		Ledger        obs.LedgerEntry         `json:"ledger"`
		Predictions   []capacityPrediction    `json:"predicted_rr_bytes,omitempty"`
	}{
		TotalBytes:  snap.Bytes,
		BudgetBytes: s.cfg.MemoryBudgetBytes,
		Tiers:       s.capacityTiers(snap.Bytes),
		Ledger:      snap,
	}
	if s.cfg.MemoryBudgetBytes > 0 {
		headroom := s.cfg.MemoryBudgetBytes - snap.Bytes
		out.HeadroomBytes = &headroom
	}
	for _, info := range s.registry.list() {
		for _, model := range info.LoadedModels {
			key := info.Name + "|" + model
			pred := capacityPrediction{Dataset: info.Name, Model: model, K: k}
			for _, eps := range s.tiered.planner.Ladder() {
				if b, ok := s.tiered.planner.PredictRISBytes(key, info.Nodes, k, eps, 1); ok {
					pred.Rungs = append(pred.Rungs, capacityRung{Epsilon: eps, PredictedBytes: b})
				}
			}
			if len(pred.Rungs) > 0 {
				out.Predictions = append(out.Predictions, pred)
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthSLO serves GET /v1/health/slo: every tier class's error
// budget across both burn windows. The response status degrades before
// the budget is exhausted — 503 as soon as any class goes critical
// (fast window ≥10× AND slow window >1×), so upstream load balancers
// back off while there is still budget left to protect.
func (s *Server) handleHealthSLO(w http.ResponseWriter, r *http.Request) {
	classes := s.obs.sloSnapshot()
	worst := obs.BudgetOK
	for _, snap := range classes {
		if sloStateValue(snap.State) > sloStateValue(worst) {
			worst = snap.State
		}
	}
	status := http.StatusOK
	if worst == obs.BudgetCritical {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, struct {
		Status  obs.BudgetState               `json:"status"`
		Classes map[string]obs.BudgetSnapshot `json:"classes"`
	}{Status: worst, Classes: classes})
}

// sloSnapshot renders every class's budget for /v1/stats and
// /v1/health/slo.
func (o *obsState) sloSnapshot() map[string]obs.BudgetSnapshot {
	out := make(map[string]obs.BudgetSnapshot, len(o.slo))
	for class, b := range o.slo {
		out[class] = b.Snapshot()
	}
	return out
}

// capacityStats is the /v1/stats capacity section: the ledger total
// plus per-component roll-ups (summed across datasets), bit-identical
// to the subsystem's own counters by construction.
type capacityStats struct {
	TotalBytes  int64                   `json:"total_bytes"`
	BudgetBytes int64                   `json:"budget_bytes,omitempty"`
	Tiers       map[string]capacityTier `json:"tiers"`
	Components  map[string]int64        `json:"components"`
}

// ledgerComponents is the fixed component vocabulary of the server's
// ledger (see registerLedger).
var ledgerComponents = []string{
	"rr_collections", "result_cache", "csr_snapshots",
	"tiered_scorers", "sampler_pool", "select_scratch", "wal", "rr_spill",
}

func (s *Server) capacityStatsSnapshot() capacityStats {
	c := capacityStats{
		TotalBytes:  s.ledger.Total(),
		BudgetBytes: s.cfg.MemoryBudgetBytes,
		Components:  make(map[string]int64, len(ledgerComponents)),
	}
	c.Tiers = s.capacityTiers(c.TotalBytes)
	for _, name := range ledgerComponents {
		c.Components[name] = s.ledger.SumComponent(name)
	}
	return c
}

// qlogStats is the /v1/stats flight-recorder section.
type qlogStats struct {
	Enabled bool  `json:"enabled"`
	Seen    int64 `json:"seen"`
	Written int64 `json:"written"`
	Dropped int64 `json:"dropped"`
}

func (s *Server) qlogStatsSnapshot() qlogStats {
	st := s.qlog.Stats()
	return qlogStats{Enabled: s.qlog != nil, Seen: st.Seen, Written: st.Written, Dropped: st.Dropped}
}
