package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wal"
)

// ErrUnknownDataset is returned for queries naming a dataset the registry
// does not hold; handlers map it to 404.
var ErrUnknownDataset = errors.New("server: unknown dataset")

// DatasetSpec declares one named dataset for the registry, in the string
// form accepted by timserver's -dataset flag: "name=source" where source
// is one of
//
//	file:PATH            directed edge-list file ('#' comments, optional
//	                     "# Nodes: n" header)
//	ufile:PATH           undirected edge-list file
//	profile:NAME:SCALE   synthetic Table 2 stand-in (nethept, epinions,
//	                     dblp, livejournal, twitter) at tiny|small|full
//	ba:N:ATTACH          Barabási–Albert graph with N nodes
//	er:N:M               Erdős–Rényi G(n, m) graph
//
// A bare source with no prefix is treated as file:PATH.
type DatasetSpec struct {
	Name   string
	Source string
	// Seed drives synthetic generation (and LT weight assignment).
	Seed uint64
}

// ParseDatasetSpec parses "name=source".
func ParseDatasetSpec(s string, seed uint64) (DatasetSpec, error) {
	name, source, ok := strings.Cut(s, "=")
	if !ok || name == "" || source == "" {
		return DatasetSpec{}, fmt.Errorf("server: dataset spec %q is not name=source", s)
	}
	return DatasetSpec{Name: name, Source: source, Seed: seed}, nil
}

// build constructs a fresh topology instance from the spec. Each diffusion
// model gets its own instance (weights are mutable, per-model, and shared
// between a graph and its transpose), so build may run more than once.
func (d DatasetSpec) build() (*graph.Graph, error) {
	kind, rest, found := strings.Cut(d.Source, ":")
	if !found {
		kind, rest = "file", d.Source
	}
	switch kind {
	case "file", "ufile":
		f, err := os.Open(rest)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f, kind == "ufile")
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		return g, nil
	case "profile":
		name, scaleStr, ok := strings.Cut(rest, ":")
		if !ok {
			scaleStr = "tiny"
		}
		p, err := gen.ProfileByName(name)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		scale, err := gen.ParseScale(scaleStr)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		return p.Generate(scale, d.Seed), nil
	case "ba":
		n, attach, err := twoInts(rest)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: ba:N:ATTACH: %w", d.Name, err)
		}
		return gen.BarabasiAlbert(n, attach, rng.New(d.Seed)), nil
	case "er":
		n, m, err := twoInts(rest)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: er:N:M: %w", d.Name, err)
		}
		return gen.ErdosRenyiGnm(n, m, rng.New(d.Seed)), nil
	}
	return nil, fmt.Errorf("server: dataset %q: unknown source kind %q", d.Name, kind)
}

func twoInts(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want two ':'-separated integers, got %q", s)
	}
	x, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.Atoi(b)
	if err != nil {
		return 0, 0, err
	}
	if x <= 0 || y <= 0 {
		return 0, 0, fmt.Errorf("values must be positive, got %d:%d", x, y)
	}
	return x, y, nil
}

// registry holds the named datasets a server answers queries about, with
// one lazily built, permanently cached evolving graph per diffusion model
// — graphs are loaded once and shared by every subsequent query, which is
// the first thing that makes a long-lived server cheaper than the CLI.
//
// Every model variant of a dataset is an evolve.Graph sharing one logical
// topology. The first /v1/update on a dataset eagerly builds every
// supported variant (IC and LT) so that each subsequent batch applies to
// all of them in lockstep — variants always sit at the same version, and
// no unbounded mutation history needs to be retained for late-built
// variants. Weights are policy-owned per model — weighted cascade for IC
// (the paper's §7.1 setup), keyed normalized random weights for LT — so
// an update never carries weights: the policy re-derives them at the
// touched heads, which keeps a mutated warm graph byte-identical to a
// cold build over the final topology.
type registry struct {
	mu       sync.Mutex
	datasets map[string]*dataset
	evolve   evolve.Options
	// mmapDir, when non-empty, backs synthetic datasets' CSR snapshots
	// with memory-mapped files in this directory instead of heap slices
	// (see graph.MmapBacked).
	mmapDir string

	// WAL wiring (zero when durability is disabled). checkpointEvery is
	// the batch cadence of automatic checkpoints; logf receives WAL
	// warnings (failed checkpoints are warnings, not update failures).
	checkpointEvery int
	logf            func(format string, args ...any)
}

// supportedKinds are the model variants the registry can build — and
// therefore the set update() must materialize before mutating anything.
var supportedKinds = []diffusion.Kind{diffusion.IC, diffusion.LT}

type dataset struct {
	spec DatasetSpec
	// mmapDir mirrors registry.mmapDir (variant() runs under d.mu only).
	mmapDir string

	mu      sync.Mutex
	byModel map[diffusion.Kind]*evolve.Graph
	// version mirrors the variants' evolve version so /v1/datasets can
	// report it before any variant is built (0) and without locking them.
	version uint64

	// WAL state (nil/empty when durability is disabled). ckpt and tail
	// carry what recovery salvaged until every supported variant has been
	// built from them — variants are lazy, so the recovered state must
	// outlive Open — and are dropped once the last variant materializes.
	log      *wal.Log
	ckpt     *wal.Checkpoint
	tail     []wal.Record
	recovery DatasetRecovery
}

// validateDatasetName rejects names that would corrupt downstream key
// spaces: '|' is the separator of rr-store and result-cache keys (a
// name containing it shifts every later field, and rrKeyDataset/
// cacheKeyDataset would attribute the entry's ledger bytes to a
// truncated name), '/' would escape the per-dataset WAL and checkpoint
// directory layout, and an empty name is indistinguishable from a
// missing field. The error is typed errBadRequest so any registration
// surface maps it to a 400.
func validateDatasetName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("%w: dataset name is empty", errBadRequest)
	case strings.ContainsAny(name, "|/"):
		return fmt.Errorf("%w: dataset name %q contains '|' or '/'", errBadRequest, name)
	}
	return nil
}

func newRegistry(specs []DatasetSpec, opts evolve.Options, mmapDir string) (*registry, error) {
	r := &registry{datasets: make(map[string]*dataset, len(specs)), evolve: opts, mmapDir: mmapDir}
	for _, spec := range specs {
		if err := validateDatasetName(spec.Name); err != nil {
			return nil, err
		}
		if _, dup := r.datasets[spec.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset name %q", spec.Name)
		}
		r.datasets[spec.Name] = &dataset{
			spec:    spec,
			byModel: make(map[diffusion.Kind]*evolve.Graph, 2),
			mmapDir: mmapDir,
		}
	}
	return r, nil
}

// get returns the evolving graph for (name, model kind), building and
// weighting it on first use. A variant requested only after updates
// landed does not exist yet *only* when the dataset was never updated —
// update() materializes all supported variants — so lazy building from
// the spec is always building at version 0.
func (r *registry) get(name string, kind diffusion.Kind) (*evolve.Graph, error) {
	r.mu.Lock()
	d, ok := r.datasets[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.variant(kind, r.evolve)
}

// variant returns (building if needed) the model variant. Caller holds
// d.mu. With WAL recovery pending, the build starts from the checkpoint
// (topology-only; the policy re-derives this model's weights) instead
// of the spec, and then replays the recovered WAL tail — so a lazily
// built variant lands at exactly the version its siblings serve.
func (d *dataset) variant(kind diffusion.Kind, opts evolve.Options) (*evolve.Graph, error) {
	if eg, ok := d.byModel[kind]; ok {
		return eg, nil
	}
	var eg *evolve.Graph
	if d.ckpt != nil {
		policy, err := d.policyFor(kind)
		if err != nil {
			return nil, err
		}
		edges, err := d.ckpt.EdgeList()
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.spec.Name, err)
		}
		eg, err = evolve.Restore(d.ckpt.Nodes, edges, d.ckpt.Version, policy, opts)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: restore checkpoint v%d: %w", d.spec.Name, d.ckpt.Version, err)
		}
	} else {
		g, err := d.spec.build()
		if err != nil {
			return nil, err
		}
		var policy evolve.WeightPolicy
		switch kind {
		case diffusion.IC:
			graph.AssignWeightedCascade(g)
			policy = evolve.WeightedCascade{}
		case diffusion.LT:
			graph.AssignRandomNormalizedLTKeyed(g, d.spec.Seed+1)
			policy = evolve.NewKeyedNormalizedLT(d.spec.Seed + 1)
		default:
			return nil, fmt.Errorf("server: dataset %q: unsupported model kind %v", d.spec.Name, kind)
		}
		if d.mmapDir != "" {
			// Rehome the freshly built (and weighted) CSR arrays onto a
			// memory-mapped backing file: the kernel pages the topology in
			// on demand instead of it pinning RAM. Copy-on-write mapping,
			// so later in-place weight re-derivation stays private. On a
			// platform without mmap this is an identity transform. The
			// checkpoint-restore path above stays heap-resident — it is
			// rebuilt from the WAL, not the spec, and recovery correctness
			// beats paging there.
			mg, err := graph.MmapBacked(g, d.mmapDir)
			if err != nil {
				return nil, fmt.Errorf("server: dataset %q: mmap backing: %w", d.spec.Name, err)
			}
			g = mg
		}
		eg = evolve.New(g, policy, opts)
	}
	for _, rec := range d.tail {
		if rec.Version <= eg.Version() {
			continue
		}
		if _, err := eg.Apply(rec.Batch); err != nil {
			return nil, fmt.Errorf("server: dataset %q: replay wal record v%d: %w", d.spec.Name, rec.Version, err)
		}
	}
	d.byModel[kind] = eg
	if len(d.byModel) == len(supportedKinds) {
		// Every variant that will ever exist has consumed the recovered
		// state; release the checkpoint topology and tail batches.
		d.ckpt, d.tail = nil, nil
	}
	return eg, nil
}

// policyFor maps a model kind to the dataset's weight policy — the same
// assignment variant() uses on the spec-build path, as a pure function
// the restore path can hand to evolve.Restore.
func (d *dataset) policyFor(kind diffusion.Kind) (evolve.WeightPolicy, error) {
	switch kind {
	case diffusion.IC:
		return evolve.WeightedCascade{}, nil
	case diffusion.LT:
		return evolve.NewKeyedNormalizedLT(d.spec.Seed + 1), nil
	}
	return nil, fmt.Errorf("server: dataset %q: unsupported model kind %v", d.spec.Name, kind)
}

// updateInfo reports the post-update state of a dataset.
type updateInfo struct {
	Version uint64
	Nodes   int
	Edges   int
}

// update applies one mutation batch to every model variant of the
// dataset. All supported variants are materialized first (bounded work:
// there are two), so no mutation history ever needs to be retained for
// variants built later, and every variant advances in lockstep. The
// batch is validated atomically: on error nothing is applied.
//
// With a WAL attached the ordering is log-before-apply: the batch is
// validated (Validate, not Apply — nothing mutates), appended to the
// log, and only then applied. A WAL append failure therefore rejects
// the update with the graph untouched — the server never acks a batch
// it could not make durable, and never holds in-memory state the log
// does not know about. After a successful Validate, Apply cannot fail
// (the evolve contract), so a logged record always replays.
func (r *registry) update(name string, b evolve.Batch) (updateInfo, error) {
	r.mu.Lock()
	d, ok := r.datasets[name]
	r.mu.Unlock()
	if !ok {
		return updateInfo{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	variants := make([]*evolve.Graph, 0, len(supportedKinds))
	for _, kind := range supportedKinds {
		eg, err := d.variant(kind, r.evolve)
		if err != nil {
			return updateInfo{}, err
		}
		variants = append(variants, eg)
	}
	// Validate against the first variant; all variants share the same
	// topology, so acceptance there implies acceptance everywhere.
	if err := variants[0].Validate(b); err != nil {
		return updateInfo{}, err
	}
	if d.log != nil {
		if err := d.log.Append(wal.Record{Version: d.version + 1, Batch: b}); err != nil {
			return updateInfo{}, fmt.Errorf("server: dataset %q: wal append: %w", name, err)
		}
	}
	info := updateInfo{}
	if v, err := variants[0].Apply(b); err != nil {
		return updateInfo{}, err
	} else {
		info.Version = v
	}
	for _, eg := range variants[1:] {
		if v, err := eg.Apply(b); err != nil {
			return updateInfo{}, fmt.Errorf("server: dataset %q: variants diverged applying update: %v", name, err)
		} else if v != info.Version {
			return updateInfo{}, fmt.Errorf("server: dataset %q: variant versions diverged (%d vs %d)", name, v, info.Version)
		}
	}
	d.version = info.Version
	info.Nodes, info.Edges = variants[0].N(), variants[0].M()
	if d.log != nil && r.checkpointEvery > 0 {
		if st := d.log.Stats(); d.version-st.CheckpointVersion >= uint64(r.checkpointEvery) {
			cp := wal.CheckpointFrom(name, info.Nodes, variants[0].Edges(), d.version)
			if err := d.log.WriteCheckpoint(cp); err != nil && r.logf != nil {
				// The WAL still holds every record, so durability is intact;
				// a failed checkpoint only defers log truncation.
				r.logf("server: dataset %q: checkpoint at v%d failed: %v", name, d.version, err)
			}
		}
	}
	return info, nil
}

// snapshotBytes reports the CSR bytes of every materialized model
// variant of the named dataset — the capacity ledger's csr_snapshots
// leaf. Variants not yet built cost nothing.
func (r *registry) snapshotBytes(name string) int64 {
	r.mu.Lock()
	d, ok := r.datasets[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, eg := range d.byModel {
		total += eg.SnapshotMemoryBytes()
	}
	return total
}

// specs returns the configured dataset specs sorted by name — the
// flight recorder's header needs them to rebuild an identically-seeded
// registry on replay.
func (r *registry) specs() []DatasetSpec {
	r.mu.Lock()
	out := make([]DatasetSpec, 0, len(r.datasets))
	for _, d := range r.datasets {
		out = append(out, d.spec)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// datasetInfo describes one registry entry for GET /v1/datasets and the
// datasets section of /v1/stats.
type datasetInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Version counts the update batches applied to the dataset.
	Version uint64 `json:"version"`
	// Nodes and Edges are present once any model variant has been built.
	Nodes        int      `json:"nodes,omitempty"`
	Edges        int      `json:"edges,omitempty"`
	LoadedModels []string `json:"loaded_models,omitempty"`
}

func (r *registry) list() []datasetInfo {
	r.mu.Lock()
	datasets := make([]*dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		datasets = append(datasets, d)
	}
	r.mu.Unlock()
	infos := make([]datasetInfo, 0, len(datasets))
	for _, d := range datasets {
		d.mu.Lock()
		info := datasetInfo{Name: d.spec.Name, Source: d.spec.Source, Version: d.version}
		for kind, eg := range d.byModel {
			info.Nodes, info.Edges = eg.N(), eg.M()
			info.LoadedModels = append(info.LoadedModels, strings.ToLower(kind.String()))
		}
		sort.Strings(info.LoadedModels)
		d.mu.Unlock()
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
