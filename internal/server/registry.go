package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ErrUnknownDataset is returned for queries naming a dataset the registry
// does not hold; handlers map it to 404.
var ErrUnknownDataset = errors.New("server: unknown dataset")

// DatasetSpec declares one named dataset for the registry, in the string
// form accepted by timserver's -dataset flag: "name=source" where source
// is one of
//
//	file:PATH            directed edge-list file ('#' comments, optional
//	                     "# Nodes: n" header)
//	ufile:PATH           undirected edge-list file
//	profile:NAME:SCALE   synthetic Table 2 stand-in (nethept, epinions,
//	                     dblp, livejournal, twitter) at tiny|small|full
//	ba:N:ATTACH          Barabási–Albert graph with N nodes
//	er:N:M               Erdős–Rényi G(n, m) graph
//
// A bare source with no prefix is treated as file:PATH.
type DatasetSpec struct {
	Name   string
	Source string
	// Seed drives synthetic generation (and LT weight assignment).
	Seed uint64
}

// ParseDatasetSpec parses "name=source".
func ParseDatasetSpec(s string, seed uint64) (DatasetSpec, error) {
	name, source, ok := strings.Cut(s, "=")
	if !ok || name == "" || source == "" {
		return DatasetSpec{}, fmt.Errorf("server: dataset spec %q is not name=source", s)
	}
	return DatasetSpec{Name: name, Source: source, Seed: seed}, nil
}

// build constructs a fresh topology instance from the spec. Each diffusion
// model gets its own instance (weights are mutable, per-model, and shared
// between a graph and its transpose), so build may run more than once.
func (d DatasetSpec) build() (*graph.Graph, error) {
	kind, rest, found := strings.Cut(d.Source, ":")
	if !found {
		kind, rest = "file", d.Source
	}
	switch kind {
	case "file", "ufile":
		f, err := os.Open(rest)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f, kind == "ufile")
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		return g, nil
	case "profile":
		name, scaleStr, ok := strings.Cut(rest, ":")
		if !ok {
			scaleStr = "tiny"
		}
		p, err := gen.ProfileByName(name)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		scale, err := gen.ParseScale(scaleStr)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		return p.Generate(scale, d.Seed), nil
	case "ba":
		n, attach, err := twoInts(rest)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: ba:N:ATTACH: %w", d.Name, err)
		}
		return gen.BarabasiAlbert(n, attach, rng.New(d.Seed)), nil
	case "er":
		n, m, err := twoInts(rest)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: er:N:M: %w", d.Name, err)
		}
		return gen.ErdosRenyiGnm(n, m, rng.New(d.Seed)), nil
	}
	return nil, fmt.Errorf("server: dataset %q: unknown source kind %q", d.Name, kind)
}

func twoInts(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want two ':'-separated integers, got %q", s)
	}
	x, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.Atoi(b)
	if err != nil {
		return 0, 0, err
	}
	if x <= 0 || y <= 0 {
		return 0, 0, fmt.Errorf("values must be positive, got %d:%d", x, y)
	}
	return x, y, nil
}

// registry holds the named datasets a server answers queries about, with
// one lazily built, permanently cached weighted graph per diffusion model
// — graphs are loaded once and shared by every subsequent query, which is
// the first thing that makes a long-lived server cheaper than the CLI.
type registry struct {
	mu       sync.Mutex
	datasets map[string]*dataset
}

type dataset struct {
	spec DatasetSpec

	mu      sync.Mutex
	byModel map[diffusion.Kind]*graph.Graph
}

func newRegistry(specs []DatasetSpec) (*registry, error) {
	r := &registry{datasets: make(map[string]*dataset, len(specs))}
	for _, spec := range specs {
		if _, dup := r.datasets[spec.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset name %q", spec.Name)
		}
		r.datasets[spec.Name] = &dataset{
			spec:    spec,
			byModel: make(map[diffusion.Kind]*graph.Graph, 2),
		}
	}
	return r, nil
}

// get returns the weighted graph for (name, model kind), building it on
// first use: weighted cascade for IC (the paper's §7.1 setup), random
// normalized weights for LT.
func (r *registry) get(name string, kind diffusion.Kind) (*graph.Graph, error) {
	r.mu.Lock()
	d, ok := r.datasets[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if g, ok := d.byModel[kind]; ok {
		return g, nil
	}
	g, err := d.spec.build()
	if err != nil {
		return nil, err
	}
	switch kind {
	case diffusion.IC:
		graph.AssignWeightedCascade(g)
	case diffusion.LT:
		graph.AssignRandomNormalizedLT(g, rng.New(d.spec.Seed+1))
	default:
		return nil, fmt.Errorf("server: dataset %q: unsupported model kind %v", name, kind)
	}
	d.byModel[kind] = g
	return g, nil
}

// datasetInfo describes one registry entry for GET /v1/datasets.
type datasetInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Nodes and Edges are present once any model variant has been built.
	Nodes        int      `json:"nodes,omitempty"`
	Edges        int      `json:"edges,omitempty"`
	LoadedModels []string `json:"loaded_models,omitempty"`
}

func (r *registry) list() []datasetInfo {
	r.mu.Lock()
	datasets := make([]*dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		datasets = append(datasets, d)
	}
	r.mu.Unlock()
	infos := make([]datasetInfo, 0, len(datasets))
	for _, d := range datasets {
		d.mu.Lock()
		info := datasetInfo{Name: d.spec.Name, Source: d.spec.Source}
		for kind, g := range d.byModel {
			info.Nodes, info.Edges = g.N(), g.M()
			info.LoadedModels = append(info.LoadedModels, strings.ToLower(kind.String()))
		}
		sort.Strings(info.LoadedModels)
		d.mu.Unlock()
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
