// Package server implements the influence-maximization query service
// behind cmd/timserver: a long-lived HTTP/JSON front end over the tim,
// spread, and diffusion packages.
//
// Three layers make repeated queries cheap, in decreasing order of
// savings:
//
//  1. A graph registry loads each named dataset once at startup
//     configuration and weights it once per diffusion model, so no query
//     ever pays graph construction.
//  2. An LRU result cache keyed on the full query tuple answers exact
//     repeats without any computation.
//  3. An RR-collection reuse layer keyed on (dataset, model, ε) feeds
//     tim's node-selection phase through the tim.CollectionSource hook:
//     a query needing θ₂ RR sets after an earlier query sampled θ₁ < θ₂
//     extends the cached collection by θ₂ − θ₁ sets instead of
//     resampling from scratch — the Borgs et al. amortization argument
//     turned into a data structure. Extensions are prefix-deterministic,
//     so a warm cache can never change an answer, only skip work.
//
// Datasets are mutable: POST /v1/update applies a batched topology
// mutation (edge inserts/deletes, node growth) through the evolving-graph
// layer (internal/evolve). Queries always run against an immutable
// snapshot, caches are keyed by graph version, and warm RR collections
// are repaired incrementally — only the sets an update could have touched
// are re-derived — instead of being dropped, so the server keeps
// answering exactly as a cold server on the mutated graph would while
// resampling a fraction of the sets.
//
// Maximize-shaped queries also accept constraints (internal/query):
// targeted audience weights, seeding costs under a budget, forced or
// excluded seeds, and a max-hops diffusion deadline. Audience and horizon
// constraints key their own RR collections (by compiled profile hash);
// selection-only constraints share the unconstrained ones. POST
// /v1/query/batch answers up to MaxBatchQueries maximize queries in one
// round-trip, bounded-parallel: items sharing a warm collection warm it
// once (largest predicted θ first) and then run concurrently, with
// answers identical to a sequential batch. /v1/stats reports per-dataset
// query-subsystem counters plus the parallel section (scratch-pool reuse,
// batch concurrency).
//
// Endpoints: POST /v1/maximize, POST /v1/query/batch, POST /v1/spread,
// POST /v1/update, GET /v1/stats, GET /v1/datasets, GET /v1/capacity,
// GET /v1/health/slo, GET /healthz. Every request runs under a
// configurable timeout whose context threads into the sampling loops
// via tim.MaximizeContext, so a slow query cannot wedge a worker
// forever.
//
// Observability state (the capacity ledger, SLO error budgets, and the
// optional query flight recorder) is described in DESIGN.md §13.
package server

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/diffusion"
	"repro/internal/diskrr"
	"repro/internal/evolve"
	"repro/internal/maxcover"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Config configures New. The zero value of every field except Datasets is
// usable.
type Config struct {
	// Datasets is the registry content. Queries can only reference these.
	Datasets []DatasetSpec
	// CacheSize bounds the LRU result cache (default 256 entries).
	CacheSize int
	// RRCollections bounds the RR-collection reuse layer to this many
	// live (dataset, model, ε) collections (default 64); the least
	// recently used collection is evicted beyond that. ε is
	// client-supplied, so without a bound the reuse layer would grow
	// with the number of distinct query tuples ever seen.
	RRCollections int
	// RequestTimeout bounds each query's computation (default 60s; the
	// context is threaded into tim's sampling loops, so timeouts abort
	// promptly rather than after the current phase).
	RequestTimeout time.Duration
	// MaxTheta bounds the RR sets any single query may sample (default
	// 4 million; θ grows as 1/ε², so without a cap one tiny-ε request
	// can exhaust server memory inside the request timeout). Responses
	// report theta_capped when the cap bound; the approximation
	// guarantee is void for such queries.
	MaxTheta int64
	// Workers is the per-query parallelism (default GOMAXPROCS): RR
	// sampling, the max-cover index build, and coverage counting all scale
	// with it, and answers are byte-identical for every value.
	Workers int
	// BatchParallelism bounds how many /v1/query/batch items execute
	// concurrently (default GOMAXPROCS; 1 restores fully sequential
	// batches). Items that share a warm RR collection still warm it in
	// order — the predicted-largest-θ item of each sharing group runs
	// first — so batch parallelism overlaps per-item selection without
	// duplicating sampling work, and answers are identical to a
	// sequential batch (reuse can only skip work, never change a result).
	BatchParallelism int
	// MaxInFlight bounds concurrently executing maximize-shaped queries
	// (default 2×GOMAXPROCS). Budgeted queries finding the gate full are
	// rejected immediately with 503 + Retry-After (their budget would
	// expire in the queue); unbudgeted queries wait their turn.
	MaxInFlight int
	// EpsLadder is the ε escalation ladder for budgeted queries (default
	// tiered.DefaultLadder): under latency pressure a query coarsens along
	// these rungs, each of which maps to its own shared RR collection, so
	// a budgeted answer at rung ε is bit-identical to an unbudgeted query
	// at that ε.
	EpsLadder []float64
	// Seed is the base seed of the RR reuse layer and the default query
	// seed. Two servers with equal Config answer identically.
	Seed uint64
	// MaxDeltaLog bounds the mutations each dataset retains for
	// incremental RR-collection repair (default 1<<20). A warm collection
	// older than the retained window resets cold on its next use instead
	// of repairing.
	MaxDeltaLog int
	// TraceRing bounds the in-memory ring of completed request traces
	// behind GET /v1/trace/{id} and /v1/trace/slow (default 256; negative
	// disables tracing entirely — requests then skip trace allocation and
	// every span call is a no-op, the nil-trace fast path).
	TraceRing int
	// AccessLog, when non-nil, receives one structured line per /v1/*
	// request (trace id, endpoint, dataset, tier, ε, status, elapsed,
	// shed/escalated flags). nil keeps the server silent.
	AccessLog *slog.Logger
	// MemoryBudgetBytes is the operator's memory budget for the
	// ledger-accounted state; GET /v1/capacity reports headroom against
	// it. 0 means unbudgeted (headroom is then omitted). With a spill
	// directory configured it is also an eviction trigger: while the
	// RAM tier exceeds the budget, the rr-store demotes LRU collections
	// to disk.
	MemoryBudgetBytes int64
	// SpillDir enables the out-of-core spill tier: RR collections
	// evicted from the rr-store demote to spill files here (and promote
	// back on their next query) instead of being discarded, and
	// MmapDatasets places its CSR backing files here. The directory is
	// created if missing and purged of spill artifacts at startup (the
	// tier's index dies with the process). Empty disables the tier.
	SpillDir string
	// DiskBudgetBytes bounds the spill tier's on-disk bytes; beyond it
	// the oldest spilled collection is dropped. 0 means unbudgeted.
	DiskBudgetBytes int64
	// MmapDatasets serves synthetic datasets' CSR snapshots from
	// memory-mapped files under SpillDir instead of heap slices, so a
	// graph larger than RAM pages on demand. Requires SpillDir; on
	// platforms without mmap support the flag is ignored and graphs
	// stay heap-resident.
	MmapDatasets bool
	// QLogPath, when non-empty, enables the query flight recorder: a
	// schema-versioned JSONL file (one header line, then one sampled
	// record per maximize-shaped answer) that cmd/timload can replay.
	QLogPath string
	// QLogSample keeps every Nth query record (default 1 = all).
	QLogSample int
	// QLogMaxRecords caps the records written over the process lifetime
	// (default 100000; negative = unbounded).
	QLogMaxRecords int
	// SLOObjective is the tolerated bad fraction per tier class for the
	// rolling error budgets behind /v1/health/slo (default 0.01 — a 99%
	// objective).
	SLOObjective float64
	// WALDir, when non-empty, enables the durable update WAL: every
	// committed /v1/update batch is logged (one subdirectory per dataset)
	// before it is acked, and startup recovers each dataset from its
	// latest checkpoint plus the log tail. Empty keeps updates
	// memory-only (the pre-WAL behavior).
	WALDir string
	// WALSync is the fsync policy for WAL appends: "always" (default;
	// an acked update survives any crash), "interval" (fsync at most
	// once per WALSyncEvery), or "none" (the OS decides; recovery still
	// works, but recently acked updates may be lost).
	WALSync string
	// WALSyncEvery is the cadence of WALSync=interval (default 200ms).
	WALSyncEvery time.Duration
	// CheckpointEvery writes a checkpoint (materialized topology
	// snapshot + WAL truncation) every N update batches per dataset,
	// bounding recovery replay by N. Default 64; negative disables
	// automatic checkpoints (the log then grows until restart).
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.RRCollections == 0 {
		c.RRCollections = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxTheta == 0 {
		c.MaxTheta = 4_000_000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.QLogSample < 1 {
		c.QLogSample = 1
	}
	if c.QLogMaxRecords == 0 {
		c.QLogMaxRecords = 100_000
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.01
	}
	if c.WALSync == "" {
		c.WALSync = "always"
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	return c
}

// Server is the query service. It implements http.Handler; wrap it in an
// http.Server (as cmd/timserver does) to listen on a port.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	registry *registry
	results  *lruCache
	rr       *rrStore
	tiered   *tieredRuntime
	start    time.Time

	// ledger is the capacity ledger: the hierarchical byte-accounting
	// tree every memory-holding subsystem (rr-store, result cache, CSR
	// snapshots, tiered scorers, scratch pools) reports into. /metrics,
	// /v1/stats, and /v1/capacity are all views of it.
	ledger *obs.Ledger
	// qlog is the query flight recorder (nil when disabled).
	qlog *obs.QLog

	// obs is the observability substrate: the metrics registry (every
	// /v1/stats counter below is a registry instrument — /metrics and the
	// JSON snapshot are two views of one source of truth), the trace
	// ring, the request-id generator, and the access log.
	obs *obsState

	// WAL state: what startup recovery found (for the startup line and
	// /v1/stats) and the effective sync policy.
	walEnabled bool
	walSync    wal.SyncPolicy
	recovery   []DatasetRecovery
}

// parallelStats is the /v1/stats snapshot of the parallel-execution
// subsystem: scratch-pool reuse and batch concurrency. The pool counters
// are process-wide (the sampler and selection pools live in their
// packages, shared by every server in the process), so they are
// monotone across the process lifetime, not per-server.
type parallelStats struct {
	// SamplerPoolHits/Misses count RR-sampler acquisitions served from
	// the recycling pool vs fresh constructions (diffusion package).
	SamplerPoolHits   int64 `json:"sampler_pool_hits"`
	SamplerPoolMisses int64 `json:"sampler_pool_misses"`
	// SelectScratchHits/Misses count selection scratch (occurrence
	// counts, CSR arrays, cover bitmaps, seed marks) pool reuse
	// (maxcover package).
	SelectScratchHits   int64 `json:"select_scratch_hits"`
	SelectScratchMisses int64 `json:"select_scratch_misses"`
	// BatchParallelism echoes the configured concurrency bound.
	BatchParallelism int `json:"batch_parallelism"`
	// BatchGroups counts RR-collection sharing groups across batches;
	// BatchWarmupItems the items run sequentially to warm a shared
	// collection; BatchParallelItems the items run concurrently.
	BatchGroups        int64 `json:"batch_groups"`
	BatchWarmupItems   int64 `json:"batch_warmup_items"`
	BatchParallelItems int64 `json:"batch_parallel_items"`
}

func (s *Server) parallelStatsSnapshot() parallelStats {
	samplerHits, samplerMisses := diffusion.SamplerPoolStats()
	scratchHits, scratchMisses := maxcover.ScratchPoolStats()
	return parallelStats{
		SamplerPoolHits:     samplerHits,
		SamplerPoolMisses:   samplerMisses,
		SelectScratchHits:   scratchHits,
		SelectScratchMisses: scratchMisses,
		BatchParallelism:    s.cfg.BatchParallelism,
		BatchGroups:         s.obs.batchGroups.Int(),
		BatchWarmupItems:    s.obs.batchWarmupItems.Int(),
		BatchParallelItems:  s.obs.batchParallelItems.Int(),
	}
}

// datasetQueryStats are the per-dataset query-subsystem counters of
// /v1/stats, following the repair-counter pattern: cheap monotone
// counters that let operators see which datasets run constrained
// workloads without sampling traffic.
type datasetQueryStats struct {
	// ConstrainedQueries counts /v1/maximize-style queries that carried
	// any constraint field (including batch items).
	ConstrainedQueries int64 `json:"constrained_queries"`
	// WeightedCollections counts weighted (audience-profile) RR
	// collections created in the reuse layer for this dataset.
	WeightedCollections int64 `json:"weighted_collections"`
	// BatchQueries counts queries that arrived via POST /v1/query/batch.
	BatchQueries int64 `json:"batch_queries"`
	// ConstraintRejections counts queries rejected for invalid
	// constraints (4xx), before any sampling ran.
	ConstraintRejections int64 `json:"constraint_rejections"`
}

// bumpQuery applies f to the named dataset's query instruments. Unknown
// dataset names still count: a rejected query may fail before the
// registry resolves, and operators want to see those too.
func (s *Server) bumpQuery(dataset string, f func(*datasetQueryInstruments)) {
	f(s.obs.queryInstr(dataset))
}

// endpointStats are the per-endpoint counters of /v1/stats.
type endpointStats struct {
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	TotalLatencyMs float64 `json:"total_latency_ms"`
	MaxLatencyMs   float64 `json:"max_latency_ms"`
}

// New builds a Server from cfg. Dataset files are not opened until the
// first query touches them; New fails only on malformed configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.SpillDir != "" {
		// The spill tier is a volatile cache whose index lives in this
		// process: purge artifacts a previous process left behind
		// (finished spills, torn .tmp files from a crash mid-demotion,
		// mmap backing files) before anything can collide with them.
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating spill dir: %w", err)
		}
		if _, err := diskrr.PurgeSpillDir(cfg.SpillDir); err != nil {
			return nil, fmt.Errorf("server: purging spill dir: %w", err)
		}
	}
	mmapDir := ""
	if cfg.MmapDatasets && cfg.SpillDir != "" {
		mmapDir = cfg.SpillDir
	}
	reg, err := newRegistry(cfg.Datasets, evolve.Options{MaxLogMutations: cfg.MaxDeltaLog}, mmapDir)
	if err != nil {
		return nil, err
	}
	var (
		recovery []DatasetRecovery
		walSync  wal.SyncPolicy
	)
	if cfg.WALDir != "" {
		walSync, err = wal.ParseSyncPolicy(cfg.WALSync)
		if err != nil {
			return nil, err
		}
		logf := log.Printf
		if cfg.AccessLog != nil {
			al := cfg.AccessLog
			logf = func(format string, args ...any) { al.Warn(fmt.Sprintf(format, args...)) }
		}
		recovery, err = reg.attachWAL(cfg.WALDir,
			wal.Options{Sync: walSync, SyncEvery: cfg.WALSyncEvery, Logf: logf},
			cfg.CheckpointEvery, logf)
		if err != nil {
			return nil, err
		}
	}
	// The request-id stream is keyed off the config seed but salted with
	// wall-clock time: ids must differ across server restarts (operators
	// grep logs by them), while answers stay seed-deterministic.
	o := newObsState(cfg.TraceRing, cfg.AccessLog, cfg.Seed^uint64(time.Now().UnixNano()), cfg.SLOObjective)
	ledger := obs.NewLedger()
	tiered := newTieredRuntime(cfg.MaxInFlight, cfg.EpsLadder, o.reg)
	rrCfg := rrStoreConfig{
		Seed:       cfg.Seed,
		Capacity:   cfg.RRCollections,
		SpillDir:   cfg.SpillDir,
		DiskBudget: cfg.DiskBudgetBytes,
		MemBudget:  cfg.MemoryBudgetBytes,
		// The RAM-tier total: everything in the ledger except the disk
		// components (spill files, WAL). Using ledger.Total() here would
		// count the bytes demotion just moved to disk against the memory
		// budget, and eviction could never converge.
		RAMBytes: func() int64 { return ledger.Total() - ledger.SumComponents(diskComponents...) },
		// Each completed promotion calibrates the planner's
		// promotion-latency model for the key's (dataset, model).
		OnPromote: func(key string, bytes int64, ms float64) {
			tiered.planner.ObservePromotion(rrKeyCost(key), bytes, ms)
		},
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		registry: reg,
		results:  newLRUCache(cfg.CacheSize, ledger),
		rr:       newRRStore(rrCfg, o.reg, ledger),
		tiered:   tiered,
		start:    time.Now(),
		ledger:   ledger,
		obs:      o,

		walEnabled: cfg.WALDir != "",
		walSync:    walSync,
		recovery:   recovery,
	}
	s.registerLedger()
	o.registerMirrors(s)
	if cfg.QLogPath != "" {
		q, err := obs.OpenQLog(cfg.QLogPath, s.qlogHeader(), cfg.QLogSample, cfg.QLogMaxRecords)
		if err != nil {
			return nil, err
		}
		s.qlog = q
	}
	s.mux.HandleFunc("POST /v1/maximize", s.handleMaximize)
	s.mux.HandleFunc("POST /v1/query/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/spread", s.handleSpread)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/capacity", s.handleCapacity)
	s.mux.HandleFunc("GET /v1/health/slo", s.handleHealthSLO)
	s.mux.HandleFunc("GET /v1/trace/slow", s.handleTraceSlow)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// registerLedger installs every ledger leaf the server owns. Mutable
// accounts (rr_collections, result_cache) are pre-created per dataset
// so the leaf set — and the capacity gauge's label space — is fixed at
// startup; computed leaves read state whose authoritative size lives
// elsewhere (CSR snapshots, scorers, process-wide pools).
func (s *Server) registerLedger() {
	for _, spec := range s.registry.specs() {
		name := spec.Name
		s.ledger.Account(name, "rr_collections")
		s.ledger.Account(name, "result_cache")
		if s.cfg.SpillDir != "" {
			s.ledger.Account(name, "rr_spill")
		}
		s.ledger.AccountFunc(func() int64 { return s.registry.snapshotBytes(name) }, name, "csr_snapshots")
		s.ledger.AccountFunc(func() int64 { return s.tiered.scorerBytes(name) }, name, "tiered_scorers")
		if s.walEnabled {
			// Durable bytes (log + checkpoint file), not resident memory —
			// accounted so one budget view covers everything state costs.
			s.ledger.AccountFunc(func() int64 { return s.registry.walBytes(name) }, name, "wal")
		}
	}
	// The sampler and selection scratch pools are process-wide (shared by
	// every server in the process) and sync.Pool-backed, so their leaves
	// are best-effort retention upper bounds, not exact counts.
	s.ledger.AccountFunc(diffusion.SamplerPoolBytes, "(process)", "sampler_pool")
	s.ledger.AccountFunc(maxcover.ScratchPoolBytes, "(process)", "select_scratch")
}

// qlogHeader pins the recording server's identity — dataset specs with
// their build seeds, the base seed, the ε ladder — so a replay can
// rebuild an identically-seeded instance from the file alone.
func (s *Server) qlogHeader() obs.QLogHeader {
	h := obs.QLogHeader{Seed: s.cfg.Seed, EpsLadder: s.tiered.planner.Ladder()}
	for _, spec := range s.registry.specs() {
		h.Datasets = append(h.Datasets, obs.QLogDataset{Name: spec.Name, Source: spec.Source, Seed: spec.Seed})
	}
	return h
}

// Close flushes and closes the query flight recorder (a no-op when
// recording is disabled) and syncs and closes every dataset's WAL. The
// server keeps serving; callers close during drain, after the listener
// stops.
func (s *Server) Close() error {
	err := s.qlog.Close()
	if werr := s.registry.closeWAL(); werr != nil && err == nil {
		err = werr
	}
	return err
}

// Recovery reports what WAL recovery restored at startup, one entry per
// dataset (nil when the WAL is disabled). cmd/timserver logs these.
func (s *Server) Recovery() []DatasetRecovery { return s.recovery }

// ServeHTTP implements http.Handler. /v1/* requests pass through the
// observability middleware: the request id is read from X-Request-ID (or
// generated), echoed on the response, and carried in the context for
// handlers to report as trace_id; compute endpoints additionally get a
// per-request Trace whose finished span chain lands in the trace ring,
// feeds the phase histograms, and is summarized on the access log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		s.serveRecovered(&statusWriter{ResponseWriter: w, status: http.StatusOK}, r, "")
		return
	}
	meta := &reqMeta{id: r.Header.Get("X-Request-ID"), endpoint: endpointOf(r.URL.Path)}
	if meta.id == "" {
		meta.id = s.obs.newRequestID()
	}
	w.Header().Set("X-Request-ID", meta.id)
	ctx := context.WithValue(r.Context(), reqMetaKey{}, meta)

	var tr *obs.Trace
	if s.obs.ring != nil && tracedPath(r.Method, r.URL.Path) {
		tr = obs.NewTrace(meta.id)
		tr.SetAttr("endpoint", meta.endpoint)
		ctx = obs.WithTrace(ctx, tr)
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.serveRecovered(sw, r.WithContext(ctx), meta.id)
	elapsed := msSince(start)

	if tr != nil {
		tr.SetAttr("status", int64(sw.status))
		tr.SetAttr("dataset", meta.dataset)
		tr.Finish()
		s.obs.ring.Add(tr)
		tr.SpanDurations(func(name string, ms float64) {
			s.obs.phaseHist.With(name).Observe(ms)
		})
	}
	s.obs.logRequest(meta, sw.status, elapsed)
}

// serveRecovered dispatches to the mux with panic containment: a
// handler panic becomes a logged 500 carrying the trace id (and bumps
// timserver_panics_total) instead of killing the process and every
// other in-flight request's connection with it. The rest of the
// middleware still runs — the access log and trace record the 500.
func (s *Server) serveRecovered(w *statusWriter, r *http.Request, traceID string) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		s.obs.panics.Inc()
		if s.obs.accessLog != nil {
			s.obs.accessLog.Error("handler panic",
				slog.String("trace_id", traceID),
				slog.Any("panic", rec),
				slog.String("stack", string(debug.Stack())))
		} else {
			log.Printf("server: handler panic (trace_id %s): %v\n%s", traceID, rec, debug.Stack())
		}
		if w.wrote {
			// The handler already committed a response; the status cannot
			// change, but the counter and log above still record the panic.
			w.status = http.StatusInternalServerError
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{
			Error:   "server: internal error (panic recovered)",
			TraceID: traceID,
		})
	}()
	s.mux.ServeHTTP(w, r)
}

// DatasetSummary describes one configured dataset for startup logging.
type DatasetSummary struct {
	Name  string
	Nodes int
	Edges int
}

// WarmDatasets eagerly builds the IC variant of every configured dataset
// and returns their sizes. cmd/timserver calls it before listening, so a
// bad dataset fails startup instead of the first query, and the startup
// log can report sizes; the build is exactly the one that first query
// would have paid.
func (s *Server) WarmDatasets() ([]DatasetSummary, error) {
	infos := s.registry.list()
	out := make([]DatasetSummary, 0, len(infos))
	for _, di := range infos {
		evg, err := s.registry.get(di.Name, diffusion.IC)
		if err != nil {
			return nil, err
		}
		out = append(out, DatasetSummary{Name: di.Name, Nodes: evg.N(), Edges: evg.M()})
	}
	return out, nil
}

// EpsLadder reports the normalized ε escalation ladder in use.
func (s *Server) EpsLadder() []float64 { return s.tiered.planner.Ladder() }

// TraceRing reports the effective retained-trace capacity (0 when
// tracing is disabled) — the normalized value, not the raw config.
func (s *Server) TraceRing() int {
	if s.obs.ring == nil {
		return 0
	}
	return s.cfg.TraceRing
}

// observe records one request's outcome on the named endpoint. The
// instruments are the registry series behind /metrics; /v1/stats builds
// its endpoints section from the same series.
func (s *Server) observe(endpoint string, start time.Time, cacheHit bool, failed bool) {
	ms := float64(time.Since(start).Microseconds()) / 1000
	e := s.obs.endpoints[endpoint]
	e.requests.Inc()
	if failed {
		e.errors.Inc()
	} else if cacheHit {
		e.cacheHits.Inc()
	} else {
		e.cacheMisses.Inc()
	}
	e.latencySum.Add(ms)
	e.latencyMax.SetMax(ms)
	e.latency.Observe(ms)
}
