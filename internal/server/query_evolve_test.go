package server

import (
	"net/http"
	"reflect"
	"testing"
)

// edgeOnlyUpdates mutates many heads without growing the node space, so
// weighted profiles (compiled per node count) stay valid and warm
// constrained collections must be *repaired*, not re-keyed.
func edgeOnlyUpdates() []UpdateRequest {
	u1 := UpdateRequest{Dataset: "known"}
	for i := 0; i < 8; i++ {
		u1.Delete = append(u1.Delete, UpdateEdge{From: uint32(i), To: uint32(i+1) % 60})
		u1.Insert = append(u1.Insert, UpdateEdge{From: uint32(i * 3), To: uint32(i*5 + 2)})
	}
	u2 := UpdateRequest{Dataset: "known"}
	for i := 0; i < 6; i++ {
		u2.Insert = append(u2.Insert, UpdateEdge{From: uint32(i + 20), To: uint32(i * 7)})
		u2.Delete = append(u2.Delete, UpdateEdge{From: uint32(i), To: uint32(i+7) % 60})
	}
	return []UpdateRequest{u1, u2}
}

// TestUpdateWarmMatchesColdConstrained is the constrained-query extension
// of TestUpdateWarmMatchesCold: a server whose weighted and horizon
// collections were warmed before edge updates (and then repaired in
// place) must answer constrained /v1/maximize queries bit-identically to
// a cold server that saw the updates first.
func TestUpdateWarmMatchesColdConstrained(t *testing.T) {
	_, warm := newEvolveTestServer(t)
	_, cold := newEvolveTestServer(t)

	weights := map[string]float64{"0": 8, "7": 4, "13": 2}
	weighted := MaximizeRequest{
		Dataset: "known", K: 3, Epsilon: 0.3,
		Weights: weights, WeightDefault: 0.25,
	}
	horizon := MaximizeRequest{
		Dataset: "known", K: 3, Epsilon: 0.3, MaxHops: 2,
		Force: []uint32{11}, Exclude: []uint32{4},
	}

	// Warm both constrained profiles pre-update.
	for _, req := range []MaximizeRequest{weighted, horizon} {
		if status, body := postJSON(t, warm.URL+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("warm-up: %d %s", status, body)
		}
	}

	updates := edgeOnlyUpdates()
	applyUpdates(t, warm.URL, updates)
	applyUpdates(t, cold.URL, updates)

	for name, req := range map[string]MaximizeRequest{"weighted": weighted, "horizon": horizon} {
		var w, c MaximizeResponse
		if status, body := postJSON(t, warm.URL+"/v1/maximize", req, &w); status != http.StatusOK {
			t.Fatalf("%s warm: %d %s", name, status, body)
		}
		if status, body := postJSON(t, cold.URL+"/v1/maximize", req, &c); status != http.StatusOK {
			t.Fatalf("%s cold: %d %s", name, status, body)
		}
		if got, want := maximizeEssence(w), maximizeEssence(c); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s warm/cold diverged:\nwarm %+v\ncold %+v", name, got, want)
		}
		if w.GraphVersion != 2 || c.GraphVersion != 2 {
			t.Fatalf("%s versions: warm %d cold %d", name, w.GraphVersion, c.GraphVersion)
		}
		if w.RRSetsRepaired == 0 {
			t.Fatalf("%s warm query repaired nothing: %+v", name, w)
		}
		if w.RRSetsReused == 0 {
			t.Fatalf("%s warm query reused nothing (collection was dropped?): %+v", name, w)
		}
	}
}
