package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/diskrr"
	"repro/internal/fault"
	"repro/internal/graph"
)

// newSpillTestServer builds a server whose rr-store holds exactly one
// resident collection and demotes evictions into dir — every change of
// (ε, profile) key round-trips through the spill tier.
func newSpillTestServer(t testing.TB, dir string, diskBudget int64) (*Server, string) {
	t.Helper()
	srv, err := New(Config{
		Datasets:        []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
		CacheSize:       8,
		RRCollections:   1,
		RequestTimeout:  time.Minute,
		Workers:         2,
		Seed:            1,
		SpillDir:        dir,
		DiskBudgetBytes: diskBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

// spillFiles lists the rrspill-* files currently in dir.
func spillFiles(t testing.TB, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "rrspill-") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestSpillTierDeterminism is the tentpole acceptance test: a server
// whose collections bounce through the spill tier (capacity 1, every
// key change demotes the previous key and promotes its spill on
// return) answers every query — including across a /v1/update, where
// the promoted collection is behind the snapshot and must repair —
// byte-identically to an identically-seeded server that never evicts.
func TestSpillTierDeterminism(t *testing.T) {
	dir := t.TempDir()
	spill, spillURL := newSpillTestServer(t, dir, 0)

	noEvict, err := New(Config{
		Datasets:       []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
		CacheSize:      8,
		RRCollections:  64,
		RequestTimeout: time.Minute,
		Workers:        2,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := httptest.NewServer(noEvict)
	defer ref.Close()

	queries := []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.3},
		{Dataset: "ba", K: 2, Epsilon: 0.25}, // demotes eps=0.3
		{Dataset: "ba", K: 3, Epsilon: 0.3},  // demotes eps=0.25, promotes + extends eps=0.3
	}
	update := UpdateRequest{Dataset: "ba", Insert: []UpdateEdge{{From: 3, To: 9}, {From: 5, To: 11}}}
	postUpdate := []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.25}, // promotes a stale spill, repairs to the new version
		{Dataset: "ba", K: 4, Epsilon: 0.3},  // promote + repair + extend
	}

	run := func(url string, req MaximizeRequest) MaximizeResponse {
		t.Helper()
		var resp MaximizeResponse
		if status, body := postJSON(t, url+"/v1/maximize", req, &resp); status != http.StatusOK {
			t.Fatalf("maximize %+v: %d %s", req, status, body)
		}
		return resp
	}
	check := func(i int, req MaximizeRequest, a, b MaximizeResponse) {
		t.Helper()
		if fmt.Sprint(a.Seeds) != fmt.Sprint(b.Seeds) || a.Theta != b.Theta ||
			a.SpreadEstimate != b.SpreadEstimate || a.GraphVersion != b.GraphVersion {
			t.Fatalf("query %d (%+v) diverged:\nspill:    seeds %v theta %d spread %v v%d\nno-evict: seeds %v theta %d spread %v v%d",
				i, req, a.Seeds, a.Theta, a.SpreadEstimate, a.GraphVersion,
				b.Seeds, b.Theta, b.SpreadEstimate, b.GraphVersion)
		}
	}

	for i, req := range queries {
		check(i, req, run(spillURL, req), run(ref.URL, req))
	}
	for _, url := range []string{spillURL, ref.URL} {
		if status, body := postJSON(t, url+"/v1/update", update, nil); status != http.StatusOK {
			t.Fatalf("update: %d %s", status, body)
		}
	}
	for i, req := range postUpdate {
		check(len(queries)+i, req, run(spillURL, req), run(ref.URL, req))
	}

	st := spill.rr.stats()
	if st.Demotions < 2 || st.Promotions < 2 {
		t.Fatalf("traffic never exercised the spill tier: %+v", st)
	}
	if st.SpillFailures != 0 || st.SpillDrops != 0 {
		t.Fatalf("spill tier dropped or failed silently: %+v", st)
	}
	// The spill ledger must match the files on disk exactly.
	var onDisk int64
	for _, name := range spillFiles(t, dir) {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	if got := spill.ledger.SumComponent("rr_spill"); got != onDisk {
		t.Fatalf("rr_spill ledger %d != on-disk bytes %d", got, onDisk)
	}
	if st.SpillBytes != onDisk || onDisk <= 0 {
		t.Fatalf("stats spill_bytes %d, on disk %d", st.SpillBytes, onDisk)
	}
}

// TestSpillTierCapacityTiers: under eviction churn the two-tier
// capacity view holds exactly — ram + disk == ledger total, the disk
// tier equals the spill files' ledger bytes, and /v1/stats and
// /v1/capacity report the same split.
func TestSpillTierCapacityTiers(t *testing.T) {
	dir := t.TempDir()
	srv, url := newSpillTestServer(t, dir, 0)
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.3},
		{Dataset: "ba", K: 2, Epsilon: 0.25},
		{Dataset: "ba", K: 2, Epsilon: 0.2},
		{Dataset: "ba", K: 3, Epsilon: 0.3},
	} {
		if status, body := postJSON(t, url+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("maximize: %d %s", status, body)
		}
	}

	var st statsSnapshot
	if status := getJSON(t, url+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	tiers := st.Capacity.Tiers
	ram, disk := tiers["ram"], tiers["disk"]
	if ram.TotalBytes+disk.TotalBytes != st.Capacity.TotalBytes {
		t.Fatalf("tiers do not partition the total: ram %d + disk %d != %d",
			ram.TotalBytes, disk.TotalBytes, st.Capacity.TotalBytes)
	}
	if want := srv.ledger.SumComponents(diskComponents...); disk.TotalBytes != want {
		t.Fatalf("disk tier %d != ledger disk components %d", disk.TotalBytes, want)
	}
	if disk.TotalBytes <= 0 {
		t.Fatal("no disk-tier bytes after spill churn")
	}
	if disk.TotalBytes != st.Capacity.Components["rr_spill"] {
		t.Fatalf("disk tier %d != rr_spill component %d (no WAL configured)",
			disk.TotalBytes, st.Capacity.Components["rr_spill"])
	}
	if st.RRCache.SpilledCollections <= 0 || st.RRCache.SpillBytes != disk.TotalBytes {
		t.Fatalf("rr stats disagree with the disk tier: %+v", st.RRCache)
	}

	var capResp struct {
		TotalBytes int64                   `json:"total_bytes"`
		Tiers      map[string]capacityTier `json:"tiers"`
	}
	if status := getJSON(t, url+"/v1/capacity", &capResp); status != http.StatusOK {
		t.Fatal("capacity")
	}
	cr, cd := capResp.Tiers["ram"], capResp.Tiers["disk"]
	if cr.TotalBytes+cd.TotalBytes != capResp.TotalBytes {
		t.Fatalf("/v1/capacity tiers do not partition the total: %+v", capResp)
	}
	if cd.TotalBytes != disk.TotalBytes {
		t.Fatalf("/v1/capacity disk tier %d != /v1/stats %d", cd.TotalBytes, disk.TotalBytes)
	}
}

// TestSpillTierDiskBudget: a disk budget smaller than any single spill
// file drops every demoted record immediately — files removed, ledger
// back to zero, drops counted.
func TestSpillTierDiskBudget(t *testing.T) {
	dir := t.TempDir()
	srv, url := newSpillTestServer(t, dir, 1)
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.3},
		{Dataset: "ba", K: 2, Epsilon: 0.25},
		{Dataset: "ba", K: 2, Epsilon: 0.2},
	} {
		if status, body := postJSON(t, url+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("maximize: %d %s", status, body)
		}
	}
	st := srv.rr.stats()
	if st.Demotions < 2 || st.SpillDrops < 2 {
		t.Fatalf("budget never dropped a spill: %+v", st)
	}
	if got := srv.ledger.SumComponent("rr_spill"); got != 0 {
		t.Fatalf("rr_spill ledger %d after dropping every record", got)
	}
	if left := spillFiles(t, dir); len(left) != 0 {
		t.Fatalf("dropped spills left files: %v", left)
	}
}

// TestSpillWriteFailureNoDebris: a demotion whose spill write fails
// injects no debris into the directory, charges nothing to the disk
// ledger, counts a spill failure, and the next query on the key
// resamples cold with the right answer (the pre-spill eviction
// behavior).
func TestSpillWriteFailureNoDebris(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	srv, url := newSpillTestServer(t, dir, 0)

	var first MaximizeResponse
	if status, body := postJSON(t, url+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3}, &first); status != http.StatusOK {
		t.Fatalf("maximize: %d %s", status, body)
	}
	fault.Set(diskrr.FaultSpillWrite, fault.FailOn(0, errors.New("injected: disk full")))
	// The key change evicts eps=0.3; its demotion hits the armed fault.
	if status, body := postJSON(t, url+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.25}, nil); status != http.StatusOK {
		t.Fatalf("maximize: %d %s", status, body)
	}
	fault.Reset()

	st := srv.rr.stats()
	if st.SpillFailures != 1 || st.Demotions != 0 {
		t.Fatalf("failed demotion not accounted as a failure: %+v", st)
	}
	if got := srv.ledger.SumComponent("rr_spill"); got != 0 {
		t.Fatalf("rr_spill ledger %d after a failed spill", got)
	}
	if left := spillFiles(t, dir); len(left) != 0 {
		t.Fatalf("failed spill left debris: %v", left)
	}
	// The key resamples cold — bit-identical by the keyed entry seed.
	var again MaximizeResponse
	if status, body := postJSON(t, url+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 3, Epsilon: 0.3}, &again); status != http.StatusOK {
		t.Fatalf("maximize after failed spill: %d %s", status, body)
	}
	if again.RRSetsReused != 0 || again.RRSetsSampled != again.Theta {
		t.Fatalf("query after a dropped spill must resample cold: %+v", again)
	}
}

// TestEvictMidExtendLedgerExact is the satellite-1 regression test: a
// query that finishes extending an entry evicted mid-flight must not
// re-charge the shared (dataset, rr_collections) account the eviction
// already released — the leak would sit in /v1/capacity forever. The
// fault point fires between the extension and the accounting block;
// the handler forces the eviction into exactly that window.
func TestEvictMidExtendLedgerExact(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	srv, url := newSpillTestServer(t, dir, 0)

	if status, body := postJSON(t, url+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.3}, nil); status != http.StatusOK {
		t.Fatalf("maximize: %d %s", status, body)
	}
	srv.rr.mu.Lock()
	victim := srv.rr.entries["ba|ic|eps=0.3"]
	srv.rr.mu.Unlock()
	if victim == nil {
		t.Fatal("warm entry missing")
	}

	demoted := make(chan struct{})
	armed := true
	fault.Set(faultRREvictMidExtend, func() error {
		if !armed {
			return nil
		}
		armed = false
		// Force the eviction from another goroutine — entry() will block
		// demoting the victim until this query releases the entry lock,
		// which is exactly the in-flight window the guard covers.
		go func() {
			defer close(demoted)
			srv.rr.entry(t.Context(), "ba|ic|eps=0.9")
		}()
		for {
			srv.rr.mu.Lock()
			evicted := victim.evicted
			srv.rr.mu.Unlock()
			if evicted {
				return nil
			}
			runtime.Gosched()
		}
	})
	// K:6 forces an extension of the warm entry, so the query is
	// mid-flight on the victim when the eviction lands.
	if status, body := postJSON(t, url+"/v1/maximize",
		MaximizeRequest{Dataset: "ba", K: 6, Epsilon: 0.3}, nil); status != http.StatusOK {
		t.Fatalf("maximize: %d %s", status, body)
	}
	<-demoted
	fault.Reset()

	// The eviction released the victim's bytes and the guard kept the
	// finishing query from re-charging them; the filler entry has never
	// run a query. Exactly zero resident rr bytes remain.
	if got := srv.ledger.SumComponent("rr_collections"); got != 0 {
		t.Fatalf("rr_collections ledger %d after evict-mid-extend, want exactly 0", got)
	}
	// The demotion still captured the extended collection for the next
	// query on the key.
	if st := srv.rr.stats(); st.Demotions != 1 {
		t.Fatalf("victim not demoted: %+v", st)
	}
}

// TestMmapDatasets: with -mmap-datasets the CSR arrays live in an
// unlinked memory mapping (no csrmmap files remain after load) and
// answers are bit-identical to a heap-resident server.
func TestMmapDatasets(t *testing.T) {
	if !graph.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	mmapped, err := New(Config{
		Datasets:       []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
		RequestTimeout: time.Minute,
		Workers:        2,
		Seed:           1,
		SpillDir:       dir,
		MmapDatasets:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mmapped)
	defer ts.Close()
	heapSrv, heapURL := newSpillTestServer(t, t.TempDir(), 0)
	_ = heapSrv

	req := MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3}
	var a, b MaximizeResponse
	if status, body := postJSON(t, ts.URL+"/v1/maximize", req, &a); status != http.StatusOK {
		t.Fatalf("mmap maximize: %d %s", status, body)
	}
	if status, body := postJSON(t, heapURL+"/v1/maximize", req, &b); status != http.StatusOK {
		t.Fatalf("heap maximize: %d %s", status, body)
	}
	if fmt.Sprint(a.Seeds) != fmt.Sprint(b.Seeds) || a.Theta != b.Theta || a.SpreadEstimate != b.SpreadEstimate {
		t.Fatalf("mmapped graph diverged: %+v vs %+v", a, b)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "csrmmap-") {
			t.Fatalf("mmap backing file %s not unlinked", e.Name())
		}
	}
}

// TestDatasetNameValidation is the satellite-2 regression test: names
// that would corrupt '|'-separated keys or directory layouts are
// rejected at registration with the typed 400, and the two
// key-extraction helpers agree on where the dataset field lives.
func TestDatasetNameValidation(t *testing.T) {
	for _, name := range []string{"", "a|b", "a/b", "|", "/"} {
		_, err := New(Config{Datasets: []DatasetSpec{{Name: name, Source: "ba:50:2", Seed: 1}}})
		if err == nil {
			t.Fatalf("name %q accepted", name)
		}
		if !errors.Is(err, errBadRequest) {
			t.Fatalf("name %q: error %v is not typed errBadRequest", name, err)
		}
		if statusOf(err) != http.StatusBadRequest {
			t.Fatalf("name %q: status %d, want 400", name, statusOf(err))
		}
	}
	if _, err := New(Config{Datasets: []DatasetSpec{{Name: "ok-name_2", Source: "ba:50:2", Seed: 1}}}); err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}

	for key, want := range map[string]string{
		"nethept|ic|eps=0.1":                "nethept",
		"nethept|ic|eps=0.1|profile=abc123": "nethept",
		"bare":                              "bare",
	} {
		if got := rrKeyDataset(key); got != want {
			t.Fatalf("rrKeyDataset(%q) = %q, want %q", key, got, want)
		}
	}
	for key, want := range map[string]string{
		"maximize|nethept|k=5|...": "nethept",
		"spread|er|seeds=1,2":      "er",
		"bare":                     "bare",
	} {
		if got := cacheKeyDataset(key); got != want {
			t.Fatalf("cacheKeyDataset(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestRRKeyHelpers pins the reuse-key shape rrKeyFor produces and the
// field extractors' inverses — the spill header staleness rule depends
// on rrKeyProfile reading back exactly what rrKeyFor embedded.
func TestRRKeyHelpers(t *testing.T) {
	plain := rrKeyFor("ba", "ic", 0.3, 0)
	if plain != "ba|ic|eps=0.3" {
		t.Fatalf("unconstrained key %q", plain)
	}
	profiled := rrKeyFor("ba", "lt", 0.25, 0xdeadbeef)
	if profiled != "ba|lt|eps=0.25|profile=deadbeef" {
		t.Fatalf("profiled key %q", profiled)
	}
	if got := rrKeyProfile(plain); got != 0 {
		t.Fatalf("rrKeyProfile(plain) = %#x", got)
	}
	if got := rrKeyProfile(profiled); got != 0xdeadbeef {
		t.Fatalf("rrKeyProfile(profiled) = %#x", got)
	}
	if got := rrKeyCost(profiled); got != "ba|lt" {
		t.Fatalf("rrKeyCost(profiled) = %q", got)
	}
	if got := rrKeyCost("bare"); got != "bare" {
		t.Fatalf("rrKeyCost(bare) = %q", got)
	}
}
