package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used result cache keyed by
// the full query tuple. It is safe for concurrent use; hit/miss/eviction
// counts feed /v1/stats.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key   string
	value any
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and promotes the key to most recent.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// put inserts or refreshes a key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
}

// cacheStats is the /v1/stats snapshot of the result cache.
type cacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *lruCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
