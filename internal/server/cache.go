package server

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/obs"
)

// lruCache is a fixed-capacity least-recently-used result cache keyed by
// the full query tuple. It is safe for concurrent use; hit/miss/eviction
// counts feed /v1/stats, and every entry's byte estimate is mirrored
// into the capacity ledger under (dataset, "result_cache") so the cache
// shows up in /v1/capacity next to the rr-store.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	ledger   *obs.Ledger

	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key   string
	value any
	// bytes is the entry's ledger-accounted footprint; mem the
	// (dataset, "result_cache") account it was added to. Kept on the
	// entry so refresh and eviction release exactly what was charged.
	bytes int64
	mem   *obs.Account
}

func newLRUCache(capacity int, ledger *obs.Ledger) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		ledger:   ledger,
	}
}

// cacheEntryOverhead approximates the fixed cost of one cached answer:
// the response struct, the map slot, and the list element. The ledger
// wants a stable, deterministic estimate — the same answer always
// charges the same bytes — not malloc-exact truth.
const cacheEntryOverhead = 256

// cachedBytes estimates one entry's footprint: fixed overhead plus the
// key string and the value's variable-size payload.
func cachedBytes(key string, value any) int64 {
	b := int64(cacheEntryOverhead + len(key))
	switch r := value.(type) {
	case MaximizeResponse:
		b += int64(cap(r.Seeds))*4 + int64(len(r.Tier)+len(r.TraceID))
	case SpreadResponse:
		b += int64(len(r.TraceID))
	}
	return b
}

// cacheKeyDataset extracts the dataset from a result-cache key
// ("maximize|<dataset>|..." / "spread|<dataset>|..." — see the
// handlers), the ledger dimension cached answers are attributed along.
func cacheKeyDataset(key string) string {
	parts := strings.SplitN(key, "|", 3)
	if len(parts) >= 2 {
		return parts[1]
	}
	return key
}

// get returns the cached value and promotes the key to most recent.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// put inserts or refreshes a key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		bytes := cachedBytes(key, value)
		// Release-then-charge, not one signed delta: a shrink-refresh's
		// negative delta could land on an account a concurrent reader
		// (stats, capacity) sums mid-update and read as a transient
		// negative component. Two same-signed operations keep every
		// intermediate reading non-negative; the mutex orders them
		// against other writers, not against lock-free readers.
		e.mem.Add(-e.bytes)
		e.mem.Add(bytes)
		e.value, e.bytes = value, bytes
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			victim := oldest.Value.(*lruEntry)
			victim.mem.Add(-victim.bytes)
			c.ll.Remove(oldest)
			delete(c.items, victim.key)
			c.evictions++
		}
	}
	e := &lruEntry{
		key:   key,
		value: value,
		bytes: cachedBytes(key, value),
		mem:   c.ledger.Account(cacheKeyDataset(key), "result_cache"),
	}
	e.mem.Add(e.bytes)
	c.items[key] = c.ll.PushFront(e)
}

// memoryTotal reports the cache's ledger-accounted bytes (the sum of
// every dataset's result_cache account).
func (c *lruCache) memoryTotal() int64 {
	return c.ledger.SumComponent("result_cache")
}

// cacheStats is the /v1/stats snapshot of the result cache.
type cacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// MemoryBytes is the ledger-accounted footprint of the live entries
	// (estimated, deterministic — see cachedBytes).
	MemoryBytes int64 `json:"memory_bytes"`
}

func (c *lruCache) stats() cacheStats {
	mem := c.memoryTotal()
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Size:        c.ll.Len(),
		Capacity:    c.capacity,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		MemoryBytes: mem,
	}
}
