package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// newParallelTestServer builds a server with an explicit batch
// parallelism, mirroring newTestServer's datasets.
func newParallelTestServer(t testing.TB, batchParallelism int) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.txt")
	content := "# tiny ring\n0 1\n1 2\n2 3\n3 4\n4 0\n0 2\n1 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Datasets: []DatasetSpec{
			{Name: "ba", Source: "ba:300:3", Seed: 7},
			{Name: "ring", Source: "file:" + path, Seed: 7},
		},
		CacheSize:        64,
		RequestTimeout:   time.Minute,
		Workers:          2,
		Seed:             1,
		BatchParallelism: batchParallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

// TestBatchParallelMatchesSequential: a bounded-parallel batch returns
// exactly the answers a fully sequential batch (BatchParallelism=1)
// returns — reuse and concurrency can only skip work, never change a
// result. The batch mixes plain, constrained, weighted, cross-dataset,
// no-reuse, and failing items.
func TestBatchParallelMatchesSequential(t *testing.T) {
	queries := []MaximizeRequest{
		{Dataset: "ba", K: 4, Epsilon: 0.3},
		{Dataset: "ba", K: 2, Epsilon: 0.3, Exclude: []uint32{0, 1}},
		{Dataset: "ba", K: 6, Epsilon: 0.3},
		{Dataset: "ba", K: 3, Epsilon: 0.3, Weights: map[string]float64{"1": 2, "2": 1, "3": 4}, MaxHops: 3},
		{Dataset: "ring", K: 2, Epsilon: 0.3},
		{Dataset: "missing", K: 1},
		{Dataset: "ba", K: 3, Epsilon: 0.3, NoReuse: true},
		{Dataset: "ba", K: 2, Epsilon: 0.25},
	}
	run := func(parallelism int) BatchResponse {
		_, url := newParallelTestServer(t, parallelism)
		var resp BatchResponse
		if status, body := postJSON(t, url+"/v1/query/batch", BatchRequest{Queries: queries}, &resp); status != http.StatusOK {
			t.Fatalf("parallelism=%d: %d %s", parallelism, status, body)
		}
		return resp
	}
	want := run(1)
	got := run(8)
	if len(got.Results) != len(want.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if (w.Result == nil) != (g.Result == nil) {
			t.Fatalf("item %d: success/failure differs: %+v vs %+v", i, g, w)
		}
		if w.Result == nil {
			if g.Error == "" {
				t.Fatalf("item %d: error text missing", i)
			}
			continue
		}
		if !reflect.DeepEqual(g.Result.Seeds, w.Result.Seeds) {
			t.Fatalf("item %d: seeds %v != %v", i, g.Result.Seeds, w.Result.Seeds)
		}
		if g.Result.Theta != w.Result.Theta ||
			g.Result.SpreadEstimate != w.Result.SpreadEstimate ||
			g.Result.KptPlus != w.Result.KptPlus {
			t.Fatalf("item %d drifted: %+v vs %+v", i, g.Result, w.Result)
		}
	}
}

// TestBatchParallelStatsCounters: a parallel batch feeds the new
// /v1/stats parallel section — sharing groups, warm-up and parallel item
// splits, and the (process-wide) scratch pools.
func TestBatchParallelStatsCounters(t *testing.T) {
	_, url := newParallelTestServer(t, 4)
	req := BatchRequest{Queries: []MaximizeRequest{
		{Dataset: "ba", K: 3, Epsilon: 0.3},
		{Dataset: "ba", K: 5, Epsilon: 0.3},
		{Dataset: "ba", K: 2, Epsilon: 0.3},
		{Dataset: "ring", K: 2, Epsilon: 0.3},
	}}
	var resp BatchResponse
	if status, body := postJSON(t, url+"/v1/query/batch", req, &resp); status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var st statsSnapshot
	if status := getJSON(t, url+"/v1/stats", &st); status != http.StatusOK {
		t.Fatal("stats")
	}
	p := st.Parallel
	if p.BatchParallelism != 4 {
		t.Fatalf("batch_parallelism = %d, want 4", p.BatchParallelism)
	}
	// Two sharing groups: the three ba items (one warm-up + two parallel)
	// and the singleton ring item (parallel).
	if p.BatchGroups != 2 {
		t.Fatalf("batch_groups = %d, want 2 (%+v)", p.BatchGroups, p)
	}
	if p.BatchWarmupItems != 1 || p.BatchParallelItems != 3 {
		t.Fatalf("warmup/parallel = %d/%d, want 1/3 (%+v)", p.BatchWarmupItems, p.BatchParallelItems, p)
	}
	// Pool counters are process-wide and monotone; after a batch at least
	// some sampler and selection scratch traffic must be visible.
	if p.SamplerPoolHits+p.SamplerPoolMisses == 0 {
		t.Fatalf("sampler pool counters empty: %+v", p)
	}
	if p.SelectScratchHits+p.SelectScratchMisses == 0 {
		t.Fatalf("selection scratch counters empty: %+v", p)
	}
}

// TestRRStoreMemoryAccountingExact: after a mix of cold queries, warm
// extensions, and batch traffic over the zero-copy layout, the store's
// reported memory equals the recomputed sum over live entries — the
// Figure 12 accounting and the -rr-collections eviction threshold both
// depend on this staying exact.
func TestRRStoreMemoryAccountingExact(t *testing.T) {
	srv, url := newParallelTestServer(t, 4)
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 2, Epsilon: 0.3},
		{Dataset: "ba", K: 6, Epsilon: 0.3}, // extends the same entry
		{Dataset: "ba", K: 2, Epsilon: 0.25},
		{Dataset: "ring", K: 2, Epsilon: 0.3},
	} {
		if status, body := postJSON(t, url+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("maximize: %d %s", status, body)
		}
	}
	var resp BatchResponse
	batch := BatchRequest{Queries: []MaximizeRequest{
		{Dataset: "ba", K: 4, Epsilon: 0.3},
		{Dataset: "ba", K: 7, Epsilon: 0.3},
	}}
	if status, body := postJSON(t, url+"/v1/query/batch", batch, &resp); status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}

	srv.rr.mu.Lock()
	var recomputed int64
	for _, e := range srv.rr.entries {
		recomputed += e.col.MemoryBytes() + int64(cap(e.cumWidth))*8
	}
	reported := srv.rr.memoryTotal()
	srv.rr.mu.Unlock()
	if reported != recomputed {
		t.Fatalf("rr-store memory accounting drifted: reported %d, recomputed %d", reported, recomputed)
	}
	if reported <= 0 {
		t.Fatalf("no rr memory accounted: %d", reported)
	}
}
