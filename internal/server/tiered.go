package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tiered"
	"repro/internal/tim"
)

// tieredRuntime glues the latency-tiered subsystem (internal/tiered) into
// the server: the admission gate, the tier planner with its per-dataset
// cost models, the per-(dataset, model) fast-tier scorers, and the
// per-tier latency rings for /v1/stats.
type tieredRuntime struct {
	gate    *tiered.Gate
	planner *tiered.Planner

	mu      sync.Mutex
	scorers map[string]*scorerEntry

	risRing  tiered.LatencyRing
	fastRing tiered.LatencyRing

	// escalations counts budgeted queries the planner routed to RIS (at
	// the requested ε or a coarser ladder rung). shedInfeasible counts
	// admitted queries shed because no tier fit their budget and
	// confidence floor — a different refusal than the gate's at-capacity
	// shed. deadlineFallbacks counts RIS attempts whose budget expired
	// mid-run and were answered by the fast tier instead (their sampled
	// prefix stays in the rr-store — the budget ratchet). All are registry
	// instruments: /metrics and /v1/stats read the same cells.
	escalations       *obs.Counter
	shedInfeasible    *obs.Counter
	deadlineFallbacks *obs.Counter

	scorerBuilds    *obs.Counter
	scorerRefreshes *obs.Counter
	scorerRescored  *obs.Counter
}

// scorerEntry is one cached fast-tier scorer, versioned like the rr-store
// entries: version is the graph version the scores reflect.
type scorerEntry struct {
	mu      sync.Mutex
	scorer  *tiered.Scorer
	version uint64
}

func newTieredRuntime(maxInFlight int, ladder []float64, reg *obs.Registry) *tieredRuntime {
	return &tieredRuntime{
		gate:    tiered.NewGate(maxInFlight),
		planner: tiered.NewPlanner(ladder),
		scorers: make(map[string]*scorerEntry),

		escalations:       reg.Counter("timserver_escalated_total", "Budgeted queries the planner routed to the RIS tier."),
		shedInfeasible:    reg.Counter("timserver_shed_infeasible_total", "Admitted queries shed because no tier fit their budget and confidence floor."),
		deadlineFallbacks: reg.Counter("timserver_deadline_fallbacks_total", "RIS attempts whose budget expired mid-run, answered by the fast tier."),
		scorerBuilds:      reg.Counter("timserver_scorer_builds_total", "Fast-tier scorer full builds."),
		scorerRefreshes:   reg.Counter("timserver_scorer_refreshes_total", "Fast-tier scorer incremental refreshes."),
		scorerRescored:    reg.Counter("timserver_scorer_nodes_rescored_total", "Nodes rescored by fast-tier scorer refreshes."),
	}
}

// entry returns (creating if needed) the scorer slot for key.
func (t *tieredRuntime) entry(key string) *scorerEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.scorers[key]
	if e == nil {
		e = &scorerEntry{}
		t.scorers[key] = e
	}
	return e
}

// peek returns the scorer slot for key only if it already exists — the
// update path refreshes scorers that queries have built, it never builds
// scorers for datasets no fast-tier query ever touched.
func (t *tieredRuntime) peek(key string) *scorerEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.scorers[key]
}

// scorerFor brings e to the given snapshot and returns the scorer to
// select from plus how many nodes an incremental refresh rescored. Caller
// holds e.mu. The rare query whose snapshot raced behind an update that
// already advanced the shared scorer gets a private scorer for its own
// snapshot (mirroring the rr-store's stale-bypass rule).
func (t *tieredRuntime) scorerFor(e *scorerEntry, evg *evolve.Graph, g *graph.Graph, version uint64) (*tiered.Scorer, int) {
	switch {
	case e.scorer == nil:
		e.scorer = tiered.NewScorer(g)
		e.version = version
		t.scorerBuilds.Inc()
	case e.version == version:
		// Warm and current: the common case, nothing to do.
	case e.version < version:
		if delta, ok := evg.DeltaBetween(e.version, version); ok {
			n := e.scorer.Refresh(g, delta)
			e.version = version
			t.scorerRefreshes.Inc()
			t.scorerRescored.Add(float64(n))
			return e.scorer, n
		}
		// Delta log exhausted: rebuild cold, like an rr-store cold reset.
		e.scorer = tiered.NewScorer(g)
		e.version = version
		t.scorerBuilds.Inc()
	default:
		return tiered.NewScorer(g), 0
	}
	return e.scorer, 0
}

// fastSelect answers one fast-tier selection for key against evg's
// current snapshot, building or refreshing the cached scorer as needed.
func (t *tieredRuntime) fastSelect(key string, evg *evolve.Graph, k int, force, exclude []uint32) ([]uint32, float64, uint64) {
	g, version := evg.Snapshot()
	e := t.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	sc, _ := t.scorerFor(e, evg, g, version)
	seeds, est := sc.Select(k, force, exclude)
	return seeds, est, version
}

// scorerBytes sums the fast-tier scorers' own footprint for one dataset
// (scorer keys are "dataset|model") — the capacity ledger's
// tiered_scorers leaf. The graph snapshots the scorers point at are
// owned, and accounted, by the evolve layer (csr_snapshots).
func (t *tieredRuntime) scorerBytes(dataset string) int64 {
	prefix := dataset + "|"
	t.mu.Lock()
	entries := make([]*scorerEntry, 0, len(supportedKinds))
	for key, e := range t.scorers {
		if strings.HasPrefix(key, prefix) {
			entries = append(entries, e)
		}
	}
	t.mu.Unlock()
	var total int64
	for _, e := range entries {
		e.mu.Lock()
		total += e.scorer.MemoryBytes()
		e.mu.Unlock()
	}
	return total
}

// refreshAfterUpdate eagerly advances every warm scorer of the dataset to
// the post-update version, so the first fast-tier query after an update
// pays nothing. Scorers never built stay unbuilt. Returns the total nodes
// rescored across model variants.
func (t *tieredRuntime) refreshAfterUpdate(reg *registry, dataset string) int {
	total := 0
	for _, kind := range supportedKinds {
		key := dataset + "|" + strings.ToLower(kind.String())
		e := t.peek(key)
		if e == nil {
			continue
		}
		evg, err := reg.get(dataset, kind)
		if err != nil {
			continue
		}
		g, version := evg.Snapshot()
		e.mu.Lock()
		_, n := t.scorerFor(e, evg, g, version)
		e.mu.Unlock()
		total += n
	}
	return total
}

// shedError is a load-shedding refusal; writeError maps it to 503 with a
// Retry-After header.
type shedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return "server: overloaded: " + e.reason }

// defaultRetryAfter is the Retry-After hint on shed responses. Sheds are
// instantaneous capacity signals, so the right retry horizon is "soon":
// one second is the smallest value the header's integer form can carry.
const defaultRetryAfter = time.Second

// msSince is elapsed wall-clock in (fractional) milliseconds.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// answer routes one maximize-shaped query (from POST /v1/maximize or a
// batch item) through the tiered subsystem:
//
//   - Unbudgeted queries (budget_ms absent) wait for admission and run
//     the full RIS pipeline at the requested ε — exactly the pre-tiered
//     behavior, plus the in-flight bound.
//   - Budgeted queries are admitted non-blocking (a full server answers
//     503 + Retry-After immediately: their budget would expire in the
//     queue), then served by the cheapest tier the planner predicts fits:
//     RIS at the finest affordable ladder rung, else the heuristic fast
//     tier, else a shed. An RIS attempt whose budget still expires
//     mid-run falls back to the fast tier when the query accepts
//     heuristic answers; its sampled prefix stays in the rr-store.
//
// min_confidence caps the admissible ε (and, when positive, forbids the
// guarantee-free fast tier); it applies to unbudgeted queries too, by
// tightening the effective ε.
func (s *Server) answer(base context.Context, req MaximizeRequest) (MaximizeResponse, bool, error) {
	if req.BudgetMs < 0 || math.IsNaN(req.BudgetMs) {
		return MaximizeResponse{}, false, fmt.Errorf("%w: budget_ms must be non-negative", errBadRequest)
	}
	if req.MinConfidence < 0 || math.IsNaN(req.MinConfidence) {
		return MaximizeResponse{}, false, fmt.Errorf("%w: min_confidence must be non-negative", errBadRequest)
	}
	if req.Epsilon == 0 {
		req.Epsilon = 0.1
	}
	if req.Ell == 0 {
		req.Ell = 1
	}
	if req.MinConfidence > 0 {
		epsMax := tim.EpsilonForConfidence(req.MinConfidence)
		if epsMax <= 0 {
			return MaximizeResponse{}, false, fmt.Errorf(
				"%w: min_confidence %g is unattainable (the guarantee tops out below 1-1/e ≈ %.4f)",
				errBadRequest, req.MinConfidence, 1-1/math.E)
		}
		if req.Epsilon > epsMax {
			req.Epsilon = epsMax
		}
	}

	ctx, cancel := context.WithTimeout(base, s.cfg.RequestTimeout)
	defer cancel()

	if req.BudgetMs == 0 {
		// Unbudgeted: wait for a slot (a client hang-up or the request
		// timeout aborts the wait), then serve RIS at the requested ε.
		gateSpan := obs.StartSpan(ctx, "gate.wait").Attr("budgeted", false)
		if err := s.tiered.gate.Acquire(ctx); err != nil {
			gateSpan.Attr("aborted", true).End()
			return MaximizeResponse{}, false, err
		}
		gateSpan.End()
		defer s.tiered.gate.Release()
		start := time.Now()
		resp, hit, err := s.doMaximize(ctx, req)
		if err == nil {
			ms := msSince(start)
			s.tiered.risRing.Observe(ms)
			s.obs.tierHist.With("ris").Observe(ms)
		}
		return resp, hit, err
	}

	gateSpan := obs.StartSpan(ctx, "gate.wait").Attr("budgeted", true)
	if !s.tiered.gate.TryAcquire() {
		gateSpan.Attr("shed", true).End()
		return MaximizeResponse{}, false, &shedError{reason: "at capacity", retryAfter: defaultRetryAfter}
	}
	gateSpan.End()
	defer s.tiered.gate.Release()

	// Resolve what the planner needs; doMaximize re-resolves the same
	// registry entry, which is a map lookup, not a rebuild.
	model, modelName, err := parseModel(req.Model)
	if err != nil {
		return MaximizeResponse{}, false, err
	}
	evg, err := s.registry.get(req.Dataset, model.Kind())
	if err != nil {
		return MaximizeResponse{}, false, err
	}
	g, _ := evg.Snapshot()
	if req.K < 1 || req.K > g.N() {
		return MaximizeResponse{}, false, fmt.Errorf("%w: k=%d outside [1, %d]", tim.ErrBadOptions, req.K, g.N())
	}
	// The fast tier honors force/exclude; audiences, seeding budgets, and
	// horizon bounds need the RIS pipeline's constrained sampling.
	fastOK := req.Weights == nil && req.Costs == nil && req.Budget == 0 && req.MaxHops == 0
	costKey := req.Dataset + "|" + modelName
	// Promotion penalty: a rung whose collection sits demoted in the
	// spill tier pays a predicted disk read before sampling, and the
	// plan must charge it against the budget instead of gambling. Only
	// sampling-unconstrained queries get the penalty — they use the
	// profile-0 key the spill records are filed under; a profiled key's
	// hash is not known until compilation, and a missed penalty costs
	// accuracy, never correctness.
	var promoteMs func(eps float64) float64
	if req.Weights == nil && req.MaxHops == 0 {
		promoteMs = func(eps float64) float64 {
			if b := s.rr.spilledBytes(rrKeyFor(req.Dataset, modelName, eps, 0)); b > 0 {
				return s.tiered.planner.PredictPromotionMs(costKey, b)
			}
			return 0
		}
	}
	planSpan := obs.StartSpan(ctx, "plan").Attr("budget_ms", req.BudgetMs)
	d := s.tiered.planner.PlanWithPromotion(costKey, g.N(), req.K, req.Epsilon, req.Ell, req.BudgetMs, req.MinConfidence, fastOK, promoteMs)
	planSpan.Attr("tier", d.Tier.String()).
		Attr("epsilon", d.Epsilon).
		Attr("predicted_ms", d.PredictedMs).
		End()

	switch d.Tier {
	case tiered.TierShed:
		s.tiered.shedInfeasible.Inc()
		return MaximizeResponse{}, false, &shedError{
			reason:     fmt.Sprintf("no tier fits budget_ms=%g with min_confidence=%g", req.BudgetMs, req.MinConfidence),
			retryAfter: defaultRetryAfter,
		}
	case tiered.TierFast:
		return s.serveFast(ctx, req, costKey, evg)
	}

	// TierRIS at the planned rung, under the budget's own deadline.
	s.tiered.escalations.Inc()
	if m := requestMeta(ctx); m != nil {
		m.escalated.Store(true)
	}
	risReq := req
	risReq.Epsilon = d.Epsilon
	// Guard the float→Duration conversion: a budget past the request
	// timeout (or so large the conversion overflows) adds no deadline of
	// its own.
	budgetDur := time.Duration(req.BudgetMs * float64(time.Millisecond))
	if budgetDur <= 0 || budgetDur > s.cfg.RequestTimeout {
		budgetDur = s.cfg.RequestTimeout
	}
	budgetCtx, cancelBudget := context.WithTimeout(ctx, budgetDur)
	defer cancelBudget()
	start := time.Now()
	resp, hit, err := s.doMaximize(budgetCtx, risReq)
	if err == nil {
		ms := msSince(start)
		s.tiered.risRing.Observe(ms)
		s.obs.tierHist.With("ris").Observe(ms)
		return resp, hit, nil
	}
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil && fastOK && req.MinConfidence <= 0 {
		// The prediction was optimistic and the budget fired mid-run. The
		// flushed RR prefix stays in the store (partial-keep extension), so
		// the miss still ratchets the collection; answer heuristically.
		s.tiered.deadlineFallbacks.Inc()
		if m := requestMeta(ctx); m != nil {
			m.fellBack.Store(true)
		}
		return s.serveFast(ctx, req, costKey, evg)
	}
	return MaximizeResponse{}, false, err
}

// serveFast answers req from the fast tier and feeds the latency
// observations (ring + planner cost model).
func (s *Server) serveFast(ctx context.Context, req MaximizeRequest, costKey string, evg *evolve.Graph) (MaximizeResponse, bool, error) {
	span := obs.StartSpan(ctx, "fast.select").Attr("k", int64(req.K))
	start := time.Now()
	seeds, est, version := s.tiered.fastSelect(costKey, evg, req.K, req.Force, req.Exclude)
	ms := msSince(start)
	span.End()
	s.tiered.fastRing.Observe(ms)
	s.obs.tierHist.With("fast").Observe(ms)
	s.tiered.planner.ObserveFast(costKey, ms)
	return MaximizeResponse{
		Seeds:          seeds,
		SpreadEstimate: est,
		GraphVersion:   version,
		Tier:           tiered.TierFast.String(),
		// Epsilon and Confidence stay zero: heuristic answers carry no
		// approximation guarantee.
	}, false, nil
}

// tieredStats is the /v1/stats snapshot of the tiered subsystem.
type tieredStats struct {
	Gate      tiered.GateStats `json:"gate"`
	EpsLadder []float64        `json:"eps_ladder"`
	// RIS and Fast summarize per-tier latency: lifetime count/max, sliding
	// window p50/p99.
	RIS  tiered.LatencySnapshot `json:"ris"`
	Fast tiered.LatencySnapshot `json:"fast"`
	// Escalated counts budgeted queries routed to RIS; ShedInfeasible
	// admitted-but-unservable sheds (the gate's own Shed counter covers
	// at-capacity rejections); DeadlineFallbacks budget misses answered
	// heuristically.
	Escalated         int64 `json:"escalated"`
	ShedInfeasible    int64 `json:"shed_infeasible"`
	DeadlineFallbacks int64 `json:"deadline_fallbacks"`
	// Scorer maintenance counters: full builds, incremental refreshes,
	// and total nodes rescored by refreshes.
	ScorerBuilds        int64 `json:"scorer_builds"`
	ScorerRefreshes     int64 `json:"scorer_refreshes"`
	ScorerNodesRescored int64 `json:"scorer_nodes_rescored"`
}

func (t *tieredRuntime) stats() tieredStats {
	return tieredStats{
		Gate:                t.gate.Stats(),
		EpsLadder:           t.planner.Ladder(),
		RIS:                 t.risRing.Snapshot(),
		Fast:                t.fastRing.Snapshot(),
		Escalated:           t.escalations.Int(),
		ShedInfeasible:      t.shedInfeasible.Int(),
		DeadlineFallbacks:   t.deadlineFallbacks.Int(),
		ScorerBuilds:        t.scorerBuilds.Int(),
		ScorerRefreshes:     t.scorerRefreshes.Int(),
		ScorerNodesRescored: t.scorerRescored.Int(),
	}
}
