package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// doRequest sends one request with optional X-Request-ID and returns the
// response verbatim.
func doRequest(t testing.TB, method, url, requestID string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestMetricsExposition: after real traffic, GET /metrics serves strictly
// parseable Prometheus text whose counters agree exactly with /v1/stats —
// the two endpoints are views of one registry, not parallel bookkeeping.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)

	// Traffic covering the main shapes: cold maximize, cached repeat,
	// spread, and a budgeted (fast-tier) query.
	for _, req := range []MaximizeRequest{
		{Dataset: "ba", K: 5, Epsilon: 0.3},
		{Dataset: "ba", K: 5, Epsilon: 0.3},
		{Dataset: "ba", K: 3, BudgetMs: 5},
	} {
		if status, body := postJSON(t, ts.URL+"/v1/maximize", req, nil); status != http.StatusOK {
			t.Fatalf("maximize: %d %s", status, body)
		}
	}
	if status, body := postJSON(t, ts.URL+"/v1/spread", SpreadRequest{Dataset: "ba", Seeds: []uint32{1, 2}}, nil); status != http.StatusOK {
		t.Fatalf("spread: %d %s", status, body)
	}

	resp, raw := doRequest(t, http.MethodGet, ts.URL+"/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParseExposition(string(raw))
	if err != nil {
		t.Fatalf("exposition does not parse strictly: %v", err)
	}
	if errs := obs.Lint(fams); len(errs) != 0 {
		t.Fatalf("exposition lint errors: %v", errs)
	}

	sample := func(family, label, value string) float64 {
		t.Helper()
		f := fams[family]
		if f == nil {
			t.Fatalf("family %q missing from /metrics", family)
		}
		for _, s := range f.Samples {
			if label == "" || s.Labels[label] == value {
				if strings.HasSuffix(s.Name, "_bucket") || strings.HasSuffix(s.Name, "_sum") {
					continue
				}
				return s.Value
			}
		}
		t.Fatalf("family %q has no sample with %s=%q", family, label, value)
		return 0
	}

	// The same numbers /v1/stats reports, read off the scrape.
	var st statsSnapshot
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatalf("/v1/stats status %d", status)
	}
	if got, want := sample("timserver_requests_total", "endpoint", "maximize"), float64(st.Endpoints["maximize"].Requests); got != want {
		t.Fatalf("requests_total{maximize} = %v, /v1/stats says %v", got, want)
	}
	if got, want := sample("timserver_result_cache_hits_total", "", ""), float64(st.ResultCache.Hits); got != want {
		t.Fatalf("result_cache_hits_total = %v, /v1/stats says %v", got, want)
	}
	if got, want := sample("timserver_rr_sets_sampled_total", "", ""), float64(st.RRCache.SetsSampled); got != want {
		t.Fatalf("rr_sets_sampled_total = %v, /v1/stats says %v", got, want)
	}
	if sample("timserver_gate_admitted_total", "", "") < 1 {
		t.Fatal("gate admitted no queries despite served traffic")
	}

	// Phase histograms were fed by the traced requests: the tier histogram
	// and per-span phase histogram both carry live counts.
	for _, h := range []string{"timserver_tier_latency_ms", "timserver_phase_duration_ms", "timserver_request_duration_ms"} {
		f := fams[h]
		if f == nil || f.Type != "histogram" {
			t.Fatalf("histogram family %q missing or mistyped: %+v", h, f)
		}
		count := 0.0
		for _, s := range f.Samples {
			if strings.HasSuffix(s.Name, "_count") {
				count += s.Value
			}
		}
		if count == 0 {
			t.Fatalf("histogram %q observed nothing", h)
		}
	}
}

// TestTracedAnswerByteIdentity: tracing must be observationally free —
// the same query on an identically configured server with tracing
// disabled returns a byte-identical answer (modulo the wall clock).
func TestTracedAnswerByteIdentity(t *testing.T) {
	answer := func(traceRing int) []byte {
		srv, err := New(Config{
			Datasets:       []DatasetSpec{{Name: "ba", Source: "ba:300:3", Seed: 7}},
			CacheSize:      8,
			RequestTimeout: time.Minute,
			Workers:        2,
			Seed:           1,
			TraceRing:      traceRing,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/maximize", "pinned-id-42",
			MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.3})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		// The wall clock is the one legitimate difference; zero it and
		// compare the rest byte for byte.
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		m["elapsed_ms"] = 0.0
		norm, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return norm
	}

	traced := answer(0)    // default ring: tracing on
	untraced := answer(-1) // negative: tracing off
	if !bytes.Equal(traced, untraced) {
		t.Fatalf("traced and untraced answers diverge:\n  traced:   %s\n  untraced: %s", traced, untraced)
	}
}

// TestEscalatedTraceChain: a budgeted query escalated to a coarser ladder
// rung leaves a retained trace whose span chain shows the full path —
// gate wait, plan (with the rung ε as an attribute), sampling, selection.
func TestEscalatedTraceChain(t *testing.T) {
	srv, ts := newTieredTestServer(t, 0)

	// Same cost-pinning as TestSLOEscalationBitIdentity: price ε=0.1 out
	// of any budget so the planner must escalate to rung 0.5.
	if status, body := postJSON(t, ts.URL+"/v1/maximize", MaximizeRequest{Dataset: "ba", K: 5}, nil); status != http.StatusOK {
		t.Fatalf("warm-up: %d %s", status, body)
	}
	n := 300
	const fakeEps01Ms = 100_000
	for i := 0; i < 20; i++ {
		srv.tiered.planner.ObserveRIS("ba|ic", n, 5, 0.1, 1, fakeEps01Ms)
	}
	cost := func(eps float64) float64 {
		return fakeEps01Ms * stats.Lambda(n, 5, eps, 1) / stats.Lambda(n, 5, 0.1, 1)
	}
	budget := (cost(0.5)/0.9 + cost(0.3)*0.9) / 2

	const reqID = "escalated-chain-1"
	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/maximize", reqID,
		MaximizeRequest{Dataset: "ba", K: 5, Epsilon: 0.1, BudgetMs: budget})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted: %d %s", resp.StatusCode, raw)
	}
	var ans MaximizeResponse
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Tier != "ris" || ans.Epsilon != 0.5 {
		t.Fatalf("expected escalation to rung 0.5, got tier=%q eps=%g", ans.Tier, ans.Epsilon)
	}
	if ans.TraceID != reqID {
		t.Fatalf("trace_id = %q, want the supplied request id %q", ans.TraceID, reqID)
	}

	tresp, traw := doRequest(t, http.MethodGet, ts.URL+"/v1/trace/"+reqID, "", nil)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/%s: %d %s", reqID, tresp.StatusCode, traw)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(traw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != reqID {
		t.Fatalf("snapshot id %q", snap.ID)
	}

	index := map[string]int{}
	var planAttrs map[string]any
	for i, sp := range snap.Spans {
		if _, seen := index[sp.Name]; !seen {
			index[sp.Name] = i
		}
		if sp.Name == "plan" {
			planAttrs = sp.Attrs
		}
	}
	for _, want := range []string{"gate.wait", "plan", "rr.store", "rr.extend", "select"} {
		if _, ok := index[want]; !ok {
			t.Fatalf("span %q missing from chain %v", want, spanNames(snap))
		}
	}
	// Spans land in completion order: the gate releases before planning,
	// the plan completes before any sampling, and selection finishes after
	// sampling started. (rr.store closes via defer, after its inner spans.)
	if !(index["gate.wait"] < index["plan"] && index["plan"] < index["rr.extend"] && index["rr.extend"] < index["select"]) {
		t.Fatalf("span chain out of order: %v", spanNames(snap))
	}
	if eps, _ := planAttrs["epsilon"].(float64); eps != 0.5 {
		t.Fatalf("plan span epsilon attr = %v, want the escalated rung 0.5 (attrs %v)", planAttrs["epsilon"], planAttrs)
	}
	if tier, _ := planAttrs["tier"].(string); tier != "ris" {
		t.Fatalf("plan span tier attr = %v", planAttrs["tier"])
	}

	// The slow-trace listing surfaces the same trace.
	sresp, sraw := doRequest(t, http.MethodGet, ts.URL+"/v1/trace/slow?n=5", "", nil)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/slow: %d %s", sresp.StatusCode, sraw)
	}
	var slow struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(sraw, &slow); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range slow.Traces {
		if tr.ID == reqID {
			found = true
		}
	}
	if !found {
		t.Fatalf("escalated trace absent from /v1/trace/slow (%d traces)", len(slow.Traces))
	}
}

func spanNames(snap obs.TraceSnapshot) []string {
	names := make([]string, len(snap.Spans))
	for i, sp := range snap.Spans {
		names[i] = sp.Name
	}
	return names
}

// TestRequestIDEcho: every /v1/* endpoint echoes a supplied X-Request-ID
// and generates one when absent — including non-compute introspection
// endpoints and error responses.
func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t)

	resp, _ := doRequest(t, http.MethodGet, ts.URL+"/v1/stats", "client-id-7", nil)
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-7" {
		t.Fatalf("stats echoed %q", got)
	}

	resp, raw := doRequest(t, http.MethodPost, ts.URL+"/v1/maximize", "",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.5})
	gen := resp.Header.Get("X-Request-ID")
	if len(gen) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", gen)
	}
	var ans MaximizeResponse
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.TraceID != gen {
		t.Fatalf("trace_id %q != X-Request-ID %q", ans.TraceID, gen)
	}

	// Error responses still identify themselves.
	resp, _ = doRequest(t, http.MethodPost, ts.URL+"/v1/maximize", "bad-req-1",
		MaximizeRequest{Dataset: "nope", K: 2})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unknown dataset answered OK")
	}
	if got := resp.Header.Get("X-Request-ID"); got != "bad-req-1" {
		t.Fatalf("error response echoed %q", got)
	}

	// A second generated id differs from the first (keyed stream, not a
	// constant), and two servers salt differently.
	resp2, _ := doRequest(t, http.MethodPost, ts.URL+"/v1/maximize", "",
		MaximizeRequest{Dataset: "ba", K: 2, Epsilon: 0.5})
	if gen2 := resp2.Header.Get("X-Request-ID"); gen2 == gen || len(gen2) != 16 {
		t.Fatalf("generated ids %q then %q", gen, gen2)
	}
}
