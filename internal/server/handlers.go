package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/diffusion"
	"repro/internal/evolve"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/spread"
	"repro/internal/stats"
	"repro/internal/tiered"
	"repro/internal/tim"
)

// MaximizeRequest is the body of POST /v1/maximize.
type MaximizeRequest struct {
	// Dataset names a registry entry (required).
	Dataset string `json:"dataset"`
	// Model is "ic" (default) or "lt".
	Model string `json:"model,omitempty"`
	// K is the seed-set size (required).
	K int `json:"k"`
	// Epsilon is the approximation slack ε (default 0.1).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Ell is the failure exponent ℓ (default 1).
	Ell float64 `json:"ell,omitempty"`
	// Algorithm is "tim+" (default) or "tim".
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives the query's randomness (default: the server seed).
	Seed *uint64 `json:"seed,omitempty"`
	// NoReuse opts this query out of the RR-collection reuse layer; it
	// then samples exactly as the one-shot CLI would.
	NoReuse bool `json:"no_reuse,omitempty"`

	// BudgetMs is the per-request latency budget in milliseconds (0 = no
	// budget). A budgeted query is served by the cheapest tier predicted
	// to fit: the RIS pipeline at the finest affordable ε ladder rung,
	// else the heuristic fast tier, else a 503 shed with Retry-After. The
	// response's tier/epsilon/confidence fields report what was achieved.
	BudgetMs float64 `json:"budget_ms,omitempty"`
	// MinConfidence is the minimum acceptable approximation factor
	// (1 − 1/e − ε); it must be below 1 − 1/e ≈ 0.632. It caps the ε any
	// tier may answer with and, when positive, forbids the guarantee-free
	// fast tier — a budgeted query that can afford neither is shed.
	MinConfidence float64 `json:"min_confidence,omitempty"`

	// Constrained-query fields (internal/query). All optional; absent
	// fields mean the paper's default scenario.

	// Weights is a sparse audience profile: node id (as a decimal string,
	// JSON object keys being strings) → audience weight. Unlisted nodes
	// get WeightDefault. RR roots are drawn ∝ weight and SpreadEstimate
	// becomes the weighted audience mass activated.
	Weights map[string]float64 `json:"weights,omitempty"`
	// WeightDefault is the audience weight of nodes absent from Weights
	// (default 0 — listing an audience excludes everyone else). Only
	// meaningful alongside Weights.
	WeightDefault float64 `json:"weight_default,omitempty"`
	// Costs is a sparse seeding-cost profile: node id → cost. Unlisted
	// nodes cost CostDefault. Requires Budget.
	Costs map[string]float64 `json:"costs,omitempty"`
	// CostDefault is the cost of nodes absent from Costs (default 1).
	CostDefault *float64 `json:"cost_default,omitempty"`
	// Budget, when positive, bounds the total cost of the picked seeds;
	// K stays a cap on their number.
	Budget float64 `json:"budget,omitempty"`
	// Force are warm-start seeds: returned first, their coverage
	// pre-subtracted, consuming neither K nor Budget.
	Force []uint32 `json:"force,omitempty"`
	// Exclude are nodes that must not be picked as seeds.
	Exclude []uint32 `json:"exclude,omitempty"`
	// MaxHops, when positive, bounds the diffusion horizon (deadline-
	// bounded influence, time-critical IM).
	MaxHops int `json:"max_hops,omitempty"`
}

// spec lowers the request's sparse constraint fields into a dense
// query.Spec against an n-node snapshot. A request without constraint
// fields returns nil (the default scenario).
func (req *MaximizeRequest) spec(n int) (*query.Spec, error) {
	if req.Weights == nil && req.WeightDefault != 0 {
		return nil, fmt.Errorf("%w: weight_default without weights", errBadRequest)
	}
	if req.Costs == nil && req.CostDefault != nil {
		return nil, fmt.Errorf("%w: cost_default without costs", errBadRequest)
	}
	s := &query.Spec{
		Budget:  req.Budget,
		Force:   req.Force,
		Exclude: req.Exclude,
		MaxHops: req.MaxHops,
	}
	var err error
	if req.Weights != nil {
		if s.Weights, err = densify(req.Weights, req.WeightDefault, n); err != nil {
			return nil, err
		}
	}
	if req.Costs != nil {
		def := 1.0
		if req.CostDefault != nil {
			def = *req.CostDefault
		}
		if s.Costs, err = densify(req.Costs, def, n); err != nil {
			return nil, err
		}
	}
	if s.Zero() {
		return nil, nil
	}
	return s, nil
}

// densify expands a sparse node→value JSON map into a dense length-n
// vector with the given default.
func densify(sparse map[string]float64, def float64, n int) ([]float64, error) {
	dense := make([]float64, n)
	for i := range dense {
		dense[i] = def
	}
	for key, v := range sparse {
		id, err := strconv.ParseUint(key, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: node key %q is not a node id", errBadRequest, key)
		}
		if id >= uint64(n) {
			return nil, fmt.Errorf("%w: node %d outside [0, %d)", errBadRequest, id, n)
		}
		dense[id] = v
	}
	return dense, nil
}

// specHash is the result-cache fragment for a constrained query: a
// canonical FNV-1a digest over every constraint field (the rr-store
// profile hash deliberately covers only the sampling-relevant subset, so
// it cannot serve here).
func specHash(s *query.Spec) uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mixFloats := func(xs []float64) {
		mix(uint64(len(xs)))
		for _, x := range xs {
			mix(math.Float64bits(x))
		}
	}
	mixFloats(s.Weights)
	mixFloats(s.Costs)
	mix(math.Float64bits(s.Budget))
	mix(uint64(len(s.Force)))
	for _, v := range s.Force {
		mix(uint64(v))
	}
	mix(uint64(len(s.Exclude)))
	for _, v := range s.Exclude {
		mix(uint64(v))
	}
	mix(uint64(s.MaxHops))
	return h
}

// MaximizeResponse is the body of a successful /v1/maximize reply.
type MaximizeResponse struct {
	Seeds   []uint32 `json:"seeds"`
	Theta   int64    `json:"theta"`
	KptStar float64  `json:"kpt_star"`
	KptPlus float64  `json:"kpt_plus"`
	// ThetaCapped reports that the server's MaxTheta bound truncated θ;
	// the (1 − 1/e − ε) guarantee does not hold for this response.
	ThetaCapped      bool    `json:"theta_capped,omitempty"`
	CoverageFraction float64 `json:"coverage_fraction"`
	SpreadEstimate   float64 `json:"spread_estimate"`
	// Cached reports an LRU result-cache hit (no computation at all).
	Cached bool `json:"cached"`
	// RRSetsReused and RRSetsSampled split node selection's θ between
	// sets served from the reuse layer and sets newly sampled.
	RRSetsReused  int64 `json:"rr_sets_reused"`
	RRSetsSampled int64 `json:"rr_sets_sampled"`
	// RRSetsRepaired counts cached sets re-derived by the incremental
	// maintainer because graph updates landed since the collection was
	// last used (see /v1/update).
	RRSetsRepaired int64 `json:"rr_sets_repaired,omitempty"`
	// GraphVersion is the dataset version (update batches applied) this
	// answer was computed at.
	GraphVersion uint64 `json:"graph_version"`
	// AudienceMass is the total audience weight W that SpreadEstimate is
	// scaled by; present only for weighted (targeted) queries.
	AudienceMass float64 `json:"audience_mass,omitempty"`
	// ForcedSeeds counts the warm-start seeds at the front of Seeds.
	ForcedSeeds int `json:"forced_seeds,omitempty"`
	// SeedCost is the budget consumed by the non-forced picks.
	SeedCost float64 `json:"seed_cost,omitempty"`
	// Tier reports which tier answered: "ris" (the full pipeline, with
	// its approximation guarantee) or "fast" (the heuristic scorer).
	Tier string `json:"tier,omitempty"`
	// Epsilon is the achieved ε — the requested ε for unbudgeted queries,
	// possibly a coarser ladder rung for budgeted ones. Zero for fast-tier
	// answers, which carry no guarantee.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Confidence is the guaranteed approximation factor 1 − 1/e − ε of
	// this answer (holding w.p. 1 − n^−ℓ); zero for fast-tier and
	// θ-capped answers.
	Confidence float64 `json:"confidence,omitempty"`
	// TraceID is the request id (X-Request-ID, generated when absent);
	// while the trace ring retains it, GET /v1/trace/{id} shows this
	// answer's span chain. Batch items report their batch's id.
	TraceID   string  `json:"trace_id,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// SpreadRequest is the body of POST /v1/spread.
type SpreadRequest struct {
	Dataset string `json:"dataset"`
	Model   string `json:"model,omitempty"`
	// Seeds is the seed set to evaluate (required, non-empty).
	Seeds []uint32 `json:"seeds"`
	// Samples is the Monte-Carlo cascade count (default 10000).
	Samples int `json:"samples,omitempty"`
	// Seed drives the simulation (default: the server seed).
	Seed *uint64 `json:"seed,omitempty"`
}

// SpreadResponse is the body of a successful /v1/spread reply.
type SpreadResponse struct {
	Spread       float64 `json:"spread"`
	Stderr       float64 `json:"stderr"`
	Samples      int     `json:"samples"`
	Cached       bool    `json:"cached"`
	GraphVersion uint64  `json:"graph_version"`
	TraceID      string  `json:"trace_id,omitempty"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

// UpdateEdge names one directed edge in an update request. Updates never
// carry weights: edge weights are owned by the dataset's per-model weight
// policy (weighted cascade for IC, keyed normalized for LT), which
// re-derives them at every head an update touches — that is what keeps a
// mutated warm graph identical to a cold load of the final topology.
type UpdateEdge struct {
	From uint32 `json:"from"`
	To   uint32 `json:"to"`
}

// UpdateRequest is the body of POST /v1/update: one atomic mutation batch
// against a registered dataset. Within the batch, nodes are added first,
// then deletions, then insertions — so deletions always refer to
// pre-batch edges and insertions may target brand-new nodes. Either every
// mutation applies or none does.
type UpdateRequest struct {
	// Dataset names a registry entry (required).
	Dataset string `json:"dataset"`
	// AddNodes grows the node-id space by this many isolated nodes.
	AddNodes int `json:"add_nodes,omitempty"`
	// Insert adds directed edges (endpoints may reference new nodes).
	Insert []UpdateEdge `json:"insert,omitempty"`
	// Delete removes one live occurrence of each named edge.
	Delete []UpdateEdge `json:"delete,omitempty"`
}

// UpdateResponse is the body of a successful /v1/update reply.
type UpdateResponse struct {
	Dataset string `json:"dataset"`
	// Version is the dataset's new version; queries answered at this
	// version report it as graph_version.
	Version    uint64 `json:"version"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Inserted   int    `json:"inserted"`
	Deleted    int    `json:"deleted"`
	AddedNodes int    `json:"added_nodes"`
	// ScorerNodesRescored counts fast-tier scorer entries rescored by the
	// eager post-update refresh (0 when no warm scorer exists).
	ScorerNodesRescored int     `json:"scorer_nodes_rescored,omitempty"`
	TraceID             string  `json:"trace_id,omitempty"`
	ElapsedMs           float64 `json:"elapsed_ms"`
}

// errorResponse is every non-2xx body. TraceID is set where the error
// path knows it (panic recovery); most errors leave it to the
// X-Request-ID response header.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// statusOf maps an error to its HTTP status: unknown datasets are 404,
// invalid options and mutations 400, timeouts 504, sheds 503,
// everything else 500 (nil is 200). The SLO recorder classifies
// outcomes with the same mapping writeError responds with.
func statusOf(err error) int {
	if err == nil {
		return http.StatusOK
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownDataset):
		status = http.StatusNotFound
	case errors.Is(err, tim.ErrBadOptions), errors.Is(err, errBadRequest),
		errors.Is(err, query.ErrBadSpec),
		errors.Is(err, evolve.ErrUnknownEdge), errors.Is(err, graph.ErrNodeRange),
		errors.Is(err, graph.ErrBadWeight):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	}
	var shed *shedError
	if errors.As(err, &shed) {
		status = http.StatusServiceUnavailable
	}
	return status
}

// writeError writes the error with the statusOf mapping (plus the
// Retry-After hint on sheds).
func writeError(w http.ResponseWriter, err error) {
	var shed *shedError
	if errors.As(err, &shed) {
		secs := int(math.Ceil(shed.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

var errBadRequest = errors.New("server: bad request")

func parseModel(name string) (diffusion.Model, string, error) {
	switch strings.ToLower(name) {
	case "", "ic":
		return diffusion.NewIC(), "ic", nil
	case "lt":
		return diffusion.NewLT(), "lt", nil
	}
	return diffusion.Model{}, "", fmt.Errorf("%w: unknown model %q (want ic or lt)", errBadRequest, name)
}

func parseAlgorithm(name string) (tim.Algorithm, string, error) {
	switch strings.ToLower(name) {
	case "", "tim+", "timplus":
		return tim.TIMPlus, "tim+", nil
	case "tim":
		return tim.TIM, "tim", nil
	}
	return 0, "", fmt.Errorf("%w: unknown algorithm %q (want tim+ or tim)", errBadRequest, name)
}

// queryCtx applies the configured request timeout on top of the client's
// own cancellation.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// faultMaximizePanic lets tests inject a handler panic to exercise the
// recovery middleware (see internal/fault; unarmed, one atomic load).
const faultMaximizePanic = "server/maximize-panic"

func (s *Server) handleMaximize(w http.ResponseWriter, r *http.Request) {
	if err := fault.Hit(faultMaximizePanic); err != nil {
		panic(err)
	}
	start := time.Now()
	var req MaximizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.observe("maximize", start, false, true)
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	resp, cacheHit, err := s.answerObserved(r.Context(), "maximize", req)
	if err != nil {
		s.observe("maximize", start, false, true)
		writeError(w, err)
		return
	}
	if m := requestMeta(r.Context()); m != nil {
		resp.TraceID = m.id
		m.dataset, m.tier, m.epsilon, m.cacheHit = req.Dataset, resp.Tier, resp.Epsilon, cacheHit
	}
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	s.observe("maximize", start, cacheHit, false)
	writeJSON(w, http.StatusOK, resp)
}

// doMaximize answers one maximize query (shared by POST /v1/maximize and
// each item of POST /v1/query/batch). The caller owns endpoint stats and
// ElapsedMs; doMaximize owns the per-dataset query-subsystem counters.
func (s *Server) doMaximize(base context.Context, req MaximizeRequest) (MaximizeResponse, bool, error) {
	model, modelName, err := parseModel(req.Model)
	if err != nil {
		return MaximizeResponse{}, false, err
	}
	variant, algoName, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return MaximizeResponse{}, false, err
	}
	if req.Epsilon == 0 {
		req.Epsilon = 0.1
	}
	if req.Ell == 0 {
		req.Ell = 1
	}
	seed := s.cfg.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}

	evg, err := s.registry.get(req.Dataset, model.Kind())
	if err != nil {
		return MaximizeResponse{}, false, err
	}
	// The snapshot is immutable: concurrent /v1/update calls bump the
	// dataset version but never touch a materialized snapshot, so the
	// whole query — estimation, refinement, node selection — runs against
	// one coherent graph. The version keys both caches: an update
	// invalidates every cached answer derived from the old topology.
	g, version := evg.Snapshot()

	// Lower the constraint fields. Validation happens here (not only
	// inside tim) because the rr-store key needs the compiled profile
	// hash, and because rejections are counted per dataset.
	spec, err := req.spec(g.N())
	if err != nil {
		s.bumpQuery(req.Dataset, func(q *datasetQueryInstruments) { q.rejections.Inc() })
		return MaximizeResponse{}, false, err
	}
	var compiled *query.Compiled
	key := fmt.Sprintf("maximize|%s|%s|%s|k=%d|eps=%g|ell=%g|seed=%d|reuse=%t|v=%d",
		req.Dataset, modelName, algoName, req.K, req.Epsilon, req.Ell, seed, !req.NoReuse, version)
	if spec != nil {
		if compiled, err = spec.Compile(g.N()); err != nil {
			s.bumpQuery(req.Dataset, func(q *datasetQueryInstruments) { q.rejections.Inc() })
			return MaximizeResponse{}, false, err
		}
		key += fmt.Sprintf("|q=%x", specHash(spec))
		s.bumpQuery(req.Dataset, func(q *datasetQueryInstruments) { q.constrained.Inc() })
	}
	if v, ok := s.results.get(key); ok {
		resp := v.(MaximizeResponse)
		resp.Cached = true
		return resp, true, nil
	}

	opts := tim.Options{
		K:        req.K,
		Epsilon:  req.Epsilon,
		Ell:      req.Ell,
		Variant:  variant,
		Workers:  s.cfg.Workers,
		Seed:     seed,
		ThetaCap: s.cfg.MaxTheta,
		// The handler already compiled the spec for the cache keys, so
		// hand tim the compiled form and skip a second O(n) lowering.
		CompiledQuery: compiled,
	}
	var src *rrSource
	if !req.NoReuse {
		// The reuse key deliberately excludes k, seed, and algorithm:
		// any i.i.d. RR sets serve any of them, so all such queries
		// share one growing collection per (dataset, model, ε). It also
		// excludes the graph version: the whole point of the maintainer
		// is that one collection follows the dataset across versions,
		// repaired in place. Constrained queries append their sampling
		// profile — audience weights and horizon re-key the collection,
		// while selection-only constraints share the unconstrained one.
		var cfg diffusion.SampleConfig
		var profileHash uint64
		if compiled != nil {
			cfg = compiled.Sample
			profileHash = compiled.Hash
		}
		rrKey := rrKeyFor(req.Dataset, modelName, req.Epsilon, profileHash)
		src = s.rr.source(rrKey, evg, version, cfg)
		opts.Source = src
	}
	ctx, cancel := context.WithTimeout(base, s.cfg.RequestTimeout)
	defer cancel()
	timStart := time.Now()
	res, err := tim.MaximizeContext(ctx, g, model, opts)
	if err != nil {
		return MaximizeResponse{}, false, err
	}
	// Every completed run — budgeted or not — calibrates the tier
	// planner's cost model for this (dataset, model). Cache hits returned
	// above must not: they would drive the prediction toward zero.
	s.tiered.planner.ObserveRIS(req.Dataset+"|"+modelName, g.N(), req.K, req.Epsilon, req.Ell, msSince(timStart))
	if src != nil && src.memory > 0 {
		// The measured collection footprint calibrates the byte model the
		// same way latency does: bytes/λ predicts every ladder rung
		// (/v1/capacity's predicted_rr_bytes).
		s.tiered.planner.ObserveRISBytes(req.Dataset+"|"+modelName, g.N(), req.K, req.Epsilon, req.Ell, src.memory)
	}
	resp := MaximizeResponse{
		Seeds:            res.Seeds,
		Theta:            res.Theta,
		KptStar:          res.KptStar,
		KptPlus:          res.KptPlus,
		ThetaCapped:      res.ThetaCapped,
		CoverageFraction: res.CoverageFraction,
		SpreadEstimate:   res.SpreadEstimate,
		GraphVersion:     version,
		ForcedSeeds:      res.ForcedSeeds,
		SeedCost:         res.SeedCost,
		Tier:             tiered.TierRIS.String(),
		Epsilon:          res.Epsilon,
		Confidence:       res.Confidence,
	}
	if compiled != nil && compiled.Weighted {
		resp.AudienceMass = res.Mass
	}
	if src != nil {
		resp.RRSetsReused = src.reused
		resp.RRSetsSampled = src.sampled
		resp.RRSetsRepaired = src.repaired
		if src.created && compiled != nil && compiled.Weighted {
			s.bumpQuery(req.Dataset, func(q *datasetQueryInstruments) { q.weighted.Inc() })
		}
	} else {
		resp.RRSetsSampled = res.Theta
	}
	cacheSpan := obs.StartSpan(base, "cache.write")
	s.results.put(key, resp)
	cacheSpan.End()
	return resp, false, nil
}

// BatchRequest is the body of POST /v1/query/batch: up to MaxBatchQueries
// maximize queries answered in request order. Batches amortize HTTP
// round-trips for scenario sweeps (one audience against many budgets,
// one topology against many horizons). Items execute bounded-parallel
// (Config.BatchParallelism): items that would share a warm RR collection
// form a group whose predicted-largest-θ member runs first — its
// extension warms the shared collection once — and the rest of the group
// then runs selection concurrently. Answers are identical to a
// sequential batch: reuse can only skip sampling, never change a result.
type BatchRequest struct {
	Queries []MaximizeRequest `json:"queries"`
}

// MaxBatchQueries bounds the queries in one batch request.
const MaxBatchQueries = 64

// BatchItem is one element of a batch response: exactly one of Result or
// Error is set. A failed item does not abort the batch.
type BatchItem struct {
	Result *MaximizeResponse `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// BatchResponse is the body of a successful /v1/query/batch reply; Results
// parallels the request's Queries.
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	TraceID   string      `json:"trace_id,omitempty"`
	ElapsedMs float64     `json:"elapsed_ms"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.observe("batch", start, false, true)
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if len(req.Queries) == 0 {
		s.observe("batch", start, false, true)
		writeError(w, fmt.Errorf("%w: empty batch", errBadRequest))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		s.observe("batch", start, false, true)
		writeError(w, fmt.Errorf("%w: batch of %d exceeds limit %d", errBadRequest, len(req.Queries), MaxBatchQueries))
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, len(req.Queries))}
	// Group items by the RR collection they would share; order preserves
	// first appearance so singleton batches behave exactly as before.
	groups := make(map[string][]int)
	var order []string
	for i := range req.Queries {
		key := batchGroupKey(i, &req.Queries[i])
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	s.obs.batchGroups.Add(float64(len(order)))

	meta := requestMeta(r.Context())
	runItem := func(i int) {
		q := req.Queries[i]
		s.bumpQuery(q.Dataset, func(st *datasetQueryInstruments) { st.batch.Inc() })
		itemStart := time.Now()
		item, _, err := s.answerObserved(r.Context(), "batch", q)
		if err != nil {
			resp.Results[i] = BatchItem{Error: err.Error()}
			return
		}
		if meta != nil {
			// Items share the batch's trace: one span chain for the whole
			// request, one id to look it up by.
			item.TraceID = meta.id
		}
		item.ElapsedMs = float64(time.Since(itemStart).Microseconds()) / 1000
		resp.Results[i] = BatchItem{Result: &item}
	}
	sem := make(chan struct{}, s.cfg.BatchParallelism)
	var wg sync.WaitGroup
	for _, key := range order {
		idxs := groups[key]
		// The warm-up pick: largest predicted θ goes first so one
		// extension covers the whole group. θ itself depends on KPT
		// (unknown until estimation runs), but within a group ε is fixed,
		// so the λ(k, ℓ) ordering is the right proxy — and a mispick only
		// costs a second, smaller extension, never a wrong answer.
		warm := idxs[0]
		for _, i := range idxs[1:] {
			if predictedThetaScore(&req.Queries[i]) > predictedThetaScore(&req.Queries[warm]) {
				warm = i
			}
		}
		rest := make([]int, 0, len(idxs)-1)
		for _, i := range idxs {
			if i != warm {
				rest = append(rest, i)
			}
		}
		if len(rest) > 0 {
			s.obs.batchWarmupItems.Inc()
			s.obs.batchParallelItems.Add(float64(len(rest)))
		} else {
			s.obs.batchParallelItems.Inc()
		}
		wg.Add(1)
		go func(warm int, rest []int) {
			defer wg.Done()
			sem <- struct{}{}
			runItem(warm)
			<-sem
			var iwg sync.WaitGroup
			for _, i := range rest {
				iwg.Add(1)
				go func(i int) {
					defer iwg.Done()
					sem <- struct{}{}
					runItem(i)
					<-sem
				}(i)
			}
			iwg.Wait()
		}(warm, rest)
	}
	wg.Wait()
	if meta != nil {
		resp.TraceID = meta.id
	}
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	s.observe("batch", start, false, false)
	writeJSON(w, http.StatusOK, resp)
}

// batchGroupKey assigns a batch item to its RR-collection sharing group.
// It mirrors the reuse-layer key — dataset, model, ε, sampling profile —
// computed from the raw request (no snapshot needed): selection-only
// constraints share the unconstrained profile exactly as the rr-store
// does, while audience weights and horizons split off their own groups.
// Grouping is a scheduling hint only; a too-fine grouping costs an extra
// concurrent extension serialized on the entry lock, never correctness.
func batchGroupKey(i int, q *MaximizeRequest) string {
	if q.NoReuse {
		// No shared collection to warm: a singleton group, free to run
		// fully parallel.
		return fmt.Sprintf("!%d", i)
	}
	eps := q.Epsilon
	if eps == 0 {
		eps = 0.1
	}
	model := strings.ToLower(q.Model)
	if model == "" {
		model = "ic"
	}
	key := fmt.Sprintf("%s|%s|eps=%g", q.Dataset, model, eps)
	if len(q.Weights) > 0 || q.MaxHops > 0 {
		ids := make([]string, 0, len(q.Weights))
		for id := range q.Weights {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		h := fnv64(key)
		for _, id := range ids {
			h ^= fnv64(fmt.Sprintf("%s=%g", id, q.Weights[id]))
			h *= 1099511628211
		}
		key += fmt.Sprintf("|w=%x|wd=%g|hops=%d", h, q.WeightDefault, q.MaxHops)
	}
	return key
}

// predictedThetaScore orders items within a sharing group by predicted
// θ = λ/KPT. KPT is a property of the dataset (identical within a group)
// and ε is part of the group key, so the λ(k, ℓ) trend is the whole
// signal; the node count only rescales it, so a fixed proxy n suffices.
func predictedThetaScore(q *MaximizeRequest) float64 {
	const nProxy = 1 << 20
	k := q.K
	if k < 1 {
		k = 1
	}
	if k > nProxy {
		k = nProxy
	}
	ell := q.Ell
	if ell == 0 {
		ell = 1
	}
	eps := q.Epsilon
	if eps == 0 {
		eps = 0.1
	}
	return stats.Lambda(nProxy, k, eps, ell)
}

func (s *Server) handleSpread(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SpreadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.observe("spread", start, false, true)
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	model, modelName, err := parseModel(req.Model)
	if err != nil {
		s.observe("spread", start, false, true)
		writeError(w, err)
		return
	}
	if len(req.Seeds) == 0 {
		s.observe("spread", start, false, true)
		writeError(w, fmt.Errorf("%w: seeds must be non-empty", errBadRequest))
		return
	}
	if req.Samples == 0 {
		req.Samples = 10000
	}
	if req.Samples < 0 {
		s.observe("spread", start, false, true)
		writeError(w, fmt.Errorf("%w: samples must be positive", errBadRequest))
		return
	}
	seed := s.cfg.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}

	evg, err := s.registry.get(req.Dataset, model.Kind())
	if err != nil {
		s.observe("spread", start, false, true)
		writeError(w, err)
		return
	}
	g, version := evg.Snapshot()

	meta := requestMeta(r.Context())
	traceID := ""
	if meta != nil {
		meta.dataset = req.Dataset
		traceID = meta.id
	}
	key := fmt.Sprintf("spread|%s|%s|seeds=%v|samples=%d|seed=%d|v=%d",
		req.Dataset, modelName, req.Seeds, req.Samples, seed, version)
	if v, ok := s.results.get(key); ok {
		resp := v.(SpreadResponse)
		resp.Cached = true
		resp.TraceID = traceID
		if meta != nil {
			meta.cacheHit = true
		}
		resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
		s.observe("spread", start, true, false)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	for _, v := range req.Seeds {
		if int(v) >= g.N() {
			s.observe("spread", start, false, true)
			writeError(w, fmt.Errorf("%w: seed node %d outside [0, %d)", errBadRequest, v, g.N()))
			return
		}
	}
	// Spread estimation has no context hook; bound it by splitting the
	// Monte-Carlo budget into slices and checking the deadline between
	// slices.
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	span := obs.StartSpan(ctx, "spread.estimate").Attr("samples", int64(req.Samples)).Attr("seeds", int64(len(req.Seeds)))
	mean, stderr, err := estimateSpreadCtx(ctx, g, model, req.Seeds, req.Samples, s.cfg.Workers, seed)
	span.End()
	if err != nil {
		s.observe("spread", start, false, true)
		writeError(w, err)
		return
	}
	resp := SpreadResponse{Spread: mean, Stderr: stderr, Samples: req.Samples, GraphVersion: version}
	s.results.put(key, resp)
	resp.TraceID = traceID
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	s.observe("spread", start, false, false)
	writeJSON(w, http.StatusOK, resp)
}

// estimateSpreadCtx runs spread.EstimateWithStderr in deadline-checked
// slices of at most sliceSamples cascades, pooling the per-slice moments
// with the parallel-variance formula. It follows the same population
// (n-divisor) variance convention as EstimateWithStderr itself, so the
// pooled stderr is what one full-budget call over the same per-slice
// cascades would report.
func estimateSpreadCtx(ctx context.Context, g *graph.Graph, model diffusion.Model, seeds []uint32, samples, workers int, seed uint64) (float64, float64, error) {
	const sliceSamples = 2000
	var mean, m2 float64 // running pooled mean and Σ(x−μ)²
	done := 0
	for done < samples {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		n := samples - done
		if n > sliceSamples {
			n = sliceSamples
		}
		sliceMean, sliceStderr := spread.EstimateWithStderr(g, model, seeds, spread.Options{
			Samples: n, Workers: workers, Seed: seed + uint64(done),
		})
		// EstimateWithStderr reports stderr = sqrt((Σ(x−μ)²/n)/n), so
		// the slice's Σ(x−μ)² is stderr²·n².
		sliceM2 := sliceStderr * sliceStderr * float64(n) * float64(n)
		delta := sliceMean - mean
		total := done + n
		mean += delta * float64(n) / float64(total)
		m2 += sliceM2 + delta*delta*float64(done)*float64(n)/float64(total)
		done = total
	}
	if done == 0 {
		return 0, 0, nil
	}
	variance := m2 / float64(done)
	return mean, math.Sqrt(variance / float64(done)), nil
}

// handleUpdate applies one mutation batch to a dataset. Warm RR
// collections are NOT touched here: they repair lazily, on the next query
// that observes the new version, so a burst of updates costs one repair,
// not one per batch.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.observe("update", start, false, true)
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if req.AddNodes < 0 {
		s.observe("update", start, false, true)
		writeError(w, fmt.Errorf("%w: add_nodes must be non-negative", errBadRequest))
		return
	}
	b := evolve.Batch{AddNodes: req.AddNodes}
	for _, e := range req.Insert {
		// Weight 0 is provisional: the dataset's weight policy rewrites
		// every touched head's in-weights during Apply.
		b.Inserts = append(b.Inserts, graph.Edge{From: e.From, To: e.To})
	}
	for _, e := range req.Delete {
		b.Deletes = append(b.Deletes, evolve.EdgeKey{From: e.From, To: e.To})
	}
	if b.Empty() {
		s.observe("update", start, false, true)
		writeError(w, fmt.Errorf("%w: empty update batch", errBadRequest))
		return
	}
	span := obs.StartSpan(r.Context(), "update.apply").
		Attr("inserts", int64(len(req.Insert))).Attr("deletes", int64(len(req.Delete)))
	info, err := s.registry.update(req.Dataset, b)
	span.End()
	if err != nil {
		s.observe("update", start, false, true)
		writeError(w, err)
		return
	}
	// Warm fast-tier scorers refresh eagerly (unlike RR collections, which
	// repair lazily): the fast tier exists to answer in microseconds, so
	// the first post-update fast query must not pay a rebuild.
	refreshSpan := obs.StartSpan(r.Context(), "scorer.refresh")
	rescored := s.tiered.refreshAfterUpdate(s.registry, req.Dataset)
	refreshSpan.Attr("nodes_rescored", int64(rescored)).End()
	traceID := ""
	if m := requestMeta(r.Context()); m != nil {
		m.dataset = req.Dataset
		traceID = m.id
	}
	s.observe("update", start, false, false)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Dataset:             req.Dataset,
		Version:             info.Version,
		Nodes:               info.Nodes,
		Edges:               info.Edges,
		Inserted:            len(req.Insert),
		Deleted:             len(req.Delete),
		AddedNodes:          req.AddNodes,
		ScorerNodesRescored: rescored,
		TraceID:             traceID,
		ElapsedMs:           float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		UptimeSeconds float64                  `json:"uptime_seconds"`
		StartedAt     string                   `json:"started_at"`
		Endpoints     map[string]endpointStats `json:"endpoints"`
		ResultCache   cacheStats               `json:"result_cache"`
		RRCache       rrStoreStats             `json:"rr_cache"`
		// Datasets reports each dataset's version and size so operators
		// can confirm an update landed without a maximize round-trip.
		Datasets []datasetInfo `json:"datasets"`
		// QuerySubsystem reports, per dataset, the constrained-query
		// counters (weighted collections, batch traffic, rejections).
		QuerySubsystem map[string]datasetQueryStats `json:"query_subsystem"`
		// Parallel reports scratch-pool reuse (process-wide) and batch
		// concurrency counters.
		Parallel parallelStats `json:"parallel"`
		// Tiered reports the latency-tiered subsystem: admission gate,
		// per-tier latency (p50/p99 over a sliding window), escalation
		// and shed counters, and fast-scorer maintenance.
		Tiered tieredStats `json:"tiered"`
		// Capacity reports the ledger roll-up: total accounted bytes and
		// per-component sums. The rr_collections and result_cache figures
		// here and the subsystem sections above read the same ledger
		// accounts, so they agree bit for bit.
		Capacity capacityStats `json:"capacity"`
		// SLO reports the rolling error budgets per tier class (the same
		// budgets behind /v1/health/slo).
		SLO map[string]obs.BudgetSnapshot `json:"slo"`
		// QLog reports the flight recorder's admission counters.
		QLog qlogStats `json:"qlog"`
		// WAL reports the durability subsystem: per-dataset log counters
		// and what startup recovery restored.
		WAL walStats `json:"wal"`
	}{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		StartedAt:      s.start.UTC().Format(time.RFC3339),
		Endpoints:      s.obs.endpointSnapshot(),
		ResultCache:    s.results.stats(),
		RRCache:        s.rr.stats(),
		Datasets:       s.registry.list(),
		QuerySubsystem: s.obs.querySnapshot(),
		Parallel:       s.parallelStatsSnapshot(),
		Tiered:         s.tiered.stats(),
		Capacity:       s.capacityStatsSnapshot(),
		SLO:            s.obs.sloSnapshot(),
		QLog:           s.qlogStatsSnapshot(),
		WAL:            s.walStatsSnapshot(),
	})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Datasets []datasetInfo `json:"datasets"`
	}{Datasets: s.registry.list()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}
