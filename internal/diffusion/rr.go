package diffusion

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// RRSampler generates random reverse-reachable (RR) sets (Definitions 1
// and 2 of the paper) with a randomized reverse breadth-first search over
// the graph's in-edges (§3.1 "Implementation" and §4.2 for the triggering
// generalization).
//
// A sampler owns reusable scratch buffers, so it is not safe for
// concurrent use; create one per worker goroutine.
type RRSampler struct {
	g     *graph.Graph
	model Model
	cfg   SampleConfig

	mark  []uint32 // mark[v] == epoch ⇔ v visited in the current sample
	epoch uint32
	queue []uint32
	trig  []uint32 // scratch for triggering-set samples
}

// NewRRSampler returns a sampler for the given graph and model under the
// default scenario (uniform roots, unbounded horizon).
func NewRRSampler(g *graph.Graph, model Model) *RRSampler {
	return NewRRSamplerConfig(g, model, SampleConfig{})
}

// NewRRSamplerConfig returns a sampler whose root distribution and
// diffusion horizon follow cfg. A zero cfg consumes the random stream
// exactly as NewRRSampler's sampler does, draw for draw.
func NewRRSamplerConfig(g *graph.Graph, model Model, cfg SampleConfig) *RRSampler {
	return &RRSampler{
		g:     g,
		model: model,
		cfg:   cfg,
		mark:  make([]uint32, g.N()),
		queue: make([]uint32, 0, 64),
	}
}

// nextEpoch advances the visited-mark epoch, clearing marks lazily.
func (s *RRSampler) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		// Wrapped: hard reset. Clear the full capacity, not just the
		// current length — a pooled sampler (AcquireSampler) can later be
		// resliced to a larger graph, exposing entries past len that must
		// not alias a live epoch.
		mark := s.mark[:cap(s.mark)]
		for i := range mark {
			mark[i] = 0
		}
		s.epoch = 1
	}
}

// Sample generates one RR set rooted at a random node — uniform by
// default, or drawn from the configured RootSampler — and appends its
// members to dst. It returns the extended slice and the width w(R) of the
// set — the number of edges in G that point to *expanded* nodes of R
// (Equation 1), which is also the number of coin flips a fresh IC
// generation examines and the quantity κ(R) is computed from. Under a
// MaxHops horizon, nodes sitting exactly at the horizon are members but
// are never expanded, so their in-edges do not count toward the width.
func (s *RRSampler) Sample(r *rng.Rand, dst []uint32) ([]uint32, int64) {
	var root uint32
	if s.cfg.Roots != nil {
		root = s.cfg.Roots.SampleRoot(r)
	} else {
		root = uint32(r.Intn(s.g.N()))
	}
	return s.SampleFrom(r, root, dst)
}

// SampleFrom generates one RR set rooted at the given node.
func (s *RRSampler) SampleFrom(r *rng.Rand, root uint32, dst []uint32) ([]uint32, int64) {
	switch s.model.kind {
	case IC:
		return s.sampleIC(r, root, dst)
	case LT:
		return s.sampleLT(r, root, dst)
	default:
		return s.sampleTriggering(r, root, dst)
	}
}

// sampleIC is the §3.1 randomized reverse BFS: each in-edge of a visited
// node is retained with its propagation probability.
func (s *RRSampler) sampleIC(r *rng.Rand, root uint32, dst []uint32) ([]uint32, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	start := len(dst)
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	depth, levelEnd := 0, len(dst)
	// The queue is the tail of dst not yet expanded: BFS order preserved.
	for head := start; head < len(dst); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(dst)
		}
		if s.cfg.MaxHops > 0 && depth >= s.cfg.MaxHops {
			// BFS visits in hop order, so everything still queued sits at
			// the horizon: a member of the set, but never expanded.
			break
		}
		v := dst[head]
		src, w := g.InNeighbors(v)
		width += int64(len(src))
		for i := range src {
			u := src[i]
			if mark[u] == epoch {
				continue
			}
			if r.Bernoulli32(w[i]) {
				mark[u] = epoch
				dst = append(dst, u)
			}
		}
	}
	return dst, width
}

// sampleLT walks a single reverse chain: under LT the triggering set of a
// node is at most one in-neighbor, picked with probability equal to the
// edge weight (§4.2; one random number per node visited, which is why LT
// sampling is empirically faster than IC — §7.2 "Results on Large
// Datasets").
func (s *RRSampler) sampleLT(r *rng.Rand, root uint32, dst []uint32) ([]uint32, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	v := root
	for hops := 0; s.cfg.MaxHops <= 0 || hops < s.cfg.MaxHops; hops++ {
		src, w := g.InNeighbors(v)
		width += int64(len(src))
		if len(src) == 0 {
			return dst, width
		}
		x := r.Float32()
		var acc float32
		next := uint32(0)
		found := false
		for i := range src {
			acc += w[i]
			if x < acc {
				next = src[i]
				found = true
				break
			}
		}
		if !found { // residual probability: empty triggering set
			return dst, width
		}
		if mark[next] == epoch { // chain closed a cycle
			return dst, width
		}
		mark[next] = epoch
		dst = append(dst, next)
		v = next
	}
	return dst, width // horizon reached: chain truncated at MaxHops steps
}

// sampleTriggering is the general §4.2 reverse BFS: for each visited node
// sample its triggering set and enqueue unvisited members.
func (s *RRSampler) sampleTriggering(r *rng.Rand, root uint32, dst []uint32) ([]uint32, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	start := len(dst)
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	depth, levelEnd := 0, len(dst)
	for head := start; head < len(dst); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(dst)
		}
		if s.cfg.MaxHops > 0 && depth >= s.cfg.MaxHops {
			break
		}
		v := dst[head]
		width += int64(g.InDegree(v))
		s.trig = s.model.trigger.AppendTrigger(s.trig[:0], g, v, r)
		for _, u := range s.trig {
			if mark[u] != epoch {
				mark[u] = epoch
				dst = append(dst, u)
			}
		}
	}
	return dst, width
}

// Width recomputes w(R) for an arbitrary node set (Equation 1): the total
// in-degree of its members. Exposed for tests and for consumers that store
// RR sets without widths.
func Width(g *graph.Graph, rr []uint32) int64 {
	var width int64
	for _, v := range rr {
		width += int64(g.InDegree(v))
	}
	return width
}
