package diffusion

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// sampleSerialReference is the trivially-correct serial implementation of
// the per-index keyed-stream contract: set i from rng.New(seed).Split(i),
// appended in index order. The zero-copy sharded path must match it byte
// for byte.
func sampleSerialReference(g *graph.Graph, model Model, cfg SampleConfig, count int64, seed uint64) (*RRCollection, []int64) {
	col := &RRCollection{Off: []int64{0}}
	widths := make([]int64, 0, count)
	sampler := NewRRSamplerConfig(g, model, cfg)
	base := rng.New(seed)
	var stream rng.Rand
	var buf []uint32
	for i := int64(0); i < count; i++ {
		base.SplitInto(uint64(i), &stream)
		var width int64
		buf, width = sampler.Sample(&stream, buf[:0])
		col.Append(buf, width)
		widths = append(widths, width)
	}
	return col, widths
}

func sameCollection(t *testing.T, label string, got, want *RRCollection) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%s: count %d != %d", label, got.Count(), want.Count())
	}
	if got.TotalWidth != want.TotalWidth {
		t.Fatalf("%s: total width %d != %d", label, got.TotalWidth, want.TotalWidth)
	}
	if !reflect.DeepEqual(got.Off, want.Off) {
		t.Fatalf("%s: offset arrays differ", label)
	}
	for i := range got.Flat {
		if got.Flat[i] != want.Flat[i] {
			t.Fatalf("%s: flat arena differs at %d", label, i)
		}
	}
}

// halfRoots is a non-uniform RootSampler for the config sweep: roots are
// drawn uniformly from the first half of the id space, fixed at
// construction (graph-independent, per the RootSampler contract).
type halfRoots uint64

func (h halfRoots) SampleRoot(r *rng.Rand) uint32 { return uint32(r.Uint64n(uint64(h))) }

// zeroCopyConfigs are the sampling scenarios the golden tests sweep:
// default, horizon-capped, weighted-root, and both at once.
func zeroCopyConfigs(n int) map[string]SampleConfig {
	return map[string]SampleConfig{
		"default":          {},
		"horizon":          {MaxHops: 3},
		"weighted":         {Roots: halfRoots(n / 2)},
		"weighted+horizon": {Roots: halfRoots(n / 2), MaxHops: 2},
	}
}

// sampleMergeBaseline is the pre-zero-copy sampling layout — per-worker
// private collections concatenated by copy — over the same per-index
// keyed streams as SampleCollection, so its output is bit-identical while
// its memory profile (parts + merged arena, transiently 2×) is the
// baseline the zero-copy path and cmd/timbench are measured against.
func sampleMergeBaseline(g *graph.Graph, model Model, count int64, seed uint64, workers int) *RRCollection {
	opts := SampleOptions{Workers: workers}
	opts.normalize(count)
	parts := make([]*RRCollection, opts.Workers)
	base := rng.New(seed)
	var wg sync.WaitGroup
	lo := int64(0)
	for w := 0; w < opts.Workers; w++ {
		quota := count / int64(opts.Workers)
		if int64(w) < count%int64(opts.Workers) {
			quota++
		}
		hi := lo + quota
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			sampler := NewRRSamplerConfig(g, model, SampleConfig{})
			part := &RRCollection{Off: make([]int64, 1, hi-lo+1)}
			var stream rng.Rand
			var buf []uint32
			for i := lo; i < hi; i++ {
				base.SplitInto(uint64(i), &stream)
				var width int64
				buf, width = sampler.Sample(&stream, buf[:0])
				part.Append(buf, width)
			}
			parts[w] = part
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	out := &RRCollection{}
	var flatLen, offLen int64
	for _, p := range parts {
		flatLen += int64(len(p.Flat))
		offLen += int64(len(p.Off)) - 1
	}
	out.Flat = make([]uint32, 0, flatLen)
	out.Off = make([]int64, 1, offLen+1)
	for _, p := range parts {
		out.Merge(p)
	}
	return out
}

// TestMergeBaselineBitIdentical pins the baseline to the live path: both
// draw from the same keyed streams, so timbench's memory comparison is
// apples to apples.
func TestMergeBaselineBitIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, rng.New(15))
	graph.AssignWeightedCascade(g)
	want := SampleCollection(g, NewIC(), 400, SampleOptions{Workers: 3, Seed: 6})
	got := sampleMergeBaseline(g, NewIC(), 400, 6, 3)
	sameCollection(t, "merge-baseline", got, want)
}

// TestSampleCollectionMatchesSerialReference: the parallel zero-copy
// sampler is byte-identical to the serial per-index reference for every
// worker count, model, and sampling scenario.
func TestSampleCollectionMatchesSerialReference(t *testing.T) {
	g := gen.ChungLuDirected(400, 2400, 2.4, 2.1, rng.New(10))
	graph.AssignWeightedCascade(g)
	gLT := gen.ChungLuDirected(400, 2400, 2.4, 2.1, rng.New(10))
	graph.AssignRandomNormalizedLTKeyed(gLT, 11)
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		model Model
	}{
		{"ic", g, NewIC()},
		{"lt", gLT, NewLT()},
	} {
		for cfgName, cfg := range zeroCopyConfigs(tc.g.N()) {
			want, _ := sampleSerialReference(tc.g, tc.model, cfg, 700, 42)
			for _, workers := range []int{1, 2, 3, 8} {
				got := SampleCollection(tc.g, tc.model, 700, SampleOptions{
					Workers: workers, Seed: 42, Config: cfg,
				})
				sameCollection(t, fmt.Sprintf("%s/%s/workers=%d", tc.name, cfgName, workers), got, want)
			}
		}
	}
}

// TestExtendZeroCopyMatchesSerialReference: stepwise parallel extensions
// under every scenario reproduce the serial reference bytes and widths.
func TestExtendZeroCopyMatchesSerialReference(t *testing.T) {
	g := gen.BarabasiAlbert(350, 3, rng.New(12))
	graph.AssignWeightedCascade(g)
	for cfgName, cfg := range zeroCopyConfigs(g.N()) {
		want, wantWidths := sampleSerialReference(g, NewIC(), cfg, 600, 77)
		for _, workers := range []int{1, 4, 7} {
			col := &RRCollection{Off: []int64{0}}
			widths, err := ExtendCollectionConfig(context.Background(), g, NewIC(), cfg, col, 150, 77, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			widths, err = ExtendCollectionConfig(context.Background(), g, NewIC(), cfg, col, 600, 77, workers, widths)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s/workers=%d", cfgName, workers)
			sameCollection(t, label, col, want)
			if !reflect.DeepEqual(widths, wantWidths) {
				t.Fatalf("%s: widths differ", label)
			}
		}
	}
}

// TestSampleCollectionEqualsExtend: the two entry points share one
// keyed-stream scheme, so a fresh sample is the same bytes as a cold
// extension — which is what makes fresh collections prefix-extendable
// and repairable with no translation.
func TestSampleCollectionEqualsExtend(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng.New(13))
	graph.AssignWeightedCascade(g)
	sampled := SampleCollection(g, NewIC(), 300, SampleOptions{Workers: 4, Seed: 5})
	extended := &RRCollection{Off: []int64{0}}
	if _, err := ExtendCollection(context.Background(), g, NewIC(), extended, 300, 5, 4, nil); err != nil {
		t.Fatal(err)
	}
	sameCollection(t, "sample-vs-extend", sampled, extended)
}

// TestExtendCancelMidwayRollsBack: cancellation mid-extension (not just
// pre-cancelled) leaves the collection exactly as it was, including
// length, offsets, and total width.
func TestExtendCancelMidwayRollsBack(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, rng.New(14))
	graph.AssignWeightedCascade(g)
	col := &RRCollection{Off: []int64{0}}
	widths, err := ExtendCollection(context.Background(), g, NewIC(), col, 50, 9, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantFlat, wantOff, wantWidth := len(col.Flat), len(col.Off), col.TotalWidth
	wantFlatCap, wantOffCap := cap(col.Flat), cap(col.Off)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { cancel() }() // races the sampling loop: any interleaving must roll back
	w2, err := ExtendCollection(ctx, g, NewIC(), col, 500_000, 9, 4, widths)
	if err == nil {
		// The cancel can lose the race on a fast machine; then the extend
		// simply completed and the contract is untested but unviolated.
		t.Skip("cancellation lost the race with the extension")
	}
	if len(col.Flat) != wantFlat || len(col.Off) != wantOff || col.TotalWidth != wantWidth {
		t.Fatalf("cancelled extension mutated the collection: flat %d→%d off %d→%d width %d→%d",
			wantFlat, len(col.Flat), wantOff, len(col.Off), wantWidth, col.TotalWidth)
	}
	// Capacities must roll back too: a cancelled big-θ extension must not
	// leave the entry pinning a near-final-size arena (or a total+1
	// offset array) that rr-store memory accounting never observed.
	if cap(col.Flat) != wantFlatCap || cap(col.Off) != wantOffCap {
		t.Fatalf("cancelled extension pinned grown capacity: flat cap %d→%d off cap %d→%d",
			wantFlatCap, cap(col.Flat), wantOffCap, cap(col.Off))
	}
	if len(w2) != 50 {
		t.Fatalf("cancelled extension grew widths: %d", len(w2))
	}
}

// TestSamplerPoolReuse: pooled samplers produce the same sets as fresh
// ones, across rebinds to graphs of different sizes.
func TestSamplerPoolReuse(t *testing.T) {
	small := gen.BarabasiAlbert(50, 2, rng.New(20))
	graph.AssignWeightedCascade(small)
	big := gen.BarabasiAlbert(500, 3, rng.New(21))
	graph.AssignWeightedCascade(big)
	for round := 0; round < 3; round++ {
		for _, g := range []*graph.Graph{big, small, big} {
			seed := uint64(round*10 + g.N())
			pooled := AcquireSampler(g, NewIC(), SampleConfig{})
			fresh := NewRRSamplerConfig(g, NewIC(), SampleConfig{})
			for i := 0; i < 40; i++ {
				r1, r2 := rng.New(seed+uint64(i)), rng.New(seed+uint64(i))
				a, wa := pooled.Sample(r1, nil)
				b, wb := fresh.Sample(r2, nil)
				if wa != wb || !reflect.DeepEqual(a, b) {
					t.Fatalf("round %d n=%d sample %d: pooled %v (w=%d) != fresh %v (w=%d)",
						round, g.N(), i, a, wa, b, wb)
				}
			}
			ReleaseSampler(pooled)
		}
	}
	hits, misses := SamplerPoolStats()
	if hits+misses == 0 {
		t.Fatal("sampler pool counters never moved")
	}
}

// BenchmarkSampleZeroCopy measures the sampling half of the pipeline at
// one and all cores, plus the pre-PR merge-based layout (private worker
// parts concatenated by copy) as the peak-memory baseline timbench
// contrasts against.
func BenchmarkSampleZeroCopy(b *testing.B) {
	g := gen.ChungLuDirected(20_000, 160_000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	const theta = 50_000
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col := SampleCollection(g, NewIC(), theta, SampleOptions{Workers: workers, Seed: uint64(i)})
				if col.Count() != theta {
					b.Fatalf("count=%d", col.Count())
				}
			}
		})
	}
	b.Run("merge-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := sampleMergeBaseline(g, NewIC(), theta, uint64(i), 0)
			if col.Count() != theta {
				b.Fatalf("count=%d", col.Count())
			}
		}
	})
}
