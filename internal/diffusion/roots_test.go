package diffusion

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// fixedRoot is a RootSampler pinned to one node (consuming no randomness
// would break nothing, but consume one draw to exercise stream alignment).
type fixedRoot uint32

func (f fixedRoot) SampleRoot(r *rng.Rand) uint32 {
	_ = r.Uint64()
	return uint32(f)
}

// pathGraph builds 0 -> 1 -> ... -> n-1 with probability-1 edges, so RR
// sets are fully determined by the root and the horizon.
func pathGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{From: uint32(i), To: uint32(i + 1), Weight: 1})
	}
	return graph.MustFromEdges(n, edges)
}

// TestZeroConfigBitIdentical: collections sampled through the config path
// with a zero config must be byte-identical to the legacy path.
func TestZeroConfigBitIdentical(t *testing.T) {
	g := pathGraph(50)
	for _, model := range []Model{NewIC(), NewLT()} {
		legacy := SampleCollection(g, model, 200, SampleOptions{Workers: 3, Seed: 7})
		cfg := SampleCollection(g, model, 200, SampleOptions{Workers: 3, Seed: 7, Config: SampleConfig{}})
		if !reflect.DeepEqual(legacy.Flat, cfg.Flat) || !reflect.DeepEqual(legacy.Off, cfg.Off) {
			t.Fatalf("%v: zero config diverged from legacy sampling", model)
		}
	}
}

// TestMaxHopsIC: on the deterministic path graph an RR set rooted at v
// holds exactly the ≤ MaxHops predecessors of v.
func TestMaxHopsIC(t *testing.T) {
	g := pathGraph(10)
	const hops = 3
	s := NewRRSamplerConfig(g, NewIC(), SampleConfig{MaxHops: hops})
	r := rng.New(1)
	set, width := s.SampleFrom(r, 9, nil)
	want := []uint32{9, 8, 7, 6}
	if !reflect.DeepEqual(set, want) {
		t.Fatalf("3-hop RR set %v, want %v", set, want)
	}
	// Width counts in-edges of expanded nodes only: 9, 8, 7 each have one
	// in-edge; horizon node 6 is not expanded.
	if width != 3 {
		t.Fatalf("width %d, want 3", width)
	}
}

func TestMaxHopsLT(t *testing.T) {
	g := pathGraph(10)
	s := NewRRSamplerConfig(g, NewLT(), SampleConfig{MaxHops: 2})
	r := rng.New(2)
	set, _ := s.SampleFrom(r, 9, nil)
	if len(set) > 3 {
		t.Fatalf("2-hop LT chain %v longer than 3 nodes", set)
	}
	if set[0] != 9 {
		t.Fatalf("root missing: %v", set)
	}
}

// TestMaxHopsSubset: a capped sample from the same stream is a prefix-
// closed subset of the uncapped one on any graph (BFS order agrees until
// the horizon binds).
func TestMaxHopsSubset(t *testing.T) {
	g := pathGraph(40)
	for _, model := range []Model{NewIC(), NewLT()} {
		full := NewRRSampler(g, model)
		capped := NewRRSamplerConfig(g, model, SampleConfig{MaxHops: 2})
		for i := 0; i < 200; i++ {
			r1, r2 := rng.New(uint64(i)), rng.New(uint64(i))
			fullSet, _ := full.Sample(r1, nil)
			cappedSet, _ := capped.Sample(r2, nil)
			if len(cappedSet) > len(fullSet) {
				t.Fatalf("%v: capped %v larger than full %v", model, cappedSet, fullSet)
			}
			if !reflect.DeepEqual(fullSet[:len(cappedSet)], cappedSet) {
				t.Fatalf("%v: capped %v is not a prefix of full %v", model, cappedSet, fullSet)
			}
		}
	}
}

func TestWeightedRootsDriveSampling(t *testing.T) {
	g := pathGraph(20)
	col := SampleCollection(g, NewIC(), 100, SampleOptions{
		Workers: 2, Seed: 3, Config: SampleConfig{Roots: fixedRoot(5)},
	})
	for i := 0; i < col.Count(); i++ {
		if col.Set(i)[0] != 5 {
			t.Fatalf("set %d rooted at %d, want 5", i, col.Set(i)[0])
		}
	}
}

// TestExtendConfigPrefixDeterminism: the constrained extension path keeps
// the warm-cache guarantee — extending to θ₁ then θ₂ equals sampling θ₂
// cold, per (seed, cfg).
func TestExtendConfigPrefixDeterminism(t *testing.T) {
	g := pathGraph(30)
	cfg := SampleConfig{Roots: fixedRoot(17), MaxHops: 4}
	model := NewIC()

	warm := &RRCollection{Off: []int64{0}}
	if _, err := ExtendCollectionConfig(context.Background(), g, model, cfg, warm, 40, 9, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendCollectionConfig(context.Background(), g, model, cfg, warm, 100, 9, 3, nil); err != nil {
		t.Fatal(err)
	}
	cold := &RRCollection{Off: []int64{0}}
	if _, err := ExtendCollectionConfig(context.Background(), g, model, cfg, cold, 100, 9, 1, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Flat, cold.Flat) || !reflect.DeepEqual(warm.Off, cold.Off) {
		t.Fatal("warm extension diverged from cold sample under config")
	}
	if warm.TotalWidth != cold.TotalWidth {
		t.Fatalf("widths diverged: %d vs %d", warm.TotalWidth, cold.TotalWidth)
	}
}

func TestRunHorizonForward(t *testing.T) {
	// Forward cascade on the path graph: seeds {0}, horizon 3 activates
	// nodes 0..3 under IC with p=1.
	g := pathGraph(10)
	sim := NewSimulator(g, NewIC())
	r := rng.New(4)
	if got := sim.RunHorizon(r, []uint32{0}, 3); got != 4 {
		t.Fatalf("3-hop forward cascade activated %d, want 4", got)
	}
	if got := sim.Run(r, []uint32{0}); got != 10 {
		t.Fatalf("unbounded cascade activated %d, want 10", got)
	}
	active := sim.RunActivatedHorizon(r, []uint32{0}, 2)
	if !reflect.DeepEqual(active, []uint32{0, 1, 2}) {
		t.Fatalf("2-hop activation set %v", active)
	}
}
