package diffusion

import (
	"repro/internal/rng"
)

// Activation records one node activation inside a traced cascade.
type Activation struct {
	// Node is the activated node.
	Node uint32
	// By is the in-neighbor whose influence triggered the activation,
	// or the node itself for seeds.
	By uint32
	// Step is the propagation timestamp: 0 for seeds, and i+1 for
	// nodes activated by a step-i node (§2.1's timestamped process).
	Step int
}

// Trace is the full record of one cascade: every activation in
// activation order. Useful for application-side visualization and for
// tests that need to assert on cascade structure, not just its size.
type Trace struct {
	Activations []Activation
}

// Spread returns the number of activated nodes.
func (t *Trace) Spread() int { return len(t.Activations) }

// MaxStep returns the largest propagation timestamp reached.
func (t *Trace) MaxStep() int {
	best := 0
	for _, a := range t.Activations {
		if a.Step > best {
			best = a.Step
		}
	}
	return best
}

// RunTrace executes one cascade like Run but records who activated whom
// and when. It is slower than Run and allocates the trace; use it for
// analysis, not inside estimation loops.
func (s *Simulator) RunTrace(r *rng.Rand, seeds []uint32) *Trace {
	switch s.model.kind {
	case IC:
		return s.traceIC(r, seeds)
	case LT:
		return s.traceLT(r, seeds)
	default:
		return s.traceTriggering(r, seeds)
	}
}

func (s *Simulator) traceIC(r *rng.Rand, seeds []uint32) *Trace {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	tr := &Trace{}
	step := make(map[uint32]int)
	q := s.queue[:0]
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
			step[v] = 0
			tr.Activations = append(tr.Activations, Activation{Node: v, By: v, Step: 0})
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		to, w := g.OutNeighbors(u)
		for i := range to {
			v := to[i]
			if mark[v] == epoch {
				continue
			}
			if r.Bernoulli32(w[i]) {
				mark[v] = epoch
				q = append(q, v)
				step[v] = step[u] + 1
				tr.Activations = append(tr.Activations, Activation{Node: v, By: u, Step: step[v]})
			}
		}
	}
	s.queue = q
	return tr
}

func (s *Simulator) traceLT(r *rng.Rand, seeds []uint32) *Trace {
	s.nextEpoch()
	g, mark, mark2, epoch := s.g, s.mark, s.mark2, s.epoch
	tr := &Trace{}
	step := make(map[uint32]int)
	q := s.queue[:0]
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
			step[v] = 0
			tr.Activations = append(tr.Activations, Activation{Node: v, By: v, Step: 0})
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		to, w := g.OutNeighbors(u)
		for i := range to {
			v := to[i]
			if mark[v] == epoch {
				continue
			}
			if mark2[v] != epoch {
				mark2[v] = epoch
				s.acc[v] = 0
				s.threshold[v] = r.Float32()
			}
			s.acc[v] += w[i]
			if s.acc[v] >= s.threshold[v] {
				mark[v] = epoch
				q = append(q, v)
				step[v] = step[u] + 1
				tr.Activations = append(tr.Activations, Activation{Node: v, By: u, Step: step[v]})
			}
		}
	}
	s.queue = q
	return tr
}

func (s *Simulator) traceTriggering(r *rng.Rand, seeds []uint32) *Trace {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	tr := &Trace{}
	step := make(map[uint32]int)
	trigSets := make(map[uint32][]uint32)
	inSet := func(v, u uint32) bool {
		set, ok := trigSets[v]
		if !ok {
			s.trig = s.model.trigger.AppendTrigger(s.trig[:0], g, v, r)
			set = append([]uint32(nil), s.trig...)
			trigSets[v] = set
		}
		for _, x := range set {
			if x == u {
				return true
			}
		}
		return false
	}
	q := s.queue[:0]
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
			step[v] = 0
			tr.Activations = append(tr.Activations, Activation{Node: v, By: v, Step: 0})
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		to, _ := g.OutNeighbors(u)
		for i := range to {
			v := to[i]
			if mark[v] == epoch {
				continue
			}
			if inSet(v, u) {
				mark[v] = epoch
				q = append(q, v)
				step[v] = step[u] + 1
				tr.Activations = append(tr.Activations, Activation{Node: v, By: u, Step: step[v]})
			}
		}
	}
	s.queue = q
	return tr
}
