package diffusion

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestTraceICCertainPath(t *testing.T) {
	g := gen.Path(5, 1)
	sim := NewSimulator(g, NewIC())
	tr := sim.RunTrace(rng.New(1), []uint32{0})
	if tr.Spread() != 5 {
		t.Fatalf("spread=%d", tr.Spread())
	}
	if tr.MaxStep() != 4 {
		t.Fatalf("max step=%d, want 4 (chain depth)", tr.MaxStep())
	}
	// Every non-seed activation must name its true predecessor.
	for _, a := range tr.Activations {
		if a.Step == 0 {
			if a.Node != 0 || a.By != 0 {
				t.Fatalf("seed activation %+v", a)
			}
			continue
		}
		if a.By != a.Node-1 {
			t.Fatalf("activation %+v: path node must be activated by predecessor", a)
		}
		if int(a.Node) != a.Step {
			t.Fatalf("activation %+v: step must equal position on path", a)
		}
	}
}

func TestTraceSeedsStepZero(t *testing.T) {
	g := gen.Path(5, 0)
	sim := NewSimulator(g, NewIC())
	tr := sim.RunTrace(rng.New(1), []uint32{2, 4, 2})
	if tr.Spread() != 2 {
		t.Fatalf("spread=%d, want 2 (dedup)", tr.Spread())
	}
	for _, a := range tr.Activations {
		if a.Step != 0 || a.By != a.Node {
			t.Fatalf("seed activation %+v", a)
		}
	}
	if tr.MaxStep() != 0 {
		t.Fatalf("max step=%d", tr.MaxStep())
	}
}

func TestTraceSpreadMatchesRun(t *testing.T) {
	// With the same RNG stream, RunTrace and Run consume randomness in
	// the same order and must report the same spread.
	g := gen.ErdosRenyiGnm(80, 400, rng.New(2))
	graph.AssignWeightedCascade(g)
	for _, model := range []Model{NewIC(), NewLT(), NewTriggering(ICTrigger{})} {
		simA := NewSimulator(g, model)
		simB := NewSimulator(g, model)
		rA, rB := rng.New(3), rng.New(3)
		for i := 0; i < 30; i++ {
			a := simA.Run(rA, []uint32{0, 1})
			b := simB.RunTrace(rB, []uint32{0, 1}).Spread()
			if a != b {
				t.Fatalf("%v: run %d spread %d vs trace %d", model, i, a, b)
			}
		}
	}
}

func TestTraceLTStar(t *testing.T) {
	g := gen.Star(6, 1)
	sim := NewSimulator(g, NewLT())
	tr := sim.RunTrace(rng.New(4), []uint32{0})
	if tr.Spread() != 6 {
		t.Fatalf("spread=%d", tr.Spread())
	}
	for _, a := range tr.Activations[1:] {
		if a.By != 0 || a.Step != 1 {
			t.Fatalf("leaf activation %+v, want by hub at step 1", a)
		}
	}
}

func TestTraceTriggeringConsistency(t *testing.T) {
	g := gen.Cycle(8, 1)
	sim := NewSimulator(g, NewTriggering(ICTrigger{}))
	tr := sim.RunTrace(rng.New(5), []uint32{3})
	if tr.Spread() != 8 {
		t.Fatalf("spread=%d on certain cycle", tr.Spread())
	}
	// Steps must increase along the cycle from the seed.
	want := 0
	for _, a := range tr.Activations {
		if a.Step != want {
			t.Fatalf("activation %+v, want step %d", a, want)
		}
		want++
	}
}
