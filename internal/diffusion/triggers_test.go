package diffusion

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBoundedTriggerCap(t *testing.T) {
	// In-star with certain weights: unbounded IC would trigger on all
	// 9 in-neighbors; BoundedTrigger keeps at most 3.
	g := gen.InStar(10, 1)
	bt := BoundedTrigger{Max: 3}
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		set := bt.AppendTrigger(nil, g, 0, r)
		if len(set) != 3 {
			t.Fatalf("trigger size %d, want 3", len(set))
		}
		seen := map[uint32]bool{}
		for _, u := range set {
			if seen[u] || u == 0 || int(u) >= g.N() {
				t.Fatalf("bad trigger set %v", set)
			}
			seen[u] = true
		}
	}
}

func TestBoundedTriggerUniformAmongSuccesses(t *testing.T) {
	// All 5 in-neighbors certain, Max=1: each must be kept ~uniformly.
	g := gen.InStar(6, 1)
	bt := BoundedTrigger{Max: 1}
	r := rng.New(2)
	counts := map[uint32]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		set := bt.AppendTrigger(nil, g, 0, r)
		if len(set) != 1 {
			t.Fatalf("size %d", len(set))
		}
		counts[set[0]]++
	}
	for u, c := range counts {
		if math.Abs(float64(c)-trials/5) > trials/5*0.1 {
			t.Fatalf("neighbor %d kept %d times, want about %d", u, c, trials/5)
		}
	}
}

func TestBoundedTriggerDefaultsMaxOne(t *testing.T) {
	g := gen.InStar(4, 1)
	set := BoundedTrigger{}.AppendTrigger(nil, g, 0, rng.New(3))
	if len(set) != 1 {
		t.Fatalf("zero Max should behave as 1, got %v", set)
	}
}

func TestScaledICTriggerZeroAndIdentity(t *testing.T) {
	g := gen.InStar(5, 0.5)
	r := rng.New(4)
	if set := (ScaledICTrigger{Factor: 0}).AppendTrigger(nil, g, 0, r); len(set) != 0 {
		t.Fatalf("factor 0 produced %v", set)
	}
	// Factor large enough to clamp every probability to 1.
	if set := (ScaledICTrigger{Factor: 10}).AppendTrigger(nil, g, 0, r); len(set) != 4 {
		t.Fatalf("clamped factor produced %v", set)
	}
}

func TestScaledICTriggerRate(t *testing.T) {
	g := gen.InStar(2, 0.5)
	s := ScaledICTrigger{Factor: 0.5} // effective p = 0.25
	r := rng.New(5)
	hits := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if len(s.AppendTrigger(nil, g, 0, r)) == 1 {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("rate %v, want 0.25", rate)
	}
}

func TestTopWeightTrigger(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{From: 1, To: 0, Weight: 0.2},
		{From: 2, To: 0, Weight: 0.9},
		{From: 3, To: 0, Weight: 0.5},
	})
	set := TopWeightTrigger{Top: 2}.AppendTrigger(nil, g, 0, rng.New(6))
	if len(set) != 2 {
		t.Fatalf("set=%v", set)
	}
	got := map[uint32]bool{set[0]: true, set[1]: true}
	if !got[2] || !got[3] {
		t.Fatalf("want the two heaviest in-neighbors {2,3}, got %v", set)
	}
	// Top larger than in-degree returns everything.
	all := TopWeightTrigger{Top: 9}.AppendTrigger(nil, g, 0, rng.New(7))
	if len(all) != 3 {
		t.Fatalf("all=%v", all)
	}
}

func TestCustomTriggersRunEndToEnd(t *testing.T) {
	g := gen.ChungLuDirected(200, 1200, 2.4, 2.1, rng.New(8))
	graph.AssignWeightedCascade(g)
	for _, ts := range []TriggerSampler{
		BoundedTrigger{Max: 2},
		ScaledICTrigger{Factor: 0.5},
		TopWeightTrigger{Top: 1},
	} {
		model := NewTriggering(ts)
		sim := NewSimulator(g, model)
		r := rng.New(9)
		total := 0
		for i := 0; i < 200; i++ {
			total += sim.Run(r, []uint32{0, 1})
		}
		if total < 400 {
			t.Fatalf("%T: cascades below seed floor", ts)
		}
		sampler := NewRRSampler(g, model)
		var buf []uint32
		for i := 0; i < 200; i++ {
			buf, _ = sampler.Sample(r, buf[:0])
			if len(buf) == 0 {
				t.Fatalf("%T: empty RR set", ts)
			}
		}
	}
}

// TestBoundedTriggerReducesSpread: capping the triggering set can only
// reduce spread relative to plain IC.
func TestBoundedTriggerReducesSpread(t *testing.T) {
	g := gen.ChungLuDirected(500, 5000, 2.4, 2.1, rng.New(10))
	graph.AssignWeightedCascade(g)
	seeds := []uint32{0, 1, 2, 3, 4}
	meanOf := func(m Model, seed uint64) float64 {
		sim := NewSimulator(g, m)
		r := rng.New(seed)
		const trials = 10000
		total := 0
		for i := 0; i < trials; i++ {
			total += sim.Run(r, seeds)
		}
		return float64(total) / trials
	}
	ic := meanOf(NewIC(), 11)
	bounded := meanOf(NewTriggering(BoundedTrigger{Max: 1}), 12)
	if bounded > ic+0.5 {
		t.Fatalf("bounded trigger spread %v exceeds IC %v", bounded, ic)
	}
}
