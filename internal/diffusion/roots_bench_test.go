package diffusion

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// weightedBenchRoots is a minimal alias-free weighted sampler (linear
// CDF walk) — enough to exercise the weighted-root code path without
// importing internal/query (which would cycle through maxcover).
type weightedBenchRoots struct {
	cum []float64
}

func newWeightedBenchRoots(n int) *weightedBenchRoots {
	r := rng.New(7)
	cum := make([]float64, n)
	total := 0.0
	for i := range cum {
		total += 0.1 + r.Float64()
		cum[i] = total
	}
	return &weightedBenchRoots{cum: cum}
}

func (w *weightedBenchRoots) SampleRoot(r *rng.Rand) uint32 {
	x := r.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// BenchmarkSampleConstrained covers the constrained sampling hot path:
// default vs weighted roots vs bounded horizon vs both. The CI bench
// smoke runs it for one iteration so regressions in the new path fail
// loudly.
func BenchmarkSampleConstrained(b *testing.B) {
	g := gen.ChungLuDirected(20000, 120000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	roots := newWeightedBenchRoots(g.N())
	cases := []struct {
		name string
		cfg  SampleConfig
	}{
		{"default", SampleConfig{}},
		{"weighted-roots", SampleConfig{Roots: roots}},
		{"three-hops", SampleConfig{MaxHops: 3}},
		{"weighted-three-hops", SampleConfig{Roots: roots, MaxHops: 3}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				col := SampleCollection(g, NewIC(), 5000, SampleOptions{
					Workers: 4, Seed: uint64(i + 1), Config: tc.cfg,
				})
				if col.Count() == 0 {
					b.Fatal("empty collection")
				}
			}
		})
	}
}
