package diffusion

import "repro/internal/rng"

// RootSampler draws RR-set roots from a non-uniform node distribution.
// Borgs et al.'s root-sampling argument holds verbatim for any node-weight
// distribution: if roots are drawn with probability w(v)/W (W = Σw), then
// for any seed set S, W·Pr[S covers a random RR set] equals the weighted
// influence Σ_v w(v)·Pr[S activates v]. Targeted influence maximization
// (internal/query) rides on exactly that substitution.
//
// Contract: SampleRoot must be a pure function of the sampler's own fixed
// state and the stream r — it must never read the graph. In particular the
// draw may not depend on the current node count, so root draws stay stable
// when the graph grows nodes; the incremental maintainer (evolve.Repair)
// relies on this to skip the root-instability check for non-uniform roots.
// Returned ids must lie in [0, n) of every graph the sampler is used with.
type RootSampler interface {
	// SampleRoot draws one root node id from the sampler's distribution.
	SampleRoot(r *rng.Rand) uint32
}

// SampleConfig bundles the scenario knobs of constrained-query RR
// sampling. The zero value is the paper's default scenario — uniform roots,
// unbounded diffusion — and is guaranteed to consume the random stream
// exactly as the pre-config samplers did, so default-config collections are
// bit-identical to legacy ones.
type SampleConfig struct {
	// Roots draws RR-set roots; nil means uniform over [0, g.N()).
	Roots RootSampler
	// MaxHops, when positive, caps the diffusion horizon: an RR set holds
	// only the nodes with a live path of at most MaxHops edges to the root
	// (Chen et al.'s time-critical IC, mirrored on the reverse walk; under
	// LT the single reverse chain is truncated after MaxHops steps). Zero
	// means unlimited.
	MaxHops int
}

// Default reports whether the config is the zero scenario, for callers
// that key caches or fast paths on "no constraints".
func (c SampleConfig) Default() bool { return c.Roots == nil && c.MaxHops <= 0 }
