package diffusion

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// figure1 is the paper's Figure 1 network, 0-indexed (v1=0, ..., v4=3).
func figure1() *graph.Graph {
	return graph.MustFromEdges(4, []graph.Edge{
		{From: 1, To: 0, Weight: 0.01},
		{From: 1, To: 3, Weight: 0.01},
		{From: 3, To: 0, Weight: 1.0},
		{From: 0, To: 2, Weight: 0.01},
		{From: 2, To: 3, Weight: 0.01},
	})
}

func TestRRSamplerICPathCertain(t *testing.T) {
	// Path 0->1->2->3->4 with p=1: RR set of root v is {0..v}.
	g := gen.Path(5, 1)
	s := NewRRSampler(g, NewIC())
	r := rng.New(1)
	for root := uint32(0); root < 5; root++ {
		rr, width := s.SampleFrom(r, root, nil)
		if len(rr) != int(root)+1 {
			t.Fatalf("root %d: rr=%v", root, rr)
		}
		if width != Width(g, rr) {
			t.Fatalf("root %d: width %d != recomputed %d", root, width, Width(g, rr))
		}
		seen := map[uint32]bool{}
		for _, v := range rr {
			if v > root {
				t.Fatalf("root %d: rr contains descendant %d", root, v)
			}
			if seen[v] {
				t.Fatalf("root %d: duplicate %d in rr", root, v)
			}
			seen[v] = true
		}
	}
}

func TestRRSamplerICPathImpossible(t *testing.T) {
	g := gen.Path(5, 0)
	s := NewRRSampler(g, NewIC())
	r := rng.New(1)
	rr, width := s.SampleFrom(r, 4, nil)
	if len(rr) != 1 || rr[0] != 4 {
		t.Fatalf("rr=%v, want just the root", rr)
	}
	if width != 1 {
		t.Fatalf("width=%d, want indegree(4)=1", width)
	}
}

func TestRRSamplerICFigure1Root0(t *testing.T) {
	// Root v1 (=0): v4 reaches v1 with probability 1 via the certain
	// edge, v2 with ~0.01(+paths). Over many samples, v4 must appear in
	// nearly every RR set for v1, v2 rarely.
	g := figure1()
	s := NewRRSampler(g, NewIC())
	r := rng.New(7)
	const trials = 20000
	countV4, countV2 := 0, 0
	var buf []uint32
	for i := 0; i < trials; i++ {
		buf, _ = s.SampleFrom(r, 0, buf[:0])
		for _, v := range buf {
			switch v {
			case 3:
				countV4++
			case 1:
				countV2++
			}
		}
	}
	if countV4 != trials {
		t.Fatalf("v4 in %d/%d RR sets for v1; the 1.0 edge must always fire", countV4, trials)
	}
	rate := float64(countV2) / trials
	// P(v2 reaches v1) = 1 - (1-0.01)(1-0.01*...) ≈ 0.02 (two nearly
	// disjoint routes: direct 0.01, and via v4 0.01*1). Allow wide band.
	if rate < 0.01 || rate > 0.04 {
		t.Fatalf("v2 appearance rate %v outside [0.01, 0.04]", rate)
	}
}

func TestRRSamplerMembershipImpliesReachability(t *testing.T) {
	// Every member of an RR set must reach the root in G (with nonzero
	// probability edges only, membership implies a directed path).
	g := gen.ErdosRenyiGnm(60, 240, rng.New(3))
	graph.AssignWeightedCascade(g)
	s := NewRRSampler(g, NewIC())
	r := rng.New(4)
	var buf []uint32
	for trial := 0; trial < 300; trial++ {
		root := uint32(r.Intn(g.N()))
		buf, _ = s.SampleFrom(r, root, buf[:0])
		for _, u := range buf {
			reach := graph.Reachable(g, []uint32{u})
			if !reach[root] {
				t.Fatalf("node %d in RR(%d) but cannot reach it", u, root)
			}
		}
	}
}

func TestRRSamplerLTChain(t *testing.T) {
	// LT RR sets are chains of distinct nodes; on a cycle with full
	// weight they wrap around the whole cycle and stop.
	g := gen.Cycle(6, 1)
	s := NewRRSampler(g, NewLT())
	r := rng.New(5)
	rr, _ := s.SampleFrom(r, 0, nil)
	if len(rr) != 6 {
		t.Fatalf("LT RR on certain cycle: %v", rr)
	}
	seen := map[uint32]bool{}
	for _, v := range rr {
		if seen[v] {
			t.Fatalf("duplicate in LT RR: %v", rr)
		}
		seen[v] = true
	}
}

func TestRRSamplerLTResidualStops(t *testing.T) {
	// In-star with weight 0 edges: root's triggering set is always
	// empty, RR set is only the root.
	g := gen.InStar(5, 0)
	s := NewRRSampler(g, NewLT())
	r := rng.New(6)
	rr, width := s.SampleFrom(r, 0, nil)
	if len(rr) != 1 {
		t.Fatalf("rr=%v", rr)
	}
	if width != 4 {
		t.Fatalf("width=%d, want indeg(0)=4", width)
	}
}

func TestRRSamplerDeterminism(t *testing.T) {
	g := gen.ErdosRenyiGnm(40, 160, rng.New(1))
	graph.AssignWeightedCascade(g)
	for _, model := range []Model{NewIC(), NewLT(), NewTriggering(ICTrigger{})} {
		s1 := NewRRSampler(g, model)
		s2 := NewRRSampler(g, model)
		r1, r2 := rng.New(99), rng.New(99)
		var b1, b2 []uint32
		for i := 0; i < 50; i++ {
			b1, _ = s1.Sample(r1, b1[:0])
			b2, _ = s2.Sample(r2, b2[:0])
			if len(b1) != len(b2) {
				t.Fatalf("%v: sample %d sizes differ", model, i)
			}
			for j := range b1 {
				if b1[j] != b2[j] {
					t.Fatalf("%v: sample %d differs at %d", model, i, j)
				}
			}
		}
	}
}

func TestSimulatorICPathCertain(t *testing.T) {
	g := gen.Path(5, 1)
	sim := NewSimulator(g, NewIC())
	r := rng.New(1)
	if got := sim.Run(r, []uint32{0}); got != 5 {
		t.Fatalf("spread=%d, want 5", got)
	}
	if got := sim.Run(r, []uint32{3}); got != 2 {
		t.Fatalf("spread=%d, want 2", got)
	}
}

func TestSimulatorICPathImpossible(t *testing.T) {
	g := gen.Path(5, 0)
	sim := NewSimulator(g, NewIC())
	r := rng.New(1)
	if got := sim.Run(r, []uint32{0, 2}); got != 2 {
		t.Fatalf("spread=%d, want 2 (seeds only)", got)
	}
}

func TestSimulatorDuplicateSeeds(t *testing.T) {
	g := gen.Path(4, 0)
	sim := NewSimulator(g, NewIC())
	r := rng.New(1)
	if got := sim.Run(r, []uint32{1, 1, 1}); got != 1 {
		t.Fatalf("spread=%d, want 1", got)
	}
}

func TestSimulatorLTCertainStar(t *testing.T) {
	// Star hub -> leaves with weight 1: hub as seed activates everyone
	// (each leaf has a single in-edge of weight 1 ≥ any threshold...
	// threshold is U[0,1), weight 1 ≥ threshold always).
	g := gen.Star(6, 1)
	sim := NewSimulator(g, NewLT())
	r := rng.New(2)
	for i := 0; i < 20; i++ {
		if got := sim.Run(r, []uint32{0}); got != 6 {
			t.Fatalf("LT star spread=%d, want 6", got)
		}
	}
}

func TestSimulatorLTHalfWeight(t *testing.T) {
	// Single edge with weight 0.5: target activates iff threshold < 0.5,
	// so the two-node spread averages 1.5.
	g := graph.MustFromEdges(2, []graph.Edge{{From: 0, To: 1, Weight: 0.5}})
	sim := NewSimulator(g, NewLT())
	r := rng.New(3)
	const trials = 50000
	total := 0
	for i := 0; i < trials; i++ {
		total += sim.Run(r, []uint32{0})
	}
	mean := float64(total) / trials
	if math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("LT mean spread %v, want about 1.5", mean)
	}
}

func TestSimulatorRunActivated(t *testing.T) {
	g := gen.Path(5, 1)
	sim := NewSimulator(g, NewIC())
	r := rng.New(1)
	got := sim.RunActivated(r, []uint32{2})
	if len(got) != 3 {
		t.Fatalf("activated=%v", got)
	}
	want := map[uint32]bool{2: true, 3: true, 4: true}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected activation %d", v)
		}
	}
}

func TestICTriggerEquivalence(t *testing.T) {
	// The generic triggering path with ICTrigger must match the IC fast
	// path in mean spread.
	g := gen.ErdosRenyiGnm(80, 400, rng.New(10))
	graph.AssignWeightedCascade(g)
	seeds := []uint32{0, 1, 2}
	meanOf := func(m Model, seed uint64) float64 {
		sim := NewSimulator(g, m)
		r := rng.New(seed)
		const trials = 20000
		total := 0
		for i := 0; i < trials; i++ {
			total += sim.Run(r, seeds)
		}
		return float64(total) / trials
	}
	fast := meanOf(NewIC(), 1)
	generic := meanOf(NewTriggering(ICTrigger{}), 2)
	if math.Abs(fast-generic) > 0.05*fast+0.2 {
		t.Fatalf("IC fast path %v vs triggering path %v", fast, generic)
	}
}

func TestLTTriggerEquivalence(t *testing.T) {
	// LT via thresholds (fast path) and LT via singleton triggering sets
	// must have the same spread distribution (Kempe et al.'s
	// equivalence).
	g := gen.ErdosRenyiGnm(80, 400, rng.New(20))
	graph.AssignRandomNormalizedLT(g, rng.New(21))
	seeds := []uint32{0, 1, 2}
	meanOf := func(m Model, seed uint64) float64 {
		sim := NewSimulator(g, m)
		r := rng.New(seed)
		const trials = 20000
		total := 0
		for i := 0; i < trials; i++ {
			total += sim.Run(r, seeds)
		}
		return float64(total) / trials
	}
	fast := meanOf(NewLT(), 1)
	generic := meanOf(NewTriggering(LTTrigger{}), 2)
	if math.Abs(fast-generic) > 0.05*fast+0.2 {
		t.Fatalf("LT fast path %v vs triggering path %v", fast, generic)
	}
}

// TestCorollary1 checks E[n·F_R(S)] = E[I(S)] (Corollary 1): the fraction
// of random RR sets covered by S, scaled by n, estimates the spread.
func TestCorollary1(t *testing.T) {
	g := gen.ErdosRenyiGnm(50, 250, rng.New(30))
	graph.AssignWeightedCascade(g)
	for _, model := range []Model{NewIC(), NewLT()} {
		seeds := []uint32{0, 7, 13}
		// RR-side estimate.
		s := NewRRSampler(g, model)
		r := rng.New(31)
		const rrTrials = 40000
		covered := 0
		inS := map[uint32]bool{0: true, 7: true, 13: true}
		var buf []uint32
		for i := 0; i < rrTrials; i++ {
			buf, _ = s.Sample(r, buf[:0])
			for _, v := range buf {
				if inS[v] {
					covered++
					break
				}
			}
		}
		rrEst := float64(g.N()) * float64(covered) / rrTrials
		// Forward MC estimate.
		sim := NewSimulator(g, model)
		r2 := rng.New(32)
		const mcTrials = 40000
		total := 0
		for i := 0; i < mcTrials; i++ {
			total += sim.Run(r2, seeds)
		}
		mcEst := float64(total) / mcTrials
		if math.Abs(rrEst-mcEst) > 0.05*mcEst+0.3 {
			t.Fatalf("%v: Corollary 1 violated: RR estimate %v vs MC %v", model, rrEst, mcEst)
		}
	}
}

func TestNewTriggeringNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTriggering(nil) did not panic")
		}
	}()
	NewTriggering(nil)
}

func TestKindString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" || Triggering.String() != "Triggering" {
		t.Fatal("Kind.String broken")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind empty")
	}
	if NewIC().String() != "IC" {
		t.Fatal("Model.String broken")
	}
}

func TestSelfLoopHarmless(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{
		{From: 0, To: 0, Weight: 1},
		{From: 0, To: 1, Weight: 1},
	})
	sim := NewSimulator(g, NewIC())
	r := rng.New(1)
	if got := sim.Run(r, []uint32{0}); got != 2 {
		t.Fatalf("spread=%d, want 2", got)
	}
	s := NewRRSampler(g, NewIC())
	rr, _ := s.SampleFrom(r, 0, nil)
	if len(rr) != 1 {
		t.Fatalf("rr=%v, want just root despite self-loop", rr)
	}
}

func BenchmarkRRSampleIC(b *testing.B) {
	g := gen.ChungLuDirected(10000, 100000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	s := NewRRSampler(g, NewIC())
	r := rng.New(2)
	var buf []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = s.Sample(r, buf[:0])
	}
}

func BenchmarkRRSampleLT(b *testing.B) {
	g := gen.ChungLuDirected(10000, 100000, 2.4, 2.1, rng.New(1))
	graph.AssignRandomNormalizedLT(g, rng.New(3))
	s := NewRRSampler(g, NewLT())
	r := rng.New(2)
	var buf []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = s.Sample(r, buf[:0])
	}
}

func BenchmarkCascadeIC(b *testing.B) {
	g := gen.ChungLuDirected(10000, 100000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	sim := NewSimulator(g, NewIC())
	r := rng.New(2)
	seeds := []uint32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(r, seeds)
	}
}
