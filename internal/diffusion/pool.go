package diffusion

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Sampler pooling. A query-serving process builds one RRSampler per
// worker per sampling call, and each construction allocates an n-entry
// visited-mark array — for a large graph under heavy traffic that is
// megabytes of garbage per query. The pool recycles sampler scratch
// across calls (and across graphs: the epoch scheme below makes reuse
// safe without clearing), so steady-state sampling allocates nothing.
//
// Reuse safety: a sampler's mark entries only ever hold epochs its own
// counter has issued, and the counter is monotone for the lifetime of the
// sampler object (nextEpoch hard-resets on wrap). Rebinding a pooled
// sampler to a different graph therefore needs no O(n) clear — every
// stale mark is strictly below the next epoch, exactly as within a single
// graph's run. Only a graph with more nodes than the mark array has
// capacity for forces a fresh allocation.
var samplerPool sync.Pool

var samplerPoolHits, samplerPoolMisses atomic.Int64

// samplerPoolBytes approximates bytes currently parked in the pool:
// footprints are added on Put and subtracted on every Get (whether the
// sampler is reused or dropped as too small). sync.Pool may free
// entries under GC pressure without notice, so this is an upper bound
// on retention, clamped at zero on read — documented as best-effort in
// the capacity ledger.
var samplerPoolBytes atomic.Int64

// footprint is the sampler's recycled scratch: the visited-mark array
// plus the BFS queue and LT trigger buffer.
func (s *RRSampler) footprint() int64 {
	return int64(cap(s.mark))*4 + int64(cap(s.queue))*4 + int64(cap(s.trig))*4
}

// AcquireSampler returns a sampler for (g, model, cfg), recycling scratch
// from the process-wide pool when a pooled sampler's mark array is large
// enough. Pair with ReleaseSampler; a sampler must not be used after
// release.
func AcquireSampler(g *graph.Graph, model Model, cfg SampleConfig) *RRSampler {
	if v := samplerPool.Get(); v != nil {
		s := v.(*RRSampler)
		samplerPoolBytes.Add(-s.footprint())
		if cap(s.mark) >= g.N() {
			s.g, s.model, s.cfg = g, model, cfg
			s.mark = s.mark[:g.N()]
			samplerPoolHits.Add(1)
			return s
		}
		// Too small for this graph: drop it for the GC and build fresh.
	}
	samplerPoolMisses.Add(1)
	return NewRRSamplerConfig(g, model, cfg)
}

// ReleaseSampler returns a sampler to the pool. It clears the graph,
// model, and config references so the pool never pins a snapshot or an
// audience profile in memory.
func ReleaseSampler(s *RRSampler) {
	if s == nil {
		return
	}
	s.g = nil
	s.model = Model{}
	s.cfg = SampleConfig{}
	samplerPoolBytes.Add(s.footprint())
	samplerPool.Put(s)
}

// SamplerPoolStats reports the process-wide sampler pool reuse counters:
// hits (acquisitions served from the pool) and misses (fresh
// constructions). Exposed for operational visibility (/v1/stats).
func SamplerPoolStats() (hits, misses int64) {
	return samplerPoolHits.Load(), samplerPoolMisses.Load()
}

// SamplerPoolBytes reports the approximate bytes of sampler scratch
// currently parked in the pool (best effort: the GC may free pooled
// entries without notice, so this upper-bounds actual retention).
func SamplerPoolBytes() int64 {
	if b := samplerPoolBytes.Load(); b > 0 {
		return b
	}
	return 0
}
