package diffusion

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestSampleTracedMatchesSample: tracing must not change the random draws
// — the member set and width from SampleTraced equal Sample's from the
// same stream, for every model family.
func TestSampleTracedMatchesSample(t *testing.T) {
	g := gen.ErdosRenyiGnm(200, 900, rng.New(7))
	graph.AssignWeightedCascade(g)
	models := map[string]Model{
		"ic":            NewIC(),
		"lt":            NewLT(),
		"ic-as-trigger": NewTriggering(ICTrigger{}),
	}
	for name, model := range models {
		plain := NewRRSampler(g, model)
		traced := NewRRSampler(g, model)
		for i := 0; i < 200; i++ {
			r1 := rng.New(uint64(i) * 31)
			r2 := rng.New(uint64(i) * 31)
			set1, w1 := plain.Sample(r1, nil)
			set2, trace, w2 := traced.SampleTraced(r2, nil, nil)
			if w1 != w2 || len(set1) != len(set2) {
				t.Fatalf("%s sample %d: traced diverged: width %d vs %d, size %d vs %d",
					name, i, w1, w2, len(set1), len(set2))
			}
			for j := range set1 {
				if set1[j] != set2[j] {
					t.Fatalf("%s sample %d: member %d differs: %d vs %d", name, i, j, set1[j], set2[j])
				}
			}
			if len(trace) != len(set2)-1 {
				t.Fatalf("%s sample %d: %d members need %d discovery edges, got %d",
					name, i, len(set2), len(set2)-1, len(trace))
			}
			// The post-sample rng states must agree too: the traced path
			// consumed exactly the same draws.
			if r1.Uint64() != r2.Uint64() {
				t.Fatalf("%s sample %d: rng streams diverged", name, i)
			}
		}
	}
}

// TestSampleTracedStructure: every discovery edge exists in G, points from
// a later-discovered member to an earlier one, and the union of discovery
// edges spans the set (each non-root member appears exactly once as From).
func TestSampleTracedStructure(t *testing.T) {
	g := gen.ErdosRenyiGnm(150, 700, rng.New(11))
	graph.AssignWeightedCascade(g)
	for _, model := range []Model{NewIC(), NewLT()} {
		s := NewRRSampler(g, model)
		r := rng.New(99)
		for i := 0; i < 100; i++ {
			set, trace, _ := s.SampleTraced(r, nil, nil)
			pos := make(map[uint32]int, len(set))
			for j, v := range set {
				pos[v] = j
			}
			seen := make(map[uint32]bool, len(trace))
			for _, e := range trace {
				if !edgeExists(g, e.From, e.To) {
					t.Fatalf("%v: trace edge %d->%d not in graph", model, e.From, e.To)
				}
				pf, okF := pos[e.From]
				pt, okT := pos[e.To]
				if !okF || !okT {
					t.Fatalf("%v: trace edge %d->%d has a non-member endpoint", model, e.From, e.To)
				}
				if pf <= pt {
					t.Fatalf("%v: discovery edge %d->%d does not point backwards in discovery order", model, e.From, e.To)
				}
				if seen[e.From] {
					t.Fatalf("%v: member %d discovered twice", model, e.From)
				}
				seen[e.From] = true
			}
			if len(seen) != len(set)-1 {
				t.Fatalf("%v: %d members, %d discovered", model, len(set), len(seen))
			}
		}
	}
}

// TestTraceCollection exercises the arena container.
func TestTraceCollection(t *testing.T) {
	var c TraceCollection
	c.Append([]TraceEdge{{1, 2}, {3, 4}})
	c.Append(nil)
	c.Append([]TraceEdge{{5, 6}})
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.Set(0); len(got) != 2 || got[1] != (TraceEdge{3, 4}) {
		t.Fatalf("set 0 = %v", got)
	}
	if got := c.Set(1); len(got) != 0 {
		t.Fatalf("set 1 = %v", got)
	}
	if got := c.Set(2); len(got) != 1 || got[0] != (TraceEdge{5, 6}) {
		t.Fatalf("set 2 = %v", got)
	}
	if c.MemoryBytes() <= 0 {
		t.Fatal("memory accounting")
	}
}
