package diffusion

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestLTDominatesWCIC: for identical per-edge weights w(e) = 1/indeg(v),
// LT activation probability given a active in-neighbors is a/d, which
// dominates IC's 1 − (1 − 1/d)^a by convexity. The LT mean spread must
// therefore be at least the IC mean spread (up to Monte-Carlo noise) for
// the same seed set. This is also the direction of the paper's Figure 5
// (LT spreads exceed IC spreads on NetHEPT).
func TestLTDominatesWCIC(t *testing.T) {
	g := gen.ChungLuUndirected(2000, 4100, 2.6, rng.New(1))
	graph.AssignWeightedCascade(g) // w(e) = 1/indeg: valid for IC and LT
	seeds := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	meanOf := func(m Model, seed uint64) float64 {
		sim := NewSimulator(g, m)
		r := rng.New(seed)
		const trials = 20000
		total := 0
		for i := 0; i < trials; i++ {
			total += sim.Run(r, seeds)
		}
		return float64(total) / trials
	}
	ic := meanOf(NewIC(), 2)
	lt := meanOf(NewLT(), 3)
	t.Logf("IC-WC spread %.2f, LT spread %.2f", ic, lt)
	if lt < ic*0.98 {
		t.Fatalf("LT spread %v below IC spread %v — LT must dominate for equal weights", lt, ic)
	}
}
