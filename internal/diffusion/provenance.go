package diffusion

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Edge provenance for RR sets.
//
// A traced sample records, alongside the members of the RR set, its
// discovery edges: the edges of G whose reverse traversal brought a new
// node into the set (the reverse-BFS tree under IC and the general
// triggering model, the chain edges under LT). Provenance is what lets an
// evolving-graph maintainer reason about which sampled sets a specific
// edge deletion could have influenced (internal/evolve.DeltaImpact): a
// deleted edge that no trace used cannot have changed any set's
// membership, which bounds from below how many sets a mutation batch
// really perturbed.
//
// Tracing changes no random draws: SampleTraced consumes the rng stream
// exactly as Sample does, so a traced and an untraced sample from the
// same stream return identical member sets and widths. That equivalence
// is asserted by TestSampleTracedMatchesSample.

// TraceEdge is one discovery edge, directed as in G: the traversal
// reached From while expanding To (reverse BFS walks edges backwards).
type TraceEdge struct {
	From, To uint32
}

// TraceCollection is a flat arena of per-set traces, parallel to an
// RRCollection: the discovery edges of set i live at Flat[Off[i]:Off[i+1]].
// Set i with k members always has exactly k−1 discovery edges.
type TraceCollection struct {
	Flat []TraceEdge
	Off  []int64
}

// Count returns the number of traced sets.
func (c *TraceCollection) Count() int { return len(c.Off) - 1 }

// Set returns the discovery edges of set i (aliasing internal storage).
func (c *TraceCollection) Set(i int) []TraceEdge { return c.Flat[c.Off[i]:c.Off[i+1]] }

// Append adds one trace.
func (c *TraceCollection) Append(trace []TraceEdge) {
	if len(c.Off) == 0 {
		c.Off = append(c.Off, 0)
	}
	c.Flat = append(c.Flat, trace...)
	c.Off = append(c.Off, int64(len(c.Flat)))
}

// MemoryBytes returns the approximate heap bytes held by the collection.
func (c *TraceCollection) MemoryBytes() int64 {
	return int64(cap(c.Flat))*8 + int64(cap(c.Off))*8
}

// SampleTraced generates one RR set like Sample while also appending its
// discovery edges to trace. The rng consumption is identical to Sample's,
// so for the same stream the member set and width are bit-identical.
func (s *RRSampler) SampleTraced(r *rng.Rand, dst []uint32, trace []TraceEdge) ([]uint32, []TraceEdge, int64) {
	root := uint32(r.Intn(s.g.N()))
	return s.SampleFromTraced(r, root, dst, trace)
}

// SampleFromTraced is SampleTraced with an explicit root.
func (s *RRSampler) SampleFromTraced(r *rng.Rand, root uint32, dst []uint32, trace []TraceEdge) ([]uint32, []TraceEdge, int64) {
	switch s.model.kind {
	case IC:
		return s.sampleICTraced(r, root, dst, trace)
	case LT:
		return s.sampleLTTraced(r, root, dst, trace)
	default:
		return s.sampleTriggeringTraced(r, root, dst, trace)
	}
}

// sampleICTraced mirrors sampleIC; a discovery edge is recorded exactly
// when a retained coin brings an unvisited node in.
func (s *RRSampler) sampleICTraced(r *rng.Rand, root uint32, dst []uint32, trace []TraceEdge) ([]uint32, []TraceEdge, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	start := len(dst)
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	for head := start; head < len(dst); head++ {
		v := dst[head]
		src, w := g.InNeighbors(v)
		width += int64(len(src))
		for i := range src {
			u := src[i]
			if mark[u] == epoch {
				continue
			}
			if r.Bernoulli32(w[i]) {
				mark[u] = epoch
				dst = append(dst, u)
				trace = append(trace, TraceEdge{From: u, To: v})
			}
		}
	}
	return dst, trace, width
}

// sampleLTTraced mirrors sampleLT; each chain step is a discovery edge.
func (s *RRSampler) sampleLTTraced(r *rng.Rand, root uint32, dst []uint32, trace []TraceEdge) ([]uint32, []TraceEdge, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	v := root
	for {
		src, w := g.InNeighbors(v)
		width += int64(len(src))
		if len(src) == 0 {
			return dst, trace, width
		}
		x := r.Float32()
		var acc float32
		next := uint32(0)
		found := false
		for i := range src {
			acc += w[i]
			if x < acc {
				next = src[i]
				found = true
				break
			}
		}
		if !found {
			return dst, trace, width
		}
		if mark[next] == epoch {
			return dst, trace, width
		}
		mark[next] = epoch
		dst = append(dst, next)
		trace = append(trace, TraceEdge{From: next, To: v})
		v = next
	}
}

// sampleTriggeringTraced mirrors sampleTriggering; a discovery edge is
// recorded when an unvisited member of v's triggering set joins the set.
func (s *RRSampler) sampleTriggeringTraced(r *rng.Rand, root uint32, dst []uint32, trace []TraceEdge) ([]uint32, []TraceEdge, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	start := len(dst)
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	for head := start; head < len(dst); head++ {
		v := dst[head]
		width += int64(g.InDegree(v))
		s.trig = s.model.trigger.AppendTrigger(s.trig[:0], g, v, r)
		for _, u := range s.trig {
			if mark[u] != epoch {
				mark[u] = epoch
				dst = append(dst, u)
				trace = append(trace, TraceEdge{From: u, To: v})
			}
		}
	}
	return dst, trace, width
}

// edgeExists reports whether g has at least one u→v edge. Helper for
// trace-validity checks; O(indeg(v)).
func edgeExists(g *graph.Graph, u, v uint32) bool {
	src, _ := g.InNeighbors(v)
	for _, s := range src {
		if s == u {
			return true
		}
	}
	return false
}
