// Package diffusion implements the influence-propagation models of the
// paper — independent cascade (IC), linear threshold (LT), and the general
// triggering model — together with the two primitives every algorithm is
// built from:
//
//   - forward cascade simulation (Simulator): run the propagation process
//     from a seed set and count activations, as in Kempe et al.'s
//     Monte-Carlo estimation of E[I(S)];
//   - reverse-reachable set sampling (RRSampler): the randomized reverse
//     BFS of Borgs et al. and TIM (§3.1 and §4.2 of the paper).
//
// Model semantics follow §2.1 (IC) and §4.2 (triggering, with LT as the
// singleton-trigger special case). Edge weights live on the graph: under
// IC a weight is the propagation probability p(e); under LT it is the
// influence weight of the edge, with each node's in-weights summing to at
// most 1.
package diffusion

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Kind identifies a diffusion model family with a specialized fast path.
type Kind int

const (
	// IC is the independent cascade model: each edge e fires
	// independently with probability p(e).
	IC Kind = iota
	// LT is the linear threshold model: node v activates when the
	// weight of its active in-neighbors passes a uniform threshold.
	LT
	// Triggering is the general triggering model driven by a
	// user-supplied TriggerSampler.
	Triggering
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case IC:
		return "IC"
	case LT:
		return "LT"
	case Triggering:
		return "Triggering"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// TriggerSampler draws triggering sets for the general triggering model.
// A triggering set for node v is a subset of v's in-neighbors; v activates
// in a cascade as soon as any member of its (pre-sampled) triggering set is
// active (§4.2 of the paper).
type TriggerSampler interface {
	// AppendTrigger appends one sample of v's triggering set to dst and
	// returns the extended slice. Every appended node must be an
	// in-neighbor of v in g. The same (v, random-state) always yields
	// the same sample, so callers may sample lazily.
	AppendTrigger(dst []uint32, g *graph.Graph, v uint32, r *rng.Rand) []uint32
}

// Model selects a diffusion model. The zero value is the IC model.
type Model struct {
	kind    Kind
	trigger TriggerSampler
}

// NewIC returns the independent cascade model.
func NewIC() Model { return Model{kind: IC} }

// NewLT returns the linear threshold model.
func NewLT() Model { return Model{kind: LT} }

// NewTriggering returns a general triggering model driven by ts.
func NewTriggering(ts TriggerSampler) Model {
	if ts == nil {
		panic("diffusion: nil TriggerSampler")
	}
	return Model{kind: Triggering, trigger: ts}
}

// Kind returns the model family.
func (m Model) Kind() Kind { return m.kind }

// Trigger returns the custom sampler (nil unless Kind() == Triggering).
func (m Model) Trigger() TriggerSampler { return m.trigger }

// String implements fmt.Stringer.
func (m Model) String() string { return m.kind.String() }

// ICTrigger is a TriggerSampler that reproduces the IC model through the
// generic triggering path: each in-neighbor of v joins the triggering set
// independently with the probability on its edge. It exists to validate
// the equivalence claimed in §4.2 ("influence maximization under this
// distribution is equivalent to that under the IC model") and to serve as
// a template for custom models.
type ICTrigger struct{}

// AppendTrigger implements TriggerSampler.
func (ICTrigger) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, r *rng.Rand) []uint32 {
	src, w := g.InNeighbors(v)
	for i := range src {
		if r.Bernoulli32(w[i]) {
			dst = append(dst, src[i])
		}
	}
	return dst
}

// LTTrigger is a TriggerSampler that reproduces the LT model: the
// triggering set is a single in-neighbor picked with probability equal to
// its edge weight, or empty with the residual probability 1 - Σ weights.
type LTTrigger struct{}

// AppendTrigger implements TriggerSampler.
func (LTTrigger) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, r *rng.Rand) []uint32 {
	src, w := g.InNeighbors(v)
	if len(src) == 0 {
		return dst
	}
	x := r.Float32()
	var acc float32
	for i := range src {
		acc += w[i]
		if x < acc {
			return append(dst, src[i])
		}
	}
	return dst // residual mass: empty triggering set
}
