package diffusion

import (
	"context"
	"runtime"

	"repro/internal/graph"
)

// RRCollection is a flat arena of RR sets: the members of set i live at
// Flat[Off[i]:Off[i+1]]. Flat storage keeps millions of small sets cheap
// for the garbage collector and makes the Figure 12 memory accounting
// exact.
type RRCollection struct {
	Flat []uint32
	Off  []int64
	// TotalWidth is Σ w(R_i) (Equation 1), the input to EPT estimation.
	TotalWidth int64
}

// Count returns the number of RR sets.
func (c *RRCollection) Count() int { return len(c.Off) - 1 }

// Set returns the members of set i (aliasing internal storage).
func (c *RRCollection) Set(i int) []uint32 { return c.Flat[c.Off[i]:c.Off[i+1]] }

// TotalNodes returns Σ |R_i|.
func (c *RRCollection) TotalNodes() int64 { return int64(len(c.Flat)) }

// MemoryBytes returns the approximate heap bytes held by the collection.
func (c *RRCollection) MemoryBytes() int64 {
	return int64(cap(c.Flat))*4 + int64(cap(c.Off))*8
}

// Append adds one RR set.
func (c *RRCollection) Append(rr []uint32, width int64) {
	if len(c.Off) == 0 {
		c.Off = append(c.Off, 0)
	}
	c.Flat = append(c.Flat, rr...)
	c.Off = append(c.Off, int64(len(c.Flat)))
	c.TotalWidth += width
}

// Merge appends all sets of other to c.
func (c *RRCollection) Merge(other *RRCollection) {
	if len(c.Off) == 0 {
		c.Off = append(c.Off, 0)
	}
	base := int64(len(c.Flat))
	c.Flat = append(c.Flat, other.Flat...)
	for _, off := range other.Off[1:] {
		c.Off = append(c.Off, base+off)
	}
	c.TotalWidth += other.TotalWidth
}

// SampleOptions configures batch RR-set generation.
type SampleOptions struct {
	// Workers is the number of sampling goroutines (default GOMAXPROCS).
	Workers int
	// Seed selects the random stream. Batches that must be independent
	// should use distinct seeds.
	Seed uint64
	// Ctx, when non-nil, lets callers cancel a long sampling run: workers
	// poll it periodically and stop early, so the returned collection may
	// hold fewer than count sets. Callers that need to distinguish a
	// cancelled partial result should check Ctx.Err() afterwards.
	Ctx context.Context
	// Config selects the sampling scenario (root distribution, diffusion
	// horizon). The zero value is the paper's default and is bit-identical
	// to pre-config sampling.
	Config SampleConfig
}

func (o *SampleOptions) normalize(count int64) {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if int64(o.Workers) > count && count > 0 {
		o.Workers = int(count)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// SampleCollection generates count random RR sets in parallel and returns
// them as one collection. Set i is drawn from the keyed stream
// rng.New(Seed).Split(i) — the same per-index scheme ExtendCollection
// uses — so the result is deterministic for fixed (count, Seed) and
// byte-identical for every worker count: SampleCollection equals
// ExtendCollection on an empty collection with the same seed, which also
// makes freshly sampled collections prefix-extendable and incrementally
// repairable (internal/evolve) with no translation step.
//
// Workers write into the final arena through the zero-copy sharded path
// (see extendInto): there is no per-worker private collection and no
// serial merge, so peak memory during sampling is the arena itself plus
// O(Workers) small chunk buffers.
func SampleCollection(g *graph.Graph, model Model, count int64, opts SampleOptions) *RRCollection {
	out := &RRCollection{Off: []int64{0}}
	if count <= 0 || g.N() == 0 {
		return out
	}
	opts.normalize(count)
	// A cancelled context keeps the contiguous flushed prefix: the caller
	// asked for a best-effort partial collection, not an error.
	_, _ = extendInto(opts.Ctx, g, model, opts.Config, out, 0, count, opts.Seed, opts.Workers, nil, true)
	return out
}
