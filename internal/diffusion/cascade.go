package diffusion

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Simulator runs forward influence-propagation cascades (§2.1 of the
// paper) and reports the realized spread I(S) of a seed set. It is the
// Monte-Carlo oracle behind Kempe et al.'s Greedy, the spread numbers in
// Figures 5, 9 and 11, and the ground truth for this repo's tests.
//
// A simulator owns reusable scratch buffers; create one per goroutine.
type Simulator struct {
	g     *graph.Graph
	model Model

	mark  []uint32 // activation epoch marks
	epoch uint32
	queue []uint32

	// LT state: cumulative in-weight received and the node's sampled
	// threshold, both epoch-stamped via mark2.
	acc       []float32
	threshold []float32
	mark2     []uint32

	trig []uint32 // triggering scratch
}

// NewSimulator returns a forward-cascade simulator for g under model.
func NewSimulator(g *graph.Graph, model Model) *Simulator {
	s := &Simulator{
		g:     g,
		model: model,
		mark:  make([]uint32, g.N()),
		queue: make([]uint32, 0, 64),
	}
	if model.kind == LT {
		s.acc = make([]float32, g.N())
		s.threshold = make([]float32, g.N())
		s.mark2 = make([]uint32, g.N())
	}
	return s
}

func (s *Simulator) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		if s.mark2 != nil {
			for i := range s.mark2 {
				s.mark2[i] = 0
			}
		}
		s.epoch = 1
	}
}

// Run executes one cascade from the seed set and returns the number of
// activated nodes, I(S). Duplicate seeds are counted once; seeds must be
// valid node ids.
func (s *Simulator) Run(r *rng.Rand, seeds []uint32) int {
	return s.RunHorizon(r, seeds, 0)
}

// RunHorizon executes one cascade that stops after maxHops propagation
// rounds: seeds activate at round 0, and a node activates only if it is
// reached within maxHops rounds (Chen et al.'s time-critical diffusion).
// maxHops <= 0 means unlimited and is identical to Run, draw for draw.
func (s *Simulator) RunHorizon(r *rng.Rand, seeds []uint32, maxHops int) int {
	switch s.model.kind {
	case IC:
		return s.runIC(r, seeds, maxHops)
	case LT:
		return s.runLT(r, seeds, maxHops)
	default:
		return s.runTriggering(r, seeds, maxHops)
	}
}

// runIC: each newly activated node tries each out-edge once.
func (s *Simulator) runIC(r *rng.Rand, seeds []uint32, maxHops int) int {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	q := s.queue[:0]
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
		}
	}
	activated := len(q)
	depth, levelEnd := 0, len(q)
	for head := 0; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
		}
		if maxHops > 0 && depth >= maxHops {
			break
		}
		u := q[head]
		to, w := g.OutNeighbors(u)
		for i := range to {
			v := to[i]
			if mark[v] == epoch {
				continue
			}
			if r.Bernoulli32(w[i]) {
				mark[v] = epoch
				q = append(q, v)
				activated++
			}
		}
	}
	s.queue = q
	return activated
}

// runLT: thresholds are sampled lazily the first time a node receives
// weight; a node activates when its received weight passes its threshold.
func (s *Simulator) runLT(r *rng.Rand, seeds []uint32, maxHops int) int {
	s.nextEpoch()
	g, mark, mark2, epoch := s.g, s.mark, s.mark2, s.epoch
	q := s.queue[:0]
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
		}
	}
	activated := len(q)
	depth, levelEnd := 0, len(q)
	for head := 0; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
		}
		if maxHops > 0 && depth >= maxHops {
			break
		}
		u := q[head]
		to, w := g.OutNeighbors(u)
		for i := range to {
			v := to[i]
			if mark[v] == epoch {
				continue
			}
			if mark2[v] != epoch {
				mark2[v] = epoch
				s.acc[v] = 0
				s.threshold[v] = r.Float32()
			}
			s.acc[v] += w[i]
			if s.acc[v] >= s.threshold[v] {
				mark[v] = epoch
				q = append(q, v)
				activated++
			}
		}
	}
	s.queue = q
	return activated
}

// runTriggering: each node's triggering set is sampled once, lazily, the
// first time an active neighbor pokes it; the node activates if the poking
// neighbor (or any earlier-activated one) is in the set. Sampling lazily
// is equivalent to sampling everything upfront because the set does not
// depend on cascade history.
func (s *Simulator) runTriggering(r *rng.Rand, seeds []uint32, maxHops int) int {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	q := s.queue[:0]
	// trigSets[v] caches v's sampled triggering set for this run.
	trigSets := make(map[uint32][]uint32)
	inSet := func(v, u uint32) bool {
		set, ok := trigSets[v]
		if !ok {
			s.trig = s.model.trigger.AppendTrigger(s.trig[:0], g, v, r)
			set = append([]uint32(nil), s.trig...)
			trigSets[v] = set
		}
		for _, x := range set {
			if x == u {
				return true
			}
		}
		return false
	}
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
		}
	}
	activated := len(q)
	depth, levelEnd := 0, len(q)
	for head := 0; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
		}
		if maxHops > 0 && depth >= maxHops {
			break
		}
		u := q[head]
		to, _ := g.OutNeighbors(u)
		for i := range to {
			v := to[i]
			if mark[v] == epoch {
				continue
			}
			if inSet(v, u) {
				mark[v] = epoch
				q = append(q, v)
				activated++
			}
		}
	}
	s.queue = q
	return activated
}

// RunActivated executes one cascade and returns the activated nodes
// themselves (in activation order) rather than just their count. Slower
// than Run; used by tests and by consumers that need the activation set.
func (s *Simulator) RunActivated(r *rng.Rand, seeds []uint32) []uint32 {
	return s.RunActivatedHorizon(r, seeds, 0)
}

// RunActivatedHorizon is RunActivated under a maxHops horizon (see
// RunHorizon). It backs the weighted-audience Monte-Carlo ground truth in
// internal/spread, where each activated node contributes its own weight.
func (s *Simulator) RunActivatedHorizon(r *rng.Rand, seeds []uint32, maxHops int) []uint32 {
	// Reuse RunHorizon's machinery: it leaves the activation queue in
	// s.queue with marks set for the current epoch.
	n := s.RunHorizon(r, seeds, maxHops)
	out := make([]uint32, n)
	copy(out, s.queue[:n])
	return out
}
