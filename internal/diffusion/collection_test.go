package diffusion

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestCollectionAppend(t *testing.T) {
	col := &RRCollection{}
	col.Append([]uint32{1, 2, 3}, 7)
	col.Append([]uint32{4}, 2)
	col.Append(nil, 0)
	if col.Count() != 3 {
		t.Fatalf("count=%d", col.Count())
	}
	if got := col.Set(0); len(got) != 3 || got[0] != 1 {
		t.Fatalf("set0=%v", got)
	}
	if got := col.Set(1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("set1=%v", got)
	}
	if got := col.Set(2); len(got) != 0 {
		t.Fatalf("set2=%v", got)
	}
	if col.TotalWidth != 9 {
		t.Fatalf("width=%d", col.TotalWidth)
	}
	if col.TotalNodes() != 4 {
		t.Fatalf("nodes=%d", col.TotalNodes())
	}
	if col.MemoryBytes() <= 0 {
		t.Fatal("memory bytes not positive")
	}
}

func TestCollectionMerge(t *testing.T) {
	a := &RRCollection{}
	a.Append([]uint32{1}, 1)
	a.Append([]uint32{2, 3}, 4)
	b := &RRCollection{}
	b.Append([]uint32{5}, 2)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("count=%d", a.Count())
	}
	if got := a.Set(2); len(got) != 1 || got[0] != 5 {
		t.Fatalf("merged set=%v", got)
	}
	if a.TotalWidth != 7 {
		t.Fatalf("width=%d", a.TotalWidth)
	}
}

func TestCollectionMergeIntoEmpty(t *testing.T) {
	a := &RRCollection{}
	b := &RRCollection{}
	b.Append([]uint32{9, 8}, 3)
	a.Merge(b)
	if a.Count() != 1 || a.Set(0)[1] != 8 {
		t.Fatalf("merge into empty: %+v", a)
	}
}

func TestSampleCollectionCount(t *testing.T) {
	g := gen.Cycle(30, 0.5)
	for _, workers := range []int{1, 3, 8} {
		col := SampleCollection(g, NewIC(), 100, SampleOptions{Workers: workers, Seed: 1})
		if col.Count() != 100 {
			t.Fatalf("workers=%d: count=%d", workers, col.Count())
		}
		if col.TotalNodes() < 100 {
			t.Fatalf("workers=%d: every set contains at least its root", workers)
		}
	}
}

func TestSampleCollectionZeroAndEmpty(t *testing.T) {
	g := gen.Cycle(5, 0.5)
	col := SampleCollection(g, NewIC(), 0, SampleOptions{Seed: 1})
	if col.Count() != 0 {
		t.Fatalf("count=%d", col.Count())
	}
	empty := graph.MustFromEdges(0, nil)
	col = SampleCollection(empty, NewIC(), 10, SampleOptions{Seed: 1})
	if col.Count() != 0 {
		t.Fatalf("empty graph count=%d", col.Count())
	}
}

func TestSampleCollectionDeterministicPerWorkerCount(t *testing.T) {
	g := gen.ErdosRenyiGnm(50, 250, rng.New(2))
	graph.AssignWeightedCascade(g)
	a := SampleCollection(g, NewIC(), 64, SampleOptions{Workers: 4, Seed: 9})
	b := SampleCollection(g, NewIC(), 64, SampleOptions{Workers: 4, Seed: 9})
	if a.Count() != b.Count() || a.TotalWidth != b.TotalWidth {
		t.Fatal("same (seed, workers) produced different collections")
	}
	for i := range a.Flat {
		if a.Flat[i] != b.Flat[i] {
			t.Fatalf("flat arena differs at %d", i)
		}
	}
}

func TestSampleCollectionSeedMatters(t *testing.T) {
	g := gen.ErdosRenyiGnm(50, 250, rng.New(3))
	graph.AssignWeightedCascade(g)
	a := SampleCollection(g, NewIC(), 64, SampleOptions{Workers: 2, Seed: 1})
	b := SampleCollection(g, NewIC(), 64, SampleOptions{Workers: 2, Seed: 2})
	same := a.TotalNodes() == b.TotalNodes() && a.TotalWidth == b.TotalWidth
	if same {
		diff := false
		for i := range a.Flat {
			if i < len(b.Flat) && a.Flat[i] != b.Flat[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical collections")
		}
	}
}

func TestSampleCollectionWidthsConsistent(t *testing.T) {
	g := gen.ChungLuDirected(200, 1200, 2.4, 2.1, rng.New(4))
	graph.AssignWeightedCascade(g)
	col := SampleCollection(g, NewIC(), 300, SampleOptions{Workers: 1, Seed: 5})
	var recomputed int64
	for i := 0; i < col.Count(); i++ {
		recomputed += Width(g, col.Set(i))
	}
	if recomputed != col.TotalWidth {
		t.Fatalf("TotalWidth=%d, recomputed=%d", col.TotalWidth, recomputed)
	}
}

func TestSampleCollectionSetsAreDuplicateFree(t *testing.T) {
	g := gen.ChungLuDirected(100, 600, 2.4, 2.1, rng.New(6))
	graph.AssignWeightedCascade(g)
	col := SampleCollection(g, NewIC(), 200, SampleOptions{Workers: 1, Seed: 7})
	seen := map[uint32]int{}
	for i := 0; i < col.Count(); i++ {
		for k := range seen {
			delete(seen, k)
		}
		for _, v := range col.Set(i) {
			seen[v]++
			if seen[v] > 1 {
				t.Fatalf("set %d contains %d twice", i, v)
			}
		}
	}
}

// Property: for any count and worker split, the merged collection holds
// exactly count sets whose first member is a valid node.
func TestSampleCollectionQuick(t *testing.T) {
	g := gen.Cycle(20, 0.3)
	f := func(seed uint64, count uint8, workers uint8) bool {
		c := int64(count%50) + 1
		w := int(workers%8) + 1
		col := SampleCollection(g, NewIC(), c, SampleOptions{Workers: w, Seed: seed})
		if int64(col.Count()) != c {
			return false
		}
		for i := 0; i < col.Count(); i++ {
			set := col.Set(i)
			if len(set) == 0 || int(set[0]) >= g.N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
