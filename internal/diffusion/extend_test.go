package diffusion

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func extendTestGraph() *graph.Graph {
	g := gen.BarabasiAlbert(300, 3, rng.New(4))
	graph.AssignWeightedCascade(g)
	return g
}

// TestExtendPrefixDeterminism is the reuse-layer contract: extending a
// collection in two steps yields bit-identical sets to one big extension
// with the same seed, and the two-step widths agree set by set.
func TestExtendPrefixDeterminism(t *testing.T) {
	g := extendTestGraph()
	model := NewIC()
	const seed, mid, total = 99, 40, 150

	stepwise := &RRCollection{}
	widths, err := ExtendCollection(context.Background(), g, model, stepwise, mid, seed, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	widths, err = ExtendCollection(context.Background(), g, model, stepwise, total, seed, 3, widths)
	if err != nil {
		t.Fatal(err)
	}

	oneshot := &RRCollection{}
	oneWidths, err := ExtendCollection(context.Background(), g, model, oneshot, total, seed, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	if stepwise.Count() != total || oneshot.Count() != total {
		t.Fatalf("counts: stepwise=%d oneshot=%d want %d", stepwise.Count(), oneshot.Count(), total)
	}
	if stepwise.TotalWidth != oneshot.TotalWidth {
		t.Fatalf("total widths differ: %d vs %d", stepwise.TotalWidth, oneshot.TotalWidth)
	}
	for i := 0; i < total; i++ {
		a, b := stepwise.Set(i), oneshot.Set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d: sizes %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d member %d: %d vs %d", i, j, a[j], b[j])
			}
		}
		if widths[i] != oneWidths[i] {
			t.Fatalf("set %d width: %d vs %d", i, widths[i], oneWidths[i])
		}
	}
}

// TestExtendNoShrink: asking for fewer sets than present is a no-op.
func TestExtendNoShrink(t *testing.T) {
	g := extendTestGraph()
	col := &RRCollection{}
	if _, err := ExtendCollection(context.Background(), g, NewIC(), col, 30, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendCollection(context.Background(), g, NewIC(), col, 10, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 30 {
		t.Fatalf("count=%d, want 30 (no shrink)", col.Count())
	}
}

// TestExtendCancelled: a pre-cancelled context leaves the collection
// untouched and surfaces the context error.
func TestExtendCancelled(t *testing.T) {
	g := extendTestGraph()
	col := &RRCollection{}
	if _, err := ExtendCollection(context.Background(), g, NewIC(), col, 20, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExtendCollection(ctx, g, NewIC(), col, 10_000, 1, 1, nil)
	if err == nil {
		t.Fatal("want a context error")
	}
	if col.Count() != 20 {
		t.Fatalf("cancelled extension mutated the collection: count=%d", col.Count())
	}
}

// TestPrefixView: the view exposes exactly the first sets and survives
// later extensions of the parent.
func TestPrefixView(t *testing.T) {
	g := extendTestGraph()
	col := &RRCollection{}
	widths, err := ExtendCollection(context.Background(), g, NewIC(), col, 25, 7, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var w10 int64
	for _, w := range widths[:10] {
		w10 += w
	}
	view := col.Prefix(10, w10)
	wantFirst := append([]uint32(nil), col.Set(0)...)
	if view.Count() != 10 || view.TotalWidth != w10 {
		t.Fatalf("view count=%d width=%d, want 10/%d", view.Count(), view.TotalWidth, w10)
	}
	if _, err := ExtendCollection(context.Background(), g, NewIC(), col, 500, 7, 4, widths); err != nil {
		t.Fatal(err)
	}
	got := view.Set(0)
	if len(got) != len(wantFirst) {
		t.Fatalf("view set 0 changed size after parent extension")
	}
	for i := range got {
		if got[i] != wantFirst[i] {
			t.Fatal("view set 0 mutated after parent extension")
		}
	}
	if view.Prefix(99, 0).Count() != 10 {
		t.Fatal("Prefix must clamp to the view's own count")
	}
}

// TestSampleCollectionCancel: cancellation mid-run yields a partial
// collection rather than hanging.
func TestSampleCollectionCancel(t *testing.T) {
	g := extendTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	col := SampleCollection(g, NewIC(), 100_000, SampleOptions{Workers: 2, Seed: 1, Ctx: ctx})
	if col.Count() >= 100_000 {
		t.Fatalf("cancelled sampling completed anyway: %d sets", col.Count())
	}
}
