package diffusion

import (
	"context"
	"testing"
	"time"
)

// TestExtendPartialKeepsFlushedPrefix pins the budget-ratchet contract of
// ExtendCollectionConfigPartial: when the context dies mid-extension, the
// contiguous flushed prefix stays in the collection, its widths are
// reported, and — by prefix determinism — both the kept prefix and a
// follow-up extension to the full target are bit-identical to an
// uninterrupted run.
func TestExtendPartialKeepsFlushedPrefix(t *testing.T) {
	g := extendTestGraph()
	model := NewIC()
	const seed, total = 17, 20000

	// Find a deadline that cancels mid-run: start tiny and grow until the
	// extension keeps a strict partial prefix. On a machine fast enough to
	// finish 20k sets inside the smallest deadline the loop just falls
	// through to the complete case, which the invariants below still cover.
	col := &RRCollection{}
	var widths []int64
	var extErr error
	for deadline := 200 * time.Microsecond; ; deadline *= 2 {
		col = &RRCollection{}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		widths, extErr = ExtendCollectionConfigPartial(ctx, g, model, SampleConfig{}, col, total, seed, 4, nil)
		cancel()
		if extErr == nil || col.Count() > 0 || deadline > time.Minute {
			break
		}
	}

	kept := col.Count()
	if extErr != nil {
		if kept >= total {
			t.Fatalf("error %v but count %d >= total", extErr, kept)
		}
	} else if kept != total {
		t.Fatalf("no error but count %d != total %d", kept, total)
	}
	if len(widths) != kept {
		t.Fatalf("reported %d widths for %d kept sets", len(widths), kept)
	}
	var sum int64
	for _, w := range widths {
		sum += w
	}
	if sum != col.TotalWidth {
		t.Fatalf("widths sum %d != TotalWidth %d", sum, col.TotalWidth)
	}

	// The kept prefix must be exactly what an uninterrupted extension to
	// `kept` sets produces.
	if kept > 0 {
		fresh := &RRCollection{}
		if _, err := ExtendCollection(context.Background(), g, model, fresh, int64(kept), seed, 2, nil); err != nil {
			t.Fatal(err)
		}
		sameCollection(t, "kept prefix", col, fresh)
	}

	// Resuming the interrupted extension lands on the same bytes as one
	// uninterrupted run to the full target.
	if _, err := ExtendCollectionConfigPartial(context.Background(), g, model, SampleConfig{}, col, total, seed, 3, nil); err != nil {
		t.Fatal(err)
	}
	oneshot := &RRCollection{}
	if _, err := ExtendCollection(context.Background(), g, model, oneshot, total, seed, 1, nil); err != nil {
		t.Fatal(err)
	}
	sameCollection(t, "resumed", col, oneshot)
}

// TestExtendPartialNilAndDoneContexts covers the degenerate contexts: nil
// behaves like ExtendCollection, and an already-cancelled context keeps
// nothing but still errors.
func TestExtendPartialNilAndDoneContexts(t *testing.T) {
	g := extendTestGraph()
	model := NewIC()

	col := &RRCollection{}
	if _, err := ExtendCollectionConfigPartial(nil, g, model, SampleConfig{}, col, 50, 3, 2, nil); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 50 {
		t.Fatalf("count = %d", col.Count())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := col.Count()
	if _, err := ExtendCollectionConfigPartial(ctx, g, model, SampleConfig{}, col, 500, 3, 2, nil); err == nil {
		t.Fatal("cancelled context did not error")
	}
	// Workers poll every 64 sets, so a pre-cancelled context may still
	// flush a chunk or two — but never complete the target.
	if col.Count() < before || col.Count() >= 500 {
		t.Fatalf("count = %d after cancelled extension (was %d)", col.Count(), before)
	}
}
