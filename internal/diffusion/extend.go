package diffusion

import (
	"context"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// ExtendCollection grows col so that it holds total RR sets, sampling
// only the missing tail. Set i is always drawn from stream
// rng.New(seed).Split(i), regardless of how many ExtendCollection calls
// produced the collection — so extending to θ₁ and later to θ₂ > θ₁
// yields bit-identical sets to sampling θ₂ in one call with the same
// seed. That prefix determinism is what makes cached RR collections
// reusable across queries with growing θ: a warm cache can never change
// an answer, only skip the sampling a cold run would have done.
//
// The per-set widths of the newly sampled tail are appended to widths
// (which callers maintaining prefix sums can pass as nil to discard), and
// the extended slice is returned. Sampling parallelizes over opts.Workers
// with zero-copy sharded writes into the collection's own arena (see
// extendInto), so the result is independent of the worker count.
//
// If ctx is non-nil and is cancelled mid-extension, ExtendCollection
// stops early and returns ctx's error with the collection unchanged.
func ExtendCollection(ctx context.Context, g *graph.Graph, model Model, col *RRCollection, total int64, seed uint64, workers int, widths []int64) ([]int64, error) {
	return ExtendCollectionConfig(ctx, g, model, SampleConfig{}, col, total, seed, workers, widths)
}

// ExtendCollectionConfig is ExtendCollection under an explicit sampling
// scenario. Prefix determinism holds per (seed, cfg): set i depends only
// on (seed, i, g, model, cfg), so constrained collections — weighted
// roots, bounded horizon — are extendable and repairable exactly like
// default ones, as long as every call on a collection uses the same cfg.
// A zero cfg is bit-identical to ExtendCollection.
func ExtendCollectionConfig(ctx context.Context, g *graph.Graph, model Model, cfg SampleConfig, col *RRCollection, total int64, seed uint64, workers int, widths []int64) ([]int64, error) {
	if len(col.Off) == 0 {
		col.Off = append(col.Off, 0)
	}
	cur := int64(col.Count())
	if total <= cur || g.N() == 0 {
		return widths, ctxErr(ctx)
	}
	opts := SampleOptions{Workers: workers}
	opts.normalize(total - cur)
	return extendInto(ctx, g, model, cfg, col, cur, total, seed, opts.Workers, widths, false)
}

// ExtendCollectionConfigPartial is ExtendCollectionConfig except for its
// cancellation contract: when ctx is cancelled mid-extension, the
// contiguous flushed prefix of the tail is KEPT (its widths are appended
// to widths as usual) and ctx's error is returned. Because set i depends
// only on (seed, i, g, model, cfg), the kept prefix is exactly what a
// later extension would re-derive — so deadline-bounded callers (the
// tiered server's budgeted escalations) ratchet a shared collection
// toward θ across deadline misses instead of rolling their sampling work
// back. Callers must treat a non-nil error as "col may hold fewer than
// total sets" and reconcile their own width accounting from the returned
// slice.
func ExtendCollectionConfigPartial(ctx context.Context, g *graph.Graph, model Model, cfg SampleConfig, col *RRCollection, total int64, seed uint64, workers int, widths []int64) ([]int64, error) {
	if len(col.Off) == 0 {
		col.Off = append(col.Off, 0)
	}
	cur := int64(col.Count())
	if total <= cur || g.N() == 0 {
		return widths, ctxErr(ctx)
	}
	opts := SampleOptions{Workers: workers}
	opts.normalize(total - cur)
	return extendInto(ctx, g, model, cfg, col, cur, total, seed, opts.Workers, widths, true)
}

// extendChunkSets is the number of RR sets a worker samples per work
// chunk before depositing it for the ordered flush. Small enough that
// in-flight (sampled but not yet flushed) data stays a rounding error
// next to the arena, large enough that the per-chunk mutex handoff is
// amortized away.
const extendChunkSets = 256

// setChunk is one worker's in-flight batch of sampled sets: a private
// mini-arena (flat + relative end offsets) plus per-set widths. Chunks
// are recycled through the free list for the lifetime of one extendInto
// call, so steady-state sampling allocates nothing per chunk.
type setChunk struct {
	flat   []uint32
	ends   []int64
	widths []int64
}

func (c *setChunk) reset() {
	c.flat = c.flat[:0]
	c.ends = c.ends[:0]
	c.widths = c.widths[:0]
}

// extendInto samples sets [lo, total) from their keyed streams
// (rng.New(seed).Split(i) for set i) directly into col, in index order.
//
// This is the zero-copy sharded sampler: instead of per-worker private
// collections merged serially at the end — which costs a full serial
// memcpy and transiently doubles peak RR memory — workers claim small
// contiguous index chunks from a shared cursor, sample each chunk into a
// recycled buffer, and flush chunks into the final arena strictly in
// index order. Because every set's bytes depend only on (seed, index, g,
// model, cfg) and flushes are ordered, the arena is byte-identical for
// every worker count; because at most maxAhead chunks are ever in flight,
// peak memory is the arena itself plus O(workers) chunk buffers.
//
// The arena is grown once to an estimate of its final size (mean set size
// observed so far × sets remaining), so flushes are plain appends rather
// than repeated geometric reallocation.
//
// widths receives the per-set widths of the sampled tail, in index order.
// On a context error, col and widths are rolled back to their input state
// unless keepPartial is set, in which case the contiguous flushed prefix
// is kept (SampleCollection's cancellation contract).
func extendInto(ctx context.Context, g *graph.Graph, model Model, cfg SampleConfig, col *RRCollection, lo, total int64, seed uint64, workers int, widths []int64, keepPartial bool) ([]int64, error) {
	// Keep the input slice values (not just lengths): the rollback path
	// restores them wholesale, so a cancelled extension cannot leave the
	// collection pinning a near-final-capacity arena (or a total+1 offset
	// array) that the caller's memory accounting never sees. Writes past
	// the original lengths never touch the restored prefixes.
	origFlatSlice, origOffSlice, origWidth := col.Flat, col.Off, col.TotalWidth
	origWidthsSlice := widths
	origWidths := len(widths)

	missing := total - lo
	numChunks := (missing + extendChunkSets - 1) / extendChunkSets
	if int64(workers) > numChunks {
		workers = int(numChunks)
	}
	if workers < 1 {
		workers = 1
	}
	span := obs.StartSpan(ctx, "rr.extend").
		Attr("from", lo).Attr("to", total).Attr("workers", int64(workers))
	maxAhead := int64(workers) * 4

	// The set count after this call is known exactly: reserve Off (and the
	// widths tail) up front so flushing never reallocates them.
	if int64(cap(col.Off)) < total+1 {
		off := make([]int64, len(col.Off), total+1)
		copy(off, col.Off)
		col.Off = off
	}
	if cap(widths)-origWidths < int(missing) {
		w := make([]int64, origWidths, int64(origWidths)+missing)
		copy(w, widths)
		widths = w
	}

	base := rng.New(seed)
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		nextClaim int64 // next chunk index to hand to a worker
		nextFlush int64 // first chunk not yet flushed into col
		pending   = make(map[int64]*setChunk, maxAhead)
		free      []*setChunk
		failed    bool // a worker observed ctx cancellation
	)

	flushLocked := func(ch *setChunk) {
		need := len(col.Flat) + len(ch.flat)
		if need > cap(col.Flat) {
			// Grow to an estimate of the final arena: mean set size over
			// everything flushed so far (including any pre-existing sets)
			// times the sets still to come. The slack decays with the
			// evidence — RR-set sizes are heavy-tailed, so a mean taken
			// over the first chunk alone can undershoot badly, and a
			// re-grow late in the run would transiently hold two
			// near-final arenas (≈ the merge baseline's peak). ~2 relative
			// standard errors of padding makes that rare; when it still
			// happens, the cost is one extra copy-grow, never a wrong
			// result. Peak RR memory therefore stays ≈ one arena.
			setsNow := int64(len(col.Off)) + int64(len(ch.ends)) - 1
			mean := float64(need) / float64(setsNow)
			slack := 1.05 + 1.0/math.Sqrt(float64(setsNow))
			est := need + int(mean*float64(total-setsNow)*slack) + 1024
			if est < need {
				est = need
			}
			grown := make([]uint32, len(col.Flat), est)
			copy(grown, col.Flat)
			col.Flat = grown
		}
		flatBase := int64(len(col.Flat))
		col.Flat = append(col.Flat, ch.flat...)
		for _, end := range ch.ends {
			col.Off = append(col.Off, flatBase+end)
		}
		for _, w := range ch.widths {
			col.TotalWidth += w
		}
		widths = append(widths, ch.widths...)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sampler := AcquireSampler(g, model, cfg)
			defer ReleaseSampler(sampler)
			var stream rng.Rand
			for {
				mu.Lock()
				for nextClaim-nextFlush >= maxAhead && !failed {
					cond.Wait()
				}
				if failed || nextClaim >= numChunks {
					mu.Unlock()
					return
				}
				c := nextClaim
				nextClaim++
				var ch *setChunk
				if n := len(free); n > 0 {
					ch = free[n-1]
					free = free[:n-1]
				} else {
					ch = &setChunk{}
				}
				mu.Unlock()

				start := lo + c*extendChunkSets
				end := start + extendChunkSets
				if end > total {
					end = total
				}
				ch.reset()
				ok := true
				for i := start; i < end; i++ {
					if ctx != nil && (i-start)&63 == 0 && ctx.Err() != nil {
						ok = false
						break
					}
					base.SplitInto(uint64(i), &stream)
					var width int64
					ch.flat, width = sampler.Sample(&stream, ch.flat)
					ch.ends = append(ch.ends, int64(len(ch.flat)))
					ch.widths = append(ch.widths, width)
				}

				mu.Lock()
				if !ok {
					failed = true
					free = append(free, ch)
					cond.Broadcast()
					mu.Unlock()
					return
				}
				pending[c] = ch
				for {
					ready, exists := pending[nextFlush]
					if !exists {
						break
					}
					delete(pending, nextFlush)
					flushLocked(ready)
					nextFlush++
					free = append(free, ready)
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// A context that expired only after the last chunk flushed did not
	// cost any sets: the extension is complete, and reporting the late
	// cancellation would make callers discard (or re-account) a full
	// collection.
	if err := ctxErr(ctx); err != nil && nextFlush < numChunks {
		if keepPartial {
			span.Attr("sampled", int64(col.Count())-lo).Attr("partial", true).End()
			return widths, err
		}
		col.Flat = origFlatSlice
		col.Off = origOffSlice
		col.TotalWidth = origWidth
		span.Attr("sampled", int64(0)).Attr("rolled_back", true).End()
		return origWidthsSlice, err
	}
	span.Attr("sampled", total-lo).End()
	return widths, nil
}

// ctxErr is ctx.Err() tolerant of a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Prefix returns a read-only view of the first count sets of c, with
// totalWidth as its Σw(R). The view aliases c's storage: it stays valid
// even if c is extended afterwards (appends either write past the view's
// length or relocate into a new array), but callers must not mutate it.
func (c *RRCollection) Prefix(count int, totalWidth int64) *RRCollection {
	if count > c.Count() {
		count = c.Count()
	}
	if count < 0 {
		count = 0
	}
	return &RRCollection{
		Flat:       c.Flat[:c.Off[count]],
		Off:        c.Off[:count+1],
		TotalWidth: totalWidth,
	}
}
