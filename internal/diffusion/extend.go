package diffusion

import (
	"context"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ExtendCollection grows col so that it holds total RR sets, sampling
// only the missing tail. Set i is always drawn from stream
// rng.New(seed).Split(i), regardless of how many ExtendCollection calls
// produced the collection — so extending to θ₁ and later to θ₂ > θ₁
// yields bit-identical sets to sampling θ₂ in one call with the same
// seed. That prefix determinism is what makes cached RR collections
// reusable across queries with growing θ: a warm cache can never change
// an answer, only skip the sampling a cold run would have done.
//
// The per-set widths of the newly sampled tail are appended to widths
// (which callers maintaining prefix sums can pass as nil to discard), and
// the extended slice is returned. Sampling parallelizes over opts.Workers
// with contiguous index ranges merged in order, so the result is
// independent of the worker count.
//
// If ctx is non-nil and is cancelled mid-extension, ExtendCollection
// stops early and returns ctx's error with the collection unchanged.
func ExtendCollection(ctx context.Context, g *graph.Graph, model Model, col *RRCollection, total int64, seed uint64, workers int, widths []int64) ([]int64, error) {
	return ExtendCollectionConfig(ctx, g, model, SampleConfig{}, col, total, seed, workers, widths)
}

// ExtendCollectionConfig is ExtendCollection under an explicit sampling
// scenario. Prefix determinism holds per (seed, cfg): set i depends only
// on (seed, i, g, model, cfg), so constrained collections — weighted
// roots, bounded horizon — are extendable and repairable exactly like
// default ones, as long as every call on a collection uses the same cfg.
// A zero cfg is bit-identical to ExtendCollection.
func ExtendCollectionConfig(ctx context.Context, g *graph.Graph, model Model, cfg SampleConfig, col *RRCollection, total int64, seed uint64, workers int, widths []int64) ([]int64, error) {
	if len(col.Off) == 0 {
		col.Off = append(col.Off, 0)
	}
	cur := int64(col.Count())
	if total <= cur || g.N() == 0 {
		return widths, ctxErr(ctx)
	}
	missing := total - cur
	opts := SampleOptions{Workers: workers}
	opts.normalize(missing)

	base := rng.New(seed)
	parts := make([]*RRCollection, opts.Workers)
	partWidths := make([][]int64, opts.Workers)
	var wg sync.WaitGroup
	lo := cur
	for w := 0; w < opts.Workers; w++ {
		quota := missing / int64(opts.Workers)
		if int64(w) < missing%int64(opts.Workers) {
			quota++
		}
		hi := lo + quota
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			sampler := NewRRSamplerConfig(g, model, cfg)
			part := &RRCollection{Off: make([]int64, 1, hi-lo+1)}
			ws := make([]int64, 0, hi-lo)
			var buf []uint32
			var stream rng.Rand
			for i := lo; i < hi; i++ {
				if ctx != nil && (i-lo)&63 == 0 && ctx.Err() != nil {
					return
				}
				base.SplitInto(uint64(i), &stream)
				var width int64
				buf, width = sampler.Sample(&stream, buf[:0])
				part.Append(buf, width)
				ws = append(ws, width)
			}
			parts[w] = part
			partWidths[w] = ws
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return widths, err
	}
	for w := range parts {
		if parts[w] == nil { // a worker bailed on a cancelled ctx
			return widths, context.Canceled
		}
	}
	for w := range parts {
		col.Merge(parts[w])
		widths = append(widths, partWidths[w]...)
	}
	return widths, nil
}

// ctxErr is ctx.Err() tolerant of a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Prefix returns a read-only view of the first count sets of c, with
// totalWidth as its Σw(R). The view aliases c's storage: it stays valid
// even if c is extended afterwards (appends either write past the view's
// length or relocate into a new array), but callers must not mutate it.
func (c *RRCollection) Prefix(count int, totalWidth int64) *RRCollection {
	if count > c.Count() {
		count = c.Count()
	}
	if count < 0 {
		count = 0
	}
	return &RRCollection{
		Flat:       c.Flat[:c.Off[count]],
		Off:        c.Off[:count+1],
		TotalWidth: totalWidth,
	}
}
