package diffusion

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Ready-made TriggerSampler implementations beyond the IC/LT embeddings.
// They demonstrate the §4.2 generality of the triggering model and give
// applications useful diffusion variants without writing a sampler from
// scratch. All of them define valid triggering distributions (the sample
// depends only on v's in-neighborhood and fresh randomness), so every
// TIM/TIM+ guarantee carries over via Lemma 9.

// BoundedTrigger samples each in-neighbor independently with its edge
// probability (like IC) but keeps at most Max of the successes, chosen
// uniformly among them. It models attention-limited adoption: a user
// may hear about a product from everyone, yet only a few contacts can
// actually trigger adoption.
type BoundedTrigger struct {
	// Max is the triggering-set size cap (values < 1 behave as 1).
	Max int
}

// AppendTrigger implements TriggerSampler.
func (b BoundedTrigger) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, r *rng.Rand) []uint32 {
	maxKeep := b.Max
	if maxKeep < 1 {
		maxKeep = 1
	}
	src, w := g.InNeighbors(v)
	start := len(dst)
	kept := 0
	for i := range src {
		if !r.Bernoulli32(w[i]) {
			continue
		}
		if kept < maxKeep {
			dst = append(dst, src[i])
			kept++
			continue
		}
		// Reservoir step: the (kept+1)-th success replaces a uniform
		// slot with probability maxKeep/(kept+1), keeping the retained
		// subset uniform among all successes.
		kept++
		j := r.Intn(kept)
		if j < maxKeep {
			dst[start+j] = src[i]
		}
	}
	return dst
}

// ScaledICTrigger runs IC with every edge probability multiplied by
// Factor (clamped to [0, 1]). It supports sensitivity studies — "how do
// the chosen seeds change if all influence estimates are 20% off?" —
// without rewriting graph weights.
type ScaledICTrigger struct {
	Factor float64
}

// AppendTrigger implements TriggerSampler.
func (s ScaledICTrigger) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, r *rng.Rand) []uint32 {
	src, w := g.InNeighbors(v)
	for i := range src {
		p := float64(w[i]) * s.Factor
		if p > 1 {
			p = 1
		}
		if r.Bernoulli(p) {
			dst = append(dst, src[i])
		}
	}
	return dst
}

// TopWeightTrigger deterministically triggers on the Top highest-weight
// in-neighbors (ties by position). It models "trusted sources": a node
// always adopts once any of its strongest ties adopts. The triggering
// distribution is a point mass, which is still a valid triggering
// distribution.
type TopWeightTrigger struct {
	Top int
}

// AppendTrigger implements TriggerSampler.
func (t TopWeightTrigger) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, _ *rng.Rand) []uint32 {
	top := t.Top
	if top < 1 {
		top = 1
	}
	src, w := g.InNeighbors(v)
	if len(src) <= top {
		return append(dst, src...)
	}
	// Partial selection of the top weights; in-neighborhoods are small,
	// so a simple selection pass per slot is fine.
	taken := make([]bool, len(src))
	for s := 0; s < top; s++ {
		best := -1
		for i := range src {
			if taken[i] {
				continue
			}
			if best < 0 || w[i] > w[best] {
				best = i
			}
		}
		taken[best] = true
		dst = append(dst, src[best])
	}
	return dst
}
