package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/evolve"
	"repro/internal/fault"
	"repro/internal/graph"
)

func testBatch(i int) evolve.Batch {
	return evolve.Batch{
		AddNodes: i % 2,
		Inserts:  []graph.Edge{{From: uint32(i), To: uint32(i + 1), Weight: 0.5}},
		Deletes: func() []evolve.EdgeKey {
			if i%2 == 1 {
				return []evolve.EdgeKey{{From: uint32(i - 1), To: uint32(i)}}
			}
			return nil
		}(),
	}
}

func quietOpts() Options {
	return Options{Sync: SyncAlways, Logf: func(string, ...any) {}}
}

// openAppend opens dir and appends records v(from)..v(to).
func openAppend(t *testing.T, dir string, from, to int) {
	t.Helper()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	for v := from; v <= to; v++ {
		if err := l.Append(Record{Version: uint64(v), Batch: testBatch(v)}); err != nil {
			t.Fatalf("append v%d: %v", v, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, 1, 3)
	_, rec, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != 0 || rec.Checkpoint != nil || len(rec.Records) != 3 {
		t.Fatalf("recovered %+v", rec)
	}
	for i, r := range rec.Records {
		if r.Version != uint64(i+1) || r.Schema != SchemaVersion {
			t.Fatalf("record %d: %+v", i, r)
		}
		if !reflect.DeepEqual(r.Batch, testBatch(i+1)) {
			t.Fatalf("record %d batch round-trip: %+v", i, r.Batch)
		}
	}
}

// TestCrashAtEveryByte is the core recovery guarantee: truncate the log
// at every possible byte offset — every place a crash could tear it —
// and recovery must (a) never error, (b) yield exactly the longest
// prefix of fully-framed records, (c) clip the tail with TornBytes set
// iff the cut was mid-frame, and (d) leave a log that accepts new
// appends which survive another reopen.
func TestCrashAtEveryByte(t *testing.T) {
	master := t.TempDir()
	openAppend(t, master, 1, 3)
	full, err := os.ReadFile(filepath.Join(master, logName))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries of the intact log, for computing the expected
	// record count at each cut.
	boundaries := []int{len(logMagic)}
	_, rec, err := Open(master, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	off := len(logMagic)
	for _, r := range rec.Records {
		payload := mustMarshalLen(t, r)
		off += frameHeader + payload
		boundaries = append(boundaries, off)
	}
	if off != len(full) {
		t.Fatalf("frame walk ends at %d, file is %d bytes", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var warned bool
		opts := quietOpts()
		opts.Logf = func(string, ...any) { warned = true }
		l, rec, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("cut=%d: recovery errored: %v", cut, err)
		}

		wantRecords := 0
		for i, b := range boundaries {
			if cut >= b {
				wantRecords = i
			}
		}
		if len(rec.Records) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), wantRecords)
		}
		atBoundary := cut == 0 // an empty file is a clean (fresh) log
		for _, b := range boundaries {
			if cut == b {
				atBoundary = true
			}
		}
		if atBoundary && (rec.TornBytes != 0 || warned) {
			t.Fatalf("cut=%d: clean boundary reported torn (%d bytes)", cut, rec.TornBytes)
		}
		if !atBoundary && (rec.TornBytes == 0 || !warned) {
			t.Fatalf("cut=%d: mid-frame cut not reported torn", cut)
		}

		// The clipped log must accept the next version and keep it.
		next := uint64(wantRecords + 1)
		if err := l.Append(Record{Version: next, Batch: testBatch(int(next))}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2, err := Open(dir, quietOpts())
		if err != nil {
			t.Fatalf("cut=%d: second recovery: %v", cut, err)
		}
		if len(rec2.Records) != wantRecords+1 || rec2.Records[wantRecords].Version != next {
			t.Fatalf("cut=%d: post-append reopen got %d records", cut, len(rec2.Records))
		}
	}
}

func mustMarshalLen(t *testing.T, r Record) int {
	t.Helper()
	l, _, err := Open(t.TempDir(), quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Re-frame through the real encoder by appending to a scratch log.
	r.Version = 1
	if err := l.Append(r); err != nil {
		// Version mismatch with scratch log is fine to surface.
		t.Fatal(err)
	}
	return int(l.Stats().AppendedBytes) - frameHeader
}

func TestCheckpointTruncatesAndRestores(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if err := l.Append(Record{Version: uint64(v), Batch: testBatch(v)}); err != nil {
			t.Fatal(err)
		}
	}
	edges := []graph.Edge{{From: 0, To: 1}, {From: 2, To: 1}, {From: 1, To: 0}}
	cp := CheckpointFrom("known", 5, edges, 3)
	if err := l.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats(); got.SizeBytes != int64(len(logMagic)) || got.CheckpointVersion != 3 {
		t.Fatalf("post-checkpoint stats %+v", got)
	}
	for v := 4; v <= 5; v++ {
		if err := l.Append(Record{Version: uint64(v), Batch: testBatch(v)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	_, rec, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Version != 3 || rec.Checkpoint.Dataset != "known" || rec.Checkpoint.Nodes != 5 {
		t.Fatalf("checkpoint %+v", rec.Checkpoint)
	}
	got, err := rec.Checkpoint.EdgeList()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Fatalf("edge list %+v, want %+v", got, edges)
	}
	if len(rec.Records) != 2 || rec.Records[0].Version != 4 {
		t.Fatalf("tail records %+v", rec.Records)
	}
}

func TestCheckpointGuardsOrphanedRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for v := 1; v <= 2; v++ {
		if err := l.Append(Record{Version: uint64(v), Batch: testBatch(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(CheckpointFrom("d", 1, nil, 1)); err == nil {
		t.Fatal("checkpoint below last logged version was accepted")
	}
}

// TestCrashBetweenCheckpointAndTruncate exercises the window where the
// checkpoint has been renamed into place but the log still holds the
// records it covers: recovery must skip them, not replay them twice.
func TestCrashBetweenCheckpointAndTruncate(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if err := l.Append(Record{Version: uint64(v), Batch: testBatch(v)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("crash before truncate")
	fault.Set(FaultCheckpointTruncate, func() error { return boom })
	if err := l.WriteCheckpoint(CheckpointFrom("d", 4, nil, 3)); !errors.Is(err, boom) {
		t.Fatalf("checkpoint error %v", err)
	}
	fault.Reset()
	l.Close()

	var warnings []string
	opts := quietOpts()
	opts.Logf = func(format string, args ...any) { warnings = append(warnings, format) }
	_, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Version != 3 {
		t.Fatalf("checkpoint %+v", rec.Checkpoint)
	}
	if len(rec.Records) != 0 || rec.SkippedRecords != 3 {
		t.Fatalf("records %d skipped %d, want 0/3", len(rec.Records), rec.SkippedRecords)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "skipped") {
			found = true
		}
	}
	if !found {
		t.Fatal("skip was not logged")
	}
}

func TestAppendWriteFaultRollsBack(t *testing.T) {
	boom := errors.New("disk says no")
	for _, point := range []string{FaultAppendWrite, FaultAppendShortWrite} {
		t.Run(filepath.Base(point), func(t *testing.T) {
			t.Cleanup(fault.Reset)
			dir := t.TempDir()
			l, _, err := Open(dir, quietOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(Record{Version: 1, Batch: testBatch(1)}); err != nil {
				t.Fatal(err)
			}
			fault.Set(point, fault.FailOn(0, boom))
			if err := l.Append(Record{Version: 2, Batch: testBatch(2)}); !errors.Is(err, boom) {
				t.Fatalf("append error %v", err)
			}
			fault.Reset()
			// The failed append left nothing behind: version 2 is still
			// next, and the retry lands cleanly.
			if err := l.Append(Record{Version: 2, Batch: testBatch(2)}); err != nil {
				t.Fatalf("retry after fault: %v", err)
			}
			l.Close()
			_, rec, err := Open(dir, quietOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if rec.TornBytes != 0 {
				t.Fatalf("rollback left a torn tail (%d bytes)", rec.TornBytes)
			}
			if got := len(rec.Records); got != 2 {
				t.Fatalf("%d records after rollback+retry, want 2", got)
			}
		})
	}
}

func TestCrashBeforeSyncBreaksLog(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("fsync lost")
	fault.Set(FaultCrashBeforeSync, func() error { return boom })
	if err := l.Append(Record{Version: 1, Batch: testBatch(1)}); !errors.Is(err, boom) {
		t.Fatalf("append error %v", err)
	}
	fault.Reset()
	// A failed sync poisons the log: nothing it reports can be trusted.
	if err := l.Append(Record{Version: 2, Batch: testBatch(2)}); !errors.Is(err, boom) {
		t.Fatalf("append on broken log: %v", err)
	}
}

func TestReplayAbortFault(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	openAppend(t, dir, 1, 2)
	boom := errors.New("cannot read")
	fault.Set(FaultReplayAbort, func() error { return boom })
	if _, _, err := Open(dir, quietOpts()); !errors.Is(err, boom) {
		t.Fatalf("open error %v", err)
	}
}

func TestDatasetMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Version: 1, Batch: testBatch(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(CheckpointFrom("alpha", 2, nil, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	opts := quietOpts()
	opts.Dataset = "beta"
	if _, _, err := Open(dir, opts); err == nil {
		t.Fatal("dataset mismatch accepted")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := quietOpts()
			opts.Sync = p
			l, _, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for v := 1; v <= 4; v++ {
				if err := l.Append(Record{Version: uint64(v), Batch: testBatch(v)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec, err := Open(dir, quietOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Records) != 4 {
				t.Fatalf("%d records under %s", len(rec.Records), p)
			}
		})
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	for _, s := range []string{"always", "interval", "none"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, p, err)
		}
	}
}

func TestOutOfOrderAppendRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Version: 2, Batch: testBatch(2)}); err == nil {
		t.Fatal("append v2 on empty log accepted")
	}
	if err := l.Append(Record{Version: 1, Batch: testBatch(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Version: 3, Batch: testBatch(3)}); err == nil {
		t.Fatal("version skip accepted")
	}
}
