// Package wal is the durability layer for evolving graphs: a
// write-ahead log of update batches plus periodic checkpoints, one
// directory per dataset.
//
// The log file starts with an 8-byte magic ("TIMWAL01") followed by
// frames. Each frame is a 4-byte little-endian payload length, a 4-byte
// little-endian CRC32-C (Castagnoli) of the payload, and the payload
// itself: a schema-versioned JSON Record carrying the batch and the
// graph version it produced. Length-prefix + CRC framing means a torn
// final frame — a crash mid-write — is detected on recovery and clipped
// at the last valid frame boundary, never mistaken for data.
//
// Ordering is log-before-apply: the server validates a batch
// (evolve.Validate), appends it here, and only then mutates the graph,
// so every logged record replays cleanly and every acked update is at
// least as durable as the configured sync policy promises.
//
// Checkpoints bound recovery cost. WriteCheckpoint atomically replaces
// checkpoint.bin (write to .tmp, fsync, rename, fsync dir) with a
// topology-only snapshot of the canonical edge list at a version, then
// truncates the log. Weights are deliberately absent: every served
// weight model derives its weights as a pure function of topology and
// seed (see internal/evolve's WeightPolicy), so one checkpoint restores
// all model variants. A crash between the rename and the truncation
// leaves records at or below the checkpoint version in the log; Open
// skips them.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/evolve"
	"repro/internal/fault"
)

const (
	logMagic  = "TIMWAL01"
	ckptMagic = "TIMCKPT1"

	// SchemaVersion is stamped into every record and checkpoint. Readers
	// refuse payloads from a newer schema rather than misparse them.
	SchemaVersion = 1

	logName  = "wal.log"
	ckptName = "checkpoint.bin"

	frameHeader = 8       // u32 length + u32 CRC32C
	maxPayload  = 1 << 30 // sanity bound on a frame's declared length
)

// Fault-injection points (see internal/fault). Production builds never
// arm them; tests use them to simulate the failures recovery must
// survive.
const (
	// FaultAppendWrite fails an append before any byte reaches the file.
	FaultAppendWrite = "wal/append-write"
	// FaultAppendShortWrite writes half a frame and then fails,
	// simulating a torn write (power loss mid-append).
	FaultAppendShortWrite = "wal/append-short-write"
	// FaultCrashBeforeSync fires after the frame is written but before
	// the policy sync. Panic handlers simulate process death in the
	// unsynced window; error handlers simulate a failed fsync.
	FaultCrashBeforeSync = "wal/crash-before-sync"
	// FaultReplayAbort fails the recovery scan, simulating an unreadable
	// log during startup.
	FaultReplayAbort = "wal/replay-abort"
	// FaultCheckpointWrite fails a checkpoint before the atomic rename.
	FaultCheckpointWrite = "wal/checkpoint-write"
	// FaultCheckpointTruncate fires after the checkpoint rename but
	// before the log truncation — the crash window that leaves
	// already-checkpointed records in the log for Open to skip.
	FaultCheckpointTruncate = "wal/checkpoint-truncate"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrVersionGap reports a log whose surviving records are not
// contiguous with the checkpoint (or with version 1 when there is no
// checkpoint). Truncation-style damage is clipped silently; a gap in
// the middle of the version sequence means the directory was tampered
// with or mixed between datasets, and replaying across it would yield a
// graph that never existed.
var ErrVersionGap = errors.New("wal: version gap in log")

// Record is one logged update batch and the graph version applying it
// produced. Version v is the batch that took the dataset from v-1 to v.
type Record struct {
	Schema  int          `json:"schema"`
	Version uint64       `json:"version"`
	Batch   evolve.Batch `json:"batch"`
}

// SyncPolicy says when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acked update survives any
	// crash. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, piggybacked
	// on appends. Bounds the window of acked-but-lost updates by the
	// interval while keeping appends cheap.
	SyncInterval
	// SyncNone never fsyncs explicitly (the OS flushes on its own
	// schedule). Crash-consistent — recovery still works, the framing is
	// still torn-tail safe — but acked updates may be lost.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures Open.
type Options struct {
	// Sync is the append durability policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence. Default 200ms.
	SyncEvery time.Duration
	// Dataset, when non-empty, is checked against the checkpoint's
	// dataset name so a directory can't silently serve the wrong graph.
	Dataset string
	// Logf receives recovery warnings (torn tail, skipped records).
	// Default log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 200 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Recovered is what Open salvaged from the directory: the latest
// checkpoint (nil if none), the log records newer than it, and how much
// damage was clipped along the way.
type Recovered struct {
	Checkpoint *Checkpoint
	Records    []Record
	// TornBytes counts bytes clipped from the end of the log because the
	// final frame was incomplete or failed its CRC. Zero means the log
	// ended exactly at a frame boundary.
	TornBytes int64
	// SkippedRecords counts valid records at or below the checkpoint
	// version — the residue of a crash between checkpoint rename and log
	// truncation.
	SkippedRecords int
}

// Stats is a point-in-time snapshot for /v1/stats and the ledger.
type Stats struct {
	SizeBytes         int64  `json:"size_bytes"`
	AppendedRecords   int64  `json:"appended_records"`
	AppendedBytes     int64  `json:"appended_bytes"`
	Syncs             int64  `json:"syncs"`
	LastVersion       uint64 `json:"last_version"`
	Checkpoints       int64  `json:"checkpoints"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	CheckpointBytes   int64  `json:"checkpoint_bytes"`
}

// Log is an open per-dataset write-ahead log. Safe for concurrent use.
type Log struct {
	dir      string
	path     string
	ckptPath string
	opts     Options

	mu       sync.Mutex
	f        *os.File
	size     int64
	lastVer  uint64 // version of the newest record (or checkpoint)
	dirty    bool
	lastSync time.Time
	broken   error // set when the file can no longer be trusted

	appendedRecords int64
	appendedBytes   int64
	syncs           int64
	checkpoints     int64
	ckptVersion     uint64
	ckptBytes       int64
}

// Open recovers and opens the WAL directory for one dataset, creating
// it if needed. It reads the checkpoint, scans the log, clips a torn
// tail (warning via Logf, never an error), skips records the checkpoint
// already covers, and leaves the log positioned for appends.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:      dir,
		path:     filepath.Join(dir, logName),
		ckptPath: filepath.Join(dir, ckptName),
		opts:     opts,
		lastSync: time.Now(),
	}

	var rec Recovered
	cp, cpBytes, err := readCheckpoint(l.ckptPath)
	if err != nil {
		return nil, Recovered{}, err
	}
	if cp != nil {
		if opts.Dataset != "" && cp.Dataset != opts.Dataset {
			return nil, Recovered{}, fmt.Errorf("wal: checkpoint in %s is for dataset %q, not %q", dir, cp.Dataset, opts.Dataset)
		}
		rec.Checkpoint = cp
		l.ckptVersion = cp.Version
		l.ckptBytes = cpBytes
		l.checkpoints = 1
		l.lastVer = cp.Version
	}

	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovered{}, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	if err := l.recoverLog(&rec); err != nil {
		f.Close()
		return nil, Recovered{}, err
	}
	return l, rec, nil
}

// recoverLog scans the log file, fills rec, truncates damage, and
// positions l.f at the end of the valid region.
func (l *Log) recoverLog(rec *Recovered) error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", l.path, err)
	}
	if err := fault.Hit(FaultReplayAbort); err != nil {
		return fmt.Errorf("wal: replay %s: %w", l.path, err)
	}

	// A brand-new (or torn-during-creation) file gets a fresh magic.
	if len(data) < len(logMagic) {
		if string(data) != logMagic[:len(data)] {
			return fmt.Errorf("wal: %s is not a WAL (bad magic)", l.path)
		}
		if len(data) > 0 {
			rec.TornBytes += int64(len(data))
			l.opts.Logf("wal: %s: torn file header (%d bytes), rewriting", l.path, len(data))
		}
		if err := l.resetTo(0); err != nil {
			return err
		}
		if _, err := l.f.WriteString(logMagic); err != nil {
			return fmt.Errorf("wal: init %s: %w", l.path, err)
		}
		l.size = int64(len(logMagic))
		l.dirty = true
		return l.syncFileLocked()
	}
	if string(data[:len(logMagic)]) != logMagic {
		return fmt.Errorf("wal: %s is not a WAL (bad magic)", l.path)
	}

	off := len(logMagic)
	prevVer := uint64(0)
	first := true
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			break // torn header
		}
		ln := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if ln > maxPayload || int64(ln) > int64(len(rest)-frameHeader) {
			break // torn or garbage length
		}
		payload := rest[frameHeader : frameHeader+int(ln)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // torn payload
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			// A frame that passes its CRC but does not parse was written
			// corrupt, not torn; still, nothing after it is reachable, so
			// clipping is the only move that makes progress.
			l.opts.Logf("wal: %s: unparseable record at offset %d: %v", l.path, off, err)
			break
		}
		if r.Schema > SchemaVersion {
			return fmt.Errorf("wal: %s: record schema %d is newer than supported %d", l.path, r.Schema, SchemaVersion)
		}
		if !first && r.Version != prevVer+1 {
			return fmt.Errorf("%w: %s: record v%d follows v%d", ErrVersionGap, l.path, r.Version, prevVer)
		}
		first = false
		prevVer = r.Version
		if rec.Checkpoint != nil && r.Version <= rec.Checkpoint.Version {
			rec.SkippedRecords++
		} else {
			rec.Records = append(rec.Records, r)
		}
		off += frameHeader + int(ln)
	}

	if n := len(rec.Records); n > 0 {
		base := uint64(1)
		if rec.Checkpoint != nil {
			base = rec.Checkpoint.Version + 1
		}
		if rec.Records[0].Version != base {
			return fmt.Errorf("%w: %s: first surviving record is v%d, want v%d", ErrVersionGap, l.path, rec.Records[0].Version, base)
		}
		l.lastVer = rec.Records[n-1].Version
	}
	if rec.SkippedRecords > 0 {
		l.opts.Logf("wal: %s: skipped %d records already covered by checkpoint v%d", l.path, rec.SkippedRecords, rec.Checkpoint.Version)
	}
	if off < len(data) {
		rec.TornBytes += int64(len(data) - off)
		l.opts.Logf("wal: %s: truncating torn tail (%d bytes after last valid frame at offset %d)", l.path, len(data)-off, off)
		if err := l.resetTo(int64(off)); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	l.size = int64(off)
	return nil
}

// resetTo truncates the file to n bytes and seeks there.
func (l *Log) resetTo(n int64) error {
	if err := l.f.Truncate(n); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(n, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	l.size = n
	return nil
}

func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	return frame
}

// Append logs one record and applies the sync policy. On any write
// failure the partial frame is rolled back (the file is truncated to
// its pre-append length) so the log never carries a frame the caller
// was told failed; if even the rollback fails the log is marked broken
// and every later append returns the same error.
func (l *Log) Append(r Record) error {
	r.Schema = SchemaVersion
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("wal: record payload %d bytes exceeds limit", len(payload))
	}
	frame := encodeFrame(payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if r.Version != l.lastVer+1 {
		return fmt.Errorf("wal: append v%d out of order (last logged v%d)", r.Version, l.lastVer)
	}
	if err := fault.Hit(FaultAppendWrite); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	start := l.size
	if err := fault.Hit(FaultAppendShortWrite); err != nil {
		l.f.Write(frame[:len(frame)/2]) // the torn write the fault simulates
		return l.rollback(start, fmt.Errorf("wal: append %s: %w", l.path, err))
	}
	if _, err := l.f.Write(frame); err != nil {
		return l.rollback(start, fmt.Errorf("wal: append %s: %w", l.path, err))
	}
	l.size += int64(len(frame))
	l.lastVer = r.Version
	l.appendedRecords++
	l.appendedBytes += int64(len(frame))
	l.dirty = true

	if err := fault.Hit(FaultCrashBeforeSync); err != nil {
		// An error here stands in for a failed fsync: the kernel may have
		// dropped the dirty pages, so nothing about the file can be
		// trusted anymore and the log is taken out of service.
		l.broken = fmt.Errorf("wal: sync %s: %w", l.path, err)
		return l.broken
	}
	return l.policySyncLocked()
}

func (l *Log) rollback(start int64, err error) error {
	if terr := l.f.Truncate(start); terr != nil {
		l.broken = fmt.Errorf("wal: log unusable after failed append (rollback: %v): %w", terr, err)
		return l.broken
	}
	if _, serr := l.f.Seek(start, io.SeekStart); serr != nil {
		l.broken = fmt.Errorf("wal: log unusable after failed append (seek: %v): %w", serr, err)
		return l.broken
	}
	l.size = start
	return err
}

func (l *Log) policySyncLocked() error {
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncFileLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncFileLocked()
		}
	}
	return nil
}

func (l *Log) syncFileLocked() error {
	if !l.dirty {
		l.lastSync = time.Now()
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: sync %s: %w", l.path, err)
		return l.broken
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.syncs++
	return nil
}

// Sync forces pending appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	return l.syncFileLocked()
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var first error
	if l.broken == nil && l.dirty {
		if err := l.f.Sync(); err != nil {
			first = err
		}
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = err
	}
	l.f = nil
	return first
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		SizeBytes:         l.size,
		AppendedRecords:   l.appendedRecords,
		AppendedBytes:     l.appendedBytes,
		Syncs:             l.syncs,
		LastVersion:       l.lastVer,
		Checkpoints:       l.checkpoints,
		CheckpointVersion: l.ckptVersion,
		CheckpointBytes:   l.ckptBytes,
	}
}
