package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Checkpoint is a materialized snapshot of a dataset's canonical edge
// list at a version. It stores topology only — parallel From/To arrays
// in canonical (mutation-order-preserving) order, which is the order
// RR-set determinism depends on. Weights are re-derived at restore time
// by each model's WeightPolicy, which is why one checkpoint serves
// every model variant of the dataset.
type Checkpoint struct {
	Schema  int      `json:"schema"`
	Dataset string   `json:"dataset"`
	Version uint64   `json:"version"`
	Nodes   int      `json:"nodes"`
	From    []uint32 `json:"from"`
	To      []uint32 `json:"to"`
}

// CheckpointFrom builds a checkpoint from a dataset's canonical edge
// list (evolve.Graph.Edges()), discarding weights.
func CheckpointFrom(dataset string, n int, edges []graph.Edge, version uint64) Checkpoint {
	cp := Checkpoint{
		Schema:  SchemaVersion,
		Dataset: dataset,
		Version: version,
		Nodes:   n,
		From:    make([]uint32, len(edges)),
		To:      make([]uint32, len(edges)),
	}
	for i, e := range edges {
		cp.From[i] = e.From
		cp.To[i] = e.To
	}
	return cp
}

// EdgeList reconstructs the canonical edge list with zero weights, the
// shape evolve.Restore expects for a policy-weighted graph.
func (cp *Checkpoint) EdgeList() ([]graph.Edge, error) {
	if len(cp.From) != len(cp.To) {
		return nil, fmt.Errorf("wal: checkpoint from/to length mismatch (%d vs %d)", len(cp.From), len(cp.To))
	}
	edges := make([]graph.Edge, len(cp.From))
	for i := range edges {
		edges[i] = graph.Edge{From: cp.From[i], To: cp.To[i]}
	}
	return edges, nil
}

// WriteCheckpoint atomically installs cp and truncates the log. The
// checkpoint must cover everything logged so far (cp.Version equal to
// the last appended version); otherwise truncation would drop records
// the checkpoint does not contain. The sequence is: write .tmp, fsync,
// rename over checkpoint.bin, fsync the directory, truncate the log. A
// crash anywhere in that sequence recovers cleanly — before the rename
// the old checkpoint still rules, after it the extra log records are
// skipped by Open.
func (l *Log) WriteCheckpoint(cp Checkpoint) error {
	cp.Schema = SchemaVersion
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	frame := make([]byte, len(ckptMagic)+frameHeader+len(payload))
	copy(frame, ckptMagic)
	binary.LittleEndian.PutUint32(frame[len(ckptMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[len(ckptMagic)+4:], crc32.Checksum(payload, castagnoli))
	copy(frame[len(ckptMagic)+frameHeader:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if cp.Version != l.lastVer {
		return fmt.Errorf("wal: checkpoint v%d would orphan records (last logged v%d)", cp.Version, l.lastVer)
	}
	if err := fault.Hit(FaultCheckpointWrite); err != nil {
		return fmt.Errorf("wal: checkpoint %s: %w", l.ckptPath, err)
	}

	tmp := l.ckptPath + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, l.ckptPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	// The checkpoint now rules; everything below only reclaims log space.
	l.ckptVersion = cp.Version
	l.ckptBytes = int64(len(frame))
	l.checkpoints++
	if err := fault.Hit(FaultCheckpointTruncate); err != nil {
		return fmt.Errorf("wal: checkpoint truncate %s: %w", l.path, err)
	}
	if err := l.resetTo(int64(len(logMagic))); err != nil {
		l.broken = err
		return err
	}
	l.dirty = true
	return l.syncFileLocked()
}

// readCheckpoint loads and verifies a checkpoint file. A missing file
// is (nil, 0, nil). Because checkpoints are installed by atomic rename,
// a corrupt one is a hard error, not tolerable damage.
func readCheckpoint(path string) (*Checkpoint, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(ckptMagic)+frameHeader || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, 0, fmt.Errorf("wal: %s is not a checkpoint (bad magic)", path)
	}
	body := data[len(ckptMagic):]
	ln := binary.LittleEndian.Uint32(body[0:4])
	sum := binary.LittleEndian.Uint32(body[4:8])
	if ln > maxPayload || int64(ln) != int64(len(body)-frameHeader) {
		return nil, 0, fmt.Errorf("wal: %s: checkpoint length %d does not match file", path, ln)
	}
	payload := body[frameHeader:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, fmt.Errorf("wal: %s: checkpoint CRC mismatch", path)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, 0, fmt.Errorf("wal: %s: decode checkpoint: %w", path, err)
	}
	if cp.Schema > SchemaVersion {
		return nil, 0, fmt.Errorf("wal: %s: checkpoint schema %d is newer than supported %d", path, cp.Schema, SchemaVersion)
	}
	if len(cp.From) != len(cp.To) {
		return nil, 0, fmt.Errorf("wal: %s: checkpoint from/to length mismatch", path)
	}
	return &cp, int64(len(data)), nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
