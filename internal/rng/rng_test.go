package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from distinct seeds coincide on %d/64 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	base := New(99)
	c0 := base.Split(0)
	c1 := base.Split(1)
	same := 0
	for i := 0; i < 64; i++ {
		if c0.Uint64() == c1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide on %d/64 outputs", same)
	}
	// Split must not advance the parent.
	a, b := New(99), New(99)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(3).Split(17)
	b := New(3).Split(17)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformSmall(t *testing.T) {
	r := New(17)
	const n, trials = 8, 160000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("value %d observed %d times, want about %.0f", v, c, want)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) fired")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) did not fire")
		}
		if r.Bernoulli32(0) {
			t.Fatal("Bernoulli32(0) fired")
		}
		if !r.Bernoulli32(1) {
			t.Fatal("Bernoulli32(1) did not fire")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	const p, trials = 0.3, 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate %v", p, rate)
	}
}

func TestBernoulli32Rate(t *testing.T) {
	r := New(29)
	const p, trials = 0.25, 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli32(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli32(%v) rate %v", p, rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	out := make([]int, 50)
	r.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: %v", s)
	}
}

func TestExpPositive(t *testing.T) {
	r := New(41)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %v, want about 1", mean)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nInRangeQuick(t *testing.T) {
	r := New(43)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical 8-step prefixes.
func TestSeedDeterminismQuick(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
