// Package rng provides fast, seedable pseudo-random number generators for
// the sampling-heavy inner loops of influence maximization.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 so that any 64-bit seed — including zero — yields a
// well-distributed initial state. Distinct worker streams are derived with
// Split, which is guaranteed to produce independent-looking streams for
// distinct indices.
//
// All methods are deliberately not safe for concurrent use: each goroutine
// must own its *Rand. That is the point — the hot path (RR-set generation)
// must not contend on a lock the way math/rand's global source does.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a xoshiro256++ pseudo-random number generator.
// The zero value is not usable; construct with New or Split.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is the canonical seeding function recommended for xoshiro.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Any seed is acceptable.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if freshly constructed with New(seed).
func (r *Rand) Seed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
}

// Split returns a new generator whose stream is independent of r's for all
// practical purposes. It is used to hand one stream to each sampling worker:
//
//	base := rng.New(seed)
//	for w := 0; w < workers; w++ { go run(base.Split(uint64(w))) }
//
// Split does not advance r.
func (r *Rand) Split(index uint64) *Rand {
	child := &Rand{}
	r.SplitInto(index, child)
	return child
}

// SplitInto reseeds child to the exact stream Split(index) would return,
// without allocating. It exists for per-item keyed sampling loops
// (diffusion.ExtendCollection draws set i from stream i) where a fresh
// heap allocation per item would dominate the inner loop.
func (r *Rand) SplitInto(index uint64, child *Rand) {
	// Mix the index into a fresh splitmix stream keyed by the parent
	// state. Using the golden-ratio multiple keeps indices 0,1,2,...
	// far apart in the seed space.
	x := r.s0 ^ (index+1)*0x9e3779b97f4a7c15
	child.s0 = splitmix64(&x)
	child.s1 = splitmix64(&x)
	child.s2 = splitmix64(&x)
	child.s3 = splitmix64(&x)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's nearly
// divisionless method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli reports true with probability p. Values of p outside [0,1]
// clamp to the nearest bound (p<=0 never fires, p>=1 always fires).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bernoulli32 reports true with probability p, using a single float32
// comparison. It is the hot-path coin flip for IC edge sampling where the
// per-edge probabilities are stored as float32.
func (r *Rand) Bernoulli32(p float32) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float32() < p
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1, using
// inversion. Useful for geometric skipping in sparse samplers.
func (r *Rand) Exp() float64 {
	// -ln(1-U) where U in [0,1); 1-U in (0,1] avoids ln(0).
	return -math.Log1p(-r.Float64())
}
