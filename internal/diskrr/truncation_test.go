package diskrr

import (
	"errors"
	"os"
	"testing"

	"repro/internal/graph"
)

// buildSpill writes a known collection and returns it plus its file path
// and total byte length.
func buildSpill(t *testing.T) (*Collection, string, int64) {
	t.Helper()
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]uint32{{1, 2, 3}, {4}, {5, 6}, {7, 8, 9, 10}}
	for _, s := range sets {
		if err := w.Append(s, int64(len(s))); err != nil {
			t.Fatal(err)
		}
	}
	col, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { col.Close() })
	return col, col.path, col.DiskBytes()
}

// TestScanTruncationRoundTrip is the typed-error contract: clipping the
// spill file at *every* prefix length must either scan cleanly (full
// length) or fail with an error wrapping graph.ErrTruncated — the same
// sentinel graph.ReadBinary uses — never a panic, a silent short read, or
// an untyped error.
func TestScanTruncationRoundTrip(t *testing.T) {
	col, path, size := buildSpill(t)

	// Sanity: the untruncated file round-trips.
	var scanned int64
	if err := col.Scan(func(i int64, set []uint32) error {
		scanned++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != col.Count() {
		t.Fatalf("scanned %d of %d sets", scanned, col.Count())
	}

	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(original)) != size {
		t.Fatalf("DiskBytes %d != file size %d", size, len(original))
	}
	for clip := int64(0); clip < size; clip++ {
		if err := os.Truncate(path, clip); err != nil {
			t.Fatal(err)
		}
		err := col.Scan(func(i int64, set []uint32) error { return nil })
		if err == nil {
			t.Fatalf("clip %d: truncated scan succeeded", clip)
		}
		if !errors.Is(err, graph.ErrTruncated) {
			t.Fatalf("clip %d: error %v does not wrap graph.ErrTruncated", clip, err)
		}
		// Restore for the next clip length.
		if err := os.WriteFile(path, original, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanCallbackErrorPassthrough: a callback error aborts the scan
// unwrapped — it must stay distinguishable from corruption.
func TestScanCallbackErrorPassthrough(t *testing.T) {
	col, _, _ := buildSpill(t)
	sentinel := errors.New("stop here")
	err := col.Scan(func(i int64, set []uint32) error {
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || errors.Is(err, graph.ErrTruncated) {
		t.Fatalf("callback error mangled: %v", err)
	}
}
