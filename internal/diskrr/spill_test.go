package diskrr

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/fault"
	"repro/internal/graph"
)

// testCollection builds a small in-memory collection with varied set
// sizes (including an empty set) and per-set widths distinct from the
// set lengths, so a width/length mixup cannot round-trip.
func testCollection() (*diffusion.RRCollection, []int64) {
	sets := [][]uint32{
		{3, 1, 4},
		{},
		{1, 5, 9, 2, 6},
		{7},
		{2, 8, 2, 8},
	}
	col := &diffusion.RRCollection{Off: []int64{0}}
	widths := make([]int64, 0, len(sets))
	for i, s := range sets {
		col.Flat = append(col.Flat, s...)
		col.Off = append(col.Off, int64(len(col.Flat)))
		w := int64(10*i + len(s))
		widths = append(widths, w)
		col.TotalWidth += w
	}
	return col, widths
}

func TestSpillRoundTrip(t *testing.T) {
	col, widths := testCollection()
	hdr := SpillHeader{Version: 7, ProfileHash: 0xabcdef, Seed: 42}
	path := filepath.Join(t.TempDir(), "rrspill-test.bin")
	bytes, err := WriteSpill(path, hdr, col, widths)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != bytes {
		t.Fatalf("WriteSpill reported %d bytes, file is %d", bytes, st.Size())
	}
	gotHdr, gotCol, gotWidths, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr {
		t.Fatalf("header round trip: got %+v, want %+v", gotHdr, hdr)
	}
	if !reflect.DeepEqual(gotCol.Flat, col.Flat) || !reflect.DeepEqual(gotCol.Off, col.Off) {
		t.Fatalf("collection round trip: got (%v, %v), want (%v, %v)",
			gotCol.Flat, gotCol.Off, col.Flat, col.Off)
	}
	if gotCol.TotalWidth != col.TotalWidth {
		t.Fatalf("TotalWidth round trip: got %d, want %d", gotCol.TotalWidth, col.TotalWidth)
	}
	if !reflect.DeepEqual(gotWidths, widths) {
		t.Fatalf("widths round trip: got %v, want %v", gotWidths, widths)
	}
}

// TestSpillEmptyCollection: a zero-set collection must round-trip too —
// the rr-store can demote an entry whose first extension never ran.
func TestSpillEmptyCollection(t *testing.T) {
	col := &diffusion.RRCollection{Off: []int64{0}}
	path := filepath.Join(t.TempDir(), "rrspill-empty.bin")
	if _, err := WriteSpill(path, SpillHeader{Version: 1}, col, nil); err != nil {
		t.Fatal(err)
	}
	hdr, gotCol, gotWidths, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != 1 || gotCol.Count() != 0 || len(gotWidths) != 0 {
		t.Fatalf("empty round trip: hdr %+v, %d sets, %d widths", hdr, gotCol.Count(), len(gotWidths))
	}
}

// TestSpillReadTruncationEveryByte clips the spill file at every prefix
// length: ReadSpill must fail wrapping graph.ErrTruncated at each —
// never succeed on partial data, never panic, never return untyped.
func TestSpillReadTruncationEveryByte(t *testing.T) {
	col, widths := testCollection()
	path := filepath.Join(t.TempDir(), "rrspill-clip.bin")
	size, err := WriteSpill(path, SpillHeader{Version: 3, Seed: 9}, col, widths)
	if err != nil {
		t.Fatal(err)
	}
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for clip := int64(0); clip < size; clip++ {
		if err := os.WriteFile(path, original[:clip], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := ReadSpill(path)
		if err == nil {
			t.Fatalf("clip %d: truncated read succeeded", clip)
		}
		if !errors.Is(err, graph.ErrTruncated) {
			t.Fatalf("clip %d: error %v does not wrap graph.ErrTruncated", clip, err)
		}
	}
}

// TestSpillReadFormatErrors: structural corruption that is not a
// truncation fails wrapping ErrSpillFormat.
func TestSpillReadFormatErrors(t *testing.T) {
	col, widths := testCollection()
	dir := t.TempDir()
	path := filepath.Join(dir, "rrspill-corrupt.bin")
	if _, err := WriteSpill(path, SpillHeader{}, col, widths); err != nil {
		t.Fatal(err)
	}
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), original...)), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := ReadSpill(path)
		if !errors.Is(err, ErrSpillFormat) {
			t.Fatalf("%s: error %v does not wrap ErrSpillFormat", name, err)
		}
	}
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	check("trailing bytes", func(b []byte) []byte { return append(b, 0) })
	// Flip a set-length byte: the records no longer sum to the header's
	// totals (the file size check still passes, so this exercises the
	// per-record validation).
	check("length mismatch", func(b []byte) []byte { b[spillHeaderSize] ^= 0x01; return b })
}

// TestWriteSpillFailureEveryPrefix injects a write failure at every
// consultation of the spill-write fault point: the error wraps ErrSpill,
// nothing is left in the directory (no .tmp, no final file), and a
// clean retry afterwards succeeds — the no-debris contract the crash
// smoke relies on.
func TestWriteSpillFailureEveryPrefix(t *testing.T) {
	t.Cleanup(fault.Reset)
	boom := errors.New("injected: disk full")
	col, widths := testCollection()

	h, hits := fault.Counting(func() error { return nil })
	fault.Set(FaultSpillWrite, h)
	cleanDir := t.TempDir()
	if _, err := WriteSpill(filepath.Join(cleanDir, "rrspill-a.bin"), SpillHeader{}, col, widths); err != nil {
		t.Fatalf("clean write failed: %v", err)
	}
	fault.Reset()
	writes := int(hits.Load())
	if writes < 10 {
		t.Fatalf("clean write hit the fault point only %d times", writes)
	}

	for n := 0; n < writes; n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "rrspill-b.bin")
		fault.Set(FaultSpillWrite, fault.FailOn(n, boom))
		_, err := WriteSpill(path, SpillHeader{}, col, widths)
		fault.Reset()
		if !errors.Is(err, ErrSpill) {
			t.Fatalf("n=%d: error %v does not wrap ErrSpill", n, err)
		}
		if left := dirEntries(t, dir); len(left) != 0 {
			t.Fatalf("n=%d: failed spill left %v", n, left)
		}
		if _, err := WriteSpill(path, SpillHeader{}, col, widths); err != nil {
			t.Fatalf("n=%d: clean retry failed: %v", n, err)
		}
	}

	// The sync point too: all bytes written, durability step fails.
	dir := t.TempDir()
	fault.Set(FaultSpillSync, fault.FailOn(0, boom))
	_, err := WriteSpill(filepath.Join(dir, "rrspill-c.bin"), SpillHeader{}, col, widths)
	fault.Reset()
	if !errors.Is(err, ErrSpill) {
		t.Fatalf("sync failure: error %v does not wrap ErrSpill", err)
	}
	if left := dirEntries(t, dir); len(left) != 0 {
		t.Fatalf("failed sync left %v", left)
	}
}

func TestPurgeSpillDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"rrspill-1.bin", "rrspill-2.tmp", "csrmmap-3.bin", "keep.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PurgeSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("purged %d files, want 3", removed)
	}
	if left := dirEntries(t, dir); len(left) != 1 || left[0] != "keep.txt" {
		t.Fatalf("directory after purge: %v", left)
	}
	// A missing directory is not an error: the server purges before the
	// first demotion may ever have created it.
	if n, err := PurgeSpillDir(filepath.Join(dir, "nope")); n != 0 || err != nil {
		t.Fatalf("missing dir: (%d, %v)", n, err)
	}
}
