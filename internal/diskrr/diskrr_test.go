package diskrr

import (
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/rng"
)

func spillCollection(t testing.TB, col *diffusion.RRCollection) *Collection {
	t.Helper()
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < col.Count(); i++ {
		set := col.Set(i)
		if err := w.Append(set, diffusion.Width(nil2Graph(), set)); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return disk
}

// nil2Graph gives Width a graph where every in-degree is zero so spilled
// widths are zero; width bookkeeping is tested separately.
func nil2Graph() *graph.Graph { return graph.MustFromEdges(1<<20, nil) }

func TestWriterRoundTrip(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]uint32{{1, 2, 3}, {7}, {}, {4, 5}}
	for i, s := range sets {
		if err := w.Append(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	col, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if col.Count() != 4 || col.TotalNodes() != 6 || col.TotalWidth() != 0+1+2+3 {
		t.Fatalf("col=%+v", col)
	}
	var got [][]uint32
	err = col.Scan(func(i int64, set []uint32) error {
		got = append(got, append([]uint32(nil), set...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sets) {
		t.Fatalf("scanned %d sets", len(got))
	}
	for i := range sets {
		if len(got[i]) != len(sets[i]) {
			t.Fatalf("set %d: %v vs %v", i, got[i], sets[i])
		}
		for j := range sets[i] {
			if got[i][j] != sets[i][j] {
				t.Fatalf("set %d: %v vs %v", i, got[i], sets[i])
			}
		}
	}
}

func TestScanTwice(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Append([]uint32{1}, 0)
	_ = w.Append([]uint32{2}, 0)
	col, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	for round := 0; round < 2; round++ {
		n := 0
		if err := col.Scan(func(i int64, set []uint32) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("round %d scanned %d", round, n)
		}
	}
}

func TestAppendAfterFinishFails(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if err := w.Append([]uint32{1}, 0); err == nil {
		t.Fatal("append after Finish accepted")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestAbortRemovesFile(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Append([]uint32{1}, 0)
	w.Abort()
	// The spill file should be gone; creating a new writer still works.
	w2, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2.Abort()
}

// TestGreedyOutOfCoreMatchesNaive: identical algorithm, different
// storage — results must be exactly equal (both tie-break by lowest id).
func TestGreedyOutOfCoreMatchesNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-check sweep")
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(20)
		col := &diffusion.RRCollection{Off: []int64{0}}
		numSets := r.Intn(60)
		for i := 0; i < numSets; i++ {
			maxSize := 4
			if maxSize > n {
				maxSize = n // size > n would make the dedup loop below spin forever
			}
			size := 1 + r.Intn(maxSize)
			seen := map[uint32]bool{}
			for len(seen) < size {
				seen[uint32(r.Intn(n))] = true
			}
			var s []uint32
			for v := range seen {
				s = append(s, v)
			}
			col.Append(s, 0)
		}
		k := 1 + r.Intn(n)
		disk := spillCollection(t, col)
		got, err := GreedyOutOfCore(n, disk, k)
		if err != nil {
			t.Fatal(err)
		}
		want := maxcover.GreedyNaive(n, col, k)
		if got.Covered != want.Covered || len(got.Seeds) != len(want.Seeds) {
			return false
		}
		for i := range want.Seeds {
			if got.Seeds[i] != want.Seeds[i] || got.Marginals[i] != want.Marginals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyOutOfCoreRealisticGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy out-of-core pass")
	}
	g := gen.ChungLuDirected(400, 2400, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	col := diffusion.SampleCollection(g, diffusion.NewIC(), 2000, diffusion.SampleOptions{Workers: 1, Seed: 2})
	disk := spillCollection(t, col)
	got, err := GreedyOutOfCore(g.N(), disk, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := maxcover.GreedyNaive(g.N(), col, 10)
	if got.Covered != want.Covered {
		t.Fatalf("out-of-core covered %d, in-memory %d", got.Covered, want.Covered)
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("seed %d: %d vs %d", i, got.Seeds[i], want.Seeds[i])
		}
	}
}

func TestGreedyOutOfCoreDegenerate(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	res, err := GreedyOutOfCore(5, col, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 || res.Covered != 0 {
		t.Fatalf("res=%+v", res)
	}
	res, err = GreedyOutOfCore(0, col, 3)
	if err != nil || len(res.Seeds) != 0 {
		t.Fatalf("n=0: %+v %v", res, err)
	}
	res, err = GreedyOutOfCore(5, col, -1)
	if err != nil || len(res.Seeds) != 0 {
		t.Fatalf("k<0: %+v %v", res, err)
	}
}

func TestBitmap(t *testing.T) {
	b := newBitmap(130)
	for _, i := range []int64{0, 1, 63, 64, 127, 129} {
		if b.get(i) {
			t.Fatalf("bit %d set initially", i)
		}
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.get(2) || b.get(65) || b.get(128) {
		t.Fatal("neighbor bits disturbed")
	}
}

func TestDiskBytes(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Append([]uint32{1, 2}, 0)
	_ = w.Append([]uint32{3}, 0)
	col, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	// 2 headers + 3 members = 5 uint32s.
	if col.DiskBytes() != 20 {
		t.Fatalf("disk bytes=%d, want 20", col.DiskBytes())
	}
}
