package diskrr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/diffusion"
	"repro/internal/fault"
	"repro/internal/graph"
)

// This file is the server-facing half of the package: the spill-tier
// file format the rr-store (internal/server) demotes evicted
// collections into and promotes them back from. Unlike the Writer/
// Collection pair above — which streams a single-run collection that
// dies with the run — a spill-tier file is a complete, self-describing
// snapshot of an in-memory diffusion.RRCollection plus its per-set
// widths, pinned to the (graph version, sampling profile, entry seed)
// it was derived under so a reader can tell exactly what it is holding.
//
// Format (all integers little-endian):
//
//	magic   8 bytes  "RRSPILL1"
//	header  6 × u64  version, profile hash, entry seed,
//	                 set count, total nodes, total width
//	records count ×  u32 set length | u64 width | length × u32 node ids
//
// The totals in the header are redundant with the records on purpose:
// WriteSpill sizes the file exactly, so ReadSpill can verify
// size(file) == size(header) before allocating anything — a truncated
// or padded file fails typed (graph.ErrTruncated / ErrSpillFormat)
// without a single record being parsed.
//
// Crash safety follows the package's no-debris contract: WriteSpill
// streams into an rrspill-*.tmp sibling and renames it over the final
// path only after a successful flush+fsync, so a crash mid-demotion
// leaves at worst a .tmp file that PurgeSpillDir removes at the next
// startup. A write failure removes the temp file and reports an error
// wrapping ErrSpill, exactly like Writer.

// ErrSpillFormat tags structural spill-file corruption that is not a
// truncation: a bad magic, totals that disagree with the records, or
// trailing bytes. The rr-store treats it (like any read failure) as a
// cache miss: drop the file, resample cold.
var ErrSpillFormat = errors.New("diskrr: malformed spill file")

// spillMagic identifies (and versions) the spill-tier format.
const spillMagic = "RRSPILL1"

// spillHeaderSize is magic + six u64 header fields.
const spillHeaderSize = len(spillMagic) + 6*8

// SpillHeader pins the identity of a spilled collection: the graph
// version its sets were derived at, the compiled sampling-profile hash
// of its key (0 = unconstrained), and the rr-store entry seed. The
// reader hands it back verbatim; the rr-store compares it against the
// promoting entry and discards on any mismatch — a stale or foreign
// spill is never silently served.
type SpillHeader struct {
	Version     uint64
	ProfileHash uint64
	Seed        uint64
}

// spillFileSize is the exact byte size of a spill file holding the
// given record shape.
func spillFileSize(count, totalNodes int64) int64 {
	return int64(spillHeaderSize) + count*12 + totalNodes*4
}

// WriteSpill atomically writes col (with its per-set widths) to path,
// returning the file's byte size. It goes through the same
// FaultSpillWrite/FaultSpillSync points as Writer, and on any failure
// removes its temporary file and returns an error wrapping ErrSpill —
// never leaving debris, never a half-written file at path.
func WriteSpill(path string, hdr SpillHeader, col *diffusion.RRCollection, widths []int64) (int64, error) {
	count := int64(col.Count())
	if int64(len(widths)) != count {
		return 0, fmt.Errorf("%w: %d widths for %d sets", ErrSpill, len(widths), count)
	}
	f, err := os.CreateTemp(filepath.Dir(path), "rrspill-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSpill, err)
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("%w: %v", ErrSpill, err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	write := func(p []byte) error {
		if err := fault.Hit(FaultSpillWrite); err != nil {
			return err
		}
		_, err := bw.Write(p)
		return err
	}
	var scratch [12]byte
	u64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		return write(scratch[:8])
	}
	if err := write([]byte(spillMagic)); err != nil {
		return fail(err)
	}
	var totalNodes int64
	for i := int64(0); i < count; i++ {
		totalNodes += col.Off[i+1] - col.Off[i]
	}
	for _, v := range []uint64{hdr.Version, hdr.ProfileHash, hdr.Seed,
		uint64(count), uint64(totalNodes), uint64(col.TotalWidth)} {
		if err := u64(v); err != nil {
			return fail(err)
		}
	}
	for i := int64(0); i < count; i++ {
		set := col.Flat[col.Off[i]:col.Off[i+1]]
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(set)))
		binary.LittleEndian.PutUint64(scratch[4:12], uint64(widths[i]))
		if err := write(scratch[:12]); err != nil {
			return fail(err)
		}
		for _, v := range set {
			binary.LittleEndian.PutUint32(scratch[:4], v)
			if err := write(scratch[:4]); err != nil {
				return fail(err)
			}
		}
	}
	if err := fault.Hit(FaultSpillWrite); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := fault.Hit(FaultSpillSync); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("%w: %v", ErrSpill, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("%w: %v", ErrSpill, err)
	}
	return spillFileSize(count, totalNodes), nil
}

// ReadSpill loads a spill file back into a fresh in-memory collection
// and its per-set widths. Corruption is typed: a file that ends early
// (at any byte) fails wrapping graph.ErrTruncated; a bad magic,
// inconsistent totals, or trailing bytes fail wrapping ErrSpillFormat.
// The file size is checked against the header before any allocation,
// so a corrupt header cannot trigger a huge allocation.
func ReadSpill(path string) (SpillHeader, *diffusion.RRCollection, []int64, error) {
	var hdr SpillHeader
	f, err := os.Open(path)
	if err != nil {
		return hdr, nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return hdr, nil, nil, err
	}
	if st.Size() < int64(spillHeaderSize) {
		return hdr, nil, nil, fmt.Errorf("%w: %d-byte spill file is shorter than its header", graph.ErrTruncated, st.Size())
	}
	br := bufio.NewReaderSize(f, 1<<20)
	raw := make([]byte, spillHeaderSize)
	if _, err := io.ReadFull(br, raw); err != nil {
		return hdr, nil, nil, fmt.Errorf("diskrr: reading spill header: %w", truncErr(err))
	}
	if string(raw[:len(spillMagic)]) != spillMagic {
		return hdr, nil, nil, fmt.Errorf("%w: bad magic %q", ErrSpillFormat, raw[:len(spillMagic)])
	}
	u64 := func(i int) uint64 {
		return binary.LittleEndian.Uint64(raw[len(spillMagic)+8*i:])
	}
	hdr = SpillHeader{Version: u64(0), ProfileHash: u64(1), Seed: u64(2)}
	count, totalNodes, totalWidth := int64(u64(3)), int64(u64(4)), int64(u64(5))
	if count < 0 || totalNodes < 0 {
		return hdr, nil, nil, fmt.Errorf("%w: negative counts in header", ErrSpillFormat)
	}
	switch want := spillFileSize(count, totalNodes); {
	case st.Size() < want:
		return hdr, nil, nil, fmt.Errorf("%w: spill file is %d bytes, header describes %d", graph.ErrTruncated, st.Size(), want)
	case st.Size() > want:
		return hdr, nil, nil, fmt.Errorf("%w: %d trailing bytes after the last record", ErrSpillFormat, st.Size()-want)
	}
	col := &diffusion.RRCollection{
		Flat:       make([]uint32, 0, totalNodes),
		Off:        make([]int64, 1, count+1),
		TotalWidth: totalWidth,
	}
	widths := make([]int64, 0, count)
	rec := make([]byte, 12)
	var sumWidth int64
	for i := int64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return hdr, nil, nil, fmt.Errorf("diskrr: reading spill set %d header: %w", i, truncErr(err))
		}
		size := int64(binary.LittleEndian.Uint32(rec))
		width := int64(binary.LittleEndian.Uint64(rec[4:]))
		if int64(len(col.Flat))+size > totalNodes {
			return hdr, nil, nil, fmt.Errorf("%w: set %d overruns the header's node total", ErrSpillFormat, i)
		}
		body := make([]byte, 4*size)
		if _, err := io.ReadFull(br, body); err != nil {
			return hdr, nil, nil, fmt.Errorf("diskrr: reading spill set %d body (%d nodes): %w", i, size, truncErr(err))
		}
		for j := int64(0); j < size; j++ {
			col.Flat = append(col.Flat, binary.LittleEndian.Uint32(body[4*j:]))
		}
		col.Off = append(col.Off, int64(len(col.Flat)))
		widths = append(widths, width)
		sumWidth += width
	}
	if int64(len(col.Flat)) != totalNodes || sumWidth != totalWidth {
		return hdr, nil, nil, fmt.Errorf("%w: record totals disagree with header (nodes %d/%d, width %d/%d)",
			ErrSpillFormat, len(col.Flat), totalNodes, sumWidth, totalWidth)
	}
	return hdr, col, widths, nil
}

// PurgeSpillDir removes every spill-tier artifact in dir — finished
// spill files, torn .tmp files from a crash mid-demotion, and mmap
// backing files (graph.MmapBacked) whose process died before unlinking
// them. The spill tier is a volatile cache (its index lives in server
// memory and dies with the process), so startup purges wholesale:
// recovery serves from a cold resample, bit-identical by keyed
// sampling seeds. Returns the number of files removed.
func PurgeSpillDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	removed := 0
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "rrspill-") && !strings.HasPrefix(name, "csrmmap-") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}
