// Package diskrr provides disk-backed storage for reverse-reachable set
// collections, plus an out-of-core greedy maximum-coverage selector.
//
// Motivation: §7.4 of the paper shows that TIM+'s memory is dominated by
// the RR collection R (λ/KPT⁺ sets, ∝ 1/ε²), and §8 names "massive
// graphs that do not fit in the main memory of a single machine" as
// future work. This package removes R from the residency requirement:
// RR sets stream to a temporary file as they are sampled, and node
// selection runs in k+1 sequential passes over the file, holding only
// O(n) counters and a covered-set bitmap in memory.
//
// The trade-off is explicit: selection cost grows from O(Σ|R|) to
// O(k·Σ|R|) sequential I/O, in exchange for an O(n + θ/8)-byte resident
// set. BenchmarkAblationOutOfCore quantifies it.
//
// The package serves two callers. The Writer/Collection/GreedyOutOfCore
// half below is the original offline path: one *single-run* collection
// streamed out of memory and deleted with the run, never repaired or
// shared. The spill-tier half (spill.go) is the server's second storage
// tier: when the rr-store (internal/server) evicts a warm collection, it
// demotes the arena to a self-describing spill file — header-pinned to
// the graph version, sampling profile, and entry seed it was derived
// under — and the next query on that key promotes it back into a fresh
// arena and prefix-extends it, bit-identical to never having been
// evicted. Spill-tier files are cached, repaired after promotion like
// any warm collection, and shared by every query on their key.
//
// Corrupt or truncated spill data surfaces as typed errors consistent
// with graph.ReadBinary's: Scan wraps graph.ErrTruncated when the file
// ends mid-record (the only structural failure a length-prefixed spill
// file can exhibit). Failures on the write side (a full disk, a dying
// device) wrap ErrSpill, and the writer removes its partial file before
// reporting them — a failed spill never leaves debris for the caller to
// clean up or a later run to trip over.
package diskrr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/fault"
	"repro/internal/graph"
)

// ErrSpill tags every spill-write failure (Append or Finish). By the
// time a caller sees an error wrapping it, the partial spill file has
// already been closed and removed.
var ErrSpill = errors.New("diskrr: spill write failed")

// Fault points (see internal/fault). Unarmed they cost one atomic load;
// tests arm them to fail spill I/O at chosen operations.
const (
	// FaultSpillWrite is consulted before every buffered write in Append
	// and before the flush in Finish.
	FaultSpillWrite = "diskrr/spill-write"
	// FaultSpillSync is consulted before the fsync in Finish.
	FaultSpillSync = "diskrr/spill-sync"
)

// Writer streams RR sets into a temporary file.
type Writer struct {
	f   *os.File
	bw  *bufio.Writer
	rec []byte

	count      int64
	totalNodes int64
	totalWidth int64
	closed     bool
	failErr    error // sticky ErrSpill-wrapped failure; file already removed
}

// NewWriter creates a spill file in dir (empty dir = the OS temp
// directory).
func NewWriter(dir string) (*Writer, error) {
	f, err := os.CreateTemp(dir, "rrspill-*.bin")
	if err != nil {
		return nil, fmt.Errorf("diskrr: creating spill file: %w", err)
	}
	return &Writer{
		f:   f,
		bw:  bufio.NewWriterSize(f, 1<<20),
		rec: make([]byte, 4),
	}, nil
}

// Append writes one RR set. On a write failure the spill file is
// removed and the writer is dead: the error (wrapping ErrSpill) is
// sticky and every later call returns it.
func (w *Writer) Append(rr []uint32, width int64) error {
	if w.closed {
		if w.failErr != nil {
			return w.failErr
		}
		return errors.New("diskrr: append after Finish")
	}
	binary.LittleEndian.PutUint32(w.rec, uint32(len(rr)))
	if err := w.write(w.rec); err != nil {
		return w.fail(err)
	}
	for _, v := range rr {
		binary.LittleEndian.PutUint32(w.rec, v)
		if err := w.write(w.rec); err != nil {
			return w.fail(err)
		}
	}
	w.count++
	w.totalNodes += int64(len(rr))
	w.totalWidth += width
	return nil
}

// write pushes one buffered record through the FaultSpillWrite point.
func (w *Writer) write(p []byte) error {
	if err := fault.Hit(FaultSpillWrite); err != nil {
		return err
	}
	_, err := w.bw.Write(p)
	return err
}

// fail records a write failure: the partial spill file is discarded
// immediately (callers must never see a half-written rrspill-*.bin on
// disk) and the typed error is made sticky.
func (w *Writer) fail(err error) error {
	w.Abort()
	w.failErr = fmt.Errorf("%w: %v", ErrSpill, err)
	return w.failErr
}

// Count returns the number of sets appended so far.
func (w *Writer) Count() int64 { return w.count }

// Finish flushes, fsyncs, and returns the readable collection. The
// writer must not be used afterwards. On failure the spill file is
// removed and the (ErrSpill-wrapping) error is sticky.
func (w *Writer) Finish() (*Collection, error) {
	if w.closed {
		if w.failErr != nil {
			return nil, w.failErr
		}
		return nil, errors.New("diskrr: Finish twice")
	}
	w.closed = true
	if err := fault.Hit(FaultSpillWrite); err != nil {
		return nil, w.fail(err)
	}
	if err := w.bw.Flush(); err != nil {
		return nil, w.fail(err)
	}
	if err := fault.Hit(FaultSpillSync); err != nil {
		return nil, w.fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return nil, w.fail(err)
	}
	return &Collection{
		f:          w.f,
		path:       w.f.Name(),
		count:      w.count,
		totalNodes: w.totalNodes,
		totalWidth: w.totalWidth,
	}, nil
}

// Abort discards the spill file. It is idempotent, and calling it
// after a failed Append/Finish (which already aborted) is a no-op.
func (w *Writer) Abort() {
	w.closed = true
	if w.f == nil {
		return
	}
	name := w.f.Name()
	w.f.Close()
	os.Remove(name)
	w.f = nil
}

// Collection is a finished on-disk RR collection.
type Collection struct {
	f          *os.File
	path       string
	count      int64
	totalNodes int64
	totalWidth int64
}

// Count returns the number of RR sets.
func (c *Collection) Count() int64 { return c.count }

// TotalNodes returns Σ|R|.
func (c *Collection) TotalNodes() int64 { return c.totalNodes }

// TotalWidth returns Σw(R).
func (c *Collection) TotalWidth() int64 { return c.totalWidth }

// DiskBytes returns the size of the spill file.
func (c *Collection) DiskBytes() int64 { return 4 * (c.count + c.totalNodes) }

// Close removes the spill file.
func (c *Collection) Close() error {
	err := c.f.Close()
	if rmErr := os.Remove(c.path); err == nil {
		err = rmErr
	}
	return err
}

// Scan streams every RR set through fn in file order. The slice passed
// to fn is reused between calls; fn must not retain it. Returning a
// non-nil error from fn aborts the scan.
func (c *Collection) Scan(fn func(i int64, set []uint32) error) error {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(c.f, 1<<20)
	hdr := make([]byte, 4)
	var buf []uint32
	var raw []byte
	for i := int64(0); i < c.count; i++ {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return fmt.Errorf("diskrr: reading set %d header: %w", i, truncErr(err))
		}
		size := int(binary.LittleEndian.Uint32(hdr))
		if cap(buf) < size {
			buf = make([]uint32, size)
			raw = make([]byte, 4*size)
		}
		buf = buf[:size]
		raw = raw[:4*size]
		if _, err := io.ReadFull(br, raw); err != nil {
			return fmt.Errorf("diskrr: reading set %d body (%d nodes): %w", i, size, truncErr(err))
		}
		for j := 0; j < size; j++ {
			buf[j] = binary.LittleEndian.Uint32(raw[4*j:])
		}
		if err := fn(i, buf); err != nil {
			return err
		}
	}
	return nil
}

// truncErr maps a short-read error to the shared graph.ErrTruncated
// sentinel (callers can errors.Is one sentinel for every binary format in
// the repo), keeping the underlying detail in the message; other I/O
// errors pass through unchanged.
func truncErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", graph.ErrTruncated, err)
	}
	return err
}

// Result mirrors maxcover.Result for the out-of-core selector.
type Result struct {
	Seeds     []uint32
	Covered   int64
	Marginals []int64
}

// GreedyOutOfCore selects k nodes from [0, n) greedily maximizing RR-set
// coverage, in k+1 sequential passes over the spill file. Resident
// memory is O(n) counters plus one bit per set. Tie-breaking is by
// lowest node id (identical to maxcover.GreedyNaive).
func GreedyOutOfCore(n int, col *Collection, k int) (Result, error) {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	res := Result{
		Seeds:     make([]uint32, 0, k),
		Marginals: make([]int64, 0, k),
	}
	if n == 0 || k == 0 {
		return res, nil
	}
	covered := newBitmap(col.Count())
	selected := make([]bool, n)
	count := make([]int64, n)
	var prevPick int64 = -1
	for len(res.Seeds) < k {
		for i := range count {
			count[i] = 0
		}
		// One pass: retire sets covered by the previous pick, count
		// membership of the live ones.
		err := col.Scan(func(i int64, set []uint32) error {
			if covered.get(i) {
				return nil
			}
			if prevPick >= 0 {
				for _, v := range set {
					if int64(v) == prevPick {
						covered.set(i)
						return nil
					}
				}
			}
			for _, v := range set {
				count[v]++
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		best := int64(-1)
		var bestCount int64
		for v := 0; v < n; v++ {
			if selected[v] {
				continue
			}
			if best < 0 || count[v] > bestCount {
				best, bestCount = int64(v), count[v]
			}
		}
		selected[best] = true
		res.Seeds = append(res.Seeds, uint32(best))
		res.Marginals = append(res.Marginals, bestCount)
		res.Covered += bestCount
		prevPick = best
	}
	return res, nil
}

// bitmap is a simple fixed-size bit set.
type bitmap []uint64

func newBitmap(bits int64) bitmap { return make(bitmap, (bits+63)/64) }

func (b bitmap) get(i int64) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitmap) set(i int64) { b[i>>6] |= 1 << (uint(i) & 63) }
