package diskrr

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/fault"
)

// spillSets is a small fixed workload: varied sizes, including an
// empty set (header-only record).
func spillSets() [][]uint32 {
	return [][]uint32{
		{3, 1, 4},
		{},
		{1, 5, 9, 2, 6},
		{7},
		{2, 8, 2, 8},
	}
}

// runSpill drives a full spill session in dir and returns the first
// error (from Append or Finish). On success the collection is closed
// before returning so the directory check below sees steady state.
func runSpill(t *testing.T, dir string) error {
	t.Helper()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range spillSets() {
		if err := w.Append(set, int64(len(set))); err != nil {
			return err
		}
	}
	col, err := w.Finish()
	if err != nil {
		return err
	}
	return col.Close()
}

// TestSpillWriteFailureEveryPrefix injects a write failure at every
// operation of a spill session — each length header, each node entry,
// and the final flush — and asserts the three contract points: the
// error wraps ErrSpill, no partial rrspill-*.bin survives, and the
// writer stays dead (sticky error) afterwards.
func TestSpillWriteFailureEveryPrefix(t *testing.T) {
	t.Cleanup(fault.Reset)
	boom := errors.New("injected: device dying")

	// First pass: count how many times the write point is consulted on
	// a clean run, so the sweep below covers every prefix exactly.
	h, hits := fault.Counting(func() error { return nil })
	fault.Set(FaultSpillWrite, h)
	if err := runSpill(t, t.TempDir()); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	fault.Reset()
	writes := int(hits.Load())
	sets := spillSets()
	wantWrites := len(sets) + 1 // one header per set, plus Finish's flush
	for _, set := range sets {
		wantWrites += len(set)
	}
	if writes != wantWrites {
		t.Fatalf("clean run hit the write point %d times, want %d", writes, wantWrites)
	}

	for n := 0; n < writes; n++ {
		dir := t.TempDir()
		fault.Set(FaultSpillWrite, fault.FailOn(n, boom))

		w, err := NewWriter(dir)
		if err != nil {
			t.Fatal(err)
		}
		var ferr error
		for _, set := range spillSets() {
			if ferr = w.Append(set, int64(len(set))); ferr != nil {
				break
			}
		}
		var col *Collection
		if ferr == nil {
			col, ferr = w.Finish()
		}
		fault.Reset()

		if ferr == nil {
			t.Fatalf("n=%d: injected failure never surfaced", n)
		}
		if !errors.Is(ferr, ErrSpill) {
			t.Fatalf("n=%d: error %v does not wrap ErrSpill", n, ferr)
		}
		if !strings.Contains(ferr.Error(), "device dying") {
			t.Fatalf("n=%d: cause lost from %v", n, ferr)
		}
		if col != nil {
			t.Fatalf("n=%d: Finish returned a collection alongside an error", n)
		}
		if left := dirEntries(t, dir); len(left) != 0 {
			t.Fatalf("n=%d: failed spill left partial files %v", n, left)
		}
		// The writer is dead: later calls return the sticky typed error.
		if err := w.Append([]uint32{1}, 1); !errors.Is(err, ErrSpill) {
			t.Fatalf("n=%d: Append after failure = %v, want ErrSpill", n, err)
		}
		if _, err := w.Finish(); !errors.Is(err, ErrSpill) {
			t.Fatalf("n=%d: Finish after failure = %v, want ErrSpill", n, err)
		}
		w.Abort() // explicit Abort after auto-abort must be a harmless no-op

		// The directory is still usable for a fresh spill.
		if err := runSpill(t, dir); err != nil {
			t.Fatalf("n=%d: clean run after failure: %v", n, err)
		}
	}
}

// TestSpillSyncFailure covers the fsync in Finish: all data written,
// the final durability step fails — same contract as a write failure.
func TestSpillSyncFailure(t *testing.T) {
	t.Cleanup(fault.Reset)
	boom := errors.New("injected: fsync failed")
	dir := t.TempDir()
	fault.Set(FaultSpillSync, fault.FailOn(0, boom))

	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range spillSets() {
		if err := w.Append(set, int64(len(set))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	col, err := w.Finish()
	fault.Reset()
	if col != nil || !errors.Is(err, ErrSpill) {
		t.Fatalf("Finish = (%v, %v), want (nil, ErrSpill)", col, err)
	}
	if left := dirEntries(t, dir); len(left) != 0 {
		t.Fatalf("failed sync left partial files %v", left)
	}
}

func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}
