package compete

import (
	"container/heap"
	"fmt"
	"sync"
)

// FollowerOptions configures FollowerGreedy.
type FollowerOptions struct {
	// K is the follower's seed budget (required, K ≥ 1).
	K int
	// Candidates restricts the follower's choices. Empty means every
	// node — including incumbent seeds: contesting a rival head-on is
	// a real strategy whose value the arena's tie rule decides.
	Candidates []uint32
}

// FollowerResult reports the follower's selected campaign.
type FollowerResult struct {
	// Seeds is the follower's seed set in greedy pick order.
	Seeds []uint32
	// Share is the follower's expected converted-node count with all
	// incumbents present, evaluated on the arena's worlds.
	Share float64
	// SharesByParty is the final share of every party (incumbents in
	// their input order, the follower last).
	SharesByParty []float64
	// Marginals[i] is the share gain of the i-th pick; non-increasing
	// when the per-world share function is submodular.
	Marginals []float64
	// Evaluations counts share evaluations — the CELF diagnostic (a
	// plain greedy would use K × |Candidates|).
	Evaluations int64
}

// FollowerGreedy solves the follower's problem of Bharathi et al.: given
// the incumbents' seed sets, pick K seeds for one additional campaign
// (the last party index) maximizing its expected share. Selection is
// lazy greedy (CELF) over the arena's fixed worlds; because the worlds
// are fixed, marginal-gain comparisons carry no sampling noise.
//
// incumbents may be empty, in which case the problem reduces to
// ordinary influence maximization on the arena's worlds.
func (a *Arena) FollowerGreedy(incumbents [][]uint32, opts FollowerOptions) (*FollowerResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("%w: follower budget K=%d must be at least 1", ErrBadSeeds, opts.K)
	}
	if len(incumbents)+1 > MaxParties {
		return nil, fmt.Errorf("%w: %d incumbents leave no room for a follower (max %d parties)",
			ErrBadSeeds, len(incumbents), MaxParties)
	}
	if err := a.validateSeeds(append(append([][]uint32{}, incumbents...), []uint32{})); err != nil {
		return nil, err
	}
	follower := len(incumbents)

	candidates, err := a.followerCandidates(opts.Candidates)
	if err != nil {
		return nil, err
	}
	if len(candidates) < opts.K {
		return nil, fmt.Errorf("%w: budget K=%d exceeds the %d available candidates",
			ErrBadSeeds, opts.K, len(candidates))
	}

	res := &FollowerResult{
		Seeds:     make([]uint32, 0, opts.K),
		Marginals: make([]float64, 0, opts.K),
	}

	// share evaluates the follower's expected count for a given seed
	// set; seedsByParty aliases incumbents plus the follower's slot.
	seedsByParty := append(append([][]uint32{}, incumbents...), nil)
	share := func(followerSeeds []uint32) float64 {
		seedsByParty[follower] = followerSeeds
		shares, err := a.Shares(seedsByParty)
		if err != nil {
			panic(err) // inputs validated above
		}
		res.Evaluations++
		return shares[follower]
	}

	// CELF round 0: evaluate every candidate's singleton share in
	// parallel (this is the expensive sweep; later rounds are lazy).
	gains := a.singletonShares(incumbents, follower, candidates)
	res.Evaluations += int64(len(candidates))
	pq := make(celfQueue, len(candidates))
	for i, v := range candidates {
		pq[i] = celfItem{node: v, gain: gains[i], round: 0}
	}
	heap.Init(&pq)

	current := 0.0
	for len(res.Seeds) < opts.K && pq.Len() > 0 {
		top := heap.Pop(&pq).(celfItem)
		if top.round == len(res.Seeds) {
			// Gain is current w.r.t. the chosen prefix: pick it.
			res.Seeds = append(res.Seeds, top.node)
			res.Marginals = append(res.Marginals, top.gain)
			current += top.gain
			continue
		}
		// Stale: re-evaluate against the current prefix and push back.
		total := share(append(res.Seeds, top.node))
		top.gain = total - current
		top.round = len(res.Seeds)
		heap.Push(&pq, top)
	}

	seedsByParty[follower] = res.Seeds
	final, err := a.Shares(seedsByParty)
	if err != nil {
		return nil, err
	}
	res.Share = final[follower]
	res.SharesByParty = final
	return res, nil
}

// followerCandidates returns the allowed candidate nodes: the explicit
// list, or every node. Incumbent seeds are deliberately *not* excluded:
// contesting a rival's seed head-on is a legitimate strategy whose value
// the tie rule decides (roughly half the contested cascade under
// TieRandom, nothing under TiePriority) — the greedy weighs it like any
// other candidate. Pass Candidates to restrict the pool.
func (a *Arena) followerCandidates(explicit []uint32) ([]uint32, error) {
	if len(explicit) > 0 {
		out := make([]uint32, 0, len(explicit))
		for _, v := range explicit {
			if int(v) >= a.n {
				return nil, fmt.Errorf("%w: candidate %d outside [0, %d)", ErrBadSeeds, v, a.n)
			}
			out = append(out, v)
		}
		return out, nil
	}
	out := make([]uint32, a.n)
	for v := range out {
		out[v] = uint32(v)
	}
	return out, nil
}

// singletonShares evaluates the follower's share for every singleton
// candidate, parallelized over candidates.
func (a *Arena) singletonShares(incumbents [][]uint32, follower int, candidates []uint32) []float64 {
	gains := make([]float64, len(candidates))
	workers := a.opts.Workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers < 1 {
		workers = 1
	}
	worlds := a.snaps.Count()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := a.newEvaluator()
			parties := len(incumbents) + 1
			counts := make([]int64, parties)
			seedsByParty := append(append([][]uint32{}, incumbents...), nil)
			single := make([]uint32, 1)
			for ci := w; ci < len(candidates); ci += workers {
				single[0] = candidates[ci]
				seedsByParty[follower] = single
				var total int64
				for i := 0; i < worlds; i++ {
					ev.run(i, seedsByParty, counts)
					total += counts[follower]
				}
				gains[ci] = float64(total) / float64(worlds)
			}
		}(w)
	}
	wg.Wait()
	return gains
}

// celfItem is one lazy-greedy priority-queue entry.
type celfItem struct {
	node  uint32
	gain  float64
	round int // the prefix length the gain was evaluated against
}

// celfQueue is a max-heap on gain (ties to the lower node id for
// deterministic output).
type celfQueue []celfItem

func (q celfQueue) Len() int { return len(q) }
func (q celfQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].node < q[j].node
}
func (q celfQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *celfQueue) Push(x interface{}) { *q = append(*q, x.(celfItem)) }
func (q *celfQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
