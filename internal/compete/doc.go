// Package compete implements competitive influence maximization — the
// second future-work direction of the paper's §8 ("we plan to extend
// TIM to other formulations of the influence maximization problem,
// e.g., competitive influence maximization [2, 23]"), following the
// formulation of Bharathi, Kempe & Salek (WINE 2007), the paper's
// reference [2].
//
// # Model
//
// Several parties seed disjoint campaigns in the same network. All
// campaigns propagate simultaneously under the same diffusion model: in
// a sampled live-edge world, a node adopts the color of the campaign
// that reaches it first (fewest hops from that campaign's seeds), and a
// node adopts at most once — conversions block rival propagation
// through that node. Simultaneous arrivals are resolved by a TieBreak
// rule: uniformly at random (the choice of [2]) or by party priority.
//
// # Evaluation
//
// Expected shares are estimated on pre-sampled live-edge worlds
// (spread.Snapshots): per world, one level-synchronized multi-source
// BFS colors every reached node, and shares average the per-color
// counts. Fixing the worlds gives common random numbers across seed-set
// evaluations — exactly what the lazy greedy of the follower's problem
// needs to compare marginal gains without sampling noise.
//
// # The follower's problem
//
// FollowerGreedy answers the question of [2]: given the incumbent
// campaigns' seeds, choose k seeds for a new campaign maximizing its
// expected share. The follower's expected share is monotone and
// submodular in its seed set ([2], Theorem 1 in continuous time), so
// lazy greedy attains the usual (1 − 1/e) factor; with an empty
// incumbent the problem degenerates to ordinary influence maximization.
package compete
