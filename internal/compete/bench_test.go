package compete

import (
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// BenchmarkArenaShares measures one multi-party share evaluation over
// the arena's worlds — the inner loop of the follower greedy.
func BenchmarkArenaShares(b *testing.B) {
	g := gen.ChungLuDirected(10000, 60000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 1000, Seed: 2})
	seeds := [][]uint32{{1, 2, 3}, {10, 20, 30}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Shares(seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowerGreedy measures the full follower selection: the
// parallel singleton sweep plus the lazy rounds.
func BenchmarkFollowerGreedy(b *testing.B) {
	g := gen.ChungLuDirected(3000, 18000, 2.4, 2.1, rng.New(3))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 300, Seed: 4})
	incumbent := [][]uint32{{0, 1, 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.FollowerGreedy(incumbent, FollowerOptions{K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
