package compete

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
	"repro/internal/tim"
)

// TestFollowerNoIncumbentMatchesPlainIM: with an empty incumbent the
// follower's problem is ordinary influence maximization, so the
// follower's greedy seeds must have MC spread on par with TIM+'s.
func TestFollowerNoIncumbentMatchesPlainIM(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng.New(20))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	a := NewArena(g, model, Options{Samples: 600, Seed: 21})
	fres, err := a.FollowerGreedy(nil, FollowerOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := tim.Maximize(g, model, tim.Options{K: 4, Epsilon: 0.2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	mc := spread.Options{Samples: 4000, Seed: 23}
	fs := spread.Estimate(g, model, fres.Seeds, mc)
	ts := spread.Estimate(g, model, tres.Seeds, mc)
	if fs < 0.9*ts {
		t.Fatalf("follower-as-IM spread %.1f below 0.9 × TIM+ %.1f", fs, ts)
	}
}

// TestFollowerAvoidsConqueredTerritory: with the incumbent holding a
// node of clique A, a 1-seed follower must claim the uncontested clique
// B — either directly or via the bridge head half−1, which converts B
// through the bridge *and* contests A, strictly dominating any interior
// A node.
func TestFollowerAvoidsConqueredTerritory(t *testing.T) {
	const half = 12
	g := gen.TwoCliquesBridge(half, 0.9)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 400, Seed: 30, Tie: TiePriority})
	// Nodes [0, half) form clique A, [half, 2·half) clique B; the
	// bridge runs half−1 → half.
	incumbent := []uint32{0}
	res, err := a.FollowerGreedy([][]uint32{incumbent}, FollowerOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Seeds[0]) < half-1 {
		t.Fatalf("follower picked %d, an interior node of the incumbent's clique [0,%d)", res.Seeds[0], half)
	}
	if res.Share < float64(half)/2 {
		t.Fatalf("follower share %.1f implausibly small for an open clique of %d", res.Share, half)
	}
	// Seeding inside the conquered clique must be strictly worse.
	interior, err := a.Shares([][]uint32{incumbent, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if interior[1] >= res.Share {
		t.Fatalf("interior-A seed share %.2f should trail greedy pick %.2f", interior[1], res.Share)
	}
}

// TestFollowerBaselineGuarantee: greedy promises (1 − 1/e)·OPT on a
// monotone submodular objective, so its share must be at least
// (1 − 1/e) times any other k-set's share — including the two natural
// baselines. (Greedy may genuinely trail a baseline by a few percent in
// absolute terms: with the incumbent holding the top hubs, the
// next-tier-degree batch is occasionally a hair better than greedy's
// sequential picks, and that is not a bug.)
func TestFollowerBaselineGuarantee(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, rng.New(33))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 500, Seed: 34})
	// Incumbent grabs the three highest-degree hubs.
	incumbent := topOutDegree(g, 3)
	const k = 3
	res, err := a.FollowerGreedy([][]uint32{incumbent}, FollowerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}

	evalFollower := func(seeds []uint32) float64 {
		shares, err := a.Shares([][]uint32{incumbent, seeds})
		if err != nil {
			t.Fatal(err)
		}
		return shares[1]
	}
	const approx = 1 - 1/2.718281828459045
	// Baseline 1: next-highest-degree nodes not taken by the incumbent.
	deg := topOutDegree(g, 3+k)[3:]
	// Baseline 2: arbitrary mid-graph nodes.
	random := []uint32{33, 77, 141}
	for name, base := range map[string][]uint32{"degree": deg, "random": random} {
		bs := evalFollower(base)
		if res.Share < approx*bs {
			t.Fatalf("greedy follower %.2f below (1-1/e) × %s baseline %.2f", res.Share, name, bs)
		}
	}
	// The arbitrary-node baseline, at least, should be beaten outright.
	if bs := evalFollower(random); res.Share < bs {
		t.Fatalf("greedy follower %.2f below arbitrary baseline %.2f", res.Share, bs)
	}
}

// topOutDegree returns the k nodes with the highest out-degree.
func topOutDegree(g *graph.Graph, k int) []uint32 {
	type nd struct {
		v uint32
		d int
	}
	best := make([]nd, 0, k)
	for v := uint32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v)
		if len(best) < k {
			best = append(best, nd{v, d})
		} else {
			mi := 0
			for i := 1; i < k; i++ {
				if best[i].d < best[mi].d {
					mi = i
				}
			}
			if d > best[mi].d {
				best[mi] = nd{v, d}
			}
		}
	}
	out := make([]uint32, len(best))
	for i, b := range best {
		out[i] = b.v
	}
	return out
}

// TestFollowerDeterminism: same arena, same options → identical seeds
// and diagnostics.
func TestFollowerDeterminism(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, rng.New(44))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 300, Seed: 45})
	inc := [][]uint32{{0, 1}}
	r1, err := a.FollowerGreedy(inc, FollowerOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.FollowerGreedy(inc, FollowerOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.Seeds) != fmt.Sprint(r2.Seeds) || r1.Share != r2.Share {
		t.Fatalf("non-deterministic follower: %v/%.3f vs %v/%.3f", r1.Seeds, r1.Share, r2.Seeds, r2.Share)
	}
}

// TestFollowerMarginalsNonIncreasing: lazy greedy on a submodular
// objective yields non-increasing marginal gains.
func TestFollowerMarginalsNonIncreasing(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, rng.New(50))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 300, Seed: 51, Tie: TiePriority})
	res, err := a.FollowerGreedy([][]uint32{{0}}, FollowerOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Marginals); i++ {
		if res.Marginals[i] > res.Marginals[i-1]+1e-9 {
			t.Fatalf("marginals increase at %d: %v", i, res.Marginals)
		}
	}
	var sum float64
	for _, m := range res.Marginals {
		sum += m
	}
	if diff := sum - res.Share; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Σ marginals %.4f != final share %.4f", sum, res.Share)
	}
}

// TestFollowerCELFSavesEvaluations: the lazy queue must evaluate far
// fewer sets than the k·n a plain greedy would.
func TestFollowerCELFSavesEvaluations(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng.New(60))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 200, Seed: 61})
	const k = 5
	res, err := a.FollowerGreedy(nil, FollowerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	plain := int64(k * g.N())
	if res.Evaluations >= plain/2 {
		t.Fatalf("CELF used %d evaluations, plain greedy would use %d", res.Evaluations, plain)
	}
}

// TestFollowerCandidateRestriction: explicit candidates bound the
// follower's choices. Under TiePriority, contesting the incumbent's
// seed is worthless, so greedy must take the best open node.
func TestFollowerCandidateRestriction(t *testing.T) {
	g := gen.Path(6, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 50, Seed: 70, Tie: TiePriority})
	res, err := a.FollowerGreedy([][]uint32{{0}}, FollowerOptions{K: 1, Candidates: []uint32{0, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Contesting 0 yields nothing (priority ties go to the incumbent);
	// between 4 (converts 4, 5) and 5 (converts 5), greedy must take 4.
	if res.Seeds[0] != 4 {
		t.Fatalf("restricted follower picked %d, want 4", res.Seeds[0])
	}
	if res.Share != 2 {
		t.Fatalf("share %.2f, want 2 (nodes 4 and 5)", res.Share)
	}
}

// TestFollowerContestsUnderRandomTies: with TieRandom the follower may
// find that colliding with the incumbent's seed beats settling open
// territory — here contesting the head of a long certain chain expects
// half the chain, more than any downstream node offers.
func TestFollowerContestsUnderRandomTies(t *testing.T) {
	g := gen.Path(6, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 4000, Seed: 71, Tie: TieRandom})
	res, err := a.FollowerGreedy([][]uint32{{0}}, FollowerOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Contesting node 0 expects 6/2 = 3; the best open node (1) yields
	// 5 deterministically. Greedy must therefore still pick node 1 —
	// but flip the chain so that contesting wins: on a 12-node chain
	// with the incumbent at the head and candidates limited to {0, 9},
	// contesting expects 6 > 3 from node 9.
	if res.Seeds[0] != 1 {
		t.Fatalf("open node 1 dominates here, picked %d", res.Seeds[0])
	}
	g2 := gen.Path(12, 1)
	a2 := NewArena(g2, diffusion.NewIC(), Options{Samples: 4000, Seed: 72, Tie: TieRandom})
	res2, err := a2.FollowerGreedy([][]uint32{{0}}, FollowerOptions{K: 1, Candidates: []uint32{0, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seeds[0] != 0 {
		t.Fatalf("contesting the head (E=6) beats node 9 (E=3), picked %d", res2.Seeds[0])
	}
}

// TestFollowerErrors: option validation.
func TestFollowerErrors(t *testing.T) {
	g := gen.Path(4, 0.5)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 10, Seed: 1})
	if _, err := a.FollowerGreedy(nil, FollowerOptions{K: 0}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("K=0: got %v", err)
	}
	if _, err := a.FollowerGreedy(nil, FollowerOptions{K: 5}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("K > candidates: got %v", err)
	}
	if _, err := a.FollowerGreedy(nil, FollowerOptions{K: 2, Candidates: []uint32{1}}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("K > explicit candidates: got %v", err)
	}
	if _, err := a.FollowerGreedy([][]uint32{{9}}, FollowerOptions{K: 1}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("incumbent out of range: got %v", err)
	}
	if _, err := a.FollowerGreedy(nil, FollowerOptions{K: 1, Candidates: []uint32{77}}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("candidate out of range: got %v", err)
	}
	full := make([][]uint32, MaxParties)
	for i := range full {
		full[i] = []uint32{0}
	}
	if _, err := a.FollowerGreedy(full, FollowerOptions{K: 1}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("party overflow: got %v", err)
	}
}
