package compete

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

// TieBreak selects how a node reached by several campaigns in the same
// timestep chooses its color.
type TieBreak int

const (
	// TieRandom adopts one of the claiming campaigns uniformly at
	// random — the rule of Bharathi et al. (default).
	TieRandom TieBreak = iota
	// TiePriority adopts the claiming campaign with the lowest index
	// (models an incumbent that wins head-on collisions).
	TiePriority
)

// String implements fmt.Stringer.
func (t TieBreak) String() string {
	switch t {
	case TieRandom:
		return "random"
	case TiePriority:
		return "priority"
	}
	return fmt.Sprintf("TieBreak(%d)", int(t))
}

// MaxParties is the largest supported number of simultaneous campaigns
// (claims within a timestep are tracked in a 64-bit mask).
const MaxParties = 64

// Options configures an Arena.
type Options struct {
	// Samples is the number of live-edge worlds (default 1000). More
	// worlds mean tighter share estimates; the standard error of a
	// share scales as 1/√Samples.
	Samples int
	// Workers parallelizes world sampling and share evaluation
	// (default GOMAXPROCS).
	Workers int
	// Seed fixes the sampled worlds and the TieRandom draws.
	Seed uint64
	// Tie selects the collision rule (default TieRandom).
	Tie TieBreak
}

func (o *Options) normalize() {
	if o.Samples <= 0 {
		o.Samples = 1000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// ErrBadSeeds wraps seed-set validation failures.
var ErrBadSeeds = errors.New("compete: invalid seed sets")

// Arena is a set of pre-sampled live-edge worlds shared by any number
// of competitive evaluations. Construct once per (graph, model,
// Options); evaluation methods are safe for concurrent use.
type Arena struct {
	n     int
	snaps *spread.Snapshots
	opts  Options
}

// NewArena samples opts.Samples live-edge worlds of g under model. All
// triggering-style models work (IC, LT, custom): a world's live in-edges
// of v are exactly v's sampled triggering set (§4.2 of the paper).
func NewArena(g *graph.Graph, model diffusion.Model, opts Options) *Arena {
	opts.normalize()
	return &Arena{
		n:     g.N(),
		snaps: spread.NewSnapshots(g, model, opts.Samples, opts.Workers, opts.Seed),
		opts:  opts,
	}
}

// Worlds returns the number of sampled worlds.
func (a *Arena) Worlds() int { return a.snaps.Count() }

// MemoryBytes approximates the bytes retained by the sampled worlds.
func (a *Arena) MemoryBytes() int64 { return a.snaps.MemoryBytes() }

// validateSeeds checks party count and node ranges.
func (a *Arena) validateSeeds(seedsByParty [][]uint32) error {
	if len(seedsByParty) == 0 {
		return fmt.Errorf("%w: no parties", ErrBadSeeds)
	}
	if len(seedsByParty) > MaxParties {
		return fmt.Errorf("%w: %d parties exceeds the maximum %d", ErrBadSeeds, len(seedsByParty), MaxParties)
	}
	for p, seeds := range seedsByParty {
		for _, v := range seeds {
			if int(v) >= a.n {
				return fmt.Errorf("%w: party %d seed %d outside [0, %d)", ErrBadSeeds, p, v, a.n)
			}
		}
	}
	return nil
}

// Shares estimates each party's expected converted-node count when all
// parties' campaigns propagate simultaneously. The estimate averages
// exact per-world outcomes over the arena's sampled worlds, so repeated
// calls with the same arena are deterministic.
func (a *Arena) Shares(seedsByParty [][]uint32) ([]float64, error) {
	if err := a.validateSeeds(seedsByParty); err != nil {
		return nil, err
	}
	parties := len(seedsByParty)
	worlds := a.snaps.Count()
	workers := a.opts.Workers
	if workers > worlds {
		workers = worlds
	}
	totals := make([]int64, parties)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := a.newEvaluator()
			local := make([]int64, parties)
			counts := make([]int64, parties)
			for i := w; i < worlds; i += workers {
				ev.run(i, seedsByParty, counts)
				for p := range counts {
					local[p] += counts[p]
				}
			}
			mu.Lock()
			for p := range local {
				totals[p] += local[p]
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	out := make([]float64, parties)
	for p := range out {
		out[p] = float64(totals[p]) / float64(worlds)
	}
	return out, nil
}

// evaluator owns the scratch state of one goroutine's colored BFS runs.
type evaluator struct {
	a *Arena

	epoch     uint32
	mark      []uint32 // activation epoch per node
	color     []uint8  // adopted party (valid when mark == epoch)
	claimMark []uint32 // claim epoch per node within a level
	claimMask []uint64 // claiming parties this level
	claimList []uint32
	frontier  []uint32
	next      []uint32
}

func (a *Arena) newEvaluator() *evaluator {
	return &evaluator{
		a:         a,
		mark:      make([]uint32, a.n),
		color:     make([]uint8, a.n),
		claimMark: make([]uint32, a.n),
		claimMask: make([]uint64, a.n),
	}
}

// run executes the simultaneous cascade of all parties in world i and
// fills counts with the per-party converted-node totals (seeds
// included; a node converts at most once).
func (e *evaluator) run(world int, seedsByParty [][]uint32, counts []int64) {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.mark {
			e.mark[i] = 0
			e.claimMark[i] = 0
		}
		e.epoch = 1
	}
	for p := range counts {
		counts[p] = 0
	}
	epoch := e.epoch

	// Timestep 1: the seed claims. A node seeded by several parties is
	// a genuine simultaneous collision.
	e.claimList = e.claimList[:0]
	for p, seeds := range seedsByParty {
		for _, v := range seeds {
			e.claim(v, uint8(p), epoch)
		}
	}
	e.frontier = e.resolve(world, epoch, counts, e.frontier[:0])

	// Subsequent timesteps: level-synchronized expansion. Claims are
	// gathered for a whole level, then resolved at once, so two parties
	// arriving in the same timestep genuinely tie.
	for len(e.frontier) > 0 {
		e.claimList = e.claimList[:0]
		for _, u := range e.frontier {
			cu := e.color[u]
			for _, v := range e.a.snaps.WorldOut(world, u) {
				if e.mark[v] == epoch {
					continue
				}
				e.claim(v, cu, epoch)
			}
		}
		e.next = e.resolve(world, epoch, counts, e.next[:0])
		e.frontier, e.next = e.next, e.frontier
	}
}

// claim records that party p reaches v in the current level.
func (e *evaluator) claim(v uint32, p uint8, epoch uint32) {
	if e.claimMark[v] != epoch {
		e.claimMark[v] = epoch
		e.claimMask[v] = 0
		e.claimList = append(e.claimList, v)
	}
	e.claimMask[v] |= 1 << p
}

// resolve converts every claimed node, applying the tie rule, and
// appends the conversions to dst (the next frontier). TieRandom draws
// are keyed by (arena seed, world, node) so an arena's evaluations are
// deterministic functions of the seed sets.
func (e *evaluator) resolve(world int, epoch uint32, counts []int64, dst []uint32) []uint32 {
	for _, v := range e.claimList {
		mask := e.claimMask[v]
		var p uint8
		if mask&(mask-1) == 0 || e.a.opts.Tie == TiePriority {
			p = uint8(bits.TrailingZeros64(mask))
		} else {
			idx := tieRand(e.a.opts.Seed, world, v).Intn(bits.OnesCount64(mask))
			p = nthSetBit(mask, idx)
		}
		e.mark[v] = epoch
		e.color[v] = p
		counts[p]++
		dst = append(dst, v)
	}
	return dst
}

// tieRand derives the deterministic tie-break stream for (world, node).
func tieRand(seed uint64, world int, v uint32) *rng.Rand {
	return rng.New(seed).Split(uint64(world) + 1).Split(uint64(v) + 1)
}

// nthSetBit returns the position of the idx-th (0-based) set bit.
func nthSetBit(mask uint64, idx int) uint8 {
	for i := 0; i < idx; i++ {
		mask &= mask - 1
	}
	return uint8(bits.TrailingZeros64(mask))
}
