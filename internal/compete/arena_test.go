package compete

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

// TestSharesSinglePartyMatchesSpread: with one party the competitive
// model degenerates to plain diffusion, so the share must agree with the
// independent Monte-Carlo spread estimator within sampling error.
func TestSharesSinglePartyMatchesSpread(t *testing.T) {
	for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
		g := gen.BarabasiAlbert(300, 3, rng.New(5))
		var model diffusion.Model
		if kind == diffusion.IC {
			graph.AssignWeightedCascade(g)
			model = diffusion.NewIC()
		} else {
			graph.AssignRandomNormalizedLT(g, rng.New(6))
			model = diffusion.NewLT()
		}
		a := NewArena(g, model, Options{Samples: 3000, Seed: 1})
		seeds := []uint32{0, 7, 33}
		shares, err := a.Shares([][]uint32{seeds})
		if err != nil {
			t.Fatal(err)
		}
		mc := spread.Estimate(g, model, seeds, spread.Options{Samples: 6000, Seed: 2})
		if math.Abs(shares[0]-mc) > 0.08*mc {
			t.Fatalf("%v: competitive share %.2f vs MC spread %.2f", kind, shares[0], mc)
		}
	}
}

// TestSharesDeterministicPath: on a p=1 path seeded at the head, the
// single party converts the whole path in every world.
func TestSharesDeterministicPath(t *testing.T) {
	g := gen.Path(7, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 50, Seed: 3})
	shares, err := a.Shares([][]uint32{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] != 7 {
		t.Fatalf("share %.2f, want 7", shares[0])
	}
}

// TestSharesFirstContactWins: the party whose seeds are closer converts
// the contested node — distance decides before any tie rule.
func TestSharesFirstContactWins(t *testing.T) {
	// Party 0 seeds node 0 with a 1-hop path to node 4; party 1 seeds
	// node 1 with a 2-hop path through node 2. All edges certain.
	g := graph.MustFromEdges(5, []graph.Edge{
		{From: 0, To: 4, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 4, Weight: 1},
	})
	for _, tie := range []TieBreak{TieRandom, TiePriority} {
		a := NewArena(g, diffusion.NewIC(), Options{Samples: 64, Seed: 9, Tie: tie})
		shares, err := a.Shares([][]uint32{{0}, {1}})
		if err != nil {
			t.Fatal(err)
		}
		// Party 0: {0, 4}; party 1: {1, 2}.
		if shares[0] != 2 || shares[1] != 2 {
			t.Fatalf("tie=%v: shares %v, want [2 2]", tie, shares)
		}
	}
}

// TestSharesBlocking: a converted node blocks rival propagation through
// it — the essential competitive mechanic.
func TestSharesBlocking(t *testing.T) {
	// Chain 0 → 1 → 2, all certain. Incumbent seeds 0; challenger
	// seeds 1. Node 2 must go to the challenger: by the time the
	// incumbent's cascade reaches node 1 it is already converted, and
	// conversion is final.
	g := gen.Path(3, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 32, Seed: 4})
	shares, err := a.Shares([][]uint32{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] != 1 || shares[1] != 2 {
		t.Fatalf("shares %v, want incumbent 1 (node 0), challenger 2 (nodes 1, 2)", shares)
	}
}

// TestSharesTiePriority: on a head-on collision the lower party index
// must win everything under TiePriority.
func TestSharesTiePriority(t *testing.T) {
	g := gen.Path(5, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 40, Seed: 8, Tie: TiePriority})
	// Both parties seed the head: party 0 wins the collision and
	// therefore the whole chain.
	shares, err := a.Shares([][]uint32{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] != 5 || shares[1] != 0 {
		t.Fatalf("shares %v, want [5 0]", shares)
	}
	// Reversing the party order reverses the outcome.
	sharesRev, err := a.Shares([][]uint32{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if sharesRev[0] != 5 {
		t.Fatalf("priority must favor party 0, got %v", sharesRev)
	}
}

// TestSharesTieRandomIsFair: under TieRandom a head-on collision on the
// chain head is won by each party about half the time, so expected
// shares are equal within Monte-Carlo noise.
func TestSharesTieRandomIsFair(t *testing.T) {
	g := gen.Path(4, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 4000, Seed: 12, Tie: TieRandom})
	shares, err := a.Shares([][]uint32{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	total := shares[0] + shares[1]
	if total != 4 {
		t.Fatalf("collision must still convert the whole chain: %v", shares)
	}
	if math.Abs(shares[0]-shares[1]) > 0.15*total {
		t.Fatalf("TieRandom shares unfair: %v", shares)
	}
}

// TestSharesConservation: converted counts partition the reachable set;
// they can never exceed n, and on a certain complete graph they cover n.
func TestSharesConservation(t *testing.T) {
	g := gen.Complete(6, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 100, Seed: 5})
	shares, err := a.Shares([][]uint32{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range shares {
		total += s
	}
	if total != 6 {
		t.Fatalf("complete certain graph must fully convert: shares %v sum %.2f", shares, total)
	}
	for p, s := range shares {
		if s < 1 {
			t.Fatalf("party %d seeded a node but converted %.2f < 1", p, s)
		}
	}
}

// TestSharesMonotoneInOwnSeeds: on a fixed arena, growing a party's
// seed set never shrinks its share (monotonicity of the competitive
// share, [2]).
func TestSharesMonotoneInOwnSeeds(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, rng.New(9))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 400, Seed: 10, Tie: TiePriority})
	incumbent := []uint32{3, 14}
	grow := []uint32{}
	prev := 0.0
	for _, v := range []uint32{1, 50, 90, 120} {
		grow = append(grow, v)
		shares, err := a.Shares([][]uint32{incumbent, grow})
		if err != nil {
			t.Fatal(err)
		}
		if shares[1]+1e-9 < prev {
			t.Fatalf("share fell from %.3f to %.3f after adding seed %d", prev, shares[1], v)
		}
		prev = shares[1]
	}
}

// TestSharesDeterministicAcrossCalls: the same arena must return
// bit-identical shares for repeated identical queries (fixed worlds +
// keyed tie randomness).
func TestSharesDeterministicAcrossCalls(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, rng.New(15))
	graph.AssignWeightedCascade(g)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 500, Seed: 16})
	q := [][]uint32{{1, 2}, {3, 4}}
	s1, err := a.Shares(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Shares(q)
	if err != nil {
		t.Fatal(err)
	}
	if s1[0] != s2[0] || s1[1] != s2[1] {
		t.Fatalf("non-deterministic shares: %v vs %v", s1, s2)
	}
}

// TestSharesErrors: validation of party counts and node ranges.
func TestSharesErrors(t *testing.T) {
	g := gen.Path(4, 0.5)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 10, Seed: 1})
	if _, err := a.Shares(nil); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("no parties: got %v", err)
	}
	if _, err := a.Shares([][]uint32{{9}}); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("out-of-range seed: got %v", err)
	}
	tooMany := make([][]uint32, MaxParties+1)
	for i := range tooMany {
		tooMany[i] = []uint32{0}
	}
	if _, err := a.Shares(tooMany); !errors.Is(err, ErrBadSeeds) {
		t.Fatalf("too many parties: got %v", err)
	}
}

// TestSharesEmptyPartyAllowed: a party with no seeds converts nothing
// but is a legal query (it is how the follower's baseline is computed).
func TestSharesEmptyPartyAllowed(t *testing.T) {
	g := gen.Path(4, 1)
	a := NewArena(g, diffusion.NewIC(), Options{Samples: 20, Seed: 2})
	shares, err := a.Shares([][]uint32{{0}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] != 4 || shares[1] != 0 {
		t.Fatalf("shares %v, want [4 0]", shares)
	}
}

// TestTieBreakString covers the Stringer.
func TestTieBreakString(t *testing.T) {
	if TieRandom.String() != "random" || TiePriority.String() != "priority" {
		t.Fatalf("%q %q", TieRandom.String(), TiePriority.String())
	}
	if TieBreak(7).String() == "" {
		t.Fatal("unknown tie rule should stringify")
	}
}

// TestSharesEqualSnapshotSpreadQuick: an Arena wraps spread.Snapshots,
// and with one party the colored BFS counts exactly the reachable set —
// so a Snapshots built with the same (samples, workers, seed) must give
// the *identical* spread value for any seed set. This pins the two BFS
// implementations against each other exactly, not statistically.
func TestSharesEqualSnapshotSpreadQuick(t *testing.T) {
	g := gen.ChungLuDirected(150, 700, 2.3, 2.1, rng.New(77))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	const samples, workers, worldSeed = 200, 2, 5
	a := NewArena(g, model, Options{Samples: samples, Workers: workers, Seed: worldSeed})
	snaps := spread.NewSnapshots(g, model, samples, workers, worldSeed)
	ev := snaps.NewEvaluator()
	f := func(seedVals []uint16, dup uint8) bool {
		if len(seedVals) == 0 {
			return true
		}
		seeds := make([]uint32, 0, len(seedVals)+1)
		for _, v := range seedVals {
			seeds = append(seeds, uint32(int(v)%g.N()))
		}
		if dup%2 == 0 {
			seeds = append(seeds, seeds[0]) // duplicates must not double-count
		}
		shares, err := a.Shares([][]uint32{seeds})
		if err != nil {
			return false
		}
		return shares[0] == ev.Spread(seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
