package tiered

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tim"
)

func TestPlannerColdNeverEscalates(t *testing.T) {
	p := NewPlanner(nil)
	// No RIS observation yet: a budgeted query must not gamble on RIS.
	d := p.Plan("ds|ic", 10000, 10, 0.1, 1, 50, 0, true)
	if d.Tier != TierFast {
		t.Fatalf("cold budgeted plan = %v, want fast", d.Tier)
	}
	// ... and with the fast tier forbidden (confidence floor), it sheds.
	d = p.Plan("ds|ic", 10000, 10, 0.1, 1, 50, 0.3, true)
	if d.Tier != TierShed {
		t.Fatalf("cold confident plan = %v, want shed", d.Tier)
	}
	// Unbudgeted queries always run RIS at the requested ε.
	d = p.Plan("ds|ic", 10000, 10, 0.1, 1, 0, 0, true)
	if d.Tier != TierRIS || d.Epsilon != 0.1 {
		t.Fatalf("unbudgeted plan = %+v", d)
	}
}

func TestPlannerEscalatesAlongLadder(t *testing.T) {
	p := NewPlanner(nil)
	const key = "ds|ic"
	n, k, ell := 10000, 10, 1.0
	// Calibrate: one observation at ε=0.1 predicts every rung by λ
	// rescaling. Make ε=0.1 cost 100ms.
	p.ObserveRIS(key, n, k, 0.1, ell, 100)

	// A generous budget keeps the requested ε.
	d := p.Plan(key, n, k, 0.1, ell, 1000, 0, true)
	if d.Tier != TierRIS || d.Epsilon != 0.1 {
		t.Fatalf("generous budget plan = %+v", d)
	}

	// λ ∝ 1/ε², so ε=0.3 costs ≈ 100·(0.1/0.3)² ≈ 11ms (the λ ratio is
	// not exactly (ε₁/ε₂)² because of the additive log terms, so compute
	// it). Pick a budget that only the coarse rungs fit.
	cost := func(eps float64) float64 {
		return 100 * stats.Lambda(n, k, eps, ell) / stats.Lambda(n, k, 0.1, ell)
	}
	budget := cost(0.3) * 1.5
	d = p.Plan(key, n, k, 0.1, ell, budget, 0, true)
	if d.Tier != TierRIS {
		t.Fatalf("tight budget plan = %+v, want ris", d)
	}
	if d.Epsilon != 0.3 {
		t.Fatalf("tight budget rung = %g, want 0.3 (cost(0.2)=%.1f, cost(0.3)=%.1f, budget=%.1f)",
			d.Epsilon, cost(0.2), cost(0.3), budget)
	}
	if want := tim.ApproxFactor(0.3); d.Confidence != want {
		t.Fatalf("confidence = %g, want %g", d.Confidence, want)
	}

	// A budget below every rung falls back to fast.
	d = p.Plan(key, n, k, 0.1, ell, cost(0.5)*0.5, 0, true)
	if d.Tier != TierFast {
		t.Fatalf("micro budget plan = %+v, want fast", d)
	}

	// min_confidence forbids coarse rungs: with the budget only fitting
	// ε≥0.3 but the floor demanding ε≤0.2, the query sheds.
	minConf := tim.ApproxFactor(0.2)
	d = p.Plan(key, n, k, 0.1, ell, cost(0.3)*1.5, minConf, true)
	if d.Tier != TierShed {
		t.Fatalf("confidence-floored plan = %+v, want shed", d)
	}
}

func TestPlannerFastNotOK(t *testing.T) {
	p := NewPlanner(nil)
	// Constrained queries (fastOK=false) shed rather than answer
	// heuristically.
	d := p.Plan("ds|ic", 10000, 10, 0.1, 1, 50, 0, false)
	if d.Tier != TierShed {
		t.Fatalf("fast-forbidden plan = %v, want shed", d.Tier)
	}
}

func TestPlannerLadderNormalization(t *testing.T) {
	p := NewPlanner([]float64{0.5, 0.1, 0.5, 0.3})
	want := []float64{0.1, 0.3, 0.5}
	got := p.Ladder()
	if len(got) != len(want) {
		t.Fatalf("ladder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
}

func TestPredictRISCold(t *testing.T) {
	p := NewPlanner(nil)
	if pred := p.PredictRIS("nope", 1000, 5, 0.1, 1); !math.IsInf(pred, 1) {
		t.Fatalf("cold prediction = %v, want +Inf", pred)
	}
}

func TestLatencyRing(t *testing.T) {
	var r LatencyRing
	if snap := r.Snapshot(); snap.Count != 0 || snap.P50Ms != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	for i := 1; i <= 100; i++ {
		r.Observe(float64(i))
	}
	snap := r.Snapshot()
	if snap.Count != 100 || snap.MaxMs != 100 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.P50Ms < 45 || snap.P50Ms > 55 {
		t.Fatalf("p50 = %v", snap.P50Ms)
	}
	if snap.P99Ms < 95 || snap.P99Ms > 100 {
		t.Fatalf("p99 = %v", snap.P99Ms)
	}
}
