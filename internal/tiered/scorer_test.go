package tiered

import (
	"sync"
	"testing"

	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestRefreshMatchesRebuild is the golden property of the incremental
// scorer: after any mutation sequence, a Refresh-maintained scorer is
// bitwise identical (scores and selection order) to a scorer built cold
// on the final snapshot.
func TestRefreshMatchesRebuild(t *testing.T) {
	g := gen.ErdosRenyiGnm(200, 900, rng.New(7))
	graph.AssignWeightedCascade(g)
	eg := evolve.New(g, evolve.WeightedCascade{}, evolve.Options{})

	snap, v0 := eg.Snapshot()
	sc := NewScorer(snap)

	batches := []evolve.Batch{
		{Inserts: []graph.Edge{{From: 3, To: 77}, {From: 77, To: 3}, {From: 0, To: 199}}},
		{Deletes: []evolve.EdgeKey{{From: 3, To: 77}}},
		{AddNodes: 5, Inserts: []graph.Edge{{From: 201, To: 5}, {From: 5, To: 204}}},
		{Inserts: []graph.Edge{{From: 204, To: 201}}, Deletes: []evolve.EdgeKey{{From: 0, To: 199}}},
	}
	prev := v0
	for i, b := range batches {
		v, err := eg.Apply(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		newSnap, sv := eg.Snapshot()
		if sv != v {
			t.Fatalf("batch %d: snapshot version %d, applied %d", i, sv, v)
		}
		delta, ok := eg.DeltaBetween(prev, v)
		if !ok {
			t.Fatalf("batch %d: delta log lost [%d,%d]", i, prev, v)
		}
		rescored := sc.Refresh(newSnap, delta)
		if rescored == 0 {
			t.Fatalf("batch %d: refresh rescored nothing", i)
		}

		cold := NewScorer(newSnap)
		if len(sc.score) != len(cold.score) {
			t.Fatalf("batch %d: %d scores vs cold %d", i, len(sc.score), len(cold.score))
		}
		for u := range cold.score {
			if sc.score[u] != cold.score[u] {
				t.Fatalf("batch %d: score[%d] = %v, cold rebuild %v", i, u, sc.score[u], cold.score[u])
			}
		}
		for j := range cold.sorted {
			if sc.sorted[j] != cold.sorted[j] {
				t.Fatalf("batch %d: sorted[%d] = %d, cold rebuild %d", i, j, sc.sorted[j], cold.sorted[j])
			}
		}
		prev = v
	}
}

func TestSelectBasics(t *testing.T) {
	// A star: node 0 points at everyone with high probability, so it must
	// be the first pick; after its discount, leaf scores collapse.
	edges := []graph.Edge{}
	for v := uint32(1); v < 10; v++ {
		edges = append(edges, graph.Edge{From: 0, To: v, Weight: 0.9})
	}
	g := graph.MustFromEdges(10, edges)
	sc := NewScorer(g)

	seeds, est := sc.Select(3, nil, nil)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds))
	}
	if seeds[0] != 0 {
		t.Fatalf("first pick = %d, want the hub 0", seeds[0])
	}
	if est <= 0 || est > 10 {
		t.Fatalf("estimate %v outside (0, n]", est)
	}

	// Exclude the hub: it must not appear.
	seeds, _ = sc.Select(3, nil, []uint32{0})
	for _, s := range seeds {
		if s == 0 {
			t.Fatal("excluded node picked")
		}
	}

	// Force leaves: they come first, the hub still follows.
	seeds, _ = sc.Select(2, []uint32{4, 7}, nil)
	if len(seeds) != 4 || seeds[0] != 4 || seeds[1] != 7 {
		t.Fatalf("forced selection = %v", seeds)
	}
	// Out-of-range and duplicate force entries are skipped, not picked.
	seeds, _ = sc.Select(1, []uint32{4, 4, 99}, nil)
	if len(seeds) != 2 || seeds[0] != 4 {
		t.Fatalf("forced selection with junk = %v", seeds)
	}

	// Determinism: identical calls, identical answers.
	a, _ := sc.Select(5, nil, nil)
	b, _ := sc.Select(5, nil, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic: %v vs %v", a, b)
		}
	}
}

// TestSelectConcurrent exercises the read-only overlay contract: many
// concurrent Selects on one scorer must not interfere (run with -race).
func TestSelectConcurrent(t *testing.T) {
	g := gen.ErdosRenyiGnm(300, 1500, rng.New(11))
	graph.AssignWeightedCascade(g)
	sc := NewScorer(g)
	want, _ := sc.Select(10, nil, nil)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, _ := sc.Select(10, nil, nil)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent select diverged: %v vs %v", got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestSelectKLargerThanN(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{From: 0, To: 1, Weight: 0.5}})
	sc := NewScorer(g)
	seeds, _ := sc.Select(10, nil, nil)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds from a 3-node graph, want 3", len(seeds))
	}
}
