package tiered

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
	"repro/internal/tim"
)

// Tier names which tier answered (or refused) a query.
type Tier int

const (
	// TierRIS is the full RIS pipeline (TIM+/TIM) at some ladder ε —
	// the only tier with an approximation guarantee.
	TierRIS Tier = iota
	// TierFast is the heuristic hop/degree scorer.
	TierFast
	// TierShed refuses the query: no tier satisfies its budget and
	// confidence floor right now.
	TierShed
)

// String implements fmt.Stringer with the wire names used in responses.
func (t Tier) String() string {
	switch t {
	case TierRIS:
		return "ris"
	case TierFast:
		return "fast"
	case TierShed:
		return "shed"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// DefaultLadder is the ε ladder budgeted queries escalate along. A fixed
// ladder (rather than a continuous ε) is deliberate: the server's RR
// collections are keyed per ε, so rungs shared across requests keep
// hitting the same warm prefix-deterministic collections — and a
// budgeted answer at rung ε is bit-identical to an unbudgeted query at
// that ε.
var DefaultLadder = []float64{0.1, 0.15, 0.2, 0.3, 0.5}

// Decision is the planner's verdict for one query.
type Decision struct {
	Tier Tier
	// Epsilon is the RIS rung chosen (TierRIS only).
	Epsilon float64
	// Confidence is the guaranteed approximation factor of the chosen
	// tier: 1 − 1/e − ε for RIS, 0 for the heuristic fast tier.
	Confidence float64
	// PredictedMs is the latency estimate the decision was based on
	// (0 when no model informed it).
	PredictedMs float64
}

// costModel is the per-(dataset, model) latency model. RIS cost is
// tracked as an EWMA of observed-ms / λ(n, k, ε, ℓ): λ is proportional
// to the sampling effort θ·EPT up to dataset constants, so one
// observation at any (k, ε) predicts every other rung by re-scaling λ.
// Fast cost is a plain EWMA.
type costModel struct {
	risPerLambda float64
	risObs       int64
	fastMs       float64
	fastObs      int64
	// bytesPerLambda tracks RR-collection bytes per unit λ the same way
	// risPerLambda tracks milliseconds: collection size is θ·E[RR-set
	// width], and θ scales with λ, so bytes re-scale across (k, ε)
	// rungs just like latency does (Borgs et al.'s cost argument).
	bytesPerLambda float64
	bytesObs       int64
	// promoteMsPerByte tracks spill-tier promotion cost (sequential read
	// + arena rebuild) per on-disk byte, so a budgeted query landing on
	// a demoted collection charges the disk read against its budget
	// instead of gambling on it.
	promoteMsPerByte float64
	promoteObs       int64
}

// ewmaAlpha weights new observations; high enough to follow load shifts,
// low enough that one outlier does not flip tier decisions.
const ewmaAlpha = 0.3

// Planner owns the tier-selection rule: pick the finest RIS ε on the
// ladder whose predicted latency fits the remaining budget; fall back to
// the fast tier when no rung fits and the query accepts heuristic
// answers; shed otherwise. All methods are safe for concurrent use.
type Planner struct {
	ladder []float64 // ascending ε (finest first)

	mu     sync.Mutex
	models map[string]*costModel
}

// NewPlanner builds a planner over the given ε ladder (nil selects
// DefaultLadder). The ladder is sorted ascending, deduplicated, and
// stripped of rungs outside (0, 1) — an out-of-range ε would make every
// escalated query fail option validation downstream. An all-invalid
// ladder falls back to DefaultLadder.
func NewPlanner(ladder []float64) *Planner {
	valid := make([]float64, 0, len(ladder))
	for _, v := range ladder {
		if v > 0 && v < 1 {
			valid = append(valid, v)
		}
	}
	ladder = valid
	if len(ladder) == 0 {
		ladder = DefaultLadder
	}
	sorted := append([]float64(nil), ladder...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	dedup := sorted[:0]
	for _, v := range sorted {
		if len(dedup) == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return &Planner{ladder: dedup, models: make(map[string]*costModel)}
}

// Ladder returns the planner's ε ladder (ascending; do not mutate).
func (p *Planner) Ladder() []float64 { return p.ladder }

// ObserveRIS feeds one completed (non-cached) RIS query into the cost
// model for key — every RIS completion, budgeted or not, calibrates
// escalation. Result-cache hits must not be fed: they would drive the
// prediction toward zero and blow every budget.
func (p *Planner) ObserveRIS(key string, n, k int, eps, ell, ms float64) {
	if n < 1 || k < 1 || eps <= 0 || ms < 0 {
		return
	}
	perLambda := ms / stats.Lambda(n, k, eps, ell)
	p.mu.Lock()
	m := p.model(key)
	if m.risObs == 0 {
		m.risPerLambda = perLambda
	} else {
		m.risPerLambda += ewmaAlpha * (perLambda - m.risPerLambda)
	}
	m.risObs++
	p.mu.Unlock()
}

// ObserveRISBytes feeds the measured RR-collection footprint of one
// completed RIS query into the byte model for key, normalized by
// λ(n, k, ε, ℓ) so one observation predicts every rung.
func (p *Planner) ObserveRISBytes(key string, n, k int, eps, ell float64, bytes int64) {
	if n < 1 || k < 1 || eps <= 0 || bytes <= 0 {
		return
	}
	perLambda := float64(bytes) / stats.Lambda(n, k, eps, ell)
	p.mu.Lock()
	m := p.model(key)
	if m.bytesObs == 0 {
		m.bytesPerLambda = perLambda
	} else {
		m.bytesPerLambda += ewmaAlpha * (perLambda - m.bytesPerLambda)
	}
	m.bytesObs++
	p.mu.Unlock()
}

// PredictRISBytes estimates the RR-collection bytes a RIS query at
// (n, k, eps, ell) would retain for key. ok is false when no byte
// observation has calibrated the model — capacity reports show the
// rung as unknown rather than zero.
func (p *Planner) PredictRISBytes(key string, n, k int, eps, ell float64) (bytes int64, ok bool) {
	p.mu.Lock()
	m := p.models[key]
	known := m != nil && m.bytesObs > 0
	var perLambda float64
	if known {
		perLambda = m.bytesPerLambda
	}
	p.mu.Unlock()
	if !known {
		return 0, false
	}
	if k < 1 {
		k = 1
	}
	return int64(perLambda * stats.Lambda(n, k, eps, ell)), true
}

// ObservePromotion feeds one completed spill-tier promotion (bytes
// read from disk, elapsed ms) into the promotion cost model for key.
func (p *Planner) ObservePromotion(key string, bytes int64, ms float64) {
	if bytes <= 0 || ms < 0 {
		return
	}
	perByte := ms / float64(bytes)
	p.mu.Lock()
	m := p.model(key)
	if m.promoteObs == 0 {
		m.promoteMsPerByte = perByte
	} else {
		m.promoteMsPerByte += ewmaAlpha * (perByte - m.promoteMsPerByte)
	}
	m.promoteObs++
	p.mu.Unlock()
}

// uncalibratedPromoteMsPerByte is the prior before any promotion has
// been observed: ~200 MB/s sequential read — pessimistic enough that a
// cold model does not blow a tight budget on a large spill file,
// optimistic enough that small promotions stay admissible.
const uncalibratedPromoteMsPerByte = 1.0 / (200 * 1024)

// PredictPromotionMs estimates the latency of promoting bytes of
// spilled collection back into memory for key. Unlike PredictRIS, an
// uncalibrated model returns a throughput prior rather than +Inf: the
// penalty only ever adds to a RIS prediction, and +Inf would make
// every budgeted query on a demoted key shed before the first
// promotion could calibrate anything.
func (p *Planner) PredictPromotionMs(key string, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	p.mu.Lock()
	perByte := uncalibratedPromoteMsPerByte
	if m := p.models[key]; m != nil && m.promoteObs > 0 {
		perByte = m.promoteMsPerByte
	}
	p.mu.Unlock()
	return perByte * float64(bytes)
}

// ObserveFast feeds one completed fast-tier query into the cost model.
func (p *Planner) ObserveFast(key string, ms float64) {
	if ms < 0 {
		return
	}
	p.mu.Lock()
	m := p.model(key)
	if m.fastObs == 0 {
		m.fastMs = ms
	} else {
		m.fastMs += ewmaAlpha * (ms - m.fastMs)
	}
	m.fastObs++
	p.mu.Unlock()
}

// model returns (creating if needed) the cost model for key. Caller
// holds p.mu.
func (p *Planner) model(key string) *costModel {
	m := p.models[key]
	if m == nil {
		m = &costModel{}
		p.models[key] = m
	}
	return m
}

// PredictRIS estimates the latency of a RIS query at (n, k, eps, ell)
// for key. +Inf when no observation has calibrated the model yet — a
// cold planner never escalates blind; unbudgeted traffic (or the load
// harness's warm-up) calibrates it.
func (p *Planner) PredictRIS(key string, n, k int, eps, ell float64) float64 {
	p.mu.Lock()
	m := p.models[key]
	var perLambda float64
	known := m != nil && m.risObs > 0
	if known {
		perLambda = m.risPerLambda
	}
	p.mu.Unlock()
	if !known {
		return math.Inf(1)
	}
	if k < 1 {
		k = 1
	}
	return perLambda * stats.Lambda(n, k, eps, ell)
}

// predictFast estimates fast-tier latency for key; 0 when uncalibrated
// (the fast tier is optimistically assumed affordable — it is the tier
// of last resort before shedding).
func (p *Planner) predictFast(key string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m := p.models[key]; m != nil && m.fastObs > 0 {
		return m.fastMs
	}
	return 0
}

// safetyFactor discounts the budget a prediction must fit into, so EWMA
// noise lands inside the deadline rather than past it.
const safetyFactor = 0.9

// Plan picks the tier for one query.
//
//   - reqEps is the requested ε: escalation never refines past it (no
//     wasted work) and coarsens along the ladder under budget pressure.
//   - budgetMs ≤ 0 means no latency budget: serve RIS at the finest
//     admissible ε (normally reqEps).
//   - minConf is the required approximation factor; it caps admissible ε
//     at tim.EpsilonForConfidence(minConf) and, when positive, makes the
//     guarantee-free fast tier inadmissible. Callers validate
//     minConf < 1 − 1/e before planning.
//   - fastOK reports whether the query's constraints allow the fast tier
//     (only force/exclude do; audiences, budgets, and horizons need RIS).
func (p *Planner) Plan(key string, n, k int, reqEps, ell, budgetMs, minConf float64, fastOK bool) Decision {
	return p.PlanWithPromotion(key, n, k, reqEps, ell, budgetMs, minConf, fastOK, nil)
}

// PlanWithPromotion is Plan with a per-rung latency surcharge: extraMs
// (nil = none) returns the milliseconds a RIS answer at rung ε would
// pay before sampling — in practice the predicted cost of promoting
// that rung's demoted collection from the spill tier. The surcharge
// applies only to RIS rungs (the fast tier touches no collection), and
// only to the budget check: an unbudgeted query always runs the finest
// admissible rung, promotion or not.
func (p *Planner) PlanWithPromotion(key string, n, k int, reqEps, ell, budgetMs, minConf float64, fastOK bool, extraMs func(eps float64) float64) Decision {
	maxEps := 1.0
	if minConf > 0 {
		maxEps = tim.EpsilonForConfidence(minConf)
	}
	// Admissible rungs: within the confidence cap, no finer than
	// requested. The requested ε itself is always a rung; when the
	// confidence cap is tighter than every rung, the cap is the rung.
	var rungs []float64
	if reqEps <= maxEps {
		rungs = append(rungs, reqEps)
	}
	for _, v := range p.ladder {
		if v > reqEps && v <= maxEps {
			rungs = append(rungs, v)
		}
	}
	if len(rungs) == 0 {
		rungs = []float64{maxEps}
	}

	if budgetMs <= 0 {
		eps := rungs[0]
		return Decision{Tier: TierRIS, Epsilon: eps, Confidence: tim.ApproxFactor(eps)}
	}
	for _, eps := range rungs {
		pred := p.PredictRIS(key, n, k, eps, ell)
		if extraMs != nil {
			pred += extraMs(eps)
		}
		if pred <= budgetMs*safetyFactor {
			return Decision{Tier: TierRIS, Epsilon: eps, Confidence: tim.ApproxFactor(eps), PredictedMs: pred}
		}
	}
	if fastOK && minConf <= 0 {
		if pred := p.predictFast(key); pred <= budgetMs*safetyFactor {
			return Decision{Tier: TierFast, PredictedMs: pred}
		}
	}
	return Decision{Tier: TierShed}
}
