package tiered

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestGateExactCounters pins the admission invariant under contention: N
// goroutines hammer a 1-slot gate; every TryAcquire is either an
// admission (paired with one Release) or a shed, never both, and the
// counters account for every attempt exactly. Run with -race.
func TestGateExactCounters(t *testing.T) {
	g := NewGate(1)
	const goroutines = 16
	const attemptsPer = 200

	var wg sync.WaitGroup
	var served, rejected sync.Map // per-goroutine tallies, merged below
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, r := 0, 0
			for i := 0; i < attemptsPer; i++ {
				if g.TryAcquire() {
					s++
					g.Release()
				} else {
					r++
				}
			}
			served.Store(w, s)
			rejected.Store(w, r)
		}(w)
	}
	wg.Wait()

	var totalServed, totalRejected int64
	served.Range(func(_, v any) bool { totalServed += int64(v.(int)); return true })
	rejected.Range(func(_, v any) bool { totalRejected += int64(v.(int)); return true })

	st := g.Stats()
	if totalServed+totalRejected != goroutines*attemptsPer {
		t.Fatalf("attempts lost: served=%d rejected=%d", totalServed, totalRejected)
	}
	if st.Admitted != totalServed {
		t.Fatalf("gate admitted=%d, callers served %d", st.Admitted, totalServed)
	}
	if st.Shed != totalRejected {
		t.Fatalf("gate shed=%d, callers rejected %d", st.Shed, totalRejected)
	}
	if st.InFlight != 0 {
		t.Fatalf("in_flight=%d after all released", st.InFlight)
	}
}

func TestGateAcquireBlocksAndHonorsContext(t *testing.T) {
	g := NewGate(1)
	if !g.TryAcquire() {
		t.Fatal("empty gate refused")
	}
	// A second TryAcquire sheds immediately.
	if g.TryAcquire() {
		t.Fatal("full gate admitted")
	}
	// Acquire with an expiring context returns the ctx error and does not
	// count as a shed.
	shedBefore := g.Stats().Shed
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full gate = %v", err)
	}
	if got := g.Stats().Shed; got != shedBefore {
		t.Fatalf("ctx-aborted Acquire counted as shed (%d -> %d)", shedBefore, got)
	}

	// Releasing frees the slot for a waiting Acquire.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("Acquire after release = %v", err)
	}
	g.Release()
}

func TestGateMinimumCapacity(t *testing.T) {
	g := NewGate(0)
	if g.Stats().Capacity != 1 {
		t.Fatalf("capacity = %d, want clamped to 1", g.Stats().Capacity)
	}
}
