package tiered

import (
	"context"
	"sync/atomic"
)

// Gate is the admission layer: a bound on in-flight query work. Budgeted
// queries use TryAcquire — when the server is full their budget would
// expire waiting, so they are rejected immediately (the server answers
// 503 with Retry-After) and the rejection is counted exactly once.
// Unbudgeted queries use Acquire and wait their turn.
//
// The counters are exact: every TryAcquire returns either an admission
// (paired with exactly one Release) or a rejection, never both — the
// property the race-mode admission tests pin down.
type Gate struct {
	capacity int
	sem      chan struct{}
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewGate builds a gate admitting at most capacity concurrent holders
// (minimum 1).
func NewGate(capacity int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	return &Gate{capacity: capacity, sem: make(chan struct{}, capacity)}
}

// TryAcquire admits the caller if a slot is free, without waiting.
// It returns false — and counts one shed — when the gate is full.
func (g *Gate) TryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
		g.shed.Add(1)
		return false
	}
}

// Acquire blocks until a slot is free or ctx is done. A ctx error is
// returned as-is and does not count as a shed (the client gave up; the
// gate did not refuse).
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired by TryAcquire or Acquire.
func (g *Gate) Release() { <-g.sem }

// GateStats is the /v1/stats snapshot of the admission layer.
type GateStats struct {
	Capacity int   `json:"capacity"`
	InFlight int   `json:"in_flight"`
	Admitted int64 `json:"admitted"`
	// Shed counts TryAcquire rejections (full server, budgeted query).
	Shed int64 `json:"shed"`
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Capacity: g.capacity,
		InFlight: len(g.sem),
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
	}
}
