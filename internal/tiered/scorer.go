// Package tiered is the latency-tiered answering subsystem: it gives
// every query a latency budget and serves it from the cheapest tier that
// fits.
//
// Three pieces cooperate (DESIGN.md §11):
//
//   - Scorer is the millisecond fast tier: a QuickIM-style two-hop
//     expected-influence score per node, precomputed per dataset snapshot
//     and maintained incrementally through the evolving-graph layer, with
//     a discounted top-k selection that answers in microseconds once warm.
//     Fast-tier answers are heuristic — no approximation guarantee.
//   - Planner decides, per request, which tier serves it: the finest
//     RIS ε on a fixed ladder whose predicted latency fits the remaining
//     budget, the fast tier when no RIS rung fits, or a shed when neither
//     satisfies the request's confidence floor. RIS latency is predicted
//     from per-(dataset, model) observations normalized by the sampling
//     effort λ(n, k, ε, ℓ), so one warm observation calibrates every
//     rung of the ladder.
//   - Gate bounds in-flight query work: budgeted queries are rejected
//     immediately when the server is full (their budget would expire in
//     the queue), unbudgeted queries wait.
//
// The ε ladder is what keeps escalation sound rather than heuristic: the
// server's RR-collection store is prefix-deterministic per (dataset,
// model, ε), so a budgeted query escalated to ladder rung ε returns
// bit-identical seeds to an unbudgeted query at that same ε — the budget
// moves a query along the ladder, never onto different answers.
package tiered

import (
	"container/heap"
	"sort"

	"repro/internal/evolve"
	"repro/internal/graph"
)

// Scorer is the fast tier: per-node two-hop expected-influence scores
// over one immutable graph snapshot. Build cost is O(n + m·d̄) once per
// dataset; Select cost is O((k + touched) log n) thanks to the
// pre-sorted score index, independent of how many nodes the graph has.
//
// A Scorer is immutable after Build/Refresh; concurrent Selects are safe.
// Refresh mutates and must be externally serialized against Select (the
// server guards each scorer with an RWMutex).
type Scorer struct {
	g     *graph.Graph // the snapshot the scores reflect
	score []float64    // score[u] = 1 + Σ_v p(uv)·(1 + Σ_w p(vw))
	// sorted holds all node ids ordered by (score desc, id asc); Select
	// walks it lazily so a query touches only the top of the order.
	sorted []uint32
}

// scoreNode computes the two-hop score of u on g: the expected number of
// nodes activated counting u itself, its direct activations, and their
// direct activations, treating edge weights as independent probabilities
// (QuickIM's hop-count argument truncated at two hops). The computation
// is per-node and order-deterministic, which is what lets an incremental
// Refresh reproduce a full rebuild bit for bit.
func scoreNode(g *graph.Graph, u uint32) float64 {
	s := 1.0
	nbrs, w := g.OutNeighbors(u)
	for i, v := range nbrs {
		one := 1.0
		vn, vw := g.OutNeighbors(v)
		for j := range vn {
			one += float64(vw[j])
		}
		s += float64(w[i]) * one
	}
	return s
}

// NewScorer builds the fast-tier scores for one graph snapshot.
func NewScorer(g *graph.Graph) *Scorer {
	n := g.N()
	s := &Scorer{g: g, score: make([]float64, n)}
	for u := 0; u < n; u++ {
		s.score[u] = scoreNode(g, uint32(u))
	}
	s.resort()
	return s
}

// resort rebuilds the score-descending node order.
func (s *Scorer) resort() {
	n := len(s.score)
	if cap(s.sorted) < n {
		s.sorted = make([]uint32, n)
	}
	s.sorted = s.sorted[:n]
	for i := range s.sorted {
		s.sorted[i] = uint32(i)
	}
	sort.Slice(s.sorted, func(i, j int) bool {
		a, b := s.sorted[i], s.sorted[j]
		if s.score[a] != s.score[b] {
			return s.score[a] > s.score[b]
		}
		return a < b
	})
}

// N returns the node count the scores cover.
func (s *Scorer) N() int { return len(s.score) }

// MemoryBytes returns the scorer's own heap footprint (score array plus
// sorted index, by capacity) for the capacity ledger. The underlying
// graph snapshot is owned — and accounted — by the evolve layer.
func (s *Scorer) MemoryBytes() int64 {
	if s == nil {
		return 0
	}
	return int64(cap(s.score))*8 + int64(cap(s.sorted))*4
}

// Refresh advances the scores from the snapshot they were built on to
// newG, rescoring only the nodes delta could have affected, and returns
// how many nodes were rescored. Score(u) reads u's out-edges and the
// out-edges of u's out-neighbors, so an edge change at head h (whose
// in-edge list — including policy-driven reweighs — is what delta.Heads
// records) affects exactly the changed edges' tails T plus the new
// snapshot's in-neighbors of T. Rescoring runs the same per-node
// computation as a full build, so a refreshed Scorer is bit-identical to
// NewScorer(newG).
func (s *Scorer) Refresh(newG *graph.Graph, delta evolve.Delta) int {
	tails := evolve.TouchedTails(s.g, newG, delta)
	affected := make(map[uint32]struct{}, len(tails)*2)
	for _, t := range tails {
		affected[t] = struct{}{}
		in, _ := newG.InNeighbors(t)
		for _, x := range in {
			affected[x] = struct{}{}
		}
	}
	n := newG.N()
	for u := delta.NBefore; u < n; u++ {
		affected[uint32(u)] = struct{}{}
	}
	if len(s.score) < n {
		grown := make([]float64, n)
		copy(grown, s.score)
		s.score = grown
	}
	for u := range affected {
		s.score[u] = scoreNode(newG, u)
	}
	s.g = newG
	s.resort()
	return len(affected)
}

// scoreHeap is a max-heap of (value, node) with deterministic tie-break
// on the node id, used by Select's lazy frontier.
type scoreHeap struct {
	val  []float64
	node []uint32
}

func (h *scoreHeap) Len() int { return len(h.node) }
func (h *scoreHeap) Less(i, j int) bool {
	if h.val[i] != h.val[j] {
		return h.val[i] > h.val[j]
	}
	return h.node[i] < h.node[j]
}
func (h *scoreHeap) Swap(i, j int) {
	h.val[i], h.val[j] = h.val[j], h.val[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
}
func (h *scoreHeap) Push(x any) {
	p := x.([2]float64)
	h.val = append(h.val, p[0])
	h.node = append(h.node, uint32(p[1]))
}
func (h *scoreHeap) Pop() any {
	n := len(h.node) - 1
	v, u := h.val[n], h.node[n]
	h.val, h.node = h.val[:n], h.node[:n]
	return [2]float64{v, float64(u)}
}

// Select picks k seeds greedily by discounted score: each pick
// multiplies every out-neighbor's remaining score by (1 − p(pick, v)),
// the probability the pick does not already activate v — the
// degree-discount idea applied to the two-hop scores. force seeds are
// returned first (consuming none of k) with their discounts applied;
// exclude nodes are never picked. The second return is the heuristic
// spread estimate: the sum of the discounted scores at pick time,
// clamped to the node count.
//
// Selection is deterministic (score-descending, id-ascending
// tie-break) and read-only on the Scorer: per-query discounts live in a
// private overlay, so concurrent Selects do not interfere.
func (s *Scorer) Select(k int, force, exclude []uint32) ([]uint32, float64) {
	n := len(s.score)
	overlay := make(map[uint32]float64, 8*(k+len(force))+len(exclude))
	cur := func(u uint32) float64 {
		if v, ok := overlay[u]; ok {
			return v
		}
		return s.score[u]
	}
	discount := func(u uint32) {
		nbrs, w := s.g.OutNeighbors(u)
		for i, v := range nbrs {
			overlay[v] = cur(v) * (1 - float64(w[i]))
		}
	}
	seeds := make([]uint32, 0, k+len(force))
	picked := make(map[uint32]struct{}, k+len(force)+len(exclude))
	est := 0.0
	for _, u := range exclude {
		picked[u] = struct{}{}
	}
	for _, u := range force {
		if _, dup := picked[u]; dup || int(u) >= n {
			continue
		}
		picked[u] = struct{}{}
		seeds = append(seeds, u)
		est += cur(u)
		discount(u)
	}

	h := &scoreHeap{}
	cursor := 0
	for taken := 0; taken < k && len(seeds) < n; {
		// Keep the frontier invariant: the heap top dominates every node
		// not yet pushed, because un-pushed nodes sit at their base score
		// and discounts only lower scores. Only then is popping the top
		// the true greedy pick over all n nodes.
		for cursor < n && (h.Len() == 0 || h.val[0] < s.score[s.sorted[cursor]]) {
			u := s.sorted[cursor]
			cursor++
			heap.Push(h, [2]float64{cur(u), float64(u)})
		}
		if h.Len() == 0 {
			break
		}
		top := heap.Pop(h).([2]float64)
		u := uint32(top[1])
		if top[0] != cur(u) {
			// Stale entry: the node was discounted after being pushed.
			heap.Push(h, [2]float64{cur(u), float64(u)})
			continue
		}
		if _, skip := picked[u]; skip {
			continue
		}
		picked[u] = struct{}{}
		seeds = append(seeds, u)
		est += top[0]
		taken++
		discount(u)
	}
	if est > float64(n) {
		est = float64(n)
	}
	return seeds, est
}
