package tiered

import (
	"sort"
	"sync"
)

// ringSize bounds the latency window a quantile snapshot covers. 1024
// observations is enough for a stable p99 while keeping the snapshot
// sort trivial next to any query.
const ringSize = 1024

// LatencyRing tracks per-tier latency observations over a sliding window
// and reports p50/p99 for /v1/stats and the load harness. Observations
// and snapshots are safe for concurrent use.
type LatencyRing struct {
	mu    sync.Mutex
	buf   [ringSize]float64
	idx   int
	count int64
	maxMs float64
}

// Observe records one latency in milliseconds.
func (r *LatencyRing) Observe(ms float64) {
	r.mu.Lock()
	r.buf[r.idx] = ms
	r.idx = (r.idx + 1) % ringSize
	r.count++
	if ms > r.maxMs {
		r.maxMs = ms
	}
	r.mu.Unlock()
}

// LatencySnapshot is one tier's latency summary. Quantiles cover the
// sliding window; Count and MaxMs cover the whole lifetime.
type LatencySnapshot struct {
	Count int64   `json:"served"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Snapshot computes the current summary.
func (r *LatencyRing) Snapshot() LatencySnapshot {
	r.mu.Lock()
	n := int(r.count)
	if n > ringSize {
		n = ringSize
	}
	window := make([]float64, n)
	copy(window, r.buf[:n])
	snap := LatencySnapshot{Count: r.count, MaxMs: r.maxMs}
	r.mu.Unlock()
	if n == 0 {
		return snap
	}
	sort.Float64s(window)
	snap.P50Ms = quantile(window, 0.50)
	snap.P99Ms = quantile(window, 0.99)
	return snap
}

// quantile reads the q-quantile of a sorted window by nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
