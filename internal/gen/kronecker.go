package gen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// StochasticKronecker samples a directed graph from the stochastic
// Kronecker model (Leskovec et al.): the adjacency probability matrix is
// the iterations-fold Kronecker power of a 2×2 initiator
//
//	[ a b ]
//	[ c d ]
//
// with a,b,c,d ∈ [0,1]. The graph has n = 2^iterations nodes and
// approximately (a+b+c+d)^iterations expected edges; edges are placed
// with the standard ball-dropping procedure (one descent through the
// initiator per edge), which samples from a close approximation of the
// model. Kronecker graphs reproduce the heavy tails, densification, and
// core-periphery structure of real social networks, complementing the
// Chung–Lu profiles used for Table 2.
func StochasticKronecker(iterations int, a, b, c, d float64, edges int, r *rng.Rand) *graph.Graph {
	if iterations < 1 {
		iterations = 1
	}
	if iterations > 30 {
		iterations = 30
	}
	n := 1 << uint(iterations)
	total := a + b + c + d
	if total <= 0 {
		return graph.MustFromEdges(n, nil)
	}
	pa, pb, pc := a/total, b/total, c/total
	es := make([]graph.Edge, edges)
	for i := range es {
		var row, col int
		for level := 0; level < iterations; level++ {
			x := r.Float64()
			row <<= 1
			col <<= 1
			switch {
			case x < pa:
				// top-left: no bits set
			case x < pa+pb:
				col |= 1
			case x < pa+pb+pc:
				row |= 1
			default:
				row |= 1
				col |= 1
			}
		}
		es[i] = graph.Edge{From: uint32(row), To: uint32(col)}
	}
	return graph.MustFromEdges(n, es)
}

// ForestFire grows a directed graph with the forest-fire model
// (Leskovec, Kleinberg, Faloutsos): each new node links to a uniformly
// chosen ambassador, then recursively "burns" through the ambassador's
// out- and in-links with forward probability p and backward probability
// pb·p, linking to every burned node. Forest-fire graphs show the
// densification and shrinking-diameter behaviour of real social
// networks.
func ForestFire(n int, p, backward float64, r *rng.Rand) *graph.Graph {
	if n < 2 {
		n = 2
	}
	if p < 0 {
		p = 0
	}
	if p > 0.99 {
		p = 0.99 // keep the expected burn size finite
	}
	type adj struct{ out, in []uint32 }
	nodes := make([]adj, n)
	var edges []graph.Edge
	addEdge := func(from, to uint32) {
		edges = append(edges, graph.Edge{From: from, To: to})
		nodes[from].out = append(nodes[from].out, to)
		nodes[to].in = append(nodes[to].in, from)
	}
	burned := make([]bool, n)
	var frontier, toClear []uint32
	// geometric draws the number of links burned from one list:
	// Geometric(1-p) successes.
	geometric := func(prob float64) int {
		if prob <= 0 {
			return 0
		}
		count := 0
		for r.Float64() < prob {
			count++
		}
		return count
	}
	for v := 1; v < n; v++ {
		ambassador := uint32(r.Intn(v))
		frontier = frontier[:0]
		toClear = toClear[:0]
		frontier = append(frontier, ambassador)
		burned[ambassador] = true
		toClear = append(toClear, ambassador)
		for head := 0; head < len(frontier); head++ {
			u := frontier[head]
			// Burn forward links.
			burnFrom(&frontier, &toClear, burned, nodes[u].out, geometric(p), r)
			// Burn backward links with damped probability.
			burnFrom(&frontier, &toClear, burned, nodes[u].in, geometric(p*backward), r)
		}
		for _, u := range frontier {
			addEdge(uint32(v), u)
		}
		for _, u := range toClear {
			burned[u] = false
		}
	}
	return graph.MustFromEdges(n, edges)
}

// burnFrom picks up to count distinct unburned nodes from candidates and
// appends them to the frontier.
func burnFrom(frontier, toClear *[]uint32, burned []bool, candidates []uint32, count int, r *rng.Rand) {
	if count <= 0 || len(candidates) == 0 {
		return
	}
	if count > len(candidates) {
		count = len(candidates)
	}
	// Sample without replacement via partial Fisher-Yates over a copy
	// of the indices (candidate lists are small).
	idx := make([]int, len(candidates))
	for i := range idx {
		idx[i] = i
	}
	for s := 0; s < count; s++ {
		j := s + r.Intn(len(idx)-s)
		idx[s], idx[j] = idx[j], idx[s]
		u := candidates[idx[s]]
		if !burned[u] {
			burned[u] = true
			*frontier = append(*frontier, u)
			*toClear = append(*toClear, u)
		}
	}
}

// ExpectedKroneckerEdges returns the expected edge count of the full
// stochastic Kronecker model for the given initiator and iteration
// count: (a+b+c+d)^iterations.
func ExpectedKroneckerEdges(iterations int, a, b, c, d float64) float64 {
	return math.Pow(a+b+c+d, float64(iterations))
}
