package gen

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Scale selects how large an instance of a dataset profile to generate.
// The paper runs on machines with 48 GB of RAM for hours; the scaled tiers
// keep the same shape (average degree, directedness, degree skew) at node
// counts that fit unit tests (ScaleTiny), benchmarks (ScaleSmall), and
// longer offline runs (ScaleFull — the paper's actual sizes).
type Scale int

const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale converts "tiny", "small" or "full" to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("gen: unknown scale %q (want tiny, small, or full)", s)
}

// Profile describes one of the paper's Table 2 datasets as a synthetic
// stand-in. PaperN and PaperM record the original sizes (edges as reported
// in Table 2 — undirected edge count for undirected datasets). Nodes maps
// each Scale to the synthetic node count; edge counts scale proportionally
// so the average degree matches the paper.
type Profile struct {
	Name     string
	Directed bool
	PaperN   int
	PaperM   int
	// AvgDegree is the paper's Table 2 "average degree" column:
	// 2m/n for undirected datasets, (in+out) edges per node for directed.
	AvgDegree float64
	// Gamma is the power-law exponent used for the degree-weight
	// sequence (in-degree side for directed graphs).
	Gamma float64
	Nodes [3]int // indexed by Scale
}

// Profiles returns the five dataset stand-ins from Table 2, in paper order.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "nethept", Directed: false,
			PaperN: 15_000, PaperM: 31_000, AvgDegree: 4.1, Gamma: 2.6,
			Nodes: [3]int{2_000, 15_000, 15_000},
		},
		{
			Name: "epinions", Directed: true,
			PaperN: 76_000, PaperM: 509_000, AvgDegree: 13.4, Gamma: 2.2,
			Nodes: [3]int{8_000, 76_000, 76_000},
		},
		{
			Name: "dblp", Directed: false,
			PaperN: 655_000, PaperM: 2_000_000, AvgDegree: 6.1, Gamma: 2.6,
			Nodes: [3]int{16_000, 80_000, 655_000},
		},
		{
			Name: "livejournal", Directed: true,
			PaperN: 4_800_000, PaperM: 69_000_000, AvgDegree: 28.5, Gamma: 2.3,
			Nodes: [3]int{12_000, 60_000, 4_800_000},
		},
		{
			Name: "twitter", Directed: true,
			PaperN: 41_600_000, PaperM: 1_470_000_000, AvgDegree: 70.5, Gamma: 2.1,
			Nodes: [3]int{16_000, 80_000, 41_600_000},
		},
	}
}

// ProfileByName returns the named profile (case-insensitive).
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: unknown dataset profile %q", name)
}

// NodesAt returns the synthetic node count at the given scale.
func (p Profile) NodesAt(s Scale) int { return p.Nodes[s] }

// EdgesAt returns the target edge count at the given scale: for directed
// profiles the number of directed edges, for undirected profiles the
// number of undirected edges (each becoming two directed edges). Scaled
// proportionally from the paper's sizes.
func (p Profile) EdgesAt(s Scale) int {
	ratio := float64(p.Nodes[s]) / float64(p.PaperN)
	m := int(float64(p.PaperM) * ratio)
	if m < p.Nodes[s] {
		m = p.Nodes[s] // keep the graph from being degenerate at tiny scales
	}
	return m
}

// Generate builds the synthetic instance at the given scale. The generator
// is a Chung–Lu model with heavy-tailed weights (undirected mirrored for
// undirected datasets), which matches the crawled datasets in the
// dimensions the algorithms are sensitive to. Weights on edges are left
// zero: apply a model parameterization (graph.AssignWeightedCascade or
// graph.AssignRandomNormalizedLT) before running algorithms.
func (p Profile) Generate(s Scale, seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := p.NodesAt(s)
	m := p.EdgesAt(s)
	if p.Directed {
		return ChungLuDirected(n, m, p.Gamma+0.3, p.Gamma, r)
	}
	return ChungLuUndirected(n, m, p.Gamma, r)
}

// DirectedEdgesAt returns the number of directed edges Generate will
// produce at scale s (undirected profiles double their edge count).
func (p Profile) DirectedEdgesAt(s Scale) int {
	if p.Directed {
		return p.EdgesAt(s)
	}
	return 2 * p.EdgesAt(s)
}
