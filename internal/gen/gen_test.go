package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestAliasTableUniform(t *testing.T) {
	tab := NewAliasTable([]float64{1, 1, 1, 1})
	r := rng.New(1)
	counts := make([]int, 4)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[tab.Sample(r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-trials/4) > trials/4*0.05 {
			t.Fatalf("outcome %d count %d far from uniform", i, c)
		}
	}
}

func TestAliasTableSkewed(t *testing.T) {
	tab := NewAliasTable([]float64{9, 1})
	r := rng.New(2)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if tab.Sample(r) == 0 {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.9) > 0.01 {
		t.Fatalf("skewed alias rate %v, want 0.9", rate)
	}
}

func TestAliasTableZeroWeightNeverSampled(t *testing.T) {
	tab := NewAliasTable([]float64{1, 0, 1})
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		if tab.Sample(r) == 1 {
			t.Fatal("zero-weight outcome sampled")
		}
	}
}

func TestAliasTablePanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v: expected panic", weights)
				}
			}()
			NewAliasTable(weights)
		}()
	}
}

func TestErdosRenyiGnm(t *testing.T) {
	g := ErdosRenyiGnm(100, 500, rng.New(1))
	if g.N() != 100 || g.M() != 500 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, rng.New(1))
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	// Undirected: every edge mirrored, so in-degree equals out-degree.
	for v := uint32(0); int(v) < g.N(); v++ {
		if g.InDegree(v) != g.OutDegree(v) {
			t.Fatalf("node %d: in %d != out %d", v, g.InDegree(v), g.OutDegree(v))
		}
	}
	// Preferential attachment should produce a hub much larger than the
	// average degree.
	stats := graph.ComputeStats(g)
	if stats.MaxOutDegree < 3*int(stats.AverageDegree) {
		t.Fatalf("no hub: max %d avg %.1f", stats.MaxOutDegree, stats.AverageDegree)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 4, 0.1, rng.New(1))
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() != 2*200*4/2 {
		t.Fatalf("m=%d, want %d", g.M(), 2*200*4/2)
	}
}

func TestWattsStrogatzClamps(t *testing.T) {
	// Degenerate parameters must not panic.
	g := WattsStrogatz(2, 7, 0.5, rng.New(1))
	if g.N() < 3 {
		t.Fatalf("n=%d", g.N())
	}
}

func TestPlantedPartitionDensity(t *testing.T) {
	const n, c = 300, 3
	g := PlantedPartition(n, c, 0.1, 0.001, rng.New(5))
	if g.N() != n {
		t.Fatalf("n=%d", g.N())
	}
	intra, inter := 0, 0
	community := func(v uint32) int { return int(v) * c / n }
	for _, e := range g.Edges() {
		if community(e.From) == community(e.To) {
			intra++
		} else {
			inter++
		}
	}
	// Expected intra ≈ 3 * 100*99 * 0.1 ≈ 2970, inter ≈ 60000*2*... small.
	if intra < 2000 || intra > 4000 {
		t.Fatalf("intra-community edges %d outside expected band", intra)
	}
	if inter > intra/2 {
		t.Fatalf("inter-community edges %d too dense vs intra %d", inter, intra)
	}
}

func TestPlantedPartitionExtremes(t *testing.T) {
	// p=0 everywhere: no edges.
	g := PlantedPartition(50, 5, 0, 0, rng.New(1))
	if g.M() != 0 {
		t.Fatalf("m=%d, want 0", g.M())
	}
	// pIn=1, pOut=0: each community is a complete directed subgraph.
	g = PlantedPartition(20, 2, 1, 0, rng.New(1))
	want := 2 * 10 * 9
	if g.M() != want {
		t.Fatalf("m=%d, want %d", g.M(), want)
	}
}

func TestChungLuDirectedShape(t *testing.T) {
	g := ChungLuDirected(2000, 20000, 2.4, 2.1, rng.New(9))
	if g.N() != 2000 || g.M() != 20000 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	stats := graph.ComputeStats(g)
	// Heavy tail: the 99th percentile out-degree should far exceed the median.
	if stats.DegreePercentiles[2] < 3*stats.DegreePercentiles[0] {
		t.Fatalf("degree distribution not heavy-tailed: %+v", stats.DegreePercentiles)
	}
	if stats.MaxInDegree < 50 {
		t.Fatalf("expected an in-degree hub, max in-degree %d", stats.MaxInDegree)
	}
}

func TestChungLuUndirectedMirrored(t *testing.T) {
	g := ChungLuUndirected(500, 2000, 2.5, rng.New(11))
	if g.M() != 4000 {
		t.Fatalf("m=%d, want 4000 directed", g.M())
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		if g.InDegree(v) != g.OutDegree(v) {
			t.Fatalf("node %d: in %d != out %d", v, g.InDegree(v), g.OutDegree(v))
		}
	}
}

func TestFixtures(t *testing.T) {
	if g := Path(5, 0.5); g.M() != 4 || g.OutDegree(4) != 0 || g.InDegree(0) != 0 {
		t.Fatal("Path shape wrong")
	}
	if g := Cycle(5, 0.5); g.M() != 5 || g.InDegree(0) != 1 {
		t.Fatal("Cycle shape wrong")
	}
	if g := Star(5, 0.5); g.OutDegree(0) != 4 || g.InDegree(0) != 0 {
		t.Fatal("Star shape wrong")
	}
	if g := InStar(5, 0.5); g.InDegree(0) != 4 || g.OutDegree(0) != 0 {
		t.Fatal("InStar shape wrong")
	}
	if g := Complete(4, 0.5); g.M() != 12 {
		t.Fatal("Complete shape wrong")
	}
	if g := TwoCliquesBridge(3, 0.5); g.M() != 2*6+1 || g.N() != 6 {
		t.Fatal("TwoCliquesBridge shape wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, err := ProfileByName("nethept")
	if err != nil {
		t.Fatal(err)
	}
	g1 := p.Generate(ScaleTiny, 42)
	g2 := p.Generate(ScaleTiny, 42)
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatal("same seed produced different sizes")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	g3 := p.Generate(ScaleTiny, 43)
	same := g3.M() == g1.M()
	if same {
		d := 0
		e3 := g3.Edges()
		for i := range e1 {
			if e1[i] != e3[i] {
				d++
			}
		}
		if d == 0 {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestProfilesMatchTable2Shape(t *testing.T) {
	for _, p := range Profiles() {
		g := p.Generate(ScaleTiny, 1)
		if g.N() != p.NodesAt(ScaleTiny) {
			t.Fatalf("%s: n=%d want %d", p.Name, g.N(), p.NodesAt(ScaleTiny))
		}
		if g.M() != p.DirectedEdgesAt(ScaleTiny) {
			t.Fatalf("%s: m=%d want %d", p.Name, g.M(), p.DirectedEdgesAt(ScaleTiny))
		}
		// Average directed degree should be within 2x of the paper's
		// average-degree column interpretation at this scale (tiny
		// scales clamp edges up so allow slack).
		if !p.Directed {
			for v := uint32(0); int(v) < g.N(); v++ {
				if g.InDegree(v) != g.OutDegree(v) {
					t.Fatalf("%s: undirected profile asymmetric at node %d", p.Name, v)
				}
			}
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("orkut"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"tiny", ScaleTiny}, {"SMALL", ScaleSmall}, {"Full", ScaleFull}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if ScaleTiny.String() != "tiny" || Scale(9).String() == "" {
		t.Fatal("Scale.String broken")
	}
}

// Property: alias table sampling frequencies converge to the weights.
func TestAliasTableFrequenciesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		weights := make([]float64, n)
		var total float64
		for i := range weights {
			weights[i] = float64(1 + r.Intn(10))
			total += weights[i]
		}
		tab := NewAliasTable(weights)
		counts := make([]int, n)
		const trials = 20000
		for i := 0; i < trials; i++ {
			counts[tab.Sample(r)]++
		}
		for i := range weights {
			want := weights[i] / total
			got := float64(counts[i]) / trials
			if math.Abs(got-want) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
