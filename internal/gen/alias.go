package gen

import "repro/internal/rng"

// AliasTable samples indices in O(1) from a fixed discrete distribution
// using Walker's alias method. It backs the Chung–Lu generator, where
// millions of edge endpoints are drawn from heavy-tailed weight vectors.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a sampler over the given non-negative weights.
// At least one weight must be positive; all-zero or empty input panics,
// because a distribution cannot be formed.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("gen: negative weight in alias table")
		}
		total += w
	}
	if n == 0 || total == 0 {
		panic("gen: alias table needs at least one positive weight")
	}
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scale weights so the average is 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range scaled {
		if w < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		// Numerical leftovers; treat as certain.
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// Sample draws one index according to the table's distribution.
func (t *AliasTable) Sample(r *rng.Rand) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }
