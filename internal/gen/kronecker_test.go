package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestStochasticKroneckerShape(t *testing.T) {
	g := StochasticKronecker(12, 0.9, 0.5, 0.5, 0.2, 40000, rng.New(1))
	if g.N() != 1<<12 {
		t.Fatalf("n=%d, want %d", g.N(), 1<<12)
	}
	if g.M() != 40000 {
		t.Fatalf("m=%d", g.M())
	}
	st := graph.ComputeStats(g)
	// Kronecker with a dominant top-left block concentrates degree on
	// low node ids — heavy-tailed out-degree expected.
	if st.MaxOutDegree < 10*int(st.AverageDegree) {
		t.Fatalf("no hub: max out %d avg %.1f", st.MaxOutDegree, st.AverageDegree)
	}
}

func TestStochasticKroneckerClamps(t *testing.T) {
	g := StochasticKronecker(0, 0.5, 0.5, 0.5, 0.5, 10, rng.New(2))
	if g.N() != 2 {
		t.Fatalf("iterations clamp: n=%d", g.N())
	}
	g = StochasticKronecker(3, 0, 0, 0, 0, 10, rng.New(3))
	if g.M() != 0 {
		t.Fatalf("zero initiator should yield no edges, m=%d", g.M())
	}
}

func TestStochasticKroneckerDeterministic(t *testing.T) {
	a := StochasticKronecker(8, 0.9, 0.5, 0.5, 0.2, 1000, rng.New(7))
	b := StochasticKronecker(8, 0.9, 0.5, 0.5, 0.2, 1000, rng.New(7))
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestExpectedKroneckerEdges(t *testing.T) {
	got := ExpectedKroneckerEdges(10, 0.9, 0.5, 0.5, 0.2)
	want := math.Pow(2.1, 10)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("expected edges %v, want %v", got, want)
	}
}

func TestForestFireBasics(t *testing.T) {
	g := ForestFire(2000, 0.35, 0.3, rng.New(4))
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	// Every non-root node must have at least one out-edge (to its
	// ambassador's burn set).
	for v := uint32(1); int(v) < g.N(); v++ {
		if g.OutDegree(v) == 0 {
			t.Fatalf("node %d has no out-edges", v)
		}
	}
	// Densification: average degree must exceed 1 (pure ambassador
	// linking would give exactly 1).
	st := graph.ComputeStats(g)
	if st.AverageDegree <= 1.01 {
		t.Fatalf("no densification: avg degree %.2f", st.AverageDegree)
	}
	// In-degree skew: early nodes accumulate burns.
	if st.MaxInDegree < 5 {
		t.Fatalf("max in-degree %d suspiciously flat", st.MaxInDegree)
	}
}

func TestForestFireEdgesPointBackward(t *testing.T) {
	g := ForestFire(300, 0.3, 0.2, rng.New(5))
	for _, e := range g.Edges() {
		if e.From <= e.To {
			t.Fatalf("edge %d->%d: forest fire links newer to older only", e.From, e.To)
		}
	}
}

func TestForestFireExtremes(t *testing.T) {
	// p=0: exactly one edge per new node (the ambassador link).
	g := ForestFire(100, 0, 0, rng.New(6))
	if g.M() != 99 {
		t.Fatalf("p=0: m=%d, want 99", g.M())
	}
	// Degenerate n clamps.
	g = ForestFire(1, 0.5, 0.5, rng.New(7))
	if g.N() != 2 {
		t.Fatalf("n clamp: %d", g.N())
	}
	// High p clamps rather than burning forever.
	g = ForestFire(200, 5, 0.1, rng.New(8))
	if g.N() != 200 {
		t.Fatalf("high p: n=%d", g.N())
	}
}

func TestForestFireRunsWithTIMStack(t *testing.T) {
	// The generated graph must be a valid substrate for the full stack.
	g := ForestFire(500, 0.3, 0.3, rng.New(9))
	graph.AssignWeightedCascade(g)
	st := graph.ComputeStats(g)
	if st.Edges != g.M() {
		t.Fatalf("stats disagree: %+v", st)
	}
}
