// Package gen produces synthetic graphs.
//
// The paper evaluates on five crawled social networks (Table 2). Those
// datasets are external artifacts we cannot ship, so this package
// synthesizes graphs whose *shape* matches each dataset: node count, edge
// count, directed versus undirected, and a heavy-tailed degree
// distribution. Every algorithm in this repository touches a graph only
// through adjacency lists and edge probabilities, so matching those
// dimensions reproduces the runtime and quality phenomena the paper
// measures (see DESIGN.md §3 for the substitution argument).
//
// In addition to the dataset profiles, the package offers the classic
// random-graph families (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
// planted-partition communities, directed Chung–Lu) and small deterministic
// fixtures used throughout the test suites.
package gen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ErdosRenyiGnm returns a directed G(n, m) graph: m edges drawn uniformly
// at random with replacement (parallel edges and self-loops possible but
// rare for sparse graphs).
func ErdosRenyiGnm(n, m int, r *rng.Rand) *graph.Graph {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			From: uint32(r.Intn(n)),
			To:   uint32(r.Intn(n)),
		}
	}
	return graph.MustFromEdges(n, edges)
}

// BarabasiAlbert grows an undirected preferential-attachment graph with
// attach edges per new node, then mirrors each undirected edge into two
// directed edges. The result has (n - seedClique) * attach undirected
// edges plus the seed clique.
func BarabasiAlbert(n, attach int, r *rng.Rand) *graph.Graph {
	if attach < 1 {
		attach = 1
	}
	if n < attach+1 {
		n = attach + 1
	}
	// Repeated-nodes list implementation: each endpoint occurrence is one
	// entry, so uniform sampling from the list is degree-proportional.
	targets := make([]uint32, 0, 2*n*attach)
	var und [][2]uint32
	// Seed: a small clique of attach+1 nodes.
	for i := 0; i <= attach; i++ {
		for j := i + 1; j <= attach; j++ {
			und = append(und, [2]uint32{uint32(i), uint32(j)})
			targets = append(targets, uint32(i), uint32(j))
		}
	}
	// chosen preserves first-draw order: iterating a map here would make
	// the targets list — and with it every later degree-proportional
	// draw — depend on the per-process map hash seed, breaking the
	// determinism contract of seeded generators.
	chosen := make([]uint32, 0, attach)
	for v := attach + 1; v < n; v++ {
		chosen = chosen[:0]
	draw:
		for len(chosen) < attach {
			t := targets[r.Intn(len(targets))]
			for _, c := range chosen {
				if c == t {
					continue draw
				}
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			und = append(und, [2]uint32{uint32(v), t})
			targets = append(targets, uint32(v), t)
		}
	}
	edges := make([]graph.Edge, 0, 2*len(und))
	for _, e := range und {
		edges = append(edges, graph.Edge{From: e[0], To: e[1]}, graph.Edge{From: e[1], To: e[0]})
	}
	return graph.MustFromEdges(n, edges)
}

// WattsStrogatz builds an undirected small-world ring lattice with k
// neighbors per side and rewiring probability beta, mirrored to directed
// form. k is clamped to even and to at most n-1.
func WattsStrogatz(n, k int, beta float64, r *rng.Rand) *graph.Graph {
	if n < 3 {
		n = 3
	}
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k--
	}
	if k >= n {
		k = n - 1
		if k%2 == 1 {
			k--
		}
	}
	type pair struct{ a, b uint32 }
	und := make([]pair, 0, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := (v + j) % n
			und = append(und, pair{uint32(v), uint32(w)})
		}
	}
	for i := range und {
		if r.Float64() < beta {
			// Rewire the far endpoint to a uniform random node,
			// avoiding a self-loop.
			a := und[i].a
			b := uint32(r.Intn(n))
			for b == a {
				b = uint32(r.Intn(n))
			}
			und[i].b = b
		}
	}
	edges := make([]graph.Edge, 0, 2*len(und))
	for _, e := range und {
		edges = append(edges, graph.Edge{From: e.a, To: e.b}, graph.Edge{From: e.b, To: e.a})
	}
	return graph.MustFromEdges(n, edges)
}

// PlantedPartition builds a directed community graph with c equal-size
// communities. Each ordered intra-community pair is an edge with
// probability pIn and each inter-community pair with probability pOut,
// sampled by geometric skipping so the cost is proportional to the number
// of edges, not pairs.
func PlantedPartition(n, c int, pIn, pOut float64, r *rng.Rand) *graph.Graph {
	if c < 1 {
		c = 1
	}
	community := make([]int, n)
	for v := range community {
		community[v] = v * c / n
	}
	var edges []graph.Edge
	// Skip-sample over the n*n ordered-pair grid, switching probability by
	// block membership. For simplicity and predictability, sample the two
	// classes separately: iterate rows; within a row the intra-community
	// columns form one contiguous block (communities are contiguous by
	// construction).
	for u := 0; u < n; u++ {
		cu := community[u]
		lo := cu * n / c
		hi := (cu + 1) * n / c
		edges = skipSampleRow(edges, u, lo, hi, pIn, n, r) // intra block
		edges = skipSampleRow(edges, u, 0, lo, pOut, n, r) // left inter block
		edges = skipSampleRow(edges, u, hi, n, pOut, n, r) // right inter block
	}
	return graph.MustFromEdges(n, edges)
}

// skipSampleRow appends edges (u -> col) for cols in [lo, hi) hit by a
// Bernoulli(p) process, using geometric jumps.
func skipSampleRow(edges []graph.Edge, u, lo, hi int, p float64, n int, r *rng.Rand) []graph.Edge {
	if p <= 0 || lo >= hi {
		return edges
	}
	if p >= 1 {
		for v := lo; v < hi; v++ {
			if v != u {
				edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v)})
			}
		}
		return edges
	}
	logq := math.Log1p(-p)
	v := lo
	for {
		// Geometric skip: number of failures before next success.
		skip := int(math.Floor(r.Exp() / -logq))
		v += skip
		if v >= hi {
			return edges
		}
		if v != u {
			edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v)})
		}
		v++
	}
}

// ChungLuDirected draws m directed edges whose endpoints follow
// heavy-tailed weight sequences: sources ∝ rank^{-1/(gammaOut-1)}, targets
// ∝ rank^{-1/(gammaIn-1)}. Rank-to-node assignment is randomized so node
// ids carry no degree information. Self-loops and parallel edges may occur
// with the frequency natural to the model.
func ChungLuDirected(n, m int, gammaOut, gammaIn float64, r *rng.Rand) *graph.Graph {
	outAlias := NewAliasTable(powerLawWeights(n, gammaOut))
	inAlias := NewAliasTable(powerLawWeights(n, gammaIn))
	outPerm := make([]int, n)
	inPerm := make([]int, n)
	r.Perm(outPerm)
	r.Perm(inPerm)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			From: uint32(outPerm[outAlias.Sample(r)]),
			To:   uint32(inPerm[inAlias.Sample(r)]),
		}
	}
	return graph.MustFromEdges(n, edges)
}

// ChungLuUndirected draws mUndirected undirected edges from one
// heavy-tailed weight sequence and mirrors them, giving 2*mUndirected
// directed edges.
func ChungLuUndirected(n, mUndirected int, gamma float64, r *rng.Rand) *graph.Graph {
	alias := NewAliasTable(powerLawWeights(n, gamma))
	perm := make([]int, n)
	r.Perm(perm)
	edges := make([]graph.Edge, 0, 2*mUndirected)
	for i := 0; i < mUndirected; i++ {
		a := uint32(perm[alias.Sample(r)])
		b := uint32(perm[alias.Sample(r)])
		edges = append(edges, graph.Edge{From: a, To: b}, graph.Edge{From: b, To: a})
	}
	return graph.MustFromEdges(n, edges)
}

// powerLawWeights returns ranked weights w_i = (i + i0)^(-1/(gamma-1)),
// which induce an expected degree distribution with power-law exponent
// gamma. The offset i0 caps the maximum expected degree at a realistic
// multiple of the average.
func powerLawWeights(n int, gamma float64) []float64 {
	if gamma <= 1 {
		gamma = 2.1
	}
	alpha := 1 / (gamma - 1)
	i0 := math.Max(1, float64(n)*0.001)
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i)+i0, -alpha)
	}
	return w
}

// Deterministic fixtures (used heavily in tests).

// Path returns the directed path 0 -> 1 -> ... -> n-1 with weight p.
func Path(n int, p float32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{From: uint32(v), To: uint32(v + 1), Weight: p})
	}
	return graph.MustFromEdges(n, edges)
}

// Cycle returns the directed cycle over n nodes with weight p.
func Cycle(n int, p float32) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{From: uint32(v), To: uint32((v + 1) % n), Weight: p})
	}
	return graph.MustFromEdges(n, edges)
}

// Star returns a star with node 0 pointing at nodes 1..n-1 with weight p.
func Star(n int, p float32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{From: 0, To: uint32(v), Weight: p})
	}
	return graph.MustFromEdges(n, edges)
}

// InStar returns a star with nodes 1..n-1 pointing at node 0 with weight p.
func InStar(n int, p float32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{From: uint32(v), To: 0, Weight: p})
	}
	return graph.MustFromEdges(n, edges)
}

// Complete returns the complete directed graph (no self-loops) with
// weight p on every edge.
func Complete(n int, p float32) *graph.Graph {
	edges := make([]graph.Edge, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v), Weight: p})
			}
		}
	}
	return graph.MustFromEdges(n, edges)
}

// TwoCliquesBridge returns two complete directed cliques of size half
// joined by a single bridge edge from the last node of the first clique to
// the first node of the second. Useful for testing that seed selection
// spreads across components.
func TwoCliquesBridge(half int, p float32) *graph.Graph {
	n := 2 * half
	var edges []graph.Edge
	for base := 0; base < n; base += half {
		for u := base; u < base+half; u++ {
			for v := base; v < base+half; v++ {
				if u != v {
					edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v), Weight: p})
				}
			}
		}
	}
	edges = append(edges, graph.Edge{From: uint32(half - 1), To: uint32(half), Weight: p})
	return graph.MustFromEdges(n, edges)
}
