package tim

import (
	"context"
	"math"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/stats"
)

// kptEstimate is the output of Algorithm 2 plus what Algorithm 3 reuses.
type kptEstimate struct {
	kptStar    float64
	iterations int
	// lastBatch is R′, the RR sets generated in the final iteration —
	// Algorithm 3 line 1 retrieves exactly these.
	lastBatch *diffusion.RRCollection
	// ept is the observed mean width, an estimate of EPT.
	ept float64
}

// estimateKPT is Algorithm 2 (KptEstimation). It runs at most
// log2(n) − 1 iterations; iteration i samples
// c_i = (6ℓ ln n + 6 ln log2 n)·2^i RR sets, measures
// κ(R) = 1 − (1 − w(R)/m)^k on each (Equation 8), and stops as soon as
// the average exceeds 2^−i, returning KPT* = n·avg/2. If no iteration
// triggers, KPT* = 1 — the smallest possible value, since a seed always
// activates itself (§3.2).
//
// For constrained scenarios the RR sets are drawn under cfg (weighted
// roots, bounded horizon) and the n in KPT* = n·avg/2 becomes the
// audience mass W — the natural generalization: avg estimates the
// expected κ of a weight-drawn root, so W·avg/2 plays the role n·avg/2
// does for uniform roots (DESIGN.md §9.2 discusses how exact the bound
// stays). For the default scenario mass == float64(n) and the arithmetic
// is bit-identical to the unconstrained estimator.
func estimateKPT(ctx context.Context, g *graph.Graph, model diffusion.Model, cfg diffusion.SampleConfig, mass float64, k int, ell float64, workers int, seeds *seedSequence) kptEstimate {
	n := g.N()
	m := g.M()
	iterations := stats.KptIterations(n)
	var last *diffusion.RRCollection
	for i := 1; i <= iterations; i++ {
		if ctx.Err() != nil {
			break // caller surfaces ctx.Err(); the estimate is discarded
		}
		ci := stats.SampleScheduleCi(n, ell, i)
		col := diffusion.SampleCollection(g, model, ci, diffusion.SampleOptions{
			Workers: workers,
			Seed:    seeds.next(),
			Ctx:     ctx,
			Config:  cfg,
		})
		last = col
		sum := KappaSum(g, col, k, m)
		avg := sum / float64(ci)
		if avg > math.Pow(2, -float64(i)) {
			return kptEstimate{
				kptStar:    mass * sum / (2 * float64(ci)),
				iterations: i,
				lastBatch:  col,
				ept:        eptOf(col),
			}
		}
	}
	// No iteration triggered: fall back to the smallest possible value —
	// a seed always activates itself (§3.2), worth one node's audience:
	// exactly 1 for uniform profiles, mass/n (≤ the best single node's
	// weight, since max ≥ mean) for weighted ones.
	return kptEstimate{
		kptStar:    mass / float64(n),
		iterations: iterations,
		lastBatch:  last,
		ept:        eptOf(last),
	}
}

// KappaSum computes Σ κ(R) over the collection, where
// κ(R) = 1 − (1 − w(R)/m)^k (Equation 8). With no edges (m = 0) every κ
// is 0: a uniformly random edge cannot point into R because there are
// none (Lemma 5's edge-sampling argument). Exported because the
// distributed runner (internal/dist) shares this paper-critical formula.
func KappaSum(g *graph.Graph, col *diffusion.RRCollection, k, m int) float64 {
	if m == 0 {
		return 0
	}
	var sum float64
	count := col.Count()
	for i := 0; i < count; i++ {
		w := diffusion.Width(g, col.Set(i))
		sum += 1 - math.Pow(1-float64(w)/float64(m), float64(k))
	}
	return sum
}

// eptOf estimates EPT (the expected RR-set width) as the mean width of the
// final Algorithm 2 batch, which geometrically dominates the sample size.
func eptOf(col *diffusion.RRCollection) float64 {
	if col == nil || col.Count() == 0 {
		return 0
	}
	return float64(col.TotalWidth) / float64(col.Count())
}
