package tim

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TestThetaFollowsLambdaOverKpt: the node-selection sample count must be
// ceil(λ/KPT+) exactly, tying the implementation to Equations 4-5.
func TestThetaFollowsLambdaOverKpt(t *testing.T) {
	g := gen.ChungLuDirected(800, 4800, 2.4, 2.1, nil2rand(1))
	applyWC(g)
	opts := Options{K: 10, Epsilon: 0.3, Seed: 2, Workers: 1}
	res, err := Maximize(g, diffusion.NewIC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute λ with the effective ℓ the run used.
	o := Options{K: 10, Epsilon: 0.3, Variant: TIMPlus, Ell: 1}
	if err := o.validate(g.N()); err != nil {
		t.Fatal(err)
	}
	ell := o.effectiveEll(g.N())
	lambda := stats.Lambda(g.N(), 10, 0.3, ell)
	want := int64(math.Ceil(lambda / res.KptPlus))
	if res.Theta != want {
		t.Fatalf("theta=%d, want ceil(lambda/KPT+)=%d", res.Theta, want)
	}
}

// TestEpsilonShrinksTheta: θ must grow as ε falls (∝ 1/ε² through λ).
func TestEpsilonShrinksTheta(t *testing.T) {
	g := gen.ChungLuDirected(800, 4800, 2.4, 2.1, nil2rand(3))
	applyWC(g)
	var prev int64 = -1
	for _, eps := range []float64{0.4, 0.2, 0.1} {
		res, err := Maximize(g, diffusion.NewIC(), Options{K: 10, Epsilon: eps, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && res.Theta < 2*prev {
			t.Fatalf("eps=%v: theta=%d did not grow ~4x over %d", eps, res.Theta, prev)
		}
		prev = res.Theta
	}
}

// TestExactEllSkipsInflation: with ExactEll, θ must be computed from the
// raw ℓ, hence strictly smaller than the inflated default.
func TestExactEllSkipsInflation(t *testing.T) {
	g := gen.ChungLuDirected(800, 4800, 2.4, 2.1, nil2rand(5))
	applyWC(g)
	inflated, err := Maximize(g, diffusion.NewIC(), Options{K: 5, Epsilon: 0.3, Seed: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Maximize(g, diffusion.NewIC(), Options{K: 5, Epsilon: 0.3, Seed: 6, Workers: 1, ExactEll: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: identical KPT path, so theta ordering is deterministic.
	if exact.Theta >= inflated.Theta {
		t.Fatalf("ExactEll theta %d not below inflated %d", exact.Theta, inflated.Theta)
	}
}

// helpers shared by this file only.

func nil2rand(seed uint64) *rng.Rand { return rng.New(seed) }

func applyWC(g *graph.Graph) { graph.AssignWeightedCascade(g) }
