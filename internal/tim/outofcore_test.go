package tim

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

func TestMaximizeSpilledStar(t *testing.T) {
	g := gen.Star(20, 1)
	res, err := Maximize(g, diffusion.NewIC(), Options{
		K: 1, Epsilon: 0.3, Seed: 1, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spilled {
		t.Fatal("Spilled not reported")
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub", res.Seeds)
	}
	if res.MemoryBytes <= 0 {
		t.Fatalf("disk footprint %d", res.MemoryBytes)
	}
}

// TestSpilledMatchesInMemoryQuality: spilled and in-memory selection on
// the same graph must produce seed sets of equivalent quality (identical
// selection is not required — the greedy tie-breaking differs — but the
// measured spreads must agree closely).
func TestSpilledMatchesInMemoryQuality(t *testing.T) {
	g := gen.ChungLuDirected(1000, 6000, 2.4, 2.1, rng.New(2))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	const k = 10
	inMem, err := Maximize(g, model, Options{K: k, Epsilon: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := Maximize(g, model, Options{K: k, Epsilon: 0.2, Seed: 3, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled.Seeds) != k {
		t.Fatalf("spilled seeds=%v", spilled.Seeds)
	}
	evalOpts := spread.Options{Samples: 20000, Seed: 4}
	a := spread.Estimate(g, model, inMem.Seeds, evalOpts)
	b := spread.Estimate(g, model, spilled.Seeds, evalOpts)
	if math.Abs(a-b) > 0.05*a+1 {
		t.Fatalf("in-memory spread %v vs spilled %v", a, b)
	}
	// Theta must be identical: the spill path only changes storage.
	if inMem.Theta != spilled.Theta {
		t.Fatalf("theta changed: %d vs %d", inMem.Theta, spilled.Theta)
	}
}

func TestSpilledLTModel(t *testing.T) {
	g := gen.ChungLuDirected(500, 3000, 2.4, 2.1, rng.New(5))
	graph.AssignRandomNormalizedLT(g, rng.New(6))
	res, err := Maximize(g, diffusion.NewLT(), Options{
		K: 5, Epsilon: 0.3, Seed: 7, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 || !res.Spilled {
		t.Fatalf("res=%+v", res)
	}
}

func TestSpilledBadDir(t *testing.T) {
	g := gen.Star(10, 1)
	_, err := Maximize(g, diffusion.NewIC(), Options{
		K: 1, Epsilon: 0.5, Seed: 1, SpillDir: "/nonexistent/definitely/missing",
	})
	if err == nil {
		t.Fatal("bad spill dir accepted")
	}
}

func TestSpilledChunkBoundary(t *testing.T) {
	// Force theta larger than one spill chunk via ThetaCap... rather,
	// verify correctness when theta is not a chunk multiple by using a
	// cap just above the chunk size.
	g := gen.ErdosRenyiGnm(200, 800, rng.New(8))
	graph.AssignWeightedCascade(g)
	res, err := Maximize(g, diffusion.NewIC(), Options{
		K: 3, Epsilon: 0.1, Seed: 9, SpillDir: t.TempDir(),
		ThetaCap: spillChunk + 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta != spillChunk+7 || !res.ThetaCapped {
		t.Fatalf("theta=%d capped=%v", res.Theta, res.ThetaCapped)
	}
}
