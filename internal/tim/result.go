package tim

import "time"

// Timings is the per-phase wall-clock breakdown reported in Figure 4 of
// the paper.
type Timings struct {
	// KptEstimation is Algorithm 2 (parameter estimation).
	KptEstimation time.Duration
	// Refinement is Algorithm 3 (the TIM+ intermediate step; zero for
	// plain TIM).
	Refinement time.Duration
	// NodeSelection is Algorithm 1 (θ-set sampling + greedy coverage).
	NodeSelection time.Duration
	// Total is the full Maximize call.
	Total time.Duration
}

// Result is the output of a Maximize run, with the diagnostics the
// paper's experiments chart: the KPT bounds (Figure 5), θ, per-phase
// timings (Figure 4), and memory held by the RR-set collection
// (Figure 12).
type Result struct {
	// Seeds is the selected seed set, in greedy pick order (|Seeds| = K
	// for unconstrained runs; constrained runs prepend Query.Force and
	// may return fewer picks when a budget or exclusions bind).
	Seeds []uint32

	// KptStar is Algorithm 2's lower bound KPT* of OPT.
	KptStar float64
	// KptPlus is Algorithm 3's refined bound KPT+ (equals KptStar for
	// plain TIM).
	KptPlus float64
	// EptEstimate is the mean RR-set width observed during parameter
	// estimation — an estimate of EPT (§3.2).
	EptEstimate float64

	// Epsilon is the approximation slack ε the run used (after option
	// defaulting) — the "achieved ε" a latency-tiered server reports
	// when a budget coarsened the request along its ε ladder.
	Epsilon float64
	// Confidence is ApproxFactor(Epsilon): the guaranteed approximation
	// factor, holding with probability 1 − n^−ℓ. Zero when ThetaCapped
	// voided the guarantee.
	Confidence float64

	// Theta is the number of RR sets sampled by node selection.
	Theta int64
	// ThetaCapped reports whether Options.ThetaCap truncated Theta
	// (in which case the approximation guarantee is void).
	ThetaCapped bool

	// CoverageFraction is F_R(Seeds): the fraction of the θ RR sets
	// covered by the selected seeds.
	CoverageFraction float64
	// SpreadEstimate is Mass·F_R(Seeds), the unbiased estimate of
	// E[I(Seeds)] (Corollary 1) — for constrained queries, of the
	// weighted, deadline-bounded audience mass the seeds activate.
	SpreadEstimate float64
	// Mass is the audience scale of SpreadEstimate: the total audience
	// weight W for targeted queries, float64(n) otherwise.
	Mass float64
	// ForcedSeeds counts the Query.Force warm-start seeds at the front of
	// Seeds (zero without a constrained query).
	ForcedSeeds int
	// SeedCost is the budget consumed by the non-forced picks under
	// Query.Costs (budgeted queries only; zero otherwise).
	SeedCost float64

	// RRTotalNodes and RRTotalWidth are Σ|R| and Σw(R) over the node
	// selection collection.
	RRTotalNodes int64
	RRTotalWidth int64
	// MemoryBytes approximates the heap held by the RR collection at
	// selection time (the dominant memory cost per §7.4). For spilled
	// runs it is the on-disk footprint instead; see Spilled.
	MemoryBytes int64
	// Spilled reports that Options.SpillDir diverted the RR collection
	// to disk; MemoryBytes then measures the spill file.
	Spilled bool

	// KptIterations is how many Algorithm 2 iterations ran.
	KptIterations int

	Timings Timings
}
