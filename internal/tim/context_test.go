package tim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestMaximizeContextCancelled: a pre-cancelled context aborts before any
// result is produced.
func TestMaximizeContextCancelled(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng.New(1))
	graph.AssignWeightedCascade(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MaximizeContext(ctx, g, diffusion.NewIC(), Options{K: 5, Epsilon: 0.3, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestMaximizeContextBackground: MaximizeContext with a background
// context matches Maximize exactly.
func TestMaximizeContextBackground(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng.New(2))
	graph.AssignWeightedCascade(g)
	opts := Options{K: 4, Epsilon: 0.3, Seed: 5, Workers: 1}
	a, err := Maximize(g, diffusion.NewIC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximizeContext(context.Background(), g, diffusion.NewIC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Seeds) != fmt.Sprint(b.Seeds) || a.Theta != b.Theta {
		t.Fatalf("Maximize and MaximizeContext diverge: %v/%d vs %v/%d",
			a.Seeds, a.Theta, b.Seeds, b.Theta)
	}
}

// recordingSource serves node selection from a pre-extended collection,
// recording the θ values requested.
type recordingSource struct {
	col    *diffusion.RRCollection
	seed   uint64
	thetas []int64
}

func (s *recordingSource) NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	s.thetas = append(s.thetas, theta)
	if s.col == nil {
		s.col = &diffusion.RRCollection{}
	}
	if _, err := diffusion.ExtendCollection(ctx, g, model, s.col, theta, s.seed, workers, nil); err != nil {
		return nil, err
	}
	return s.col, nil
}

// TestCollectionSourceHook: Maximize consumes the supplied collection,
// reports the (possibly larger) actual θ, and a second run with smaller
// θ reuses the same collection without shrinking it.
func TestCollectionSourceHook(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, rng.New(3))
	graph.AssignWeightedCascade(g)
	src := &recordingSource{seed: 42}

	r1, err := Maximize(g, diffusion.NewIC(), Options{K: 10, Epsilon: 0.3, Seed: 9, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(src.thetas) != 1 {
		t.Fatalf("source consulted %d times, want 1", len(src.thetas))
	}
	if r1.Theta != int64(src.col.Count()) {
		t.Fatalf("Theta=%d must equal the source collection count %d", r1.Theta, src.col.Count())
	}
	if len(r1.Seeds) != 10 {
		t.Fatalf("want 10 seeds, got %v", r1.Seeds)
	}

	before := src.col.Count()
	r2, err := Maximize(g, diffusion.NewIC(), Options{K: 2, Epsilon: 0.5, Seed: 9, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if src.col.Count() < before {
		t.Fatalf("collection shrank: %d -> %d", before, src.col.Count())
	}
	if r2.Theta < src.thetas[1] {
		t.Fatalf("Theta=%d below requested θ=%d", r2.Theta, src.thetas[1])
	}
}

// shortSource returns fewer sets than requested: Maximize must reject it.
type shortSource struct{}

func (shortSource) NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	col := &diffusion.RRCollection{}
	_, err := diffusion.ExtendCollection(ctx, g, model, col, 1, 1, 1, nil)
	return col, err
}

func TestCollectionSourceTooShort(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, rng.New(3))
	graph.AssignWeightedCascade(g)
	_, err := Maximize(g, diffusion.NewIC(), Options{K: 10, Epsilon: 0.1, Seed: 9, Source: shortSource{}})
	if !errors.Is(err, ErrBadSource) {
		t.Fatalf("want ErrBadSource for a short source, got %v", err)
	}
}
