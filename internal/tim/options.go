// Package tim implements the paper's primary contribution: Two-phase
// Influence Maximization (TIM) and its heuristically improved variant TIM+.
//
// TIM runs in two phases (§3):
//
//  1. Parameter estimation (Algorithm 2) computes KPT*, a lower bound of
//     the optimum OPT, from the widths of a geometrically growing number
//     of random RR sets.
//  2. Node selection (Algorithm 1) samples θ = λ/KPT* random RR sets and
//     greedily solves maximum coverage over them.
//
// TIM+ inserts the intermediate refinement of §4.1 (Algorithm 3), which
// tightens KPT* into KPT+ ≥ KPT* and typically shrinks θ several-fold
// without affecting the (1 − 1/e − ε) approximation guarantee.
//
// The implementation supports the IC model, the LT model, and arbitrary
// triggering models (§4.2) through the diffusion package.
package tim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/stats"
)

// Algorithm selects the TIM variant.
type Algorithm int

const (
	// TIMPlus is Algorithms 2 + 3 + 1 (the paper's TIM+; default).
	TIMPlus Algorithm = iota
	// TIM is Algorithms 2 + 1 without refinement.
	TIM
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case TIMPlus:
		return "TIM+"
	case TIM:
		return "TIM"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures a Maximize run. The zero value is not valid: K must
// be set. Other fields default sensibly (ε=0.1, ℓ=1, TIM+, all cores).
type Options struct {
	// K is the seed-set size (required, 1 ≤ K ≤ n).
	K int
	// Epsilon is the approximation slack ε in (0, 1]; the returned seed
	// set is (1 − 1/e − ε)-approximate. Default 0.1.
	Epsilon float64
	// Ell controls the failure probability n^−ℓ. Default 1. Unless
	// ExactEll is set, ℓ is internally inflated by 1 + ln(2)/ln(n) (TIM)
	// or 1 + ln(3)/ln(n) (TIM+) so that the *overall* success
	// probability is 1 − n^−ℓ, per §3.3 and §4.1.
	Ell float64
	// ExactEll disables the internal ℓ inflation.
	ExactEll bool
	// Variant selects TIM+ (default) or TIM.
	Variant Algorithm
	// EpsPrime is Algorithm 3's accuracy parameter ε′. Zero selects the
	// paper's heuristic 5·∛(ℓε²/(k+ℓ)) (§4.1). Ignored by plain TIM.
	EpsPrime float64
	// Workers is the parallelism of the whole query path — RR-set
	// sampling, the max-cover index build, and coverage counting —
	// defaulting to GOMAXPROCS. Results are byte-identical for every
	// value: sampling draws set i from a stream keyed by (Seed, i) and
	// selection reduces shard results in fixed order, so Workers is a
	// throughput knob, never part of the answer. A fixed Seed therefore
	// gives fully deterministic runs at any worker count.
	Workers int
	// Seed drives all randomness.
	Seed uint64
	// ThetaCap, when positive, truncates the number of RR sets sampled
	// in node selection. It exists for memory-bounded experimentation
	// and voids the approximation guarantee when it binds; Result
	// records whether it bound.
	ThetaCap int64
	// SpillDir, when non-empty, streams the node-selection RR sets to
	// a temporary file in that directory and runs the greedy cover
	// out-of-core (k+1 sequential passes; see internal/diskrr). Peak
	// memory drops from O(Σ|R|) to O(n + θ/8) bytes at the cost of
	// extra sequential I/O. The approximation guarantee is unchanged.
	// Use os.TempDir() for the system default location.
	SpillDir string
	// Source, when non-nil, supplies the node-selection RR collection
	// instead of fresh sampling — the reuse hook long-lived services
	// (internal/server) use to extend one cached collection across
	// queries with growing θ rather than resampling from scratch. It is
	// ignored when SpillDir is set. Parameter estimation and refinement
	// always sample fresh: they are cheap, k-dependent, and feed only the
	// choice of θ.
	Source CollectionSource
	// Query, when non-nil, constrains the scenario: targeted audience
	// weights, per-node seeding costs under a budget, forced or excluded
	// seeds, and a diffusion deadline (internal/query). A nil or zero
	// spec is the paper's default query and changes nothing — answers
	// are bit-identical to a run without it. Constrained runs do not
	// support SpillDir (the out-of-core path has no constraint hooks).
	//
	// With a Query, K counts the *new* seeds beyond Query.Force: the
	// returned seed set is Force followed by up to K greedy picks, and
	// Result.SpreadEstimate estimates the weighted, deadline-bounded
	// audience mass activated by all of them together.
	Query *query.Spec
	// CompiledQuery optionally supplies Query already lowered against
	// this graph's node count (query.Spec.Compile). Services that need
	// the compiled form anyway — internal/server keys its RR-collection
	// cache on Compiled.Hash — set it to spare a second O(n)
	// compilation per request; everyone else leaves it nil and lets
	// validate compile Query. When set it takes precedence over Query
	// and must match the graph's node count.
	CompiledQuery *query.Compiled

	// compiled is the active lowered query; set by validate.
	compiled *query.Compiled
}

// CollectionSource supplies node-selection RR collections for Maximize.
// Implementations must return a collection of at least theta independent
// RR sets for (g, model), drawn under the same sampling scenario as the
// query — uniform roots and unlimited horizon by default; when the
// Maximize call carries a Query with audience weights or MaxHops, the
// source must sample under the equivalent diffusion.SampleConfig (the
// server arranges this by keying its cached collections on the compiled
// profile hash). Returning more than theta is permitted — extra i.i.d.
// sets only tighten the coverage estimate — and Result.Theta reports the
// count actually used. The returned collection must not be mutated
// afterwards while the Result is in use.
//
// Snapshot contract: the g passed to NodeSelectionSets is the same graph
// the whole Maximize call runs against — parameter estimation,
// refinement, and node selection all see one coherent view. Callers
// serving mutable datasets (internal/server over internal/evolve) must
// therefore pass Maximize an immutable snapshot and key any cached
// collections by that snapshot's version: a source that returned sets
// sampled on a different topology than g would silently bias the
// coverage estimate. The evolving-graph reuse layer meets the contract
// by repairing its cached collection to the query's snapshot version
// (evolve.Repair) before extending it to θ.
type CollectionSource interface {
	NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error)
}

// ErrBadOptions wraps every option-validation failure. It indicates a
// caller mistake (servers should map it to a 4xx status).
var ErrBadOptions = errors.New("tim: invalid options")

// ErrBadSource reports a CollectionSource contract violation (fewer than
// θ sets returned). Unlike ErrBadOptions this is a defect in the source
// implementation, not in the query that triggered it.
var ErrBadSource = errors.New("tim: CollectionSource contract violation")

func (o *Options) validate(n int) error {
	if n <= 0 {
		return fmt.Errorf("%w: graph has no nodes", ErrBadOptions)
	}
	if o.K <= 0 {
		return fmt.Errorf("%w: K=%d must be positive", ErrBadOptions, o.K)
	}
	if o.K > n {
		return fmt.Errorf("%w: K=%d exceeds node count %d", ErrBadOptions, o.K, n)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		return fmt.Errorf("%w: Epsilon=%v outside (0, 1]", ErrBadOptions, o.Epsilon)
	}
	if o.Ell == 0 {
		o.Ell = 1
	}
	if o.Ell <= 0 {
		return fmt.Errorf("%w: Ell=%v must be positive", ErrBadOptions, o.Ell)
	}
	if o.Variant != TIM && o.Variant != TIMPlus {
		return fmt.Errorf("%w: unknown variant %d", ErrBadOptions, int(o.Variant))
	}
	if o.EpsPrime == 0 {
		o.EpsPrime = stats.EpsPrime(o.K, o.Epsilon, o.Ell)
	}
	if o.EpsPrime <= 0 {
		return fmt.Errorf("%w: EpsPrime=%v must be positive", ErrBadOptions, o.EpsPrime)
	}
	switch {
	case o.CompiledQuery != nil:
		if o.SpillDir != "" {
			return fmt.Errorf("%w: SpillDir does not support constrained queries", ErrBadOptions)
		}
		if o.CompiledQuery.N != n {
			return fmt.Errorf("%w: CompiledQuery lowered for %d nodes, graph has %d",
				ErrBadOptions, o.CompiledQuery.N, n)
		}
		o.compiled = o.CompiledQuery
	case o.Query != nil && !o.Query.Zero():
		if o.SpillDir != "" {
			return fmt.Errorf("%w: SpillDir does not support constrained queries", ErrBadOptions)
		}
		c, err := o.Query.Compile(n)
		if err != nil {
			// Keep both sentinels reachable: ErrBadOptions for callers
			// that map every option failure alike, query.ErrBadSpec for
			// those that count constraint rejections separately.
			return fmt.Errorf("%w: %w", ErrBadOptions, err)
		}
		o.compiled = c
	}
	return nil
}

// sampleConfig returns the compiled sampling scenario (zero by default).
func (o *Options) sampleConfig() diffusion.SampleConfig {
	if o.compiled == nil {
		return diffusion.SampleConfig{}
	}
	return o.compiled.Sample
}

// mass returns the audience mass W the estimator scales by: Σ audience
// weights, or exactly float64(n) for uniform audiences — which keeps the
// unconstrained estimator arithmetic bit-identical.
func (o *Options) mass(n int) float64 {
	if o.compiled == nil {
		return float64(n)
	}
	return o.compiled.Mass
}

// effectiveEll returns ℓ after the §3.3/§4.1 success-probability
// adjustment (union bound over the 2 or 3 sub-procedures).
func (o *Options) effectiveEll(n int) float64 {
	if o.ExactEll {
		return o.Ell
	}
	return EffectiveEll(o.Ell, o.Variant, n)
}

// ApproxFactor is the guaranteed approximation factor of a RIS run at
// slack ε: the returned seed set is (1 − 1/e − ε)-approximate with
// probability at least 1 − n^−ℓ. It is the "confidence" dial of the
// latency-tiered server (internal/tiered): clients ask for a floor on
// it, and the planner converts the floor back to an ε cap via
// EpsilonForConfidence. Clamped at 0 for ε ≥ 1 − 1/e.
func ApproxFactor(eps float64) float64 {
	f := 1 - 1/math.E - eps
	if f < 0 {
		return 0
	}
	return f
}

// EpsilonForConfidence inverts ApproxFactor: the largest ε whose
// guarantee still meets the required approximation factor. Callers must
// check conf < 1 − 1/e first (no ε satisfies more).
func EpsilonForConfidence(conf float64) float64 {
	return 1 - 1/math.E - conf
}

// EffectiveEll applies the §3.3/§4.1 success-probability inflation to ℓ:
// TIM unions over 2 sub-procedures (1 − 2n^−ℓ → scale by 1 + ln2/ln n),
// TIM+ over 3. Exported because the distributed runner (internal/dist)
// applies the same adjustment.
func EffectiveEll(ell float64, variant Algorithm, n int) float64 {
	if n < 2 {
		return ell
	}
	factor := math.Ln2
	if variant == TIMPlus {
		factor = math.Log(3)
	}
	return ell * (1 + factor/math.Log(float64(n)))
}
