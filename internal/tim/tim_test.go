package tim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

func TestMaximizePathCertain(t *testing.T) {
	// On the path 0→1→…→9 with p=1 the unique optimal single seed is
	// node 0 (spread 10).
	g := gen.Path(10, 1)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 1, Epsilon: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want [0]", res.Seeds)
	}
	if math.Abs(res.SpreadEstimate-10) > 0.5 {
		t.Fatalf("spread estimate %v, want about 10", res.SpreadEstimate)
	}
}

func TestMaximizeStarCertain(t *testing.T) {
	g := gen.Star(20, 1)
	for _, variant := range []Algorithm{TIM, TIMPlus} {
		res, err := Maximize(g, diffusion.NewIC(), Options{K: 1, Epsilon: 0.3, Variant: variant, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Seeds[0] != 0 {
			t.Fatalf("%v picked %v, want hub 0", variant, res.Seeds)
		}
	}
}

func TestMaximizeTwoCliques(t *testing.T) {
	// Clique A (nodes 0..4) bridges into clique B (5..9); any seed in A
	// activates everything under p=1, so the chosen seed must be in A.
	g := gen.TwoCliquesBridge(5, 1)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 1, Epsilon: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] >= 5 {
		t.Fatalf("seed %d in the downstream clique", res.Seeds[0])
	}
	if math.Abs(res.SpreadEstimate-10) > 0.5 {
		t.Fatalf("spread estimate %v, want 10", res.SpreadEstimate)
	}
}

func TestMaximizeK2CoversBothCliques(t *testing.T) {
	// Two disconnected cliques (no bridge): k=2 must take one node from
	// each. Build explicitly.
	var edges []graph.Edge
	for base := 0; base < 10; base += 5 {
		for u := base; u < base+5; u++ {
			for v := base; v < base+5; v++ {
				if u != v {
					edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v), Weight: 1})
				}
			}
		}
	}
	g := graph.MustFromEdges(10, edges)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 2, Epsilon: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inA, inB := false, false
	for _, s := range res.Seeds {
		if s < 5 {
			inA = true
		} else {
			inB = true
		}
	}
	if !inA || !inB {
		t.Fatalf("seeds=%v must span both cliques", res.Seeds)
	}
}

func TestMaximizeLTStar(t *testing.T) {
	g := gen.Star(15, 1)
	res, err := Maximize(g, diffusion.NewLT(), Options{K: 1, Epsilon: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("LT star seeds=%v, want hub", res.Seeds)
	}
}

func TestMaximizeTriggeringModel(t *testing.T) {
	// The generic triggering path (ICTrigger reproduces IC) must find
	// the same seed on an easy instance.
	g := gen.Star(15, 1)
	res, err := Maximize(g, diffusion.NewTriggering(diffusion.ICTrigger{}), Options{K: 1, Epsilon: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("triggering seeds=%v, want hub", res.Seeds)
	}
}

func TestMaximizeDeterministic(t *testing.T) {
	g := gen.ErdosRenyiGnm(200, 1000, rng.New(7))
	graph.AssignWeightedCascade(g)
	opts := Options{K: 5, Epsilon: 0.3, Workers: 1, Seed: 42}
	a, err := Maximize(g, diffusion.NewIC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Maximize(g, diffusion.NewIC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Seeds, b.Seeds) {
		t.Fatalf("nondeterministic: %v vs %v", a.Seeds, b.Seeds)
	}
	if a.KptStar != b.KptStar || a.Theta != b.Theta {
		t.Fatalf("diagnostics differ: %+v vs %+v", a, b)
	}
}

func TestMaximizeInvariants(t *testing.T) {
	g := gen.ErdosRenyiGnm(300, 1800, rng.New(8))
	graph.AssignWeightedCascade(g)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 10, Epsilon: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("|seeds|=%d", len(res.Seeds))
	}
	seen := map[uint32]bool{}
	for _, s := range res.Seeds {
		if int(s) >= g.N() {
			t.Fatalf("seed %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if res.KptStar < 1 {
		t.Fatalf("KPT*=%v below minimum 1", res.KptStar)
	}
	if res.KptPlus < res.KptStar {
		t.Fatalf("KPT+ %v < KPT* %v", res.KptPlus, res.KptStar)
	}
	if res.Theta < 1 {
		t.Fatalf("theta=%d", res.Theta)
	}
	if res.CoverageFraction < 0 || res.CoverageFraction > 1 {
		t.Fatalf("coverage fraction %v", res.CoverageFraction)
	}
	if res.SpreadEstimate < float64(len(res.Seeds))*0.5 {
		t.Fatalf("spread estimate %v implausibly small", res.SpreadEstimate)
	}
	if res.MemoryBytes <= 0 || res.RRTotalNodes <= 0 {
		t.Fatalf("diagnostics: %+v", res)
	}
	if res.Timings.Total <= 0 || res.Timings.NodeSelection <= 0 {
		t.Fatalf("timings not recorded: %+v", res.Timings)
	}
}

func TestKptBoundsAgainstOPT(t *testing.T) {
	// KPT* and KPT+ must be lower bounds of OPT (within Monte-Carlo
	// noise). Estimate OPT as the MC spread of the chosen seed set —
	// itself a lower bound of the true OPT, but within (1-1/e-ε) of it;
	// we check KPT+ ≤ measured spread / (1-1/e-ε) + slack.
	g := gen.ChungLuDirected(2000, 12000, 2.4, 2.1, rng.New(10))
	graph.AssignWeightedCascade(g)
	const k, eps = 10, 0.2
	res, err := Maximize(g, diffusion.NewIC(), Options{K: k, Epsilon: eps, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	measured := spread.Estimate(g, diffusion.NewIC(), res.Seeds, spread.Options{Samples: 20000, Seed: 12})
	optUpper := measured / (1 - 1/math.E - eps) * 1.15 // generous noise slack
	if res.KptPlus > optUpper {
		t.Fatalf("KPT+ %v exceeds OPT upper bound %v (measured spread %v)", res.KptPlus, optUpper, measured)
	}
	if res.KptStar > optUpper {
		t.Fatalf("KPT* %v exceeds OPT upper bound %v", res.KptStar, optUpper)
	}
}

func TestTimPlusRefinementShrinksTheta(t *testing.T) {
	// On real-shaped graphs KPT+ is typically much larger than KPT*
	// (§4.1 and Figure 5), so TIM+ uses fewer RR sets than TIM.
	g := gen.ChungLuDirected(3000, 18000, 2.4, 2.1, rng.New(13))
	graph.AssignWeightedCascade(g)
	plus, err := Maximize(g, diffusion.NewIC(), Options{K: 20, Epsilon: 0.2, Variant: TIMPlus, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Maximize(g, diffusion.NewIC(), Options{K: 20, Epsilon: 0.2, Variant: TIM, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if plus.KptPlus < plain.KptStar {
		t.Fatalf("KPT+ %v < KPT* %v", plus.KptPlus, plain.KptStar)
	}
	if plus.Theta > plain.Theta {
		t.Fatalf("TIM+ theta %d > TIM theta %d", plus.Theta, plain.Theta)
	}
	// Refinement should have a recorded (nonzero) duration for TIM+ and
	// zero for TIM.
	if plus.Timings.Refinement <= 0 {
		t.Fatal("TIM+ refinement timing missing")
	}
	if plain.Timings.Refinement != 0 {
		t.Fatal("plain TIM should skip refinement")
	}
}

func TestApproximationQualityVsBruteForce(t *testing.T) {
	// Exhaustively compute the optimal k=2 seed set by Monte Carlo on a
	// small graph, then require TIM+'s seed set to achieve at least
	// (1 − 1/e − ε) of it (with sampling slack).
	g := gen.ErdosRenyiGnm(40, 200, rng.New(15))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	const k, eps = 2, 0.1
	res, err := Maximize(g, model, Options{K: k, Epsilon: eps, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	mine := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 20000, Seed: 17})
	best := 0.0
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			s := spread.Estimate(g, model, []uint32{uint32(a), uint32(b)}, spread.Options{Samples: 2000, Seed: 18})
			if s > best {
				best = s
			}
		}
	}
	ratio := mine / best
	if ratio < (1 - 1/math.E - eps - 0.1) {
		t.Fatalf("approximation ratio %v too low (mine %v, best %v)", ratio, mine, best)
	}
}

func TestSpreadEstimateMatchesMC(t *testing.T) {
	// Corollary 1 end-to-end: the coverage-based spread estimate from
	// node selection must agree with forward Monte Carlo.
	g := gen.ChungLuDirected(1500, 9000, 2.4, 2.1, rng.New(19))
	graph.AssignWeightedCascade(g)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 5, Epsilon: 0.15, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	mc := spread.Estimate(g, diffusion.NewIC(), res.Seeds, spread.Options{Samples: 30000, Seed: 21})
	if math.Abs(res.SpreadEstimate-mc) > 0.1*mc+1 {
		t.Fatalf("coverage estimate %v vs MC %v", res.SpreadEstimate, mc)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.Path(5, 1)
	model := diffusion.NewIC()
	cases := []Options{
		{K: 0},
		{K: -3},
		{K: 6},                // k > n
		{K: 1, Epsilon: -0.5}, // bad eps
		{K: 1, Epsilon: 1.5},  // bad eps
		{K: 1, Ell: -1},       // bad ell
		{K: 1, Variant: Algorithm(9)},
		{K: 1, EpsPrime: -2},
	}
	for i, opts := range cases {
		if _, err := Maximize(g, model, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d (%+v): got %v, want ErrBadOptions", i, opts, err)
		}
	}
	empty := graph.MustFromEdges(0, nil)
	if _, err := Maximize(empty, model, Options{K: 1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("empty graph: got %v", err)
	}
}

func TestKEqualsN(t *testing.T) {
	g := gen.Path(6, 0.5)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 6, Epsilon: 0.5, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 6 {
		t.Fatalf("|seeds|=%d, want all 6", len(res.Seeds))
	}
	if math.Abs(res.SpreadEstimate-6) > 0.3 {
		t.Fatalf("spread %v, want 6 (all nodes seeded)", res.SpreadEstimate)
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.MustFromEdges(1, nil)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
	if res.SpreadEstimate < 0.99 {
		t.Fatalf("spread %v, want 1", res.SpreadEstimate)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.MustFromEdges(50, nil)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 3, Epsilon: 0.5, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
	// KPT* should bottom out at 1 (every node only activates itself).
	if res.KptStar < 1 || res.KptStar > 3.5 {
		t.Fatalf("KPT*=%v on an edgeless graph", res.KptStar)
	}
}

func TestThetaCap(t *testing.T) {
	g := gen.ErdosRenyiGnm(500, 2500, rng.New(25))
	graph.AssignWeightedCascade(g)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 3, Epsilon: 0.1, ThetaCap: 100, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta != 100 || !res.ThetaCapped {
		t.Fatalf("theta=%d capped=%v, want 100/true", res.Theta, res.ThetaCapped)
	}
}

func TestSelectWithTheta(t *testing.T) {
	g := gen.Star(10, 1)
	res, err := SelectWithTheta(g, diffusion.NewIC(), 1, 500, 1, 27)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub", res.Seeds)
	}
	if res.Theta != 500 {
		t.Fatalf("theta=%d", res.Theta)
	}
	if _, err := SelectWithTheta(g, diffusion.NewIC(), 0, 10, 1, 1); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad k accepted: %v", err)
	}
}

func TestEffectiveEllInflation(t *testing.T) {
	o := Options{K: 1, Ell: 1, Variant: TIMPlus}
	if err := o.validate(1000); err != nil {
		t.Fatal(err)
	}
	ell := o.effectiveEll(1000)
	want := 1 + math.Log(3)/math.Log(1000)
	if math.Abs(ell-want) > 1e-12 {
		t.Fatalf("effective ell %v, want %v", ell, want)
	}
	o.ExactEll = true
	if o.effectiveEll(1000) != 1 {
		t.Fatal("ExactEll ignored")
	}
	o2 := Options{K: 1, Ell: 1, Variant: TIM}
	if err := o2.validate(1000); err != nil {
		t.Fatal(err)
	}
	want2 := 1 + math.Ln2/math.Log(1000)
	if math.Abs(o2.effectiveEll(1000)-want2) > 1e-12 {
		t.Fatal("TIM ell inflation wrong")
	}
}

func TestAlgorithmString(t *testing.T) {
	if TIM.String() != "TIM" || TIMPlus.String() != "TIM+" {
		t.Fatal("Algorithm.String broken")
	}
	if Algorithm(7).String() == "" {
		t.Fatal("unknown variant String empty")
	}
}

func TestLTRunsOnRealShape(t *testing.T) {
	g := gen.ChungLuDirected(1000, 6000, 2.4, 2.1, rng.New(28))
	graph.AssignRandomNormalizedLT(g, rng.New(29))
	res, err := Maximize(g, diffusion.NewLT(), Options{K: 10, Epsilon: 0.3, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
	mc := spread.Estimate(g, diffusion.NewLT(), res.Seeds, spread.Options{Samples: 20000, Seed: 31})
	if math.Abs(res.SpreadEstimate-mc) > 0.15*mc+1 {
		t.Fatalf("LT coverage estimate %v vs MC %v", res.SpreadEstimate, mc)
	}
}
