package tim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/spread"
)

func queryTestGraph(seed uint64) *graph.Graph {
	g := gen.ChungLuDirected(400, 2400, 2.4, 2.1, rng.New(seed))
	graph.AssignWeightedCascade(g)
	return g
}

// TestQueryUniformBitIdentical is the acceptance criterion that the
// constrained-query plumbing is invisible when unused: a nil Query, a zero
// Query, and an explicitly uniform weight profile must reproduce the
// spec-free answer bit for bit (identical seeds, θ, KPT bounds, and
// estimates).
func TestQueryUniformBitIdentical(t *testing.T) {
	g := queryTestGraph(31)
	model := diffusion.NewIC()
	base, err := Maximize(g, model, Options{K: 8, Epsilon: 0.3, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]float64, g.N())
	for i := range uniform {
		uniform[i] = 1
	}
	for name, spec := range map[string]*query.Spec{
		"nil spec":        nil,
		"zero spec":       {},
		"uniform weights": {Weights: uniform},
	} {
		res, err := Maximize(g, model, Options{K: 8, Epsilon: 0.3, Seed: 7, Workers: 2, Query: spec})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(res.Seeds, base.Seeds) {
			t.Fatalf("%s: seeds %v != base %v", name, res.Seeds, base.Seeds)
		}
		if res.Theta != base.Theta || res.KptStar != base.KptStar || res.KptPlus != base.KptPlus {
			t.Fatalf("%s: θ/KPT diverged: (%d %v %v) vs (%d %v %v)",
				name, res.Theta, res.KptStar, res.KptPlus, base.Theta, base.KptStar, base.KptPlus)
		}
		if res.SpreadEstimate != base.SpreadEstimate || res.CoverageFraction != base.CoverageFraction {
			t.Fatalf("%s: estimates diverged: %v vs %v", name, res.SpreadEstimate, base.SpreadEstimate)
		}
	}
}

// TestQueryWeightedEstimateMatchesMonteCarlo: the weighted-root estimator
// W·F_R(S) must land within the Monte-Carlo CI of the true weighted spread
// Σ_{v} w(v)·Pr[S activates v] — the Borgs-style substitution argument
// made executable.
func TestQueryWeightedEstimateMatchesMonteCarlo(t *testing.T) {
	g := queryTestGraph(32)
	model := diffusion.NewIC()
	weights := make([]float64, g.N())
	r := rng.New(9)
	for i := range weights {
		// A lumpy audience: most nodes worth little, a tenth worth a lot.
		weights[i] = 0.2 + r.Float64()
		if r.Intn(10) == 0 {
			weights[i] = 5 + 5*r.Float64()
		}
	}
	res, err := Maximize(g, model, Options{
		K: 6, Epsilon: 0.15, Seed: 11, Workers: 2,
		Query: &query.Spec{Weights: weights},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc, stderr := spread.EstimateConstrained(g, model, res.Seeds, weights, 0,
		spread.Options{Samples: 30000, Seed: 13})
	slack := 4*stderr + 0.05*mc // CI plus the ε-approximation slack of F_R
	if math.Abs(res.SpreadEstimate-mc) > slack {
		t.Fatalf("weighted estimate %.2f vs Monte-Carlo %.2f ± %.2f (slack %.2f)",
			res.SpreadEstimate, mc, stderr, slack)
	}
}

// TestQueryMaxHopsEstimateMatchesMonteCarlo: deadline-bounded estimates
// must match a horizon-capped forward simulation.
func TestQueryMaxHopsEstimateMatchesMonteCarlo(t *testing.T) {
	g := queryTestGraph(33)
	model := diffusion.NewIC()
	const hops = 2
	res, err := Maximize(g, model, Options{
		K: 6, Epsilon: 0.15, Seed: 17, Workers: 2,
		Query: &query.Spec{MaxHops: hops},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc, stderr := spread.EstimateConstrained(g, model, res.Seeds, nil, hops,
		spread.Options{Samples: 30000, Seed: 19})
	slack := 4*stderr + 0.05*mc
	if math.Abs(res.SpreadEstimate-mc) > slack {
		t.Fatalf("deadline estimate %.2f vs Monte-Carlo %.2f ± %.2f", res.SpreadEstimate, mc, stderr)
	}
	// The horizon must bind: unbounded influence of the same seeds is
	// strictly larger on this graph.
	full := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 10000, Seed: 23})
	if mc >= full {
		t.Fatalf("horizon did not bind: capped %.2f >= unbounded %.2f", mc, full)
	}
}

func TestQueryForceAndExclude(t *testing.T) {
	g := queryTestGraph(34)
	model := diffusion.NewIC()
	base, err := Maximize(g, model, Options{K: 5, Epsilon: 0.3, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the unconstrained picks entirely; force two other nodes.
	force := []uint32{0, 1}
	res, err := Maximize(g, model, Options{
		K: 5, Epsilon: 0.3, Seed: 29,
		Query: &query.Spec{Force: force, Exclude: base.Seeds},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForcedSeeds != 2 || res.Seeds[0] != 0 || res.Seeds[1] != 1 {
		t.Fatalf("forced prefix wrong: %v (forced=%d)", res.Seeds, res.ForcedSeeds)
	}
	if len(res.Seeds) != 7 {
		t.Fatalf("want 2 forced + 5 picks, got %v", res.Seeds)
	}
	banned := map[uint32]bool{}
	for _, v := range base.Seeds {
		banned[v] = true
	}
	for _, v := range res.Seeds[2:] {
		if banned[v] {
			t.Fatalf("excluded node %d picked: %v", v, res.Seeds)
		}
	}
}

func TestQueryBudget(t *testing.T) {
	g := queryTestGraph(35)
	model := diffusion.NewIC()
	costs := make([]float64, g.N())
	r := rng.New(41)
	for i := range costs {
		costs[i] = 1 + 3*r.Float64()
	}
	const budget = 6.0
	res, err := Maximize(g, model, Options{
		K: 10, Epsilon: 0.3, Seed: 43,
		Query: &query.Spec{Budget: budget, Costs: costs},
	})
	if err != nil {
		t.Fatal(err)
	}
	var spend float64
	for _, v := range res.Seeds {
		spend += costs[v]
	}
	if spend > budget+1e-9 {
		t.Fatalf("spend %.3f over budget %v: %v", spend, budget, res.Seeds)
	}
	if math.Abs(res.SeedCost-spend) > 1e-9 {
		t.Fatalf("SeedCost %.3f != spend %.3f", res.SeedCost, spend)
	}
	if len(res.Seeds) == 0 {
		t.Fatal("budget query selected nothing")
	}
}

func TestQueryBadSpecs(t *testing.T) {
	g := gen.Path(10, 0.5)
	model := diffusion.NewIC()
	for name, spec := range map[string]*query.Spec{
		"weights length": {Weights: []float64{1}},
		"all excluded":   {Exclude: []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		"neg hops":       {MaxHops: -2},
	} {
		_, err := Maximize(g, model, Options{K: 2, Query: spec})
		if err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

// TestQuerySpillDirRejected: the out-of-core path has no constraint hooks.
func TestQuerySpillDirRejected(t *testing.T) {
	g := gen.Path(10, 0.5)
	_, err := Maximize(g, diffusion.NewIC(), Options{
		K: 2, SpillDir: t.TempDir(), Query: &query.Spec{MaxHops: 1},
	})
	if err == nil {
		t.Fatal("SpillDir + Query accepted")
	}
}
