package tim

import (
	"context"
	"math"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/stats"
)

// refineKPT is Algorithm 3 (RefineKPT), the §4.1 intermediate step of
// TIM+. It greedily covers R′ (the final Algorithm 2 batch) to obtain a
// candidate seed set S′_k, estimates E[I(S′_k)] on θ′ = λ′/KPT* fresh RR
// sets as f·n (Corollary 1), deflates by (1 + ε′) so that
// KPT′ ≤ E[I(S′_k)] ≤ OPT with probability 1 − n^−ℓ, and returns
// KPT⁺ = max(KPT′, KPT*).
func refineKPT(ctx context.Context, g *graph.Graph, model diffusion.Model, lastBatch *diffusion.RRCollection,
	k int, kptStar, epsPrime, ell float64, workers int, seeds *seedSequence) float64 {

	n := g.N()
	if lastBatch == nil || kptStar <= 0 || ctx.Err() != nil {
		return kptStar
	}
	cover := maxcover.Greedy(n, lastBatch, k)
	lambdaPrime := stats.LambdaPrime(n, ell, epsPrime)
	thetaPrime := int64(math.Ceil(lambdaPrime / kptStar))
	if thetaPrime < 1 {
		thetaPrime = 1
	}
	fresh := diffusion.SampleCollection(g, model, thetaPrime, diffusion.SampleOptions{
		Workers: workers,
		Seed:    seeds.next(),
		Ctx:     ctx,
	})
	if ctx.Err() != nil {
		return kptStar
	}
	covered := maxcover.CountCovered(n, fresh, cover.Seeds)
	f := float64(covered) / float64(thetaPrime)
	kptPrime := f * float64(n) / (1 + epsPrime)
	if kptPrime > kptStar {
		return kptPrime
	}
	return kptStar
}
