package tim

import (
	"context"
	"math"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/stats"
)

// refineKPT is Algorithm 3 (RefineKPT), the §4.1 intermediate step of
// TIM+. It greedily covers R′ (the final Algorithm 2 batch) to obtain a
// candidate seed set S′_k, estimates E[I(S′_k)] on θ′ = λ′/KPT* fresh RR
// sets as f·n (Corollary 1), deflates by (1 + ε′) so that
// KPT′ ≤ E[I(S′_k)] ≤ OPT with probability 1 − n^−ℓ, and returns
// KPT⁺ = max(KPT′, KPT*).
//
// Constrained scenarios substitute structurally: the candidate is chosen
// by the *constrained* greedy (so S′ is feasible and its weighted spread
// lower-bounds the constrained optimum), fresh sets are drawn under cfg,
// and f scales by the audience mass instead of n.
func refineKPT(ctx context.Context, g *graph.Graph, model diffusion.Model, cfg diffusion.SampleConfig,
	mass float64, cover maxcover.Constraints, lastBatch *diffusion.RRCollection,
	kptStar, epsPrime, ell float64, workers int, seeds *seedSequence) float64 {

	n := g.N()
	if lastBatch == nil || kptStar <= 0 || ctx.Err() != nil {
		return kptStar
	}
	candidate := maxcover.GreedyConstrained(n, lastBatch, cover)
	// λ′ scales by mass/n for the same reason λ does (DESIGN.md §9.1):
	// kptStar is in audience-mass units, so θ′ = λ′/KPT* only keeps its
	// meaning — enough fresh sets for an (1+ε′)-accurate f — if λ′ moves
	// to the same scale. Exactly 1.0 for uniform audiences.
	lambdaPrime := stats.LambdaPrime(n, ell, epsPrime) * (mass / float64(n))
	thetaPrime := int64(math.Ceil(lambdaPrime / kptStar))
	if thetaPrime < 1 {
		thetaPrime = 1
	}
	fresh := diffusion.SampleCollection(g, model, thetaPrime, diffusion.SampleOptions{
		Workers: workers,
		Seed:    seeds.next(),
		Ctx:     ctx,
		Config:  cfg,
	})
	if ctx.Err() != nil {
		return kptStar
	}
	covered := maxcover.CountCoveredWorkers(n, fresh, candidate.Seeds, workers)
	f := float64(covered) / float64(thetaPrime)
	kptPrime := f * mass / (1 + epsPrime)
	if kptPrime > kptStar {
		return kptPrime
	}
	return kptStar
}
