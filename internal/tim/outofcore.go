package tim

import (
	"context"
	"fmt"

	"repro/internal/diffusion"
	"repro/internal/diskrr"
	"repro/internal/graph"
)

// Out-of-core node selection: the §8 "graphs that do not fit in main
// memory" direction. When Options.SpillDir is set, the θ RR sets of the
// node-selection phase stream to a temporary file in chunks instead of
// accumulating in RAM, and the greedy cover runs in k+1 sequential passes
// over that file (see internal/diskrr). Parameter estimation and
// refinement still run in memory — their collections are O(ℓ(m+n)log n)
// small by Theorem 2.

// spillChunk is the number of RR sets sampled (in parallel, in memory)
// between spill flushes. Peak memory is one chunk plus O(n) counters.
const spillChunk = 1 << 14

// selectOutOfCore runs Algorithm 1 with disk-resident RR storage. The
// context is polled between spill chunks (the granularity disk streaming
// naturally provides), so cancellation aborts within one chunk's work.
func selectOutOfCore(ctx context.Context, g *graph.Graph, model diffusion.Model, k int, theta int64,
	workers int, dir string, seeds *seedSequence) (*diskrr.Result, *diskSelStats, error) {

	w, err := diskrr.NewWriter(dir)
	if err != nil {
		return nil, nil, err
	}
	for generated := int64(0); generated < theta; {
		if err := ctx.Err(); err != nil {
			w.Abort()
			return nil, nil, err
		}
		batch := theta - generated
		if batch > spillChunk {
			batch = spillChunk
		}
		col := diffusion.SampleCollection(g, model, batch, diffusion.SampleOptions{
			Workers: workers,
			Seed:    seeds.next(),
			Ctx:     ctx,
		})
		for i := 0; i < col.Count(); i++ {
			set := col.Set(i)
			if err := w.Append(set, diffusion.Width(g, set)); err != nil {
				w.Abort()
				return nil, nil, fmt.Errorf("tim: spilling RR sets: %w", err)
			}
		}
		generated += batch
	}
	disk, err := w.Finish()
	if err != nil {
		// The writer has already removed the partial spill file.
		return nil, nil, fmt.Errorf("tim: finishing spill: %w", err)
	}
	defer disk.Close()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	cover, err := diskrr.GreedyOutOfCore(g.N(), disk, k)
	if err != nil {
		return nil, nil, fmt.Errorf("tim: out-of-core selection: %w", err)
	}
	stats := &diskSelStats{
		totalNodes: disk.TotalNodes(),
		totalWidth: disk.TotalWidth(),
		diskBytes:  disk.DiskBytes(),
	}
	return &cover, stats, nil
}

type diskSelStats struct {
	totalNodes int64
	totalWidth int64
	diskBytes  int64
}
