package tim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/rng"
)

// TestMaximizeWorkerIndependent is the new whole-pipeline determinism
// contract: with per-index keyed sampling and order-fixed selection
// reductions, a full TIM+ run returns byte-identical results at every
// worker count — Workers is purely a throughput knob. (Before this
// refactor only Workers=1 runs were reproducible across machines.)
func TestMaximizeWorkerIndependent(t *testing.T) {
	g := gen.ChungLuDirected(600, 4000, 2.4, 2.1, rng.New(31))
	graph.AssignWeightedCascade(g)
	for _, variant := range []Algorithm{TIM, TIMPlus} {
		var want *Result
		for _, workers := range []int{1, 2, 7} {
			res, err := Maximize(g, diffusion.NewIC(), Options{
				K: 8, Epsilon: 0.3, Variant: variant, Seed: 12, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v/workers=%d: %v", variant, workers, err)
			}
			if want == nil {
				want = res
				continue
			}
			label := fmt.Sprintf("%v/workers=%d", variant, workers)
			if !reflect.DeepEqual(res.Seeds, want.Seeds) {
				t.Fatalf("%s: seeds %v != %v", label, res.Seeds, want.Seeds)
			}
			if res.Theta != want.Theta || res.KptStar != want.KptStar || res.KptPlus != want.KptPlus {
				t.Fatalf("%s: theta/kpt drifted: %d/%g/%g vs %d/%g/%g",
					label, res.Theta, res.KptStar, res.KptPlus, want.Theta, want.KptStar, want.KptPlus)
			}
			if res.CoverageFraction != want.CoverageFraction || res.SpreadEstimate != want.SpreadEstimate {
				t.Fatalf("%s: coverage/spread drifted", label)
			}
		}
	}
}

// TestMaximizeWorkerIndependentConstrained repeats the contract under a
// constrained query (weighted audience, horizon, forced and excluded
// seeds, budget) — the paths that route through GreedyConstrained and the
// config sampler.
func TestMaximizeWorkerIndependentConstrained(t *testing.T) {
	g := gen.ChungLuDirected(500, 3500, 2.4, 2.1, rng.New(33))
	graph.AssignWeightedCascade(g)
	weights := make([]float64, g.N())
	costs := make([]float64, g.N())
	for i := range weights {
		weights[i] = float64(i%5) + 0.25
		costs[i] = 1 + float64(i%3)
	}
	spec := &query.Spec{
		Weights: weights,
		Costs:   costs,
		Budget:  12,
		Force:   []uint32{9},
		Exclude: []uint32{1, 2, 3},
		MaxHops: 4,
	}
	var want *Result
	for _, workers := range []int{1, 3, 8} {
		res, err := Maximize(g, diffusion.NewIC(), Options{
			K: 6, Epsilon: 0.3, Seed: 21, Workers: workers, Query: spec,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res.Seeds, want.Seeds) {
			t.Fatalf("workers=%d: seeds %v != %v", workers, res.Seeds, want.Seeds)
		}
		if res.Theta != want.Theta || res.SpreadEstimate != want.SpreadEstimate ||
			res.SeedCost != want.SeedCost || res.ForcedSeeds != want.ForcedSeeds {
			t.Fatalf("workers=%d: result drifted: %+v vs %+v", workers, res, want)
		}
	}
}
