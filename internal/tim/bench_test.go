package tim

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func benchGraph(b *testing.B, kind diffusion.Kind) *graph.Graph {
	b.Helper()
	g := gen.ChungLuDirected(20_000, 160_000, 2.4, 2.1, rng.New(1))
	if kind == diffusion.LT {
		graph.AssignRandomNormalizedLT(g, rng.New(2))
	} else {
		graph.AssignWeightedCascade(g)
	}
	return g
}

func BenchmarkMaximize(b *testing.B) {
	for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
		g := benchGraph(b, kind)
		model := diffusion.NewIC()
		if kind == diffusion.LT {
			model = diffusion.NewLT()
		}
		for _, variant := range []Algorithm{TIM, TIMPlus} {
			name := fmt.Sprintf("%v/%v", kind, variant)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := Maximize(g, model, Options{
						K: 50, Epsilon: 0.2, Variant: variant, Seed: uint64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Theta), "theta")
				}
			})
		}
	}
}

func BenchmarkKptEstimation(b *testing.B) {
	g := benchGraph(b, diffusion.IC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), 50, 1, 0, newSeedSequence(uint64(i)))
	}
}

func BenchmarkNodeSelectionTheta(b *testing.B) {
	g := benchGraph(b, diffusion.IC)
	for _, theta := range []int64{10_000, 100_000} {
		b.Run(fmt.Sprintf("theta=%d", theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SelectWithTheta(g, diffusion.NewIC(), 50, theta, 0, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
