package tim

import (
	"context"
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/rng"
	"repro/internal/spread"
	"repro/internal/stats"
)

// TestKappaSumEdgeless: with m = 0 every κ(R) is 0 by definition.
func TestKappaSumEdgeless(t *testing.T) {
	g := graph.MustFromEdges(10, nil)
	col := diffusion.SampleCollection(g, diffusion.NewIC(), 50, diffusion.SampleOptions{Workers: 1, Seed: 1})
	if got := KappaSum(g, col, 3, g.M()); got != 0 {
		t.Fatalf("kappaSum=%v, want 0 with no edges", got)
	}
}

// TestKappaSumCompleteGraph: on a complete certain graph every RR set is
// all of V, so w(R) = m and κ(R) = 1 for every set.
func TestKappaSumCompleteGraph(t *testing.T) {
	g := gen.Complete(6, 1)
	col := diffusion.SampleCollection(g, diffusion.NewIC(), 40, diffusion.SampleOptions{Workers: 1, Seed: 2})
	got := KappaSum(g, col, 2, g.M())
	if math.Abs(got-40) > 1e-9 {
		t.Fatalf("kappaSum=%v, want 40 (kappa=1 per set)", got)
	}
}

// TestKappaSumRange: κ values always land in [0, 1].
func TestKappaSumRange(t *testing.T) {
	g := gen.ChungLuDirected(500, 3000, 2.4, 2.1, rng.New(3))
	graph.AssignWeightedCascade(g)
	col := diffusion.SampleCollection(g, diffusion.NewIC(), 200, diffusion.SampleOptions{Workers: 1, Seed: 4})
	sum := KappaSum(g, col, 10, g.M())
	if sum < 0 || sum > float64(col.Count()) {
		t.Fatalf("kappaSum=%v outside [0, %d]", sum, col.Count())
	}
}

// TestEstimateKPTIsLowerBoundOfOPT verifies Theorem 2's guarantee
// statistically: KPT* <= OPT. OPT is upper-bounded by n and
// lower-bounded by the best measured spread.
func TestEstimateKPTIsLowerBoundOfOPT(t *testing.T) {
	g := gen.ChungLuDirected(1000, 6000, 2.4, 2.1, rng.New(5))
	graph.AssignWeightedCascade(g)
	const k = 5
	est := estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), k, 1, 1, newSeedSequence(6))
	if est.kptStar < 1 {
		t.Fatalf("KPT*=%v below the minimum 1", est.kptStar)
	}
	// Find a decent seed set and measure its spread: that is a lower
	// bound of OPT; KPT* must not exceed OPT. With Theorem 2 holding
	// with probability 1-n^-l, KPT* <= OPT; we test against an upper
	// bound: spread(TIM+ seeds)/(1-1/e-eps) * slack.
	res, err := Maximize(g, diffusion.NewIC(), Options{K: k, Epsilon: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	measured := spread.Estimate(g, diffusion.NewIC(), res.Seeds, spread.Options{Samples: 20000, Seed: 8})
	optUpper := measured / (1 - 1/math.E - 0.2) * 1.2
	if est.kptStar > optUpper {
		t.Fatalf("KPT* %v above OPT upper bound %v", est.kptStar, optUpper)
	}
}

// TestEstimateKPTTracksNmEPT verifies Lemma 4's direction: KPT >=
// (n/m)·EPT, so KPT* (≈ KPT/2 or better) should not be wildly below the
// width-implied bound.
func TestEstimateKPTTracksNmEPT(t *testing.T) {
	g := gen.ChungLuDirected(2000, 12000, 2.4, 2.1, rng.New(9))
	graph.AssignWeightedCascade(g)
	est := estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), 10, 1, 1, newSeedSequence(10))
	nmEPT := float64(g.N()) / float64(g.M()) * est.ept
	// Theorem 2: KPT* >= KPT/4 >= (n/m)EPT/4 with high probability.
	if est.kptStar < nmEPT/4*0.5 { // extra 2x slack for sampling noise
		t.Fatalf("KPT*=%v far below (n/m)EPT/4=%v", est.kptStar, nmEPT/4)
	}
}

// TestEstimateKPTLastBatchUsable: Algorithm 3 depends on the final
// iteration's RR sets being returned.
func TestEstimateKPTLastBatchUsable(t *testing.T) {
	g := gen.ChungLuDirected(500, 3000, 2.4, 2.1, rng.New(11))
	graph.AssignWeightedCascade(g)
	est := estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), 5, 1, 1, newSeedSequence(12))
	if est.lastBatch == nil || est.lastBatch.Count() == 0 {
		t.Fatal("no last batch returned")
	}
	ci := stats.SampleScheduleCi(g.N(), 1, est.iterations)
	if int64(est.lastBatch.Count()) != ci {
		t.Fatalf("last batch has %d sets, expected c_%d = %d",
			est.lastBatch.Count(), est.iterations, ci)
	}
}

// TestEstimateKPTEdgeless: the algorithm must fall through all
// iterations and return the floor value 1.
func TestEstimateKPTEdgeless(t *testing.T) {
	g := graph.MustFromEdges(64, nil)
	est := estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), 3, 1, 1, newSeedSequence(13))
	if est.kptStar != 1 {
		t.Fatalf("KPT*=%v on an edgeless graph, want 1", est.kptStar)
	}
	if est.iterations != stats.KptIterations(64) {
		t.Fatalf("iterations=%d, want the full schedule %d", est.iterations, stats.KptIterations(64))
	}
}

// TestEstimateKPTStarOnStar: a certain out-star with n-1 leaves has
// KPT dominated by the hub; KPT (mean spread of degree-sampled seeds)
// is large because the only in-edges point at leaves... verify KPT* at
// least reflects a spread above 1.
func TestEstimateKPTStarOnStar(t *testing.T) {
	g := gen.Star(256, 1)
	est := estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), 1, 1, 1, newSeedSequence(14))
	// Every RR set rooted at a leaf is {leaf, hub} with width 1;
	// κ(R) = w/m = 1/255 per leaf-rooted set. KPT = n·E[κ] ≈ 256/255 ≈ 1.
	if est.kptStar < 0.4 || est.kptStar > 4 {
		t.Fatalf("KPT*=%v outside the plausible band around 1", est.kptStar)
	}
}

// TestRefineKPTImproves: on hub-heavy graphs KPT+ should exceed KPT*
// (that is Algorithm 3's entire purpose, Figure 5).
func TestRefineKPTImproves(t *testing.T) {
	g := gen.ChungLuDirected(3000, 20000, 2.4, 2.1, rng.New(15))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	seeds := newSeedSequence(16)
	est := estimateKPT(context.Background(), g, model, diffusion.SampleConfig{}, float64(g.N()), 20, 1, 1, seeds)
	kptPlus := refineKPT(context.Background(), g, model, diffusion.SampleConfig{}, float64(g.N()), maxcover.Constraints{K: 20}, est.lastBatch, est.kptStar, 0.3, 1, 1, seeds)
	if kptPlus < est.kptStar {
		t.Fatalf("KPT+ %v < KPT* %v", kptPlus, est.kptStar)
	}
	if kptPlus < 1.5*est.kptStar {
		t.Logf("note: refinement gain modest on this instance: %v -> %v", est.kptStar, kptPlus)
	}
}

// TestRefineKPTIsLowerBound: KPT+ <= OPT with slack (Lemma 8).
func TestRefineKPTIsLowerBound(t *testing.T) {
	g := gen.ChungLuDirected(1500, 9000, 2.4, 2.1, rng.New(17))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	const k = 10
	seeds := newSeedSequence(18)
	est := estimateKPT(context.Background(), g, model, diffusion.SampleConfig{}, float64(g.N()), k, 1, 1, seeds)
	kptPlus := refineKPT(context.Background(), g, model, diffusion.SampleConfig{}, float64(g.N()), maxcover.Constraints{K: k}, est.lastBatch, est.kptStar, 0.3, 1, 1, seeds)
	res, err := Maximize(g, model, Options{K: k, Epsilon: 0.2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	measured := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 20000, Seed: 20})
	optUpper := measured / (1 - 1/math.E - 0.2) * 1.2
	if kptPlus > optUpper {
		t.Fatalf("KPT+ %v above OPT upper bound %v", kptPlus, optUpper)
	}
}

// TestRefineKPTDegenerateInputs: nil batch or non-positive KPT* pass
// through unchanged.
func TestRefineKPTDegenerateInputs(t *testing.T) {
	g := gen.Path(10, 0.5)
	model := diffusion.NewIC()
	if got := refineKPT(context.Background(), g, model, diffusion.SampleConfig{}, float64(g.N()), maxcover.Constraints{K: 2}, nil, 5, 0.3, 1, 1, newSeedSequence(1)); got != 5 {
		t.Fatalf("nil batch: got %v, want passthrough 5", got)
	}
	col := diffusion.SampleCollection(g, model, 10, diffusion.SampleOptions{Workers: 1, Seed: 2})
	if got := refineKPT(context.Background(), g, model, diffusion.SampleConfig{}, float64(g.N()), maxcover.Constraints{K: 2}, col, 0, 0.3, 1, 1, newSeedSequence(3)); got != 0 {
		t.Fatalf("zero KPT*: got %v, want passthrough 0", got)
	}
}

// TestSeedSequenceDeterministic: the per-batch seed dealer reproduces.
func TestSeedSequenceDeterministic(t *testing.T) {
	a, b := newSeedSequence(42), newSeedSequence(42)
	for i := 0; i < 20; i++ {
		if a.next() != b.next() {
			t.Fatal("seed sequences diverged")
		}
	}
	c := newSeedSequence(43)
	if c.next() == newSeedSequence(42).next() {
		t.Fatal("different masters produced the same first seed")
	}
}

// TestEptEstimatePositive: EPT estimates must be positive on any graph
// with edges.
func TestEptEstimatePositive(t *testing.T) {
	g := gen.Cycle(50, 0.5)
	est := estimateKPT(context.Background(), g, diffusion.NewIC(), diffusion.SampleConfig{}, float64(g.N()), 2, 1, 1, newSeedSequence(21))
	if est.ept <= 0 {
		t.Fatalf("EPT estimate %v", est.ept)
	}
	// On a cycle every node has in-degree 1, so every RR set of size s
	// has width s; EPT equals the expected RR size, which is at least 1.
	if est.ept < 1 {
		t.Fatalf("EPT %v below 1 on a cycle", est.ept)
	}
}
