package tim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// seedSequence deals deterministic sub-seeds to the successive sampling
// batches of a run, so that batches are mutually independent streams while
// the whole run stays reproducible from one master seed.
type seedSequence struct {
	r *rng.Rand
}

func newSeedSequence(master uint64) *seedSequence {
	return &seedSequence{r: rng.New(master)}
}

func (s *seedSequence) next() uint64 { return s.r.Uint64() }

// Maximize runs TIM or TIM+ (per opts.Variant) on g under the given
// diffusion model and returns the selected seed set with diagnostics.
//
// Guarantees (Theorems 1–3): the result is (1 − 1/e − ε)-approximate with
// probability at least 1 − n^−ℓ, in O((k + ℓ)(m + n) log n / ε²) expected
// time, under IC, LT, and any triggering model.
func Maximize(g *graph.Graph, model diffusion.Model, opts Options) (*Result, error) {
	return MaximizeContext(context.Background(), g, model, opts)
}

// MaximizeContext is Maximize with cancellation: the context is polled
// inside every sampling loop (the phases where all the time goes), so a
// cancelled or deadline-exceeded ctx aborts the run promptly and returns
// ctx's error. Long-lived callers — request-scoped services especially —
// should prefer it over Maximize.
func MaximizeContext(ctx context.Context, g *graph.Graph, model diffusion.Model, opts Options) (*Result, error) {
	n := g.N()
	if err := opts.validate(n); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	ell := opts.effectiveEll(n)
	seeds := newSeedSequence(opts.Seed)
	res := &Result{Epsilon: opts.Epsilon}
	start := time.Now()

	// Constrained-query lowering: the sampling scenario (root weights,
	// horizon), the audience mass the estimator scales by, and the
	// node-selection constraints. All are no-ops for a nil/zero Query —
	// mass == float64(n) exactly, so every formula below is bit-identical
	// to the unconstrained run.
	cfg := opts.sampleConfig()
	mass := opts.mass(n)
	cover := maxcover.Constraints{K: opts.K}
	if opts.compiled != nil {
		cover = opts.compiled.Cover
		cover.K = opts.K
	}
	// Workers drives the selection half too (index build, coverage
	// counting); results are byte-identical for every value.
	cover.Workers = opts.Workers
	res.Mass = mass

	// Phase 1: parameter estimation (Algorithm 2).
	t0 := time.Now()
	kptSpan := obs.StartSpan(ctx, "kpt.estimate")
	est := estimateKPT(ctx, g, model, cfg, mass, opts.K, ell, opts.Workers, seeds)
	kptSpan.Attr("kpt_star", est.kptStar).Attr("iterations", int64(est.iterations)).End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Timings.KptEstimation = time.Since(t0)
	res.KptStar = est.kptStar
	res.KptPlus = est.kptStar
	res.EptEstimate = est.ept
	res.KptIterations = est.iterations

	// Intermediate step: refinement (Algorithm 3, TIM+ only).
	if opts.Variant == TIMPlus {
		t1 := time.Now()
		refineSpan := obs.StartSpan(ctx, "kpt.refine")
		res.KptPlus = refineKPT(ctx, g, model, cfg, mass, cover, est.lastBatch,
			est.kptStar, opts.EpsPrime, ell, opts.Workers, seeds)
		refineSpan.Attr("kpt_plus", res.KptPlus).End()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Timings.Refinement = time.Since(t1)
	}

	// Phase 2: node selection (Algorithm 1) with θ = λ/KPT. λ scales by
	// mass/n: Equation 4's leading n is the estimator scale W·F_R(S),
	// which for a weighted audience is the mass (for uniform audiences
	// the factor is exactly 1.0 and the product is unchanged).
	t2 := time.Now()
	lambda := stats.Lambda(n, opts.K, opts.Epsilon, ell) * (mass / float64(n))
	kpt := res.KptPlus
	// The floor "a seed always activates itself" is one node's worth of
	// audience: 1 in the uniform case (exactly, preserving bit-identity),
	// mass/n — a lower bound on the best single node's weight via
	// max ≥ mean — in the weighted case.
	if floor := mass / float64(n); kpt < floor {
		kpt = floor
	}
	theta := int64(math.Ceil(lambda / kpt))
	if theta < 1 {
		theta = 1
	}
	if opts.ThetaCap > 0 && theta > opts.ThetaCap {
		theta = opts.ThetaCap
		res.ThetaCapped = true
	}
	if !res.ThetaCapped {
		res.Confidence = ApproxFactor(opts.Epsilon)
	}
	selSpan := obs.StartSpan(ctx, "select").Attr("theta", theta).Attr("k", int64(opts.K))
	if opts.SpillDir != "" {
		cover, stats, err := selectOutOfCore(ctx, g, model, opts.K, theta, opts.Workers, opts.SpillDir, seeds)
		if err != nil {
			selSpan.End()
			return nil, err
		}
		selSpan.Attr("covered", cover.Covered).Attr("spilled", true).End()
		res.Timings.NodeSelection = time.Since(t2)
		res.Seeds = cover.Seeds
		res.Theta = theta
		res.CoverageFraction = float64(cover.Covered) / float64(theta)
		res.SpreadEstimate = res.CoverageFraction * float64(n)
		res.RRTotalNodes = stats.totalNodes
		res.RRTotalWidth = stats.totalWidth
		res.MemoryBytes = stats.diskBytes
		res.Spilled = true
		res.Timings.Total = time.Since(start)
		return res, nil
	}
	var col *diffusion.RRCollection
	if opts.Source != nil {
		var err error
		col, err = opts.Source.NodeSelectionSets(ctx, g, model, theta, opts.Workers)
		if err != nil {
			selSpan.End()
			return nil, err
		}
		if int64(col.Count()) < theta {
			selSpan.End()
			return nil, fmt.Errorf("%w: returned %d RR sets, need θ=%d",
				ErrBadSource, col.Count(), theta)
		}
		theta = int64(col.Count())
	} else {
		col = diffusion.SampleCollection(g, model, theta, diffusion.SampleOptions{
			Workers: opts.Workers,
			Seed:    seeds.next(),
			Ctx:     ctx,
			Config:  cfg,
		})
		if err := ctx.Err(); err != nil {
			selSpan.End()
			return nil, err
		}
	}
	sel := maxcover.GreedyConstrained(n, col, cover)
	selSpan.Attr("covered", sel.Covered).End()
	res.Timings.NodeSelection = time.Since(t2)

	res.Seeds = sel.Seeds
	res.ForcedSeeds = sel.Forced
	res.SeedCost = sel.Cost
	res.Theta = theta
	res.CoverageFraction = float64(sel.Covered) / float64(theta)
	res.SpreadEstimate = res.CoverageFraction * mass
	res.RRTotalNodes = col.TotalNodes()
	res.RRTotalWidth = col.TotalWidth
	res.MemoryBytes = col.MemoryBytes()
	res.Timings.Total = time.Since(start)
	return res, nil
}

// SelectWithTheta runs Algorithm 1 alone with an explicitly chosen θ —
// the paper's NodeSelection(G, k, θ). It is exposed for experiments that
// study θ directly; Maximize is the supported entry point.
func SelectWithTheta(g *graph.Graph, model diffusion.Model, k int, theta int64, workers int, seed uint64) (*Result, error) {
	opts := Options{K: k}
	if err := opts.validate(g.N()); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if theta < 1 {
		theta = 1
	}
	start := time.Now()
	col := diffusion.SampleCollection(g, model, theta, diffusion.SampleOptions{
		Workers: workers,
		Seed:    seed,
	})
	cover := maxcover.GreedyWorkers(g.N(), col, k, workers)
	res := &Result{
		Seeds:            cover.Seeds,
		Theta:            theta,
		CoverageFraction: float64(cover.Covered) / float64(theta),
		RRTotalNodes:     col.TotalNodes(),
		RRTotalWidth:     col.TotalWidth,
		MemoryBytes:      col.MemoryBytes(),
	}
	res.SpreadEstimate = res.CoverageFraction * float64(g.N())
	res.Timings.NodeSelection = time.Since(start)
	res.Timings.Total = res.Timings.NodeSelection
	return res, nil
}
