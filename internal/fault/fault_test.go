package fault

import (
	"errors"
	"testing"
)

func TestUnarmedIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Hit("nothing/armed"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
}

func TestSetClearReset(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set("p1", func() error { return boom })
	if err := Hit("p1"); !errors.Is(err, boom) {
		t.Fatalf("armed Hit returned %v, want boom", err)
	}
	// A different point stays unarmed.
	if err := Hit("p2"); err != nil {
		t.Fatalf("other point returned %v", err)
	}
	Clear("p1")
	if err := Hit("p1"); err != nil {
		t.Fatalf("cleared Hit returned %v", err)
	}
	// Clearing twice (and clearing the unarmed) must not corrupt the
	// armed count: after it, an armed point still fires.
	Clear("p1")
	Clear("never-armed")
	Set("p3", func() error { return boom })
	if err := Hit("p3"); !errors.Is(err, boom) {
		t.Fatalf("Hit after redundant clears returned %v, want boom", err)
	}
	Reset()
	if err := Hit("p3"); err != nil {
		t.Fatalf("Hit after Reset returned %v", err)
	}
}

func TestSetNilClears(t *testing.T) {
	t.Cleanup(Reset)
	Set("p", func() error { return errors.New("x") })
	Set("p", nil)
	if err := Hit("p"); err != nil {
		t.Fatalf("nil-set point returned %v", err)
	}
}

func TestFailOn(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set("p", FailOn(2, boom))
	for i := 0; i < 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("hit %d: %v, want nil", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d after threshold: %v, want boom", i, err)
		}
	}
}

func TestPanicOn(t *testing.T) {
	t.Cleanup(Reset)
	Set("p", PanicOn(1, "crash here"))
	if err := Hit("p"); err != nil {
		t.Fatalf("first hit: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second hit did not panic")
		}
	}()
	_ = Hit("p")
}

func TestCounting(t *testing.T) {
	t.Cleanup(Reset)
	h, hits := Counting(func() error { return nil })
	Set("p", h)
	for i := 0; i < 3; i++ {
		_ = Hit("p")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
}
