// Package fault provides named fault-injection points for crash and
// I/O-failure testing. Production code calls Hit at the places where a
// real deployment could fail — a WAL append, a spill write, an fsync —
// and tests arm those points with handlers that return errors, write
// short, or panic. With nothing armed (the production state), Hit is a
// single atomic load and no handler storage is ever touched, so the
// points cost nothing on hot paths.
//
// Point names are owned by the package containing the call site and
// declared there as constants (e.g. wal.FaultAppendWrite), so the set
// of injectable failures is discoverable next to the code that can
// fail. Handlers run synchronously inside Hit; a handler that panics
// simulates a crash at that point (the process-death tests kill for
// real, the in-process ones recover).
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler decides one injection. A nil return means "no fault this
// time" (the point keeps its production behavior for this hit); a
// non-nil return is handed to the call site as the injected failure.
// Handlers may panic to simulate a crash at the point.
type Handler func() error

var (
	// armed counts the currently armed points. Hit's fast path checks it
	// before taking the lock, so an unarmed process pays one atomic load
	// per point regardless of how many points exist.
	armed atomic.Int32

	mu     sync.Mutex
	points map[string]Handler
)

// Set arms a point with a handler, replacing any previous handler.
func Set(point string, h Handler) {
	if h == nil {
		Clear(point)
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]Handler)
	}
	if _, ok := points[point]; !ok {
		armed.Add(1)
	}
	points[point] = h
}

// Clear disarms a point. Clearing an unarmed point is a no-op.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms every point. Tests call it in cleanup so an armed
// point can never leak across tests.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = nil
}

// Hit consults a point. It returns nil instantly when nothing is armed
// anywhere (the production state), nil when this particular point is
// unarmed or its handler declines, and the handler's error otherwise.
func Hit(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	h := points[point]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h()
}

// FailOn returns a handler that declines n times and then fails every
// subsequent hit with err — "the (n+1)th write to this file fails".
// n = 0 fails immediately.
func FailOn(n int, err error) Handler {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) > int64(n) {
			return err
		}
		return nil
	}
}

// PanicOn returns a handler that declines n times and then panics,
// simulating a crash at the point.
func PanicOn(n int, msg string) Handler {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) > int64(n) {
			panic(fmt.Sprintf("fault: injected panic: %s", msg))
		}
		return nil
	}
}

// Counting wraps a handler so tests can assert how many times the
// point was actually consulted while armed.
func Counting(h Handler) (Handler, *atomic.Int64) {
	var hits atomic.Int64
	return func() error {
		hits.Add(1)
		return h()
	}, &hits
}
