package spread

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEstimateCertainPath(t *testing.T) {
	g := gen.Path(10, 1)
	got := Estimate(g, diffusion.NewIC(), []uint32{0}, Options{Samples: 100, Seed: 1})
	if got != 10 {
		t.Fatalf("spread=%v, want 10", got)
	}
}

func TestEstimateEmptySeeds(t *testing.T) {
	g := gen.Path(10, 1)
	if got := Estimate(g, diffusion.NewIC(), nil, Options{Samples: 10}); got != 0 {
		t.Fatalf("spread=%v, want 0", got)
	}
}

func TestEstimateSingleEdgeProbability(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{From: 0, To: 1, Weight: 0.3}})
	mean, stderr := EstimateWithStderr(g, diffusion.NewIC(), []uint32{0}, Options{Samples: 100000, Seed: 5})
	if math.Abs(mean-1.3) > 0.01 {
		t.Fatalf("mean=%v, want about 1.3", mean)
	}
	if stderr <= 0 || stderr > 0.01 {
		t.Fatalf("stderr=%v out of expected band", stderr)
	}
}

func TestEstimateParallelMatchesSerial(t *testing.T) {
	g := gen.ErdosRenyiGnm(100, 600, rng.New(1))
	graph.AssignWeightedCascade(g)
	seeds := []uint32{1, 2, 3}
	serial := Estimate(g, diffusion.NewIC(), seeds, Options{Samples: 40000, Workers: 1, Seed: 9})
	parallel := Estimate(g, diffusion.NewIC(), seeds, Options{Samples: 40000, Workers: 8, Seed: 10})
	if math.Abs(serial-parallel) > 0.05*serial+0.2 {
		t.Fatalf("serial %v vs parallel %v", serial, parallel)
	}
}

func TestEstimateDeterministicSingleWorker(t *testing.T) {
	g := gen.ErdosRenyiGnm(50, 200, rng.New(2))
	graph.AssignWeightedCascade(g)
	seeds := []uint32{0}
	a := Estimate(g, diffusion.NewIC(), seeds, Options{Samples: 1000, Workers: 1, Seed: 7})
	b := Estimate(g, diffusion.NewIC(), seeds, Options{Samples: 1000, Workers: 1, Seed: 7})
	if a != b {
		t.Fatalf("same seed, different estimates: %v vs %v", a, b)
	}
}

func TestEstimateMoreWorkersThanSamples(t *testing.T) {
	g := gen.Path(5, 1)
	got := Estimate(g, diffusion.NewIC(), []uint32{0}, Options{Samples: 3, Workers: 64, Seed: 1})
	if got != 5 {
		t.Fatalf("spread=%v, want 5", got)
	}
}

func TestEstimateLTModel(t *testing.T) {
	g := gen.Star(11, 1)
	got := Estimate(g, diffusion.NewLT(), []uint32{0}, Options{Samples: 500, Seed: 3})
	if got != 11 {
		t.Fatalf("LT star spread=%v, want 11", got)
	}
}

func TestEstimateMonotoneInSeeds(t *testing.T) {
	// Adding a seed cannot decrease expected spread (submodular
	// monotone function); check estimates respect this within noise.
	g := gen.ErdosRenyiGnm(120, 700, rng.New(4))
	graph.AssignWeightedCascade(g)
	opts := Options{Samples: 30000, Seed: 11}
	s1 := Estimate(g, diffusion.NewIC(), []uint32{5}, opts)
	s2 := Estimate(g, diffusion.NewIC(), []uint32{5, 17}, opts)
	if s2 < s1-0.2 {
		t.Fatalf("spread decreased when adding a seed: %v -> %v", s1, s2)
	}
}
