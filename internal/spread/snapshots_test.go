package spread

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSnapshotsCertainPath(t *testing.T) {
	g := gen.Path(6, 1)
	s := NewSnapshots(g, diffusion.NewIC(), 10, 1, 1)
	ev := s.NewEvaluator()
	if got := ev.Spread([]uint32{0}); got != 6 {
		t.Fatalf("spread=%v, want 6", got)
	}
	if got := ev.Spread([]uint32{4}); got != 2 {
		t.Fatalf("spread=%v, want 2", got)
	}
	if got := ev.Spread(nil); got != 0 {
		t.Fatalf("empty seeds spread=%v", got)
	}
}

func TestSnapshotsImpossiblePath(t *testing.T) {
	g := gen.Path(6, 0)
	s := NewSnapshots(g, diffusion.NewIC(), 10, 1, 1)
	ev := s.NewEvaluator()
	if got := ev.Spread([]uint32{0, 3}); got != 2 {
		t.Fatalf("spread=%v, want 2 (seeds only)", got)
	}
}

func TestSnapshotsMatchMonteCarloIC(t *testing.T) {
	g := gen.ChungLuDirected(300, 1800, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	seeds := []uint32{0, 5, 9}
	s := NewSnapshots(g, diffusion.NewIC(), 4000, 0, 2)
	snap := s.NewEvaluator().Spread(seeds)
	mc := Estimate(g, diffusion.NewIC(), seeds, Options{Samples: 40000, Seed: 3})
	if math.Abs(snap-mc) > 0.05*mc+0.5 {
		t.Fatalf("snapshot estimate %v vs Monte-Carlo %v", snap, mc)
	}
}

func TestSnapshotsMatchMonteCarloLT(t *testing.T) {
	g := gen.ChungLuDirected(300, 1800, 2.4, 2.1, rng.New(4))
	graph.AssignRandomNormalizedLT(g, rng.New(5))
	seeds := []uint32{1, 2, 3}
	s := NewSnapshots(g, diffusion.NewLT(), 4000, 0, 6)
	snap := s.NewEvaluator().Spread(seeds)
	mc := Estimate(g, diffusion.NewLT(), seeds, Options{Samples: 40000, Seed: 7})
	if math.Abs(snap-mc) > 0.05*mc+0.5 {
		t.Fatalf("snapshot LT estimate %v vs Monte-Carlo %v", snap, mc)
	}
}

func TestSnapshotsTriggeringModel(t *testing.T) {
	g := gen.Star(10, 1)
	s := NewSnapshots(g, diffusion.NewTriggering(diffusion.ICTrigger{}), 20, 1, 8)
	ev := s.NewEvaluator()
	if got := ev.Spread([]uint32{0}); got != 10 {
		t.Fatalf("triggering snapshot spread=%v, want 10", got)
	}
}

func TestSnapshotsDeterministic(t *testing.T) {
	g := gen.ErdosRenyiGnm(100, 500, rng.New(9))
	graph.AssignWeightedCascade(g)
	a := NewSnapshots(g, diffusion.NewIC(), 50, 2, 11)
	b := NewSnapshots(g, diffusion.NewIC(), 50, 2, 11)
	seeds := []uint32{1, 2}
	if a.NewEvaluator().Spread(seeds) != b.NewEvaluator().Spread(seeds) {
		t.Fatal("same seed produced different snapshots")
	}
}

func TestSnapshotsEvaluatorMonotone(t *testing.T) {
	g := gen.ChungLuDirected(200, 1200, 2.4, 2.1, rng.New(12))
	graph.AssignWeightedCascade(g)
	s := NewSnapshots(g, diffusion.NewIC(), 500, 0, 13)
	ev := s.NewEvaluator()
	// Exact monotonicity: reachable(S) ⊆ reachable(S ∪ {v}) per world,
	// so the snapshot spread can never decrease when adding a seed.
	base := ev.Spread([]uint32{7})
	for v := uint32(0); v < 20; v++ {
		got := ev.Spread([]uint32{7, v})
		if got < base {
			t.Fatalf("adding seed %d decreased snapshot spread: %v -> %v", v, base, got)
		}
	}
}

func TestSnapshotsSubmodularExact(t *testing.T) {
	// Snapshot spreads are exactly submodular (reachability union),
	// unlike noisy MC estimates: gain(v | S) >= gain(v | S+u).
	g := gen.ChungLuDirected(150, 900, 2.4, 2.1, rng.New(14))
	graph.AssignWeightedCascade(g)
	s := NewSnapshots(g, diffusion.NewIC(), 300, 0, 15)
	ev := s.NewEvaluator()
	S := []uint32{3}
	Su := []uint32{3, 8}
	for v := uint32(20); v < 40; v++ {
		gainS := ev.Spread(append(append([]uint32{}, S...), v)) - ev.Spread(S)
		gainSu := ev.Spread(append(append([]uint32{}, Su...), v)) - ev.Spread(Su)
		if gainSu > gainS+1e-9 {
			t.Fatalf("submodularity violated at v=%d: %v > %v", v, gainSu, gainS)
		}
	}
}

func TestSnapshotsMemoryBytes(t *testing.T) {
	g := gen.Cycle(50, 1)
	s := NewSnapshots(g, diffusion.NewIC(), 5, 1, 16)
	if s.Count() != 5 || s.MemoryBytes() <= 0 {
		t.Fatalf("count=%d mem=%d", s.Count(), s.MemoryBytes())
	}
}
