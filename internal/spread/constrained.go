package spread

import (
	"math"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
)

// EstimateConstrained returns the Monte-Carlo mean and standard error of
// the constrained spread of a seed set: each cascade runs for at most
// maxHops propagation rounds (0 = unlimited), and each activated node v
// contributes weights[v] instead of 1 (nil weights = unit). With nil
// weights and maxHops 0 it measures exactly what EstimateWithStderr does
// (through the slower activation-set path). It is the ground truth the
// constrained-query subsystem (internal/query) is validated against:
// tim's weighted RR estimator must land inside this estimate's CI.
//
// Nodes with ids beyond len(weights) contribute 0 — mirroring the
// query-layer convention that a weight profile pins the audience even if
// the graph has since grown.
func EstimateConstrained(g *graph.Graph, model diffusion.Model, seeds []uint32, weights []float64, maxHops int, opts Options) (mean, stderr float64) {
	if len(seeds) == 0 || g.N() == 0 {
		return 0, 0
	}
	opts.normalize()
	mass := func(active []uint32) float64 {
		if weights == nil {
			return float64(len(active))
		}
		var m float64
		for _, v := range active {
			if int(v) < len(weights) {
				m += weights[v]
			}
		}
		return m
	}
	type partial struct {
		sum   float64
		sumSq float64
	}
	partials := make([]partial, opts.Workers)
	base := rng.New(opts.Seed)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		count := opts.Samples / opts.Workers
		if w < opts.Samples%opts.Workers {
			count++
		}
		r := base.Split(uint64(w))
		wg.Add(1)
		go func(w, count int, r *rng.Rand) {
			defer wg.Done()
			sim := diffusion.NewSimulator(g, model)
			var sum, sumSq float64
			for i := 0; i < count; i++ {
				x := mass(sim.RunActivatedHorizon(r, seeds, maxHops))
				sum += x
				sumSq += x * x
			}
			partials[w] = partial{sum, sumSq}
		}(w, count, r)
	}
	wg.Wait()
	var sum, sumSq float64
	for _, p := range partials {
		sum += p.sum
		sumSq += p.sumSq
	}
	nf := float64(opts.Samples)
	mean = sum / nf
	variance := sumSq/nf - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / nf)
}
