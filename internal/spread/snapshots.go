package spread

import (
	"runtime"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Snapshots is a set of pre-sampled live-edge worlds for a graph and
// diffusion model. Kempe et al.'s observation (§2.2 of the paper) is
// that E[I(S)] equals the expected number of nodes reachable from S in a
// randomly sampled world; a Snapshots value fixes r such worlds once and
// evaluates any number of seed sets against them.
//
// Two properties make snapshots attractive inside greedy selection:
//
//   - evaluation is an exact BFS per world — no per-call sampling noise,
//     so marginal gains of related seed sets are positively correlated
//     (common random numbers), which stabilizes CELF-style selection;
//   - each world is sampled once and reused for all O(kn) evaluations,
//     amortizing the RNG cost that dominates fresh-cascade estimation.
//
// The memory cost is the retained live edges of r worlds. This is the
// "StaticGreedy" style of oracle from the literature, provided both as a
// faster backend for greedy baselines and as an independent
// cross-validation of the Monte-Carlo estimator.
type Snapshots struct {
	n      int
	worlds []world
}

// world stores one sampled live-edge graph in CSR form.
type world struct {
	off []int64
	to  []uint32
}

// NewSnapshots samples r live-edge worlds of g under model. Workers
// parallelize world construction (0 = GOMAXPROCS); seed fixes the sample.
func NewSnapshots(g *graph.Graph, model diffusion.Model, r int, workers int, seed uint64) *Snapshots {
	if r < 1 {
		r = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r {
		workers = r
	}
	s := &Snapshots{n: g.N(), worlds: make([]world, r)}
	base := rng.New(seed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, rnd *rng.Rand) {
			defer wg.Done()
			for i := w; i < r; i += workers {
				s.worlds[i] = sampleWorld(g, model, rnd)
			}
		}(w, base.Split(uint64(w)))
	}
	wg.Wait()
	return s
}

// sampleWorld draws the live out-edges of every node: under IC each edge
// independently with its probability; under LT (and any triggering
// model) the triggering-set construction of §4.2 — the live in-edges of
// v are exactly its sampled triggering set, stored here in forward
// orientation.
func sampleWorld(g *graph.Graph, model diffusion.Model, r *rng.Rand) world {
	n := g.N()
	// First collect live edges per target (triggering sets are defined
	// over in-neighbors), then transpose into forward CSR.
	var liveFrom, liveTo []uint32
	var trig []uint32
	for v := uint32(0); int(v) < n; v++ {
		switch model.Kind() {
		case diffusion.IC:
			src, w := g.InNeighbors(v)
			for i := range src {
				if r.Bernoulli32(w[i]) {
					liveFrom = append(liveFrom, src[i])
					liveTo = append(liveTo, v)
				}
			}
		case diffusion.LT:
			trig = diffusion.LTTrigger{}.AppendTrigger(trig[:0], g, v, r)
			for _, u := range trig {
				liveFrom = append(liveFrom, u)
				liveTo = append(liveTo, v)
			}
		default:
			trig = model.Trigger().AppendTrigger(trig[:0], g, v, r)
			for _, u := range trig {
				liveFrom = append(liveFrom, u)
				liveTo = append(liveTo, v)
			}
		}
	}
	w := world{off: make([]int64, n+1), to: make([]uint32, len(liveTo))}
	for _, u := range liveFrom {
		w.off[u+1]++
	}
	for i := 0; i < n; i++ {
		w.off[i+1] += w.off[i]
	}
	fill := make([]int64, n)
	copy(fill, w.off[:n])
	for i := range liveFrom {
		u := liveFrom[i]
		w.to[fill[u]] = liveTo[i]
		fill[u]++
	}
	return w
}

// Count returns the number of worlds.
func (s *Snapshots) Count() int { return len(s.worlds) }

// WorldOut returns the live out-neighbors of u in world i. The returned
// slice aliases internal storage and must not be modified. It exists so
// other evaluation strategies (notably the timestamped colored BFS of
// the competitive extension in internal/compete) can reuse the sampled
// worlds instead of re-deriving their own.
func (s *Snapshots) WorldOut(i int, u uint32) []uint32 {
	w := &s.worlds[i]
	return w.to[w.off[u]:w.off[u+1]]
}

// MemoryBytes approximates the retained bytes.
func (s *Snapshots) MemoryBytes() int64 {
	var total int64
	for _, w := range s.worlds {
		total += int64(len(w.off))*8 + int64(len(w.to))*4
	}
	return total
}

// Evaluator evaluates seed sets against the snapshots. It owns scratch
// buffers — one per goroutine.
type Evaluator struct {
	s     *Snapshots
	mark  []uint32
	epoch uint32
	queue []uint32
}

// NewEvaluator returns an evaluator over s.
func (s *Snapshots) NewEvaluator() *Evaluator {
	return &Evaluator{s: s, mark: make([]uint32, s.n)}
}

// Spread returns the mean reachable-set size of seeds across all worlds
// — an estimate of E[I(seeds)] whose randomness is fixed at snapshot
// construction.
func (e *Evaluator) Spread(seeds []uint32) float64 {
	if len(seeds) == 0 || e.s.n == 0 {
		return 0
	}
	var total int64
	for i := range e.s.worlds {
		total += int64(e.reach(&e.s.worlds[i], seeds))
	}
	return float64(total) / float64(len(e.s.worlds))
}

// reach runs one BFS over a world.
func (e *Evaluator) reach(w *world, seeds []uint32) int {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.mark {
			e.mark[i] = 0
		}
		e.epoch = 1
	}
	mark, epoch := e.mark, e.epoch
	q := e.queue[:0]
	for _, v := range seeds {
		if mark[v] != epoch {
			mark[v] = epoch
			q = append(q, v)
		}
	}
	count := len(q)
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range w.to[w.off[u]:w.off[u+1]] {
			if mark[v] != epoch {
				mark[v] = epoch
				q = append(q, v)
				count++
			}
		}
	}
	e.queue = q
	return count
}
