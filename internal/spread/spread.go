// Package spread estimates the expected spread E[I(S)] of a seed set by
// parallel Monte-Carlo simulation of forward cascades. It is the
// measurement tool behind the paper's expected-spread figures (Figures 5,
// 9, 11; §7.2 uses the average of 10^5 measurements) and the oracle inside
// the Greedy/CELF/CELF++ baselines.
package spread

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Options configures an estimation run.
type Options struct {
	// Samples is the number of Monte-Carlo cascades (default 10000, the
	// value Kempe et al. suggest; the paper's evaluation uses 10^5).
	Samples int
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Seed drives the simulation; a fixed Seed with Workers=1 is fully
	// deterministic.
	Seed uint64
}

func (o *Options) normalize() {
	if o.Samples <= 0 {
		o.Samples = 10000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Samples {
		o.Workers = o.Samples
	}
}

// Estimate returns the Monte-Carlo mean of I(S).
func Estimate(g *graph.Graph, model diffusion.Model, seeds []uint32, opts Options) float64 {
	mean, _ := EstimateWithStderr(g, model, seeds, opts)
	return mean
}

// EstimateWithStderr returns the Monte-Carlo mean of I(S) and its standard
// error. An empty seed set has spread 0 by definition.
func EstimateWithStderr(g *graph.Graph, model diffusion.Model, seeds []uint32, opts Options) (mean, stderr float64) {
	if len(seeds) == 0 || g.N() == 0 {
		return 0, 0
	}
	opts.normalize()
	type partial struct {
		sum   float64
		sumSq float64
	}
	partials := make([]partial, opts.Workers)
	base := rng.New(opts.Seed)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		count := opts.Samples / opts.Workers
		if w < opts.Samples%opts.Workers {
			count++
		}
		r := base.Split(uint64(w))
		wg.Add(1)
		go func(w, count int, r *rng.Rand) {
			defer wg.Done()
			sim := diffusion.NewSimulator(g, model)
			var sum, sumSq float64
			for i := 0; i < count; i++ {
				x := float64(sim.Run(r, seeds))
				sum += x
				sumSq += x * x
			}
			partials[w] = partial{sum, sumSq}
		}(w, count, r)
	}
	wg.Wait()
	var sum, sumSq float64
	for _, p := range partials {
		sum += p.sum
		sumSq += p.sumSq
	}
	nf := float64(opts.Samples)
	mean = sum / nf
	variance := sumSq/nf - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr = math.Sqrt(variance / nf)
	return mean, stderr
}
