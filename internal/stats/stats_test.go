package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogChooseExact(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10}, {10, 3, 120},
		{20, 10, 184756},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want) > 1e-6*c.want {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, -1), -1) || !math.IsInf(LogChoose(5, 6), -1) {
		t.Fatal("out-of-range LogChoose should be -Inf")
	}
}

func TestLogChooseSymmetry(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n%60) + 1
		kk := int(k) % (nn + 1)
		a := LogChoose(nn, kk)
		b := LogChoose(nn, nn-kk)
		return math.Abs(a-b) < 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogChooseLargeNoOverflow(t *testing.T) {
	v := LogChoose(41_600_000, 50)
	if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
		t.Fatalf("LogChoose huge = %v", v)
	}
	// ln C(n,k) <= k ln n.
	if v > 50*math.Log(41_600_000) {
		t.Fatalf("LogChoose %v exceeds k ln n", v)
	}
}

func TestLambdaMatchesHandComputation(t *testing.T) {
	// λ = (8+2ε) n (ℓ ln n + ln C(n,k) + ln 2)/ε².
	n, k, eps, ell := 100, 2, 0.5, 1.0
	want := (8 + 2*eps) * 100 * (math.Log(100) + LogChoose(100, 2) + math.Ln2) / (eps * eps)
	if got := Lambda(n, k, eps, ell); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("Lambda = %v, want %v", got, want)
	}
}

func TestLambdaMonotone(t *testing.T) {
	// λ decreases in ε and increases in k, n, and ℓ.
	if !(Lambda(1000, 5, 0.1, 1) > Lambda(1000, 5, 0.2, 1)) {
		t.Fatal("Lambda not decreasing in eps")
	}
	if !(Lambda(1000, 10, 0.1, 1) > Lambda(1000, 5, 0.1, 1)) {
		t.Fatal("Lambda not increasing in k")
	}
	if !(Lambda(2000, 5, 0.1, 1) > Lambda(1000, 5, 0.1, 1)) {
		t.Fatal("Lambda not increasing in n")
	}
	if !(Lambda(1000, 5, 0.1, 2) > Lambda(1000, 5, 0.1, 1)) {
		t.Fatal("Lambda not increasing in ell")
	}
}

func TestLambdaPrime(t *testing.T) {
	n, ell, ep := 1000, 1.0, 0.25
	want := (2 + ep) * ell * 1000 * math.Log(1000) / (ep * ep)
	if got := LambdaPrime(n, ell, ep); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("LambdaPrime = %v, want %v", got, want)
	}
}

func TestEpsPrimeFormula(t *testing.T) {
	// ε′ = 5 ∛(ℓ ε²/(k+ℓ)).
	got := EpsPrime(50, 0.1, 1)
	want := 5 * math.Cbrt(0.01/51)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EpsPrime = %v, want %v", got, want)
	}
}

func TestSampleScheduleDoubles(t *testing.T) {
	n, ell := 10000, 1.0
	c1 := SampleScheduleCi(n, ell, 1)
	c2 := SampleScheduleCi(n, ell, 2)
	if c2 < 2*c1-2 || c2 > 2*c1+2 {
		t.Fatalf("c2=%d not about twice c1=%d", c2, c1)
	}
	want := (6*math.Log(10000) + 6*math.Log(math.Log2(10000))) * 2
	if math.Abs(float64(c1)-want) > 1.5 {
		t.Fatalf("c1=%d, want about %v", c1, want)
	}
}

func TestKptIterations(t *testing.T) {
	if got := KptIterations(1024); got != 9 {
		t.Fatalf("KptIterations(1024)=%d, want 9", got)
	}
	if got := KptIterations(2); got != 1 {
		t.Fatalf("KptIterations(2)=%d, want 1", got)
	}
	if got := KptIterations(0); got != 1 {
		t.Fatalf("KptIterations(0)=%d, want 1", got)
	}
}

func TestChernoffBoundsBehave(t *testing.T) {
	// Bounds are probabilities in (0, 1] and shrink as cμ grows.
	for _, f := range []func(float64, float64) float64{ChernoffUpperTail, ChernoffLowerTail} {
		small, large := f(0.5, 10), f(0.5, 1000)
		if small <= 0 || small > 1 || large <= 0 || large > 1 {
			t.Fatalf("bound outside (0,1]: %v %v", small, large)
		}
		if large >= small {
			t.Fatalf("bound did not shrink with more samples: %v -> %v", small, large)
		}
		if f(0, 100) != 1 || f(-1, 100) != 1 {
			t.Fatal("non-positive delta should give trivial bound 1")
		}
	}
}

func TestChernoffEmpirically(t *testing.T) {
	// Upper bound must dominate the true tail of a Binomial(c, μ).
	// With c=1000, μ=0.5, δ=0.2: Pr[X ≥ 600] is about 1.4e-10; bound is
	// exp(-0.04/2.2*500) ≈ e^-9.09 ≈ 1.1e-4. Just verify ordering with a
	// quick simulation at a milder δ.
	bound := ChernoffUpperTail(0.1, 1000*0.5)
	if bound < 1e-3 {
		t.Fatalf("bound unexpectedly tiny: %v", bound)
	}
}

func TestGreedyMonteCarloR(t *testing.T) {
	r := GreedyMonteCarloR(15000, 50, 0.1, 1, 1000)
	if r < 10000 {
		t.Fatalf("Lemma 10 r=%v; the paper notes r > 10000 in its settings", r)
	}
	// Larger OPT means fewer samples needed.
	if !(GreedyMonteCarloR(15000, 50, 0.1, 1, 2000) < r) {
		t.Fatal("r not decreasing in OPT")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, wantStd)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
	one := Summarize([]float64{5})
	if one.Std != 0 || one.Mean != 5 {
		t.Fatalf("singleton summary %+v", one)
	}
}
