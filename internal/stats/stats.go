// Package stats provides the numeric helpers behind the paper's parameter
// formulas: log-binomial coefficients, the λ and λ′ thresholds (Equations
// 2/4 and Algorithm 3 line 7), the c_i sample schedule of Algorithm 2, the
// Chernoff tail bounds of Lemma 1, and small summary-statistics utilities
// used by the experiment harness.
package stats

import (
	"math"
)

// LogChoose returns ln C(n, k) computed via log-gamma, valid for large n
// where the binomial itself overflows. k outside [0, n] yields -Inf
// (an impossible event).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1)
}

// Lambda computes Equation 4 of the paper:
//
//	λ = (8 + 2ε) n (ℓ ln n + ln C(n,k) + ln 2) / ε²
//
// θ = λ/OPT is the RR-set count that makes Algorithm 1's estimates
// ε/2-accurate for every size-k seed set simultaneously (Lemma 3).
func Lambda(n, k int, eps, ell float64) float64 {
	if n < 2 {
		n = 2
	}
	nf := float64(n)
	return (8 + 2*eps) * nf * (ell*math.Log(nf) + LogChoose(n, k) + math.Ln2) / (eps * eps)
}

// LambdaPrime computes Algorithm 3 line 7:
//
//	λ′ = (2 + ε′) ℓ n ln n / (ε′)²
//
// θ′ = λ′/KPT* RR sets make the Algorithm 3 estimate of E[I(S'_k)]
// (1+ε′)-accurate with probability 1 − n^−ℓ.
func LambdaPrime(n int, ell, epsPrime float64) float64 {
	if n < 2 {
		n = 2
	}
	nf := float64(n)
	return (2 + epsPrime) * ell * nf * math.Log(nf) / (epsPrime * epsPrime)
}

// EpsPrime returns the paper's §4.1 heuristic choice for Algorithm 3's
// accuracy parameter: ε′ = 5 ∛(ℓ ε² / (k + ℓ)), the approximate minimizer
// of the total RR sets generated across Algorithms 1 and 3.
func EpsPrime(k int, eps, ell float64) float64 {
	return 5 * math.Cbrt(ell*eps*eps/(float64(k)+ell))
}

// SampleScheduleCi returns Algorithm 2's per-iteration sample count
// (Equation 9): c_i = (6ℓ ln n + 6 ln log2(n)) · 2^i.
func SampleScheduleCi(n int, ell float64, i int) int64 {
	if n < 2 {
		n = 2
	}
	nf := float64(n)
	base := 6*ell*math.Log(nf) + 6*math.Log(math.Log2(nf))
	if base < 1 {
		base = 1
	}
	c := base * math.Pow(2, float64(i))
	if c > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(math.Ceil(c))
}

// KptIterations returns Algorithm 2's iteration budget, log2(n) − 1,
// and at least 1 so degenerate graphs still take one look.
func KptIterations(n int) int {
	if n < 2 {
		return 1
	}
	it := int(math.Log2(float64(n))) - 1
	if it < 1 {
		it = 1
	}
	return it
}

// ChernoffUpperTail bounds Pr[X − cμ ≥ δ·cμ] ≤ exp(−δ²/(2+δ)·cμ) for X a
// sum of c i.i.d. [0,1] variables with mean μ (Lemma 1, first bound).
func ChernoffUpperTail(delta, cmu float64) float64 {
	if delta <= 0 {
		return 1
	}
	return math.Exp(-delta * delta / (2 + delta) * cmu)
}

// ChernoffLowerTail bounds Pr[X − cμ ≤ −δ·cμ] ≤ exp(−δ²/2·cμ)
// (Lemma 1, second bound).
func ChernoffLowerTail(delta, cmu float64) float64 {
	if delta <= 0 {
		return 1
	}
	return math.Exp(-delta * delta / 2 * cmu)
}

// GreedyMonteCarloR returns Lemma 10's lower bound on the Monte-Carlo
// sample count r for Kempe et al.'s Greedy to be (1−1/e−ε)-approximate
// with probability 1 − n^−ℓ:
//
//	r ≥ (8k² + 2kε) n ((ℓ+1) ln n + ln k) / (ε² OPT)
//
// opt is any lower bound on OPT (using a smaller opt is conservative).
func GreedyMonteCarloR(n, k int, eps, ell, opt float64) float64 {
	if n < 2 {
		n = 2
	}
	if opt < 1 {
		opt = 1
	}
	kf := float64(k)
	nf := float64(n)
	return (8*kf*kf + 2*kf*eps) * nf * ((ell+1)*math.Log(nf) + math.Log(kf)) / (eps * eps * opt)
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Stderr float64
}

// Summarize computes summary statistics; an empty input returns zeros.
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
		s.Stderr = s.Std / math.Sqrt(float64(len(xs)))
	}
	return s
}
