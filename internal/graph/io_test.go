package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% another comment
0 1 0.5
1 2
2 0 1.0

`
	g, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	to, w := g.OutNeighbors(0)
	if len(to) != 1 || to[0] != 1 || w[0] != 0.5 {
		t.Fatalf("edge 0: %v %v", to, w)
	}
	to, w = g.OutNeighbors(1)
	if len(to) != 1 || to[0] != 2 || w[0] != 0 {
		t.Fatalf("edge 1 (default weight): %v %v", to, w)
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 0.3\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2 for undirected", g.M())
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 1 {
		t.Fatal("undirected edge not mirrored")
	}
}

func TestReadEdgeListN(t *testing.T) {
	g, err := ReadEdgeListN(strings.NewReader("0 1\n"), false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("n=%d, want 10", g.N())
	}
	_, err = ReadEdgeListN(strings.NewReader("0 11\n"), false, 10)
	if !errors.Is(err, ErrNodeRange) {
		t.Fatalf("got %v, want ErrNodeRange", err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",        // too few fields
		"0 1 2 3\n",  // too many fields
		"x 1\n",      // bad source
		"0 y\n",      // bad target
		"0 1 huh\n",  // bad weight
		"0 1 2.5\n",  // out-of-range weight
		"-1 1\n",     // negative id
		"0 1 -0.5\n", // negative weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), false); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(4, []Edge{
		{From: 1, To: 0, Weight: 0.01},
		{From: 1, To: 3, Weight: 0.01},
		{From: 3, To: 0, Weight: 1.0},
		{From: 0, To: 2, Weight: 0.25},
	})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdgeMultiset(g, g2) {
		t.Fatal("edge list round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := MustFromEdges(4, []Edge{
		{From: 1, To: 0, Weight: 0.01},
		{From: 1, To: 3, Weight: 0.01},
		{From: 3, To: 0, Weight: 1.0},
		{From: 0, To: 2, Weight: 0.25},
		{From: 2, To: 2, Weight: 0.125}, // self-loop survives
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdgeMultiset(g, g2) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOPE...."))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	if !errors.Is(err, ErrBinFormat) {
		t.Fatalf("bad magic: got %v, want ErrBinFormat", err)
	}
}

// TestReadBinaryTruncated clips a valid WriteBinary stream at every byte
// boundary: each prefix must fail with ErrTruncated (except a prefix that
// breaks the magic itself, which is ErrTruncated too since the magic read
// comes up short) — never panic, never succeed.
func TestReadBinaryTruncated(t *testing.T) {
	g := MustFromEdges(3, []Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.25},
		{From: 2, To: 0, Weight: 1},
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadBinary(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	if _, err := ReadBinary(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream must still parse: %v", err)
	}
}

// TestReadBinaryCorrupt flips header fields and record bytes of a valid
// stream: every corruption fails with a typed error, never a panic.
func TestReadBinaryCorrupt(t *testing.T) {
	g := MustFromEdges(3, []Edge{{From: 0, To: 1, Weight: 0.5}, {From: 1, To: 2, Weight: 0.25}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	clone := func() []byte { return append([]byte(nil), pristine...) }

	badVersion := clone()
	binary.LittleEndian.PutUint32(badVersion[4:], 99)
	if _, err := ReadBinary(bytes.NewReader(badVersion)); !errors.Is(err, ErrBinFormat) {
		t.Fatalf("bad version: got %v, want ErrBinFormat", err)
	}

	hugeN := clone()
	binary.LittleEndian.PutUint64(hugeN[8:], 1<<33)
	if _, err := ReadBinary(bytes.NewReader(hugeN)); !errors.Is(err, ErrBinFormat) {
		t.Fatalf("huge node count: got %v, want ErrBinFormat", err)
	}

	// Records start after magic (4) + version (4) + n (8) + m (8).
	const rec0 = 24

	// First record's target id pushed outside [0, n).
	badNode := clone()
	binary.LittleEndian.PutUint32(badNode[rec0+4:], 1<<30)
	if _, err := ReadBinary(bytes.NewReader(badNode)); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("out-of-range endpoint: got %v, want ErrNodeRange", err)
	}

	// First record's weight bits set to NaN.
	badWeight := clone()
	binary.LittleEndian.PutUint32(badWeight[rec0+8:], 0x7fc00000)
	if _, err := ReadBinary(bytes.NewReader(badWeight)); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("NaN weight: got %v, want ErrBadWeight", err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 0 || g2.M() != 0 {
		t.Fatalf("empty graph round trip: n=%d m=%d", g2.N(), g2.M())
	}
}

// TestEdgeListHeaderPreservesIsolatedNodes: WriteEdgeList declares the
// node count in its header, and ReadEdgeList honors it, so a graph with
// isolated trailing nodes round-trips exactly (the quick serialization
// test at the repo root flushed this out on ForestFire graphs whose
// last node had no edges).
func TestEdgeListHeaderPreservesIsolatedNodes(t *testing.T) {
	g := MustFromEdges(5, []Edge{{From: 0, To: 1, Weight: 0.5}}) // nodes 2..4 isolated
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 5 || g2.M() != 1 {
		t.Fatalf("round trip: n=%d m=%d, want 5, 1", g2.N(), g2.M())
	}
}

// TestEdgeListHeaderVariants: foreign comments are ignored, a header
// smaller than the max id does not shrink the graph, and explicit-n
// reads ignore the header entirely.
func TestEdgeListHeaderVariants(t *testing.T) {
	cases := []struct {
		in   string
		n, m int
	}{
		{"# nodes=7 edges=1\n0 1\n", 7, 1},
		{"# nodes=2 edges=1\n0 5\n", 6, 1},     // max id wins over a lying header
		{"# random comment\n0 1\n", 2, 1},      // non-header comment ignored
		{"# nodes=bogus edges=1\n0 1\n", 2, 1}, // malformed header ignored
	}
	for _, tc := range cases {
		g, err := ReadEdgeList(strings.NewReader(tc.in), false)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Fatalf("%q: n=%d m=%d, want %d, %d", tc.in, g.N(), g.M(), tc.n, tc.m)
		}
	}
	g, err := ReadEdgeListN(strings.NewReader("# nodes=9 edges=1\n0 1\n"), false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("explicit n must override the header: n=%d", g.N())
	}
}

// TestReadBinaryLyingHeader: a header claiming far more edges than the
// stream carries must fail cleanly (and quickly) instead of
// preallocating by the untrusted count.
func TestReadBinaryLyingHeader(t *testing.T) {
	g := MustFromEdges(3, []Edge{{From: 0, To: 1, Weight: 0.5}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[16:], 1<<60)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("lying edge count must not parse")
	}
}
