package graph

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// paperFigure1 builds the four-node example network from Figure 1 of the
// paper: v2->v1 (0.01), v2->v4 (0.01), v4->v1 (1.0), v1->v3 (0.01),
// v3->v4 (0.01). Node ids are shifted down by one (v1 = 0).
func paperFigure1() *Graph {
	return MustFromEdges(4, []Edge{
		{From: 1, To: 0, Weight: 0.01},
		{From: 1, To: 3, Weight: 0.01},
		{From: 3, To: 0, Weight: 1.0},
		{From: 0, To: 2, Weight: 0.01},
		{From: 2, To: 3, Weight: 0.01},
	})
}

func TestFromEdgesBasic(t *testing.T) {
	g := paperFigure1()
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("n=%d m=%d, want 4, 5", g.N(), g.M())
	}
	if d := g.OutDegree(1); d != 2 {
		t.Errorf("outdeg(v2)=%d, want 2", d)
	}
	if d := g.InDegree(0); d != 2 {
		t.Errorf("indeg(v1)=%d, want 2", d)
	}
	if d := g.InDegree(1); d != 0 {
		t.Errorf("indeg(v2)=%d, want 0", d)
	}
	to, w := g.OutNeighbors(1)
	if len(to) != 2 {
		t.Fatalf("v2 out-neighbors: %v", to)
	}
	for i := range to {
		if w[i] != 0.01 {
			t.Errorf("v2 edge weight %v, want 0.01", w[i])
		}
	}
	src, w2 := g.InNeighbors(0)
	got := map[uint32]float32{}
	for i := range src {
		got[src[i]] = w2[i]
	}
	if got[1] != 0.01 || got[3] != 1.0 {
		t.Errorf("v1 in-edges: %v", got)
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph n=%d m=%d", g.N(), g.M())
	}
	if g.AverageDegree() != 0 {
		t.Fatal("empty graph average degree nonzero")
	}
	if g.MaxInDegree() != 0 || g.MaxOutDegree() != 0 {
		t.Fatal("empty graph max degrees nonzero")
	}
}

func TestFromEdgesNoEdges(t *testing.T) {
	g, err := FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 5; v++ {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Fatalf("node %d has edges in an edgeless graph", v)
		}
	}
}

func TestFromEdgesRangeError(t *testing.T) {
	_, err := FromEdges(3, []Edge{{From: 0, To: 3}})
	if !errors.Is(err, ErrNodeRange) {
		t.Fatalf("got %v, want ErrNodeRange", err)
	}
	_, err = FromEdges(3, []Edge{{From: 7, To: 0}})
	if !errors.Is(err, ErrNodeRange) {
		t.Fatalf("got %v, want ErrNodeRange", err)
	}
}

func TestFromEdgesWeightError(t *testing.T) {
	_, err := FromEdges(2, []Edge{{From: 0, To: 1, Weight: 1.5}})
	if !errors.Is(err, ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
	_, err = FromEdges(2, []Edge{{From: 0, To: 1, Weight: -0.1}})
	if !errors.Is(err, ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
	_, err = FromEdges(2, []Edge{{From: 0, To: 1, Weight: float32(math.NaN())}})
	if !errors.Is(err, ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight for NaN", err)
	}
}

func TestSelfLoopsAndParallelEdges(t *testing.T) {
	g, err := FromEdges(2, []Edge{
		{From: 0, To: 0, Weight: 0.5},
		{From: 0, To: 1, Weight: 0.1},
		{From: 0, To: 1, Weight: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 3 {
		t.Fatalf("outdeg(0)=%d, want 3 (self-loop + two parallel)", g.OutDegree(0))
	}
	if g.InDegree(1) != 2 {
		t.Fatalf("indeg(1)=%d, want 2", g.InDegree(1))
	}
}

func TestTranspose(t *testing.T) {
	g := paperFigure1()
	tr := g.Transpose()
	if tr.N() != g.N() || tr.M() != g.M() {
		t.Fatalf("transpose changed size: %d/%d", tr.N(), tr.M())
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		if g.InDegree(v) != tr.OutDegree(v) || g.OutDegree(v) != tr.InDegree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	// Edge (1->0, 0.01) must appear as (0->1, 0.01) in the transpose.
	to, w := tr.OutNeighbors(0)
	found := false
	for i := range to {
		if to[i] == 1 && w[i] == 0.01 {
			found = true
		}
	}
	if !found {
		t.Fatal("transposed edge 0->1 not found")
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := paperFigure1()
	tt := g.Transpose().Transpose()
	if !sameEdgeMultiset(g, tt) {
		t.Fatal("transpose twice is not the identity on the edge multiset")
	}
}

func sameEdgeMultiset(a, b *Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	norm := func(es []Edge) []Edge {
		out := append([]Edge(nil), es...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].From != out[j].From {
				return out[i].From < out[j].From
			}
			if out[i].To != out[j].To {
				return out[i].To < out[j].To
			}
			return out[i].Weight < out[j].Weight
		})
		return out
	}
	return reflect.DeepEqual(norm(ea), norm(eb))
}

func TestSetInWeightsMirrors(t *testing.T) {
	g := paperFigure1()
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		for i := range w {
			w[i] = float32(v+1) / 10
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every out-edge weight must equal (target+1)/10.
	for u := uint32(0); int(u) < g.N(); u++ {
		to, w := g.OutNeighbors(u)
		for i := range to {
			want := float32(to[i]+1) / 10
			if w[i] != want {
				t.Fatalf("edge %d->%d forward weight %v, want %v", u, to[i], w[i], want)
			}
		}
	}
}

func TestSetInWeightsMirrorsWithParallelEdges(t *testing.T) {
	g := MustFromEdges(3, []Edge{
		{From: 0, To: 2}, {From: 1, To: 2}, {From: 0, To: 2}, {From: 2, To: 0},
	})
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		for i := range w {
			w[i] = 0.25 * float32(i+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Forward weights into node 2 must be {0.25, 0.5, 0.75} as a multiset.
	var fwd []float32
	for u := uint32(0); u < 3; u++ {
		to, w := g.OutNeighbors(u)
		for i := range to {
			if to[i] == 2 {
				fwd = append(fwd, w[i])
			}
		}
	}
	sort.Slice(fwd, func(i, j int) bool { return fwd[i] < fwd[j] })
	want := []float32{0.25, 0.5, 0.75}
	if !reflect.DeepEqual(fwd, want) {
		t.Fatalf("forward weights into 2: %v, want %v", fwd, want)
	}
}

func TestSetInWeightsRejectsBadWeight(t *testing.T) {
	g := paperFigure1()
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		for i := range w {
			w[i] = 2
		}
	})
	if !errors.Is(err, ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
}

func TestAssignWeightedCascade(t *testing.T) {
	g := paperFigure1()
	AssignWeightedCascade(g)
	for v := uint32(0); int(v) < g.N(); v++ {
		src, w := g.InNeighbors(v)
		for i := range src {
			want := float32(1.0) / float32(len(src))
			if w[i] != want {
				t.Fatalf("node %d in-weight %v, want %v", v, w[i], want)
			}
		}
	}
}

func TestAssignUniformIC(t *testing.T) {
	g := paperFigure1()
	if err := AssignUniformIC(g, 0.42); err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); int(u) < g.N(); u++ {
		_, w := g.OutNeighbors(u)
		for _, x := range w {
			if x != 0.42 {
				t.Fatalf("weight %v, want 0.42", x)
			}
		}
	}
	if err := AssignUniformIC(g, 1.5); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
}

func TestAssignTrivalency(t *testing.T) {
	g := paperFigure1()
	AssignTrivalency(g, rng.New(1))
	valid := map[float32]bool{0.1: true, 0.01: true, 0.001: true}
	for u := uint32(0); int(u) < g.N(); u++ {
		_, w := g.OutNeighbors(u)
		for _, x := range w {
			if !valid[x] {
				t.Fatalf("trivalency produced %v", x)
			}
		}
	}
}

func TestAssignRandomNormalizedLT(t *testing.T) {
	g := paperFigure1()
	AssignRandomNormalizedLT(g, rng.New(7))
	sums := InWeightSums(g)
	for v, s := range sums {
		if g.InDegree(uint32(v)) == 0 {
			if s != 0 {
				t.Fatalf("node %d has no in-edges but weight sum %v", v, s)
			}
			continue
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("node %d LT weights sum to %v, want 1", v, s)
		}
	}
}

func TestReachable(t *testing.T) {
	g := paperFigure1()
	r := Reachable(g, []uint32{1}) // v2 reaches everything
	for v := 0; v < 4; v++ {
		if !r[v] {
			t.Fatalf("v2 should reach node %d", v)
		}
	}
	r = Reachable(g, []uint32{3}) // v4 -> v1 -> v3 -> v4
	for v := 0; v < 4; v++ {
		want := v != 1 // everything but v2
		if r[v] != want {
			t.Fatalf("reach from v4: node %d got %v want %v", v, r[v], want)
		}
	}
}

func TestReachableOutOfRangeSeedIgnored(t *testing.T) {
	g := paperFigure1()
	r := Reachable(g, []uint32{99})
	for v, ok := range r {
		if ok {
			t.Fatalf("node %d reachable from out-of-range seed", v)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := paperFigure1()
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 5 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MaxInDegree != 2 || s.MaxOutDegree != 2 {
		t.Fatalf("max degrees: %+v", s)
	}
	if s.Isolated != 0 {
		t.Fatalf("isolated: %+v", s)
	}
	if s.AverageDegree != 1.25 {
		t.Fatalf("avg degree %v, want 1.25", s.AverageDegree)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestStatsIsolatedNodes(t *testing.T) {
	g := MustFromEdges(5, []Edge{{From: 0, To: 1}})
	s := ComputeStats(g)
	if s.Isolated != 3 {
		t.Fatalf("isolated=%d, want 3", s.Isolated)
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	g := paperFigure1()
	if g.MemoryFootprint() <= 0 {
		t.Fatal("memory footprint not positive")
	}
}

// Property: for random graphs, transpose preserves the degree sequence
// swapped between in and out.
func TestTransposeDegreesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		m := r.Intn(100)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{From: uint32(r.Intn(n)), To: uint32(r.Intn(n))}
		}
		g := MustFromEdges(n, edges)
		tr := g.Transpose()
		for v := uint32(0); int(v) < n; v++ {
			if g.InDegree(v) != tr.OutDegree(v) || g.OutDegree(v) != tr.InDegree(v) {
				return false
			}
		}
		return sameEdgeMultisetTransposed(g, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sameEdgeMultisetTransposed(g, tr *Graph) bool {
	rev := make([]Edge, 0, tr.M())
	for _, e := range tr.Edges() {
		rev = append(rev, Edge{From: e.To, To: e.From, Weight: e.Weight})
	}
	revG := MustFromEdges(g.N(), rev)
	return sameEdgeMultiset(g, revG)
}

// Property: Edges() round-trips through FromEdges.
func TestEdgesRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		m := r.Intn(60)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				From:   uint32(r.Intn(n)),
				To:     uint32(r.Intn(n)),
				Weight: float32(r.Intn(100)) / 100,
			}
		}
		g := MustFromEdges(n, edges)
		g2 := MustFromEdges(n, g.Edges())
		return sameEdgeMultiset(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
