package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestAssignRandomNormalizedLTAllNodes is the regression test for a bug
// where float32 rounding produced a normalized weight one ulp above 1,
// SetInWeights rejected it, and — because the error was discarded — every
// node after the offender silently kept zero LT weights, collapsing all
// LT spread measurements. Every node with in-edges must end up with
// weights summing to 1 for many seeds, including seeds known to have
// triggered the rounding.
func TestAssignRandomNormalizedLTAllNodes(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		g := buildSkewedMirror(2000, 4133, seed)
		AssignRandomNormalizedLT(g, rng.New(seed))
		sums := InWeightSums(g)
		for v, s := range sums {
			if g.InDegree(uint32(v)) == 0 {
				continue
			}
			if math.Abs(s-1) > 1e-4 {
				t.Fatalf("seed %d: node %d in-weight sum %v, want 1", seed, v, s)
			}
		}
		// Every individual weight must be a valid probability.
		for v := uint32(0); int(v) < g.N(); v++ {
			_, w := g.InNeighbors(v)
			for _, x := range w {
				if !(x >= 0 && x <= 1) {
					t.Fatalf("seed %d: node %d weight %v outside [0,1]", seed, v, x)
				}
			}
		}
	}
}

// buildSkewedMirror reproduces the dataset-profile shape (heavy-tailed
// mirrored Chung-Lu) without importing gen (which would cycle).
func buildSkewedMirror(n, und int, seed uint64) *Graph {
	r := rng.New(seed)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i)+2, -0.625)
	}
	cum := make([]float64, n+1)
	for i, w := range weights {
		cum[i+1] = cum[i] + w
	}
	total := cum[n]
	sample := func() uint32 {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
	edges := make([]Edge, 0, 2*und)
	for i := 0; i < und; i++ {
		a, b := sample(), sample()
		edges = append(edges, Edge{From: a, To: b}, Edge{From: b, To: a})
	}
	return MustFromEdges(n, edges)
}

// TestWeightAssignersPanicOnlyWhenImpossible: the cascade and trivalency
// assigners must not panic on any normal graph, including ones with
// parallel edges and self-loops.
func TestWeightAssignersPanicOnlyWhenImpossible(t *testing.T) {
	g := MustFromEdges(3, []Edge{
		{From: 0, To: 1}, {From: 0, To: 1}, {From: 1, To: 1}, {From: 2, To: 0},
	})
	AssignWeightedCascade(g)
	AssignTrivalency(g, rng.New(1))
	AssignRandomNormalizedLT(g, rng.New(2))
}
