package graph

import (
	"repro/internal/rng"
)

// AssignWeightedCascade sets every edge's probability to 1/indeg(target),
// the standard "weighted cascade" parameterization of the IC model used
// throughout the paper's experiments (§7.1): p(e) = 1/i where i is the
// in-degree of the node e points to.
func AssignWeightedCascade(g *Graph) {
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		p := float32(1.0) / float32(len(w))
		for i := range w {
			w[i] = p
		}
	})
	if err != nil {
		panic(err) // unreachable: 1/len is always in (0, 1]
	}
}

// AssignUniformIC sets every edge's probability to p. Common values in the
// influence-maximization literature are 0.01 and 0.1.
func AssignUniformIC(g *Graph, p float32) error {
	return g.SetUniformWeights(p)
}

// AssignTrivalency draws each edge's probability uniformly from
// {0.1, 0.01, 0.001}, the "trivalency" IC parameterization of Chen et al.
func AssignTrivalency(g *Graph, r *rng.Rand) {
	levels := [3]float32{0.1, 0.01, 0.001}
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		for i := range w {
			w[i] = levels[r.Intn(3)]
		}
	})
	if err != nil {
		panic(err) // unreachable: all levels are in (0, 1]
	}
}

// AssignRandomNormalizedLT implements the paper's LT-model construction
// (§7.1): each of v's incoming edges receives a random weight in [0, 1],
// then the weights of v's in-edges are normalized to sum to 1. Nodes with
// no in-edges are unaffected.
//
// The scaled weights are clamped to [0, 1]: float32 rounding of x·(1/sum)
// can otherwise land one ulp above 1, which the graph would reject.
// (A regression here once zeroed the LT weights of most of the graph and
// silently collapsed every LT spread measurement — see
// TestAssignRandomNormalizedLTAllNodes.)
func AssignRandomNormalizedLT(g *Graph, r *rng.Rand) {
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		var sum float64
		for i := range w {
			x := r.Float64()
			w[i] = float32(x)
			sum += x
		}
		if sum == 0 {
			// All-zero draws are measure zero but handle them: fall
			// back to uniform weights.
			p := float32(1.0) / float32(len(w))
			for i := range w {
				w[i] = p
			}
			return
		}
		inv := float32(1.0 / sum)
		for i := range w {
			w[i] *= inv
			if w[i] > 1 {
				w[i] = 1
			}
		}
	})
	if err != nil {
		// Unreachable: every weight is clamped into [0, 1] above.
		panic(err)
	}
}

// AssignRandomNormalizedLTKeyed is AssignRandomNormalizedLT with the
// random draws keyed per edge instead of consumed from one sequential
// stream: the raw draw for in-edge u→v comes from stream
// Split(v).Split(u) of the seed, then v's draws are normalized to sum
// to 1. Node v's weights are therefore a pure function of (seed, v, the
// multiset of v's in-neighbors) — independent of edge order and of the
// rest of the graph. That is the property that lets an evolving graph
// (internal/evolve) re-derive weights only at heads whose in-list changed
// and still match a cold assignment over the final topology, no matter
// how either graph orders its edges. Parallel u→v edges share one draw
// and so split v's mass equally between them.
func AssignRandomNormalizedLTKeyed(g *Graph, seed uint64) {
	base := rng.New(seed)
	err := g.SetInWeights(func(v uint32, src []uint32, w []float32) {
		FillNormalizedLTKeyed(base, v, src, w)
	})
	if err != nil {
		// Unreachable: FillNormalizedLTKeyed clamps into [0, 1].
		panic(err)
	}
}

// FillNormalizedLTKeyed fills w with head v's keyed normalized LT
// weights: one uniform draw per in-edge from stream
// base.Split(v).Split(src[i]), normalized to sum to 1 and clamped against
// float32 round-up. base must be rng.New of the assignment seed; Split
// does not advance it, so the same base serves every head. Exported so
// incremental reweighting (internal/evolve) and the whole-graph
// assignment above share one definition.
func FillNormalizedLTKeyed(base *rng.Rand, v uint32, src []uint32, w []float32) {
	var rv, re rng.Rand
	base.SplitInto(uint64(v), &rv)
	var sum float64
	for i := range w {
		rv.SplitInto(uint64(src[i]), &re)
		x := re.Float64()
		w[i] = float32(x)
		sum += x
	}
	if sum == 0 {
		p := float32(1.0) / float32(len(w))
		for i := range w {
			w[i] = p
		}
		return
	}
	inv := float32(1.0 / sum)
	for i := range w {
		w[i] *= inv
		if w[i] > 1 {
			w[i] = 1
		}
	}
}

// AssignUniformLT sets each of v's in-edge weights to 1/indeg(v), the
// degree-normalized LT parameterization (identical numerically to the
// weighted cascade assignment, but conventionally named separately because
// the weights mean "influence share", not probability).
func AssignUniformLT(g *Graph) {
	AssignWeightedCascade(g)
}

// InWeightSums returns, for each node, the sum of its in-edge weights.
// Under a valid LT parameterization every entry is at most 1 (+ float
// tolerance).
func InWeightSums(g *Graph) []float64 {
	sums := make([]float64, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		_, w := g.InNeighbors(v)
		var s float64
		for _, x := range w {
			s += float64(x)
		}
		sums[v] = s
	}
	return sums
}
