package graph

import (
	"testing"

	"repro/internal/rng"
)

func randomEdges(n, m int, seed uint64) []Edge {
	r := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			From:   uint32(r.Intn(n)),
			To:     uint32(r.Intn(n)),
			Weight: r.Float32(),
		}
	}
	return edges
}

func BenchmarkBuildCSR(b *testing.B) {
	const n, m = 100_000, 1_000_000
	edges := randomEdges(n, m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(n, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m), "edges/op")
}

func BenchmarkTranspose(b *testing.B) {
	g := MustFromEdges(50_000, randomEdges(50_000, 500_000, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Transpose()
	}
}

func BenchmarkAssignWeightedCascade(b *testing.B) {
	g := MustFromEdges(50_000, randomEdges(50_000, 500_000, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AssignWeightedCascade(g)
	}
}

func BenchmarkComputeStats(b *testing.B) {
	g := MustFromEdges(50_000, randomEdges(50_000, 500_000, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeStats(g)
	}
}

func BenchmarkSCC(b *testing.B) {
	g := MustFromEdges(50_000, randomEdges(50_000, 250_000, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = StronglyConnectedComponents(g)
	}
}
