package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSCCSingleCycle(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}
	g := MustFromEdges(3, edges)
	scc := StronglyConnectedComponents(g)
	if scc.Count != 1 {
		t.Fatalf("count=%d, want 1", scc.Count)
	}
	if scc.LargestSize() != 3 {
		t.Fatalf("largest=%d", scc.LargestSize())
	}
}

func TestSCCPath(t *testing.T) {
	g := MustFromEdges(4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	scc := StronglyConnectedComponents(g)
	if scc.Count != 4 {
		t.Fatalf("count=%d, want 4 singleton components", scc.Count)
	}
	// Reverse-topological ids: edge u→v across components implies
	// Comp[u] > Comp[v].
	for _, e := range g.Edges() {
		if scc.Comp[e.From] <= scc.Comp[e.To] {
			t.Fatalf("component order violated on %d->%d: %d <= %d",
				e.From, e.To, scc.Comp[e.From], scc.Comp[e.To])
		}
	}
}

func TestSCCTwoCyclesBridged(t *testing.T) {
	// 0↔1 → 2↔3: two components, bridge respects order.
	g := MustFromEdges(4, []Edge{
		{From: 0, To: 1}, {From: 1, To: 0},
		{From: 1, To: 2},
		{From: 2, To: 3}, {From: 3, To: 2},
	})
	scc := StronglyConnectedComponents(g)
	if scc.Count != 2 {
		t.Fatalf("count=%d", scc.Count)
	}
	if scc.Comp[0] != scc.Comp[1] || scc.Comp[2] != scc.Comp[3] || scc.Comp[0] == scc.Comp[2] {
		t.Fatalf("components: %v", scc.Comp)
	}
	if scc.Comp[1] <= scc.Comp[2] {
		t.Fatal("cross edge must go from higher to lower component id")
	}
}

func TestSCCEmptyAndIsolated(t *testing.T) {
	scc := StronglyConnectedComponents(MustFromEdges(0, nil))
	if scc.Count != 0 || scc.LargestSize() != 0 {
		t.Fatalf("empty: %+v", scc)
	}
	scc = StronglyConnectedComponents(MustFromEdges(5, nil))
	if scc.Count != 5 {
		t.Fatalf("isolated: count=%d", scc.Count)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := MustFromEdges(2, []Edge{{From: 0, To: 0}, {From: 0, To: 1}})
	scc := StronglyConnectedComponents(g)
	if scc.Count != 2 {
		t.Fatalf("count=%d", scc.Count)
	}
}

func TestSCCDeepChainNoStackOverflow(t *testing.T) {
	// 200k-node chain would blow a recursive Tarjan's stack.
	const n = 200_000
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{From: uint32(v), To: uint32(v + 1)})
	}
	g := MustFromEdges(n, edges)
	scc := StronglyConnectedComponents(g)
	if scc.Count != n {
		t.Fatalf("count=%d", scc.Count)
	}
}

func TestCondenseIsDAG(t *testing.T) {
	r := rng.New(7)
	edges := make([]Edge, 600)
	for i := range edges {
		edges[i] = Edge{From: uint32(r.Intn(100)), To: uint32(r.Intn(100))}
	}
	g := MustFromEdges(100, edges)
	scc := StronglyConnectedComponents(g)
	dag := Condense(g, scc)
	if dag.N() != scc.Count {
		t.Fatalf("condensation nodes %d != components %d", dag.N(), scc.Count)
	}
	dagSCC := StronglyConnectedComponents(dag)
	if dagSCC.Count != dag.N() {
		t.Fatal("condensation is not a DAG")
	}
	for _, e := range dag.Edges() {
		if e.From == e.To {
			t.Fatal("condensation has a self-loop")
		}
	}
}

// Property: components partition the nodes, sizes sum to n, and mutual
// reachability holds exactly within components.
func TestSCCInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(18)
		m := r.Intn(50)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{From: uint32(r.Intn(n)), To: uint32(r.Intn(n))}
		}
		g := MustFromEdges(n, edges)
		scc := StronglyConnectedComponents(g)
		var total int32
		for _, s := range scc.Sizes {
			total += s
		}
		if int(total) != n {
			return false
		}
		// Mutual-reachability check against brute force.
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = Reachable(g, []uint32{uint32(v)})
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := scc.Comp[u] == scc.Comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
