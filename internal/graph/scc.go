package graph

// Strongly connected components via an iterative Tarjan's algorithm.
// Used for dataset diagnostics: the size of the largest SCC is a strong
// shape signal for social graphs (crawled social networks have a giant
// SCC; a generator that fails to produce one is mis-parameterized), and
// influence can only circulate within an SCC.

// SCCResult describes the strongly connected components of a graph.
type SCCResult struct {
	// Comp[v] is the component id of node v; ids are dense in
	// [0, Count) and reverse-topologically ordered (an edge u→v across
	// components always has Comp[u] > Comp[v]).
	Comp []int32
	// Count is the number of components.
	Count int
	// Sizes[c] is the number of nodes in component c.
	Sizes []int32
}

// LargestSize returns the size of the biggest component (0 for empty
// graphs).
func (r *SCCResult) LargestSize() int {
	best := int32(0)
	for _, s := range r.Sizes {
		if s > best {
			best = s
		}
	}
	return int(best)
}

// StronglyConnectedComponents computes the SCCs of g with an iterative
// Tarjan traversal (no recursion, safe for multi-million-node graphs).
func StronglyConnectedComponents(g *Graph) *SCCResult {
	n := g.N()
	res := &SCCResult{Comp: make([]int32, n)}
	if n == 0 {
		return res
	}
	const unvisited = -1
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		res.Comp[i] = unvisited
	}
	var (
		counter int32
		stack   []uint32 // Tarjan stack
	)
	// Explicit DFS frames: node plus the out-edge cursor.
	type frame struct {
		v    uint32
		edge int64
	}
	var frames []frame
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: uint32(start)})
		index[start] = counter
		lowlink[start] = counter
		counter++
		stack = append(stack, uint32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			to, _ := g.OutNeighbors(f.v)
			advanced := false
			for f.edge < int64(len(to)) {
				w := to[f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished: pop the frame, close the SCC if root,
			// and propagate lowlink to the parent.
			v := f.v
			frames = frames[:len(frames)-1]
			if lowlink[v] == index[v] {
				comp := int32(res.Count)
				res.Count++
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					res.Comp[w] = comp
					size++
					if w == v {
						break
					}
				}
				res.Sizes = append(res.Sizes, size)
			}
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	return res
}

// Condense returns the condensation of g: one node per SCC, with a
// directed edge c1→c2 (weight 0, deduplicated) whenever some original
// edge crosses from component c1 to c2. The condensation is a DAG.
func Condense(g *Graph, scc *SCCResult) *Graph {
	seen := make(map[uint64]bool)
	var edges []Edge
	for u := uint32(0); int(u) < g.N(); u++ {
		cu := scc.Comp[u]
		to, _ := g.OutNeighbors(u)
		for _, v := range to {
			cv := scc.Comp[v]
			if cu == cv {
				continue
			}
			key := uint64(cu)<<32 | uint64(uint32(cv))
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, Edge{From: uint32(cu), To: uint32(cv)})
		}
	}
	return MustFromEdges(scc.Count, edges)
}
