//go:build linux || darwin

package graph

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported reports whether MmapBacked actually remaps on this
// platform (true here; false in the fallback build).
const mmapSupported = true

// mmapBacked serializes g's seven CSR arrays into an anonymous-by-
// deletion backing file under dir and rebuilds the graph over a
// MAP_PRIVATE memory mapping of it: the kernel pages the topology in
// on demand and can drop clean pages under memory pressure, so the
// graph no longer pins its full CSR in RAM. The mapping is writable
// copy-on-write — weight mutation (evolve weight policies write
// in place) dirties private pages without touching the file — and the
// file is unlinked immediately after mapping, so a crash leaks nothing
// (PurgeSpillDir additionally sweeps csrmmap-* files whose process
// died between create and unlink).
//
// Layout: the three int64 arrays first, then the uint32/float32
// arrays, so every array is naturally aligned from the page-aligned
// base.
func mmapBacked(g *Graph, dir string) (*Graph, error) {
	i64Bytes := func(s []int64) []byte {
		if len(s) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	u32Bytes := func(s []uint32) []byte {
		if len(s) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	f32Bytes := func(s []float32) []byte {
		if len(s) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	sections := [][]byte{
		i64Bytes(g.outOff), i64Bytes(g.inOff), i64Bytes(g.inToOut),
		u32Bytes(g.outTo), f32Bytes(g.outW),
		u32Bytes(g.inSrc), f32Bytes(g.inW),
	}
	var total int
	for _, s := range sections {
		total += len(s)
	}
	if total == 0 {
		return g, nil
	}

	f, err := os.CreateTemp(dir, "csrmmap-*.bin")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	fail := func(err error) (*Graph, error) {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	for _, s := range sections {
		if _, err := f.Write(s); err != nil {
			return fail(err)
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return fail(fmt.Errorf("graph: mmap %d bytes: %w", total, err))
	}
	// The mapping holds its own reference to the file's pages; drop the
	// descriptor and the name so nothing outlives the process.
	f.Close()
	os.Remove(path)

	off := 0
	carveI64 := func(n int) []int64 {
		if n == 0 {
			return nil
		}
		s := unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), n)
		off += n * 8
		return s
	}
	carveU32 := func(n int) []uint32 {
		if n == 0 {
			return nil
		}
		s := unsafe.Slice((*uint32)(unsafe.Pointer(&data[off])), n)
		off += n * 4
		return s
	}
	carveF32 := func(n int) []float32 {
		if n == 0 {
			return nil
		}
		s := unsafe.Slice((*float32)(unsafe.Pointer(&data[off])), n)
		off += n * 4
		return s
	}
	return &Graph{
		n:       g.n,
		m:       g.m,
		outOff:  carveI64(len(g.outOff)),
		inOff:   carveI64(len(g.inOff)),
		inToOut: carveI64(len(g.inToOut)),
		outTo:   carveU32(len(g.outTo)),
		outW:    carveF32(len(g.outW)),
		inSrc:   carveU32(len(g.inSrc)),
		inW:     carveF32(len(g.inW)),
	}, nil
}
