//go:build !linux && !darwin

package graph

// mmapSupported reports whether MmapBacked actually remaps on this
// platform.
const mmapSupported = false

// mmapBacked on platforms without syscall.Mmap is the identity: the
// graph stays heap-resident. Callers that must know can check
// MmapSupported.
func mmapBacked(g *Graph, dir string) (*Graph, error) { return g, nil }
