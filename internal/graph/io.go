package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text edge-list format
//
// One edge per line: "from to [weight]". Whitespace-separated. Lines that
// are empty or start with '#' or '%' are ignored (SNAP and KONECT dataset
// conventions). If weight is omitted it defaults to 0 and a weighting
// strategy must be applied before running any algorithm.

// ErrSyntax reports a malformed edge-list line.
var ErrSyntax = errors.New("graph: malformed edge list line")

// ReadEdgeList parses a text edge list. If undirected is true each line
// contributes both directions. The node count is 1 + the maximum endpoint
// id seen, except that a leading "# nodes=N edges=M" header (as written
// by WriteEdgeList) raises it to N — so Write/Read round trips preserve
// isolated trailing nodes. Use ReadEdgeListN when the node count is known
// out of band.
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	return readEdgeList(r, undirected, -1)
}

// ReadEdgeListN parses a text edge list for a graph with exactly n nodes.
// Endpoints outside [0, n) are an error.
func ReadEdgeListN(r io.Reader, undirected bool, n int) (*Graph, error) {
	return readEdgeList(r, undirected, n)
}

func readEdgeList(r io.Reader, undirected bool, n int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []Edge
	maxID := -1
	declaredN := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			// WriteEdgeList's own header declares the node count;
			// honoring it preserves isolated trailing nodes across a
			// Write/Read round trip. Other comments are ignored.
			if d, ok := parseNodesHeader(line); ok && d > declaredN {
				declaredN = d
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, lineNo, line)
		}
		from, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad source: %v", ErrSyntax, lineNo, err)
		}
		to, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad target: %v", ErrSyntax, lineNo, err)
		}
		var weight float64
		if len(fields) == 3 {
			weight, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad weight: %v", ErrSyntax, lineNo, err)
			}
			if !(weight >= 0 && weight <= 1) {
				return nil, fmt.Errorf("%w: line %d: weight %v outside [0,1]", ErrBadWeight, lineNo, weight)
			}
		}
		e := Edge{From: uint32(from), To: uint32(to), Weight: float32(weight)}
		edges = append(edges, e)
		if undirected {
			edges = append(edges, Edge{From: e.To, To: e.From, Weight: e.Weight})
		}
		if int(from) > maxID {
			maxID = int(from)
		}
		if int(to) > maxID {
			maxID = int(to)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if n < 0 {
		n = maxID + 1
		if declaredN > n {
			n = declaredN
		}
	}
	return FromEdges(n, edges)
}

// parseNodesHeader matches the exact "# nodes=N edges=M" comment that
// WriteEdgeList emits and returns N. Any other comment returns ok=false.
func parseNodesHeader(line string) (n int, ok bool) {
	rest, found := strings.CutPrefix(line, "# nodes=")
	if !found {
		return 0, false
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 || !strings.HasPrefix(fields[1], "edges=") {
		return 0, false
	}
	v, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return 0, false
	}
	return int(v), true
}

// WriteEdgeList writes the graph as a text edge list with weights, one
// directed edge per line, prefixed by a comment header recording n and m.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := uint32(0); int(u) < g.N(); u++ {
		to, wt := g.OutNeighbors(u)
		for i := range to {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, to[i], wt[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Binary format
//
// Little-endian: magic "TIMG", version uint32, n uint64, m uint64, then m
// records of (from uint32, to uint32, weight float32). Fast enough for the
// cmd tools and compact enough for multi-million-edge fixtures.

var binMagic = [4]byte{'T', 'I', 'M', 'G'}

const binVersion = 1

var (
	// ErrTruncated reports a binary stream that ended before the bytes its
	// own header promised — the typical result of an interrupted download
	// or a clipped file. It always wraps enough context to locate the cut.
	ErrTruncated = errors.New("graph: truncated binary graph data")
	// ErrBinFormat reports structurally invalid binary data: wrong magic,
	// unsupported version, or an impossible header. Unlike ErrTruncated,
	// retrying with more bytes cannot fix it.
	ErrBinFormat = errors.New("graph: invalid binary graph data")
)

// WriteBinary writes the graph in the TIMG binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.M()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 12)
	for u := uint32(0); int(u) < g.N(); u++ {
		to, wt := g.OutNeighbors(u)
		for i := range to {
			binary.LittleEndian.PutUint32(rec[0:], u)
			binary.LittleEndian.PutUint32(rec[4:], to[i])
			binary.LittleEndian.PutUint32(rec[8:], floatBits(wt[i]))
			if _, err := bw.Write(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the TIMG binary format. The input is
// treated as untrusted: malformed or clipped data yields a typed error
// (ErrBinFormat, ErrTruncated, ErrNodeRange, or ErrBadWeight), never a
// panic, and never an allocation proportional to a lying header.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBinFormat, magic[:])
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBinFormat, v)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	if n > 1<<32 {
		return nil, fmt.Errorf("%w: node count %d exceeds uint32 id space", ErrBinFormat, n)
	}
	// The header is untrusted input: preallocating m records outright
	// would let a 24-byte file demand petabytes. Cap the upfront
	// reservation and let append grow as records actually arrive — a
	// short stream then fails in ReadFull long before exhausting memory.
	reserve := m
	if reserve > 1<<20 {
		reserve = 1 << 20
	}
	edges := make([]Edge, 0, reserve)
	rec := make([]byte, 12)
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("%w: edge %d of %d: %v", ErrTruncated, i, m, err)
		}
		edges = append(edges, Edge{
			From:   binary.LittleEndian.Uint32(rec[0:]),
			To:     binary.LittleEndian.Uint32(rec[4:]),
			Weight: floatFromBits(binary.LittleEndian.Uint32(rec[8:])),
		})
	}
	return FromEdges(int(n), edges)
}

func floatBits(f float32) uint32     { return math.Float32bits(f) }
func floatFromBits(b uint32) float32 { return math.Float32frombits(b) }
