// Package graph provides the directed-graph substrate shared by every
// influence-maximization algorithm in this repository.
//
// A Graph is stored in compressed sparse row (CSR) form twice: once over
// out-edges (forward adjacency, used by forward cascade simulation) and once
// over in-edges (reverse adjacency, used by reverse-reachable-set sampling —
// the paper's G^T). Each directed edge carries a float32 weight whose
// meaning depends on the diffusion model: the propagation probability p(e)
// under independent cascade, or the influence weight b(u,v) under linear
// threshold. Both copies of an edge always carry the same weight.
//
// Node identifiers are dense uint32 values in [0, N()).
package graph

import (
	"errors"
	"fmt"
)

// Edge is one directed edge with an attached weight. The zero Weight is
// meaningful ("never propagates"), so builders leave weights untouched
// unless a weighting strategy is applied afterwards.
type Edge struct {
	From   uint32
	To     uint32
	Weight float32
}

// Graph is an immutable-topology directed graph. Weights are mutable via
// the weighting strategies in this package; topology is fixed at build time.
type Graph struct {
	n int // number of nodes
	m int // number of directed edges

	// Forward CSR: out-edges of node u live at outTo[outOff[u]:outOff[u+1]].
	outOff []int64
	outTo  []uint32
	outW   []float32

	// Reverse CSR: in-edges of node v live at inSrc[inOff[v]:inOff[v+1]].
	inOff []int64
	inSrc []uint32
	inW   []float32

	// inToOut maps a position in the reverse CSR to the position of the
	// same edge in the forward CSR, so per-in-edge weight updates can be
	// mirrored exactly even in the presence of parallel edges.
	inToOut []int64
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.m }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u uint32) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v uint32) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the targets and weights of u's out-edges. The
// returned slices alias internal storage and must not be modified.
func (g *Graph) OutNeighbors(u uint32) ([]uint32, []float32) {
	lo, hi := g.outOff[u], g.outOff[u+1]
	return g.outTo[lo:hi], g.outW[lo:hi]
}

// InNeighbors returns the sources and weights of v's in-edges. The returned
// slices alias internal storage and must not be modified.
func (g *Graph) InNeighbors(v uint32) ([]uint32, []float32) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inSrc[lo:hi], g.inW[lo:hi]
}

// Edges returns a fresh slice of all edges in forward-CSR order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := uint32(0); int(u) < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for i := lo; i < hi; i++ {
			edges = append(edges, Edge{From: u, To: g.outTo[i], Weight: g.outW[i]})
		}
	}
	return edges
}

// MaxInDegree returns the largest in-degree in the graph (0 for empty).
func (g *Graph) MaxInDegree() int {
	best := 0
	for v := uint32(0); int(v) < g.n; v++ {
		if d := g.InDegree(v); d > best {
			best = d
		}
	}
	return best
}

// MaxOutDegree returns the largest out-degree in the graph (0 for empty).
func (g *Graph) MaxOutDegree() int {
	best := 0
	for v := uint32(0); int(v) < g.n; v++ {
		if d := g.OutDegree(v); d > best {
			best = d
		}
	}
	return best
}

// MemoryBytes returns the heap footprint of the CSR arrays (both
// adjacency copies plus the in→out edge map), by slice capacity. It
// feeds the server's capacity ledger: per-dataset snapshot bytes are
// computed here, at the owner, so the ledger never guesses.
func (g *Graph) MemoryBytes() int64 {
	if g == nil {
		return 0
	}
	var b int64
	b += int64(cap(g.outOff)) * 8
	b += int64(cap(g.outTo)) * 4
	b += int64(cap(g.outW)) * 4
	b += int64(cap(g.inOff)) * 8
	b += int64(cap(g.inSrc)) * 4
	b += int64(cap(g.inW)) * 4
	b += int64(cap(g.inToOut)) * 8
	return b
}

// AverageDegree returns m/n, the paper's "average degree" column in
// Table 2 (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// Transpose returns a graph with every edge reversed. Weights follow their
// edges. The transpose is a view: it shares adjacency and weight storage
// with the receiver, so weight mutations through either graph are visible
// in both.
func (g *Graph) Transpose() *Graph {
	inv := make([]int64, g.m)
	for q, p := range g.inToOut {
		inv[p] = int64(q)
	}
	return &Graph{
		n:       g.n,
		m:       g.m,
		outOff:  g.inOff,
		outTo:   g.inSrc,
		outW:    g.inW,
		inOff:   g.outOff,
		inSrc:   g.outTo,
		inW:     g.outW,
		inToOut: inv,
	}
}

// MemoryFootprint returns the approximate number of bytes held by the
// graph's adjacency arrays. Used by the Figure 12 memory experiment.
func (g *Graph) MemoryFootprint() int64 {
	var total int64
	total += int64(len(g.outOff)+len(g.inOff)) * 8
	total += int64(len(g.outTo)+len(g.inSrc)) * 4
	total += int64(len(g.outW)+len(g.inW)) * 4
	total += int64(len(g.inToOut)) * 8
	return total
}

var (
	// ErrNodeRange reports an edge endpoint outside [0, n).
	ErrNodeRange = errors.New("graph: edge endpoint out of node range")
	// ErrBadWeight reports an edge weight outside [0, 1] or NaN.
	ErrBadWeight = errors.New("graph: edge weight outside [0, 1]")
)

// FromEdges builds a graph with n nodes from the given directed edges.
// Endpoints must lie in [0, n); weights must be in [0, 1]. Self-loops and
// parallel edges are permitted (the diffusion models tolerate both; a
// self-loop never changes a cascade because its endpoint is already
// active).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	for i, e := range edges {
		if int(e.From) >= n || int(e.To) >= n {
			return nil, fmt.Errorf("%w: edge %d (%d -> %d) with n=%d", ErrNodeRange, i, e.From, e.To, n)
		}
		if !(e.Weight >= 0 && e.Weight <= 1) { // negated to catch NaN
			return nil, fmt.Errorf("%w: edge %d (%d -> %d) weight %v", ErrBadWeight, i, e.From, e.To, e.Weight)
		}
	}
	g := &Graph{n: n, m: len(edges)}
	g.buildCSR(edges)
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// fixtures with hand-written edges.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// buildCSR populates both CSR directions with counting sort, O(n + m).
func (g *Graph) buildCSR(edges []Edge) {
	n, m := g.n, g.m
	g.outOff = make([]int64, n+1)
	g.inOff = make([]int64, n+1)
	g.outTo = make([]uint32, m)
	g.outW = make([]float32, m)
	g.inSrc = make([]uint32, m)
	g.inW = make([]float32, m)

	for _, e := range edges {
		g.outOff[e.From+1]++
		g.inOff[e.To+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	for i := range outPos {
		outPos[i] = g.outOff[i]
		inPos[i] = g.inOff[i]
	}
	g.inToOut = make([]int64, m)
	for _, e := range edges {
		op := outPos[e.From]
		g.outTo[op] = e.To
		g.outW[op] = e.Weight
		outPos[e.From]++

		ip := inPos[e.To]
		g.inSrc[ip] = e.From
		g.inW[ip] = e.Weight
		inPos[e.To]++

		g.inToOut[ip] = op
	}
}

// SetInWeights rewrites the weights of v's in-edges and mirrors the change
// into the forward CSR. The callback receives the in-neighbor sources of v
// and a weight slice to fill; it is called once per node. Weights must be
// in [0, 1].
func (g *Graph) SetInWeights(fill func(v uint32, src []uint32, w []float32)) error {
	cross := g.inToOut
	for v := uint32(0); int(v) < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		if lo == hi {
			continue
		}
		fill(v, g.inSrc[lo:hi], g.inW[lo:hi])
		for p := lo; p < hi; p++ {
			w := g.inW[p]
			if !(w >= 0 && w <= 1) {
				return fmt.Errorf("%w: node %d in-edge weight %v", ErrBadWeight, v, w)
			}
			g.outW[cross[p]] = w
		}
	}
	return nil
}

// SetUniformWeights assigns probability p to every edge.
func (g *Graph) SetUniformWeights(p float32) error {
	if !(p >= 0 && p <= 1) {
		return fmt.Errorf("%w: %v", ErrBadWeight, p)
	}
	for i := range g.outW {
		g.outW[i] = p
	}
	for i := range g.inW {
		g.inW[i] = p
	}
	return nil
}

// MmapSupported reports whether MmapBacked remaps graphs on this
// platform; when false, MmapBacked is the identity.
func MmapSupported() bool { return mmapSupported }

// MmapBacked returns a graph equivalent to g whose CSR arrays live in
// a private memory mapping of an (immediately unlinked) backing file
// under dir, so the kernel pages the topology on demand instead of the
// heap pinning it. The mapping is copy-on-write: in-place weight
// mutation works and never reaches the file. Traversal semantics and
// query answers are bit-identical to the heap-resident graph. On
// platforms without mmap support, returns g unchanged.
func MmapBacked(g *Graph, dir string) (*Graph, error) { return mmapBacked(g, dir) }
