package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. `go test` runs the seed corpus as
// regular unit tests; `go test -fuzz=FuzzReadEdgeList ./internal/graph`
// explores further. The invariant under test is total robustness: any
// byte input either parses into a graph satisfying the CSR invariants
// or returns an error — never a panic, never an unbounded allocation.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n% other comment\n\n0 1 0.5\n")
	f.Add("0 0 1.0\n")                // self-loop, certain
	f.Add("3 4 0.25\n3 4 0.5\n")      // parallel edges
	f.Add("0 1 1.5\n")                // weight out of range
	f.Add("0 1 NaN\n")                // weight NaN
	f.Add("0\n")                      // too few fields
	f.Add("0 1 2 3\n")                // too many fields
	f.Add("a b\n")                    // non-numeric
	f.Add("-1 2\n")                   // negative id
	f.Add("4294967295 0\n")           // max uint32 id
	f.Add("18446744073709551616 0\n") // uint64 overflow
	f.Add(strings.Repeat("1 2\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		// Huge endpoint ids are legal syntax but imply graphs with
		// billions of implicit nodes; skip them to keep the CSR
		// allocation bounded during fuzzing (ReadEdgeListN covers the
		// validated-range path below).
		for _, fields := range strings.Fields(input) {
			if len(fields) > 6 && !strings.ContainsAny(fields, "#%") {
				return
			}
		}
		for _, undirected := range []bool{false, true} {
			g, err := ReadEdgeList(strings.NewReader(input), undirected)
			if err != nil {
				continue
			}
			checkGraphInvariants(t, g)
			// Round-trip: writing and reparsing must preserve the graph.
			var buf bytes.Buffer
			if err := WriteEdgeList(&buf, g); err != nil {
				t.Fatalf("write after successful parse: %v", err)
			}
			g2, err := ReadEdgeListN(&buf, false, g.N())
			if err != nil {
				t.Fatalf("reparse after write: %v", err)
			}
			if g2.N() != g.N() || g2.M() != g.M() {
				t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
			}
		}
		// The fixed-n variant must reject out-of-range endpoints rather
		// than grow the graph.
		if g, err := ReadEdgeListN(strings.NewReader(input), false, 8); err == nil {
			if g.N() != 8 {
				t.Fatalf("ReadEdgeListN ignored n: %d", g.N())
			}
			checkGraphInvariants(t, g)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Valid two-edge file.
	var valid bytes.Buffer
	g := MustFromEdges(3, []Edge{{From: 0, To: 1, Weight: 0.5}, {From: 2, To: 0, Weight: 1}})
	if err := WriteBinary(&valid, g); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})                   // empty
	f.Add([]byte("TIMG"))             // magic only
	f.Add([]byte("XXXX\x00\x00\x00")) // wrong magic
	// Header claiming far more edges than the stream carries.
	lying := append([]byte{}, valid.Bytes()...)
	binary.LittleEndian.PutUint64(lying[16:], 1<<60)
	f.Add(lying)
	// Header claiming an absurd node count.
	bigN := append([]byte{}, valid.Bytes()...)
	binary.LittleEndian.PutUint64(bigN[8:], 1<<40)
	f.Add(bigN)
	// Clipped streams: magic cut short, header cut short, mid-record cut.
	for _, cut := range []int{2, 9, 25} {
		if cut < valid.Len() {
			f.Add(append([]byte{}, valid.Bytes()[:cut]...))
		}
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return
		}
		// Cap the declared node count: a legitimate giant graph may
		// demand terabytes of CSR, which is not what robustness fuzzing
		// should measure.
		if len(input) >= 16 {
			if n := binary.LittleEndian.Uint64(input[8:16]); n > 1<<22 {
				return
			}
		}
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		checkGraphInvariants(t, g)
		// Round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("reparse after write: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// checkGraphInvariants asserts the CSR structure is internally
// consistent: degrees sum to m in both directions, every adjacency
// entry is in range, every weight is in [0, 1], and forward/reverse
// views agree edge for edge.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n, m := g.N(), g.M()
	var outSum, inSum int
	type edge struct {
		from, to uint32
		w        float32
	}
	fwd := make(map[edge]int)
	for u := uint32(0); int(u) < n; u++ {
		to, w := g.OutNeighbors(u)
		outSum += len(to)
		for i := range to {
			if int(to[i]) >= n {
				t.Fatalf("out-neighbor %d of %d outside [0,%d)", to[i], u, n)
			}
			if !(w[i] >= 0 && w[i] <= 1) {
				t.Fatalf("weight %v on edge %d->%d outside [0,1]", w[i], u, to[i])
			}
			fwd[edge{u, to[i], w[i]}]++
		}
	}
	for v := uint32(0); int(v) < n; v++ {
		src, w := g.InNeighbors(v)
		inSum += len(src)
		for i := range src {
			if int(src[i]) >= n {
				t.Fatalf("in-neighbor %d of %d outside [0,%d)", src[i], v, n)
			}
			e := edge{src[i], v, w[i]}
			if fwd[e] == 0 {
				t.Fatalf("reverse edge %d->%d (w=%v) missing from forward view", src[i], v, w[i])
			}
			fwd[e]--
		}
	}
	if outSum != m || inSum != m {
		t.Fatalf("degree sums %d/%d != m=%d", outSum, inSum, m)
	}
}
