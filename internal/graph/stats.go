package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph's shape, mirroring the columns of the paper's
// Table 2 plus degree-distribution detail used to validate the synthetic
// dataset profiles.
type Stats struct {
	Nodes         int
	Edges         int // directed edge count
	AverageDegree float64
	MaxInDegree   int
	MaxOutDegree  int
	Isolated      int // nodes with neither in- nor out-edges

	// DegreePercentiles holds the out-degree values at the 50th, 90th,
	// 99th percentile, in that order. A heavy-tailed profile shows
	// p99 >> p50.
	DegreePercentiles [3]int
}

// ComputeStats scans the graph once and returns its summary.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.N(), Edges: g.M(), AverageDegree: g.AverageDegree()}
	degs := make([]int, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		in, out := g.InDegree(v), g.OutDegree(v)
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in == 0 && out == 0 {
			s.Isolated++
		}
		degs[v] = out
	}
	if len(degs) > 0 {
		sort.Ints(degs)
		pick := func(p float64) int {
			idx := int(p * float64(len(degs)-1))
			return degs[idx]
		}
		s.DegreePercentiles = [3]int{pick(0.50), pick(0.90), pick(0.99)}
	}
	return s
}

// String renders the stats as a single Table 2-style row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d avgdeg=%.1f maxin=%d maxout=%d p50/p90/p99=%d/%d/%d isolated=%d",
		s.Nodes, s.Edges, s.AverageDegree, s.MaxInDegree, s.MaxOutDegree,
		s.DegreePercentiles[0], s.DegreePercentiles[1], s.DegreePercentiles[2], s.Isolated)
}

// Reachable returns the set of nodes reachable from seeds in the directed
// graph (ignoring weights), as a boolean slice. Used by tests to validate
// RR-set membership against ground-truth reachability.
func Reachable(g *Graph, seeds []uint32) []bool {
	visited := make([]bool, g.N())
	queue := make([]uint32, 0, len(seeds))
	for _, s := range seeds {
		if int(s) < g.N() && !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		to, _ := g.OutNeighbors(u)
		for _, v := range to {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return visited
}
