package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line: the full sample name (including any
// _bucket/_sum/_count suffix), its labels, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: metadata plus all its samples in
// exposition order. Histogram families collect their _bucket, _sum, and
// _count samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseExposition parses Prometheus text exposition format strictly:
// every sample must belong to a family whose # HELP and # TYPE lines
// appeared first, values must parse, label syntax must be exact. It
// exists so tests and timload can fail loudly on malformed /metrics
// output instead of shrugging past it.
func ParseExposition(text string) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	var cur *Family
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
			if fams[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			cur = &Family{Name: name, Help: help}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE for %s not preceded by its HELP", lineNo, name)
			}
			if cur.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			switch typ {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
				cur.Type = typ
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil || !sampleBelongsTo(s.Name, cur) {
			return nil, fmt.Errorf("line %d: sample %s outside its family block (missing or out-of-order HELP/TYPE)", lineNo, s.Name)
		}
		if cur.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	for name, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %s has no samples", name)
		}
	}
	return fams, nil
}

// sampleBelongsTo reports whether a sample name belongs to family f —
// exact match, or for histograms the _bucket/_sum/_count expansions.
func sampleBelongsTo(name string, f *Family) bool {
	if name == f.Name {
		return true
	}
	if f.Type == typeHistogram {
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return false
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			val, remain, err := readQuoted(rest)
			if err != nil {
				return s, fmt.Errorf("%v in %q", err, line)
			}
			if _, dup := s.Labels[key]; dup {
				return s, fmt.Errorf("duplicate label %s in %q", key, line)
			}
			s.Labels[key] = val
			rest = remain
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("malformed label separator in %q", line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// A trailing timestamp (second field) is legal in the format; we never
	// emit one, and strict parsing rejects it to catch accidental output.
	if strings.ContainsRune(rest, ' ') {
		return s, fmt.Errorf("unexpected trailing field in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	return s, nil
}

// readQuoted consumes a quoted label value (opening quote included in
// in), handling \\, \", and \n escapes; returns the unescaped value and
// the remainder after the closing quote.
func readQuoted(in string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// MaxSeriesPerFamily caps the distinct label combinations Lint
// tolerates within one family. Every label on this server draws from a
// small closed vocabulary (endpoint, tier, dataset, component, phase);
// a family exceeding the cap almost certainly interpolated an
// unbounded value (request id, raw key, user input) into a label,
// which would grow /metrics without bound. CI fails on violation via
// timload's mid-run scrape.
const MaxSeriesPerFamily = 64

// Lint checks semantic invariants on parsed families — the shared
// checker behind the /metrics test and timload's mid-run scrape:
//   - counter samples are finite and non-negative
//   - histogram buckets are cumulative (non-decreasing in le order per
//     series), include le="+Inf", and agree with _count
//   - every histogram series has matching _sum and _count samples
//   - no family exposes more than MaxSeriesPerFamily distinct series
//     (unbounded label cardinality)
//
// It returns all violations, not just the first.
func Lint(fams map[string]*Family) []error {
	var errs []error
	for _, f := range fams {
		switch f.Type {
		case typeCounter:
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0 {
					errs = append(errs, fmt.Errorf("counter %s%v has non-monotone-capable value %v", s.Name, s.Labels, s.Value))
				}
			}
		case typeHistogram:
			errs = append(errs, lintHistogram(f)...)
		}
		sigs := make(map[string]struct{})
		for _, s := range f.Samples {
			sigs[nonLeSignature(s.Labels)] = struct{}{}
		}
		if len(sigs) > MaxSeriesPerFamily {
			errs = append(errs, fmt.Errorf("family %s has %d series, over the %d cardinality cap (unbounded label value?)", f.Name, len(sigs), MaxSeriesPerFamily))
		}
	}
	return errs
}

// nonLeSignature canonicalizes a sample's labels minus the histogram
// "le" bound, identifying which logical series it belongs to.
func nonLeSignature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// histSeries groups one histogram series' expanded samples by its
// non-le label set.
type histSeries struct {
	buckets []Sample // le-labeled, exposition order
	sum     *Sample
	count   *Sample
}

func lintHistogram(f *Family) []error {
	series := make(map[string]*histSeries)
	get := func(labels map[string]string) *histSeries {
		key := nonLeSignature(labels)
		hs := series[key]
		if hs == nil {
			hs = &histSeries{}
			series[key] = hs
		}
		return hs
	}
	var errs []error
	for i, s := range f.Samples {
		hs := get(s.Labels)
		switch s.Name {
		case f.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				errs = append(errs, fmt.Errorf("histogram %s bucket without le label", f.Name))
				continue
			}
			hs.buckets = append(hs.buckets, s)
		case f.Name + "_sum":
			hs.sum = &f.Samples[i]
		case f.Name + "_count":
			hs.count = &f.Samples[i]
		default:
			errs = append(errs, fmt.Errorf("histogram %s has stray sample %s", f.Name, s.Name))
		}
	}
	for key, hs := range series {
		label := f.Name
		if key != "" {
			label += "{" + key + "}"
		}
		if hs.sum == nil || hs.count == nil {
			errs = append(errs, fmt.Errorf("histogram %s missing _sum or _count", label))
			continue
		}
		prev := math.Inf(-1)
		prevBound := math.Inf(-1)
		sawInf := false
		for _, b := range hs.buckets {
			bound, err := parseValue(b.Labels["le"])
			if err != nil {
				errs = append(errs, fmt.Errorf("histogram %s has unparseable le=%q", label, b.Labels["le"]))
				continue
			}
			if bound <= prevBound {
				errs = append(errs, fmt.Errorf("histogram %s buckets not in ascending le order", label))
			}
			prevBound = bound
			if b.Value < prev {
				errs = append(errs, fmt.Errorf("histogram %s buckets not cumulative: le=%q count %v < previous %v", label, b.Labels["le"], b.Value, prev))
			}
			prev = b.Value
			if math.IsInf(bound, 1) {
				sawInf = true
				if b.Value != hs.count.Value {
					errs = append(errs, fmt.Errorf("histogram %s le=\"+Inf\" bucket %v != _count %v", label, b.Value, hs.count.Value))
				}
			}
		}
		if !sawInf {
			errs = append(errs, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", label))
		}
		if hs.count.Value > 0 && hs.sum.Value < 0 {
			errs = append(errs, fmt.Errorf("histogram %s has negative _sum %v with positive _count", label, hs.sum.Value))
		}
	}
	return errs
}
