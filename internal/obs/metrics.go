package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 cell (CAS over the bit pattern).
// Prometheus sample values are float64, so instruments store floats
// natively instead of round-tripping through integer micros.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Counter is a monotone instrument. The zero value is usable, so
// subsystems can hold counters without a registry (tests construct them
// bare); registering is what makes a counter visible on /metrics.
type Counter struct{ v atomicFloat }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	c.v.add(v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Int returns the count as an int64 (counts are integers in practice;
// /v1/stats fields are int64).
func (c *Counter) Int() int64 { return int64(c.Value()) }

// Gauge is a settable instrument (may go up and down).
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add adjusts the gauge by v (either sign).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// SetMax raises the gauge to v if v is larger — the high-watermark
// pattern (max request latency, max repair time).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	g.v.storeMax(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Int returns the value as an int64.
func (g *Gauge) Int() int64 { return int64(g.Value()) }

// LatencyBuckets are the fixed histogram bounds (milliseconds) used for
// request, tier, and phase latencies: roughly logarithmic from 50µs to
// 10s, covering the fast tier's microseconds and a worst-case RIS query
// alike. Fixed buckets (instead of only the rings' windowed quantiles)
// make latencies aggregable across scrapes and across servers.
var LatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound (plus +Inf) and a running sum. The zero value is NOT usable —
// buckets must be set — so histograms are built by NewHistogram or the
// registry.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil selects LatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
}

// HistogramSnapshot is a point-in-time read of a histogram: cumulative
// counts per bound (ending with the +Inf total), the total count, and the
// sum of observations.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot reads the histogram. Bucket reads are individually atomic (the
// usual Prometheus consistency contract: a scrape racing observations may
// be off by in-flight increments).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Bounds: h.bounds, Cumulative: make([]int64, len(h.counts))}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		snap.Cumulative[i] = cum
	}
	snap.Count = cum
	snap.Sum = h.sum.load()
	return snap
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 { return h.Snapshot().Count }

// Sum is the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// metric type names, as rendered on # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance within a family: exactly one of the
// instrument fields is set. fn-backed series read an external source of
// truth at scrape time — the pattern for mirroring counters that already
// live elsewhere (the admission gate, the sampler pools) without moving
// them.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
	fn          func() float64
}

// family is one metric name: its metadata and all labeled series.
type family struct {
	name, help string
	typ        string
	labelNames []string
	buckets    []float64

	mu     sync.Mutex
	series map[string]*series
}

func (f *family) get(values []string, build func() *series) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants labels %v, got values %v", f.name, f.labelNames, values))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = build()
		s.labelValues = append([]string(nil), values...)
		f.series[key] = s
	}
	return s
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Metric and
// label names are the caller's responsibility to keep Prometheus-legal
// ([a-zA-Z_:][a-zA-Z0-9_:]*); registering the same name with a different
// type or label set panics (a programming error, caught at startup).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// OnScrape registers a hook invoked at the start of every
// WritePrometheus call, before any family is rendered. Hooks refresh
// state that is expensive to keep current continuously (e.g. one
// runtime.ReadMemStats feeding several instruments). They run outside
// the registry lock and must be safe for concurrent use.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, typ: typ,
			labelNames: append([]string(nil), labels...),
			buckets:    buckets,
			series:     make(map[string]*series, 1),
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || len(f.labelNames) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s%v (was %s%v)", name, typ, labels, f.typ, f.labelNames))
	}
	for i := range labels {
		if f.labelNames[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %s re-registered with labels %v (was %v)", name, labels, f.labelNames))
		}
	}
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.get(nil, func() *series { return &series{c: &Counter{}} }).c
}

// CounterVec registers a counter family with the given label names.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() *series { return &series{c: &Counter{}} }).c
}

// Each visits every series of the family.
func (v *CounterVec) Each(fn func(labels []string, c *Counter)) {
	v.f.mu.Lock()
	all := make([]*series, 0, len(v.f.series))
	for _, s := range v.f.series {
		all = append(all, s)
	}
	v.f.mu.Unlock()
	for _, s := range all {
		fn(s.labelValues, s.c)
	}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.get(nil, func() *series { return &series{g: &Gauge{}} }).g
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() *series { return &series{g: &Gauge{}} }).g
}

// Func installs a gauge series for the given label values whose value
// is read from fn at scrape time — the labeled mirror pattern (e.g.
// one ledger-backed capacity gauge per dataset/component pair). The
// first registration for a label-value tuple wins; installing Func
// over an existing mutable series (or vice versa) is a no-op on the
// existing series.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.get(values, func() *series { return &series{fn: fn} })
}

// Histogram registers (or fetches) an unlabeled histogram over bounds
// (nil selects LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, bounds)
	return f.get(nil, func() *series { return &series{h: NewHistogram(f.buckets)} }).h
}

// HistogramVec is a labeled histogram family; every series shares the
// family's bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() *series { return &series{h: NewHistogram(v.f.buckets)} }).h
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — the mirror pattern for monotone counts whose source of truth
// lives in another subsystem (pool stats, the admission gate). f must be
// monotone non-decreasing and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	fam := r.family(name, help, typeCounter, nil, nil)
	fam.get(nil, func() *series { return &series{fn: f} })
}

// GaugeFunc registers a gauge read from f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	fam := r.family(name, help, typeGauge, nil, nil)
	fam.get(nil, func() *series { return &series{fn: f} })
}
