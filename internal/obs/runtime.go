package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// GCPauseBuckets spans sub-10µs young-gen pauses through pathological
// 100ms+ stop-the-world events, in milliseconds.
var GCPauseBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// RegisterRuntimeMetrics adds process self-metrics to reg:
//
//	go_goroutines                    current goroutine count
//	go_memstats_heap_inuse_bytes     bytes in in-use heap spans
//	go_gc_pause_ms                   histogram of GC stop-the-world pauses
//	process_uptime_seconds           seconds since registration
//
// All instruments are func-backed or fed by a single OnScrape hook
// (one ReadMemStats per exposition), so the instrumented process pays
// nothing between scrapes.
func RegisterRuntimeMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since runtime metrics were registered.",
		func() float64 { return time.Since(start).Seconds() })

	var heapInuse atomic.Uint64
	reg.GaugeFunc("go_memstats_heap_inuse_bytes",
		"Bytes in in-use heap spans, from runtime.MemStats.",
		func() float64 { return float64(heapInuse.Load()) })
	pause := reg.Histogram("go_gc_pause_ms",
		"Garbage-collection stop-the-world pause durations in milliseconds.",
		GCPauseBuckets)

	var mu sync.Mutex
	var ms runtime.MemStats
	var lastNumGC uint32
	reg.OnScrape(func() {
		mu.Lock()
		defer mu.Unlock()
		runtime.ReadMemStats(&ms)
		heapInuse.Store(ms.HeapInuse)
		// PauseNs is a 256-entry circular buffer; replay only the
		// pauses since the previous scrape, skipping any overwritten
		// under extreme GC churn.
		first := lastNumGC
		if ms.NumGC > first+uint32(len(ms.PauseNs)) {
			first = ms.NumGC - uint32(len(ms.PauseNs))
		}
		for i := first; i < ms.NumGC; i++ {
			pause.Observe(float64(ms.PauseNs[i%uint32(len(ms.PauseNs))]) / 1e6)
		}
		lastNumGC = ms.NumGC
	})
}
