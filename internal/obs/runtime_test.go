package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeMetricsScrapeClean(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // ensure at least one pause is observable

	for pass := 0; pass < 2; pass++ { // second scrape must not double-count pauses
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(b.String())
		if err != nil {
			t.Fatalf("pass %d: %v\n%s", pass, err, b.String())
		}
		if errs := Lint(fams); len(errs) != 0 {
			t.Fatalf("pass %d lint: %v", pass, errs)
		}
		for _, name := range []string{"go_goroutines", "go_memstats_heap_inuse_bytes", "go_gc_pause_ms", "process_uptime_seconds"} {
			if fams[name] == nil {
				t.Fatalf("pass %d: missing %s\n%s", pass, name, b.String())
			}
		}
		if v := fams["go_goroutines"].Samples[0].Value; v < 1 {
			t.Fatalf("goroutines = %v", v)
		}
		if v := fams["go_memstats_heap_inuse_bytes"].Samples[0].Value; v <= 0 {
			t.Fatalf("heap inuse = %v", v)
		}
	}

	// GC pause counts are monotone, not re-replayed per scrape: the
	// histogram count after two scrapes must equal NumGC (every pause
	// observed exactly once), which Lint already bounds via cumulative
	// checks; assert non-zero to prove the hook fed it.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(b.String())
	if err != nil {
		t.Fatal(err)
	}
	var count float64
	for _, s := range fams["go_gc_pause_ms"].Samples {
		if s.Name == "go_gc_pause_ms_count" {
			count = s.Value
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if count <= 0 || count > float64(ms.NumGC) {
		t.Fatalf("gc pause count = %v, NumGC = %d", count, ms.NumGC)
	}
}

func TestLintFlagsCardinalityExplosion(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("exploded_total", "Per-request-id counter (a bug).", "request_id")
	for i := 0; i < MaxSeriesPerFamily+1; i++ {
		v.With(string(rune('a'+i%26)) + string(rune('0'+i/26))).Inc()
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(b.String())
	if err != nil {
		t.Fatal(err)
	}
	errs := Lint(fams)
	if len(errs) == 0 {
		t.Fatal("lint should flag series cardinality over the cap")
	}
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "cardinality") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lint errors lack a cardinality message: %v", errs)
	}

	// Exactly at the cap is fine.
	reg2 := NewRegistry()
	v2 := reg2.CounterVec("bounded_total", "Bounded labels.", "k")
	for i := 0; i < MaxSeriesPerFamily; i++ {
		v2.With(string(rune('a'+i%26)) + string(rune('0'+i/26))).Inc()
	}
	var b2 strings.Builder
	if err := reg2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	fams2, err := ParseExposition(b2.String())
	if err != nil {
		t.Fatal(err)
	}
	if errs := Lint(fams2); len(errs) != 0 {
		t.Fatalf("at-cap family should lint clean: %v", errs)
	}
}

func TestGaugeVecFunc(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("capacity_bytes", "Bytes by dataset and component.", "dataset", "component")
	val := 100.0
	gv.Func(func() float64 { return val }, "ba", "rr_collections")
	gv.With("ba", "result_cache").Set(7)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(b.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if errs := Lint(fams); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
	byComp := map[string]float64{}
	for _, s := range fams["capacity_bytes"].Samples {
		if s.Labels["dataset"] != "ba" {
			t.Fatalf("labels = %v", s.Labels)
		}
		byComp[s.Labels["component"]] = s.Value
	}
	if byComp["rr_collections"] != 100 || byComp["result_cache"] != 7 {
		t.Fatalf("samples = %v", byComp)
	}

	// The func series tracks its source on the next scrape.
	val = 250
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), `capacity_bytes{dataset="ba",component="rr_collections"} 250`) {
		t.Fatalf("func gauge did not track source:\n%s", b2.String())
	}
}

func TestOnScrapeHookRuns(t *testing.T) {
	reg := NewRegistry()
	n := 0
	g := reg.Gauge("hooked", "Set by an OnScrape hook.")
	reg.OnScrape(func() { n++; g.Set(float64(n)) })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("hook ran %d times, want 2", n)
	}
	if !strings.Contains(b.String(), "hooked 2") {
		t.Fatalf("hook value not rendered:\n%s", b.String())
	}
}

func TestTraceRingSlowSurvivesWrap(t *testing.T) {
	// Ring smaller than the request count: the slowest traces must
	// remain visible to Slowest even after the recency ring wraps past
	// them (the /v1/trace/slow contract).
	r := NewTraceRing(2)
	mk := func(id string, ms int) {
		tr := NewTrace(id)
		tr.start = tr.start.Add(-time.Duration(ms) * time.Millisecond)
		tr.Finish()
		r.Add(tr)
	}
	mk("slow-1", 500)
	mk("slow-2", 400)
	for i := 0; i < 10; i++ {
		mk("fast", 1)
	}
	if r.Len() != 2 {
		t.Fatalf("ring len = %d", r.Len())
	}
	if _, ok := r.Get("slow-1"); ok {
		t.Fatal("slow-1 should have left the recency ring")
	}
	top := r.Slowest(2)
	if len(top) != 2 || top[0].ID != "slow-1" || top[1].ID != "slow-2" {
		ids := make([]string, len(top))
		for i, s := range top {
			ids[i] = s.ID
		}
		t.Fatalf("slowest after wrap = %v", ids)
	}
	if top[0].ElapsedMs < top[1].ElapsedMs {
		t.Fatalf("not sorted: %v vs %v", top[0].ElapsedMs, top[1].ElapsedMs)
	}
}
