package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestLedgerNilIsInert(t *testing.T) {
	var l *Ledger
	a := l.Account("ds", "rr")
	if a != nil {
		t.Fatal("nil ledger should hand out nil accounts")
	}
	a.Add(5) // nil account must not panic
	a.Set(9)
	if a.Value() != 0 {
		t.Fatal("nil account value")
	}
	l.AccountFunc(func() int64 { return 7 }, "ds", "fn")
	if l.Total() != 0 || l.Sum("ds") != 0 || l.SumComponent("rr") != 0 {
		t.Fatal("nil ledger sums should be 0")
	}
	if snap := l.Snapshot(); snap.Bytes != 0 || len(snap.Children) != 0 {
		t.Fatalf("nil ledger snapshot = %+v", snap)
	}
	l.Each(func([]string, int64) { t.Fatal("Each visited on nil ledger") })
}

func TestLedgerSumsEqualLeaves(t *testing.T) {
	l := NewLedger()
	rrA := l.Account("dsA", "rr_collections")
	cacheA := l.Account("dsA", "result_cache")
	rrB := l.Account("dsB", "rr_collections")
	l.AccountFunc(func() int64 { return 1000 }, "dsB", "csr_snapshots")
	pool := l.Account("(process)", "sampler_pool")

	rrA.Add(100)
	rrA.Add(50)
	rrA.Add(-20) // release
	cacheA.Set(7)
	rrB.Add(300)
	pool.Add(11)

	if got := l.Sum("dsA"); got != 137 {
		t.Fatalf("Sum(dsA) = %d", got)
	}
	if got := l.Sum("dsA", "rr_collections"); got != 130 {
		t.Fatalf("Sum(dsA, rr) = %d", got)
	}
	if got := l.Sum("dsB"); got != 1300 {
		t.Fatalf("Sum(dsB) = %d", got)
	}
	if got := l.Sum("nope"); got != 0 {
		t.Fatalf("Sum(unregistered) = %d", got)
	}
	if got := l.SumComponent("rr_collections"); got != 430 {
		t.Fatalf("SumComponent(rr) = %d", got)
	}
	wantTotal := int64(137 + 1300 + 11)
	if got := l.Total(); got != wantTotal {
		t.Fatalf("Total = %d, want %d", got, wantTotal)
	}

	// Same path returns the same account.
	if l.Account("dsA", "rr_collections") != rrA {
		t.Fatal("Account should be idempotent per path")
	}

	// Snapshot: root bytes equal Total, every interior node equals the
	// sum of its children, children sorted by name.
	snap := l.Snapshot()
	if snap.Bytes != wantTotal {
		t.Fatalf("snapshot root = %d, want %d", snap.Bytes, wantTotal)
	}
	var checkSums func(e LedgerEntry)
	checkSums = func(e LedgerEntry) {
		if len(e.Children) == 0 {
			return
		}
		var sum int64
		for i, c := range e.Children {
			if i > 0 && e.Children[i-1].Name >= c.Name {
				t.Fatalf("children of %s not sorted: %s >= %s", e.Name, e.Children[i-1].Name, c.Name)
			}
			sum += c.Bytes
			checkSums(c)
		}
		if sum != e.Bytes {
			t.Fatalf("interior %s = %d, children sum to %d", e.Name, e.Bytes, sum)
		}
	}
	checkSums(snap)

	// Each visits every leaf exactly once, sorted.
	var paths []string
	var eachTotal int64
	l.Each(func(path []string, bytes int64) {
		paths = append(paths, strings.Join(path, "/"))
		eachTotal += bytes
	})
	want := []string{
		"(process)/sampler_pool",
		"dsA/result_cache", "dsA/rr_collections",
		"dsB/csr_snapshots", "dsB/rr_collections",
	}
	if len(paths) != len(want) {
		t.Fatalf("Each visited %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Each visited %v, want %v", paths, want)
		}
	}
	if eachTotal != wantTotal {
		t.Fatalf("Each total = %d, want %d", eachTotal, wantTotal)
	}
}

func TestLedgerConflictsPanic(t *testing.T) {
	l := NewLedger()
	l.Account("ds", "rr")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("func over account", func() { l.AccountFunc(func() int64 { return 0 }, "ds", "rr") })
	mustPanic("account over interior", func() { l.Account("ds") })
	l.AccountFunc(func() int64 { return 1 }, "ds", "fn")
	mustPanic("account over func", func() { l.Account("ds", "fn") })
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := l.Account("ds", "rr") // all goroutines share one leaf
			for j := 0; j < 1000; j++ {
				a.Add(1)
				_ = l.Total()
			}
		}(i)
	}
	wg.Wait()
	if got := l.Total(); got != 8000 {
		t.Fatalf("total = %d, want 8000", got)
	}
}
