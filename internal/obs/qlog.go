package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// QLogVersion is the schema version stamped into every qlog header.
// Readers must reject files whose header declares a different version
// rather than guess at field semantics.
const QLogVersion = 1

// QLogDataset pins one dataset of the recording server so a replay
// can rebuild an identically-seeded instance.
type QLogDataset struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Seed   uint64 `json:"seed"`
}

// QLogHeader is the first line of a qlog file. It carries everything
// a replayer needs to reconstruct the serving environment: dataset
// specs (with their build seeds), the server's base seed, and the ε
// escalation ladder in force during recording.
type QLogHeader struct {
	Type      string        `json:"type"` // always "header"
	Version   int           `json:"version"`
	StartedAt string        `json:"started_at,omitempty"` // RFC3339, informational only
	Seed      uint64        `json:"seed"`
	EpsLadder []float64     `json:"eps_ladder,omitempty"`
	Datasets  []QLogDataset `json:"datasets"`
}

// QLogRecord is one sampled request shape: enough to re-fire the
// query (dataset, model, k, ε, ℓ, budget, profile hash) plus the
// observed outcome (status, achieved tier/ε, θ, rr reuse counters,
// server-side latency, trace id) for replay comparison.
type QLogRecord struct {
	Type     string  `json:"type"` // always "query"
	OffsetMs float64 `json:"offset_ms"`
	Endpoint string  `json:"endpoint"`
	Dataset  string  `json:"dataset"`
	Model    string  `json:"model,omitempty"`
	K        int     `json:"k,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Ell      float64 `json:"ell,omitempty"`
	// Profile is the hex spec profile-hash for constrained queries
	// (empty for plain top-k influence queries).
	Profile       string  `json:"profile,omitempty"`
	BudgetMs      float64 `json:"budget_ms,omitempty"`
	MinConfidence float64 `json:"min_confidence,omitempty"`

	Status      int     `json:"status"`
	Tier        string  `json:"tier,omitempty"`
	AchievedEps float64 `json:"achieved_eps,omitempty"`
	Theta       int64   `json:"theta,omitempty"`
	RRReused    int64   `json:"rr_reused,omitempty"`
	RRSampled   int64   `json:"rr_sampled,omitempty"`
	RRRepaired  int64   `json:"rr_repaired,omitempty"`
	ServerMs    float64 `json:"server_ms"`
	TraceID     string  `json:"trace_id,omitempty"`
}

// QLogStats summarizes a recorder's lifetime admission decisions.
type QLogStats struct {
	Seen    int64 `json:"seen"`
	Written int64 `json:"written"`
	Dropped int64 `json:"dropped"` // sampled out or over the record cap
}

// QLog is a bounded, sampled query flight recorder. Every request
// shape the server answers is offered via Record; the recorder keeps
// every N-th (sample) up to a record cap (max), then drops, so the
// file size and per-request overhead stay bounded no matter the
// traffic. Offsets are stamped relative to recorder creation so a
// replay can reproduce the arrival process open-loop.
//
// A nil *QLog is inert, so call sites need no enablement checks.
type QLog struct {
	mu      sync.Mutex
	w       *bufio.Writer
	closer  io.Closer
	start   time.Time
	sample  int64
	max     int64
	seen    int64
	written int64
	dropped int64
	err     error
}

// NewQLog writes the header to w and returns a recorder. sample <= 1
// keeps every record; max <= 0 means unbounded. The header's Type,
// Version, and StartedAt fields are stamped by the recorder.
func NewQLog(w io.Writer, header QLogHeader, sample, max int) (*QLog, error) {
	now := time.Now()
	header.Type = "header"
	header.Version = QLogVersion
	header.StartedAt = now.UTC().Format(time.RFC3339)
	bw := bufio.NewWriter(w)
	enc, err := json.Marshal(header)
	if err != nil {
		return nil, fmt.Errorf("qlog header: %w", err)
	}
	if _, err := bw.Write(append(enc, '\n')); err != nil {
		return nil, fmt.Errorf("qlog header: %w", err)
	}
	q := &QLog{w: bw, start: now, sample: int64(sample), max: int64(max)}
	if c, ok := w.(io.Closer); ok {
		q.closer = c
	}
	if q.sample < 1 {
		q.sample = 1
	}
	return q, nil
}

// OpenQLog creates (truncating) path and returns a recorder over it.
func OpenQLog(path string, header QLogHeader, sample, max int) (*QLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("qlog: %w", err)
	}
	q, err := NewQLog(f, header, sample, max)
	if err != nil {
		f.Close()
		return nil, err
	}
	return q, nil
}

// Record offers one request shape to the recorder. The record's Type
// and OffsetMs are stamped here; sampling and the record cap decide
// whether it is written. Write errors are sticky and surfaced by
// Close rather than per call.
func (q *QLog) Record(rec QLogRecord) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seen++
	if (q.seen-1)%q.sample != 0 || (q.max > 0 && q.written >= q.max) || q.err != nil {
		q.dropped++
		return
	}
	rec.Type = "query"
	rec.OffsetMs = float64(time.Since(q.start)) / float64(time.Millisecond)
	enc, err := json.Marshal(rec)
	if err != nil {
		q.err = err
		q.dropped++
		return
	}
	if _, err := q.w.Write(append(enc, '\n')); err != nil {
		q.err = err
		q.dropped++
		return
	}
	q.written++
}

// Stats reports lifetime admission counts.
func (q *QLog) Stats() QLogStats {
	if q == nil {
		return QLogStats{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return QLogStats{Seen: q.seen, Written: q.written, Dropped: q.dropped}
}

// Close flushes buffered records and closes the underlying file (when
// the recorder owns one), returning the first sticky write error.
func (q *QLog) Close() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.w.Flush(); err != nil && q.err == nil {
		q.err = err
	}
	if q.closer != nil {
		if err := q.closer.Close(); err != nil && q.err == nil {
			q.err = err
		}
		q.closer = nil
	}
	return q.err
}

// ErrTornTail reports that a qlog file ended mid-record — the writer
// crashed (or was killed) with a partial line buffered. The header and
// records returned alongside it are complete and usable; only the torn
// final line was discarded. Callers distinguish it with errors.Is and
// decide whether a partial read is acceptable.
var ErrTornTail = errors.New("qlog: file ends mid-record (torn tail)")

// ReadQLog parses a qlog stream: one header line followed by query
// records. Lines of unknown type are skipped (forward compatibility);
// a missing or version-mismatched header is an error. A final line that
// fails to parse is treated as crash truncation: every complete record
// is returned together with an error wrapping ErrTornTail. The same
// damage anywhere but the last line is corruption and stays a hard
// error (with nil records), as does a torn header.
func ReadQLog(r io.Reader) (QLogHeader, []QLogRecord, error) {
	var header QLogHeader
	var records []QLogRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sawHeader := false
	line := 0
	var torn error // parse failure pending confirmation that it was the last line
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if torn != nil {
			return header, nil, torn
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			torn = fmt.Errorf("qlog line %d: %w", line, err)
			continue
		}
		if !sawHeader {
			if probe.Type != "header" {
				return header, nil, fmt.Errorf("qlog line %d: want header, got %q", line, probe.Type)
			}
			if err := json.Unmarshal(raw, &header); err != nil {
				return header, nil, fmt.Errorf("qlog header: %w", err)
			}
			if header.Version != QLogVersion {
				return header, nil, fmt.Errorf("qlog version %d, want %d", header.Version, QLogVersion)
			}
			sawHeader = true
			continue
		}
		if probe.Type != "query" {
			continue
		}
		var rec QLogRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			torn = fmt.Errorf("qlog line %d: %w", line, err)
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return header, nil, fmt.Errorf("qlog: %w", err)
	}
	if torn != nil {
		if !sawHeader {
			return header, nil, torn // a torn header leaves nothing to recover
		}
		return header, records, fmt.Errorf("%w: %v", ErrTornTail, torn)
	}
	if !sawHeader {
		return header, nil, fmt.Errorf("qlog: empty file (no header)")
	}
	return header, records, nil
}
