package obs

import (
	"sync"
	"time"
)

// WindowCounter counts events into per-second slots over a fixed
// horizon so callers can ask "how many in the last N seconds" without
// retaining per-event state. Slots are a ring indexed by unix second
// mod horizon; a slot stamped with a stale second is reset before
// reuse, so expiry is lazy and Add/Sum are O(1)/O(horizon).
//
// A nil *WindowCounter is inert.
type WindowCounter struct {
	mu    sync.Mutex
	now   func() time.Time // injectable for tests
	slots []int64
	times []int64 // unix second each slot was last written
}

// NewWindowCounter returns a counter able to answer Sum for windows
// up to horizon (rounded up to a whole second, minimum 1s).
func NewWindowCounter(horizon time.Duration) *WindowCounter {
	secs := int((horizon + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &WindowCounter{
		now:   time.Now,
		slots: make([]int64, secs),
		times: make([]int64, secs),
	}
}

// Add records n events at the current second.
func (w *WindowCounter) Add(n int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	sec := w.now().Unix()
	i := int(sec % int64(len(w.slots)))
	if w.times[i] != sec {
		w.slots[i] = 0
		w.times[i] = sec
	}
	w.slots[i] += n
}

// Sum returns the event count over the trailing window (clamped to
// the counter's horizon). The current, still-open second is included.
func (w *WindowCounter) Sum(window time.Duration) int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	secs := int64((window + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > int64(len(w.slots)) {
		secs = int64(len(w.slots))
	}
	now := w.now().Unix()
	cutoff := now - secs + 1
	var total int64
	for i, t := range w.times {
		if t >= cutoff && t <= now {
			total += w.slots[i]
		}
	}
	return total
}

// Burn-rate windows and thresholds, following the multi-window
// burn-rate alerting pattern: a fast window catches sharp burns, a
// slow window stops flapping once the incident ends.
const (
	BurnFastWindow = 5 * time.Minute
	BurnSlowWindow = time.Hour

	// burnWarn is a burn rate of exactly 1.0 — consuming budget at the
	// rate that exhausts it precisely at the end of the SLO period.
	burnWarn = 1.0
	// burnCriticalFast on the 5m window means the whole monthly-style
	// budget would be gone in ~1/10 of the period; paired with slow
	// confirmation it is the page-now threshold.
	burnCriticalFast = 10.0
)

// BudgetState is the coarse health of an error budget.
type BudgetState string

const (
	BudgetOK       BudgetState = "ok"
	BudgetWarn     BudgetState = "warn"
	BudgetCritical BudgetState = "critical"
)

// ErrorBudget tracks an SLO error budget with rolling multi-window
// burn rates. objective is the tolerated bad fraction (e.g. 0.01 for
// a 99% SLO); burn rate over a window is
// (bad/total)/objective — 1.0 means burning exactly on budget.
//
// A nil *ErrorBudget is inert.
type ErrorBudget struct {
	objective float64
	total     *WindowCounter
	bad       *WindowCounter
}

// NewErrorBudget returns a budget for the given objective (bad
// fraction tolerated; out-of-range values fall back to 0.01).
func NewErrorBudget(objective float64) *ErrorBudget {
	if objective <= 0 || objective >= 1 {
		objective = 0.01
	}
	return &ErrorBudget{
		objective: objective,
		total:     NewWindowCounter(BurnSlowWindow),
		bad:       NewWindowCounter(BurnSlowWindow),
	}
}

// Objective returns the tolerated bad fraction.
func (b *ErrorBudget) Objective() float64 {
	if b == nil {
		return 0
	}
	return b.objective
}

// Observe records one request outcome.
func (b *ErrorBudget) Observe(bad bool) {
	if b == nil {
		return
	}
	b.total.Add(1)
	if bad {
		b.bad.Add(1)
	}
}

// Burn returns the burn rate over the trailing window; 0 when the
// window saw no traffic (no evidence of burning).
func (b *ErrorBudget) Burn(window time.Duration) float64 {
	if b == nil {
		return 0
	}
	total := b.total.Sum(window)
	if total == 0 {
		return 0
	}
	badFrac := float64(b.bad.Sum(window)) / float64(total)
	return badFrac / b.objective
}

// State classifies the budget:
//
//   - critical: the fast window burns ≥10× budget AND the slow window
//     confirms (>1×) — degrade now, before the budget is gone;
//   - warn: either window burns faster than budget;
//   - ok: otherwise.
func (b *ErrorBudget) State() BudgetState {
	if b == nil {
		return BudgetOK
	}
	fast := b.Burn(BurnFastWindow)
	slow := b.Burn(BurnSlowWindow)
	switch {
	case fast >= burnCriticalFast && slow > burnWarn:
		return BudgetCritical
	case fast > burnWarn || slow > burnWarn:
		return BudgetWarn
	default:
		return BudgetOK
	}
}

// BudgetWindowSnapshot is one window's view of an error budget.
type BudgetWindowSnapshot struct {
	Window      string  `json:"window"`
	Total       int64   `json:"total"`
	Bad         int64   `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// BudgetSnapshot is a point-in-time view of an error budget across
// its standard windows, JSON-ready for /v1/stats and /v1/health/slo.
type BudgetSnapshot struct {
	Objective float64                `json:"objective"`
	State     BudgetState            `json:"state"`
	Windows   []BudgetWindowSnapshot `json:"windows"`
}

// Snapshot reports both standard windows plus the derived state.
func (b *ErrorBudget) Snapshot() BudgetSnapshot {
	if b == nil {
		return BudgetSnapshot{State: BudgetOK}
	}
	snap := BudgetSnapshot{Objective: b.objective, State: b.State()}
	for _, w := range []struct {
		name string
		d    time.Duration
	}{{"5m", BurnFastWindow}, {"1h", BurnSlowWindow}} {
		total := b.total.Sum(w.d)
		bad := b.bad.Sum(w.d)
		ws := BudgetWindowSnapshot{Window: w.name, Total: total, Bad: bad}
		if total > 0 {
			ws.BadFraction = float64(bad) / float64(total)
			ws.BurnRate = ws.BadFraction / b.objective
		}
		snap.Windows = append(snap.Windows, ws)
	}
	return snap
}
