package obs

import (
	"testing"
	"time"
)

// fakeClock drives WindowCounter time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func withClock(w *WindowCounter, c *fakeClock) { w.now = c.now }
func budgetClock(b *ErrorBudget, c *fakeClock) { withClock(b.total, c); withClock(b.bad, c) }

func TestWindowCounter(t *testing.T) {
	var nilW *WindowCounter
	nilW.Add(3)
	if nilW.Sum(time.Minute) != 0 {
		t.Fatal("nil window counter")
	}

	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	w := NewWindowCounter(10 * time.Second)
	withClock(w, clk)

	w.Add(2)
	clk.advance(1 * time.Second)
	w.Add(3)
	if got := w.Sum(1 * time.Second); got != 3 {
		t.Fatalf("1s sum = %d", got)
	}
	if got := w.Sum(2 * time.Second); got != 5 {
		t.Fatalf("2s sum = %d", got)
	}
	// A window longer than the horizon clamps.
	if got := w.Sum(time.Hour); got != 5 {
		t.Fatalf("clamped sum = %d", got)
	}

	// Advance past the horizon: old slots expire lazily.
	clk.advance(10 * time.Second)
	if got := w.Sum(10 * time.Second); got != 0 {
		t.Fatalf("after expiry sum = %d", got)
	}
	w.Add(7)
	if got := w.Sum(10 * time.Second); got != 7 {
		t.Fatalf("fresh sum = %d", got)
	}

	// Slot reuse: landing on the same ring index as a stale second must
	// reset the slot, not accumulate into it.
	clk.advance(10 * time.Second) // same index as the Add(7) second
	w.Add(1)
	if got := w.Sum(time.Second); got != 1 {
		t.Fatalf("reused slot sum = %d", got)
	}
}

func TestErrorBudgetBurn(t *testing.T) {
	var nilB *ErrorBudget
	nilB.Observe(true)
	if nilB.Burn(time.Minute) != 0 || nilB.State() != BudgetOK {
		t.Fatal("nil budget should be inert and ok")
	}

	clk := &fakeClock{t: time.Unix(2_000_000, 0)}
	b := NewErrorBudget(0.01) // 99% SLO
	budgetClock(b, clk)

	if b.Objective() != 0.01 {
		t.Fatalf("objective = %v", b.Objective())
	}
	// No traffic: no evidence of burning.
	if b.Burn(BurnFastWindow) != 0 || b.State() != BudgetOK {
		t.Fatal("idle budget should be ok")
	}

	// 1000 requests, 5 bad: bad fraction 0.5% = half the budget.
	for i := 0; i < 1000; i++ {
		b.Observe(i < 5)
		clk.advance(100 * time.Millisecond)
	}
	if burn := b.Burn(BurnSlowWindow); burn != 0.5 {
		t.Fatalf("burn = %v, want 0.5", burn)
	}
	if b.State() != BudgetOK {
		t.Fatalf("state = %s, want ok", b.State())
	}

	// Age the good traffic out of the fast window (it stays in the 1h
	// window), then burst failures: 100 requests, 20 bad → fast-window
	// burn 20× objective, slow window confirms (>1×) → critical.
	clk.advance(10 * time.Minute)
	for i := 0; i < 100; i++ {
		b.Observe(i%5 == 0)
		clk.advance(10 * time.Millisecond)
	}
	if fast := b.Burn(BurnFastWindow); fast < burnCriticalFast {
		t.Fatalf("fast burn = %v, want >= %v", fast, burnCriticalFast)
	}
	if b.State() != BudgetCritical {
		t.Fatalf("state = %s, want critical", b.State())
	}

	snap := b.Snapshot()
	if snap.Objective != 0.01 || snap.State != BudgetCritical || len(snap.Windows) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Windows[0].Window != "5m" || snap.Windows[1].Window != "1h" {
		t.Fatalf("windows = %+v", snap.Windows)
	}
	for _, w := range snap.Windows {
		if w.Total == 0 || w.Bad == 0 || w.BurnRate <= 0 {
			t.Fatalf("window %s = %+v", w.Window, w)
		}
	}

	// The burst ages out of the 5m window → back below critical.
	clk.advance(6 * time.Minute)
	if b.Burn(BurnFastWindow) != 0 {
		t.Fatal("fast window should have drained")
	}
	if b.State() == BudgetCritical {
		t.Fatal("state should de-escalate once the fast window drains")
	}
}

func TestErrorBudgetWarn(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3_000_000, 0)}
	b := NewErrorBudget(0.01)
	budgetClock(b, clk)
	// 100 requests, 2 bad: 2% bad = 2× burn on both windows → warn,
	// but nowhere near the 10× fast threshold → not critical.
	for i := 0; i < 100; i++ {
		b.Observe(i%50 == 0)
		clk.advance(time.Second)
	}
	if st := b.State(); st != BudgetWarn {
		t.Fatalf("state = %s, want warn", st)
	}
}

func TestErrorBudgetBadObjectiveFallsBack(t *testing.T) {
	for _, v := range []float64{0, -1, 1, 2} {
		if b := NewErrorBudget(v); b.Objective() != 0.01 {
			t.Fatalf("objective(%v) = %v, want 0.01 fallback", v, b.Objective())
		}
	}
}
