// Package obs is the observability substrate of the query server:
// per-request phase traces, a metrics registry with Prometheus text
// exposition, and a bounded ring of completed traces. It depends only on
// the standard library, so every layer of the pipeline — diffusion
// sampling, evolve repair, tim's phases, the tiered answer path — can
// emit spans without import cycles or new dependencies.
//
// The design is allocation-conscious and nil-safe end to end: a request
// that carries no *Trace pays one context lookup per phase and nothing
// else. FromContext returns a nil *Trace for untraced contexts, StartSpan
// on a nil *Trace returns an inert Span, and every Span method no-ops on
// the inert value — so instrumented code never branches on "is tracing
// on", and the untraced hot path stays free of locks, clocks, and
// allocations (see DESIGN.md §12 for the overhead argument).
package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or trace. Values should be
// JSON-encodable scalars (string, bool, int64, float64): they are
// rendered verbatim into /v1/trace responses.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// spanRecord is the stored form of one span.
type spanRecord struct {
	name  string
	start time.Duration // offset from trace start
	dur   time.Duration
	done  bool
	attrs []Attr
}

// Trace records the typed spans of one request. All methods are safe for
// concurrent use (batch items and parallel phases may emit spans
// concurrently) and safe on a nil receiver, which is the untraced fast
// path.
type Trace struct {
	mu      sync.Mutex
	id      string
	start   time.Time
	spans   []spanRecord
	attrs   []Attr
	done    bool
	elapsed time.Duration
}

// NewTrace starts a trace identified by id (the request id).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now(), spans: make([]spanRecord, 0, 8)}
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetAttr annotates the trace itself (endpoint, dataset, tier, status —
// the labels /v1/trace renders at the top level). A repeated key
// overwrites the earlier value.
func (t *Trace) SetAttr(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.attrs {
		if t.attrs[i].Key == key {
			t.attrs[i].Value = value
			return
		}
	}
	t.attrs = append(t.attrs, Attr{Key: key, Value: value})
}

// StartSpan opens a span. The returned handle is a small value (no
// allocation); call End to close it and Attr to annotate it. On a nil
// trace the handle is inert and every method no-ops.
func (t *Trace) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, spanRecord{name: name, start: time.Since(t.start)})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// Finish freezes the trace: records total elapsed time and closes any
// span an error path left open (its duration runs to the trace end, which
// is the truthful reading — the phase did not complete on its own).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.elapsed = time.Since(t.start)
	for i := range t.spans {
		if !t.spans[i].done {
			t.spans[i].dur = t.elapsed - t.spans[i].start
			t.spans[i].done = true
		}
	}
}

// ElapsedMs is the total traced duration in milliseconds; before Finish
// it reports the live elapsed time.
func (t *Trace) ElapsedMs() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return durMs(t.elapsed)
	}
	return durMs(time.Since(t.start))
}

// Span is a by-value handle on one open span of a trace. The zero value
// is inert: all methods no-op, which is what keeps instrumented code
// branch-free on the untraced path.
type Span struct {
	t   *Trace
	idx int
}

// Attr annotates the span. It returns the handle so annotations chain.
func (s Span) Attr(key string, value any) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
	return s
}

// End closes the span, recording its duration. Ending twice keeps the
// first duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if r := &s.t.spans[s.idx]; !r.done {
		r.dur = time.Since(s.t.start) - r.start
		r.done = true
	}
	s.t.mu.Unlock()
}

// ctxKey carries the *Trace through a context.
type ctxKey struct{}

// WithTrace attaches t to ctx; a nil t returns ctx unchanged, so callers
// can thread "maybe a trace" without branching.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — the untraced fast
// path. A nil ctx is tolerated (deep library code sometimes holds one).
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace (inert when untraced).
// This is the one-liner instrumented code uses:
//
//	defer obs.StartSpan(ctx, "select").End()
func StartSpan(ctx context.Context, name string) Span {
	return FromContext(ctx).StartSpan(name)
}

// TraceSnapshot is the JSON rendering of a completed trace, served by
// GET /v1/trace/{id} and /v1/trace/slow.
type TraceSnapshot struct {
	ID        string         `json:"id"`
	StartedAt time.Time      `json:"started_at"`
	ElapsedMs float64        `json:"elapsed_ms"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Spans     []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span of a TraceSnapshot. StartMs is the offset from
// the trace start.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartMs    float64        `json:"start_ms"`
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Snapshot renders the trace. It is valid on live traces (spans still
// open render with their running duration) but is normally called on
// finished ones from the ring.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := t.elapsed
	if !t.done {
		elapsed = time.Since(t.start)
	}
	snap := TraceSnapshot{
		ID:        t.id,
		StartedAt: t.start,
		ElapsedMs: durMs(elapsed),
		Spans:     make([]SpanSnapshot, len(t.spans)),
	}
	if len(t.attrs) > 0 {
		snap.Attrs = attrMap(t.attrs)
	}
	for i, r := range t.spans {
		dur := r.dur
		if !r.done {
			dur = elapsed - r.start
		}
		snap.Spans[i] = SpanSnapshot{
			Name:       r.name,
			StartMs:    durMs(r.start),
			DurationMs: durMs(dur),
		}
		if len(r.attrs) > 0 {
			snap.Spans[i].Attrs = attrMap(r.attrs)
		}
	}
	return snap
}

// SpanDurations reports (name, milliseconds) for every span, via f — the
// hook the server uses to feed phase histograms from finished traces.
func (t *Trace) SpanDurations(f func(name string, ms float64)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.spans {
		if r.done {
			f(r.name, durMs(r.dur))
		}
	}
}

func attrMap(attrs []Attr) map[string]any {
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func durMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
