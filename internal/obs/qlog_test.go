package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestQLogRoundTrip(t *testing.T) {
	var nilQ *QLog
	nilQ.Record(QLogRecord{}) // inert
	if nilQ.Stats() != (QLogStats{}) || nilQ.Close() != nil {
		t.Fatal("nil qlog should be inert")
	}

	var buf strings.Builder
	header := QLogHeader{
		Seed:      42,
		EpsLadder: []float64{0.1, 0.2, 0.5},
		Datasets: []QLogDataset{
			{Name: "ba", Source: "ba:300:3", Seed: 7},
			{Name: "ring", Source: "file:ring.txt", Seed: 7},
		},
	}
	q, err := NewQLog(&buf, header, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []QLogRecord{
		{Endpoint: "maximize", Dataset: "ba", Model: "ic", K: 5, Epsilon: 0.2, Ell: 1,
			BudgetMs: 25, Status: 200, Tier: "ris", AchievedEps: 0.2, Theta: 12345,
			RRReused: 100, RRSampled: 45, ServerMs: 3.5, TraceID: "req-1"},
		{Endpoint: "maximize", Dataset: "ring", Model: "lt", K: 3, Epsilon: 0.3,
			Status: 200, Tier: "fast", Profile: "deadbeef", ServerMs: 0.1},
		{Endpoint: "batch", Dataset: "ba", Model: "ic", K: 2, Status: 503, Tier: "shed"},
	}
	for _, r := range recs {
		q.Record(r)
	}
	if st := q.Stats(); st.Seen != 3 || st.Written != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	gotHeader, gotRecs, err := ReadQLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHeader.Version != QLogVersion || gotHeader.Seed != 42 {
		t.Fatalf("header = %+v", gotHeader)
	}
	if len(gotHeader.Datasets) != 2 || gotHeader.Datasets[0].Source != "ba:300:3" {
		t.Fatalf("datasets = %+v", gotHeader.Datasets)
	}
	if len(gotHeader.EpsLadder) != 3 || gotHeader.EpsLadder[2] != 0.5 {
		t.Fatalf("ladder = %v", gotHeader.EpsLadder)
	}
	if len(gotRecs) != 3 {
		t.Fatalf("records = %d", len(gotRecs))
	}
	for i, got := range gotRecs {
		want := recs[i]
		if got.Type != "query" || got.OffsetMs < 0 {
			t.Fatalf("record %d stamping = %+v", i, got)
		}
		// Normalize recorder-stamped fields, then the rest must round-trip.
		got.Type, got.OffsetMs = "", 0
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestQLogSamplingAndCap(t *testing.T) {
	var buf strings.Builder
	q, err := NewQLog(&buf, QLogHeader{}, 3, 2) // every 3rd, max 2 records
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q.Record(QLogRecord{Endpoint: "maximize", K: i})
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Seen != 10 || st.Written != 2 || st.Dropped != 8 {
		t.Fatalf("stats = %+v", st)
	}
	_, recs, err := ReadQLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Every 3rd starting at the first: K=0, K=3 (then the cap bites).
	if len(recs) != 2 || recs[0].K != 0 || recs[1].K != 3 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestReadQLogRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no header":    `{"type":"query","endpoint":"maximize"}` + "\n",
		"bad version":  `{"type":"header","version":999}` + "\n",
		"garbage line": `{"type":"header","version":1}` + "\nnot json\n",
	}
	for name, text := range cases {
		if _, _, err := ReadQLog(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadQLogSkipsUnknownTypes(t *testing.T) {
	text := `{"type":"header","version":1}
{"type":"annotation","note":"future extension"}
{"type":"query","endpoint":"maximize","dataset":"ba","status":200}
`
	_, recs, err := ReadQLog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Dataset != "ba" {
		t.Fatalf("records = %+v", recs)
	}
}

// TestReadQLogTornTail sweeps every byte-level truncation of a valid
// qlog — the file a crashed recorder leaves behind — and asserts the
// reader returns every complete record with ErrTornTail when the final
// line is cut mid-record, succeeds at clean line boundaries, and treats
// a torn header as a hard error (nothing is recoverable without it).
func TestReadQLogTornTail(t *testing.T) {
	var buf strings.Builder
	q, err := NewQLog(&buf, QLogHeader{Seed: 1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		q.Record(QLogRecord{Endpoint: "maximize", K: i + 1, Status: 200})
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.String()

	var nl []int
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			nl = append(nl, i)
		}
	}
	if len(nl) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(nl))
	}
	// Clean cuts: at a line's closing byte (the final line may lack its
	// newline) or just after its newline. Everything else tears a line.
	clean := map[int]bool{}
	for _, p := range nl {
		clean[p] = true
		clean[p+1] = true
	}

	for cut := 0; cut <= len(data); cut++ {
		h, recs, err := ReadQLog(strings.NewReader(data[:cut]))
		switch {
		case cut == 0:
			if err == nil || errors.Is(err, ErrTornTail) {
				t.Fatalf("cut=0: empty file must be a hard error, got %v", err)
			}
		case cut < nl[0]:
			if err == nil || errors.Is(err, ErrTornTail) {
				t.Fatalf("cut=%d: torn header must be a hard error, got %v", cut, err)
			}
		default:
			want := 0
			for _, p := range nl[1:] {
				if p <= cut {
					want++
				}
			}
			if clean[cut] {
				if err != nil {
					t.Fatalf("cut=%d: clean boundary errored: %v", cut, err)
				}
			} else if !errors.Is(err, ErrTornTail) {
				t.Fatalf("cut=%d: want ErrTornTail, got %v", cut, err)
			}
			if len(recs) != want {
				t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(recs), want)
			}
			if h.Seed != 1 {
				t.Fatalf("cut=%d: header %+v", cut, h)
			}
			for i, r := range recs {
				if r.K != i+1 {
					t.Fatalf("cut=%d: record %d = %+v", cut, i, r)
				}
			}
		}
	}
}

// TestReadQLogMidFileCorruptionIsFatal: damage that is NOT at the tail
// (a mangled line with valid lines after it) is corruption, not crash
// truncation, and must stay a hard error with no partial result.
func TestReadQLogMidFileCorruptionIsFatal(t *testing.T) {
	text := `{"type":"header","version":1}
{"type":"query","endpoint":"maximize","status":200}
{"type":"query","endpo
{"type":"query","endpoint":"maximize","status":200}
`
	_, recs, err := ReadQLog(strings.NewReader(text))
	if err == nil || errors.Is(err, ErrTornTail) {
		t.Fatalf("want hard error, got %v", err)
	}
	if recs != nil {
		t.Fatalf("hard error must not return partial records, got %+v", recs)
	}
}
