package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE lines, series sorted by label values, histograms
// expanded into cumulative _bucket samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, hook := range hooks {
		hook()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		all := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			all = append(all, s)
		}
		f.mu.Unlock()
		if len(all) == 0 {
			continue
		}
		sort.Slice(all, func(i, j int) bool {
			return labelKeyLess(all[i].labelValues, all[j].labelValues)
		})

		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range all {
			switch {
			case s.h != nil:
				writeHistogram(&b, f, s)
			case s.c != nil:
				writeSample(&b, f.name, f.labelNames, s.labelValues, "", "", s.c.Value())
			case s.g != nil:
				writeSample(&b, f.name, f.labelNames, s.labelValues, "", "", s.g.Value())
			case s.fn != nil:
				writeSample(&b, f.name, f.labelNames, s.labelValues, "", "", s.fn())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func labelKeyLess(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func writeHistogram(b *strings.Builder, f *family, s *series) {
	snap := s.h.Snapshot()
	for i, bound := range snap.Bounds {
		writeSample(b, f.name+"_bucket", f.labelNames, s.labelValues, "le", formatBound(bound), float64(snap.Cumulative[i]))
	}
	writeSample(b, f.name+"_bucket", f.labelNames, s.labelValues, "le", "+Inf", float64(snap.Count))
	writeSample(b, f.name+"_sum", f.labelNames, s.labelValues, "", "", snap.Sum)
	writeSample(b, f.name+"_count", f.labelNames, s.labelValues, "", "", float64(snap.Count))
}

// writeSample renders one sample line. extraKey/extraVal append a
// trailing label (the histogram "le" bound) after the family's own
// labels.
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, extraKey, extraVal string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value: %g covers integers and floats, and
// the special IEEE values use Prometheus's spellings.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP string per the exposition format (backslash
// and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
