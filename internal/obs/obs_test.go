package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatalf("nil trace ID = %q", tr.ID())
	}
	sp := tr.StartSpan("x")
	sp.Attr("k", 1)
	sp.End()
	tr.SetAttr("k", 1)
	tr.Finish()
	if tr.ElapsedMs() != 0 {
		t.Fatalf("nil trace elapsed = %v", tr.ElapsedMs())
	}
	snap := tr.Snapshot()
	if snap.ID != "" || len(snap.Spans) != 0 {
		t.Fatalf("nil trace snapshot = %+v", snap)
	}
	tr.SpanDurations(func(string, float64) { t.Fatal("SpanDurations visited on nil trace") })

	// Context plumbing: nil trace attaches as a no-op, missing trace reads
	// as nil, nil ctx is tolerated.
	ctx := context.Background()
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("WithTrace(nil) should return ctx unchanged")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare ctx should be nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) should be nil")
	}
	StartSpan(ctx, "y").End() // must not panic
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTrace("req-1")
	tr.SetAttr("endpoint", "maximize")
	tr.SetAttr("endpoint", "batch") // overwrite, not duplicate

	s1 := tr.StartSpan("plan").Attr("tier", "ris").Attr("epsilon", 0.2)
	time.Sleep(2 * time.Millisecond)
	s1.End()
	s2 := tr.StartSpan("select")
	_ = s2 // left open: Finish must close it
	tr.Finish()
	tr.Finish() // idempotent

	snap := tr.Snapshot()
	if snap.ID != "req-1" {
		t.Fatalf("id = %q", snap.ID)
	}
	if got := snap.Attrs["endpoint"]; got != "batch" {
		t.Fatalf("attrs = %v", snap.Attrs)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if snap.Spans[0].Name != "plan" || snap.Spans[0].DurationMs <= 0 {
		t.Fatalf("plan span = %+v", snap.Spans[0])
	}
	if snap.Spans[0].Attrs["epsilon"] != 0.2 {
		t.Fatalf("plan attrs = %v", snap.Spans[0].Attrs)
	}
	if snap.Spans[1].Name != "select" || snap.Spans[1].DurationMs < 0 {
		t.Fatalf("select span = %+v", snap.Spans[1])
	}
	if snap.ElapsedMs <= 0 || tr.ElapsedMs() != snap.ElapsedMs {
		t.Fatalf("elapsed = %v vs %v", snap.ElapsedMs, tr.ElapsedMs())
	}

	var names []string
	tr.SpanDurations(func(name string, ms float64) {
		names = append(names, name)
		if ms < 0 {
			t.Fatalf("negative span duration for %s", name)
		}
	})
	if len(names) != 2 || names[0] != "plan" || names[1] != "select" {
		t.Fatalf("SpanDurations visited %v", names)
	}
}

func TestTraceThroughContext(t *testing.T) {
	tr := NewTrace("ctx-1")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext should return the attached trace")
	}
	StartSpan(ctx, "phase").End()
	tr.Finish()
	if n := len(tr.Snapshot().Spans); n != 1 {
		t.Fatalf("spans = %d", n)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.StartSpan("w").Attr("i", i).End()
			}
		}(i)
	}
	wg.Wait()
	tr.Finish()
	if n := len(tr.Snapshot().Spans); n != 400 {
		t.Fatalf("spans = %d, want 400", n)
	}
}

func TestTraceRing(t *testing.T) {
	if NewTraceRing(0) != nil || NewTraceRing(-1) != nil {
		t.Fatal("non-positive capacity should return nil ring")
	}
	var nilRing *TraceRing
	nilRing.Add(NewTrace("x")) // must not panic
	if _, ok := nilRing.Get("x"); ok {
		t.Fatal("nil ring should miss")
	}
	if nilRing.Slowest(3) != nil || nilRing.Len() != 0 {
		t.Fatal("nil ring should be empty")
	}

	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i))
		tr.Finish()
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if _, ok := r.Get("t0"); ok {
		t.Fatal("t0 should have been evicted")
	}
	if _, ok := r.Get("t4"); !ok {
		t.Fatal("t4 should be retained")
	}

	// Repeated ids: newest wins, and evicting the older duplicate must not
	// unmap the newer one.
	r2 := NewTraceRing(2)
	a := NewTrace("dup")
	a.Finish()
	b := NewTrace("dup")
	b.Finish()
	r2.Add(a)
	r2.Add(b)
	c := NewTrace("other")
	c.Finish()
	r2.Add(c) // evicts a
	if snap, ok := r2.Get("dup"); !ok || snap.ID != "dup" {
		t.Fatal("newer dup should survive eviction of the older one")
	}
}

func TestTraceRingSlowest(t *testing.T) {
	r := NewTraceRing(10)
	durs := []time.Duration{3 * time.Millisecond, 1 * time.Millisecond, 5 * time.Millisecond}
	for i, d := range durs {
		tr := NewTrace(fmt.Sprintf("s%d", i))
		tr.start = tr.start.Add(-d) // backdate instead of sleeping
		tr.Finish()
		r.Add(tr)
	}
	top := r.Slowest(2)
	if len(top) != 2 || top[0].ID != "s2" || top[1].ID != "s0" {
		ids := make([]string, len(top))
		for i, s := range top {
			ids[i] = s.ID
		}
		t.Fatalf("slowest = %v", ids)
	}
	if top[0].ElapsedMs < top[1].ElapsedMs {
		t.Fatalf("not sorted: %v", top)
	}
	if got := r.Slowest(100); len(got) != 3 {
		t.Fatalf("slowest(100) = %d traces", len(got))
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter // zero value usable
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v", c.Value())
	}
	if c.Int() != 3 {
		t.Fatalf("counter int = %v", c.Int())
	}
	var nc *Counter
	nc.Inc() // nil-safe
	if nc.Value() != 0 {
		t.Fatal("nil counter")
	}

	var g Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.SetMax(2)
	if g.Value() != 3 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("SetMax = %v", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	snap := h.Snapshot()
	// le=1: {0.5, 1}; le=5: +{3}; le=10: +{7}; +Inf: +{100}
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if snap.Cumulative[i] != w {
			t.Fatalf("cumulative = %v, want %v", snap.Cumulative, want)
		}
	}
	if snap.Count != 5 || snap.Sum != 111.5 {
		t.Fatalf("count=%d sum=%v", snap.Count, snap.Sum)
	}
	if NewHistogram(nil).bounds[0] != LatencyBuckets[0] {
		t.Fatal("nil bounds should select LatencyBuckets")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.").Add(3)
	rv := r.CounterVec("errs_total", "Errors by endpoint.", "endpoint")
	rv.With("maximize").Inc()
	rv.With("spread").Add(2)
	r.Gauge("in_flight", "In-flight requests.").Set(4)
	r.Histogram("latency_ms", "Latency.", []float64{1, 10}).Observe(0.5)
	hv := r.HistogramVec("phase_ms", "Phase latency.", []float64{1, 10}, "phase")
	hv.With("plan").Observe(5)
	hv.With("plan").Observe(50)
	r.CounterFunc("fn_total", "Func-backed counter.", func() float64 { return 42 })
	r.GaugeFunc("fn_gauge", "Func-backed gauge.", func() float64 { return 1.5 })
	r.GaugeVec("tier_max", "Max by tier.", "tier").With("fast").SetMax(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("self-rendered output failed to parse: %v\n%s", err, text)
	}
	if errs := Lint(fams); len(errs) != 0 {
		t.Fatalf("lint errors: %v\n%s", errs, text)
	}

	checks := map[string]float64{
		"requests_total": 3, "in_flight": 4, "fn_total": 42, "fn_gauge": 1.5,
	}
	for name, want := range checks {
		f := fams[name]
		if f == nil {
			t.Fatalf("missing family %s\n%s", name, text)
		}
		if f.Samples[0].Value != want {
			t.Fatalf("%s = %v, want %v", name, f.Samples[0].Value, want)
		}
	}
	ev := fams["errs_total"]
	if ev == nil || len(ev.Samples) != 2 {
		t.Fatalf("errs_total = %+v", ev)
	}
	byEp := map[string]float64{}
	for _, s := range ev.Samples {
		byEp[s.Labels["endpoint"]] = s.Value
	}
	if byEp["maximize"] != 1 || byEp["spread"] != 2 {
		t.Fatalf("errs_total = %v", byEp)
	}
	ph := fams["phase_ms"]
	if ph == nil {
		t.Fatal("missing phase_ms")
	}
	var count, sum float64
	for _, s := range ph.Samples {
		switch s.Name {
		case "phase_ms_count":
			count = s.Value
		case "phase_ms_sum":
			sum = s.Value
		}
	}
	if count != 2 || sum != 55 {
		t.Fatalf("phase_ms count=%v sum=%v", count, sum)
	}

	// Re-registering with the same shape returns the same instrument.
	if r.Counter("requests_total", "Total requests.").Value() != 3 {
		t.Fatal("re-registration should fetch the same counter")
	}
	// Different type panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("type mismatch should panic")
			}
		}()
		r.Gauge("requests_total", "oops")
	}()
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", `Help with \backslash and`+"\nnewline", "k").
		With(`va"l\ue` + "\n2").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(b.String())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	s := fams["esc_total"].Samples[0]
	if s.Labels["k"] != `va"l\ue`+"\n2" {
		t.Fatalf("label round-trip = %q", s.Labels["k"])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without HELP":  "foo 1\n",
		"TYPE before HELP":     "# TYPE foo counter\nfoo 1\n",
		"sample before TYPE":   "# HELP foo h\nfoo 1\n",
		"bad value":            "# HELP foo h\n# TYPE foo counter\nfoo abc\n",
		"unterminated label":   "# HELP foo h\n# TYPE foo counter\nfoo{a=\"b 1\n",
		"unknown type":         "# HELP foo h\n# TYPE foo widget\nfoo 1\n",
		"duplicate label":      "# HELP foo h\n# TYPE foo counter\nfoo{a=\"1\",a=\"2\"} 1\n",
		"stray trailing field": "# HELP foo h\n# TYPE foo counter\nfoo 1 12345\n",
		"family with no data":  "# HELP foo h\n# TYPE foo counter\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestLintCatchesViolations(t *testing.T) {
	// Non-cumulative histogram buckets.
	bad := `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 10
h_count 5
`
	fams, err := ParseExposition(bad)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Lint(fams); len(errs) == 0 {
		t.Fatal("lint should flag non-cumulative buckets")
	}

	// +Inf bucket disagreeing with _count.
	bad2 := strings.ReplaceAll(bad, `h_bucket{le="2"} 3`, `h_bucket{le="2"} 5`)
	bad2 = strings.ReplaceAll(bad2, `h_bucket{le="+Inf"} 5`, `h_bucket{le="+Inf"} 4`)
	fams2, err := ParseExposition(bad2)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Lint(fams2); len(errs) == 0 {
		t.Fatal("lint should flag +Inf != _count")
	}

	// Negative counter.
	bad3 := "# HELP c x\n# TYPE c counter\nc -1\n"
	fams3, err := ParseExposition(bad3)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Lint(fams3); len(errs) == 0 {
		t.Fatal("lint should flag negative counter")
	}
}

func BenchmarkUntracedSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(ctx, "phase").Attr("k", 1).End()
	}
}

func BenchmarkTracedSpan(b *testing.B) {
	tr := NewTrace("bench")
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(ctx, "phase")
		sp.End()
		// Reset so the span slice doesn't grow unboundedly across iterations.
		if i%1024 == 1023 {
			tr.mu.Lock()
			tr.spans = tr.spans[:0]
			tr.mu.Unlock()
		}
	}
}
