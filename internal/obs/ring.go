package obs

import (
	"sort"
	"sync"
)

// TraceRing is a bounded ring of completed traces: the last capacity
// traces are retained for id lookup, older ones are dropped. Alongside
// the recency ring it keeps a separate top-capacity-by-duration set of
// trace snapshots, so the slowest requests survive ring wrap under
// load. It backs GET /v1/trace/{id} (lookup by request id, recency-
// bounded) and GET /v1/trace/slow (slowest seen, wrap-proof).
// A nil *TraceRing is inert — Add no-ops and lookups miss — which is how
// the server represents "tracing disabled".
type TraceRing struct {
	mu     sync.Mutex
	cap    int
	traces []*Trace // oldest first
	byID   map[string]*Trace
	// slow is a min-heap on ElapsedMs holding the top-cap slowest
	// traces ever added, as snapshots: retaining snapshots rather than
	// live traces keeps Get's "recent only" contract while letting
	// Slowest outlive ring eviction.
	slow []TraceSnapshot
}

// NewTraceRing builds a ring retaining up to capacity traces; a
// non-positive capacity returns nil (tracing disabled).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		return nil
	}
	return &TraceRing{cap: capacity, byID: make(map[string]*Trace, capacity)}
}

// Add records a finished trace, evicting the oldest beyond capacity.
// Client-supplied request ids may repeat; the newest trace wins the id
// lookup, and evicting an old trace never unmaps a newer one that reused
// its id.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) >= r.cap {
		old := r.traces[0]
		copy(r.traces, r.traces[1:])
		r.traces = r.traces[:len(r.traces)-1]
		if r.byID[old.ID()] == old {
			delete(r.byID, old.ID())
		}
	}
	r.traces = append(r.traces, t)
	r.byID[t.ID()] = t

	snap := t.Snapshot()
	if len(r.slow) < r.cap {
		r.slow = append(r.slow, snap)
		r.slowUp(len(r.slow) - 1)
	} else if snap.ElapsedMs > r.slow[0].ElapsedMs {
		r.slow[0] = snap
		r.slowDown(0)
	}
}

func (r *TraceRing) slowUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.slow[p].ElapsedMs <= r.slow[i].ElapsedMs {
			return
		}
		r.slow[p], r.slow[i] = r.slow[i], r.slow[p]
		i = p
	}
}

func (r *TraceRing) slowDown(i int) {
	n := len(r.slow)
	for {
		least := i
		if l := 2*i + 1; l < n && r.slow[l].ElapsedMs < r.slow[least].ElapsedMs {
			least = l
		}
		if right := 2*i + 2; right < n && r.slow[right].ElapsedMs < r.slow[least].ElapsedMs {
			least = right
		}
		if least == i {
			return
		}
		r.slow[i], r.slow[least] = r.slow[least], r.slow[i]
		i = least
	}
}

// Get returns the snapshot of the retained trace with the given id.
func (r *TraceRing) Get(id string) (TraceSnapshot, bool) {
	if r == nil {
		return TraceSnapshot{}, false
	}
	r.mu.Lock()
	t := r.byID[id]
	r.mu.Unlock()
	if t == nil {
		return TraceSnapshot{}, false
	}
	return t.Snapshot(), true
}

// Slowest returns snapshots of the n slowest traces ever added (not
// just those still in the recency ring), slowest first.
func (r *TraceRing) Slowest(n int) []TraceSnapshot {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	all := append([]TraceSnapshot(nil), r.slow...)
	r.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool { return all[i].ElapsedMs > all[j].ElapsedMs })
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Len reports how many traces are retained in the recency ring.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
