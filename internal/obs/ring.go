package obs

import (
	"sort"
	"sync"
)

// TraceRing is a bounded ring of completed traces: the last capacity
// traces are retained, older ones are dropped. It backs GET /v1/trace/{id}
// (lookup by request id) and GET /v1/trace/slow (top-N by elapsed time).
// A nil *TraceRing is inert — Add no-ops and lookups miss — which is how
// the server represents "tracing disabled".
type TraceRing struct {
	mu     sync.Mutex
	cap    int
	traces []*Trace // oldest first
	byID   map[string]*Trace
}

// NewTraceRing builds a ring retaining up to capacity traces; a
// non-positive capacity returns nil (tracing disabled).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		return nil
	}
	return &TraceRing{cap: capacity, byID: make(map[string]*Trace, capacity)}
}

// Add records a finished trace, evicting the oldest beyond capacity.
// Client-supplied request ids may repeat; the newest trace wins the id
// lookup, and evicting an old trace never unmaps a newer one that reused
// its id.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) >= r.cap {
		old := r.traces[0]
		copy(r.traces, r.traces[1:])
		r.traces = r.traces[:len(r.traces)-1]
		if r.byID[old.ID()] == old {
			delete(r.byID, old.ID())
		}
	}
	r.traces = append(r.traces, t)
	r.byID[t.ID()] = t
}

// Get returns the snapshot of the retained trace with the given id.
func (r *TraceRing) Get(id string) (TraceSnapshot, bool) {
	if r == nil {
		return TraceSnapshot{}, false
	}
	r.mu.Lock()
	t := r.byID[id]
	r.mu.Unlock()
	if t == nil {
		return TraceSnapshot{}, false
	}
	return t.Snapshot(), true
}

// Slowest returns snapshots of the n retained traces with the largest
// elapsed time, slowest first.
func (r *TraceRing) Slowest(n int) []TraceSnapshot {
	if r == nil || n <= 0 {
		return nil
	}
	type timed struct {
		t  *Trace
		ms float64
	}
	r.mu.Lock()
	all := make([]timed, len(r.traces))
	for i, t := range r.traces {
		all[i] = timed{t: t, ms: t.ElapsedMs()}
	}
	r.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool { return all[i].ms > all[j].ms })
	if n > len(all) {
		n = len(all)
	}
	out := make([]TraceSnapshot, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t.Snapshot()
	}
	return out
}

// Len reports how many traces are retained.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
