package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Ledger is a hierarchical resource-accounting tree: the single source
// of truth for "who holds how many bytes". Paths are slash-free name
// segments, conventionally (dataset, component) — e.g.
// ("nethept", "rr_collections") — but the tree supports any depth.
//
// Leaves come in two flavors:
//
//   - Account leaves hold an atomic byte count mutated by the owning
//     subsystem (Add/Set). Owners must mirror every allocation and
//     release exactly; the ledger never observes memory on its own.
//   - Func leaves are computed on read (AccountFunc), for state whose
//     authoritative size already lives elsewhere (CSR snapshots,
//     tiered scorers) and would otherwise need duplicated bookkeeping.
//
// Interior nodes have no bytes of their own: a subtree's total is
// always the sum of its leaves, so "ledger total = Σ leaves" holds by
// construction and tests can assert it against independently-tracked
// gauges bit-for-bit.
//
// A nil *Ledger is inert: Account returns a nil *Account (whose
// methods are no-ops), sums are 0, Snapshot is empty.
type Ledger struct {
	mu   sync.Mutex
	root ledgerNode
}

type ledgerNode struct {
	children map[string]*ledgerNode
	acct     *Account // non-nil only on Account leaves
	fn       func() int64
}

// Account is one mutable leaf of a Ledger. The zero value is usable;
// a nil *Account is inert so callers can hold one unconditionally.
type Account struct {
	v atomic.Int64
}

// Add adjusts the account by delta bytes (negative to release).
func (a *Account) Add(delta int64) {
	if a == nil {
		return
	}
	a.v.Add(delta)
}

// Set overwrites the account's byte count.
func (a *Account) Set(v int64) {
	if a == nil {
		return
	}
	a.v.Store(v)
}

// Value returns the current byte count (0 for a nil account).
func (a *Account) Value() int64 {
	if a == nil {
		return 0
	}
	return a.v.Load()
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

func (n *ledgerNode) child(name string) *ledgerNode {
	if n.children == nil {
		n.children = make(map[string]*ledgerNode)
	}
	c := n.children[name]
	if c == nil {
		c = &ledgerNode{}
		n.children[name] = c
	}
	return c
}

func (l *Ledger) walk(path []string) *ledgerNode {
	n := &l.root
	for _, p := range path {
		n = n.child(p)
	}
	return n
}

// Account returns the mutable leaf at path, creating it on first use.
// Calling it again with the same path returns the same *Account, so
// subsystems may resolve their leaf eagerly at construction or lazily
// per key. Registering an Account where a Func leaf or interior node
// already exists panics: leaf ownership is exclusive by design.
func (l *Ledger) Account(path ...string) *Account {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.walk(path)
	if n.fn != nil || len(n.children) != 0 {
		panic("obs: ledger path " + joinPath(path) + " is not an account leaf")
	}
	if n.acct == nil {
		n.acct = &Account{}
	}
	return n.acct
}

// AccountFunc installs a computed leaf at path: its byte count is
// fn() at read time. Re-installing over any existing node panics.
func (l *Ledger) AccountFunc(fn func() int64, path ...string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.walk(path)
	if n.fn != nil || n.acct != nil || len(n.children) != 0 {
		panic("obs: ledger path " + joinPath(path) + " already registered")
	}
	n.fn = fn
}

func joinPath(path []string) string {
	s := ""
	for i, p := range path {
		if i > 0 {
			s += "/"
		}
		s += p
	}
	return s
}

func (n *ledgerNode) sum() int64 {
	var total int64
	if n.acct != nil {
		total += n.acct.Value()
	}
	if n.fn != nil {
		total += n.fn()
	}
	for _, c := range n.children {
		total += c.sum()
	}
	return total
}

// Total returns the byte sum over every leaf in the ledger.
func (l *Ledger) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.root.sum()
}

// Sum returns the byte sum of the subtree rooted at path (0 if the
// path was never registered).
func (l *Ledger) Sum(path ...string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := &l.root
	for _, p := range path {
		n = n.children[p]
		if n == nil {
			return 0
		}
	}
	return n.sum()
}

// SumComponent returns the byte sum over every leaf whose final path
// segment equals name, across all parents — e.g.
// SumComponent("rr_collections") totals rr bytes over every dataset.
func (l *Ledger) SumComponent(name string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return sumComponent(&l.root, name)
}

func sumComponent(n *ledgerNode, name string) int64 {
	var total int64
	for childName, c := range n.children {
		if childName == name && (c.acct != nil || c.fn != nil) {
			total += c.sum()
		} else {
			total += sumComponent(c, name)
		}
	}
	return total
}

// SumComponents is SumComponent over a set of component names in one
// pass under the ledger lock — one consistent reading across them, so
// tier arithmetic like Total() − SumComponents(disk...) cannot tear
// against a concurrent account delta.
func (l *Ledger) SumComponents(names ...string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, name := range names {
		total += sumComponent(&l.root, name)
	}
	return total
}

// Each visits every leaf as (path, bytes), in sorted path order.
// Computed leaves are evaluated at visit time.
func (l *Ledger) Each(fn func(path []string, bytes int64)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	eachLeaf(&l.root, nil, fn)
}

func eachLeaf(n *ledgerNode, path []string, fn func([]string, int64)) {
	if n.acct != nil || n.fn != nil {
		var v int64
		if n.acct != nil {
			v += n.acct.Value()
		}
		if n.fn != nil {
			v += n.fn()
		}
		fn(append([]string(nil), path...), v)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		eachLeaf(n.children[name], append(path, name), fn)
	}
}

// LedgerEntry is one node of a ledger snapshot. Interior entries
// report the sum of their children, so every level is self-consistent.
type LedgerEntry struct {
	Name     string        `json:"name"`
	Bytes    int64         `json:"bytes"`
	Children []LedgerEntry `json:"children,omitempty"`
}

// Snapshot returns the ledger as a sorted tree of entries. The root
// entry's Bytes equals Total() evaluated at the same instant.
func (l *Ledger) Snapshot() LedgerEntry {
	if l == nil {
		return LedgerEntry{Name: "total"}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return snapshotNode("total", &l.root)
}

func snapshotNode(name string, n *ledgerNode) LedgerEntry {
	e := LedgerEntry{Name: name}
	if n.acct != nil {
		e.Bytes += n.acct.Value()
	}
	if n.fn != nil {
		e.Bytes += n.fn()
	}
	names := make([]string, 0, len(n.children))
	for childName := range n.children {
		names = append(names, childName)
	}
	sort.Strings(names)
	for _, childName := range names {
		c := snapshotNode(childName, n.children[childName])
		e.Bytes += c.Bytes
		e.Children = append(e.Children, c)
	}
	return e
}
