// Package heuristics provides the cheap seed-selection baselines common
// in the influence-maximization literature: degree, single discount,
// degree discount (Chen et al., KDD 2009), PageRank, and uniform random.
// None carries an approximation guarantee; they anchor the quality
// comparisons in the examples and tests, and they are the kind of
// heuristic the paper's introduction warns "could be arbitrarily worse
// than the optimal" while being very fast.
package heuristics

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ErrBadK reports an out-of-range seed count.
var ErrBadK = errors.New("heuristics: k out of range")

func checkK(g *graph.Graph, k int) error {
	if k <= 0 || k > g.N() {
		return fmt.Errorf("%w: k=%d with n=%d", ErrBadK, k, g.N())
	}
	return nil
}

// Degree returns the k nodes with the highest out-degree, ties broken by
// lower id.
func Degree(g *graph.Graph, k int) ([]uint32, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	scores := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		scores[v] = float64(g.OutDegree(uint32(v)))
	}
	return topK(scores, k), nil
}

// SingleDiscount picks greedily by out-degree, discounting one for each
// already-selected out-neighbor (a one-line improvement over Degree from
// Chen et al.).
func SingleDiscount(g *graph.Graph, k int) ([]uint32, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	n := g.N()
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		score[v] = float64(g.OutDegree(uint32(v)))
	}
	return discountLoop(g, k, score, func(v uint32, selected []bool) {
		// Each in-neighbor of the selected node loses one candidate
		// edge toward it.
		src, _ := g.InNeighbors(v)
		for _, u := range src {
			if !selected[u] {
				score[u]--
			}
		}
	}), nil
}

// DegreeDiscount is Chen et al.'s ddv heuristic for the uniform-probability
// IC model: dd(v) = d(v) − 2t(v) − (d(v) − t(v))·t(v)·p, where t(v) counts
// selected in...-neighbors of v pointing at it. p is the assumed uniform
// propagation probability (use the graph's mean weight for weighted
// graphs).
func DegreeDiscount(g *graph.Graph, k int, p float64) ([]uint32, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("heuristics: p=%v outside [0,1]", p)
	}
	n := g.N()
	deg := make([]float64, n)
	t := make([]float64, n)
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.OutDegree(uint32(v)))
		score[v] = deg[v]
	}
	return discountLoop(g, k, score, func(v uint32, selected []bool) {
		// Neighbors that point at newly selected v update their t and
		// recompute dd.
		src, _ := g.InNeighbors(v)
		for _, u := range src {
			if selected[u] {
				continue
			}
			t[u]++
			score[u] = deg[u] - 2*t[u] - (deg[u]-t[u])*t[u]*p
		}
	}), nil
}

// discountLoop repeatedly extracts the max-score unselected node and
// applies the update callback.
func discountLoop(g *graph.Graph, k int, score []float64, update func(v uint32, selected []bool)) []uint32 {
	n := g.N()
	selected := make([]bool, n)
	seeds := make([]uint32, 0, k)
	for len(seeds) < k {
		best, bestScore := -1, math.Inf(-1)
		for v := 0; v < n; v++ {
			if !selected[v] && score[v] > bestScore {
				best, bestScore = v, score[v]
			}
		}
		v := uint32(best)
		selected[best] = true
		seeds = append(seeds, v)
		update(v, selected)
	}
	return seeds
}

// PageRankOptions tunes the PageRank baseline.
type PageRankOptions struct {
	// Damping is the restart parameter (default 0.85).
	Damping float64
	// Iterations caps power iterations (default 50).
	Iterations int
	// Tolerance stops early when the L1 change drops below it
	// (default 1e-9).
	Tolerance float64
}

// PageRank selects the k nodes with the highest PageRank on the *reverse*
// graph — mass flows against edge direction, so a node pointing at many
// reachable nodes ranks high, which is the right orientation for
// influence.
func PageRank(g *graph.Graph, k int, opts PageRankOptions) ([]uint32, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	if opts.Damping == 0 {
		opts.Damping = 0.85
	}
	if opts.Damping < 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("heuristics: damping=%v outside [0,1)", opts.Damping)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 50
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = 1e-9
	}
	n := g.N()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	for it := 0; it < opts.Iterations; it++ {
		base := (1 - opts.Damping) / float64(n)
		for v := range next {
			next[v] = base
		}
		var dangling float64
		for v := 0; v < n; v++ {
			// Reverse orientation: v's rank flows to the nodes that
			// point *at* v... equivalently, iterate in-edges of v as
			// out-edges of the transpose.
			src, _ := g.InNeighbors(uint32(v))
			if len(src) == 0 {
				dangling += rank[v]
				continue
			}
			share := opts.Damping * rank[v] / float64(len(src))
			for _, u := range src {
				next[u] += share
			}
		}
		spread := opts.Damping * dangling / float64(n)
		var delta float64
		for v := range next {
			next[v] += spread
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if delta < opts.Tolerance {
			break
		}
	}
	return topK(rank, k), nil
}

// Random returns k distinct uniformly random nodes.
func Random(g *graph.Graph, k int, r *rng.Rand) ([]uint32, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	n := g.N()
	perm := make([]int, n)
	r.Perm(perm)
	seeds := make([]uint32, k)
	for i := 0; i < k; i++ {
		seeds[i] = uint32(perm[i])
	}
	return seeds, nil
}

// topK returns the indices of the k largest scores (ties to lower id)
// using a size-k min-heap.
func topK(scores []float64, k int) []uint32 {
	h := &scoreHeap{}
	heap.Init(h)
	for v, s := range scores {
		if h.Len() < k {
			heap.Push(h, scored{uint32(v), s})
		} else if top := (*h)[0]; s > top.score || (s == top.score && uint32(v) < top.node) {
			(*h)[0] = scored{uint32(v), s}
			heap.Fix(h, 0)
		}
	}
	out := make([]uint32, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(scored).node
	}
	return out
}

type scored struct {
	node  uint32
	score float64
}

// scoreHeap is a min-heap by score (ties: larger id is "smaller" so it is
// evicted first, keeping lower ids).
type scoreHeap []scored

func (h scoreHeap) Len() int { return len(h) }
func (h scoreHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].node > h[j].node
}
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MeanWeight returns the average edge weight of g (0 for edgeless
// graphs) — a convenient p for DegreeDiscount on weighted graphs.
func MeanWeight(g *graph.Graph) float64 {
	if g.M() == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < g.N(); v++ {
		_, w := g.OutNeighbors(uint32(v))
		for _, x := range w {
			sum += float64(x)
		}
	}
	return sum / float64(g.M())
}
