package heuristics

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestDegreePicksHub(t *testing.T) {
	g := gen.Star(10, 0.5)
	seeds, err := Degree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub", seeds)
	}
}

func TestDegreeTopKOrdered(t *testing.T) {
	// Node degrees: 0 has 3 out-edges, 1 has 2, 2 has 1, 3 has 0.
	g := graph.MustFromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3},
		{From: 1, To: 2}, {From: 1, To: 3},
		{From: 2, To: 3},
	})
	seeds, err := Degree(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 1, 2}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds=%v, want %v", seeds, want)
		}
	}
}

func TestDegreeTieBreakLowerID(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{From: 1, To: 0}, {From: 2, To: 0}, {From: 3, To: 0},
	})
	seeds, err := Degree(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All of 1,2,3 have degree 1; 0 has 0. Lower ids win ties.
	if seeds[0] != 1 || seeds[1] != 2 {
		t.Fatalf("seeds=%v, want [1 2]", seeds)
	}
}

func TestSingleDiscountSpreadsPicks(t *testing.T) {
	// Star hub plus a disconnected pair: after the hub, plain Degree
	// would pick a leaf... all leaves have degree 0 here, so both agree;
	// build overlapping stars instead. Hub 0 -> 1..4; node 1 -> 2,3.
	g := graph.MustFromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 4},
		{From: 1, To: 2}, {From: 1, To: 3},
	})
	seeds, err := SingleDiscount(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("first pick %v, want hub 0", seeds)
	}
	// Node 1's discounted score: degree 2 minus... 1 is an out-neighbor
	// of selected 0, its score drops by... SingleDiscount discounts
	// in-neighbors of the selected node: nodes pointing at 0 — none.
	// So second pick is 1 (degree 2).
	if seeds[1] != 1 {
		t.Fatalf("seeds=%v", seeds)
	}
}

func TestDegreeDiscount(t *testing.T) {
	g := gen.Star(8, 0.1)
	seeds, err := DegreeDiscount(g, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub first", seeds)
	}
	if _, err := DegreeDiscount(g, 2, 1.5); err == nil {
		t.Fatal("bad p accepted")
	}
}

func TestPageRankChain(t *testing.T) {
	// Reverse PageRank on a path concentrates rank at the source, which
	// influences everything downstream.
	g := gen.Path(6, 1)
	seeds, err := PageRank(g, 1, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("seeds=%v, want source 0", seeds)
	}
}

func TestPageRankOptionErrors(t *testing.T) {
	g := gen.Path(5, 1)
	if _, err := PageRank(g, 1, PageRankOptions{Damping: 1.5}); err == nil {
		t.Fatal("bad damping accepted")
	}
	if _, err := PageRank(g, 0, PageRankOptions{}); !errors.Is(err, ErrBadK) {
		t.Fatal("k=0 accepted")
	}
}

func TestRandomDistinct(t *testing.T) {
	g := gen.Path(30, 1)
	seeds, err := Random(g, 10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate in %v", seeds)
		}
		seen[s] = true
	}
}

func TestAllRejectBadK(t *testing.T) {
	g := gen.Path(5, 1)
	if _, err := Degree(g, 0); !errors.Is(err, ErrBadK) {
		t.Error("Degree k=0")
	}
	if _, err := Degree(g, 6); !errors.Is(err, ErrBadK) {
		t.Error("Degree k>n")
	}
	if _, err := SingleDiscount(g, -1); !errors.Is(err, ErrBadK) {
		t.Error("SingleDiscount k<0")
	}
	if _, err := DegreeDiscount(g, 9, 0.1); !errors.Is(err, ErrBadK) {
		t.Error("DegreeDiscount k>n")
	}
	if _, err := Random(g, 0, rng.New(1)); !errors.Is(err, ErrBadK) {
		t.Error("Random k=0")
	}
}

func TestMeanWeight(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{
		{From: 0, To: 1, Weight: 0.2},
		{From: 1, To: 2, Weight: 0.4},
	})
	if got := MeanWeight(g); math.Abs(got-0.3) > 1e-7 {
		t.Fatalf("mean weight %v, want 0.3", got)
	}
	if got := MeanWeight(graph.MustFromEdges(2, nil)); got != 0 {
		t.Fatalf("edgeless mean weight %v", got)
	}
}

func TestTopKAllEqualScores(t *testing.T) {
	g := gen.Cycle(6, 1) // every node has out-degree 1
	seeds, err := Degree(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("seeds=%v", seeds)
	}
	if seeds[0] != 0 || seeds[1] != 1 || seeds[2] != 2 {
		t.Fatalf("tie-break by id failed: %v", seeds)
	}
}
