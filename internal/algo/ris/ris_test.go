package ris

import (
	"errors"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

func TestSelectStar(t *testing.T) {
	g := gen.Star(20, 1)
	res, err := Select(g, diffusion.NewIC(), Options{K: 1, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub", res.Seeds)
	}
	if res.Cost < res.Tau {
		t.Fatalf("stopped before threshold: cost=%d tau=%d", res.Cost, res.Tau)
	}
	if res.Capped {
		t.Fatal("unexpected cap")
	}
}

func TestSelectQuality(t *testing.T) {
	g := gen.ChungLuDirected(500, 3000, 2.4, 2.1, rng.New(2))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	res, err := Select(g, model, Options{K: 5, Epsilon: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
	mine := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 10000, Seed: 4})
	// Compare with a random baseline — RIS must do clearly better.
	rand, err := randSeeds(g.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	base := spread.Estimate(g, model, rand, spread.Options{Samples: 10000, Seed: 5})
	if mine <= base {
		t.Fatalf("RIS spread %v not better than random %v", mine, base)
	}
}

func randSeeds(n, k int) ([]uint32, error) {
	r := rng.New(99)
	perm := make([]int, n)
	r.Perm(perm)
	out := make([]uint32, k)
	for i := range out {
		out[i] = uint32(perm[i])
	}
	return out, nil
}

func TestCostCap(t *testing.T) {
	g := gen.ChungLuDirected(2000, 12000, 2.4, 2.1, rng.New(6))
	graph.AssignWeightedCascade(g)
	res, err := Select(g, diffusion.NewIC(), Options{K: 10, Epsilon: 0.1, CostCap: 50_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatalf("expected cap to fire: cost=%d tau=%d", res.Cost, res.Tau)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("capped run still must return k seeds: %v", res.Seeds)
	}
}

func TestTauScaling(t *testing.T) {
	g := gen.Path(100, 0.5)
	model := diffusion.NewIC()
	// τ scales like k/ε³: halving ε must grow τ 8x; doubling k doubles τ.
	r1, err := Select(g, model, Options{K: 1, Epsilon: 0.8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Select(g, model, Options{K: 1, Epsilon: 0.4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tau < 7*r1.Tau || r2.Tau > 9*r1.Tau {
		t.Fatalf("tau(ε/2)=%d not about 8x tau(ε)=%d", r2.Tau, r1.Tau)
	}
	r3, err := Select(g, model, Options{K: 2, Epsilon: 0.8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Tau < 2*r1.Tau-2 || r3.Tau > 2*r1.Tau+2 {
		t.Fatalf("tau(2k)=%d not about 2x tau(k)=%d", r3.Tau, r1.Tau)
	}
}

func TestSelectLT(t *testing.T) {
	g := gen.Star(15, 1)
	res, err := Select(g, diffusion.NewLT(), Options{K: 1, Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("LT seeds=%v", res.Seeds)
	}
}

func TestOptionErrors(t *testing.T) {
	g := gen.Path(5, 1)
	model := diffusion.NewIC()
	cases := []Options{
		{K: 0},
		{K: 9},
		{K: 1, Epsilon: 2},
		{K: 1, Epsilon: -0.1},
		{K: 1, Ell: -1},
		{K: 1, TauConstant: -2},
	}
	for i, opts := range cases {
		if _, err := Select(g, model, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d (%+v): got %v", i, opts, err)
		}
	}
	empty := graph.MustFromEdges(0, nil)
	if _, err := Select(empty, model, Options{K: 1}); !errors.Is(err, ErrBadOptions) {
		t.Error("empty graph accepted")
	}
}
