// Package ris implements Borgs et al.'s Reverse Influence Sampling
// (§2.3 of the paper): generate random RR sets until the total number of
// nodes and edges examined reaches a threshold τ = Θ(k(m+n)·log n / ε³),
// then greedily solve maximum coverage over the sampled sets.
//
// RIS is the near-optimal-time predecessor TIM improves on. Its practical
// weaknesses — the ε⁻³ term, the large hidden constant, and the
// correlation between RR sets induced by the cost threshold (§2.3,
// footnote 3) — are exactly what the paper's Figure 3 measures, so this
// implementation keeps the threshold-based control flow intact.
package ris

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/rng"
)

// Options configures a RIS run.
type Options struct {
	// K is the seed-set size (required).
	K int
	// Epsilon is the approximation slack; τ scales with ε⁻³. Default 0.1.
	Epsilon float64
	// Ell scales τ for the 1 − n^−ℓ success amplification (Borgs et
	// al. §2.3; we fold the amplification into the threshold rather
	// than repeating the whole algorithm Ω(ℓ log n) times). Default 1.
	Ell float64
	// TauConstant is the hidden constant of τ = C·ℓ·k·(m+n)·log n / ε³.
	// Borgs et al. leave C unspecified; 1 reproduces the "slow but
	// correct" behaviour of Figure 3. Default 1.
	TauConstant float64
	// CostCap, when positive, aborts sampling after this many
	// examined nodes+edges even if τ was not reached. The result then
	// has Capped=true and carries no approximation guarantee. This
	// exists because a faithful τ is often deliberately impractical —
	// that impracticality is the paper's point — yet benchmarks must
	// terminate.
	CostCap int64
	// Workers parallelizes RR generation in chunks (default
	// GOMAXPROCS). The threshold is checked between chunks, so the
	// realized cost can overshoot τ by at most one chunk.
	Workers int
	// Seed drives sampling.
	Seed uint64
}

// Result reports a RIS run.
type Result struct {
	Seeds []uint32
	// Tau is the computed threshold on examined nodes+edges.
	Tau int64
	// Cost is the realized examined nodes+edges.
	Cost int64
	// RRSets is the number of RR sets generated.
	RRSets int64
	// Capped reports that CostCap stopped sampling before τ.
	Capped bool
	// CoverageFraction and SpreadEstimate mirror tim.Result.
	CoverageFraction float64
	SpreadEstimate   float64
}

// ErrBadOptions wraps option-validation failures.
var ErrBadOptions = errors.New("ris: invalid options")

// chunk is the number of RR sets generated between threshold checks.
const chunk = 1024

// Select runs RIS on g under the model.
func Select(g *graph.Graph, model diffusion.Model, opts Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadOptions)
	}
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("%w: K=%d with n=%d", ErrBadOptions, opts.K, n)
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.1
	}
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("%w: Epsilon=%v", ErrBadOptions, opts.Epsilon)
	}
	if opts.Ell == 0 {
		opts.Ell = 1
	}
	if opts.Ell <= 0 {
		return nil, fmt.Errorf("%w: Ell=%v", ErrBadOptions, opts.Ell)
	}
	if opts.TauConstant == 0 {
		opts.TauConstant = 1
	}
	if opts.TauConstant <= 0 {
		return nil, fmt.Errorf("%w: TauConstant=%v", ErrBadOptions, opts.TauConstant)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	tauF := opts.TauConstant * opts.Ell * float64(opts.K) * float64(g.M()+n) *
		math.Log(math.Max(float64(n), 2)) / math.Pow(opts.Epsilon, 3)
	tau := int64(math.Ceil(tauF))
	if tau < 1 {
		tau = 1
	}

	col := &diffusion.RRCollection{Off: []int64{0}}
	var cost int64
	capped := false
	seedSeq := rng.New(opts.Seed)
	for cost < tau {
		if opts.CostCap > 0 && cost >= opts.CostCap {
			capped = true
			break
		}
		batch := diffusion.SampleCollection(g, model, chunk, diffusion.SampleOptions{
			Workers: opts.Workers,
			Seed:    seedSeq.Uint64(),
		})
		col.Merge(batch)
		cost += batch.TotalWidth + batch.TotalNodes()
	}

	cover := maxcover.GreedyWorkers(n, col, opts.K, opts.Workers)
	res := &Result{
		Seeds:  cover.Seeds,
		Tau:    tau,
		Cost:   cost,
		RRSets: int64(col.Count()),
		Capped: capped,
	}
	if col.Count() > 0 {
		res.CoverageFraction = float64(cover.Covered) / float64(col.Count())
		res.SpreadEstimate = res.CoverageFraction * float64(n)
	}
	return res, nil
}
