// Package irie implements IRIE (Jung, Heo, Chen — ICDM 2012), the
// state-of-the-art IC-model heuristic the paper benchmarks TIM+ against in
// Figures 8 and 9.
//
// IRIE combines two ideas:
//
//   - IR (influence ranking): a global rank vector r solving the linear
//     system r(u) = 1 + α · Σ_{(u,v)∈E} p(u,v)·r(v) by fixed-point
//     iteration — a PageRank-like propagation of expected influence.
//   - IE (influence estimation): after seeds are chosen, an estimate
//     AP_S(u) of the probability that u is already activated by S
//     discounts u's rank: r(u) = (1 − AP_S(u)) · (1 + α·Σ p(u,v)·r(v)),
//     so the next pick avoids influence overlap with earlier seeds.
//
// AP is propagated breadth-first from the seed set with contributions
// below a truncation threshold θ dropped — the paper's experiments use
// α = 0.7 and θ = 1/320 (§7.3), which are the defaults here.
//
// IRIE provides no approximation guarantee; its role in this repository is
// the Figure 8/9 baseline: faster than TIM+ for small k, overtaken for
// k ≳ 20, with generally lower spread.
package irie

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Options configures IRIE.
type Options struct {
	// K is the seed-set size (required).
	K int
	// Alpha is the rank damping factor (default 0.7, §7.3).
	Alpha float64
	// Theta is the AP truncation threshold (default 1/320, §7.3).
	Theta float64
	// Iterations is the fixed-point iteration count per round
	// (default 20).
	Iterations int
}

// Result reports an IRIE run.
type Result struct {
	Seeds []uint32
	// Ranks[i] is the rank value of Seeds[i] at its selection round —
	// IRIE's internal influence estimate for that pick.
	Ranks []float64
}

// ErrBadOptions wraps option-validation failures.
var ErrBadOptions = errors.New("irie: invalid options")

// Select runs IRIE on g (IC model implied; edge weights are propagation
// probabilities).
func Select(g *graph.Graph, opts Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadOptions)
	}
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("%w: K=%d with n=%d", ErrBadOptions, opts.K, n)
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.7
	}
	if opts.Alpha < 0 || opts.Alpha > 1 {
		return nil, fmt.Errorf("%w: Alpha=%v", ErrBadOptions, opts.Alpha)
	}
	if opts.Theta == 0 {
		opts.Theta = 1.0 / 320
	}
	if opts.Theta <= 0 {
		return nil, fmt.Errorf("%w: Theta=%v", ErrBadOptions, opts.Theta)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 20
	}
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("%w: Iterations=%d", ErrBadOptions, opts.Iterations)
	}

	res := &Result{
		Seeds: make([]uint32, 0, opts.K),
		Ranks: make([]float64, 0, opts.K),
	}
	ap := make([]float64, n)   // AP_S(u)
	rank := make([]float64, n) // r(u)
	next := make([]float64, n)
	selected := make([]bool, n)

	for len(res.Seeds) < opts.K {
		computeRanks(g, ap, rank, next, opts.Alpha, opts.Iterations)
		best, bestRank := -1, 0.0
		for v := 0; v < n; v++ {
			if selected[v] {
				continue
			}
			if best < 0 || rank[v] > bestRank {
				best, bestRank = v, rank[v]
			}
		}
		res.Seeds = append(res.Seeds, uint32(best))
		res.Ranks = append(res.Ranks, bestRank)
		selected[best] = true
		propagateAP(g, ap, uint32(best), opts.Theta)
	}
	return res, nil
}

// computeRanks iterates r(u) = (1 − AP(u))·(1 + α Σ p(u,v) r(v)).
func computeRanks(g *graph.Graph, ap, rank, next []float64, alpha float64, iters int) {
	n := g.N()
	for v := 0; v < n; v++ {
		rank[v] = 1 - ap[v]
	}
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			to, w := g.OutNeighbors(uint32(u))
			var sum float64
			for i := range to {
				sum += float64(w[i]) * rank[to[i]]
			}
			next[u] = (1 - ap[u]) * (1 + alpha*sum)
		}
		copy(rank, next)
	}
}

// propagateAP adds a new seed and pushes its activation probability
// forward breadth-first, dropping contributions below theta. ap is
// updated in place under an independence approximation:
// ap'(v) = ap(v) + (1 − ap(v))·reach, where reach is the incoming
// activation mass.
func propagateAP(g *graph.Graph, ap []float64, seed uint32, theta float64) {
	type entry struct {
		node uint32
		mass float64
	}
	delta := 1 - ap[seed]
	ap[seed] = 1
	queue := []entry{{seed, delta}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		to, w := g.OutNeighbors(e.node)
		for i := range to {
			v := to[i]
			contribution := e.mass * float64(w[i])
			if contribution < theta {
				continue
			}
			gain := (1 - ap[v]) * contribution
			if gain < theta {
				continue
			}
			ap[v] += gain
			queue = append(queue, entry{v, gain})
		}
	}
}
