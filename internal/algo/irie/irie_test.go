package irie

import (
	"errors"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

func TestSelectStar(t *testing.T) {
	g := gen.Star(20, 1)
	res, err := Select(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub", res.Seeds)
	}
	if len(res.Ranks) != 1 || res.Ranks[0] <= 1 {
		t.Fatalf("ranks=%v; hub rank must exceed 1", res.Ranks)
	}
}

func TestSelectPath(t *testing.T) {
	g := gen.Path(10, 1)
	res, err := Select(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want source of the path", res.Seeds)
	}
}

func TestAPDiscountAvoidsOverlap(t *testing.T) {
	// Two disjoint certain cliques: after taking a node in clique A,
	// the AP discount must push the second pick into clique B.
	var edges []graph.Edge
	for base := 0; base < 12; base += 6 {
		for u := base; u < base+6; u++ {
			for v := base; v < base+6; v++ {
				if u != v {
					edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v), Weight: 1})
				}
			}
		}
	}
	g := graph.MustFromEdges(12, edges)
	res, err := Select(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	inA, inB := false, false
	for _, s := range res.Seeds {
		if s < 6 {
			inA = true
		} else {
			inB = true
		}
	}
	if !inA || !inB {
		t.Fatalf("seeds=%v must span both cliques", res.Seeds)
	}
}

func TestQualityAboveRandom(t *testing.T) {
	g := gen.ChungLuDirected(2000, 12000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	res, err := Select(g, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	mine := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 10000, Seed: 2})
	r := rng.New(3)
	perm := make([]int, g.N())
	r.Perm(perm)
	rand := make([]uint32, 10)
	for i := range rand {
		rand[i] = uint32(perm[i])
	}
	base := spread.Estimate(g, model, rand, spread.Options{Samples: 10000, Seed: 4})
	if mine <= 1.5*base {
		t.Fatalf("IRIE spread %v not clearly above random %v", mine, base)
	}
}

func TestDistinctSeeds(t *testing.T) {
	g := gen.ErdosRenyiGnm(100, 500, rng.New(5))
	graph.AssignWeightedCascade(g)
	res, err := Select(g, Options{K: 20})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d in %v", s, res.Seeds)
		}
		seen[s] = true
	}
}

func TestOptionErrors(t *testing.T) {
	g := gen.Path(5, 1)
	cases := []Options{
		{K: 0},
		{K: 6},
		{K: 1, Alpha: 2},
		{K: 1, Alpha: -0.1},
		{K: 1, Theta: -1},
		{K: 1, Iterations: -2},
	}
	for i, opts := range cases {
		if _, err := Select(g, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d (%+v): got %v", i, opts, err)
		}
	}
	empty := graph.MustFromEdges(0, nil)
	if _, err := Select(empty, Options{K: 1}); !errors.Is(err, ErrBadOptions) {
		t.Error("empty graph accepted")
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.ChungLuDirected(300, 1500, 2.4, 2.1, rng.New(6))
	graph.AssignWeightedCascade(g)
	a, err := Select(g, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(g, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("IRIE nondeterministic: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}
