package simpath

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

// TestPathTheoremExact validates the theorem SIMPATH rests on: under the
// LT model, σ({u}) = Σ over simple paths P from u of Π edge weights —
// against exact hand computation on small structured graphs.
func TestPathTheoremExact(t *testing.T) {
	// Diamond: 0→1 (0.5), 0→2 (0.5), 1→3 (0.5), 2→3 (0.5).
	// Simple paths from 0: [0]=1, [0,1]=.5, [0,2]=.5, [0,1,3]=.25,
	// [0,2,3]=.25 → σ(0) = 2.5.
	g := graph.MustFromEdges(4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 0, To: 2, Weight: 0.5},
		{From: 1, To: 3, Weight: 0.5},
		{From: 2, To: 3, Weight: 0.5},
	})
	e := newEnumerator(g, 1e-9, 1<<20)
	if got := e.run(0, nil); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("sigma(0)=%v, want 2.5", got)
	}
	// Against Monte-Carlo LT simulation.
	mc := spread.Estimate(g, diffusion.NewLT(), []uint32{0}, spread.Options{Samples: 200000, Seed: 1})
	if math.Abs(mc-2.5) > 0.02 {
		t.Fatalf("MC sigma(0)=%v, want 2.5", mc)
	}
}

// TestPathTheoremRandomGraphs: path-enumerated spread with negligible
// pruning must match Monte-Carlo LT spread on small random graphs where
// enumeration is exact.
func TestPathTheoremRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(8)
		m := n + r.Intn(2*n)
		g := gen.ErdosRenyiGnm(n, m, r)
		graph.AssignRandomNormalizedLT(g, rng.New(seed+1))
		u := uint32(r.Intn(n))
		e := newEnumerator(g, 1e-12, 1<<22)
		exact := e.run(u, nil)
		if e.truncated {
			return true // skip rare dense instances
		}
		mc := spread.Estimate(g, diffusion.NewLT(), []uint32{u}, spread.Options{
			Samples: 60000, Workers: 1, Seed: seed + 2,
		})
		return math.Abs(exact-mc) < 0.05*exact+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedSetDecomposition: σ(S) = Σ_{u∈S} σ^{V−S+u}(u) — validate the
// decomposition used by refreshWindow against Monte-Carlo on a seed set.
func TestSeedSetDecomposition(t *testing.T) {
	g := gen.ErdosRenyiGnm(12, 30, rng.New(3))
	graph.AssignRandomNormalizedLT(g, rng.New(4))
	S := []uint32{0, 5}
	e := newEnumerator(g, 1e-12, 1<<22)
	var sigma float64
	for _, s := range S {
		var excl []uint32
		for _, x := range S {
			if x != s {
				excl = append(excl, x)
			}
		}
		sigma += e.run(s, excl)
	}
	mc := spread.Estimate(g, diffusion.NewLT(), S, spread.Options{Samples: 200000, Seed: 5})
	if math.Abs(sigma-mc) > 0.05*mc+0.1 {
		t.Fatalf("decomposed sigma %v vs MC %v", sigma, mc)
	}
}

// TestThroughBookkeeping: σ^{V−x}(u) = σ(u) − through[x] must equal a
// direct exclusion run for every x.
func TestThroughBookkeeping(t *testing.T) {
	g := gen.ErdosRenyiGnm(10, 30, rng.New(6))
	graph.AssignRandomNormalizedLT(g, rng.New(7))
	e := newEnumerator(g, 1e-12, 1<<22)
	total := e.run(0, nil)
	// Snapshot through before reuse.
	through := append([]float64(nil), e.through...)
	for x := uint32(1); int(x) < g.N(); x++ {
		direct := e.run(0, []uint32{x})
		viaThrough := total - through[x]
		if math.Abs(direct-viaThrough) > 1e-9 {
			t.Fatalf("x=%d: direct %v vs through-derived %v", x, direct, viaThrough)
		}
	}
}
