package simpath

import (
	"errors"
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

func TestEnumeratorPath(t *testing.T) {
	// Path 0→1→2 with weight 0.5: σ(0) = 1 + 0.5 + 0.25 = 1.75.
	g := gen.Path(3, 0.5)
	e := newEnumerator(g, 1e-6, 1<<20)
	got := e.run(0, nil)
	if math.Abs(got-1.75) > 1e-9 {
		t.Fatalf("sigma(0)=%v, want 1.75", got)
	}
	// through[1] = weight of paths containing node 1 = 0.5 + 0.25.
	if math.Abs(e.through[1]-0.75) > 1e-9 {
		t.Fatalf("through[1]=%v, want 0.75", e.through[1])
	}
	// σ^{V−1}(0) = σ(0) − through[1] = 1 (just the trivial path).
	if math.Abs(got-e.through[1]-1) > 1e-9 {
		t.Fatal("sigma minus through mismatch")
	}
}

func TestEnumeratorPruning(t *testing.T) {
	// η above the edge weight prunes everything beyond the start.
	g := gen.Path(5, 0.1)
	e := newEnumerator(g, 0.5, 1<<20)
	if got := e.run(0, nil); got != 1 {
		t.Fatalf("pruned sigma=%v, want 1", got)
	}
}

func TestEnumeratorExclusion(t *testing.T) {
	g := gen.Path(4, 1)
	e := newEnumerator(g, 1e-6, 1<<20)
	// Excluding node 1 cuts the path: σ = 1.
	if got := e.run(0, []uint32{1}); got != 1 {
		t.Fatalf("sigma with exclusion=%v, want 1", got)
	}
}

func TestEnumeratorSimplePathsOnly(t *testing.T) {
	// Cycle with weight 1: paths cannot revisit, so σ(0) = n.
	g := gen.Cycle(5, 1)
	e := newEnumerator(g, 1e-9, 1<<20)
	if got := e.run(0, nil); math.Abs(got-5) > 1e-9 {
		t.Fatalf("cycle sigma=%v, want 5", got)
	}
}

func TestSelectStar(t *testing.T) {
	g := gen.Star(15, 1)
	res, err := Select(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want hub", res.Seeds)
	}
	if math.Abs(res.Spread[0]-15) > 1e-9 {
		t.Fatalf("spread=%v, want 15", res.Spread)
	}
}

func TestSelectSpansCliques(t *testing.T) {
	// Two disjoint LT cliques with weight 1/(half-1) per in-edge.
	const half = 5
	w := float32(1.0 / (half - 1))
	var edges []graph.Edge
	for base := 0; base < 2*half; base += half {
		for u := base; u < base+half; u++ {
			for v := base; v < base+half; v++ {
				if u != v {
					edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v), Weight: w})
				}
			}
		}
	}
	g := graph.MustFromEdges(2*half, edges)
	res, err := Select(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	inA, inB := false, false
	for _, s := range res.Seeds {
		if int(s) < half {
			inA = true
		} else {
			inB = true
		}
	}
	if !inA || !inB {
		t.Fatalf("seeds=%v must span both cliques", res.Seeds)
	}
}

func TestSpreadEstimateTracksMC(t *testing.T) {
	// SIMPATH's path-based spread must be close to Monte-Carlo LT
	// spread for the final seed set.
	g := gen.ChungLuDirected(200, 1000, 2.4, 2.1, rng.New(1))
	graph.AssignRandomNormalizedLT(g, rng.New(2))
	res, err := Select(g, Options{K: 5, Eta: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	mc := spread.Estimate(g, diffusion.NewLT(), res.Seeds, spread.Options{Samples: 30000, Seed: 3})
	est := res.Spread[len(res.Spread)-1]
	if math.Abs(est-mc) > 0.15*mc+0.5 {
		t.Fatalf("SIMPATH estimate %v vs MC %v", est, mc)
	}
}

func TestQualityAboveRandom(t *testing.T) {
	g := gen.ChungLuDirected(500, 2500, 2.4, 2.1, rng.New(4))
	graph.AssignRandomNormalizedLT(g, rng.New(5))
	res, err := Select(g, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	model := diffusion.NewLT()
	mine := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 10000, Seed: 6})
	r := rng.New(7)
	perm := make([]int, g.N())
	r.Perm(perm)
	rand := make([]uint32, 10)
	for i := range rand {
		rand[i] = uint32(perm[i])
	}
	base := spread.Estimate(g, model, rand, spread.Options{Samples: 10000, Seed: 8})
	if mine <= base {
		t.Fatalf("SIMPATH spread %v not above random %v", mine, base)
	}
}

func TestVertexCoverValid(t *testing.T) {
	g := gen.ChungLuDirected(300, 1200, 2.4, 2.1, rng.New(9))
	cover := vertexCover(g)
	for _, e := range g.Edges() {
		if e.From == e.To {
			continue
		}
		if !cover[e.From] && !cover[e.To] {
			t.Fatalf("edge %d->%d uncovered", e.From, e.To)
		}
	}
}

func TestMaxStepsTruncates(t *testing.T) {
	// Dense certain graph has exponentially many simple paths; the cap
	// must fire and the run still terminate with k seeds.
	g := gen.Complete(10, 1)
	res, err := Select(g, Options{K: 2, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation on complete graph")
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
}

func TestOptionErrors(t *testing.T) {
	g := gen.Path(5, 1)
	cases := []Options{
		{K: 0},
		{K: 6},
		{K: 1, Eta: 2},
		{K: 1, Eta: -0.5},
		{K: 1, Lookahead: -1},
		{K: 1, MaxSteps: -1},
	}
	for i, opts := range cases {
		if _, err := Select(g, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d (%+v): got %v", i, opts, err)
		}
	}
	empty := graph.MustFromEdges(0, nil)
	if _, err := Select(empty, Options{K: 1}); !errors.Is(err, ErrBadOptions) {
		t.Error("empty graph accepted")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{
		{From: 0, To: 0, Weight: 0.5},
		{From: 0, To: 1, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.5},
	})
	res, err := Select(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
}
