// Package simpath implements SIMPATH (Goyal, Lu, Lakshmanan — ICDM 2011),
// the state-of-the-art LT-model heuristic the paper benchmarks TIM+
// against in Figures 10 and 11.
//
// SIMPATH rests on the fact that under the linear threshold model the
// spread of a node equals the sum, over all simple paths starting at the
// node, of the product of edge weights along the path. Spread is estimated
// by enumerating those paths, pruning any prefix whose weight falls below
// a threshold η (default 1e-3).
//
// Two published optimizations are implemented:
//
//   - Vertex-cover first round: spreads of nodes outside a vertex cover
//     are derived from their neighbors' enumerations via
//     σ(v) = 1 + Σ b(v,u)·σ^{V−v}(u), halving first-round work.
//   - Look-ahead selection: each subsequent round batch-evaluates the
//     top-ℓ CELF candidates (default ℓ=4) sharing the enumeration from
//     the current seed set.
//
// During any enumeration from u the subtree-sum trick yields, at no extra
// asymptotic cost, σ^{V−x}(u) for every x simultaneously (total path
// weight through x is subtracted), which is what both optimizations rely
// on.
//
// SIMPATH provides no approximation guarantee; its role here is the
// Figure 10/11 baseline.
package simpath

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Options configures SIMPATH.
type Options struct {
	// K is the seed-set size (required).
	K int
	// Eta is the path-pruning threshold η (default 1e-3, §7.3).
	Eta float64
	// Lookahead is the CELF look-ahead window ℓ (default 4, §7.3).
	Lookahead int
	// MaxSteps caps total path-enumeration steps as a safety valve
	// against pathological dense graphs (default 50M). When the cap
	// binds, Result.Truncated is set and remaining spreads are computed
	// from whatever enumeration completed.
	MaxSteps int64
}

// Result reports a SIMPATH run.
type Result struct {
	Seeds []uint32
	// Spread[i] is SIMPATH's internal estimate of σ(Seeds[:i+1]).
	Spread []float64
	// Truncated reports the MaxSteps cap fired at least once.
	Truncated bool
	// Steps is the total number of enumeration steps performed.
	Steps int64
}

// ErrBadOptions wraps option-validation failures.
var ErrBadOptions = errors.New("simpath: invalid options")

// enumerator performs pruned simple-path enumeration with per-node
// path-weight accounting.
type enumerator struct {
	g        *graph.Graph
	eta      float64
	maxSteps int64

	onPath    []bool
	excluded  []bool
	through   []float64 // through[x] = Σ weight of emitted paths containing x
	steps     int64
	truncated bool
}

func newEnumerator(g *graph.Graph, eta float64, maxSteps int64) *enumerator {
	return &enumerator{
		g:        g,
		eta:      eta,
		maxSteps: maxSteps,
		onPath:   make([]bool, g.N()),
		excluded: make([]bool, g.N()),
		through:  make([]float64, g.N()),
	}
}

// run enumerates simple paths from start within V − excludedSet and
// returns σ^{V−excluded}(start). Afterwards, through[x] holds the total
// weight of counted paths containing x (excluding the trivial length-0
// path, which contains only start), valid until the next run.
func (e *enumerator) run(start uint32, excludedSet []uint32) float64 {
	for _, x := range excludedSet {
		e.excluded[x] = true
	}
	for i := range e.through {
		e.through[i] = 0
	}
	total := e.dfs(start, 1)
	for _, x := range excludedSet {
		e.excluded[x] = false
	}
	return total
}

// dfs returns the total path weight of all counted paths with the current
// prefix ending at u (including the prefix itself, whose weight is w).
// through[x] accumulates subtree sums so that, at top level, through[x]
// is the weight of paths containing x.
func (e *enumerator) dfs(u uint32, w float64) float64 {
	e.steps++
	if e.steps > e.maxSteps {
		e.truncated = true
		return w
	}
	subtotal := w
	e.onPath[u] = true
	to, wt := e.g.OutNeighbors(u)
	for i := range to {
		v := to[i]
		if e.onPath[v] || e.excluded[v] {
			continue
		}
		nw := w * float64(wt[i])
		if nw < e.eta {
			continue
		}
		subtotal += e.dfs(v, nw)
	}
	e.onPath[u] = false
	e.through[u] += subtotal
	return subtotal
}

// celfItem is a lazy-greedy queue entry.
type celfItem struct {
	node  uint32
	gain  float64
	round int
}

type celfQueue []*celfItem

func (q celfQueue) Len() int            { return len(q) }
func (q celfQueue) Less(i, j int) bool  { return q[i].gain > q[j].gain }
func (q celfQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *celfQueue) Push(x interface{}) { *q = append(*q, x.(*celfItem)) }
func (q *celfQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Select runs SIMPATH on g (LT model implied; edge weights are influence
// weights with per-node in-sums ≤ 1).
func Select(g *graph.Graph, opts Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadOptions)
	}
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("%w: K=%d with n=%d", ErrBadOptions, opts.K, n)
	}
	if opts.Eta == 0 {
		opts.Eta = 1e-3
	}
	if opts.Eta <= 0 || opts.Eta > 1 {
		return nil, fmt.Errorf("%w: Eta=%v", ErrBadOptions, opts.Eta)
	}
	if opts.Lookahead == 0 {
		opts.Lookahead = 4
	}
	if opts.Lookahead < 1 {
		return nil, fmt.Errorf("%w: Lookahead=%d", ErrBadOptions, opts.Lookahead)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000_000
	}
	if opts.MaxSteps < 0 {
		return nil, fmt.Errorf("%w: MaxSteps=%d", ErrBadOptions, opts.MaxSteps)
	}

	e := newEnumerator(g, opts.Eta, opts.MaxSteps)
	res := &Result{}

	// First round with the vertex-cover optimization.
	sigma := firstRoundSpreads(g, e)
	q := make(celfQueue, 0, n)
	for v := 0; v < n; v++ {
		q = append(q, &celfItem{node: uint32(v), gain: sigma[v], round: 0})
	}
	heap.Init(&q)

	seeds := make([]uint32, 0, opts.K)
	inSeeds := make([]bool, n)
	var cur float64
	for len(seeds) < opts.K && q.Len() > 0 {
		top := heap.Pop(&q).(*celfItem)
		if top.round == len(seeds) {
			seeds = append(seeds, top.node)
			inSeeds[top.node] = true
			cur += top.gain
			res.Spread = append(res.Spread, cur)
			continue
		}
		// Batch-refresh the look-ahead window: top plus the next ℓ−1.
		window := []*celfItem{top}
		for len(window) < opts.Lookahead && q.Len() > 0 {
			window = append(window, heap.Pop(&q).(*celfItem))
		}
		refreshWindow(g, e, seeds, inSeeds, cur, window)
		for _, it := range window {
			it.round = len(seeds)
			heap.Push(&q, it)
		}
	}
	res.Seeds = seeds
	res.Truncated = e.truncated
	res.Steps = e.steps
	return res, nil
}

// firstRoundSpreads computes σ(v) for every node: enumerate from vertex
// cover members directly, then derive non-cover spreads via
// σ(v) = 1 + Σ_{(v,u)} b(v,u)·σ^{V−v}(u).
func firstRoundSpreads(g *graph.Graph, e *enumerator) []float64 {
	n := g.N()
	cover := vertexCover(g)
	sigma := make([]float64, n)
	// sigmaMinus[(v,u)] = σ^{V−v}(u) for non-cover v needing neighbor u.
	type key struct{ v, u uint32 }
	sigmaMinus := make(map[key]float64)
	need := make(map[uint32]bool, n) // nodes whose σ^{V−v}(·) matters
	for v := 0; v < n; v++ {
		if !cover[v] {
			need[uint32(v)] = true
		}
	}
	for u := 0; u < n; u++ {
		if !cover[u] {
			continue
		}
		sigma[u] = e.run(uint32(u), nil)
		// Record σ^{V−v}(u) for in-neighbors v outside the cover.
		src, _ := g.InNeighbors(uint32(u))
		for _, v := range src {
			if need[v] && v != uint32(u) {
				sigmaMinus[key{v, uint32(u)}] = sigma[u] - e.through[v]
			}
		}
	}
	for v := 0; v < n; v++ {
		if cover[v] {
			continue
		}
		total := 1.0
		to, w := g.OutNeighbors(uint32(v))
		for i := range to {
			u := to[i]
			if u == uint32(v) {
				continue // self-loop contributes nothing
			}
			sm, ok := sigmaMinus[key{uint32(v), u}]
			if !ok {
				// u outside the cover can only happen for edges whose
				// undirected projection the cover missed (not possible
				// by construction) — fall back to a direct run.
				sm = e.run(u, []uint32{uint32(v)})
			}
			total += float64(w[i]) * sm
		}
		sigma[v] = total
	}
	return sigma
}

// vertexCover returns a 2-approximate vertex cover of the undirected
// projection of g via greedy maximal matching.
func vertexCover(g *graph.Graph) []bool {
	n := g.N()
	cover := make([]bool, n)
	for u := 0; u < n; u++ {
		if cover[u] {
			continue
		}
		to, _ := g.OutNeighbors(uint32(u))
		for _, v := range to {
			if int(v) != u && !cover[v] {
				cover[u] = true
				cover[v] = true
				break
			}
		}
	}
	// Nodes with only in-edges must still be covered if any in-edge
	// endpoint pair is uncovered.
	for v := 0; v < n; v++ {
		if cover[v] {
			continue
		}
		src, _ := g.InNeighbors(uint32(v))
		for _, u := range src {
			if int(u) != v && !cover[u] {
				cover[v] = true
				cover[u] = true
				break
			}
		}
	}
	return cover
}

// refreshWindow recomputes the exact marginal gain of each window
// candidate x against the current seed set S:
//
//	σ(S ∪ {x}) = σ^{V−x}(S) + σ^{V−S}(x)
//
// The first term is obtained for all candidates from |S| shared
// enumerations (one per seed, subtracting through[x]); the second needs
// one enumeration per candidate.
func refreshWindow(g *graph.Graph, e *enumerator, seeds []uint32, inSeeds []bool, cur float64, window []*celfItem) {
	if len(seeds) == 0 {
		for _, it := range window {
			it.gain = e.run(it.node, nil)
		}
		return
	}
	// σ^{V−x}(S) = Σ_{s∈S} [σ^{V−(S∖s)}(s) − weight of paths through x].
	sigmaS := make([]float64, len(window)) // per candidate
	excl := make([]uint32, 0, len(seeds))
	for _, s := range seeds {
		excl = excl[:0]
		for _, t := range seeds {
			if t != s {
				excl = append(excl, t)
			}
		}
		total := e.run(s, excl)
		for i, it := range window {
			sigmaS[i] += total - e.through[it.node]
		}
	}
	for i, it := range window {
		sigmaX := e.run(it.node, seeds)
		it.gain = sigmaS[i] + sigmaX - cur
		if it.gain < 0 {
			// Numerical guard; marginals are non-negative in theory.
			it.gain = 0
		}
	}
}
