// Package greedy implements Kempe et al.'s hill-climbing influence
// maximization (§2.2 of the paper) with a Monte-Carlo spread oracle, in
// three flavors:
//
//   - Plain: the original greedy — every iteration re-estimates the
//     marginal gain of every candidate (O(kmnr) total, §2.2).
//   - CELF: Leskovec et al.'s lazy-forward evaluation — submodularity
//     makes stale marginal gains upper bounds, so candidates are kept in
//     a priority queue and re-evaluated only when they surface.
//   - CELFPlusPlus: Goyal et al.'s CELF++ — each re-evaluation also
//     computes the candidate's gain with respect to S ∪ {current best},
//     so if that best is indeed selected the candidate needs no further
//     re-evaluation in the next round.
//
// CELF++ is the state-of-the-art Greedy variant the paper benchmarks
// against in Figure 3. The approximation guarantee is Lemma 10: with r
// satisfying Equation 10, Greedy is (1 − 1/e − ε)-approximate with
// probability 1 − n^−ℓ.
package greedy

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/spread"
)

// Strategy selects the greedy variant.
type Strategy int

const (
	// CELFPlusPlus is the default (fastest, same output quality).
	CELFPlusPlus Strategy = iota
	// CELF is lazy-forward evaluation.
	CELF
	// Plain is the unoptimized original.
	Plain
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case CELFPlusPlus:
		return "CELF++"
	case CELF:
		return "CELF"
	case Plain:
		return "Greedy"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Oracle selects how E[I(S)] is estimated inside the greedy loop.
type Oracle int

const (
	// OracleFreshMC estimates every spread with fresh Monte-Carlo
	// cascades (the literature's standard setup; default).
	OracleFreshMC Oracle = iota
	// OracleSnapshots pre-samples R live-edge worlds once and evaluates
	// every seed set exactly against them ("StaticGreedy" style):
	// faster for large k, and the common random numbers make marginal
	// comparisons noise-free at the cost of world-sampling bias.
	OracleSnapshots
)

// String implements fmt.Stringer.
func (o Oracle) String() string {
	switch o {
	case OracleFreshMC:
		return "fresh-mc"
	case OracleSnapshots:
		return "snapshots"
	}
	return fmt.Sprintf("Oracle(%d)", int(o))
}

// Options configures a greedy run.
type Options struct {
	// R is the Monte-Carlo sample count per spread estimate (or the
	// number of snapshot worlds). Kempe et al. suggest 10000 (§2.2);
	// the paper's experiments use the same. Default 10000.
	R int
	// Workers parallelizes each spread estimate (default GOMAXPROCS).
	Workers int
	// Seed drives the Monte-Carlo sampling.
	Seed uint64
	// Strategy selects Plain, CELF, or CELF++ (default CELF++).
	Strategy Strategy
	// SpreadOracle selects fresh Monte-Carlo (default) or snapshots.
	SpreadOracle Oracle
}

// Result reports the selection.
type Result struct {
	// Seeds in pick order.
	Seeds []uint32
	// Spread[i] is the estimated E[I(Seeds[:i+1])] after each pick.
	Spread []float64
	// Evaluations counts spread estimations performed — the quantity
	// CELF/CELF++ exist to reduce.
	Evaluations int64
}

// ErrBadOptions wraps option-validation failures.
var ErrBadOptions = errors.New("greedy: invalid options")

// item is a CELF/CELF++ priority-queue entry.
type item struct {
	node uint32
	gain float64 // marginal gain estimate (upper bound if stale)
	// round is the |S| at which gain was computed; gain is exact for
	// the current S iff round == len(S).
	round int
	// CELF++ extras: gain2 is the marginal gain w.r.t. S ∪ {bestAtEval}
	// and bestAtEval the queue head when this entry was evaluated.
	gain2      float64
	bestAtEval int64 // node id, -1 if unset
}

// queue is a max-heap of items by gain.
type queue []*item

func (q queue) Len() int            { return len(q) }
func (q queue) Less(i, j int) bool  { return q[i].gain > q[j].gain }
func (q queue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x interface{}) { *q = append(*q, x.(*item)) }
func (q *queue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Select runs the configured greedy variant and returns k seeds.
func Select(g *graph.Graph, model diffusion.Model, k int, opts Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadOptions)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d with n=%d", ErrBadOptions, k, n)
	}
	if opts.R == 0 {
		opts.R = 10000
	}
	if opts.R < 0 {
		return nil, fmt.Errorf("%w: R=%d", ErrBadOptions, opts.R)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch opts.SpreadOracle {
	case OracleFreshMC, OracleSnapshots:
	default:
		return nil, fmt.Errorf("%w: unknown oracle %d", ErrBadOptions, int(opts.SpreadOracle))
	}
	switch opts.Strategy {
	case Plain:
		return selectPlain(g, model, k, opts)
	case CELF, CELFPlusPlus:
		return selectLazy(g, model, k, opts)
	}
	return nil, fmt.Errorf("%w: unknown strategy %d", ErrBadOptions, int(opts.Strategy))
}

// estimator evaluates E[I(S)] with the run's fixed Monte-Carlo budget,
// either with fresh cascades per call or against shared snapshots.
type estimator struct {
	g     *graph.Graph
	model diffusion.Model
	opts  Options
	calls int64

	snapEval *spread.Evaluator // non-nil for OracleSnapshots
}

func newEstimator(g *graph.Graph, model diffusion.Model, opts Options) *estimator {
	e := &estimator{g: g, model: model, opts: opts}
	if opts.SpreadOracle == OracleSnapshots {
		snaps := spread.NewSnapshots(g, model, opts.R, opts.Workers, opts.Seed)
		e.snapEval = snaps.NewEvaluator()
	}
	return e
}

func (e *estimator) spreadOf(seeds []uint32) float64 {
	e.calls++
	if e.snapEval != nil {
		return e.snapEval.Spread(seeds)
	}
	return spread.Estimate(e.g, e.model, seeds, spread.Options{
		Samples: e.opts.R,
		Workers: e.opts.Workers,
		// Distinct streams per call keep estimates independent.
		Seed: e.opts.Seed + uint64(e.calls)*0x9e3779b97f4a7c15,
	})
}

func selectPlain(g *graph.Graph, model diffusion.Model, k int, opts Options) (*Result, error) {
	est := newEstimator(g, model, opts)
	res := &Result{}
	var cur float64
	seeds := make([]uint32, 0, k)
	inSeeds := make([]bool, g.N())
	scratch := make([]uint32, 0, k+1)
	for len(seeds) < k {
		bestNode, bestSpread := int64(-1), cur
		for v := 0; v < g.N(); v++ {
			if inSeeds[v] {
				continue
			}
			scratch = append(append(scratch[:0], seeds...), uint32(v))
			s := est.spreadOf(scratch)
			if s > bestSpread || bestNode < 0 {
				bestNode, bestSpread = int64(v), s
			}
		}
		seeds = append(seeds, uint32(bestNode))
		inSeeds[bestNode] = true
		cur = bestSpread
		res.Spread = append(res.Spread, cur)
	}
	res.Seeds = seeds
	res.Evaluations = est.calls
	return res, nil
}

func selectLazy(g *graph.Graph, model diffusion.Model, k int, opts Options) (*Result, error) {
	est := newEstimator(g, model, opts)
	res := &Result{}
	n := g.N()
	seeds := make([]uint32, 0, k)
	scratch := make([]uint32, 0, k+2)

	// Round 0: evaluate every node once (unavoidable, §2.3's discussion
	// of Greedy's first iteration).
	q := make(queue, 0, n)
	for v := 0; v < n; v++ {
		s := est.spreadOf([]uint32{uint32(v)})
		q = append(q, &item{node: uint32(v), gain: s, round: 0, bestAtEval: -1})
	}
	heap.Init(&q)

	var cur float64
	var lastPicked int64 = -1
	for len(seeds) < k && q.Len() > 0 {
		top := heap.Pop(&q).(*item)
		if top.round == len(seeds) {
			// Fresh estimate: select.
			seeds = append(seeds, top.node)
			cur += top.gain
			res.Spread = append(res.Spread, cur)
			lastPicked = int64(top.node)
			continue
		}
		if opts.Strategy == CELFPlusPlus && top.bestAtEval >= 0 && top.bestAtEval == lastPicked && top.round == len(seeds)-1 {
			// CELF++ shortcut: gain2 was computed against exactly the
			// current seed set.
			top.gain = top.gain2
			top.round = len(seeds)
			top.bestAtEval = -1
			heap.Push(&q, top)
			continue
		}
		// Re-evaluate marginal gain against the current S.
		scratch = append(append(scratch[:0], seeds...), top.node)
		s1 := est.spreadOf(scratch)
		top.gain = s1 - cur
		top.round = len(seeds)
		if opts.Strategy == CELFPlusPlus && q.Len() > 0 {
			head := q[0]
			scratch = append(scratch, head.node)
			s2 := est.spreadOf(scratch)
			// gain2 is top's marginal if head joins S first.
			top.gain2 = s2 - (cur + head.gain)
			top.bestAtEval = int64(head.node)
		} else {
			top.bestAtEval = -1
		}
		heap.Push(&q, top)
	}
	res.Seeds = seeds
	res.Evaluations = est.calls
	return res, nil
}
