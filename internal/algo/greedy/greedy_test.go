package greedy

import (
	"errors"
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spread"
)

func TestSelectStarAllStrategies(t *testing.T) {
	g := gen.Star(12, 1)
	for _, strat := range []Strategy{Plain, CELF, CELFPlusPlus} {
		res, err := Select(g, diffusion.NewIC(), 1, Options{R: 200, Seed: 1, Strategy: strat, Workers: 1})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Seeds[0] != 0 {
			t.Fatalf("%v picked %v, want hub 0", strat, res.Seeds)
		}
		if math.Abs(res.Spread[0]-12) > 0.01 {
			t.Fatalf("%v spread %v, want 12", strat, res.Spread)
		}
	}
}

func TestSelectPathCertain(t *testing.T) {
	g := gen.Path(8, 1)
	res, err := Select(g, diffusion.NewIC(), 1, Options{R: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want [0]", res.Seeds)
	}
}

func TestSelectK2DisjointCliques(t *testing.T) {
	var edges []graph.Edge
	for base := 0; base < 10; base += 5 {
		for u := base; u < base+5; u++ {
			for v := base; v < base+5; v++ {
				if u != v {
					edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v), Weight: 1})
				}
			}
		}
	}
	g := graph.MustFromEdges(10, edges)
	for _, strat := range []Strategy{CELF, CELFPlusPlus} {
		res, err := Select(g, diffusion.NewIC(), 2, Options{R: 100, Seed: 3, Strategy: strat, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		inA, inB := false, false
		for _, s := range res.Seeds {
			if s < 5 {
				inA = true
			} else {
				inB = true
			}
		}
		if !inA || !inB {
			t.Fatalf("%v seeds=%v must span both cliques", strat, res.Seeds)
		}
	}
}

func TestCELFFewerEvaluationsThanPlain(t *testing.T) {
	g := gen.ErdosRenyiGnm(60, 300, rng.New(4))
	graph.AssignWeightedCascade(g)
	plain, err := Select(g, diffusion.NewIC(), 3, Options{R: 50, Seed: 5, Strategy: Plain, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	celf, err := Select(g, diffusion.NewIC(), 3, Options{R: 50, Seed: 5, Strategy: CELF, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if celf.Evaluations >= plain.Evaluations {
		t.Fatalf("CELF evals %d not fewer than Plain %d", celf.Evaluations, plain.Evaluations)
	}
}

func TestSpreadNonDecreasing(t *testing.T) {
	g := gen.ErdosRenyiGnm(50, 250, rng.New(6))
	graph.AssignWeightedCascade(g)
	res, err := Select(g, diffusion.NewIC(), 5, Options{R: 300, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Spread); i++ {
		if res.Spread[i] < res.Spread[i-1]-0.5 {
			t.Fatalf("spread decreased: %v", res.Spread)
		}
	}
}

func TestGreedyQualityVsTruth(t *testing.T) {
	// CELF++ with decent R should be near the exhaustive best single
	// seed.
	g := gen.ChungLuDirected(150, 900, 2.4, 2.1, rng.New(8))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	res, err := Select(g, model, 1, Options{R: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mine := spread.Estimate(g, model, res.Seeds, spread.Options{Samples: 20000, Seed: 10})
	best := 0.0
	for v := 0; v < g.N(); v++ {
		s := spread.Estimate(g, model, []uint32{uint32(v)}, spread.Options{Samples: 2000, Seed: 11})
		if s > best {
			best = s
		}
	}
	if mine < 0.85*best {
		t.Fatalf("greedy pick spread %v far below best single %v", mine, best)
	}
}

func TestSelectLTModel(t *testing.T) {
	g := gen.Star(10, 1)
	res, err := Select(g, diffusion.NewLT(), 1, Options{R: 200, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("LT seeds=%v", res.Seeds)
	}
}

func TestSelectOptionErrors(t *testing.T) {
	g := gen.Path(5, 1)
	model := diffusion.NewIC()
	cases := []struct {
		k    int
		opts Options
	}{
		{0, Options{}},
		{6, Options{}},
		{-1, Options{}},
		{1, Options{R: -5}},
		{1, Options{Strategy: Strategy(9)}},
	}
	for i, c := range cases {
		if _, err := Select(g, model, c.k, c.opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d: got %v", i, err)
		}
	}
	empty := graph.MustFromEdges(0, nil)
	if _, err := Select(empty, model, 1, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Error("empty graph accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Plain.String() != "Greedy" || CELF.String() != "CELF" || CELFPlusPlus.String() != "CELF++" {
		t.Fatal("Strategy.String broken")
	}
	if Strategy(5).String() == "" {
		t.Fatal("unknown strategy empty")
	}
	if OracleFreshMC.String() != "fresh-mc" || OracleSnapshots.String() != "snapshots" {
		t.Fatal("Oracle.String broken")
	}
	if Oracle(9).String() == "" {
		t.Fatal("unknown oracle empty")
	}
}

func TestSnapshotOracleStar(t *testing.T) {
	g := gen.Star(12, 1)
	for _, strat := range []Strategy{Plain, CELF, CELFPlusPlus} {
		res, err := Select(g, diffusion.NewIC(), 1, Options{
			R: 50, Seed: 1, Strategy: strat, Workers: 1, SpreadOracle: OracleSnapshots,
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Seeds[0] != 0 {
			t.Fatalf("%v snapshot oracle picked %v, want hub", strat, res.Seeds)
		}
	}
}

func TestSnapshotOracleQualityMatchesFreshMC(t *testing.T) {
	g := gen.ChungLuDirected(200, 1200, 2.4, 2.1, rng.New(20))
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()
	snap, err := Select(g, model, 5, Options{R: 500, Seed: 21, SpreadOracle: OracleSnapshots})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Select(g, model, 5, Options{R: 500, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	a := spread.Estimate(g, model, snap.Seeds, spread.Options{Samples: 20000, Seed: 23})
	b := spread.Estimate(g, model, fresh.Seeds, spread.Options{Samples: 20000, Seed: 24})
	if math.Abs(a-b) > 0.1*b+1 {
		t.Fatalf("snapshot oracle quality %v vs fresh MC %v", a, b)
	}
}

func TestUnknownOracleRejected(t *testing.T) {
	g := gen.Path(5, 1)
	if _, err := Select(g, diffusion.NewIC(), 1, Options{SpreadOracle: Oracle(7)}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("got %v", err)
	}
}
