package evolve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Incremental RR-collection maintenance.
//
// A collection built by diffusion.ExtendCollection draws set i from the
// keyed stream rng.New(seed).Split(i) — the stream depends on (seed, i)
// only, never on how many sets were sampled or by which worker. Repair
// exploits that: after a graph mutation, re-deriving set i from its own
// stream on the new snapshot yields exactly the set a cold sampler would
// have produced, so a collection where only the affected sets are
// re-derived is bit-identical — members, order, widths — to one sampled
// from scratch on the mutated graph.
//
// Which sets are affected? Reverse-reachable sampling only ever examines
// the in-edge lists of nodes already in the set. A mutation on edge u→v
// (insert, delete, or reweight) changes v's in-edge list and nothing
// else, so a set that does not contain v replays identically: same
// traversal, same coin flips, same width. A set that does contain v must
// be re-derived — even when the mutated edge's coin "would not have
// mattered" — because the sampler consumes its stream sequentially and
// any change to v's in-list shifts every subsequent draw (and the set's
// width, which counts the in-degrees of its members, changes
// regardless). Node growth additionally perturbs the root draw
// r.Intn(n): Repair replays that first draw under both node counts and
// keeps a set only when the root and the post-draw stream state agree.
// DESIGN.md §8.3 gives the full argument, including why per-trace
// deletion tracking cannot be tightened further without abandoning
// bit-identity.

// ErrUnsupportedModel reports a diffusion model Repair cannot maintain
// incrementally. General triggering models sample through a user-supplied
// TriggerSampler whose stream consumption Repair cannot reason about, so
// callers must fall back to a cold resample.
var ErrUnsupportedModel = errors.New("evolve: model not supported by incremental repair")

// RepairStats reports what one Repair call did.
type RepairStats struct {
	// Sets is the collection size.
	Sets int64
	// Repaired counts sets re-derived on the new snapshot.
	Repaired int64
	// Reused counts sets kept untouched.
	Reused int64
	// RootChanged counts repaired sets whose root draw changed with the
	// node count (a subset of Repaired).
	RootChanged int64
}

// Repair returns a collection bit-identical to what ExtendCollection
// would sample cold on g (the post-mutation snapshot) with the same seed
// and count, re-deriving only the sets delta could have affected. widths
// must hold the per-set widths of col (as ExtendCollection reported
// them); the repaired per-set widths are returned alongside the repaired
// collection. col and widths are never mutated. The model must be IC or
// LT; g.N() must equal delta.NAfter.
func Repair(ctx context.Context, g *graph.Graph, model diffusion.Model, col *diffusion.RRCollection, widths []int64, delta Delta, seed uint64, workers int) (*diffusion.RRCollection, []int64, RepairStats, error) {
	return RepairConfig(ctx, g, model, diffusion.SampleConfig{}, col, widths, delta, seed, workers)
}

// RepairConfig is Repair for collections sampled under a constrained
// scenario (diffusion.ExtendCollectionConfig with the same cfg): weighted
// roots, bounded horizon, or both. The affected-set argument carries over
// unchanged — a horizon-capped reverse walk still only examines the
// in-edge lists of nodes it visits, so a set without a touched head
// replays identically — with one improvement: the RootSampler contract
// requires root draws to be graph-independent, so under node growth only
// uniform-root (cfg.Roots == nil) collections need the root-instability
// check; weighted collections skip it entirely.
func RepairConfig(ctx context.Context, g *graph.Graph, model diffusion.Model, cfg diffusion.SampleConfig, col *diffusion.RRCollection, widths []int64, delta Delta, seed uint64, workers int) (*diffusion.RRCollection, []int64, RepairStats, error) {
	var stats RepairStats
	switch model.Kind() {
	case diffusion.IC, diffusion.LT:
	default:
		return nil, nil, stats, fmt.Errorf("%w: %v", ErrUnsupportedModel, model)
	}
	count := col.Count()
	if len(widths) != count {
		return nil, nil, stats, fmt.Errorf("evolve: %d widths for %d sets", len(widths), count)
	}
	if g.N() != delta.NAfter {
		return nil, nil, stats, fmt.Errorf("evolve: snapshot has %d nodes, delta says %d", g.N(), delta.NAfter)
	}
	stats.Sets = int64(count)
	span := obs.StartSpan(ctx, "rr.repair")
	defer func() {
		span.Attr("sets", stats.Sets).Attr("repaired", stats.Repaired).
			Attr("reused", stats.Reused).Attr("root_changed", stats.RootChanged).End()
	}()
	if count == 0 {
		return &diffusion.RRCollection{Off: []int64{0}}, nil, stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Phase 1: identify affected sets.
	base := rng.New(seed)
	todo, rootChanged := affectedSets(col, delta, seed, cfg.Roots == nil)
	stats.RootChanged = rootChanged
	stats.Repaired = int64(len(todo))
	stats.Reused = stats.Sets - stats.Repaired

	// Phase 2: re-derive the affected sets from their own keyed streams,
	// in parallel. Chunking is arbitrary — each set's bytes depend only on
	// (seed, index, g) — so the result is worker-count independent.
	newSets := make([][]uint32, len(todo))
	newWidths := make([]int64, len(todo))
	if len(todo) > 0 {
		if workers > len(todo) {
			workers = len(todo)
		}
		var wg sync.WaitGroup
		chunk := (len(todo) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(todo) {
				hi = len(todo)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				sampler := diffusion.AcquireSampler(g, model, cfg)
				defer diffusion.ReleaseSampler(sampler)
				var stream rng.Rand
				for j := lo; j < hi; j++ {
					if ctx != nil && (j-lo)&63 == 0 && ctx.Err() != nil {
						return
					}
					idx := todo[j]
					base.SplitInto(uint64(idx), &stream)
					set, width := sampler.Sample(&stream, nil)
					newSets[j] = set
					newWidths[j] = width
				}
			}(lo, hi)
		}
		wg.Wait()
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, stats, err
			}
		}
	}

	// Phase 3: splice kept spans and re-derived sets into a fresh arena.
	var flatLen int64
	for i := 0; i < count; i++ {
		flatLen += col.Off[i+1] - col.Off[i]
	}
	for j, idx := range todo {
		flatLen += int64(len(newSets[j])) - (col.Off[idx+1] - col.Off[idx])
	}
	out := &diffusion.RRCollection{
		Flat: make([]uint32, 0, flatLen),
		Off:  make([]int64, 1, count+1),
	}
	outWidths := make([]int64, count)
	next := 0 // next entry of todo to splice
	for i := 0; i < count; i++ {
		if next < len(todo) && int(todo[next]) == i {
			out.Flat = append(out.Flat, newSets[next]...)
			outWidths[i] = newWidths[next]
			next++
		} else {
			out.Flat = append(out.Flat, col.Set(i)...)
			outWidths[i] = widths[i]
		}
		out.Off = append(out.Off, int64(len(out.Flat)))
		out.TotalWidth += outWidths[i]
	}
	return out, outWidths, stats, nil
}

// AffectedSets returns, ascending, the indices of the sets an exact
// repair must re-derive for delta — sets containing a touched head, plus
// sets whose root draw destabilizes under node growth — together with
// the count of the latter. This is THE affected-set criterion: Repair
// re-derives exactly these indices, DeltaImpact's exact bound counts
// them, and tools patching per-set side state (cmd/evolvereplay's trace
// arena) must use the same list. It assumes uniform root sampling;
// weighted-root collections (RepairConfig with a RootSampler) have no
// root instability at all, because the sampler contract pins root draws
// to the fixed weight profile, never to the node count.
func AffectedSets(col *diffusion.RRCollection, delta Delta, seed uint64) (indices []int32, rootChanged int64) {
	return affectedSets(col, delta, seed, true)
}

// affectedSets implements AffectedSets; uniformRoots selects whether the
// root-instability scan under node growth applies.
func affectedSets(col *diffusion.RRCollection, delta Delta, seed uint64, uniformRoots bool) (indices []int32, rootChanged int64) {
	count := col.Count()
	var affected []bool
	if uniformRoots {
		affected = rootUnstableSets(count, delta.NBefore, delta.NAfter, seed)
	}
	for _, a := range affected {
		if a {
			rootChanged++
		}
	}
	if affected == nil {
		affected = make([]bool, count)
	}
	if len(delta.Heads) > 0 {
		headMark := make([]bool, delta.NAfter)
		for _, h := range delta.Heads {
			headMark[h] = true
		}
		for i := 0; i < count; i++ {
			if affected[i] {
				continue
			}
			for _, v := range col.Set(i) {
				if headMark[v] {
					affected[i] = true
					break
				}
			}
		}
	}
	for i, a := range affected {
		if a {
			indices = append(indices, int32(i))
		}
	}
	return indices, rootChanged
}

// rootUnstableSets marks the sets whose root draw changes between node
// counts nBefore and nAfter (nil when the count is unchanged). A set is
// unstable when the root differs or the post-draw stream state differs —
// Intn's rejection loop can consume a different number of raw draws for
// different n even when it lands on the same root.
func rootUnstableSets(count, nBefore, nAfter int, seed uint64) []bool {
	if nBefore == nAfter {
		return nil
	}
	base := rng.New(seed)
	unstable := make([]bool, count)
	var rOld, rNew rng.Rand
	for i := 0; i < count; i++ {
		base.SplitInto(uint64(i), &rOld)
		rNew = rOld
		if rOld.Intn(nBefore) != rNew.Intn(nAfter) || rOld != rNew {
			unstable[i] = true
		}
	}
	return unstable
}

// Impact classifies a collection's exposure to one mutation batch. It
// contrasts the exact-repair bound (what Repair re-derives to stay
// bit-identical to a cold sample) with the provenance-tight bound a
// maintainer with per-edge keyed randomness could achieve: sets whose
// recorded trace actually used a deleted or reweighted edge, or that
// contain an inserted edge's head. The difference — AlignmentOnly — is
// the price of sequential stream consumption: sets re-derived not because
// their membership is at risk but because a changed in-list shifts every
// draw after it.
type Impact struct {
	Sets int
	// Affected is the exact-repair bound: sets containing any touched
	// head, plus root-unstable sets under node growth.
	Affected int
	// MembershipRisk is the provenance-tight bound (requires traces).
	MembershipRisk int
	// AlignmentOnly = Affected − MembershipRisk.
	AlignmentOnly int
}

// DeltaImpact computes the Impact of batch b on a collection sampled at
// node count nBefore (growing to nAfter), using recorded provenance.
// traces must parallel col set for set (diffusion.SampleTraced). seed is
// the collection's sampling seed, used to replay root draws under node
// growth.
func DeltaImpact(col *diffusion.RRCollection, traces *diffusion.TraceCollection, b Batch, nBefore, nAfter int, seed uint64) Impact {
	count := col.Count()
	imp := Impact{Sets: count}
	if traces.Count() != count {
		panic(fmt.Sprintf("evolve: %d traces for %d sets", traces.Count(), count))
	}

	headSet := make(map[uint32]struct{})
	insertHead := make(map[uint32]bool)
	for _, k := range b.Deletes {
		headSet[k.To] = struct{}{}
	}
	for _, e := range b.Reweights {
		headSet[e.To] = struct{}{}
	}
	for _, e := range b.Inserts {
		headSet[e.To] = struct{}{}
		insertHead[e.To] = true
	}
	risky := make(map[EdgeKey]bool)
	for _, k := range b.Deletes {
		risky[k] = true
	}
	for _, e := range b.Reweights {
		risky[EdgeKey{e.From, e.To}] = true
	}

	exact, _ := AffectedSets(col, Delta{NBefore: nBefore, NAfter: nAfter, Heads: sortedHeads(headSet)}, seed)
	imp.Affected = len(exact)

	rootUnstable := rootUnstableSets(count, nBefore, nAfter, seed)
	for i := 0; i < count; i++ {
		risk := rootUnstable != nil && rootUnstable[i]
		if !risk {
			for _, v := range col.Set(i) {
				if insertHead[v] {
					risk = true
					break
				}
			}
		}
		if !risk {
			for _, e := range traces.Set(i) {
				if risky[EdgeKey{e.From, e.To}] {
					risk = true
					break
				}
			}
		}
		if risk {
			imp.MembershipRisk++
		}
	}
	imp.AlignmentOnly = imp.Affected - imp.MembershipRisk
	return imp
}
