package evolve

import (
	"testing"

	"repro/internal/graph"
)

func TestTouchedTails(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{From: 0, To: 2, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.5},
		{From: 3, To: 4, Weight: 0.5},
	})
	eg := New(g, nil, Options{})
	oldG, v0 := eg.Snapshot()

	// Delete 1→2 and insert 4→2: head 2 changes. Old in-neighbors of 2
	// are {0, 1}; new in-neighbors are {0, 4}. Node 3's edge is untouched.
	if _, err := eg.Apply(Batch{
		Deletes: []EdgeKey{{From: 1, To: 2}},
		Inserts: []graph.Edge{{From: 4, To: 2, Weight: 0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	newG, v1 := eg.Snapshot()
	delta, ok := eg.DeltaBetween(v0, v1)
	if !ok {
		t.Fatal("delta log lost the batch")
	}

	got := TouchedTails(oldG, newG, delta)
	want := []uint32{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("tails = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tails = %v, want %v", got, want)
		}
	}

	// A reweigh-only delta (no topology change) still reports the tails
	// of the reweighted head — forward scores read the new weights.
	oldG2, v1b := eg.Snapshot()
	if _, err := eg.Apply(Batch{Reweights: []graph.Edge{{From: 0, To: 2, Weight: 0.9}}}); err != nil {
		t.Fatal(err)
	}
	newG2, v2 := eg.Snapshot()
	delta2, ok := eg.DeltaBetween(v1b, v2)
	if !ok {
		t.Fatal("delta log lost the reweigh")
	}
	got = TouchedTails(oldG2, newG2, delta2)
	want = []uint32{0, 4}
	if len(got) != len(want) {
		t.Fatalf("reweigh tails = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reweigh tails = %v, want %v", got, want)
		}
	}

	// Heads past either snapshot's node range are ignored, not a panic.
	_ = TouchedTails(oldG, newG, Delta{Heads: []uint32{99}})
}
