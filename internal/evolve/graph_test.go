package evolve

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func edgeList(t *testing.T, eg *Graph) []graph.Edge {
	t.Helper()
	return eg.Edges()
}

func TestApplyBasics(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.25},
		{From: 2, To: 3, Weight: 0.75},
	})
	eg := New(g, nil, Options{})
	if eg.N() != 4 || eg.M() != 3 || eg.Version() != 0 {
		t.Fatalf("initial state n=%d m=%d v=%d", eg.N(), eg.M(), eg.Version())
	}

	v, err := eg.Apply(Batch{
		AddNodes: 2,
		Inserts:  []graph.Edge{{From: 4, To: 5, Weight: 0.1}},
		Deletes:  []EdgeKey{{From: 0, To: 1}},
		Reweights: []graph.Edge{
			{From: 1, To: 2, Weight: 0.9},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || eg.Version() != 1 {
		t.Fatalf("version = %d", v)
	}
	if eg.N() != 6 || eg.M() != 3 {
		t.Fatalf("after batch: n=%d m=%d", eg.N(), eg.M())
	}
	want := []graph.Edge{
		{From: 1, To: 2, Weight: 0.9},
		{From: 2, To: 3, Weight: 0.75},
		{From: 4, To: 5, Weight: 0.1},
	}
	got := edgeList(t, eg)
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
	snap, ver := eg.Snapshot()
	if ver != 1 || snap.N() != 6 || snap.M() != 3 {
		t.Fatalf("snapshot n=%d m=%d v=%d", snap.N(), snap.M(), ver)
	}
}

// TestApplyAtomic: a batch with any invalid mutation leaves the graph
// untouched, even when earlier mutations in the batch were valid.
func TestApplyAtomic(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{From: 0, To: 1, Weight: 0.5}})
	eg := New(g, nil, Options{})
	cases := []Batch{
		{Deletes: []EdgeKey{{From: 0, To: 1}, {From: 0, To: 1}}},                          // second delete has no occurrence
		{Deletes: []EdgeKey{{From: 0, To: 1}}, Reweights: []graph.Edge{{From: 0, To: 1}}}, // reweight of the deleted edge
		{Inserts: []graph.Edge{{From: 0, To: 2, Weight: 0.5}, {From: 0, To: 9, Weight: 0.5}}},
		{Inserts: []graph.Edge{{From: 0, To: 2, Weight: 1.5}}},
		{AddNodes: -1},
		{Deletes: []EdgeKey{{From: 2, To: 0}}},
	}
	for i, b := range cases {
		if _, err := eg.Apply(b); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
		if eg.Version() != 0 || eg.M() != 1 || eg.N() != 3 {
			t.Fatalf("case %d: state mutated: v=%d n=%d m=%d", i, eg.Version(), eg.N(), eg.M())
		}
	}
	if _, err := eg.Apply(Batch{Deletes: []EdgeKey{{From: 2, To: 0}}}); !errors.Is(err, ErrUnknownEdge) {
		t.Fatalf("unknown delete: %v", err)
	}
}

// TestParallelEdges: duplicate edges coexist; Delete removes the latest
// occurrence; Reweight rewrites all occurrences.
func TestParallelEdges(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{From: 0, To: 1, Weight: 0.25}})
	eg := New(g, nil, Options{})
	if _, err := eg.Apply(Batch{Inserts: []graph.Edge{{From: 0, To: 1, Weight: 0.75}}}); err != nil {
		t.Fatal(err)
	}
	if eg.M() != 2 {
		t.Fatalf("m = %d", eg.M())
	}
	if _, err := eg.Apply(Batch{Reweights: []graph.Edge{{From: 0, To: 1, Weight: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	for i, e := range edgeList(t, eg) {
		if e.Weight != 0.5 {
			t.Fatalf("occurrence %d weight %v after reweight-all", i, e.Weight)
		}
	}
	if _, err := eg.Apply(Batch{Deletes: []EdgeKey{{From: 0, To: 1}}}); err != nil {
		t.Fatal(err)
	}
	if eg.M() != 1 {
		t.Fatalf("m = %d after one delete", eg.M())
	}
	if _, err := eg.Apply(Batch{Deletes: []EdgeKey{{From: 0, To: 1}}}); err != nil {
		t.Fatal(err)
	}
	if eg.M() != 0 {
		t.Fatalf("m = %d after both deletes", eg.M())
	}
}

// TestSnapshotCachingAndImmutability: repeated Snapshot calls without
// mutations return the same instance; mutations produce a fresh one and
// the old instance keeps its pre-mutation content.
func TestSnapshotCachingAndImmutability(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{From: 0, To: 1, Weight: 0.5}})
	eg := New(g, nil, Options{})
	s1, v1 := eg.Snapshot()
	s2, _ := eg.Snapshot()
	if s1 != s2 {
		t.Fatal("snapshot not cached between mutations")
	}
	if v1 != 0 {
		t.Fatalf("v = %d", v1)
	}
	if _, err := eg.Apply(Batch{Inserts: []graph.Edge{{From: 1, To: 2, Weight: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	s3, v3 := eg.Snapshot()
	if s3 == s1 || v3 != 1 {
		t.Fatal("mutation did not produce a fresh snapshot")
	}
	if s1.M() != 1 || s3.M() != 2 {
		t.Fatalf("old snapshot m=%d (want 1), new m=%d (want 2)", s1.M(), s3.M())
	}
}

// TestCanonicalOrderSurvivesCompaction: with an aggressive compaction
// threshold, a delete-heavy workload still preserves the relative order
// of surviving in-edges — the invariant unaffected RR sets depend on.
func TestCanonicalOrderSurvivesCompaction(t *testing.T) {
	r := rng.New(5)
	g := gen.ErdosRenyiGnm(40, 400, r)
	if err := g.SetUniformWeights(0.3); err != nil {
		t.Fatal(err)
	}
	eg := New(g, nil, Options{CompactFraction: 0.01})
	reference := New(g, nil, Options{CompactFraction: 1e9}) // effectively never compacts
	edges := eg.Edges()
	for i := 0; i < 120; i++ {
		victim := edges[r.Intn(len(edges))]
		b := Batch{Deletes: []EdgeKey{{From: victim.From, To: victim.To}}}
		if _, err := eg.Apply(b); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.Apply(b); err != nil {
			t.Fatal(err)
		}
		// Drop one occurrence from the local mirror (latest, as Delete does).
		for j := len(edges) - 1; j >= 0; j-- {
			if edges[j].From == victim.From && edges[j].To == victim.To {
				edges = append(edges[:j], edges[j+1:]...)
				break
			}
		}
	}
	got := eg.Edges()
	want := reference.Edges()
	if len(got) != len(want) || len(got) != len(edges) {
		t.Fatalf("sizes: compacting %d, reference %d, mirror %d", len(got), len(want), len(edges))
	}
	for i := range want {
		if got[i] != want[i] || got[i] != edges[i] {
			t.Fatalf("order diverged at %d: %v vs %v vs %v", i, got[i], want[i], edges[i])
		}
	}
}

func TestDeltaSince(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.5},
		{From: 2, To: 3, Weight: 0.5},
	})
	eg := New(g, nil, Options{})
	mustApply := func(b Batch) {
		t.Helper()
		if _, err := eg.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(Batch{Deletes: []EdgeKey{{From: 0, To: 1}}})
	mustApply(Batch{Inserts: []graph.Edge{{From: 3, To: 4, Weight: 0.5}}})
	mustApply(Batch{AddNodes: 1})

	d, ok := eg.DeltaSince(0)
	if !ok {
		t.Fatal("delta since 0 must be available")
	}
	if d.NBefore != 5 || d.NAfter != 6 {
		t.Fatalf("n transition %d -> %d", d.NBefore, d.NAfter)
	}
	if len(d.Heads) != 2 || d.Heads[0] != 1 || d.Heads[1] != 4 {
		t.Fatalf("heads = %v", d.Heads)
	}

	d, ok = eg.DeltaSince(2)
	if !ok || len(d.Heads) != 0 || d.NBefore != 5 || d.NAfter != 6 {
		t.Fatalf("delta since 2: %+v ok=%v", d, ok)
	}

	d, ok = eg.DeltaSince(3)
	if !ok || !d.Empty() {
		t.Fatalf("delta since current: %+v ok=%v", d, ok)
	}

	if _, ok := eg.DeltaSince(4); ok {
		t.Fatal("delta since a future version must fail")
	}
}

// TestDeltaBetween: a consumer pinned to an older snapshot can ask for
// the delta up to exactly that version, not just up to the present.
func TestDeltaBetween(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{From: 0, To: 1, Weight: 0.5}})
	eg := New(g, nil, Options{})
	mustApply := func(b Batch) {
		t.Helper()
		if _, err := eg.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(Batch{Inserts: []graph.Edge{{From: 1, To: 2, Weight: 0.5}}}) // v1, head 2
	mustApply(Batch{AddNodes: 1})                                          // v2, n 5->6
	mustApply(Batch{Inserts: []graph.Edge{{From: 2, To: 3, Weight: 0.5}}}) // v3, head 3

	d, ok := eg.DeltaBetween(0, 1)
	if !ok || d.NBefore != 5 || d.NAfter != 5 || len(d.Heads) != 1 || d.Heads[0] != 2 {
		t.Fatalf("delta 0->1: %+v ok=%v", d, ok)
	}
	d, ok = eg.DeltaBetween(1, 2)
	if !ok || d.NBefore != 5 || d.NAfter != 6 || len(d.Heads) != 0 {
		t.Fatalf("delta 1->2: %+v ok=%v", d, ok)
	}
	d, ok = eg.DeltaBetween(1, 1)
	if !ok || !d.Empty() || d.NBefore != 5 {
		t.Fatalf("delta 1->1: %+v ok=%v", d, ok)
	}
	if _, ok := eg.DeltaBetween(2, 1); ok {
		t.Fatal("from > to must fail")
	}
	if _, ok := eg.DeltaBetween(1, 4); ok {
		t.Fatal("to beyond current version must fail")
	}
	d, ok = eg.DeltaBetween(0, 3)
	if !ok || d.NBefore != 5 || d.NAfter != 6 || len(d.Heads) != 2 {
		t.Fatalf("delta 0->3: %+v ok=%v", d, ok)
	}
}

// TestDeltaLogRetention: once the log's mutation budget is exceeded the
// oldest batches are dropped and DeltaSince from before the drop fails.
func TestDeltaLogRetention(t *testing.T) {
	g := graph.MustFromEdges(64, nil)
	eg := New(g, nil, Options{MaxLogMutations: 8})
	for i := 0; i < 16; i++ {
		b := Batch{Inserts: []graph.Edge{{From: uint32(i), To: uint32(i + 1), Weight: 0.5}}}
		if _, err := eg.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := eg.DeltaSince(0); ok {
		t.Fatal("delta from before log retention must fail")
	}
	if d, ok := eg.DeltaSince(12); !ok || len(d.Heads) != 4 {
		t.Fatalf("recent delta: %+v ok=%v", d, ok)
	}
}

// TestWeightedCascadePolicy: after arbitrary topology churn, snapshot
// weights match a cold AssignWeightedCascade over the same edges.
func TestWeightedCascadePolicy(t *testing.T) {
	r := rng.New(9)
	g := gen.ErdosRenyiGnm(30, 150, r)
	graph.AssignWeightedCascade(g)
	eg := New(g, WeightedCascade{}, Options{})
	for i := 0; i < 40; i++ {
		b := Batch{Inserts: []graph.Edge{{From: uint32(r.Intn(30)), To: uint32(r.Intn(30)), Weight: 1}}}
		if i%3 == 0 {
			edges := eg.Edges()
			v := edges[r.Intn(len(edges))]
			b.Deletes = []EdgeKey{{From: v.From, To: v.To}}
		}
		if _, err := eg.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := eg.Snapshot()
	cold, err := graph.FromEdges(eg.N(), eg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	graph.AssignWeightedCascade(cold)
	compareAllWeights(t, snap, cold)
}

// TestKeyedLTPolicy: same check for the keyed LT parameterization — the
// policy at touched heads reproduces a cold keyed assignment.
func TestKeyedLTPolicy(t *testing.T) {
	const seed = 77
	r := rng.New(13)
	g := gen.ErdosRenyiGnm(30, 150, r)
	graph.AssignRandomNormalizedLTKeyed(g, seed)
	eg := New(g, NewKeyedNormalizedLT(seed), Options{})
	for i := 0; i < 30; i++ {
		b := Batch{Inserts: []graph.Edge{{From: uint32(r.Intn(30)), To: uint32(r.Intn(30)), Weight: 0}}}
		if i%4 == 1 {
			edges := eg.Edges()
			v := edges[r.Intn(len(edges))]
			b.Deletes = []EdgeKey{{From: v.From, To: v.To}}
		}
		if _, err := eg.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := eg.Snapshot()
	cold, err := graph.FromEdges(eg.N(), eg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	graph.AssignRandomNormalizedLTKeyed(cold, seed)
	compareAllWeights(t, snap, cold)
}

func compareAllWeights(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape: (%d,%d) vs (%d,%d)", got.N(), got.M(), want.N(), want.M())
	}
	for v := uint32(0); int(v) < got.N(); v++ {
		srcG, wG := got.InNeighbors(v)
		srcW, wW := want.InNeighbors(v)
		if len(srcG) != len(srcW) {
			t.Fatalf("head %d: indeg %d vs %d", v, len(srcG), len(srcW))
		}
		for i := range srcG {
			if srcG[i] != srcW[i] || wG[i] != wW[i] {
				t.Fatalf("head %d edge %d: (%d, %v) vs (%d, %v)", v, i, srcG[i], wG[i], srcW[i], wW[i])
			}
		}
	}
}
