package evolve

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// BenchmarkRepairVsResample compares incremental repair against the only
// alternative the server had before this subsystem — throwing the
// collection away and resampling from scratch — across delta-batch sizes
// on a Table-2-profile synthetic graph. Results are recorded in
// EXPERIMENTS.md §E12.
func BenchmarkRepairVsResample(b *testing.B) {
	p, err := gen.ProfileByName("nethept")
	if err != nil {
		b.Fatal(err)
	}
	g0 := p.Generate(gen.ScaleTiny, 1)
	graph.AssignWeightedCascade(g0)
	model := diffusion.NewIC()
	const theta = 20000
	const seed = 99

	for _, frac := range []float64{0.0001, 0.001, 0.01} {
		batchEdges := int(float64(g0.M()) * frac)
		if batchEdges < 1 {
			batchEdges = 1
		}
		// Build the evolving graph and warm collection once per size, then
		// benchmark one batch's repair against a cold resample on the same
		// post-mutation snapshot.
		eg := New(g0, WeightedCascade{}, Options{})
		snap, _ := eg.Snapshot()
		col := &diffusion.RRCollection{Off: []int64{0}}
		widths, err := diffusion.ExtendCollection(context.Background(), snap, model, col, theta, seed, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(7)
		batch := Batch{}
		edges := eg.Edges()
		for i := 0; i < batchEdges; i++ {
			if i%2 == 0 {
				batch.Inserts = append(batch.Inserts, graph.Edge{
					From: uint32(r.Intn(snap.N())), To: uint32(r.Intn(snap.N())), Weight: 0.5,
				})
			} else {
				v := edges[r.Intn(len(edges))]
				batch.Deletes = append(batch.Deletes, EdgeKey{v.From, v.To})
			}
		}
		if _, err := eg.Apply(batch); err != nil {
			b.Fatal(err)
		}
		delta, ok := eg.DeltaSince(0)
		if !ok {
			b.Fatal("delta unavailable")
		}
		snap2, _ := eg.Snapshot()

		b.Run(fmt.Sprintf("repair/frac=%g", frac), func(b *testing.B) {
			var repaired int64
			for i := 0; i < b.N; i++ {
				_, _, stats, err := Repair(context.Background(), snap2, model, col, widths, delta, seed, 0)
				if err != nil {
					b.Fatal(err)
				}
				repaired = stats.Repaired
			}
			b.ReportMetric(float64(repaired), "sets-repaired")
			b.ReportMetric(float64(repaired)/float64(theta)*100, "%-repaired")
		})
		b.Run(fmt.Sprintf("resample/frac=%g", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cold := &diffusion.RRCollection{Off: []int64{0}}
				if _, err := diffusion.ExtendCollection(context.Background(), snap2, model, cold, theta, seed, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
