package evolve

import (
	"context"
	"errors"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

const repairSeed = 424242

// sampleCold draws count sets on g exactly the way the reuse layer does,
// returning the collection and per-set widths.
func sampleCold(t *testing.T, g *graph.Graph, model diffusion.Model, count int64) (*diffusion.RRCollection, []int64) {
	t.Helper()
	col := &diffusion.RRCollection{Off: []int64{0}}
	widths, err := diffusion.ExtendCollection(context.Background(), g, model, col, count, repairSeed, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return col, widths
}

func compareCollections(t *testing.T, label string, got, want *diffusion.RRCollection, gotW, wantW []int64) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%s: %d sets vs %d", label, got.Count(), want.Count())
	}
	if got.TotalWidth != want.TotalWidth {
		t.Fatalf("%s: total width %d vs %d", label, got.TotalWidth, want.TotalWidth)
	}
	for i := range want.Off {
		if got.Off[i] != want.Off[i] {
			t.Fatalf("%s: offset %d: %d vs %d", label, i, got.Off[i], want.Off[i])
		}
	}
	for i := range want.Flat {
		if got.Flat[i] != want.Flat[i] {
			t.Fatalf("%s: flat[%d]: %d vs %d", label, i, got.Flat[i], want.Flat[i])
		}
	}
	if len(gotW) != len(wantW) {
		t.Fatalf("%s: %d widths vs %d", label, len(gotW), len(wantW))
	}
	for i := range wantW {
		if gotW[i] != wantW[i] {
			t.Fatalf("%s: width[%d]: %d vs %d", label, i, gotW[i], wantW[i])
		}
	}
}

// affectedBound recomputes, independently of Repair, how many sets of col
// the delta can affect: sets whose root draw changes with the node count
// plus sets containing a touched head.
func affectedBound(col *diffusion.RRCollection, delta Delta) int64 {
	head := make(map[uint32]bool, len(delta.Heads))
	for _, h := range delta.Heads {
		head[h] = true
	}
	base := rng.New(repairSeed)
	var bound int64
	var r1, r2 rng.Rand
	for i := 0; i < col.Count(); i++ {
		hit := false
		if delta.NBefore != delta.NAfter {
			base.SplitInto(uint64(i), &r1)
			r2 = r1
			hit = r1.Intn(delta.NBefore) != r2.Intn(delta.NAfter) || r1 != r2
		}
		if !hit {
			for _, v := range col.Set(i) {
				if head[v] {
					hit = true
					break
				}
			}
		}
		if hit {
			bound++
		}
	}
	return bound
}

// randomBatch builds a valid mutation batch against the graph's current
// state: a mix of inserts, deletes of live edges, reweights, and the
// occasional node growth.
func randomBatch(r *rng.Rand, eg *Graph, growNodes bool) Batch {
	var b Batch
	n := eg.N()
	edges := eg.Edges()
	inserts := 1 + r.Intn(4)
	for i := 0; i < inserts; i++ {
		b.Inserts = append(b.Inserts, graph.Edge{
			From:   uint32(r.Intn(n)),
			To:     uint32(r.Intn(n)),
			Weight: float32(0.5), // provisional; the policy overwrites it
		})
	}
	deletes := r.Intn(3)
	seen := make(map[EdgeKey]int)
	for _, e := range edges {
		seen[EdgeKey{e.From, e.To}]++
	}
	for i := 0; i < deletes && len(edges) > 0; i++ {
		v := edges[r.Intn(len(edges))]
		k := EdgeKey{v.From, v.To}
		if seen[k] == 0 {
			continue
		}
		seen[k]--
		b.Deletes = append(b.Deletes, k)
	}
	if r.Intn(3) == 0 && len(edges) > 0 {
		v := edges[r.Intn(len(edges))]
		if seen[EdgeKey{v.From, v.To}] > 0 {
			b.Reweights = append(b.Reweights, graph.Edge{From: v.From, To: v.To, Weight: 0.3})
		}
	}
	if growNodes && r.Intn(4) == 0 {
		b.AddNodes = 1 + r.Intn(2)
	}
	return b
}

// TestRepairMatchesColdSample is the subsystem's core guarantee: after
// every one of a sequence of random mutation batches, the incrementally
// repaired collection is bit-identical — members, order, offsets, widths
// — to a collection sampled cold on the mutated snapshot, and the
// repaired-set counter matches the independently computed affected bound.
// Run with -race in CI.
func TestRepairMatchesColdSample(t *testing.T) {
	cases := []struct {
		name      string
		model     diffusion.Model
		policy    WeightPolicy
		weight    func(*graph.Graph)
		growNodes bool
	}{
		{
			name:   "ic-weighted-cascade",
			model:  diffusion.NewIC(),
			policy: WeightedCascade{},
			weight: graph.AssignWeightedCascade,
		},
		{
			name:      "ic-node-growth",
			model:     diffusion.NewIC(),
			policy:    WeightedCascade{},
			weight:    graph.AssignWeightedCascade,
			growNodes: true,
		},
		{
			name:   "lt-keyed",
			model:  diffusion.NewLT(),
			policy: NewKeyedNormalizedLT(7),
			weight: func(g *graph.Graph) { graph.AssignRandomNormalizedLTKeyed(g, 7) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const theta = 1200
			r := rng.New(1)
			g := gen.ErdosRenyiGnm(220, 1100, r)
			tc.weight(g)
			eg := New(g, tc.policy, Options{})
			snap, _ := eg.Snapshot()
			col, widths := sampleCold(t, snap, tc.model, theta)

			prev := eg.Version()
			batches := 10
			if testing.Short() {
				batches = 5
			}
			for step := 0; step < batches; step++ {
				b := randomBatch(r, eg, tc.growNodes)
				if _, err := eg.Apply(b); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				delta, ok := eg.DeltaSince(prev)
				if !ok {
					t.Fatalf("step %d: delta unavailable", step)
				}
				prev = eg.Version()
				snap, _ = eg.Snapshot()

				bound := affectedBound(col, delta)
				newCol, newWidths, stats, err := Repair(context.Background(), snap, tc.model, col, widths, delta, repairSeed, 3)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if stats.Repaired != bound {
					t.Fatalf("step %d: repaired %d sets, affected bound is %d", step, stats.Repaired, bound)
				}
				if stats.Repaired+stats.Reused != stats.Sets || stats.Sets != theta {
					t.Fatalf("step %d: inconsistent stats %+v", step, stats)
				}
				col, widths = newCol, newWidths

				coldCol, coldWidths := sampleCold(t, snap, tc.model, theta)
				compareCollections(t, tc.name, col, coldCol, widths, coldWidths)
			}
		})
	}
}

// TestRepairWorkerIndependence: the repaired bytes must not depend on the
// worker count.
func TestRepairWorkerIndependence(t *testing.T) {
	r := rng.New(3)
	g := gen.ErdosRenyiGnm(150, 700, r)
	graph.AssignWeightedCascade(g)
	eg := New(g, WeightedCascade{}, Options{})
	snap, _ := eg.Snapshot()
	col, widths := sampleCold(t, snap, diffusion.NewIC(), 600)
	if _, err := eg.Apply(randomBatch(r, eg, false)); err != nil {
		t.Fatal(err)
	}
	delta, _ := eg.DeltaSince(0)
	snap, _ = eg.Snapshot()
	ref, refW, _, err := Repair(context.Background(), snap, diffusion.NewIC(), col, widths, delta, repairSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		got, gotW, _, err := Repair(context.Background(), snap, diffusion.NewIC(), col, widths, delta, repairSeed, workers)
		if err != nil {
			t.Fatal(err)
		}
		compareCollections(t, "workers", got, ref, gotW, refW)
	}
}

func TestRepairRejects(t *testing.T) {
	g := gen.ErdosRenyiGnm(50, 200, rng.New(4))
	graph.AssignWeightedCascade(g)
	col, widths := sampleCold(t, g, diffusion.NewIC(), 50)
	delta := Delta{NBefore: 50, NAfter: 50}

	trig := diffusion.NewTriggering(diffusion.ICTrigger{})
	if _, _, _, err := Repair(context.Background(), g, trig, col, widths, delta, repairSeed, 1); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("triggering model: %v", err)
	}
	if _, _, _, err := Repair(context.Background(), g, diffusion.NewIC(), col, widths[:10], delta, repairSeed, 1); err == nil {
		t.Fatal("mismatched widths accepted")
	}
	if _, _, _, err := Repair(context.Background(), g, diffusion.NewIC(), col, widths, Delta{NBefore: 50, NAfter: 51}, repairSeed, 1); err == nil {
		t.Fatal("snapshot/delta shape mismatch accepted")
	}
}

// TestRepairCancellation: a cancelled context aborts the repair with the
// context's error.
func TestRepairCancellation(t *testing.T) {
	g := gen.ErdosRenyiGnm(100, 500, rng.New(6))
	graph.AssignWeightedCascade(g)
	eg := New(g, WeightedCascade{}, Options{})
	snap, _ := eg.Snapshot()
	col, widths := sampleCold(t, snap, diffusion.NewIC(), 400)
	if _, err := eg.Apply(Batch{Inserts: []graph.Edge{{From: 1, To: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	delta, _ := eg.DeltaSince(0)
	snap, _ = eg.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := Repair(ctx, snap, diffusion.NewIC(), col, widths, delta, repairSeed, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled repair: %v", err)
	}
}

// TestDeltaImpact: the provenance-tight bound never exceeds the exact
// bound, and for pure deletions it only counts sets whose recorded trace
// used a deleted edge.
func TestDeltaImpact(t *testing.T) {
	r := rng.New(8)
	g := gen.ErdosRenyiGnm(120, 600, r)
	graph.AssignWeightedCascade(g)
	model := diffusion.NewIC()

	// Build a traced collection with the reuse layer's keyed streams.
	const count = 500
	col := &diffusion.RRCollection{Off: []int64{0}}
	traces := &diffusion.TraceCollection{Off: []int64{0}}
	sampler := diffusion.NewRRSampler(g, model)
	base := rng.New(repairSeed)
	var stream rng.Rand
	var buf []uint32
	var tbuf []diffusion.TraceEdge
	for i := 0; i < count; i++ {
		base.SplitInto(uint64(i), &stream)
		var width int64
		buf, tbuf, width = sampler.SampleTraced(&stream, buf[:0], tbuf[:0])
		col.Append(buf, width)
		traces.Append(tbuf)
	}

	// A pure-deletion batch over a few live edges.
	edges := g.Edges()
	b := Batch{}
	for i := 0; i < 5; i++ {
		v := edges[r.Intn(len(edges))]
		b.Deletes = append(b.Deletes, EdgeKey{v.From, v.To})
	}
	imp := DeltaImpact(col, traces, b, g.N(), g.N(), repairSeed)
	if imp.Sets != count {
		t.Fatalf("sets = %d", imp.Sets)
	}
	if imp.MembershipRisk > imp.Affected {
		t.Fatalf("tight bound %d exceeds exact bound %d", imp.MembershipRisk, imp.Affected)
	}
	if imp.AlignmentOnly != imp.Affected-imp.MembershipRisk {
		t.Fatalf("inconsistent impact %+v", imp)
	}

	// Recompute the trace criterion directly.
	del := make(map[EdgeKey]bool)
	for _, k := range b.Deletes {
		del[k] = true
	}
	wantRisk := 0
	for i := 0; i < count; i++ {
		for _, e := range traces.Set(i) {
			if del[EdgeKey{e.From, e.To}] {
				wantRisk++
				break
			}
		}
	}
	if imp.MembershipRisk != wantRisk {
		t.Fatalf("membership risk %d, want %d", imp.MembershipRisk, wantRisk)
	}

	// Inserts count containment of the head, same as the exact bound.
	ins := Batch{Inserts: []graph.Edge{{From: 3, To: 9, Weight: 0.5}}}
	impIns := DeltaImpact(col, traces, ins, g.N(), g.N(), repairSeed)
	if impIns.MembershipRisk != impIns.Affected {
		t.Fatalf("insert-only impact should have no alignment slack: %+v", impIns)
	}
}
