package evolve

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// WeightPolicy derives the in-edge weights of a head whose in-edge list
// just changed. A policy makes weights a pure function of (head, in-edge
// list): after any mutation batch, re-deriving only the touched heads
// leaves every weight identical to what a cold assignment over the final
// topology would produce — the property the server's warm-equals-cold
// guarantee rests on. Implementations must fill w with values in [0, 1]
// and must not retain the slices.
type WeightPolicy interface {
	// WeightIn receives head v's in-edge sources and current weights in
	// canonical order and overwrites w in place.
	WeightIn(v uint32, src []uint32, w []float32)
}

// WeightedCascade is the paper's §7.1 IC parameterization as a policy:
// every in-edge of v weighs 1/indeg(v). Matches
// graph.AssignWeightedCascade head for head.
type WeightedCascade struct{}

// WeightIn implements WeightPolicy.
func (WeightedCascade) WeightIn(v uint32, src []uint32, w []float32) {
	p := float32(1.0) / float32(len(w))
	for i := range w {
		w[i] = p
	}
}

// KeyedNormalizedLT is the keyed LT parameterization as a policy: head
// v's weights are drawn from stream Split(v) of Seed and normalized,
// matching graph.AssignRandomNormalizedLTKeyed head for head.
type KeyedNormalizedLT struct {
	Seed uint64

	base *rng.Rand
}

// NewKeyedNormalizedLT returns the policy for the given assignment seed.
func NewKeyedNormalizedLT(seed uint64) *KeyedNormalizedLT {
	return &KeyedNormalizedLT{Seed: seed, base: rng.New(seed)}
}

// WeightIn implements WeightPolicy.
func (p *KeyedNormalizedLT) WeightIn(v uint32, src []uint32, w []float32) {
	if p.base == nil {
		p.base = rng.New(p.Seed)
	}
	graph.FillNormalizedLTKeyed(p.base, v, src, w)
}
