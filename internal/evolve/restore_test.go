package evolve

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// restoreScenario builds a weighted evolving graph, applies a few
// batches, and returns it with the batches that produced it.
func restoreScenario(t *testing.T, policy WeightPolicy) (*Graph, []Batch) {
	t.Helper()
	g := gen.BarabasiAlbert(80, 3, rng.New(9))
	switch policy.(type) {
	case WeightedCascade:
		graph.AssignWeightedCascade(g)
	case *KeyedNormalizedLT:
		graph.AssignRandomNormalizedLTKeyed(g, 21)
	}
	eg := New(g, policy, Options{})
	batches := []Batch{
		{
			AddNodes: 2,
			Inserts:  []graph.Edge{{From: 3, To: 80}, {From: 80, To: 5}, {From: 81, To: 0}},
			Deletes:  []EdgeKey{{From: g.Edges()[0].From, To: g.Edges()[0].To}},
		},
		{
			Inserts: []graph.Edge{{From: 7, To: 81}, {From: 12, To: 4}},
		},
	}
	for i, b := range batches {
		if _, err := eg.Apply(b); err != nil {
			t.Fatalf("apply batch %d: %v", i, err)
		}
	}
	return eg, batches
}

// TestRestoreMatchesLiveGraph is the recovery determinism argument at
// the evolve layer: restoring from (n, canonical edges, version) with a
// topology-only checkpoint (weights zeroed, re-derived by the policy)
// must reproduce the live graph bit for bit — same canonical order,
// same weights, same snapshot — and must keep agreeing after further
// batches are applied to both.
func TestRestoreMatchesLiveGraph(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy func() WeightPolicy
	}{
		{"weighted_cascade", func() WeightPolicy { return WeightedCascade{} }},
		{"keyed_lt", func() WeightPolicy { return NewKeyedNormalizedLT(21) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live, _ := restoreScenario(t, tc.policy())

			// The checkpoint captures topology only: weights are zeroed the
			// way wal.Checkpoint strips them.
			topo := live.Edges()
			for i := range topo {
				topo[i].Weight = 0
			}
			restored, err := Restore(live.N(), topo, live.Version(), tc.policy(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if restored.Version() != live.Version() || restored.N() != live.N() || restored.M() != live.M() {
				t.Fatalf("restored v=%d n=%d m=%d, live v=%d n=%d m=%d",
					restored.Version(), restored.N(), restored.M(), live.Version(), live.N(), live.M())
			}
			if !reflect.DeepEqual(restored.Edges(), live.Edges()) {
				t.Fatal("restored canonical edges (with policy-derived weights) differ from live")
			}
			liveSnap, _ := live.Snapshot()
			restSnap, _ := restored.Snapshot()
			if !reflect.DeepEqual(restSnap.Edges(), liveSnap.Edges()) {
				t.Fatal("restored snapshot differs from live snapshot")
			}

			// Both must evolve identically from here: the WAL tail replays
			// against a restored graph exactly as it did against the live one.
			tail := Batch{
				AddNodes: 1,
				Inserts:  []graph.Edge{{From: 82, To: 3}, {From: 0, To: 82}},
				Deletes:  []EdgeKey{{From: 3, To: 80}},
			}
			v1, err1 := live.Apply(tail)
			v2, err2 := restored.Apply(tail)
			if err1 != nil || err2 != nil || v1 != v2 {
				t.Fatalf("tail apply diverged: (%d, %v) vs (%d, %v)", v1, err1, v2, err2)
			}
			if !reflect.DeepEqual(restored.Edges(), live.Edges()) {
				t.Fatal("canonical edges diverged after tail batch")
			}
		})
	}
}

func TestRestoreValidation(t *testing.T) {
	if _, err := Restore(2, []graph.Edge{{From: 0, To: 5, Weight: 0.5}}, 1, nil, Options{}); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("out-of-range edge: %v", err)
	}
	if _, err := Restore(2, []graph.Edge{{From: 0, To: 1, Weight: 1.5}}, 1, nil, Options{}); !errors.Is(err, graph.ErrBadWeight) {
		t.Fatalf("bad weight without policy: %v", err)
	}
	// With a policy the stored weight is irrelevant (re-derived).
	if _, err := Restore(2, []graph.Edge{{From: 0, To: 1, Weight: 1.5}}, 1, WeightedCascade{}, Options{}); err != nil {
		t.Fatalf("policy restore rejected provisional weight: %v", err)
	}
}

// TestValidateThenApply pins the WAL ordering contract: a batch that
// passes Validate is applied by the very next Apply without error, and
// a batch that fails Validate leaves the graph untouched.
func TestValidateThenApply(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.5},
	})
	eg := New(g, nil, Options{})

	good := Batch{Inserts: []graph.Edge{{From: 2, To: 0, Weight: 0.25}}}
	if err := eg.Validate(good); err != nil {
		t.Fatalf("validate good batch: %v", err)
	}
	if eg.Version() != 0 || eg.M() != 2 {
		t.Fatal("Validate mutated the graph")
	}
	if _, err := eg.Apply(good); err != nil {
		t.Fatalf("apply after validate: %v", err)
	}

	bad := Batch{Deletes: []EdgeKey{{From: 0, To: 2}}}
	if err := eg.Validate(bad); !errors.Is(err, ErrUnknownEdge) {
		t.Fatalf("validate bad batch: %v", err)
	}
	if eg.Version() != 1 {
		t.Fatal("failed Validate changed the version")
	}
}
