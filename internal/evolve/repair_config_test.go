package evolve

import (
	"context"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/rng"
)

// sampleColdConfig draws count sets under cfg exactly the way the reuse
// layer does for constrained profiles.
func sampleColdConfig(t *testing.T, g *graph.Graph, model diffusion.Model, cfg diffusion.SampleConfig, count int64) (*diffusion.RRCollection, []int64) {
	t.Helper()
	col := &diffusion.RRCollection{Off: []int64{0}}
	widths, err := diffusion.ExtendCollectionConfig(context.Background(), g, model, cfg, col, count, repairSeed, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return col, widths
}

// TestRepairConfigMatchesColdSample extends the subsystem's core
// bit-identity guarantee to constrained collections: weighted roots,
// bounded horizon, and both at once, across random mutation batches
// (including node growth for the horizon case — weighted profiles pin
// the audience, so their scenarios mutate edges only, mirroring how the
// server re-keys weighted collections when n changes). Run with -race in
// CI.
func TestRepairConfigMatchesColdSample(t *testing.T) {
	const n = 200
	weights := make([]float64, n)
	wr := rng.New(99)
	for i := range weights {
		weights[i] = 0.1 + wr.Float64()
	}
	compiled := func(t *testing.T, s *query.Spec) diffusion.SampleConfig {
		c, err := s.Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		return c.Sample
	}
	cases := []struct {
		name      string
		model     diffusion.Model
		spec      *query.Spec
		growNodes bool
	}{
		{name: "ic-weighted", model: diffusion.NewIC(), spec: &query.Spec{Weights: weights}},
		{name: "lt-weighted", model: diffusion.NewLT(), spec: &query.Spec{Weights: weights}},
		{name: "ic-horizon", model: diffusion.NewIC(), spec: &query.Spec{MaxHops: 2}, growNodes: true},
		{name: "ic-weighted-horizon", model: diffusion.NewIC(), spec: &query.Spec{Weights: weights, MaxHops: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := compiled(t, tc.spec)
			const theta = 800
			r := rng.New(2)
			g := gen.ErdosRenyiGnm(n, 1000, r)
			var policy WeightPolicy
			if tc.model.Kind() == diffusion.LT {
				graph.AssignRandomNormalizedLTKeyed(g, 7)
				policy = NewKeyedNormalizedLT(7)
			} else {
				graph.AssignWeightedCascade(g)
				policy = WeightedCascade{}
			}
			eg := New(g, policy, Options{})
			snap, _ := eg.Snapshot()
			col, widths := sampleColdConfig(t, snap, tc.model, cfg, theta)

			prev := eg.Version()
			batches := 6
			if testing.Short() {
				batches = 3
			}
			for step := 0; step < batches; step++ {
				b := randomBatch(r, eg, tc.growNodes)
				if _, err := eg.Apply(b); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				delta, ok := eg.DeltaSince(prev)
				if !ok {
					t.Fatalf("step %d: delta unavailable", step)
				}
				prev = eg.Version()
				snap, _ = eg.Snapshot()

				newCol, newWidths, stats, err := RepairConfig(context.Background(), snap, tc.model, cfg, col, widths, delta, repairSeed, 3)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if cfg.Roots != nil && delta.NBefore != delta.NAfter && stats.RootChanged != 0 {
					t.Fatalf("step %d: weighted roots flagged %d root-unstable sets", step, stats.RootChanged)
				}
				coldCol, coldWidths := sampleColdConfig(t, snap, tc.model, cfg, theta)
				compareCollections(t, tc.name, newCol, coldCol, newWidths, coldWidths)
				if stats.Repaired+stats.Reused != stats.Sets || stats.Sets != theta {
					t.Fatalf("step %d: inconsistent stats %+v", step, stats)
				}
				col, widths = newCol, newWidths
			}
		})
	}
}

// TestRepairConfigDefaultMatchesRepair: RepairConfig with a zero config
// is Repair, bit for bit.
func TestRepairConfigDefaultMatchesRepair(t *testing.T) {
	r := rng.New(3)
	g := gen.ErdosRenyiGnm(120, 600, r)
	graph.AssignWeightedCascade(g)
	eg := New(g, WeightedCascade{}, Options{})
	snap, _ := eg.Snapshot()
	col, widths := sampleCold(t, snap, diffusion.NewIC(), 400)
	if _, err := eg.Apply(randomBatch(r, eg, true)); err != nil {
		t.Fatal(err)
	}
	delta, ok := eg.DeltaSince(0)
	if !ok {
		t.Fatal("delta unavailable")
	}
	snap, _ = eg.Snapshot()
	a, aw, _, err := Repair(context.Background(), snap, diffusion.NewIC(), col, widths, delta, repairSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, bw, _, err := RepairConfig(context.Background(), snap, diffusion.NewIC(), diffusion.SampleConfig{}, col, widths, delta, repairSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	compareCollections(t, "zero-config", b, a, bw, aw)
}
