package evolve

import (
	"sort"

	"repro/internal/graph"
)

// TouchedTails returns the distinct tails (edge sources) of every edge a
// delta could have changed, sorted ascending: for each head in
// Delta.Heads — a node whose in-edge list changed in any way, including
// policy-driven reweighs — the in-neighbors of that head in the old
// snapshot and in the new one. An edge insert contributes its tail via
// the new snapshot, a delete via the old, a reweigh via both.
//
// This is the forward-score counterpart of AffectedSets: any per-node
// statistic computed from a node's out-edges (the tiered fast scorer's
// hop/degree scores, out-degree summaries, and the like) is stale after
// the delta exactly at these tails — plus, for two-hop statistics, at
// the new snapshot's in-neighbors of these tails, which callers expand
// themselves.
func TouchedTails(oldG, newG *graph.Graph, d Delta) []uint32 {
	set := make(map[uint32]struct{}, len(d.Heads)*2)
	collect := func(g *graph.Graph, h uint32) {
		if g == nil || int(h) >= g.N() {
			return
		}
		in, _ := g.InNeighbors(h)
		for _, t := range in {
			set[t] = struct{}{}
		}
	}
	for _, h := range d.Heads {
		collect(oldG, h)
		collect(newG, h)
	}
	tails := make([]uint32, 0, len(set))
	for t := range set {
		tails = append(tails, t)
	}
	sort.Slice(tails, func(i, j int) bool { return tails[i] < tails[j] })
	return tails
}
